(* A telemetry event bus with real-time-ish constraints: many sensor
   domains publish readings, one logger drains them.  Wait-freedom is
   the point of this example — the paper singles out "mission critical
   applications that have real-time constraints" (§1): a publisher's
   enqueue finishes in a bounded number of its own steps no matter
   what the logger or other sensors are doing, so a sensor can publish
   from a deadline-bound loop.

   The example measures per-publish step bounds empirically: worst
   observed publish latency (in spin-clock ticks) under a deliberately
   slow consumer.

   Run with:  dune exec examples/event_bus.exe -- [events-per-sensor] *)

module Q = Wfq.Wfqueue

type event = { sensor : int; seq : int; value : float }

let () =
  let per_sensor = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000 in
  let sensors = 4 in
  let bus : event Q.t = Q.create ~segment_shift:8 () in
  let worst_ns = Array.make sensors 0.0 in

  let publishers =
    List.init sensors (fun s ->
        Domain.spawn (fun () ->
            let h = Q.register bus in
            let rng = Primitives.Splitmix64.create (Int64.of_int (s + 1)) in
            for seq = 1 to per_sensor do
              let v = Primitives.Splitmix64.next_float rng in
              let t0 = Primitives.Clock.now () in
              Q.enqueue bus h { sensor = s; seq; value = v };
              let dt = (Primitives.Clock.now () -. t0) *. 1e9 in
              if dt > worst_ns.(s) then worst_ns.(s) <- dt
            done))
  in

  let logger =
    Domain.spawn (fun () ->
        let h = Q.register bus in
        let received = Array.make sensors 0 in
        let count = ref 0 in
        let total = sensors * per_sensor in
        while !count < total do
          match Q.dequeue bus h with
          | Some e ->
            (* the bus preserves per-sensor order *)
            assert (e.seq = received.(e.sensor) + 1);
            received.(e.sensor) <- e.seq;
            incr count
          | None -> Domain.cpu_relax ()
        done;
        received)
  in
  List.iter Domain.join publishers;
  let received = Domain.join logger in
  Printf.printf "event bus: %d sensors x %d events all delivered in per-sensor order\n" sensors
    per_sensor;
  Array.iteri (fun s n -> assert (n = per_sensor) |> fun () -> ignore s) received;
  Array.iteri
    (fun s w ->
      Printf.printf "  sensor %d worst-case publish latency: %.0f ns (includes preemption)\n" s w)
    worst_ns;
  Printf.printf "segments: %d live, %d reclaimed, %d recycled\n" (Q.live_segments bus)
    (Q.reclaimed_segments bus) (Q.recycled_segments bus)
