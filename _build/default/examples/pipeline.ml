(* A multi-stage streaming pipeline — the "harnessing multi-core"
   workload the paper's introduction motivates.

   Run with:  dune exec examples/pipeline.exe -- [items]

   Stage 1 parses raw records, stage 2 enriches them, stage 3
   aggregates.  Stages are connected by wait-free queues, so a stage
   descheduled mid-operation can never block its neighbours: upstream
   keeps enqueueing and downstream keeps consuming whatever is already
   buffered (with a blocking queue, a stalled worker holding a lock
   would freeze the pipe).  Each stage runs on its own domain. *)

module Q = Wfq.Wfqueue

type raw = { id : int; payload : string }
type parsed = { pid : int; words : int }
type enriched = { eid : int; words : int; score : float }

(* close-of-stream is signalled with a sentinel per stage *)
let raw_eof = { id = -1; payload = "" }
let parsed_eof = { pid = -1; words = 0 }
let enriched_eof = { eid = -1; words = 0; score = 0.0 }

let rec pop_blocking q h =
  match Q.dequeue q h with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    pop_blocking q h

let () =
  let items = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 50_000 in
  let raw_q : raw Q.t = Q.create ~segment_shift:8 () in
  let parsed_q : parsed Q.t = Q.create ~segment_shift:8 () in
  let enriched_q : enriched Q.t = Q.create ~segment_shift:8 () in

  let source =
    Domain.spawn (fun () ->
        let h = Q.register raw_q in
        for i = 1 to items do
          Q.enqueue raw_q h { id = i; payload = Printf.sprintf "record %d with some words" i }
        done;
        Q.enqueue raw_q h raw_eof)
  in

  let parser_stage =
    Domain.spawn (fun () ->
        let hin = Q.register raw_q in
        let hout = Q.register parsed_q in
        let rec loop () =
          let r = pop_blocking raw_q hin in
          if r.id < 0 then Q.enqueue parsed_q hout parsed_eof
          else begin
            let words = List.length (String.split_on_char ' ' r.payload) in
            Q.enqueue parsed_q hout { pid = r.id; words };
            loop ()
          end
        in
        loop ())
  in

  let enricher =
    Domain.spawn (fun () ->
        let hin = Q.register parsed_q in
        let hout = Q.register enriched_q in
        let rec loop () =
          let p = pop_blocking parsed_q hin in
          if p.pid < 0 then Q.enqueue enriched_q hout enriched_eof
          else begin
            let score = float_of_int p.words /. float_of_int (1 + (p.pid mod 7)) in
            Q.enqueue enriched_q hout { eid = p.pid; words = p.words; score };
            loop ()
          end
        in
        loop ())
  in

  let total_words = ref 0 and total_score = ref 0.0 and seen = ref 0 in
  let sink = Q.register enriched_q in
  let rec consume () =
    let e = pop_blocking enriched_q sink in
    if e.eid >= 0 then begin
      incr seen;
      total_words := !total_words + e.words;
      total_score := !total_score +. e.score;
      consume ()
    end
  in
  consume ();
  Domain.join source;
  Domain.join parser_stage;
  Domain.join enricher;
  Printf.printf "pipeline processed %d records: %d words, total score %.1f\n" !seen !total_words
    !total_score;
  Printf.printf "stage buffers at exit: raw=%d parsed=%d enriched=%d\n" (Q.approx_length raw_q)
    (Q.approx_length parsed_q) (Q.approx_length enriched_q);
  assert (!seen = items)
