(* Quickstart: the smallest useful program.

   Run with:  dune exec examples/quickstart.exe

   A wait-free multi-producer multi-consumer FIFO queue shared by
   several domains.  Each domain registers a handle once (its slot in
   the helping ring) and then enqueues/dequeues through it; the
   convenience [push]/[pop] wrappers manage handles automatically at a
   small cost. *)

module Q = Wfq.Wfqueue

let () =
  let queue : int Q.t = Q.create () in

  (* Explicit handles: one per domain, registered once. *)
  let producer =
    Domain.spawn (fun () ->
        let h = Q.register queue in
        for i = 1 to 10 do
          Q.enqueue queue h i
        done)
  in
  Domain.join producer;

  let h = Q.register queue in
  Printf.printf "drained:";
  let rec drain () =
    match Q.dequeue queue h with
    | Some v ->
      Printf.printf " %d" v;
      drain ()
    | None -> ()
  in
  drain ();
  print_newline ();

  (* Implicit handles: fine for casual use. *)
  Q.push queue 42;
  (match Q.pop queue with
  | Some v -> Printf.printf "popped %d\n" v
  | None -> assert false);

  (* Every operation completes in a bounded number of steps even if
     other domains stall mid-operation: that is the wait-freedom the
     paper provides, and it costs about one fetch-and-add per
     operation on the fast path. *)
  Printf.printf "path stats after this session: %s\n"
    (Format.asprintf "%a" Wfq.Op_stats.pp (Q.stats queue))
