examples/event_bus.mli:
