examples/pipeline.ml: Array Domain List Printf String Sys Wfq
