examples/pipeline.mli:
