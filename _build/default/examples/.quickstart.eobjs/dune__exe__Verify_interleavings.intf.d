examples/verify_interleavings.mli:
