examples/event_bus.ml: Array Domain Int64 List Primitives Printf Sys Wfq
