examples/verify_interleavings.ml: Array Int64 List Printf Simsched Sys
