examples/task_scheduler.ml: Array Atomic Domain Format List Printf Sys Wfq
