examples/quickstart.ml: Domain Format Printf Wfq
