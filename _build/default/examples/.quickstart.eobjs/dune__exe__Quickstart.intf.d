examples/quickstart.mli:
