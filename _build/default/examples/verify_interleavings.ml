(* Using the model checker as a library consumer: before trusting a
   lock-free structure in production, sweep the interleavings of your
   own usage pattern.

   Run with:  dune exec examples/verify_interleavings.exe -- [seeds]

   The queue algorithm here is the exact code of Wfq.Wfqueue,
   instantiated on simulated atomics (Simsched.Sim.Queue): every
   atomic access becomes a scheduling decision of a seeded scheduler,
   so one run = one precise, reproducible interleaving.  This example
   sweeps random seeds over a 2-producer/1-consumer pattern and also
   exhaustively enumerates every schedule with up to 2 preemptions. *)

module Q = Simsched.Sim.Queue
module Sim = Simsched.Sim

let () =
  let seeds = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5_000 in

  (* Part 1: random schedules *)
  let decisions = ref 0 in
  for seed = 1 to seeds do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let h1 = Q.register q and h2 = Q.register q and h3 = Q.register q in
    let got = ref [] in
    let stats =
      Sim.run ~seed:(Int64.of_int seed)
        [|
          (fun () ->
            Q.enqueue q h1 1;
            Q.enqueue q h1 2);
          (fun () -> Q.enqueue q h2 3);
          (fun () ->
            for _ = 1 to 4 do
              match Q.dequeue q h3 with Some v -> got := v :: !got | None -> ()
            done);
        |]
    in
    assert (not stats.Sim.max_steps_hit);
    decisions := !decisions + stats.Sim.scheduling_decisions;
    let rec drain () =
      match Q.dequeue q h3 with
      | Some v ->
        got := v :: !got;
        drain ()
      | None -> ()
    in
    drain ();
    assert (List.sort compare !got = [ 1; 2; 3 ])
  done;
  Printf.printf "random sweep: %d schedules, %d atomic-step decisions, all conserved values\n"
    seeds !decisions;

  (* Part 2: exhaustive, preemption-bounded *)
  let q = ref None in
  let make_fibers () =
    let queue = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let h1 = Q.register queue and h2 = Q.register queue in
    q := Some (queue, h2);
    [| (fun () -> Q.enqueue queue h1 7); (fun () -> ignore (Q.dequeue queue h2)) |]
  in
  let check () =
    match !q with
    | Some (queue, h) ->
      (* either the dequeue got the 7 or it is still in the queue *)
      let rec drain acc =
        match Q.dequeue queue h with Some v -> drain (v :: acc) | None -> acc
      in
      let leftover = drain [] in
      assert (leftover = [] || leftover = [ 7 ])
    | None -> assert false
  in
  let r = Sim.explore ~preemptions:2 ~make_fibers ~check () in
  Printf.printf "exhaustive sweep: %d schedules (%s), ≤2 preemptions, all passed\n" r.Sim.schedules
    (if r.Sim.exhausted then "entire bounded space" else "capped");
  print_endline "interleaving verification done"
