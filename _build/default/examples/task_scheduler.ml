(* A shared run-queue task scheduler: N workers pull closures from one
   wait-free queue; any worker (and any task) may also spawn new
   tasks.  This is the "OS/runtime scheduler substrate" use case for a
   hard-progress-guarantee queue: a worker preempted mid-dequeue can
   never block the other workers from obtaining tasks.

   Run with:  dune exec examples/task_scheduler.exe -- [tasks] [workers]

   The demo computes Fibonacci numbers with fork-join recursion, each
   fork being a task on the shared queue; completion is tracked with
   an outstanding-task counter. *)

module Q = Wfq.Wfqueue

type task = unit -> unit

let () =
  let n_tasks = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000 in
  let n_workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let run_queue : task Q.t = Q.create ~segment_shift:8 () in
  let outstanding = Atomic.make 0 in
  let results = Atomic.make 0 in

  (* submit is usable from any domain; handles are managed per domain
     by push *)
  let submit (t : task) =
    ignore (Atomic.fetch_and_add outstanding 1);
    Q.push run_queue t
  in

  (* naive fork-join fibonacci: each level forks a subtask *)
  let rec fib_task n (k : int -> unit) () =
    if n <= 1 then k n
    else begin
      let pending = Atomic.make 2 in
      let parts = Atomic.make 0 in
      let join v =
        ignore (Atomic.fetch_and_add parts v);
        if Atomic.fetch_and_add pending (-1) = 1 then k (Atomic.get parts)
      in
      submit (fib_task (n - 1) join);
      submit (fib_task (n - 2) join)
    end
  in

  for i = 1 to n_tasks do
    let n = 1 + (i mod 12) in
    submit (fib_task n (fun v -> ignore (Atomic.fetch_and_add results v)))
  done;

  let workers =
    List.init n_workers (fun _ ->
        Domain.spawn (fun () ->
            let h = Q.register run_queue in
            let rec work () =
              match Q.dequeue run_queue h with
              | Some t ->
                t ();
                ignore (Atomic.fetch_and_add outstanding (-1));
                work ()
              | None -> if Atomic.get outstanding > 0 then work () else ()
            in
            work ()))
  in
  List.iter Domain.join workers;

  let expected =
    let rec fib n = if n <= 1 then n else fib (n - 1) + fib (n - 2) in
    let total = ref 0 in
    for i = 1 to n_tasks do
      total := !total + fib (1 + (i mod 12))
    done;
    !total
  in
  Printf.printf "scheduler: %d root tasks on %d workers -> sum of fibs = %d (expected %d)\n"
    n_tasks n_workers (Atomic.get results) expected;
  Printf.printf "queue path stats: %s\n"
    (Format.asprintf "%a" Wfq.Op_stats.pp (Q.stats run_queue));
  assert (Atomic.get results = expected)
