(** Recording concurrent operation histories.

    The paper proves its queue linearizable (§4); we test it.  Each
    operation is recorded with invocation and response timestamps
    drawn from one global atomic counter, so timestamp order is a
    total order consistent with real-time precedence: operation A
    precedes B iff [A.res < B.inv].  Recording costs two
    fetch-and-adds per operation, which perturbs timing (more
    interleaving, if anything) but never misorders events. *)

type ('i, 'o) event = {
  thread : int;
  input : 'i;
  output : 'o;
  inv : int; (* invocation timestamp *)
  res : int; (* response timestamp *)
}

type ('i, 'o) recorder

val create_recorder : threads:int -> ('i, 'o) recorder
(** A recorder for thread ids [0 .. threads-1]. *)

val record : ('i, 'o) recorder -> thread:int -> 'i -> (unit -> 'o) -> 'o
(** [record r ~thread input f] runs [f] and logs the event in
    [thread]'s private buffer.  Only one domain may use a given
    [thread] id. *)

val events : ('i, 'o) recorder -> ('i, 'o) event array
(** All recorded events, sorted by invocation timestamp.  Call only
    after the recording threads have quiesced. *)

val size : ('i, 'o) recorder -> int

val precedes : ('i, 'o) event -> ('i, 'o) event -> bool
(** Real-time precedence: [a] responded before [b] was invoked. *)
