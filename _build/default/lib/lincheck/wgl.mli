(** Wing & Gong's linearizability checker (with Lowe's
    state-memoization pruning): an exhaustive search for a
    linearization of a complete history against a sequential spec.

    Exponential in the worst case — intended for the small randomized
    histories the test suite generates (tens to low hundreds of
    operations, a handful of threads).  Larger stress runs use
    {!Fast_fifo}'s polynomial necessary conditions instead. *)

module Make (S : Spec.S) : sig
  type verdict =
    | Linearizable of int list
      (** witness: event indices in linearization order *)
    | Not_linearizable
    | Too_large (** more than [max_events] events *)

  val max_events : int

  val check : (S.input, S.output) History.event array -> verdict
  (** The history must be complete (every invocation has a
      response — which [History.record] guarantees). *)

  val is_linearizable : (S.input, S.output) History.event array -> bool
  (** [Too_large] raises [Invalid_argument]. *)
end
