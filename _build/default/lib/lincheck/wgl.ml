module Make (S : Spec.S) = struct
  type verdict = Linearizable of int list | Not_linearizable | Too_large

  let max_events = 1024

  (* Visited-set key: the set of already-linearized events plus the
     abstract state they produced.  If we reach the same pair again,
     the subtree is known fruitless. *)
  module Seen = Hashtbl

  let check (evs : (S.input, S.output) History.event array) =
    let n = Array.length evs in
    if n > max_events then Too_large
    else if n = 0 then Linearizable []
    else begin
      let bytes_len = (n + 7) / 8 in
      let seen : (string * S.state, unit) Seen.t = Seen.create 4096 in
      let linearized = Bytes.make bytes_len '\000' in
      let is_lin i = Char.code (Bytes.get linearized (i / 8)) land (1 lsl (i mod 8)) <> 0 in
      let set_lin i b =
        let mask = 1 lsl (i mod 8) in
        let cur = Char.code (Bytes.get linearized (i / 8)) in
        Bytes.set linearized (i / 8) (Char.chr (if b then cur lor mask else cur land lnot mask))
      in
      (* Events sorted by inv (History.events guarantees this); a
         candidate for the next linearization point is any
         unlinearized event invoked before the earliest response among
         unlinearized events. *)
      let rec search state acc count =
        if count = n then Some (List.rev acc)
        else begin
          let key = (Bytes.to_string linearized, state) in
          if Seen.mem seen key then None
          else begin
            let min_res = ref max_int in
            for i = 0 to n - 1 do
              if (not (is_lin i)) && evs.(i).History.res < !min_res then
                min_res := evs.(i).History.res
            done;
            let result = ref None in
            let i = ref 0 in
            while !result = None && !i < n do
              let idx = !i in
              incr i;
              if (not (is_lin idx)) && evs.(idx).History.inv < !min_res then begin
                let e = evs.(idx) in
                match S.apply state e.History.input e.History.output with
                | Some state' ->
                  set_lin idx true;
                  (match search state' (idx :: acc) (count + 1) with
                  | Some _ as r -> result := r
                  | None -> set_lin idx false)
                | None -> ()
              end
            done;
            if !result = None then Seen.replace seen key ();
            !result
          end
        end
      in
      match search S.initial [] 0 with
      | Some order -> Linearizable order
      | None -> Not_linearizable
    end

  let is_linearizable evs =
    match check evs with
    | Linearizable _ -> true
    | Not_linearizable -> false
    | Too_large -> invalid_arg "Wgl.is_linearizable: history too large"
end
