type ('i, 'o) event = { thread : int; input : 'i; output : 'o; inv : int; res : int }

type ('i, 'o) recorder = {
  clock : int Atomic.t;
  buffers : ('i, 'o) event list ref array; (* one ref per thread, owner-written *)
}

let create_recorder ~threads =
  assert (threads > 0);
  { clock = Atomic.make 0; buffers = Array.init threads (fun _ -> ref []) }

let record r ~thread input f =
  let inv = Atomic.fetch_and_add r.clock 1 in
  let output = f () in
  let res = Atomic.fetch_and_add r.clock 1 in
  let buf = r.buffers.(thread) in
  buf := { thread; input; output; inv; res } :: !buf;
  output

let events r =
  let all = Array.of_list (List.concat_map (fun b -> !b) (Array.to_list r.buffers)) in
  Array.sort (fun a b -> compare a.inv b.inv) all;
  all

let size r = Array.fold_left (fun acc b -> acc + List.length !b) 0 r.buffers
let precedes a b = a.res < b.inv
