type violation =
  | Dequeued_never_enqueued of int
  | Dequeued_twice of int
  | Dequeue_before_enqueue of int
  | Fifo_inversion of int * int
  | Vacuous_empty of int
  | Value_lost of int

let pp_violation ppf = function
  | Dequeued_never_enqueued v -> Format.fprintf ppf "value %d dequeued but never enqueued" v
  | Dequeued_twice v -> Format.fprintf ppf "value %d dequeued twice" v
  | Dequeue_before_enqueue v ->
    Format.fprintf ppf "dequeue of %d responded before its enqueue was invoked" v
  | Fifo_inversion (a, b) ->
    Format.fprintf ppf "FIFO inversion: enq(%d) preceded enq(%d) but deq(%d) preceded deq(%d)" a b
      b a
  | Vacuous_empty v ->
    Format.fprintf ppf "EMPTY returned while value %d was provably in the queue" v
  | Value_lost v -> Format.fprintf ppf "value %d enqueued but never dequeued" v

(* Per-value interval data.  A value never dequeued has d_inv = d_res
   = max_int. *)
type item = {
  value : int;
  e_inv : int;
  e_res : int;
  mutable d_inv : int;
  mutable d_res : int;
}

let gather evs =
  let enqueues : (int, item) Hashtbl.t = Hashtbl.create 1024 in
  let first_error = ref None in
  let fail v = if !first_error = None then first_error := Some v in
  Array.iter
    (fun (e : (Queue_spec.input, Queue_spec.output) History.event) ->
      match e.History.input with
      | Queue_spec.Enq x ->
        if Hashtbl.mem enqueues x then
          invalid_arg "Fast_fifo.check: duplicate enqueued value (values must be distinct)"
        else
          Hashtbl.add enqueues x
            { value = x; e_inv = e.History.inv; e_res = e.History.res; d_inv = max_int; d_res = max_int }
      | Queue_spec.Deq -> ())
    evs;
  let empties = ref [] in
  Array.iter
    (fun (e : (Queue_spec.input, Queue_spec.output) History.event) ->
      match (e.History.input, e.History.output) with
      | Queue_spec.Deq, Queue_spec.Got v -> (
        match Hashtbl.find_opt enqueues v with
        | None -> fail (Dequeued_never_enqueued v)
        | Some item ->
          if item.d_inv <> max_int then fail (Dequeued_twice v)
          else begin
            item.d_inv <- e.History.inv;
            item.d_res <- e.History.res;
            if e.History.res < item.e_inv then fail (Dequeue_before_enqueue v)
          end)
      | Queue_spec.Deq, Queue_spec.Empty -> empties := e :: !empties
      | Queue_spec.Deq, Queue_spec.Accepted | Queue_spec.Enq _, _ -> ())
    evs;
  (enqueues, !empties, !first_error)

let check ?(complete = false) evs =
  let enqueues, empties, early = gather evs in
  match early with
  | Some v -> Error v
  | None ->
    let items = Hashtbl.fold (fun _ it acc -> it :: acc) enqueues [] in
    let items = Array.of_list items in
    let n = Array.length items in
    let result = ref (Ok ()) in
    let fail v = if !result = Ok () then result := Error v in
    if complete then
      Array.iter (fun it -> if it.d_inv = max_int then fail (Value_lost it.value)) items;
    (* FIFO inversions: sort by e_inv; a value b whose enqueue begins
       after a's enqueue ends is "later"; if such a b has d_res <
       a's d_inv, then deq(b) wholly preceded deq(a): inversion.
       Suffix minima over (d_res, witness) make each query O(log n). *)
    if !result = Ok () && n > 0 then begin
      Array.sort (fun x y -> compare x.e_inv y.e_inv) items;
      let suffix_min = Array.make n (max_int, -1) in
      for i = n - 1 downto 0 do
        let here = (items.(i).d_res, i) in
        suffix_min.(i) <-
          (if i = n - 1 then here
           else if fst suffix_min.(i + 1) < fst here then suffix_min.(i + 1)
           else here)
      done;
      (* first index whose e_inv > bound *)
      let first_after bound =
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if items.(mid).e_inv > bound then hi := mid else lo := mid + 1
        done;
        !lo
      in
      Array.iter
        (fun a ->
          if a.d_inv <> max_int && !result = Ok () then begin
            let j = first_after a.e_res in
            if j < n then begin
              let min_dres, widx = suffix_min.(j) in
              if min_dres < a.d_inv then fail (Fifo_inversion (a.value, items.(widx).value))
            end
          end)
        items;
      (* Vacuous EMPTY: value v with e_res < empty.inv and d_inv >
         empty.res was in the queue for the whole EMPTY interval.
         Prefix maxima of d_inv over values sorted by e_res. *)
      if !result = Ok () then begin
        Array.sort (fun x y -> compare x.e_res y.e_res) items;
        let prefix_max = Array.make n (min_int, -1) in
        for i = 0 to n - 1 do
          let here = (items.(i).d_inv, i) in
          prefix_max.(i) <-
            (if i = 0 then here
             else if fst prefix_max.(i - 1) > fst here then prefix_max.(i - 1)
             else here)
        done;
        (* last index whose e_res < bound *)
        let last_before bound =
          let lo = ref (-1) and hi = ref (n - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi + 1) / 2 in
            if items.(mid).e_res < bound then lo := mid else hi := mid - 1
          done;
          if !lo >= 0 && items.(!lo).e_res < bound then !lo else -1
        in
        List.iter
          (fun (e : (Queue_spec.input, Queue_spec.output) History.event) ->
            if !result = Ok () then begin
              let j = last_before e.History.inv in
              if j >= 0 then begin
                let max_dinv, widx = prefix_max.(j) in
                if max_dinv > e.History.res then fail (Vacuous_empty items.(widx).value)
              end
            end)
          empties
      end
    end;
    !result
