(** Sequential specifications for linearizability checking. *)

module type S = sig
  type state
  (** Must support structural equality and [Hashtbl.hash] (used to
      memoize checker states): plain data, no functions or cycles. *)

  type input
  type output

  val initial : state

  val apply : state -> input -> output -> state option
  (** [apply st i o] is [Some st'] when, in state [st], the operation
      [i] may legally return [o], leaving state [st']; [None]
      otherwise. *)
end
