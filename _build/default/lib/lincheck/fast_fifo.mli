(** Polynomial necessary-condition checking for large FIFO histories.

    The WGL checker is complete but exponential; stress tests record
    hundreds of thousands of operations.  For histories with distinct
    enqueued values, this module checks in O(n log n) a set of
    conditions every linearizable FIFO history must satisfy:

    - no value is dequeued that was never enqueued, and none twice;
    - a dequeue of [v] does not respond before [v]'s enqueue begins;
    - no FIFO inversion: if enq(a) precedes enq(b) in real time, then
      deq(b) does not precede deq(a) in real time;
    - no vacuous EMPTY: a dequeue may not return EMPTY if some value
      was enqueued (response before the dequeue's invocation) and not
      removed until after the dequeue responded — such a value was in
      the queue throughout.

    Violating any condition proves non-linearizability; passing them
    all does not prove linearizability (the complete check is
    {!Wgl}).  With [complete = true] the history is additionally
    required to dequeue every enqueued value (drained runs). *)

type violation =
  | Dequeued_never_enqueued of int
  | Dequeued_twice of int
  | Dequeue_before_enqueue of int
  | Fifo_inversion of int * int
    (** [(a, b)]: enq(a) preceded enq(b), yet deq(b) preceded deq(a) *)
  | Vacuous_empty of int
    (** value that was provably in the queue across an EMPTY dequeue *)
  | Value_lost of int (** only with [complete = true]: never dequeued *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?complete:bool ->
  (Queue_spec.input, Queue_spec.output) History.event array ->
  (unit, violation) result
(** [complete] defaults to false. *)
