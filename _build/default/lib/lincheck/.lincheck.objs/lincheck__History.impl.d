lib/lincheck/history.ml: Array Atomic List
