lib/lincheck/spec.ml:
