lib/lincheck/queue_spec.mli: Format Spec
