lib/lincheck/history.mli:
