lib/lincheck/fast_fifo.ml: Array Format Hashtbl History List Queue_spec
