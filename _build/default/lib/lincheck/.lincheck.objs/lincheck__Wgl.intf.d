lib/lincheck/wgl.mli: History Spec
