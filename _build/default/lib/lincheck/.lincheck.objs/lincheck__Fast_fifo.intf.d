lib/lincheck/fast_fifo.mli: Format History Queue_spec
