lib/lincheck/queue_spec.ml: Format
