lib/lincheck/wgl.ml: Array Bytes Char Hashtbl History List Spec
