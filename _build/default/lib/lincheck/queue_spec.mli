(** The sequential FIFO-queue specification over integer payloads
    (§3.1 of the paper): state is a sequence; enqueue appends;
    dequeue removes the first value or reports EMPTY. *)

type input = Enq of int | Deq
type output = Accepted | Got of int | Empty

include Spec.S with type input := input and type output := output and type state = int list

val pp_input : Format.formatter -> input -> unit
val pp_output : Format.formatter -> output -> unit
