type input = Enq of int | Deq
type output = Accepted | Got of int | Empty
type state = int list (* oldest value first *)

let initial = []

let apply st input output =
  match (input, output) with
  | Enq x, Accepted -> Some (st @ [ x ])
  | Deq, Got v -> ( match st with y :: rest when y = v -> Some rest | _ -> None)
  | Deq, Empty -> ( match st with [] -> Some [] | _ :: _ -> None)
  | Enq _, (Got _ | Empty) | Deq, Accepted -> None

let pp_input ppf = function
  | Enq x -> Format.fprintf ppf "enq(%d)" x
  | Deq -> Format.fprintf ppf "deq"

let pp_output ppf = function
  | Accepted -> Format.fprintf ppf "ok"
  | Got v -> Format.fprintf ppf "got(%d)" v
  | Empty -> Format.fprintf ppf "empty"
