(** The paper's FAA microbenchmark (§5): "simulates enqueue and
    dequeue operations with FAA primitives on two shared variables".

    {b Not a queue}: dequeue returns a witness value without any FIFO
    semantics.  It exists purely as the practical upper bound on the
    throughput of any FAA-based queue, plotted alongside the real
    queues in Figure 2. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val register : 'a t -> 'a handle

val enqueue : 'a t -> 'a handle -> 'a -> unit
(** One FAA on the enqueue counter. *)

val dequeue : 'a t -> 'a handle -> 'a option
(** One FAA on the dequeue counter; returns the first value ever
    enqueued (or [None] before any enqueue). *)

val enqueue_count : 'a t -> int
val dequeue_count : 'a t -> int
