(** Michael & Scott's two-lock blocking queue (PODC 1996).

    One lock protects the head, another the tail, so one enqueuer and
    one dequeuer can proceed concurrently.  A blocking reference point
    below CC-Queue: it serializes all enqueuers against each other and
    all dequeuers against each other with plain mutexes. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val register : 'a t -> 'a handle
val enqueue : 'a t -> 'a handle -> 'a -> unit
val dequeue : 'a t -> 'a handle -> 'a option
