lib/baselines/lcrq.ml: Lcrq_algo Primitives
