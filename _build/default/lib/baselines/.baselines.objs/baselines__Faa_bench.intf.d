lib/baselines/faa_bench.mli:
