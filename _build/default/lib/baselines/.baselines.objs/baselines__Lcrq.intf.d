lib/baselines/lcrq.mli:
