lib/baselines/two_lock_queue.ml: Atomic Mutex
