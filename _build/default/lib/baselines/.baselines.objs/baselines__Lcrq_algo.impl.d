lib/baselines/lcrq_algo.ml: Crq_algo Primitives
