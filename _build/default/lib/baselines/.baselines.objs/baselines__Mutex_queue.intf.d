lib/baselines/mutex_queue.mli:
