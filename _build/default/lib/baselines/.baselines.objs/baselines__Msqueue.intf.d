lib/baselines/msqueue.mli:
