lib/baselines/msqueue.ml: Msqueue_algo Primitives
