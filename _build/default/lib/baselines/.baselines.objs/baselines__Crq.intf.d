lib/baselines/crq.mli: Atomic
