lib/baselines/crq_algo.ml: Array Primitives
