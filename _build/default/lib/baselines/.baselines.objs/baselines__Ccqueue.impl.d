lib/baselines/ccqueue.ml: Atomic Sync
