lib/baselines/msqueue_algo.ml: Primitives
