lib/baselines/mutex_queue.ml: Mutex Queue
