lib/baselines/kp_queue.ml: Array Atomic
