lib/baselines/ccqueue.mli:
