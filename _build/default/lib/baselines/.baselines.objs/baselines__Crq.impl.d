lib/baselines/crq.ml: Crq_algo Primitives
