lib/baselines/kp_queue.mli:
