lib/baselines/two_lock_queue.mli:
