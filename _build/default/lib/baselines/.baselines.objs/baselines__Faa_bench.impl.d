lib/baselines/faa_bench.ml: Atomic
