(** A single global mutex around [Stdlib.Queue]: the naive blocking
    baseline, useful as a sanity floor in the evaluation. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val register : 'a t -> 'a handle
val enqueue : 'a t -> 'a handle -> 'a -> unit
val dequeue : 'a t -> 'a handle -> 'a option
val length : 'a t -> int
