(* Hardware-atomics instantiation; see crq.mli. *)
include Crq_algo.Make (Primitives.Atomic_prims.Real)
