type 'a t = { lock : Mutex.t; q : 'a Queue.t }
type 'a handle = unit

let create () = { lock = Mutex.create (); q = Queue.create () }
let register _t = ()

let enqueue t () v =
  Mutex.lock t.lock;
  Queue.push v t.q;
  Mutex.unlock t.lock

let dequeue t () =
  Mutex.lock t.lock;
  let v = Queue.take_opt t.q in
  Mutex.unlock t.lock;
  v

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n
