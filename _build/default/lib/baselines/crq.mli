(** A single Circular Ring Queue (CRQ) from Morrison & Afek's LCRQ
    (PPoPP 2013) — one bounded FAA-based ring.

    Each ring slot holds an atomic triple (safe bit, index, value)
    that the original updates with double-width CAS (CAS2).  Here a
    slot is one [Atomic.t] containing an immutable record: a load is
    an atomic snapshot and a CAS against the loaded record is the CAS2
    transition (DESIGN.md §2.3).

    A CRQ can {e close} (enqueues return [`Closed]) when it fills or
    when an enqueuer starves; {!Lcrq} then links a fresh CRQ behind
    it.  Exposed separately from {!Lcrq} for unit testing. *)

type 'a t

val create : size:int -> 'a t
(** [size] must be a power of two ≥ 2. *)

val enqueue : 'a t -> 'a -> [ `Ok | `Closed ]
val dequeue : 'a t -> 'a option

val close : 'a t -> unit
(** Force the closed bit (normally set internally). *)

val is_closed : 'a t -> bool

val next : 'a t -> 'a t option Atomic.t
(** The link field used by {!Lcrq}. *)

val size : 'a t -> int
