(* [next] is atomic because when the queue is empty the dequeuer reads
   the dummy's next while an enqueuer writes it; the two mutexes are
   distinct so that access is a race that needs a synchronized
   location (the original algorithm assumes atomic word access). *)
type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  mutable head : 'a node;
  mutable tail : 'a node;
  head_lock : Mutex.t;
  tail_lock : Mutex.t;
}

type 'a handle = unit

let create () =
  let dummy = { value = None; next = Atomic.make None } in
  { head = dummy; tail = dummy; head_lock = Mutex.create (); tail_lock = Mutex.create () }

let register _t = ()

let enqueue t () v =
  let n = { value = Some v; next = Atomic.make None } in
  Mutex.lock t.tail_lock;
  Atomic.set t.tail.next (Some n);
  t.tail <- n;
  Mutex.unlock t.tail_lock

let dequeue t () =
  Mutex.lock t.head_lock;
  let v =
    match Atomic.get t.head.next with
    | None -> None
    | Some n ->
      let v = n.value in
      n.value <- None; (* the node becomes the new dummy *)
      t.head <- n;
      v
  in
  Mutex.unlock t.head_lock;
  v
