(** Kogan & Petrank's wait-free queue (PPoPP 2011), the first
    practical wait-free MPMC queue and the prior wait-free design the
    paper discusses in §2.

    An MS-Queue list augmented with a phase-numbered announcement
    array: every operation announces itself with a phase higher than
    all it has seen, then helps all pending operations with
    lower-or-equal phases before (and while) completing its own — so
    every operation completes within a bounded number of steps, at the
    cost of all-to-all helping traffic on every operation.  The paper
    notes its performance is at best that of MS-Queue; it is included
    here to make that comparison concrete.

    The announcement array is sized at creation: at most
    [max_threads] handles can register. *)

type 'a t
type 'a handle

val create : ?max_threads:int -> unit -> 'a t
(** [max_threads] defaults to 128 (the OCaml domain limit). *)

val register : 'a t -> 'a handle
(** Raises [Failure] if [max_threads] handles already exist. *)

val enqueue : 'a t -> 'a handle -> 'a -> unit
val dequeue : 'a t -> 'a handle -> 'a option
