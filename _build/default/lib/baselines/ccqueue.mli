(** CC-Queue (Fatourou & Kallimanis, PPoPP 2012): a blocking queue
    built from two {!Sync.Ccsynch} combining instances — one
    serializing enqueues over the list tail, one serializing dequeues
    over the list head — over a dummy-headed linked list (the same
    structural split as the two-lock queue, with each lock replaced by
    combining).

    Combining gives low synchronization traffic but no non-blocking
    progress: a descheduled combiner stalls its whole side, which is
    the weakness the paper's evaluation exposes under
    oversubscription. *)

type 'a t
type 'a handle

val create : ?max_combine:int -> unit -> 'a t
val register : 'a t -> 'a handle
val enqueue : 'a t -> 'a handle -> 'a -> unit
val dequeue : 'a t -> 'a handle -> 'a option
