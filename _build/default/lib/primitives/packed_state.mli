(** Packed request state words.

    The paper's enqueue and dequeue requests carry a one-word state
    [{ pending : 1 bit; id : 63 bits }] (Listing 2, lines 12 and 15)
    that is claimed and closed with single-word CAS.  OCaml's native
    [int] is 63-bit, so we pack the index into the upper bits and the
    pending flag into bit 0.  Indices are cell indices obtained by
    fetch-and-add, so the 62 usable bits overflow only after 2^62
    operations. *)

type t = private int

val make : pending:bool -> id:int -> t
(** [make ~pending ~id] packs a state word.  [id] must be
    non-negative. *)

val initial : t
(** The all-zero state [(pending = false, id = 0)] used for freshly
    created requests. *)

val pending : t -> bool
val id : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
