type t = { min_spins : int; max_spins : int; mutable spins : int }

let create ?(min_spins = 8) ?(max_spins = 4096) () =
  assert (min_spins > 0 && max_spins >= min_spins);
  { min_spins; max_spins; spins = min_spins }

(* The loop body writes a mutable cell so the compiler cannot discard
   it; [Domain.cpu_relax] yields the core's pipeline to hyperthread
   siblings where available. *)
let sink = ref 0

let spin n =
  for i = 1 to n do
    sink := !sink + i;
    Domain.cpu_relax ()
  done

let backoff t =
  spin t.spins;
  t.spins <- min (t.spins * 2) t.max_spins

let reset t = t.spins <- t.min_spins
let current_spins t = t.spins
