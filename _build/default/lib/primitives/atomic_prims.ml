(** The atomic primitives the queue algorithm is written against.

    The algorithm ({!Wfqueue_algo.Make}) is a functor over this
    signature so that the same algorithm text runs both on real
    hardware atomics ({!Real}, used by {!Wfqueue}) and on the
    simulated, schedule-controlled atomics of the model-checking
    harness ([Simsched.Sim_atomic]), where every primitive is a
    preemption point that a test scheduler chooses to interleave. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Physical-equality compare-and-set, as [Stdlib.Atomic]. *)

  val fetch_and_add : int t -> int -> int
  val cpu_relax : unit -> unit
end

(** Hardware atomics: [Stdlib.Atomic] (sequentially consistent). *)
module Real : S with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
  let cpu_relax = Domain.cpu_relax
end

(** The paper's IBM Power7 configuration: the architecture has no
    native fetch-and-add, so FAA is emulated with an LL/SC (here CAS)
    retry loop — which "sacrifices the wait freedom of our queue ...
    [but] still performs well in practice" (§3.1, §5.2).  Everything
    else is hardware-atomic.  Instantiating {!Wfqueue_algo.Make} over
    this gives the queue the paper benchmarked on Power7. *)
module Emulated_faa : S with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set

  let rec fetch_and_add r n =
    let old = Atomic.get r in
    if Atomic.compare_and_set r old (old + n) then old else fetch_and_add r n

  let cpu_relax = Domain.cpu_relax
end
