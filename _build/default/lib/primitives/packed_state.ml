type t = int

let make ~pending ~id =
  assert (id >= 0);
  (id lsl 1) lor (if pending then 1 else 0)

let initial = 0
let pending t = t land 1 = 1
let id t = t lsr 1
let equal = Int.equal

let pp ppf t =
  Format.fprintf ppf "(pending=%b, id=%d)" (pending t) (id t)
