type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

let next_int t bound =
  assert (bound > 0);
  (* Take the top bits (better distributed in SplitMix64) and reduce.
     The modulo bias is < bound / 2^62, negligible for workload
     generation. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let next_float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L
