(** SplitMix64 pseudo-random number generator (Steele et al., 2014).

    Deterministic, splittable and fast; one instance per benchmark
    thread gives reproducible workloads without sharing (the benchmark
    framework the paper builds on seeds one generator per thread).
    Implemented over [Int64] for exact 64-bit arithmetic. *)

type t

val create : int64 -> t
(** [create seed] makes a generator; equal seeds yield equal streams. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)]. [bound > 0]. *)

val next_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin flip. *)
