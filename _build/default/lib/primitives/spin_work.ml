(* The spin loop writes to a shared sink so that neither the compiler
   nor an idle CPU can elide it.  Calibration runs the same loop the
   delay uses, long enough (~20 ms) to dwarf timer resolution. *)

let sink = ref 0

let spin n =
  for i = 1 to n do
    sink := !sink lxor i
  done

let rate = Atomic.make 0.0 (* iterations per nanosecond; 0 = not yet *)

let measure_once iters =
  let t0 = Clock.now () in
  spin iters;
  let t1 = Clock.now () in
  let elapsed_ns = (t1 -. t0) *. 1e9 in
  if elapsed_ns <= 0.0 then infinity else float_of_int iters /. elapsed_ns

let calibrate () =
  let current = Atomic.get rate in
  if current > 0.0 then current
  else begin
    (* Grow the iteration count until one measurement takes >= 5 ms,
       then take the median of three runs for stability. *)
    let iters = ref 100_000 in
    while
      let t0 = Clock.now () in
      spin !iters;
      Clock.now () -. t0 < 0.005
    do
      iters := !iters * 4
    done;
    let samples = List.init 3 (fun _ -> measure_once !iters) in
    let median =
      match List.sort compare samples with
      | [ _; m; _ ] -> m
      | _ -> assert false
    in
    Atomic.set rate median;
    median
  end

let iterations_for_ns ns =
  let r = calibrate () in
  int_of_float (ceil (float_of_int ns *. r))

let delay_ns ns = if ns > 0 then spin (iterations_for_ns ns)

let random_work rng ~min_ns ~max_ns =
  assert (max_ns >= min_ns);
  let ns = min_ns + Splitmix64.next_int rng (max_ns - min_ns + 1) in
  delay_ns ns
