(** Calibrated busy-work between queue operations.

    The paper's benchmarks insert a random 50–100 ns of "work" between
    operations to avoid artificial long-run scenarios (§5.1, following
    Michael & Scott).  This module calibrates a pure spin loop against
    the wall clock once, then converts nanoseconds to loop iterations.

    Calibration happens lazily on first use and can be forced with
    {!calibrate}.  The result is a machine-dependent iterations/ns rate
    shared by all domains (read-only after initialization). *)

val calibrate : unit -> float
(** Measure and memoize the spin rate, in iterations per nanosecond.
    Idempotent; returns the memoized rate on later calls. *)

val delay_ns : int -> unit
(** Busy-spin for approximately the given number of nanoseconds. *)

val random_work : Splitmix64.t -> min_ns:int -> max_ns:int -> unit
(** Spin for a uniformly random duration in [\[min_ns, max_ns\]], as the
    paper's benchmark loop does with 50–100 ns. *)

val iterations_for_ns : int -> int
(** Expose the ns→iterations conversion for testing. *)
