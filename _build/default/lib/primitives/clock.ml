let now = Unix.gettimeofday

let time_it f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let now_ns = Monotonic_clock.now
