lib/primitives/splitmix64.ml: Int64
