lib/primitives/atomic_prims.ml: Atomic Domain
