lib/primitives/splitmix64.mli:
