lib/primitives/backoff.ml: Domain
