lib/primitives/spin_work.ml: Atomic Clock List Splitmix64
