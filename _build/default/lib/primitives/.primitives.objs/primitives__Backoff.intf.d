lib/primitives/backoff.mli:
