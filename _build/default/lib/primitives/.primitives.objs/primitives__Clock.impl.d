lib/primitives/clock.ml: Monotonic_clock Unix
