lib/primitives/clock.mli:
