lib/primitives/packed_state.mli: Format
