lib/primitives/spin_work.mli: Splitmix64
