lib/primitives/packed_state.ml: Format Int
