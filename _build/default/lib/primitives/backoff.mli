(** Truncated exponential backoff.

    Used by the CAS-retry baselines (MS-Queue, LCRQ) to reduce
    contention on failed CAS, as in the original implementations the
    paper compares against.  The wait-free queue itself never needs
    backoff: its FAA always succeeds. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Fresh backoff state.  [min_spins] (default 8) is the first delay,
    doubling after each {!backoff} up to [max_spins] (default 4096). *)

val backoff : t -> unit
(** Spin for the current delay, then double it (saturating). *)

val reset : t -> unit
(** Return to the minimum delay (call after a successful operation). *)

val current_spins : t -> int
(** The delay that the next {!backoff} will use, for testing. *)
