(** Wall-clock timing for throughput measurement.

    Throughput in the paper is operations per second of wall time over
    all threads, so we use the system real-time clock.  Resolution is
    microseconds, far below the seconds-long benchmark iterations. *)

val now : unit -> float
(** Seconds since the epoch. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f] and returns its result with the elapsed wall
    time in seconds. *)

val now_ns : unit -> int64
(** Monotonic clock in nanoseconds (clock_gettime MONOTONIC), for
    per-operation latency measurement where microsecond resolution is
    not enough. *)
