lib/simsched/sim.mli: Baselines Wfq
