lib/simsched/sim.ml: Array Baselines Effect List Primitives Wfq
