(** Reusable synchronization barrier for benchmark phases.

    All benchmark threads wait on a barrier before timing starts so
    that domain spawn latency is excluded, exactly as the framework the
    paper builds on does.  The host is heavily oversubscribed (see
    DESIGN.md §2.1), so this barrier blocks on a condition variable
    rather than spinning: it is used only outside timed regions. *)

type t

val create : int -> t
(** [create parties] makes a barrier for [parties] threads.
    [parties >= 1]. *)

val await : t -> unit
(** Block until all parties have called [await]; then all are
    released and the barrier resets for reuse. *)

val parties : t -> int
