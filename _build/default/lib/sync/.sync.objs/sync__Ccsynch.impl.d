lib/sync/ccsynch.ml: Atomic Domain Unix
