lib/sync/spinlock.mli:
