lib/sync/spinlock.ml: Atomic Primitives
