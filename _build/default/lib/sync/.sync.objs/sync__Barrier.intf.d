lib/sync/barrier.mli:
