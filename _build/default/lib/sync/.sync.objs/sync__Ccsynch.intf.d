lib/sync/ccsynch.mli:
