lib/sync/barrier.ml: Condition Mutex
