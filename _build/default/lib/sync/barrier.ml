type t = {
  parties : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable arrived : int;
  mutable generation : int;
}

let create parties =
  assert (parties >= 1);
  { parties; mutex = Mutex.create (); cond = Condition.create (); arrived = 0; generation = 0 }

let parties t = t.parties

let await t =
  Mutex.lock t.mutex;
  let gen = t.generation in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    t.arrived <- 0;
    t.generation <- gen + 1;
    Condition.broadcast t.cond
  end
  else
    while t.generation = gen do
      Condition.wait t.cond t.mutex
    done;
  Mutex.unlock t.mutex
