type t = { locked : bool Atomic.t }

let create () = { locked = Atomic.make false }
let try_acquire t = (not (Atomic.get t.locked)) && Atomic.compare_and_set t.locked false true

let acquire t =
  let b = Primitives.Backoff.create () in
  while not (try_acquire t) do
    Primitives.Backoff.backoff b
  done

let release t = Atomic.set t.locked false

let with_lock t f =
  acquire t;
  match f () with
  | x ->
    release t;
    x
  | exception e ->
    release t;
    raise e
