(** CC-Synch combining (Fatourou & Kallimanis, PPoPP 2012).

    Threads publish requests into a queue of combining nodes obtained
    with an atomic swap on a shared tail.  The thread at the head of
    that queue becomes the {e combiner} and executes up to
    [max_combine] pending requests sequentially before handing the
    combiner role to the next waiting thread.  This is the
    synchronization engine of the CC-Queue baseline (paper §2): low
    synchronization traffic, but blocking — a descheduled combiner
    stalls everyone, which is exactly the weakness the wait-free queue
    avoids.

    Each participating thread needs its own {!handle} (a recyclable
    combining node); sharing a handle between threads is unsound. *)

type t

type handle

val create : ?max_combine:int -> unit -> t
(** [max_combine] (default 1024) bounds how many requests one combiner
    executes before relinquishing, which bounds unfairness. *)

val handle : t -> handle
(** A fresh per-thread handle. *)

val apply : t -> handle -> (unit -> 'a) -> 'a
(** [apply t h f] executes [f] as a critical operation: all [apply]
    calls on [t] appear to execute sequentially.  [f] runs either on
    this thread (as combiner) or on another thread that combines for
    us; it must not itself call [apply] on the same [t]. *)
