(** Test-and-test-and-set spinlock with exponential backoff.

    Used by the simplest blocking baseline and by tests; the measured
    blocking baselines (two-lock queue, mutex queue) use it or
    [Stdlib.Mutex] as documented per queue. *)

type t

val create : unit -> t

val acquire : t -> unit
val release : t -> unit

val try_acquire : t -> bool
(** Non-blocking attempt; true on success. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run the thunk under the lock, releasing on exception. *)
