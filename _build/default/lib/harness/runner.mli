(** Executing one benchmark configuration across domains.

    Mirrors the framework the paper evaluates with (§5.1): spawn the
    worker threads, rendezvous on a barrier so spawn latency is
    outside the timed region, run every thread's share of the
    workload, and report aggregate throughput.

    {b Host adaptation} (DESIGN.md §2.1): this machine exposes one
    hardware thread, so every spin of injected "think time" competes
    for the same core as queue work.  The paper excludes think time
    from its numbers; we do the same by estimating the wall-clock cost
    of the injected spins (they serialize on one core) and reporting
    both raw and work-excluded throughput. *)

type measurement = {
  threads : int;
  ops : int; (* operations actually performed *)
  elapsed_s : float;
  injected_ns : float; (* expected total think time across threads *)
  mops : float; (* raw throughput, Mops/s *)
  mops_excl_work : float; (* throughput with think time excluded *)
}

val run_once : Queues.instance -> Workload.spec -> threads:int -> measurement
(** One timed iteration.  Spawns [threads] domains (the main domain
    only coordinates).  [threads] must be within domain limits
    (checked). *)

val measure :
  ?quick:bool ->
  Queues.factory ->
  Workload.spec ->
  threads:int ->
  Stats.Steady_state.report
(** Full methodology: by default 10 invocations (fresh queue each) of
    up to 20 iterations with steady-state detection, 95% confidence
    interval over invocation means of work-excluded Mops/s.  [quick]
    drops to 3 invocations of up to 5 iterations with a window of 3,
    for smoke-level runs. *)

val max_threads : int
(** Largest [threads] value accepted (OCaml domain limit headroom). *)
