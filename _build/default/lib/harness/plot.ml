type series = { label : string; points : float array }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '~'; '$' |]

let render ?(width = 64) ?(height = 16) ~x_labels ~y_label series =
  let n = List.length x_labels in
  if n = 0 then invalid_arg "Plot.render: no x positions";
  List.iter
    (fun s ->
      if Array.length s.points <> n then
        invalid_arg
          (Printf.sprintf "Plot.render: series %S has %d points for %d x positions" s.label
             (Array.length s.points) n))
    series;
  let y_max =
    List.fold_left (fun acc s -> Array.fold_left Float.max acc s.points) 1e-9 series
  in
  (* canvas rows are top-down; row 0 = y_max, row height-1 = 0 *)
  let canvas = Array.make_matrix height width ' ' in
  let x_of i = if n = 1 then width / 2 else i * (width - 1) / (n - 1) in
  let y_of v =
    let frac = Float.max 0.0 (Float.min 1.0 (v /. y_max)) in
    let row = int_of_float (Float.round (float_of_int (height - 1) *. (1.0 -. frac))) in
    max 0 (min (height - 1) row)
  in
  (* draw connecting segments with linear interpolation, then mark the
     data points with the series glyph so points override lines *)
  List.iteri
    (fun si s ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      for i = 0 to n - 2 do
        let x0 = x_of i and x1 = x_of (i + 1) in
        let y0 = y_of s.points.(i) and y1 = y_of s.points.(i + 1) in
        for x = x0 to x1 do
          let t = if x1 = x0 then 0.0 else float_of_int (x - x0) /. float_of_int (x1 - x0) in
          let y = int_of_float (Float.round (float_of_int y0 +. (t *. float_of_int (y1 - y0)))) in
          if canvas.(y).(x) = ' ' then canvas.(y).(x) <- '.'
        done
      done;
      Array.iteri (fun i v -> canvas.(y_of v).(x_of i) <- glyph) s.points)
    series;
  let buf = Buffer.create ((height + 3) * (width + 12)) in
  Buffer.add_string buf (Printf.sprintf "%s (max %.3f)\n" y_label y_max);
  Array.iteri
    (fun row line ->
      let y_val = y_max *. float_of_int (height - 1 - row) /. float_of_int (height - 1) in
      Buffer.add_string buf (Printf.sprintf "%8.2f |" y_val);
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (String.make 9 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  (* x tick labels, left-aligned at their positions *)
  let labels = Array.of_list x_labels in
  let tick_line = Bytes.make (width + 16) ' ' in
  Array.iteri
    (fun i lbl ->
      let pos = 10 + x_of i in
      String.iteri
        (fun j ch -> if pos + j < Bytes.length tick_line then Bytes.set tick_line (pos + j) ch)
        lbl)
    labels;
  Buffer.add_string buf (Bytes.to_string tick_line);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print ?width ?height ~title ~x_labels ~y_label series =
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '-');
  print_string (render ?width ?height ~x_labels ~y_label series);
  List.iteri
    (fun si s ->
      Printf.printf "  %c = %s%s" glyphs.(si mod Array.length glyphs) s.label
        (if (si + 1) mod 4 = 0 then "\n" else ""))
    series;
  print_newline ();
  flush stdout
