type kind = Pairs | Fifty_fifty

let kind_of_string = function
  | "pairs" -> Ok Pairs
  | "half" | "50-enqueues" | "fifty" -> Ok Fifty_fifty
  | s -> Error (Printf.sprintf "unknown workload %S (expected \"pairs\" or \"half\")" s)

let kind_to_string = function Pairs -> "pairs" | Fifty_fifty -> "half"

type spec = {
  kind : kind;
  total_ops : int;
  work_ns : (int * int) option;
  seed : int64;
}

let default kind = { kind; total_ops = 10_000_000; work_ns = Some (50, 100); seed = 0x5eedL }
let scaled kind ~total_ops = { (default kind) with total_ops }

let ops_per_thread spec ~threads =
  assert (threads > 0);
  let share = spec.total_ops / threads in
  match spec.kind with
  | Pairs -> share / 2 * 2 (* whole pairs *)
  | Fifty_fifty -> share

let think rng spec =
  match spec.work_ns with
  | None -> ()
  | Some (lo, hi) -> Primitives.Spin_work.random_work rng ~min_ns:lo ~max_ns:hi

let thread_body spec ~thread (ops : Queues.ops) ~threads () =
  let rng = Primitives.Splitmix64.create (Int64.add spec.seed (Int64.of_int (thread * 7919))) in
  let performed = ref 0 in
  (match spec.kind with
  | Pairs ->
    let pairs = ops_per_thread spec ~threads / 2 in
    for i = 0 to pairs - 1 do
      ops.enqueue ((thread * 0x40000000) + i);
      think rng spec;
      ignore (ops.dequeue ());
      think rng spec;
      performed := !performed + 2
    done
  | Fifty_fifty ->
    let count = ops_per_thread spec ~threads in
    for i = 0 to count - 1 do
      if Primitives.Splitmix64.bool rng then ops.enqueue ((thread * 0x40000000) + i)
      else ignore (ops.dequeue ());
      think rng spec;
      incr performed
    done);
  !performed
