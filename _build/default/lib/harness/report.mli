(** Fixed-width text tables and CSV output for the experiment
    drivers.  Every table/figure regeneration prints through this
    module so EXPERIMENTS.md and the bench logs share one format. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val print : ?title:string -> t -> unit
(** Render to stdout with columns sized to the widest entry. *)

val to_csv : t -> string
val save_csv : t -> path:string -> unit

val cell_float : float -> string
(** Consistent float formatting ("12.345"). *)

val cell_ci : Stats.Student_t.interval -> string
(** "12.345 ±0.678" — the error bars of Figure 2. *)
