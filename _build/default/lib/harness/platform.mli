(** Table 1: the experimental-platform inventory.

    The paper's table lists the four evaluation machines; we print
    those rows verbatim for reference and add a row describing the
    host this reproduction actually runs on (parsed from
    /proc/cpuinfo where available). *)

type row = {
  processor : string;
  clock_ghz : float;
  processors : int; (* sockets *)
  cores : int;
  hw_threads : int;
  cc_protocol : string;
  native_faa : bool;
}

val paper_rows : row list
(** Haswell, Xeon Phi, Magny-Cours, Power7 — as printed in Table 1. *)

val host : unit -> row
(** Best-effort description of this machine.  Fields that cannot be
    determined are filled with conservative defaults. *)

val pp_table : Format.formatter -> row list -> unit
