lib/harness/experiments.mli: Queues Report Workload
