lib/harness/workload.mli: Queues
