lib/harness/runner.mli: Queues Stats Workload
