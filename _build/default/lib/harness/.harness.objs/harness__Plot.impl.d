lib/harness/plot.ml: Array Buffer Bytes Float List Printf String
