lib/harness/experiments.ml: Array List Platform Plot Printf Queues Report Runner Stats Wfq Workload
