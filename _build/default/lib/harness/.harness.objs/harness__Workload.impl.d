lib/harness/workload.ml: Int64 Primitives Printf Queues
