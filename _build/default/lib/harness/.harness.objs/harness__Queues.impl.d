lib/harness/queues.ml: Baselines List Printf Wfq
