lib/harness/plot.mli:
