lib/harness/queues.mli: Wfq
