lib/harness/latency.mli: Queues Report Workload
