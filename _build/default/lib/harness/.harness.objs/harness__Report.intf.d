lib/harness/report.mli: Stats
