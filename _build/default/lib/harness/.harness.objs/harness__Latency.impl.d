lib/harness/latency.ml: Array Domain Int64 List Primitives Printf Queues Report Stats Sync Workload
