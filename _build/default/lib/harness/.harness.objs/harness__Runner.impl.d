lib/harness/runner.ml: Array Domain Float List Primitives Printf Queues Stats Sync Workload
