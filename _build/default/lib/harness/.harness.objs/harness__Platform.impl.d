lib/harness/platform.ml: Format List Option String Sys
