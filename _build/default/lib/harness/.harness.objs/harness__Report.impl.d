lib/harness/report.ml: Array List Printf Stats String
