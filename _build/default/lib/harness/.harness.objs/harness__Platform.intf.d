lib/harness/platform.mli: Format
