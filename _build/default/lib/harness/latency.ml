type percentiles = {
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  samples : int;
}

let measure (factory : Queues.factory) ~threads ~ops_per_thread ~kind =
  let instance = factory.Queues.make () in
  let barrier = Sync.Barrier.create threads in
  (* one log-linear histogram per thread: O(1) recording, no
     per-sample allocation, merged after the run *)
  let histograms = Array.init threads (fun _ -> Stats.Histogram.create ()) in
  let workers =
    List.init threads (fun t ->
        Domain.spawn (fun () ->
            let ops = instance.Queues.register () in
            let rng = Primitives.Splitmix64.create (Int64.of_int (t + 1)) in
            let mine = histograms.(t) in
            Sync.Barrier.await barrier;
            for i = 0 to ops_per_thread - 1 do
              let t0 = Primitives.Clock.now_ns () in
              (match kind with
              | Workload.Pairs ->
                if i land 1 = 0 then ops.Queues.enqueue i else ignore (ops.Queues.dequeue ())
              | Workload.Fifty_fifty ->
                if Primitives.Splitmix64.bool rng then ops.Queues.enqueue i
                else ignore (ops.Queues.dequeue ()));
              Stats.Histogram.add mine
                (Int64.to_float (Int64.sub (Primitives.Clock.now_ns ()) t0))
            done))
  in
  List.iter Domain.join workers;
  let all = Stats.Histogram.create () in
  Array.iter (fun h -> Stats.Histogram.merge_into ~into:all h) histograms;
  {
    p50_ns = Stats.Histogram.percentile all 50.0;
    p90_ns = Stats.Histogram.percentile all 90.0;
    p99_ns = Stats.Histogram.percentile all 99.0;
    p999_ns = Stats.Histogram.percentile all 99.9;
    max_ns = Stats.Histogram.max_recorded all;
    samples = Stats.Histogram.count all;
  }

let experiment ?queues ?(threads = 8) ?(ops_per_thread = 20_000) () =
  let queues = match queues with Some qs -> qs | None -> Queues.figure2_set in
  let t =
    Report.create
      ~header:[ "queue"; "p50 ns"; "p90 ns"; "p99 ns"; "p99.9 ns"; "max ns"; "samples" ]
  in
  List.iter
    (fun (f : Queues.factory) ->
      let p = measure f ~threads ~ops_per_thread ~kind:Workload.Fifty_fifty in
      Report.add_row t
        [
          f.Queues.name;
          Printf.sprintf "%.0f" p.p50_ns;
          Printf.sprintf "%.0f" p.p90_ns;
          Printf.sprintf "%.0f" p.p99_ns;
          Printf.sprintf "%.0f" p.p999_ns;
          Printf.sprintf "%.0f" p.max_ns;
          string_of_int p.samples;
        ])
    queues;
  Report.print
    ~title:
      (Printf.sprintf
         "Latency tails (50%%-enqueues, %d threads): the wait-freedom 'predictability' claim"
         threads)
    t;
  t
