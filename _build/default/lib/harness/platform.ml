type row = {
  processor : string;
  clock_ghz : float;
  processors : int;
  cores : int;
  hw_threads : int;
  cc_protocol : string;
  native_faa : bool;
}

let paper_rows =
  [
    {
      processor = "Intel Xeon E5-2699v3 (Haswell)";
      clock_ghz = 2.30;
      processors = 2;
      cores = 36;
      hw_threads = 72;
      cc_protocol = "snooping";
      native_faa = true;
    };
    {
      processor = "Intel Xeon Phi 3120";
      clock_ghz = 1.10;
      processors = 1;
      cores = 57;
      hw_threads = 228;
      cc_protocol = "directory";
      native_faa = true;
    };
    {
      processor = "AMD Opteron 6168 (Magny-Cours)";
      clock_ghz = 0.80;
      processors = 4;
      cores = 48;
      hw_threads = 48;
      cc_protocol = "directory";
      native_faa = true;
    };
    {
      processor = "IBM Power7 8233-E8B";
      clock_ghz = 3.55;
      processors = 4;
      cores = 32;
      hw_threads = 128;
      cc_protocol = "snooping";
      native_faa = false;
    };
  ]

let read_cpuinfo () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    List.rev !lines
  with Sys_error _ -> []

let field_of_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let key = String.trim (String.sub line 0 i) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    Some (key, value)

let host () =
  let lines = read_cpuinfo () in
  let fields = List.filter_map field_of_line lines in
  let find key = List.assoc_opt key fields in
  let model = Option.value (find "model name") ~default:"unknown CPU" in
  let mhz =
    match find "cpu MHz" with
    | Some s -> ( try float_of_string s /. 1000.0 with Failure _ -> 0.0)
    | None -> 0.0
  in
  let hw_threads =
    List.length (List.filter (fun (k, _) -> k = "processor") fields) |> max 1
  in
  {
    processor = model;
    clock_ghz = mhz;
    processors = 1;
    cores = hw_threads; (* best effort: container hides topology *)
    hw_threads;
    (* OCaml's Atomic.fetch_and_add compiles to lock xadd on x86:
       native FAA, as the algorithm requires. *)
    cc_protocol = "unknown (container)";
    native_faa = Sys.word_size = 64;
  }

let pp_table ppf rows =
  let open Format in
  fprintf ppf "%-36s %9s %6s %6s %9s %10s %11s@." "Processor Model" "Clock" "Procs" "Cores"
    "Threads" "CC Proto" "Native FAA";
  List.iter
    (fun r ->
      fprintf ppf "%-36s %6.2fGHz %6d %6d %9d %10s %11s@." r.processor r.clock_ghz r.processors
        r.cores r.hw_threads r.cc_protocol
        (if r.native_faa then "yes" else "no"))
    rows
