(** The paper's two benchmarks (§5.1):

    - {e enqueue-dequeue pairs}: each iteration performs an enqueue
      followed by a dequeue; 10^7 pairs split evenly over the
      threads;
    - {e 50%-enqueues}: each iteration performs an enqueue or a
      dequeue with equal probability; 10^7 operations split evenly.

    Between consecutive operations each thread spins for a random
    50–100 ns of "work" to break artificial long-run scenarios. *)

type kind = Pairs | Fifty_fifty

val kind_of_string : string -> (kind, string) result
val kind_to_string : kind -> string

type spec = {
  kind : kind;
  total_ops : int; (* across all threads; a pair counts as 2 ops *)
  work_ns : (int * int) option; (* uniform think-time range, None = off *)
  seed : int64;
}

val default : kind -> spec
(** 10^7 operations, 50–100 ns work, fixed seed — the paper's
    configuration. *)

val scaled : kind -> total_ops:int -> spec
(** Same but with a different operation budget (quick modes). *)

val ops_per_thread : spec -> threads:int -> int
(** Fair share for one thread (an enqueue-dequeue pair counts as two
    operations; the share is rounded to whole iterations, so the
    actual grand total can differ from [total_ops] by at most
    [2 * threads]). *)

val thread_body : spec -> thread:int -> Queues.ops -> threads:int -> unit -> int
(** [thread_body spec ~thread ops ~threads ()] performs thread
    [thread]'s entire share of the workload against [ops] and returns
    the number of queue operations performed.  Deterministically
    seeded from [spec.seed] and [thread]. *)
