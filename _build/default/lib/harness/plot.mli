(** ASCII line plots for the figure reproductions.

    The paper's Figure 2 is a set of throughput-vs-threads line
    charts; tables carry the numbers, but the figure's value is the
    {e shape} (who wins, where lines cross).  This renderer draws
    multi-series plots in plain text so the benchmark logs contain the
    figures themselves.

    The x axis is categorical (thread counts); the y axis is linear
    from 0 to the data maximum.  Each series gets a distinct glyph;
    collisions print the glyph of the later series. *)

type series = { label : string; points : float array }

val render :
  ?width:int ->
  ?height:int ->
  x_labels:string list ->
  y_label:string ->
  series list ->
  string
(** [render ~x_labels ~y_label series] draws all series over the same
    x positions ([x_labels] and every series must have equal length;
    raises [Invalid_argument] otherwise).  [width] and [height]
    (default 64×16) size the plot area excluding axes. *)

val print :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_labels:string list ->
  y_label:string ->
  series list ->
  unit
(** {!render} to stdout under a title, with a legend line. *)
