type t = { header : string list; mutable rows : string list list (* reversed *) }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let widths t =
  let all = t.header :: List.rev t.rows in
  let cols = List.length t.header in
  let w = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < cols then w.(i) <- max w.(i) (String.length cell)) row)
    all;
  w

let print ?title t =
  (match title with
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '-')
  | None -> ());
  let w = widths t in
  let print_row row =
    List.iteri (fun i cell -> Printf.printf "%-*s  " w.(i) cell) row;
    print_newline ()
  in
  print_row t.header;
  print_row (List.mapi (fun i _ -> String.make w.(i) '=') t.header);
  List.iter print_row (List.rev t.rows);
  flush stdout

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map escape_csv row) in
  String.concat "\n" (line t.header :: List.map line (List.rev t.rows)) ^ "\n"

let save_csv t ~path =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc

let cell_float f = Printf.sprintf "%.3f" f

let cell_ci (iv : Stats.Student_t.interval) =
  Printf.sprintf "%.3f ±%.3f" iv.Stats.Student_t.mean iv.Stats.Student_t.half_width
