(** Per-operation latency distributions.

    The paper's pitch is {e predictable} performance: wait-freedom
    bounds every operation's steps, so the latency {e tail} — not the
    mean — is where the guarantee shows.  This harness records each
    operation's wall-clock latency under a contended mixed workload
    and reports percentiles; blocking designs (CC-Queue, locks) show
    scheduling-quantum spikes at the tail under oversubscription,
    while the non-blocking queues' tails stay bounded by their own
    step counts (plus unavoidable preemption of the measuring thread
    itself). *)

type percentiles = {
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
  samples : int;
}

val measure :
  Queues.factory -> threads:int -> ops_per_thread:int -> kind:Workload.kind -> percentiles
(** Run the workload with per-op timing on every thread and merge all
    samples.  Timing uses the wall clock around each operation; on an
    oversubscribed host a preemption {e of the measuring thread}
    inflates a sample for every queue alike, so compare queues, not
    absolute values. *)

val experiment :
  ?queues:Queues.factory list -> ?threads:int -> ?ops_per_thread:int -> unit -> Report.t
(** The latency-tail table across queues (8 threads, 20k ops each by
    default), printed and returned. *)
