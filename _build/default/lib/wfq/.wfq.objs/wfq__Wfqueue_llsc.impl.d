lib/wfq/wfqueue_llsc.ml: Atomic_prims Wfqueue_algo
