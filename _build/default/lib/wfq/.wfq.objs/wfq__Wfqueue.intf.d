lib/wfq/wfqueue.mli: Format Op_stats
