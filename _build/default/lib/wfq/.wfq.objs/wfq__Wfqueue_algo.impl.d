lib/wfq/wfqueue_algo.ml: Array Atomic Atomic_prims Domain Format Fun Hashtbl List Mutex Op_stats Primitives Printf
