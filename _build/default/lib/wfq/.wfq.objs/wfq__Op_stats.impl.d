lib/wfq/op_stats.ml: Format
