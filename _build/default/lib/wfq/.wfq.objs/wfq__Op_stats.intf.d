lib/wfq/op_stats.mli: Format
