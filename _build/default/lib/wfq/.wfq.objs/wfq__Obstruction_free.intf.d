lib/wfq/obstruction_free.mli:
