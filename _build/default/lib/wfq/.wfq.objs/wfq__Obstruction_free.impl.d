lib/wfq/obstruction_free.ml: Array Atomic
