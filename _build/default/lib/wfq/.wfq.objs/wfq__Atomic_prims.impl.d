lib/wfq/atomic_prims.ml: Primitives
