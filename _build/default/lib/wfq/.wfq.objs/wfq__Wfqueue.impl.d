lib/wfq/wfqueue.ml: Atomic_prims Wfqueue_algo
