(** The paper's Listing 1: an obstruction-free queue over an infinite
    array, the base algorithm the wait-free queue is derived from.

    Enqueue obtains a cell index with fetch-and-add on the tail index
    and CASes its value into the cell; dequeue obtains an index with
    fetch-and-add on the head index and either steals the cell's value
    or marks the cell unusable with ⊤.  The queue is linearizable and
    obstruction-free but {e not} lock-free: an enqueuer and a dequeuer
    can chase each other's indices forever (the livelock interleaving
    in §3.2 — demonstrated deterministically in the test suite).

    This module exists for exposition, differential testing against
    {!Wfqueue}, and the livelock demonstration.  It performs no memory
    reclamation: segments are unlinked only from the front as the head
    index passes them. *)

type 'a t

val create : ?segment_shift:int -> unit -> 'a t
(** Segments have [2^segment_shift] cells (default [2^10], as in the
    paper's evaluation). *)

val enqueue : 'a t -> 'a -> unit
(** Appends a value.  May loop while contended dequeues invalidate
    cells (obstruction-freedom only). *)

val dequeue : 'a t -> 'a option
(** Removes the oldest value, or [None] if the queue is empty. *)

val try_enqueue : 'a t -> attempts:int -> 'a -> bool
(** Bounded-retry enqueue: at most [attempts] cell acquisitions.  Used
    by tests to demonstrate that the unbounded version is only
    obstruction-free. *)

val try_dequeue : 'a t -> attempts:int -> ('a option, [ `Exhausted ]) result
(** Bounded-retry dequeue; [Ok None] means the queue was empty. *)

val approx_length : 'a t -> int
