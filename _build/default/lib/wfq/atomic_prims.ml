(* Re-export: the primitives signature lives in [Primitives] so that
   baseline algorithms can also be functorized over it without
   depending on this library. *)
include Primitives.Atomic_prims
