type choice = {
  start_index : int;
  values : float array;
  mean : float;
  cov : float;
  converged : bool;
}

let window_stats xs start window =
  let slice = Array.sub xs start window in
  let s = Descriptive.summarize slice in
  (slice, s.Descriptive.mean, s.Descriptive.cov)

let choose_window ?(window = 5) ?(threshold = 0.02) xs =
  let n = Array.length xs in
  if window < 2 then invalid_arg "Steady_state.choose_window: window too small";
  if n < window then invalid_arg "Steady_state.choose_window: not enough measurements";
  (* First window (earliest s_i) that meets the threshold... *)
  let rec find i =
    if i + window > n then None
    else begin
      let slice, mean, cov = window_stats xs i window in
      if cov < threshold then Some { start_index = i; values = slice; mean; cov; converged = true }
      else find (i + 1)
    end
  in
  match find 0 with
  | Some c -> c
  | None ->
    (* ... otherwise the window with the lowest COV. *)
    let best = ref None in
    for i = 0 to n - window do
      let slice, mean, cov = window_stats xs i window in
      match !best with
      | Some b when b.cov <= cov -> ()
      | Some _ | None ->
        best := Some { start_index = i; values = slice; mean; cov; converged = false }
    done;
    Option.get !best

let run_invocation ?(window = 5) ?(threshold = 0.02) ?(max_iterations = 20) measure =
  if max_iterations < window then
    invalid_arg "Steady_state.run_invocation: max_iterations < window";
  let measurements = ref [] in
  let count = ref 0 in
  let result = ref None in
  while !result = None && !count < max_iterations do
    measurements := measure () :: !measurements;
    incr count;
    if !count >= window then begin
      let xs = Array.of_list (List.rev !measurements) in
      let _, _, cov = window_stats xs (!count - window) window in
      if cov < threshold then
        result := Some (choose_window ~window ~threshold xs)
    end
  done;
  match !result with
  | Some c -> c
  | None -> choose_window ~window ~threshold (Array.of_list (List.rev !measurements))

type report = {
  scores : float array;
  interval : Student_t.interval;
  all_converged : bool;
}

let across_invocations ?(confidence = 0.95) ?(invocations = 10) run =
  if invocations < 2 then invalid_arg "Steady_state.across_invocations: need >= 2 invocations";
  let choices = Array.init invocations (fun _ -> run ()) in
  let scores = Array.map (fun c -> c.mean) choices in
  {
    scores;
    interval = Student_t.confidence_interval ~confidence scores;
    all_converged = Array.for_all (fun c -> c.converged) choices;
  }
