(** Steady-state detection after Georges, Buytaert & Eeckhout
    (OOPSLA 2007), as applied in the paper's §5.1:

    within one process invocation, run up to [max_iterations]
    benchmark iterations; steady state is reached at iteration s_i
    once the coefficient of variation of the most recent [window]
    iterations falls below [threshold] (paper: window 5, COV 0.02).
    If the threshold is never met, use the [window] consecutive
    iterations with the lowest COV.  The invocation's score is the
    mean of the chosen window; across invocations, a Student-t
    confidence interval summarizes the scores. *)

type choice = {
  start_index : int; (* first iteration of the chosen window *)
  values : float array; (* the window itself *)
  mean : float;
  cov : float;
  converged : bool; (* threshold was met *)
}

val choose_window : ?window:int -> ?threshold:float -> float array -> choice
(** Pick the steady-state window from iteration measurements, with
    the paper's defaults (window 5, threshold 0.02).  Needs at least
    [window] measurements. *)

val run_invocation :
  ?window:int ->
  ?threshold:float ->
  ?max_iterations:int ->
  (unit -> float) ->
  choice
(** Drive a measurement function iteration by iteration, stopping as
    soon as the trailing window converges or after [max_iterations]
    (default 20, as in the paper). *)

type report = {
  scores : float array; (* one per invocation *)
  interval : Student_t.interval;
  all_converged : bool;
}

val across_invocations :
  ?confidence:float -> ?invocations:int -> (unit -> choice) -> report
(** Repeat a whole invocation [invocations] times (default 10) and
    summarize the per-invocation means with a confidence interval
    (default 95%), as the paper reports in Figure 2's error bars. *)
