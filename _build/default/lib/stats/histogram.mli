(** Log-linear histograms for latency recording.

    Recording a sample is O(1) into a fixed ~64×2^sub_bits bucket
    array, so per-operation latencies can be recorded for millions of
    operations without per-sample allocation; percentiles are then
    read with bounded relative error.  The layout is HdrHistogram's:
    one power-of-two major bucket per value magnitude, split into
    [2^sub_bits] linear sub-buckets, giving relative quantization
    error at most [2^-sub_bits]. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 8, i.e. ≤0.4% relative error) must be in
    [\[0, 16\]]. *)

val add : t -> float -> unit
(** Record a sample.  Negative samples count as 0. *)

val count : t -> int
val max_recorded : t -> float
(** Largest sample recorded exactly (not quantized); 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]: an upper bound on the
    value at that rank, within the quantization error.  Raises
    [Invalid_argument] when empty or [p] out of range. *)

val merge_into : into:t -> t -> unit
(** Add all of the second histogram's buckets into [into]; both must
    have equal [sub_bits] (checked). *)

val mean : t -> float
(** Quantized mean (bucket upper bounds weighted by counts). *)
