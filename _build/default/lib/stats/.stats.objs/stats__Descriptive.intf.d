lib/stats/descriptive.mli:
