lib/stats/steady_state.ml: Array Descriptive List Option Student_t
