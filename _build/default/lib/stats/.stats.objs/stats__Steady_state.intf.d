lib/stats/steady_state.mli: Student_t
