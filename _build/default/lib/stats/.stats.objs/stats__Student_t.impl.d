lib/stats/student_t.ml: Array Descriptive Float
