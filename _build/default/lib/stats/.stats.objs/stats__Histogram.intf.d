lib/stats/histogram.mli:
