(* Acklam's rational approximation to the inverse normal CDF. *)
let inverse_normal_cdf p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "inverse_normal_cdf: p must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
    |> fun num -> num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= p_high then begin
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end

(* Exact two-tailed 95% and 99% critical values for small df, where
   the asymptotic expansion is weakest. *)
let exact_95 = [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306 |]
let exact_99 = [| 63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355 |]

(* Cornish–Fisher expansion of the t quantile in powers of 1/df
   (Abramowitz & Stegun 26.7.5). *)
let cornish_fisher z df =
  let n = float_of_int df in
  let z2 = z *. z in
  let z3 = z2 *. z and z5 = z2 *. z2 *. z in
  let z7 = z5 *. z2 and z9 = z5 *. z2 *. z2 in
  z
  +. ((z3 +. z) /. (4.0 *. n))
  +. (((5.0 *. z5) +. (16.0 *. z3) +. (3.0 *. z)) /. (96.0 *. n *. n))
  +. (((3.0 *. z7) +. (19.0 *. z5) +. (17.0 *. z3) -. (15.0 *. z)) /. (384.0 *. n *. n *. n))
  +. (((79.0 *. z9) +. (776.0 *. z7) +. (1482.0 *. z5) -. (1920.0 *. z3) -. (945.0 *. z))
     /. (92160.0 *. n *. n *. n *. n))

let critical_value ~confidence ~df =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Student_t.critical_value: confidence must be in (0,1)";
  if df < 1 then invalid_arg "Student_t.critical_value: df must be >= 1";
  let table =
    if Float.abs (confidence -. 0.95) < 1e-9 then Some exact_95
    else if Float.abs (confidence -. 0.99) < 1e-9 then Some exact_99
    else None
  in
  match table with
  | Some tbl when df <= Array.length tbl -> tbl.(df - 1)
  | Some _ | None ->
    let p = 1.0 -. ((1.0 -. confidence) /. 2.0) in
    cornish_fisher (inverse_normal_cdf p) df

type interval = { mean : float; lower : float; upper : float; half_width : float }

let confidence_interval ?(confidence = 0.95) xs =
  let s = Descriptive.summarize xs in
  if s.Descriptive.n < 2 then
    invalid_arg "Student_t.confidence_interval: need at least 2 observations";
  let t = critical_value ~confidence ~df:(s.Descriptive.n - 1) in
  let half_width = t *. s.Descriptive.stddev /. sqrt (float_of_int s.Descriptive.n) in
  let m = s.Descriptive.mean in
  { mean = m; lower = m -. half_width; upper = m +. half_width; half_width }
