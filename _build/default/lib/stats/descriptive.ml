type summary = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  cov : float;
  min : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.summarize: empty";
  let m = mean xs in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  let variance = if n < 2 then 0.0 else ss /. float_of_int (n - 1) in
  let stddev = sqrt variance in
  let cov = if m = 0.0 then 0.0 else stddev /. Float.abs m in
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  { n; mean = m; variance; stddev; cov; min = mn; max = mx }

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Descriptive.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

module Welford = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
end
