(** Descriptive statistics over samples of floats.

    Backs the Georges et al. evaluation methodology the paper follows
    (§5.1): iteration means, coefficients of variation, and the
    summary statistics reported with each throughput number. *)

type summary = {
  n : int;
  mean : float;
  variance : float; (* unbiased sample variance, 0 when n < 2 *)
  stddev : float;
  cov : float; (* coefficient of variation, stddev / mean *)
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation. *)

(** Welford's online algorithm: numerically stable incremental mean
    and variance, used by long-running measurement loops. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
