(** Two-tailed critical values of Student's t-distribution.

    The paper computes 95% confidence intervals over 10 benchmark
    invocations under a t-distribution with n-1 degrees of freedom
    (§5.1, after Georges et al.).  Small degrees of freedom use exact
    tabulated values; larger ones use the Cornish–Fisher expansion of
    the t quantile around the normal quantile, accurate to well under
    0.1% in the range used here. *)

val critical_value : confidence:float -> df:int -> float
(** [critical_value ~confidence ~df] is the two-tailed critical value
    tc such that P(|T| <= tc) = confidence.  [confidence] must be in
    (0, 1); [df >= 1]. *)

val inverse_normal_cdf : float -> float
(** Quantile of the standard normal distribution (Acklam's
    approximation, |relative error| < 1.15e-9), exposed for testing. *)

type interval = { mean : float; lower : float; upper : float; half_width : float }

val confidence_interval : ?confidence:float -> float array -> interval
(** Mean and two-sided confidence interval (default 0.95) of a sample
    of at least 2 observations, via the t-distribution with n-1
    degrees of freedom. *)
