type t = {
  sub_bits : int;
  sub : int; (* 2^sub_bits *)
  buckets : int array; (* major-magnitude x linear sub-bucket counts *)
  mutable total : int;
  mutable max_seen : float;
}

let majors = 63 (* value magnitudes up to 2^62 *)

let create ?(sub_bits = 8) () =
  if sub_bits < 0 || sub_bits > 16 then invalid_arg "Histogram.create: sub_bits out of range";
  let sub = 1 lsl sub_bits in
  { sub_bits; sub; buckets = Array.make (majors * sub) 0; total = 0; max_seen = 0.0 }

(* Index of the bucket containing integer value [v]: values below
   [sub] map exactly to major 0's sub-buckets; a larger value uses
   the position of its highest set bit as the major bucket and the
   [sub_bits] bits below it as the linear sub-bucket. *)
let index_of t v =
  if v < t.sub then v
  else begin
    let rec msb acc x = if x <= 1 then acc else msb (acc + 1) (x lsr 1) in
    let m = msb 0 v in
    let major = m - t.sub_bits + 1 in
    let sub = (v lsr (m - t.sub_bits)) land (t.sub - 1) in
    (major * t.sub) + sub
  end

(* Upper bound of the values mapped to bucket [i] (inclusive). *)
let upper_of t i =
  let major = i / t.sub and sub = i mod t.sub in
  if major = 0 then sub
  else begin
    let unit = 1 lsl (major - 1) in
    (((t.sub + sub + 1) * unit) - 1)
  end

let add t sample =
  let v = if sample <= 0.0 then 0 else int_of_float sample in
  let i = index_of t v in
  let i = if i >= Array.length t.buckets then Array.length t.buckets - 1 else i in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.total <- t.total + 1;
  if sample > t.max_seen then t.max_seen <- sample

let count t = t.total
let max_recorded t = t.max_seen

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
  let rank = max 1 (min t.total rank) in
  let rec walk i acc =
    let acc = acc + t.buckets.(i) in
    if acc >= rank then float_of_int (upper_of t i) else walk (i + 1) acc
  in
  Float.min (walk 0 0) (Float.max t.max_seen 0.0)

let merge_into ~into t =
  if into.sub_bits <> t.sub_bits then invalid_arg "Histogram.merge_into: sub_bits mismatch";
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) t.buckets;
  into.total <- into.total + t.total;
  if t.max_seen > into.max_seen then into.max_seen <- t.max_seen

let mean t =
  if t.total = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    Array.iteri
      (fun i c -> if c > 0 then sum := !sum +. (float_of_int c *. float_of_int (upper_of t i)))
      t.buckets;
    !sum /. float_of_int t.total
  end
