(** A fixed-size worker pool over the wait-free run queue.

    The motivating deployment for the paper's queue: a shared run
    queue where task submission must never stall behind a descheduled
    worker.  [submit] is wait-free apart from promise allocation —
    it performs one wait-free enqueue — regardless of what the
    workers are doing; dequeueing workers can never block submitters
    or each other.

    {[
      let pool = Pool.create ~workers:4 () in
      let f = Pool.submit pool (fun () -> heavy 42) in
      ...
      match Pool.await f with
      | Ok v -> use v
      | Error exn -> handle exn
    ]} *)

type t

type 'a future

val create : ?workers:int -> unit -> t
(** Spawn [workers] (default [Domain.recommended_domain_count () - 1],
    at least 1) worker domains consuming the shared run queue. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Schedule a task; its result (or exception) resolves the future.
    Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> ('a, exn) result
(** Block until the future resolves.  If called from a worker of the
    same pool, beware: awaiting a task that sits behind the caller in
    the queue deadlocks a 1-worker pool (futures do not steal). *)

val poll : 'a future -> ('a, exn) result option
(** Non-blocking check. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Submit one task per element, await all (in order). *)

val pending : t -> int
(** Tasks submitted but not yet started (approximate). *)

val shutdown : t -> unit
(** Complete all already-submitted tasks, then stop and join the
    workers.  Idempotent.  Submitters racing a shutdown may get
    [Invalid_argument], and a task whose [submit] had not returned
    when [shutdown] was called may be dropped (its future never
    resolves) — quiesce submitters first. *)
