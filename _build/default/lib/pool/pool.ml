type 'a state = Pending | Resolved of ('a, exn) result

type 'a future = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : 'a state;
}

type t = {
  run_queue : (unit -> unit) Wfq.Wfqueue.t;
  stopping : bool Atomic.t;
  accepting : bool Atomic.t;
  mutable workers : unit Domain.t list; (* set once, right after create *)
}

let resolve future result =
  Mutex.lock future.mutex;
  future.state <- Resolved result;
  Condition.broadcast future.cond;
  Mutex.unlock future.mutex

let worker_loop pool () =
  let handle = Wfq.Wfqueue.register pool.run_queue in
  let rec loop idle_spins =
    match Wfq.Wfqueue.dequeue pool.run_queue handle with
    | Some task ->
      task ();
      loop 0
    | None ->
      if Atomic.get pool.stopping then ()
      else begin
        (* between spinning and napping: submissions are bursty and
           the host may be oversubscribed *)
        if idle_spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_2;
        loop (idle_spins + 1)
      end
  in
  loop 0

let create ?workers () =
  let default = max 1 (Domain.recommended_domain_count () - 1) in
  let n = match workers with Some n -> n | None -> default in
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let pool =
    {
      run_queue = Wfq.Wfqueue.create ();
      stopping = Atomic.make false;
      accepting = Atomic.make true;
      workers = [];
    }
  in
  pool.workers <- List.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

let submit pool f =
  if not (Atomic.get pool.accepting) then invalid_arg "Pool.submit: pool is shut down";
  let future = { mutex = Mutex.create (); cond = Condition.create (); state = Pending } in
  Wfq.Wfqueue.push pool.run_queue (fun () ->
      let result = try Ok (f ()) with exn -> Error exn in
      resolve future result);
  future

let await future =
  Mutex.lock future.mutex;
  let rec wait () =
    match future.state with
    | Resolved r ->
      Mutex.unlock future.mutex;
      r
    | Pending ->
      Condition.wait future.cond future.mutex;
      wait ()
  in
  wait ()

let poll future =
  Mutex.lock future.mutex;
  let r = match future.state with Pending -> None | Resolved r -> Some r in
  Mutex.unlock future.mutex;
  r

let parallel_map pool f xs = List.map (fun x -> submit pool (fun () -> f x)) xs |> List.map await

let pending pool = Wfq.Wfqueue.approx_length pool.run_queue

let shutdown pool =
  Atomic.set pool.accepting false;
  Atomic.set pool.stopping true;
  List.iter Domain.join pool.workers
