(* Black-box tests of the wait-free queue's public API (sequential
   semantics, configuration, statistics).  Concurrency is covered by
   test_wfqueue_concurrent.ml, the slow paths by
   test_wfqueue_slowpath.ml, linearizability by
   test_linearizability.ml, and reclamation by test_reclamation.ml. *)

module W = Wfq.Wfqueue

let check = Alcotest.check

let test_fifo_basic () =
  let q = W.create () in
  let h = W.register q in
  check Alcotest.(option int) "empty at start" None (W.dequeue q h);
  W.enqueue q h 1;
  W.enqueue q h 2;
  W.enqueue q h 3;
  check Alcotest.(option int) "1st" (Some 1) (W.dequeue q h);
  check Alcotest.(option int) "2nd" (Some 2) (W.dequeue q h);
  check Alcotest.(option int) "3rd" (Some 3) (W.dequeue q h);
  check Alcotest.(option int) "drained" None (W.dequeue q h)

let test_fifo_large_crosses_segments () =
  let q = W.create ~segment_shift:4 () in
  let h = W.register q in
  let n = 10_000 in
  for i = 1 to n do
    W.enqueue q h i
  done;
  for i = 1 to n do
    check Alcotest.(option int) "fifo across segments" (Some i) (W.dequeue q h)
  done;
  check Alcotest.(option int) "drained" None (W.dequeue q h)

let test_interleaved () =
  let q = W.create () in
  let h = W.register q in
  for round = 0 to 499 do
    W.enqueue q h (2 * round);
    W.enqueue q h ((2 * round) + 1);
    check Alcotest.(option int) "a" (Some (2 * round)) (W.dequeue q h);
    check Alcotest.(option int) "b" (Some ((2 * round) + 1)) (W.dequeue q h)
  done;
  check Alcotest.(option int) "end" None (W.dequeue q h)

let test_patience_zero_sequential () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  for i = 1 to 2_000 do
    W.enqueue q h i
  done;
  for i = 1 to 2_000 do
    check Alcotest.(option int) "wf-0 fifo" (Some i) (W.dequeue q h)
  done

let test_polymorphic_payloads () =
  let q = W.create () in
  let h = W.register q in
  W.enqueue q h "hello";
  W.enqueue q h "world";
  check Alcotest.(option string) "strings" (Some "hello") (W.dequeue q h);
  check Alcotest.(option string) "strings" (Some "world") (W.dequeue q h);
  (* closures as payloads exercise the no-structural-equality rule *)
  let qf : (int -> int) W.t = W.create () in
  let hf = W.register qf in
  W.enqueue qf hf (fun x -> x + 1);
  (match W.dequeue qf hf with
  | Some f -> check Alcotest.int "closure survives" 42 (f 41)
  | None -> Alcotest.fail "lost closure")

let test_approx_length () =
  let q = W.create () in
  let h = W.register q in
  check Alcotest.int "empty" 0 (W.approx_length q);
  for i = 1 to 10 do
    W.enqueue q h i
  done;
  check Alcotest.int "ten" 10 (W.approx_length q);
  ignore (W.dequeue q h);
  check Alcotest.int "nine" 9 (W.approx_length q);
  for _ = 1 to 9 do
    ignore (W.dequeue q h)
  done;
  check Alcotest.int "zero" 0 (W.approx_length q);
  ignore (W.dequeue q h);
  (* an empty dequeue over-advances H; the length must stay clamped *)
  check Alcotest.int "clamped" 0 (W.approx_length q)

let test_multiple_queues_independent () =
  let q1 = W.create () and q2 = W.create () in
  let h1 = W.register q1 and h2 = W.register q2 in
  W.enqueue q1 h1 1;
  W.enqueue q2 h2 100;
  check Alcotest.(option int) "q2 own value" (Some 100) (W.dequeue q2 h2);
  check Alcotest.(option int) "q2 then empty" None (W.dequeue q2 h2);
  check Alcotest.(option int) "q1 unaffected" (Some 1) (W.dequeue q1 h1)

let test_push_pop_implicit_handles () =
  let q = W.create () in
  W.push q 5;
  W.push q 6;
  check Alcotest.(option int) "pop" (Some 5) (W.pop q);
  let d =
    Domain.spawn (fun () ->
        (* a different domain gets its own implicit handle *)
        W.push q 7;
        W.pop q)
  in
  let from_other = Domain.join d in
  check Alcotest.(option int) "other domain pops fifo head" (Some 6) from_other;
  check Alcotest.(option int) "remaining" (Some 7) (W.pop q)

let test_stats_counting () =
  let q = W.create () in
  let h = W.register q in
  for i = 1 to 10 do
    W.enqueue q h i
  done;
  for _ = 1 to 12 do
    ignore (W.dequeue q h)
  done;
  let s = W.stats q in
  check Alcotest.int "enqueues" 10 (Wfq.Op_stats.total_enqueues s);
  check Alcotest.int "dequeues" 12 (Wfq.Op_stats.total_dequeues s);
  check Alcotest.int "empties" 2 s.Wfq.Op_stats.empty_dequeues;
  check Alcotest.int "no slow enq uncontended" 0 s.Wfq.Op_stats.slow_enqueues;
  W.reset_stats q;
  let s = W.stats q in
  check Alcotest.int "reset" 0 (Wfq.Op_stats.total_enqueues s)

let test_handle_stats_per_handle () =
  let q = W.create () in
  let h1 = W.register q in
  let h2 = W.register q in
  W.enqueue q h1 1;
  W.enqueue q h2 2;
  W.enqueue q h2 3;
  check Alcotest.int "h1 enqueues" 1 (Wfq.Op_stats.total_enqueues (W.handle_stats h1));
  check Alcotest.int "h2 enqueues" 2 (Wfq.Op_stats.total_enqueues (W.handle_stats h2));
  check Alcotest.int "aggregate" 3 (Wfq.Op_stats.total_enqueues (W.stats q))

let test_patience_accessor () =
  check Alcotest.int "default 10" 10 (W.patience (W.create ()));
  check Alcotest.int "explicit" 3 (W.patience (W.create ~patience:3 ()))

let test_many_handles_same_domain () =
  (* several handles in one domain — legal as long as each operation
     uses one handle at a time *)
  let q = W.create () in
  let handles = List.init 8 (fun _ -> W.register q) in
  List.iteri (fun i h -> W.enqueue q h i) handles;
  let got = List.filter_map (fun h -> W.dequeue q h) handles in
  check Alcotest.(list int) "all values fifo" [ 0; 1; 2; 3; 4; 5; 6; 7 ] got

(* Model-based sequential property: arbitrary enq/deq programs match
   Stdlib.Queue. *)
let prop_sequential_model =
  let open QCheck in
  Test.make ~name:"sequential model equivalence" ~count:300
    (list (oneof [ Gen.map (fun x -> `Enq x) Gen.small_nat |> make; always `Deq ]))
    (fun program ->
      let q = W.create ~segment_shift:3 () in
      let h = W.register q in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | `Enq x ->
            W.enqueue q h x;
            Queue.push x model;
            true
          | `Deq -> W.dequeue q h = Queue.take_opt model)
        program)

let () =
  Alcotest.run "wfqueue"
    [
      ( "sequential",
        [
          Alcotest.test_case "fifo basic" `Quick test_fifo_basic;
          Alcotest.test_case "crosses segments" `Quick test_fifo_large_crosses_segments;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "patience 0" `Quick test_patience_zero_sequential;
          Alcotest.test_case "polymorphic payloads" `Quick test_polymorphic_payloads;
          Alcotest.test_case "approx_length" `Quick test_approx_length;
          Alcotest.test_case "independent queues" `Quick test_multiple_queues_independent;
          Alcotest.test_case "many handles" `Quick test_many_handles_same_domain;
          QCheck_alcotest.to_alcotest prop_sequential_model;
        ] );
      ( "api",
        [
          Alcotest.test_case "push/pop implicit" `Quick test_push_pop_implicit_handles;
          Alcotest.test_case "stats" `Quick test_stats_counting;
          Alcotest.test_case "per-handle stats" `Quick test_handle_stats_per_handle;
          Alcotest.test_case "patience accessor" `Quick test_patience_accessor;
        ] );
    ]
