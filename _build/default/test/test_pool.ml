(* Tests for the worker pool built on the wait-free run queue. *)

let check = Alcotest.check

let with_pool ?(workers = 2) f =
  let pool = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_submit_await () =
  with_pool (fun pool ->
      let f = Pool.submit pool (fun () -> 21 * 2) in
      check Alcotest.bool "resolves ok" true (Pool.await f = Ok 42))

let test_many_tasks () =
  with_pool (fun pool ->
      let futures = List.init 500 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri
        (fun i f ->
          match Pool.await f with
          | Ok v -> check Alcotest.int (Printf.sprintf "task %d" i) (i * i) v
          | Error _ -> Alcotest.fail "unexpected failure")
        futures)

let test_exception_propagates () =
  with_pool (fun pool ->
      let f = Pool.submit pool (fun () -> failwith "boom") in
      match Pool.await f with
      | Error (Failure msg) -> check Alcotest.string "exn payload" "boom" msg
      | Ok _ | Error _ -> Alcotest.fail "expected Failure")

let test_exception_does_not_kill_worker () =
  with_pool ~workers:1 (fun pool ->
      ignore (Pool.await (Pool.submit pool (fun () -> failwith "first")));
      (* the single worker must have survived to run this: *)
      check Alcotest.bool "worker alive" true (Pool.await (Pool.submit pool (fun () -> 7)) = Ok 7))

let test_poll () =
  with_pool (fun pool ->
      let f = Pool.submit pool (fun () -> 5) in
      ignore (Pool.await f);
      check Alcotest.bool "poll after resolve" true (Pool.poll f = Some (Ok 5));
      let stalled =
        Pool.submit pool (fun () ->
            Unix.sleepf 0.05;
            1)
      in
      (* may or may not be done yet; both are legal, it must not hang *)
      ignore (Pool.poll stalled);
      ignore (Pool.await stalled))

let test_parallel_map () =
  with_pool ~workers:3 (fun pool ->
      let results = Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3; 4; 5 ] in
      let oks = List.map (function Ok v -> v | Error _ -> -1) results in
      check Alcotest.(list int) "mapped in order" [ 2; 3; 4; 5; 6 ] oks)

let test_submitters_from_many_domains () =
  with_pool ~workers:2 (fun pool ->
      let submitters =
        List.init 3 (fun s ->
            Domain.spawn (fun () ->
                List.init 100 (fun i -> Pool.submit pool (fun () -> (s * 100) + i))))
      in
      let futures = List.concat_map Domain.join submitters in
      let total =
        List.fold_left
          (fun acc f -> match Pool.await f with Ok v -> acc + v | Error _ -> acc)
          0 futures
      in
      (* sum over s in 0..2, i in 0..99 of (100 s + i) *)
      check Alcotest.int "all results" ((300 * 100) + (3 * 4950)) total)

let test_shutdown_rejects_submit () =
  let pool = Pool.create ~workers:1 () in
  ignore (Pool.await (Pool.submit pool (fun () -> 1)));
  Pool.shutdown pool;
  try
    ignore (Pool.submit pool (fun () -> 2));
    Alcotest.fail "submit after shutdown accepted"
  with Invalid_argument _ -> ()

let test_shutdown_completes_backlog () =
  let pool = Pool.create ~workers:1 () in
  let counter = Atomic.make 0 in
  let futures =
    List.init 200 (fun _ -> Pool.submit pool (fun () -> Atomic.fetch_and_add counter 1))
  in
  Pool.shutdown pool;
  check Alcotest.int "backlog completed" 200 (Atomic.get counter);
  List.iter
    (fun f -> check Alcotest.bool "resolved" true (Pool.poll f <> None))
    futures

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "many tasks" `Quick test_many_tasks;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "worker survives exception" `Quick test_exception_does_not_kill_worker;
          Alcotest.test_case "poll" `Quick test_poll;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "many submitters" `Quick test_submitters_from_many_domains;
          Alcotest.test_case "shutdown rejects" `Quick test_shutdown_rejects_submit;
          Alcotest.test_case "shutdown completes backlog" `Quick test_shutdown_completes_backlog;
        ] );
    ]
