(* Tests for the paper's memory reclamation scheme (Listing 5): the
   live segment list stays bounded, hazard pointers block reclamation,
   idle handles get their pointers advanced, and retired segments are
   recycled through the pool. *)

module W = Wfq.Wfqueue
module I = W.Internal

let check = Alcotest.check

(* Drive enough traffic through the queue to retire many segments. *)
let churn q h ~ops =
  for i = 1 to ops do
    W.enqueue q h i;
    ignore (W.dequeue q h)
  done

let test_live_segments_bounded () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let h = W.register q in
  churn q h ~ops:10_000;
  (* 10_000 ops cross ~625 segments of 16 cells; the live list must
     stay within max_garbage plus the active segment neighbourhood *)
  check Alcotest.bool "segments reclaimed" true (W.reclaimed_segments q > 100);
  check Alcotest.bool
    (Printf.sprintf "live list bounded (%d)" (W.live_segments q))
    true
    (W.live_segments q <= 8)

let test_no_reclamation_mode () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 ~reclamation:false () in
  let h = W.register q in
  churn q h ~ops:2_000;
  check Alcotest.int "nothing reclaimed" 0 (W.reclaimed_segments q);
  check Alcotest.bool "live list grows" true (W.live_segments q > 100)

let test_oldest_tracks_queue_front () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let h = W.register q in
  check Alcotest.int "starts at 0" 0 (W.oldest_segment_id q);
  churn q h ~ops:5_000;
  let oldest = W.oldest_segment_id q in
  check Alcotest.bool "oldest advanced" true (oldest > 0);
  check Alcotest.bool "not mid-cleanup at rest" true (oldest >= 0)

let test_segments_recycled_through_pool () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let h = W.register q in
  churn q h ~ops:10_000;
  check Alcotest.bool "pool fed" true (W.recycled_segments q > 0);
  (* steady state: recycling replaces fresh allocation almost
     entirely *)
  check Alcotest.bool
    (Printf.sprintf "allocations bounded (%d fresh, %d recycled)" (W.allocated_segments q)
       (W.recycled_segments q))
    true
    (W.allocated_segments q < 100)

let test_hazard_pointer_blocks_reclamation () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let h = W.register q in
  let blocker = W.register q in
  (* blocker parks its hazard pointer on the current head segment *)
  I.set_hazard q blocker `Head;
  let before = W.oldest_segment_id q in
  churn q h ~ops:5_000;
  (* the blocker pinned segment [before]; nothing at or above it may
     be reclaimed, so oldest must not pass it *)
  check Alcotest.bool "oldest pinned by hazard" true (W.oldest_segment_id q <= max before 0);
  check Alcotest.bool "live list grew meanwhile" true (W.live_segments q > 8);
  (* releasing the hazard pointer lets cleanup catch up *)
  I.set_hazard q blocker `Null;
  churn q h ~ops:5_000;
  check Alcotest.bool "reclamation resumes" true (W.oldest_segment_id q > before);
  check Alcotest.bool "live list shrinks" true (W.live_segments q <= 8)

let test_idle_handle_pointers_updated () =
  (* An idle thread must not block reclamation: cleanup advances its
     head/tail pointers (the update routine, L.239). *)
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let h = W.register q in
  let idle = W.register q in
  ignore idle;
  churn q h ~ops:10_000;
  check Alcotest.bool "reclaims despite idle handle" true (W.reclaimed_segments q > 100);
  check Alcotest.bool "live bounded despite idle handle" true (W.live_segments q <= 8);
  (* the idle handle can still operate correctly afterwards *)
  W.enqueue q idle 123;
  check Alcotest.(option int) "idle handle works" (Some 123) (W.dequeue q idle)

let test_explicit_cleanup_noop_below_threshold () =
  let q = W.create ~segment_shift:4 ~max_garbage:16 () in
  let h = W.register q in
  churn q h ~ops:50;
  (* garbage below threshold: cleanup must leave everything alone *)
  I.cleanup q h;
  check Alcotest.int "nothing reclaimed" 0 (W.reclaimed_segments q);
  check Alcotest.int "oldest untouched" 0 (W.oldest_segment_id q)

let test_cleanup_under_concurrency () =
  let q = W.create ~segment_shift:4 ~max_garbage:2 () in
  let n = 30_000 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let h = W.register q in
            for i = 1 to n do
              W.enqueue q h i;
              ignore (W.dequeue q h)
            done))
  in
  List.iter Domain.join workers;
  check Alcotest.bool "heavy reclamation" true (W.reclaimed_segments q > 1000);
  check Alcotest.bool
    (Printf.sprintf "bounded live after concurrency (%d)" (W.live_segments q))
    true
    (W.live_segments q <= 64)

let test_values_survive_reclamation_pressure () =
  (* Keep a standing backlog while churning so that live values sit
     in segments adjacent to reclaimed ones. *)
  let q = W.create ~segment_shift:3 ~max_garbage:2 () in
  let h = W.register q in
  let backlog = 20 in
  for i = 1 to backlog do
    W.enqueue q h i
  done;
  let next_in = ref (backlog + 1) and next_out = ref 1 in
  for _ = 1 to 5_000 do
    W.enqueue q h !next_in;
    incr next_in;
    (match W.dequeue q h with
    | Some v ->
      check Alcotest.int "fifo under reclamation" !next_out v;
      incr next_out
    | None -> Alcotest.fail "queue lost backlog");
    check Alcotest.int "backlog stable" backlog (W.approx_length q)
  done

(* ------------------------------------------------------------------ *)
(* Thread failure (the paper's §3.6 gap, fixed via retire)            *)

let test_dead_thread_blocks_then_retire_unblocks () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let h = W.register q in
  let dead = W.register q in
  (* simulate a thread that died mid-operation: hazard pointer parked
     on the current head segment forever *)
  I.set_hazard q dead `Head;
  churn q h ~ops:5_000;
  check Alcotest.bool "leak while dead handle pins" true (W.live_segments q > 8);
  let leaked = W.live_segments q in
  (* failure detected: retire the dead handle *)
  W.retire q dead;
  churn q h ~ops:5_000;
  check Alcotest.bool
    (Printf.sprintf "reclamation recovered (%d -> %d live)" leaked (W.live_segments q))
    true
    (W.live_segments q <= 8)

let test_retired_peer_skipped_in_rotation () =
  let q = W.create ~patience:0 ~segment_shift:4 () in
  let h1 = W.register q in
  let h2 = W.register q in
  let h3 = W.register q in
  W.retire q h2;
  (* h1's dequeues rotate peers; with h2 retired the rotation must
     still terminate and operations still work *)
  W.enqueue q h1 1;
  W.enqueue q h3 2;
  check Alcotest.(option int) "deq 1" (Some 1) (W.dequeue q h1);
  check Alcotest.(option int) "deq 2" (Some 2) (W.dequeue q h3);
  check Alcotest.(option int) "empty" None (W.dequeue q h1)

let test_retire_all_but_one () =
  let q = W.create ~patience:0 ~segment_shift:4 ~max_garbage:4 () in
  let survivor = W.register q in
  let others = List.init 5 (fun _ -> W.register q) in
  List.iter (fun h -> W.retire q h) others;
  churn q survivor ~ops:3_000;
  check Alcotest.bool "survivor reclaims alone" true (W.reclaimed_segments q > 50);
  W.enqueue q survivor 9;
  check Alcotest.(option int) "still correct" (Some 9) (W.dequeue q survivor)

let test_retire_after_domain_join () =
  (* the intended pattern: worker domains register, work, terminate;
     the owner retires their handles after joining *)
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let handles = Array.make 3 None in
  let workers =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            let h = W.register q in
            handles.(i) <- Some h;
            for k = 1 to 500 do
              W.enqueue q h k;
              ignore (W.dequeue q h)
            done))
  in
  List.iter Domain.join workers;
  Array.iter (function Some h -> W.retire q h | None -> Alcotest.fail "no handle") handles;
  let h = W.register q in
  churn q h ~ops:5_000;
  check Alcotest.bool "bounded after retiring workers" true (W.live_segments q <= 8)

let () =
  Alcotest.run "reclamation"
    [
      ( "bounds",
        [
          Alcotest.test_case "live segments bounded" `Quick test_live_segments_bounded;
          Alcotest.test_case "reclamation off" `Quick test_no_reclamation_mode;
          Alcotest.test_case "oldest tracks front" `Quick test_oldest_tracks_queue_front;
          Alcotest.test_case "pool recycling" `Quick test_segments_recycled_through_pool;
        ] );
      ( "hazard",
        [
          Alcotest.test_case "hazard blocks reclamation" `Quick
            test_hazard_pointer_blocks_reclamation;
          Alcotest.test_case "idle handle advanced" `Quick test_idle_handle_pointers_updated;
          Alcotest.test_case "below threshold noop" `Quick test_explicit_cleanup_noop_below_threshold;
        ] );
      ( "thread failure",
        [
          Alcotest.test_case "retire unblocks reclamation" `Quick
            test_dead_thread_blocks_then_retire_unblocks;
          Alcotest.test_case "retired peer skipped" `Quick test_retired_peer_skipped_in_rotation;
          Alcotest.test_case "retire all but one" `Quick test_retire_all_but_one;
          Alcotest.test_case "after Domain.join" `Quick test_retire_after_domain_join;
        ] );
      ( "stress",
        [
          Alcotest.test_case "concurrent cleanup" `Quick test_cleanup_under_concurrency;
          Alcotest.test_case "values survive" `Quick test_values_survive_reclamation_pressure;
        ] );
    ]
