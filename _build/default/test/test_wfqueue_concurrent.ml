(* Concurrent integration tests for the wait-free queue: no values
   lost or duplicated, per-producer order preserved, mixed workloads,
   and aggressive configurations (tiny segments, zero patience,
   minimal garbage threshold) that maximize protocol interleavings
   under oversubscription. *)

module W = Wfq.Wfqueue

let check = Alcotest.check

(* Spawn producers and consumers; verify the multiset of consumed
   values equals the multiset produced and that each producer's values
   arrive in order. *)
let mpmc_run ~patience ~segment_shift ~max_garbage ~nprod ~ncons ~per_producer () =
  let q = W.create ~patience ~segment_shift ~max_garbage () in
  let total = nprod * per_producer in
  let consumed = Atomic.make 0 in
  (* consumed values, per consumer, in consumption order *)
  let logs = Array.make ncons [] in
  let producers =
    List.init nprod (fun p ->
        Domain.spawn (fun () ->
            let h = W.register q in
            for i = 0 to per_producer - 1 do
              W.enqueue q h ((p * per_producer) + i)
            done))
  in
  let consumers =
    List.init ncons (fun c ->
        Domain.spawn (fun () ->
            let h = W.register q in
            let mine = ref [] in
            let continue = ref true in
            while !continue do
              match W.dequeue q h with
              | Some v ->
                mine := v :: !mine;
                if Atomic.fetch_and_add consumed 1 = total - 1 then continue := false
              | None -> if Atomic.get consumed >= total then continue := false
            done;
            logs.(c) <- List.rev !mine))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  check Alcotest.int "all values consumed" total (Atomic.get consumed);
  (* no duplicates, nothing invented *)
  let seen = Hashtbl.create total in
  Array.iter
    (List.iter (fun v ->
         if Hashtbl.mem seen v then Alcotest.failf "value %d consumed twice" v;
         if v < 0 || v >= total then Alcotest.failf "value %d never produced" v;
         Hashtbl.add seen v ()))
    logs;
  check Alcotest.int "every value consumed once" total (Hashtbl.length seen);
  (* per-producer order: within one consumer's log, values of the same
     producer must appear in increasing order (FIFO implies this
     projection is ordered) *)
  Array.iter
    (fun log ->
      let last = Hashtbl.create nprod in
      List.iter
        (fun v ->
          let p = v / per_producer in
          (match Hashtbl.find_opt last p with
          | Some prev when prev >= v ->
            Alcotest.failf "producer %d order violated: %d then %d" p prev v
          | Some _ | None -> ());
          Hashtbl.replace last p v)
        log)
    logs;
  q

let test_mpmc_default () =
  ignore (mpmc_run ~patience:10 ~segment_shift:8 ~max_garbage:8 ~nprod:4 ~ncons:4 ~per_producer:20_000 ())

let test_mpmc_patience_zero () =
  ignore (mpmc_run ~patience:0 ~segment_shift:6 ~max_garbage:4 ~nprod:4 ~ncons:4 ~per_producer:15_000 ())

let test_mpmc_tiny_segments () =
  ignore (mpmc_run ~patience:1 ~segment_shift:2 ~max_garbage:2 ~nprod:3 ~ncons:3 ~per_producer:5_000 ())

let test_mpmc_asymmetric_many_consumers () =
  ignore (mpmc_run ~patience:0 ~segment_shift:5 ~max_garbage:4 ~nprod:2 ~ncons:8 ~per_producer:15_000 ())

let test_mpmc_asymmetric_many_producers () =
  ignore (mpmc_run ~patience:0 ~segment_shift:5 ~max_garbage:4 ~nprod:8 ~ncons:2 ~per_producer:6_000 ())

let test_spsc () =
  ignore (mpmc_run ~patience:10 ~segment_shift:6 ~max_garbage:4 ~nprod:1 ~ncons:1 ~per_producer:100_000 ())

let test_all_roles_mixed () =
  (* every domain both enqueues and dequeues (the paper's benchmark
     shape), with randomized op choice *)
  let q = W.create ~patience:2 ~segment_shift:6 ~max_garbage:4 () in
  let threads = 8 in
  let per_thread = 20_000 in
  let produced = Atomic.make 0 and consumed = Atomic.make 0 in
  let workers =
    List.init threads (fun t ->
        Domain.spawn (fun () ->
            let h = W.register q in
            let rng = Primitives.Splitmix64.create (Int64.of_int (t + 1)) in
            for i = 0 to per_thread - 1 do
              if Primitives.Splitmix64.bool rng then begin
                W.enqueue q h ((t * per_thread) + i);
                ignore (Atomic.fetch_and_add produced 1)
              end
              else
                match W.dequeue q h with
                | Some _ -> ignore (Atomic.fetch_and_add consumed 1)
                | None -> ()
            done))
  in
  List.iter Domain.join workers;
  (* drain what remains *)
  let h = W.register q in
  let rec drain n = match W.dequeue q h with Some _ -> drain (n + 1) | None -> n in
  let drained = drain 0 in
  check Alcotest.int "conservation of values" (Atomic.get produced)
    (Atomic.get consumed + drained)

let test_concurrent_registration () =
  (* registering while others are mid-flight must be safe (handles
     join the helping ring dynamically) *)
  let q = W.create ~patience:0 ~segment_shift:5 ~max_garbage:2 () in
  let stop = Atomic.make false in
  let churners =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let h = W.register q in
            let ops = ref 0 in
            while not (Atomic.get stop) do
              W.enqueue q h !ops;
              ignore (W.dequeue q h);
              incr ops
            done;
            !ops))
  in
  let registrars =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let handles = List.init 50 (fun _ -> W.register q) in
            List.length handles))
  in
  let registered = List.fold_left (fun acc d -> acc + Domain.join d) 0 registrars in
  Atomic.set stop true;
  let churned = List.fold_left (fun acc d -> acc + Domain.join d) 0 churners in
  check Alcotest.int "registrations completed" 150 registered;
  check Alcotest.bool "churners progressed" true (churned > 0)

let test_helping_under_preemption_storm () =
  (* Oversubscribe aggressively with patience 0: descheduled threads
     force the survivors through the helping paths. *)
  let q = W.create ~patience:0 ~segment_shift:4 ~max_garbage:2 () in
  let threads = 16 in
  let per_thread = 4_000 in
  let total = threads * per_thread in
  let consumed = Atomic.make 0 in
  let workers =
    List.init threads (fun t ->
        Domain.spawn (fun () ->
            let h = W.register q in
            for i = 0 to per_thread - 1 do
              W.enqueue q h ((t * per_thread) + i)
            done;
            let continue = ref true in
            while !continue do
              match W.dequeue q h with
              | Some _ ->
                if Atomic.fetch_and_add consumed 1 = total - 1 then continue := false
              | None -> if Atomic.get consumed >= total then continue := false
            done))
  in
  List.iter Domain.join workers;
  check Alcotest.int "nothing lost under storm" total (Atomic.get consumed)

let test_llsc_variant_mpmc () =
  (* the paper's Power7 configuration: FAA emulated with CAS retries
     (lock-free, not wait-free); same correctness obligations *)
  let module L = Wfq.Wfqueue_llsc in
  let q = L.create ~patience:2 ~segment_shift:5 ~max_garbage:4 () in
  let nprod = 3 and ncons = 3 and n = 10_000 in
  let total = nprod * n in
  let consumed = Atomic.make 0 and sum = Atomic.make 0 in
  let producers =
    List.init nprod (fun p ->
        Domain.spawn (fun () ->
            let h = L.register q in
            for i = 0 to n - 1 do
              L.enqueue q h ((p * n) + i)
            done))
  in
  let consumers =
    List.init ncons (fun _ ->
        Domain.spawn (fun () ->
            let h = L.register q in
            let continue = ref true in
            while !continue do
              match L.dequeue q h with
              | Some v ->
                ignore (Atomic.fetch_and_add sum v);
                if Atomic.fetch_and_add consumed 1 = total - 1 then continue := false
              | None -> if Atomic.get consumed >= total then continue := false
            done))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  check Alcotest.int "all values" total (Atomic.get consumed);
  check Alcotest.int "checksum" (total * (total - 1) / 2) (Atomic.get sum)

let () =
  Alcotest.run "wfqueue_concurrent"
    [
      ( "mpmc",
        [
          Alcotest.test_case "default config" `Quick test_mpmc_default;
          Alcotest.test_case "patience 0" `Quick test_mpmc_patience_zero;
          Alcotest.test_case "tiny segments" `Quick test_mpmc_tiny_segments;
          Alcotest.test_case "many consumers" `Quick test_mpmc_asymmetric_many_consumers;
          Alcotest.test_case "many producers" `Quick test_mpmc_asymmetric_many_producers;
          Alcotest.test_case "spsc" `Quick test_spsc;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "mixed roles" `Quick test_all_roles_mixed;
          Alcotest.test_case "concurrent registration" `Quick test_concurrent_registration;
          Alcotest.test_case "preemption storm" `Quick test_helping_under_preemption_storm;
          Alcotest.test_case "llsc (Power7) variant" `Quick test_llsc_variant_mpmc;
        ] );
    ]
