(* Tests for the statistics library implementing the paper's
   measurement methodology (Georges et al.). *)

module D = Stats.Descriptive
module T = Stats.Student_t
module S = Stats.Steady_state

let check = Alcotest.check
let checkf msg ~eps expected actual = check (Alcotest.float eps) msg expected actual
let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Descriptive                                                        *)

let test_summarize_known () =
  let s = D.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "mean" ~eps:1e-9 5.0 s.D.mean;
  checkf "variance" ~eps:1e-9 (32.0 /. 7.0) s.D.variance;
  checkf "min" ~eps:1e-9 2.0 s.D.min;
  checkf "max" ~eps:1e-9 9.0 s.D.max;
  check Alcotest.int "n" 8 s.D.n

let test_summarize_singleton () =
  let s = D.summarize [| 3.5 |] in
  checkf "mean" ~eps:1e-9 3.5 s.D.mean;
  checkf "variance 0" ~eps:1e-9 0.0 s.D.variance;
  checkf "cov 0" ~eps:1e-9 0.0 s.D.cov

let test_summarize_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Descriptive.summarize: empty")
    (fun () -> ignore (D.summarize [||]))

let test_median_percentile () =
  checkf "median odd" ~eps:1e-9 3.0 (D.median [| 1.0; 3.0; 5.0 |]);
  checkf "median even" ~eps:1e-9 2.5 (D.median [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "p0 is min" ~eps:1e-9 1.0 (D.percentile [| 3.0; 1.0; 2.0 |] 0.0);
  checkf "p100 is max" ~eps:1e-9 3.0 (D.percentile [| 3.0; 1.0; 2.0 |] 100.0);
  checkf "p50 interpolates" ~eps:1e-9 15.0 (D.percentile [| 10.0; 20.0 |] 50.0)

let test_welford_matches_direct () =
  let xs = [| 1.2; 3.4; 2.2; 8.1; 0.5; 4.4; 4.4 |] in
  let w = D.Welford.create () in
  Array.iter (D.Welford.add w) xs;
  let s = D.summarize xs in
  check Alcotest.int "count" (Array.length xs) (D.Welford.count w);
  checkf "mean" ~eps:1e-9 s.D.mean (D.Welford.mean w);
  checkf "variance" ~eps:1e-9 s.D.variance (D.Welford.variance w)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:500
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = D.summarize xs in
      s.D.mean >= s.D.min -. 1e-9 && s.D.mean <= s.D.max +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:500
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 50) (float_range 0.0 100.0))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      D.percentile xs lo <= D.percentile xs hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Student_t                                                          *)

let test_inverse_normal () =
  checkf "median" ~eps:1e-6 0.0 (T.inverse_normal_cdf 0.5);
  checkf "97.5%" ~eps:1e-4 1.959964 (T.inverse_normal_cdf 0.975);
  checkf "84.13%" ~eps:1e-3 1.0 (T.inverse_normal_cdf 0.8413447);
  checkf "symmetric" ~eps:1e-9 (-.T.inverse_normal_cdf 0.975) (T.inverse_normal_cdf 0.025)

let test_t_critical_small_df () =
  (* textbook two-tailed 95% values *)
  checkf "df=1" ~eps:1e-3 12.706 (T.critical_value ~confidence:0.95 ~df:1);
  checkf "df=5" ~eps:1e-3 2.571 (T.critical_value ~confidence:0.95 ~df:5);
  checkf "df=9" ~eps:5e-3 2.262 (T.critical_value ~confidence:0.95 ~df:9);
  checkf "df=2 99%" ~eps:1e-3 9.925 (T.critical_value ~confidence:0.99 ~df:2)

let test_t_critical_large_df () =
  checkf "df=30" ~eps:5e-3 2.042 (T.critical_value ~confidence:0.95 ~df:30);
  checkf "df=120" ~eps:5e-3 1.980 (T.critical_value ~confidence:0.95 ~df:120);
  (* approaches the normal quantile *)
  checkf "df=100000" ~eps:1e-2 1.960 (T.critical_value ~confidence:0.95 ~df:100_000)

let test_t_monotone_in_df () =
  let prev = ref infinity in
  for df = 1 to 40 do
    let t = T.critical_value ~confidence:0.95 ~df in
    Alcotest.(check bool)
      (Printf.sprintf "df=%d below df=%d" df (df - 1))
      true
      (t <= !prev +. 1e-6);
    prev := t
  done

let test_confidence_interval_known () =
  (* n=10 observations; the paper's invocation count *)
  let xs = [| 10.1; 9.9; 10.3; 10.0; 9.8; 10.2; 10.1; 9.9; 10.0; 10.1 |] in
  let iv = T.confidence_interval ~confidence:0.95 xs in
  checkf "mean" ~eps:1e-6 10.04 iv.T.mean;
  (* s = 0.1505545..., t_9 = 2.262 -> hw = 2.262*0.15055/sqrt(10) = 0.10770 *)
  checkf "half width" ~eps:1e-3 0.1077 iv.T.half_width;
  checkf "lower" ~eps:1e-3 (10.04 -. 0.1077) iv.T.lower;
  checkf "upper" ~eps:1e-3 (10.04 +. 0.1077) iv.T.upper

let test_confidence_interval_requires_two () =
  Alcotest.check_raises "singleton raises"
    (Invalid_argument "Student_t.confidence_interval: need at least 2 observations") (fun () ->
      ignore (T.confidence_interval [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Steady_state                                                       *)

let test_choose_window_converged () =
  (* noisy warmup then a flat tail: the earliest flat window wins
     (it starts at index 4, where the tail of steady values begins) *)
  let xs = [| 5.0; 9.0; 2.0; 7.0; 10.0; 10.0; 10.1; 10.0; 9.9; 10.0 |] in
  let c = S.choose_window ~window:5 ~threshold:0.02 xs in
  check Alcotest.bool "converged" true c.S.converged;
  check Alcotest.int "starts at tail" 4 c.S.start_index;
  checkf "mean of tail" ~eps:1e-6 10.0 c.S.mean

let test_choose_window_earliest () =
  (* two converged windows; Georges et al. pick the earliest s_i *)
  let xs = [| 10.0; 10.0; 10.0; 10.0; 10.0; 20.0; 20.0; 20.0; 20.0; 20.0 |] in
  let c = S.choose_window ~window:5 ~threshold:0.02 xs in
  check Alcotest.int "earliest window" 0 c.S.start_index;
  checkf "its mean" ~eps:1e-9 10.0 c.S.mean

let test_choose_window_not_converged () =
  let xs = [| 1.0; 10.0; 2.0; 20.0; 3.0; 30.0; 4.0; 40.0 |] in
  let c = S.choose_window ~window:5 ~threshold:0.02 xs in
  check Alcotest.bool "not converged" false c.S.converged;
  (* still returns the lowest-COV window *)
  check Alcotest.bool "window size" true (Array.length c.S.values = 5)

let test_run_invocation_stops_early () =
  let calls = ref 0 in
  let measure () =
    incr calls;
    10.0 (* perfectly steady *)
  in
  let c = S.run_invocation ~window:5 ~max_iterations:20 measure in
  check Alcotest.bool "converged" true c.S.converged;
  check Alcotest.int "stopped at window size" 5 !calls

let test_run_invocation_exhausts () =
  let calls = ref 0 in
  let measure () =
    incr calls;
    if !calls mod 2 = 0 then 100.0 else 1.0
  in
  let c = S.run_invocation ~window:5 ~max_iterations:8 measure in
  check Alcotest.int "ran all iterations" 8 !calls;
  check Alcotest.bool "not converged" false c.S.converged

let test_across_invocations () =
  let invocation = ref 0 in
  let run () =
    incr invocation;
    let base = 10.0 +. (0.01 *. float_of_int !invocation) in
    S.run_invocation ~window:3 ~max_iterations:5 (fun () -> base)
  in
  let r = S.across_invocations ~invocations:5 run in
  check Alcotest.int "scores per invocation" 5 (Array.length r.S.scores);
  check Alcotest.bool "all converged" true r.S.all_converged;
  let iv = r.S.interval in
  check Alcotest.bool "mean inside CI" true (iv.T.lower <= iv.T.mean && iv.T.mean <= iv.T.upper)

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)

module Hg = Stats.Histogram

let test_histogram_exact_small_values () =
  let h = Hg.create () in
  List.iter (Hg.add h) [ 5.0; 10.0; 10.0; 200.0 ];
  check Alcotest.int "count" 4 (Hg.count h);
  checkf "p25 = 5" ~eps:1e-9 5.0 (Hg.percentile h 25.0);
  checkf "p75 = 10" ~eps:1e-9 10.0 (Hg.percentile h 75.0);
  checkf "p100 = 200" ~eps:1e-9 200.0 (Hg.percentile h 100.0);
  checkf "max exact" ~eps:1e-9 200.0 (Hg.max_recorded h)

let test_histogram_bounded_relative_error () =
  let h = Hg.create ~sub_bits:8 () in
  let values = [ 300.0; 1234.0; 98765.0; 1.5e6; 3.7e8 ] in
  List.iter
    (fun v ->
      let h = Hg.create ~sub_bits:8 () in
      Hg.add h v;
      let q = Hg.percentile h 50.0 in
      check Alcotest.bool
        (Printf.sprintf "value %.0f quantized to %.0f within 0.4%%" v q)
        true
        (q >= v *. 0.999 && q <= v *. 1.004))
    values;
  ignore h

let test_histogram_merge () =
  let a = Hg.create () and b = Hg.create () in
  List.iter (Hg.add a) [ 1.0; 2.0 ];
  List.iter (Hg.add b) [ 3.0; 4.0 ];
  Hg.merge_into ~into:a b;
  check Alcotest.int "merged count" 4 (Hg.count a);
  checkf "p100" ~eps:1e-9 4.0 (Hg.percentile a 100.0);
  let c = Hg.create ~sub_bits:4 () in
  Alcotest.check_raises "sub_bits mismatch"
    (Invalid_argument "Histogram.merge_into: sub_bits mismatch") (fun () ->
      Hg.merge_into ~into:a c)

let test_histogram_empty_and_negative () =
  let h = Hg.create () in
  Alcotest.check_raises "empty percentile" (Invalid_argument "Histogram.percentile: empty")
    (fun () -> ignore (Hg.percentile h 50.0));
  Hg.add h (-5.0);
  checkf "negative clamps to 0" ~eps:1e-9 0.0 (Hg.percentile h 50.0)

let prop_histogram_vs_exact =
  QCheck.Test.make ~name:"histogram percentiles within quantization of exact" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 200) (float_range 0.0 1e7))
    (fun xs ->
      QCheck.assume (Array.length xs > 0);
      begin
      let h = Hg.create ~sub_bits:8 () in
      Array.iter (Hg.add h) xs;
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let approx = Hg.percentile h p in
          (* discrete rank semantics: the sample at ceil(p/100 * n) *)
          let rank = max 1 (min n (int_of_float (ceil (p /. 100.0 *. float_of_int n)))) in
          let exact = sorted.(rank - 1) in
          (* quantization up to 2^-8 relative plus the int truncation *)
          approx >= (exact *. 0.995) -. 2.0 && approx <= Array.fold_left Float.max 0.0 xs +. 1.0)
        [ 50.0; 90.0; 99.0; 100.0 ]
      end)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "summarize known" `Quick test_summarize_known;
          Alcotest.test_case "singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "empty raises" `Quick test_summarize_empty;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "welford" `Quick test_welford_matches_direct;
          qtest prop_mean_within_bounds;
          qtest prop_percentile_monotone;
        ] );
      ( "student_t",
        [
          Alcotest.test_case "inverse normal" `Quick test_inverse_normal;
          Alcotest.test_case "critical small df" `Quick test_t_critical_small_df;
          Alcotest.test_case "critical large df" `Quick test_t_critical_large_df;
          Alcotest.test_case "monotone in df" `Quick test_t_monotone_in_df;
          Alcotest.test_case "CI known example" `Quick test_confidence_interval_known;
          Alcotest.test_case "CI needs two points" `Quick test_confidence_interval_requires_two;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact small values" `Quick test_histogram_exact_small_values;
          Alcotest.test_case "bounded error" `Quick test_histogram_bounded_relative_error;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "empty/negative" `Quick test_histogram_empty_and_negative;
          qtest prop_histogram_vs_exact;
        ] );
      ( "steady_state",
        [
          Alcotest.test_case "converged window" `Quick test_choose_window_converged;
          Alcotest.test_case "earliest window" `Quick test_choose_window_earliest;
          Alcotest.test_case "lowest-COV fallback" `Quick test_choose_window_not_converged;
          Alcotest.test_case "early stop" `Quick test_run_invocation_stops_early;
          Alcotest.test_case "exhaustion" `Quick test_run_invocation_exhausts;
          Alcotest.test_case "across invocations" `Quick test_across_invocations;
        ] );
    ]
