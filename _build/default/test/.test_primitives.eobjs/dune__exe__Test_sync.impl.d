test/test_sync.ml: Alcotest Array Atomic Domain List Printf Sync
