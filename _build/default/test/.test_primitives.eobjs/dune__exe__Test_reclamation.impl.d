test/test_reclamation.ml: Alcotest Array Domain List Printf Wfq
