test/test_obstruction_free.ml: Alcotest Atomic Domain List Wfq
