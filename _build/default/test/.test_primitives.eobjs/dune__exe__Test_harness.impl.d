test/test_harness.ml: Alcotest Harness List Result Stats String Wfq
