test/test_wfqueue.ml: Alcotest Domain Gen List QCheck QCheck_alcotest Queue Test Wfq
