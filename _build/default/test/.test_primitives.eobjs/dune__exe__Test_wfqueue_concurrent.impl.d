test/test_wfqueue_concurrent.ml: Alcotest Array Atomic Domain Hashtbl Int64 List Primitives Wfq
