test/test_wfqueue_slowpath.ml: Alcotest List Wfq
