test/test_lincheck.ml: Alcotest Array Domain Hashtbl Lincheck List QCheck QCheck_alcotest
