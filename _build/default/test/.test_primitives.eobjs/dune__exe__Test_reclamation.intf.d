test/test_reclamation.mli:
