test/test_baselines.ml: Alcotest Atomic Baselines Domain List QCheck QCheck_alcotest Queue
