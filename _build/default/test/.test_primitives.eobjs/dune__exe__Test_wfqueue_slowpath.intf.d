test/test_wfqueue_slowpath.mli:
