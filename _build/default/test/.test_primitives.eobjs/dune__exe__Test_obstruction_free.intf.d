test/test_obstruction_free.mli:
