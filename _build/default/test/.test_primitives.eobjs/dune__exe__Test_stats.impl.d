test/test_stats.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Stats
