test/test_primitives.ml: Alcotest Primitives QCheck QCheck_alcotest
