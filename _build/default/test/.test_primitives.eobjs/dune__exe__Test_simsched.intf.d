test/test_simsched.mli:
