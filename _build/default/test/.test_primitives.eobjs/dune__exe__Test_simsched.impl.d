test/test_simsched.ml: Alcotest Array Atomic Int64 Lincheck List Primitives Printf QCheck QCheck_alcotest Simsched String
