test/test_wfqueue.mli:
