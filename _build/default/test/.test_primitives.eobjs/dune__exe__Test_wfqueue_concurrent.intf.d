test/test_wfqueue_concurrent.mli:
