test/test_linearizability.ml: Alcotest Array Atomic Baselines Domain Format Int64 Lincheck List Primitives Result Sync Wfq
