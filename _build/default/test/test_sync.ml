(* Tests for the synchronization substrate: spinlock, barrier, and the
   CC-Synch combining engine CC-Queue is built on. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Spinlock                                                           *)

let test_spinlock_sequential () =
  let l = Sync.Spinlock.create () in
  Sync.Spinlock.acquire l;
  check Alcotest.bool "try while held" false (Sync.Spinlock.try_acquire l);
  Sync.Spinlock.release l;
  check Alcotest.bool "try when free" true (Sync.Spinlock.try_acquire l);
  Sync.Spinlock.release l

let test_spinlock_with_lock_exception () =
  let l = Sync.Spinlock.create () in
  (try Sync.Spinlock.with_lock l (fun () -> failwith "boom") with Failure _ -> ());
  check Alcotest.bool "released after exception" true (Sync.Spinlock.try_acquire l);
  Sync.Spinlock.release l

let test_spinlock_mutual_exclusion () =
  let l = Sync.Spinlock.create () in
  let counter = ref 0 in
  let iterations = 10_000 in
  let worker () =
    for _ = 1 to iterations do
      Sync.Spinlock.with_lock l (fun () -> counter := !counter + 1)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "no lost updates" (4 * iterations) !counter

(* ------------------------------------------------------------------ *)
(* Barrier                                                            *)

let test_barrier_parties () =
  let b = Sync.Barrier.create 3 in
  check Alcotest.int "parties" 3 (Sync.Barrier.parties b)

let test_barrier_single () =
  let b = Sync.Barrier.create 1 in
  (* must not block *)
  Sync.Barrier.await b;
  Sync.Barrier.await b

let test_barrier_rendezvous () =
  let parties = 4 in
  let b = Sync.Barrier.create parties in
  let before = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let rounds = 20 in
  let worker () =
    for _ = 1 to rounds do
      ignore (Atomic.fetch_and_add before 1);
      Sync.Barrier.await b;
      (* after the barrier, all parties of this round have incremented *)
      if Atomic.get before mod parties <> 0 && Atomic.get before < parties then
        ignore (Atomic.fetch_and_add failures 1);
      Sync.Barrier.await b (* separate rounds *)
    done
  in
  let domains = List.init parties (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "total increments" (parties * rounds) (Atomic.get before);
  check Alcotest.int "no early release" 0 (Atomic.get failures)

(* ------------------------------------------------------------------ *)
(* CC-Synch                                                            *)

let test_ccsynch_sequential () =
  let s = Sync.Ccsynch.create () in
  let h = Sync.Ccsynch.handle s in
  let x = Sync.Ccsynch.apply s h (fun () -> 21 * 2) in
  check Alcotest.int "returns result" 42 x;
  let acc = ref [] in
  for i = 1 to 10 do
    Sync.Ccsynch.apply s h (fun () -> acc := i :: !acc)
  done;
  check Alcotest.(list int) "operations in order" [ 10; 9; 8; 7; 6; 5; 4; 3; 2; 1 ] !acc

let test_ccsynch_atomicity () =
  (* The classic non-atomic increment becomes safe under combining. *)
  let s = Sync.Ccsynch.create () in
  let counter = ref 0 in
  let per_thread = 20_000 in
  let worker () =
    let h = Sync.Ccsynch.handle s in
    for _ = 1 to per_thread do
      Sync.Ccsynch.apply s h (fun () ->
          let v = !counter in
          counter := v + 1)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "atomic increments" (4 * per_thread) !counter

let test_ccsynch_max_combine () =
  (* max_combine = 1 still completes everything (the combiner role is
     handed over after each request). *)
  let s = Sync.Ccsynch.create ~max_combine:1 () in
  let counter = ref 0 in
  let worker () =
    let h = Sync.Ccsynch.handle s in
    for _ = 1 to 5_000 do
      Sync.Ccsynch.apply s h (fun () -> incr counter)
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "all applied" 15_000 !counter

let test_ccsynch_distinct_results () =
  let s = Sync.Ccsynch.create () in
  let results = Array.make 4 0 in
  let worker i () =
    let h = Sync.Ccsynch.handle s in
    let total = ref 0 in
    for k = 1 to 1_000 do
      total := !total + Sync.Ccsynch.apply s h (fun () -> (i * 1_000) + k)
    done;
    results.(i) <- !total
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  Array.iteri
    (fun i total ->
      (* sum_{k=1..1000} (i*1000 + k) *)
      let expected = (i * 1_000 * 1_000) + (1_000 * 1_001 / 2) in
      check Alcotest.int (Printf.sprintf "thread %d got its own results" i) expected total)
    results

let () =
  Alcotest.run "sync"
    [
      ( "spinlock",
        [
          Alcotest.test_case "sequential" `Quick test_spinlock_sequential;
          Alcotest.test_case "exception safety" `Quick test_spinlock_with_lock_exception;
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "parties" `Quick test_barrier_parties;
          Alcotest.test_case "single party" `Quick test_barrier_single;
          Alcotest.test_case "rendezvous" `Quick test_barrier_rendezvous;
        ] );
      ( "ccsynch",
        [
          Alcotest.test_case "sequential" `Quick test_ccsynch_sequential;
          Alcotest.test_case "atomicity" `Quick test_ccsynch_atomicity;
          Alcotest.test_case "max_combine 1" `Quick test_ccsynch_max_combine;
          Alcotest.test_case "distinct results" `Quick test_ccsynch_distinct_results;
        ] );
    ]
