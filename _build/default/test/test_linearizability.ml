(* Linearizability testing of the real queue implementations.

   Small concurrent histories are recorded against each queue and
   verified exhaustively with the WGL checker (the paper proves
   linearizability in §4; these tests look for counterexamples).
   Larger histories are checked with the polynomial necessary
   conditions.  A deliberately broken "queue" (a stack) validates
   that the pipeline actually rejects wrong implementations. *)

module H = Lincheck.History
module Q = Lincheck.Queue_spec
module Wgl = Lincheck.Wgl.Make (Lincheck.Queue_spec)
module FF = Lincheck.Fast_fifo

let check = Alcotest.check

(* A queue under test, reduced to per-thread closures over ints. *)
type subject = { register : unit -> (int -> unit) * (unit -> int option) }

let wf_subject ?(patience = 10) ?(segment_shift = 4) () =
  let q = Wfq.Wfqueue.create ~patience ~segment_shift ~max_garbage:2 () in
  {
    register =
      (fun () ->
        let h = Wfq.Wfqueue.register q in
        ((fun v -> Wfq.Wfqueue.enqueue q h v), fun () -> Wfq.Wfqueue.dequeue q h));
  }

let ofq_subject () =
  let q = Wfq.Obstruction_free.create ~segment_shift:4 () in
  {
    register =
      (fun () -> ((fun v -> Wfq.Obstruction_free.enqueue q v), fun () -> Wfq.Obstruction_free.dequeue q));
  }

let ms_subject () =
  let q = Baselines.Msqueue.create () in
  {
    register =
      (fun () ->
        let h = Baselines.Msqueue.register q in
        ((fun v -> Baselines.Msqueue.enqueue q h v), fun () -> Baselines.Msqueue.dequeue q h));
  }

let lcrq_subject () =
  let q = Baselines.Lcrq.create ~ring_size:8 () in
  {
    register =
      (fun () ->
        let h = Baselines.Lcrq.register q in
        ((fun v -> Baselines.Lcrq.enqueue q h v), fun () -> Baselines.Lcrq.dequeue q h));
  }

let kp_subject () =
  let q = Baselines.Kp_queue.create () in
  {
    register =
      (fun () ->
        let h = Baselines.Kp_queue.register q in
        ((fun v -> Baselines.Kp_queue.enqueue q h v), fun () -> Baselines.Kp_queue.dequeue q h));
  }

let cc_subject () =
  let q = Baselines.Ccqueue.create () in
  {
    register =
      (fun () ->
        let h = Baselines.Ccqueue.register q in
        ((fun v -> Baselines.Ccqueue.enqueue q h v), fun () -> Baselines.Ccqueue.dequeue q h));
  }

(* A Treiber stack masquerading as a queue: must be flagged. *)
let stack_subject () =
  let top = Atomic.make [] in
  let push v =
    let rec go () =
      let cur = Atomic.get top in
      if not (Atomic.compare_and_set top cur (v :: cur)) then go ()
    in
    go ()
  in
  let pop () =
    let rec go () =
      match Atomic.get top with
      | [] -> None
      | v :: rest as cur ->
        if Atomic.compare_and_set top cur rest then Some v else go ()
    in
    go ()
  in
  { register = (fun () -> (push, pop)) }

(* Record one small concurrent run: [threads] domains, each performing
   [ops] random operations with distinct values. *)
let record_history subject ~threads ~ops ~seed =
  let recorder = H.create_recorder ~threads in
  let barrier = Sync.Barrier.create threads in
  let domains =
    List.init threads (fun t ->
        Domain.spawn (fun () ->
            let enqueue, dequeue = subject.register () in
            let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 1000) + t)) in
            Sync.Barrier.await barrier;
            for i = 0 to ops - 1 do
              if Primitives.Splitmix64.bool rng then
                ignore
                  (H.record recorder ~thread:t
                     (Q.Enq ((t * 10_000) + i))
                     (fun () ->
                       enqueue ((t * 10_000) + i);
                       Q.Accepted))
              else
                ignore
                  (H.record recorder ~thread:t Q.Deq (fun () ->
                       match dequeue () with Some v -> Q.Got v | None -> Q.Empty))
            done))
  in
  List.iter Domain.join domains;
  H.events recorder

let assert_linearizable name mk_subject ~rounds ~threads ~ops =
  (* a fresh queue per round: each recorded history must be
     self-contained for the checker *)
  for seed = 1 to rounds do
    let evs = record_history (mk_subject ()) ~threads ~ops ~seed in
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable ->
      Alcotest.failf "%s: non-linearizable history found (seed %d, %d events)" name seed
        (Array.length evs)
    | Wgl.Too_large -> Alcotest.failf "%s: history too large for WGL" name
  done

let test_wf_small_histories () =
  assert_linearizable "wfqueue" (fun () -> wf_subject ()) ~rounds:30 ~threads:3 ~ops:8

let test_wf_patience0_small_histories () =
  assert_linearizable "wfqueue p0" (fun () -> wf_subject ~patience:0 ()) ~rounds:30 ~threads:3 ~ops:8

let test_wf_more_threads () =
  assert_linearizable "wfqueue 4T"
    (fun () -> wf_subject ~patience:0 ~segment_shift:2 ())
    ~rounds:15 ~threads:4 ~ops:6

let test_obstruction_free_small_histories () =
  assert_linearizable "obstruction-free" (fun () -> ofq_subject ()) ~rounds:20 ~threads:3 ~ops:8

let test_msqueue_small_histories () =
  assert_linearizable "msqueue" (fun () -> ms_subject ()) ~rounds:20 ~threads:3 ~ops:8

let test_lcrq_small_histories () =
  assert_linearizable "lcrq" (fun () -> lcrq_subject ()) ~rounds:20 ~threads:3 ~ops:8

let test_ccqueue_small_histories () =
  assert_linearizable "ccqueue" (fun () -> cc_subject ()) ~rounds:20 ~threads:3 ~ops:8

let test_kp_small_histories () =
  assert_linearizable "kp_queue" (fun () -> kp_subject ()) ~rounds:20 ~threads:3 ~ops:8

let test_stack_rejected () =
  (* the checker pipeline must flag a stack once a history exposes
     LIFO behaviour; collect sequential evidence deterministically *)
  let subject = stack_subject () in
  let enqueue, dequeue = subject.register () in
  let recorder = H.create_recorder ~threads:1 in
  ignore (H.record recorder ~thread:0 (Q.Enq 1) (fun () -> enqueue 1; Q.Accepted));
  ignore (H.record recorder ~thread:0 (Q.Enq 2) (fun () -> enqueue 2; Q.Accepted));
  ignore
    (H.record recorder ~thread:0 Q.Deq (fun () ->
         match dequeue () with Some v -> Q.Got v | None -> Q.Empty));
  ignore
    (H.record recorder ~thread:0 Q.Deq (fun () ->
         match dequeue () with Some v -> Q.Got v | None -> Q.Empty));
  let evs = H.events recorder in
  check Alcotest.bool "stack flagged by WGL" false (Wgl.is_linearizable evs);
  check Alcotest.bool "stack flagged by fast checker" true (FF.check evs |> Result.is_error)

(* Large-history necessary-condition checks. *)
let assert_fast_fifo_clean name subject ~threads ~ops =
  let evs = record_history subject ~threads ~ops ~seed:7 in
  match FF.check evs with
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: %s" name (Format.asprintf "%a" FF.pp_violation v)

let test_wf_large_history () =
  assert_fast_fifo_clean "wfqueue" (wf_subject ~patience:0 ~segment_shift:3 ()) ~threads:6
    ~ops:5_000

let test_wf_default_large_history () =
  assert_fast_fifo_clean "wfqueue wf-10" (wf_subject ()) ~threads:4 ~ops:10_000

let test_msqueue_large_history () =
  assert_fast_fifo_clean "msqueue" (ms_subject ()) ~threads:4 ~ops:5_000

let test_lcrq_large_history () =
  assert_fast_fifo_clean "lcrq" (lcrq_subject ()) ~threads:4 ~ops:5_000

let test_ccqueue_large_history () =
  assert_fast_fifo_clean "ccqueue" (cc_subject ()) ~threads:4 ~ops:5_000

let () =
  Alcotest.run "linearizability"
    [
      ( "wgl small histories",
        [
          Alcotest.test_case "wf-10" `Quick test_wf_small_histories;
          Alcotest.test_case "wf-0" `Quick test_wf_patience0_small_histories;
          Alcotest.test_case "wf 4 threads" `Quick test_wf_more_threads;
          Alcotest.test_case "obstruction-free" `Quick test_obstruction_free_small_histories;
          Alcotest.test_case "msqueue" `Quick test_msqueue_small_histories;
          Alcotest.test_case "lcrq" `Quick test_lcrq_small_histories;
          Alcotest.test_case "ccqueue" `Quick test_ccqueue_small_histories;
          Alcotest.test_case "kp_queue" `Quick test_kp_small_histories;
          Alcotest.test_case "stack rejected" `Quick test_stack_rejected;
        ] );
      ( "fast checks large histories",
        [
          Alcotest.test_case "wf-0 stress" `Quick test_wf_large_history;
          Alcotest.test_case "wf-10 stress" `Quick test_wf_default_large_history;
          Alcotest.test_case "msqueue stress" `Quick test_msqueue_large_history;
          Alcotest.test_case "lcrq stress" `Quick test_lcrq_large_history;
          Alcotest.test_case "ccqueue stress" `Quick test_ccqueue_large_history;
        ] );
    ]
