(* Tests for the Listing-1 obstruction-free queue, including a
   deterministic demonstration that it is *only* obstruction-free:
   dequeuers that overshoot an empty queue poison future cells, and a
   bounded-retry enqueuer then fails — the interference pattern behind
   the livelock described in §3.2 of the paper. *)

module O = Wfq.Obstruction_free

let check = Alcotest.check

let test_fifo_sequential () =
  let q = O.create () in
  check Alcotest.(option int) "empty" None (O.dequeue q);
  for i = 1 to 1000 do
    O.enqueue q i
  done;
  for i = 1 to 1000 do
    check Alcotest.(option int) "fifo" (Some i) (O.dequeue q)
  done;
  check Alcotest.(option int) "drained" None (O.dequeue q)

let test_interleaved () =
  let q = O.create ~segment_shift:4 () in
  for round = 0 to 99 do
    O.enqueue q (2 * round);
    O.enqueue q ((2 * round) + 1);
    check Alcotest.(option int) "first out" (Some (2 * round)) (O.dequeue q);
    check Alcotest.(option int) "second out" (Some ((2 * round) + 1)) (O.dequeue q)
  done

let test_segment_crossing () =
  (* tiny segments force list extension *)
  let q = O.create ~segment_shift:2 () in
  for i = 1 to 100 do
    O.enqueue q i
  done;
  check Alcotest.int "length" 100 (O.approx_length q);
  for i = 1 to 100 do
    check Alcotest.(option int) "fifo across segments" (Some i) (O.dequeue q)
  done

let test_empty_dequeues_poison_cells () =
  let q = O.create () in
  (* 10 empty dequeues mark cells 0..9 unusable *)
  for _ = 1 to 10 do
    check Alcotest.bool "empty" true (O.try_dequeue q ~attempts:1 = Ok None)
  done;
  (* an enqueuer with insufficient patience cannot land a value *)
  check Alcotest.bool "10 attempts all fail" false (O.try_enqueue q ~attempts:10 42);
  (* the 11th cell is untouched, so one more attempt succeeds *)
  check Alcotest.bool "11th attempt lands" true (O.try_enqueue q ~attempts:1 42);
  check Alcotest.bool "value is there" true (O.dequeue q = Some 42)

let test_retry_dequeue_skips_poisoned () =
  let q = O.create () in
  (* poison cell 0 with an empty dequeue, then enqueue: value goes to
     cell 1 after the enqueuer's first attempt fails *)
  check Alcotest.bool "empty" true (O.try_dequeue q ~attempts:1 = Ok None);
  O.enqueue q 7;
  (* the dequeuer claims cell 1 after exhausting cell... cell 1 holds
     the value; one round suffices because H=1 now *)
  check Alcotest.(option int) "skips poisoned cell" (Some 7) (O.dequeue q)

let test_try_dequeue_exhaustion () =
  let q = O.create () in
  (* enqueue 5 values, then mark them claimed by racing dequeues... a
     single-threaded stand-in: exhaustion needs the Retry outcome,
     which happens when CAS succeeds (cell empty) but T > h.  Arrange
     T > H with poisoned cells: enqueue to bump T, then steal values
     with unbounded dequeue, leaving H < T with all cells consumed is
     not reachable single-threaded — so instead check Ok None and
     Exhausted cases directly. *)
  O.enqueue q 1;
  check Alcotest.bool "one round takes value" true (O.try_dequeue q ~attempts:1 = Ok (Some 1));
  (* now empty: CAS succeeds, T(1) <= h(1): Ok None, not Exhausted *)
  check Alcotest.bool "empty not exhausted" true (O.try_dequeue q ~attempts:1 = Ok None);
  (* with T bumped ahead by 2 fresh enqueues into poisoned region:
     dequeue at h=2... enqueue twice; first lands in cell 2 *)
  O.enqueue q 2;
  check Alcotest.bool "takes 2" true (O.try_dequeue q ~attempts:1 = Ok (Some 2))

let test_mpmc_no_loss () =
  let q = O.create ~segment_shift:6 () in
  let nprod = 3 and ncons = 3 and n = 10_000 in
  let consumed = Atomic.make 0 and sum = Atomic.make 0 in
  let producers =
    List.init nprod (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to n - 1 do
              O.enqueue q ((p * n) + i)
            done))
  in
  let consumers =
    List.init ncons (fun _ ->
        Domain.spawn (fun () ->
            let continue = ref true in
            while !continue do
              match O.dequeue q with
              | Some v ->
                ignore (Atomic.fetch_and_add sum v);
                if Atomic.fetch_and_add consumed 1 = (nprod * n) - 1 then continue := false
              | None -> if Atomic.get consumed >= nprod * n then continue := false
            done))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  check Alcotest.int "all consumed" (nprod * n) (Atomic.get consumed);
  check Alcotest.int "sum preserved" (nprod * n * ((nprod * n) - 1) / 2) (Atomic.get sum)

let () =
  Alcotest.run "obstruction_free"
    [
      ( "sequential",
        [
          Alcotest.test_case "fifo" `Quick test_fifo_sequential;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "segment crossing" `Quick test_segment_crossing;
        ] );
      ( "obstruction",
        [
          Alcotest.test_case "poisoned cells defeat bounded enqueue" `Quick
            test_empty_dequeues_poison_cells;
          Alcotest.test_case "dequeue skips poisoned" `Quick test_retry_dequeue_skips_poisoned;
          Alcotest.test_case "try_dequeue outcomes" `Quick test_try_dequeue_exhaustion;
        ] );
      ("concurrent", [ Alcotest.test_case "mpmc no loss" `Quick test_mpmc_no_loss ]);
    ]
