(* Unit and property tests for the primitives library. *)

module Packed = Primitives.Packed_state
module Rng = Primitives.Splitmix64

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Packed_state                                                       *)

let test_packed_basic () =
  let s = Packed.make ~pending:true ~id:42 in
  check Alcotest.bool "pending" true (Packed.pending s);
  check Alcotest.int "id" 42 (Packed.id s);
  let s = Packed.make ~pending:false ~id:0 in
  check Alcotest.bool "not pending" false (Packed.pending s);
  check Alcotest.int "id 0" 0 (Packed.id s)

let test_packed_initial () =
  check Alcotest.bool "initial not pending" false (Packed.pending Packed.initial);
  check Alcotest.int "initial id" 0 (Packed.id Packed.initial);
  check Alcotest.bool "initial = make false 0" true
    (Packed.equal Packed.initial (Packed.make ~pending:false ~id:0))

let test_packed_distinct () =
  (* claiming flips pending and swaps the id: the two words must
     differ so the CAS in try_to_claim_req is meaningful *)
  let pending = Packed.make ~pending:true ~id:7 in
  let claimed = Packed.make ~pending:false ~id:7 in
  check Alcotest.bool "pending <> claimed" false (Packed.equal pending claimed)

let prop_packed_roundtrip =
  QCheck.Test.make ~name:"packed_state roundtrip" ~count:1000
    QCheck.(pair bool (int_bound 0x3FFFFFFFFFFF))
    (fun (pending, id) ->
      let s = Packed.make ~pending ~id in
      Packed.pending s = pending && Packed.id s = id)

let prop_packed_injective =
  QCheck.Test.make ~name:"packed_state injective" ~count:1000
    QCheck.(pair (pair bool small_nat) (pair bool small_nat))
    (fun ((p1, i1), (p2, i2)) ->
      let s1 = Packed.make ~pending:p1 ~id:i1 in
      let s2 = Packed.make ~pending:p2 ~id:i2 in
      Packed.equal s1 s2 = (p1 = p2 && i1 = i2))

(* ------------------------------------------------------------------ *)
(* Backoff                                                            *)

let test_backoff_growth () =
  let b = Primitives.Backoff.create ~min_spins:4 ~max_spins:64 () in
  check Alcotest.int "initial" 4 (Primitives.Backoff.current_spins b);
  Primitives.Backoff.backoff b;
  check Alcotest.int "doubled" 8 (Primitives.Backoff.current_spins b);
  for _ = 1 to 10 do
    Primitives.Backoff.backoff b
  done;
  check Alcotest.int "saturates" 64 (Primitives.Backoff.current_spins b);
  Primitives.Backoff.reset b;
  check Alcotest.int "reset" 4 (Primitives.Backoff.current_spins b)

(* ------------------------------------------------------------------ *)
(* Splitmix64                                                         *)

let test_rng_deterministic () =
  let a = Rng.create 12345L and b = Rng.create 12345L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  check Alcotest.bool "different streams" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 99L in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 parent = Rng.next_int64 child then incr same
  done;
  check Alcotest.bool "split independent" true (!same < 4)

let prop_rng_bounds =
  QCheck.Test.make ~name:"next_int in bounds" ~count:1000
    QCheck.(pair int64 (int_range 1 1000000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.next_int rng bound in
      x >= 0 && x < bound)

let prop_rng_float_range =
  QCheck.Test.make ~name:"next_float in [0,1)" ~count:1000 QCheck.int64 (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.next_float rng in
      x >= 0.0 && x < 1.0)

let test_rng_bool_balanced () =
  let rng = Rng.create 7L in
  let heads = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let ratio = float_of_int !heads /. float_of_int n in
  check Alcotest.bool "roughly fair" true (ratio > 0.45 && ratio < 0.55)

(* ------------------------------------------------------------------ *)
(* Spin_work and Clock                                                *)

let test_calibration_positive () =
  let rate = Primitives.Spin_work.calibrate () in
  check Alcotest.bool "positive rate" true (rate > 0.0);
  check Alcotest.bool "memoized" true (Primitives.Spin_work.calibrate () = rate)

let test_iterations_monotone () =
  let i50 = Primitives.Spin_work.iterations_for_ns 50 in
  let i100 = Primitives.Spin_work.iterations_for_ns 100 in
  let i1000 = Primitives.Spin_work.iterations_for_ns 1000 in
  check Alcotest.bool "positive" true (i50 > 0);
  check Alcotest.bool "monotone" true (i50 <= i100 && i100 <= i1000)

let test_delay_runs () =
  (* The delay must at least not crash and must consume some time for
     large values. *)
  Primitives.Spin_work.delay_ns 0;
  Primitives.Spin_work.delay_ns 100;
  let _, elapsed = Primitives.Clock.time_it (fun () -> Primitives.Spin_work.delay_ns 5_000_000) in
  check Alcotest.bool "5ms delay takes >=1ms" true (elapsed >= 0.001)

let test_random_work_bounds () =
  let rng = Rng.create 3L in
  (* just exercises the path; bounds are enforced by assertion *)
  for _ = 1 to 100 do
    Primitives.Spin_work.random_work rng ~min_ns:50 ~max_ns:100
  done

let test_clock_monotone_enough () =
  let t0 = Primitives.Clock.now () in
  let t1 = Primitives.Clock.now () in
  check Alcotest.bool "non-decreasing" true (t1 >= t0)

let test_time_it () =
  let x, elapsed = Primitives.Clock.time_it (fun () -> 42) in
  check Alcotest.int "result" 42 x;
  check Alcotest.bool "elapsed >= 0" true (elapsed >= 0.0)

let () =
  Alcotest.run "primitives"
    [
      ( "packed_state",
        [
          Alcotest.test_case "basic" `Quick test_packed_basic;
          Alcotest.test_case "initial" `Quick test_packed_initial;
          Alcotest.test_case "pending/claimed distinct" `Quick test_packed_distinct;
          qtest prop_packed_roundtrip;
          qtest prop_packed_injective;
        ] );
      ("backoff", [ Alcotest.test_case "growth and reset" `Quick test_backoff_growth ]);
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          qtest prop_rng_bounds;
          qtest prop_rng_float_range;
        ] );
      ( "spin_work",
        [
          Alcotest.test_case "calibration" `Quick test_calibration_positive;
          Alcotest.test_case "iterations monotone" `Quick test_iterations_monotone;
          Alcotest.test_case "delay runs" `Quick test_delay_runs;
          Alcotest.test_case "random work" `Quick test_random_work_bounds;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotone enough" `Quick test_clock_monotone_enough;
          Alcotest.test_case "time_it" `Quick test_time_it;
        ] );
    ]
