(* Tests for the linearizability-checking substrate itself: recorder,
   the WGL exhaustive checker, the FIFO spec, and the fast
   necessary-condition checker.  Checkers are validated on hand-built
   histories with known verdicts before being trusted on real queue
   executions (test_linearizability.ml). *)

module H = Lincheck.History
module Q = Lincheck.Queue_spec
module Wgl = Lincheck.Wgl.Make (Lincheck.Queue_spec)
module FF = Lincheck.Fast_fifo

let check = Alcotest.check

(* Hand-build an event; timestamps must be provided consistently. *)
let ev ?(thread = 0) input output inv res : (Q.input, Q.output) H.event =
  { H.thread; input; output; inv; res }

let enq ?thread x inv res = ev ?thread (Q.Enq x) Q.Accepted inv res
let deq ?thread x inv res = ev ?thread Q.Deq (Q.Got x) inv res
let deq_empty ?thread inv res = ev ?thread Q.Deq Q.Empty inv res

let is_lin evs = Wgl.is_linearizable (Array.of_list evs)

(* ------------------------------------------------------------------ *)
(* Queue_spec                                                         *)

let test_spec_apply () =
  check Alcotest.bool "enq appends" true (Q.apply [] (Q.Enq 1) Q.Accepted = Some [ 1 ]);
  check Alcotest.bool "fifo order" true (Q.apply [ 1; 2 ] Q.Deq (Q.Got 1) = Some [ 2 ]);
  check Alcotest.bool "wrong value rejected" true (Q.apply [ 1; 2 ] Q.Deq (Q.Got 2) = None);
  check Alcotest.bool "empty on empty" true (Q.apply [] Q.Deq Q.Empty = Some []);
  check Alcotest.bool "empty on non-empty rejected" true (Q.apply [ 1 ] Q.Deq Q.Empty = None);
  check Alcotest.bool "enq can't return Got" true (Q.apply [] (Q.Enq 1) (Q.Got 1) = None)

(* ------------------------------------------------------------------ *)
(* History recorder                                                   *)

let test_recorder_sequential () =
  let r = H.create_recorder ~threads:1 in
  ignore (H.record r ~thread:0 (Q.Enq 1) (fun () -> Q.Accepted));
  ignore (H.record r ~thread:0 Q.Deq (fun () -> Q.Got 1));
  let evs = H.events r in
  check Alcotest.int "two events" 2 (Array.length evs);
  check Alcotest.bool "inv < res" true (evs.(0).H.inv < evs.(0).H.res);
  check Alcotest.bool "sequential precedence" true (H.precedes evs.(0) evs.(1));
  check Alcotest.int "size" 2 (H.size r)

let test_recorder_concurrent_threads () =
  let r = H.create_recorder ~threads:4 in
  let domains =
    List.init 4 (fun t ->
        Domain.spawn (fun () ->
            for i = 0 to 24 do
              ignore (H.record r ~thread:t (Q.Enq ((t * 100) + i)) (fun () -> Q.Accepted))
            done))
  in
  List.iter Domain.join domains;
  let evs = H.events r in
  check Alcotest.int "all events" 100 (Array.length evs);
  (* timestamps are globally unique and sorted by inv *)
  let sorted = ref true and seen = Hashtbl.create 256 in
  Array.iteri
    (fun i e ->
      if i > 0 && evs.(i - 1).H.inv > e.H.inv then sorted := false;
      Hashtbl.replace seen e.H.inv ();
      Hashtbl.replace seen e.H.res ())
    evs;
  check Alcotest.bool "sorted by inv" true !sorted;
  check Alcotest.int "timestamps unique" 200 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* WGL checker on hand-built histories                                *)

let test_wgl_empty_history () = check Alcotest.bool "empty ok" true (is_lin [])

let test_wgl_sequential_good () =
  check Alcotest.bool "seq fifo" true
    (is_lin [ enq 1 0 1; enq 2 2 3; deq 1 4 5; deq 2 6 7; deq_empty 8 9 ])

let test_wgl_sequential_lifo_bad () =
  (* stack behaviour must be rejected *)
  check Alcotest.bool "lifo rejected" false (is_lin [ enq 1 0 1; enq 2 2 3; deq 2 4 5; deq 1 6 7 ])

let test_wgl_dequeue_never_enqueued () =
  check Alcotest.bool "phantom value" false (is_lin [ enq 1 0 1; deq 7 2 3 ])

let test_wgl_empty_while_full () =
  check Alcotest.bool "vacuous empty" false (is_lin [ enq 1 0 1; deq_empty 2 3 ])

let test_wgl_concurrent_reorder_ok () =
  (* two overlapping enqueues may linearize either way *)
  check Alcotest.bool "overlap allows swap" true
    (is_lin [ enq ~thread:0 1 0 3; enq ~thread:1 2 1 2; deq 2 4 5; deq 1 6 7 ])

let test_wgl_nonoverlapping_must_not_swap () =
  check Alcotest.bool "strict precedence" false
    (is_lin [ enq 1 0 1; enq 2 2 3; deq 2 4 5; deq 1 6 7 ])

let test_wgl_empty_overlapping_enqueue_ok () =
  (* EMPTY may linearize before an overlapping enqueue completes *)
  check Alcotest.bool "overlapping empty ok" true
    (is_lin [ enq ~thread:0 1 0 5; deq_empty ~thread:1 1 2; deq ~thread:1 1 6 7 ])

let test_wgl_witness_order () =
  match Wgl.check (Array.of_list [ enq 1 0 1; deq 1 2 3 ]) with
  | Wgl.Linearizable order ->
    check Alcotest.(list int) "enq then deq" [ 0; 1 ] order
  | Wgl.Not_linearizable | Wgl.Too_large -> Alcotest.fail "expected linearizable"

let test_wgl_dequeue_before_enqueue_rejected () =
  check Alcotest.bool "deq precedes its enq" false (is_lin [ deq 1 0 1; enq 1 2 3 ])

(* The double-swap example: thread A enq 1 / deq 2, thread B enq 2 /
   deq 1, all four concurrent — linearizable. *)
let test_wgl_crossing_ok () =
  check Alcotest.bool "crossing" true
    (is_lin
       [ enq ~thread:0 1 0 10; enq ~thread:1 2 1 9; deq ~thread:0 2 11 20; deq ~thread:1 1 12 19 ])

(* ------------------------------------------------------------------ *)
(* Fast_fifo necessary conditions                                     *)

let ff evs = FF.check (Array.of_list evs)
let ff_complete evs = FF.check ~complete:true (Array.of_list evs)

let violation_kind = function
  | Ok () -> "ok"
  | Error (FF.Dequeued_never_enqueued _) -> "never_enqueued"
  | Error (FF.Dequeued_twice _) -> "twice"
  | Error (FF.Dequeue_before_enqueue _) -> "before_enqueue"
  | Error (FF.Fifo_inversion _) -> "inversion"
  | Error (FF.Vacuous_empty _) -> "vacuous_empty"
  | Error (FF.Value_lost _) -> "lost"

let test_ff_good_history () =
  check Alcotest.string "clean" "ok"
    (violation_kind (ff [ enq 1 0 1; enq 2 2 3; deq 1 4 5; deq 2 6 7 ]))

let test_ff_never_enqueued () =
  check Alcotest.string "phantom" "never_enqueued" (violation_kind (ff [ enq 1 0 1; deq 9 2 3 ]))

let test_ff_dequeued_twice () =
  check Alcotest.string "twice" "twice"
    (violation_kind (ff [ enq 1 0 1; deq 1 2 3; deq ~thread:1 1 4 5 ]))

let test_ff_deq_before_enq () =
  check Alcotest.string "before enqueue" "before_enqueue"
    (violation_kind (ff [ deq 1 0 1; enq 1 2 3 ]))

let test_ff_inversion () =
  check Alcotest.string "inversion" "inversion"
    (violation_kind (ff [ enq 1 0 1; enq 2 2 3; deq 2 4 5; deq 1 6 7 ]))

let test_ff_overlap_not_inversion () =
  check Alcotest.string "overlapping enqueues may swap" "ok"
    (violation_kind (ff [ enq ~thread:0 1 0 3; enq ~thread:1 2 1 2; deq 2 4 5; deq 1 6 7 ]))

let test_ff_vacuous_empty () =
  check Alcotest.string "vacuous empty" "vacuous_empty"
    (violation_kind (ff [ enq 1 0 1; deq_empty 2 3; deq 1 4 5 ]))

let test_ff_empty_racing_enqueue_ok () =
  check Alcotest.string "racy empty fine" "ok"
    (violation_kind (ff [ enq ~thread:0 1 0 5; deq_empty ~thread:1 1 2; deq ~thread:1 1 6 7 ]))

let test_ff_value_lost () =
  check Alcotest.string "lost value" "lost" (violation_kind (ff_complete [ enq 1 0 1 ]));
  check Alcotest.string "incomplete mode tolerates" "ok" (violation_kind (ff [ enq 1 0 1 ]))

let test_ff_duplicate_values_rejected () =
  Alcotest.check_raises "duplicate enqueue values"
    (Invalid_argument "Fast_fifo.check: duplicate enqueued value (values must be distinct)")
    (fun () -> ignore (ff [ enq 1 0 1; enq 1 2 3 ]))

(* Soundness vs WGL: whenever fast_fifo reports a violation, WGL must
   agree the history is not linearizable.  Random complete histories
   are generated by interleaving plausible (and sometimes corrupted)
   outcomes. *)
let prop_ff_sound_wrt_wgl =
  let gen_history =
    QCheck.Gen.(
      let* n_values = int_range 1 5 in
      let* corrupt = bool in
      (* produce a queue run: enqueue 1..n then dequeue them, possibly
         corrupting the dequeue order, with randomized overlapping
         timestamps *)
      let* shuffle = if corrupt then return true else return false in
      let values = List.init n_values (fun i -> i + 1) in
      let* deq_order = if shuffle then shuffle_l values else return values in
      let* gap = int_range 0 2 in
      let mk_ts i = (i * 2) + gap in
      let enqs = List.mapi (fun i v -> enq v (mk_ts i) (mk_ts i + 1)) values in
      let base = 2 * (n_values + 2) in
      let deqs = List.mapi (fun i v -> deq v (base + (2 * i)) (base + (2 * i) + 1)) deq_order in
      return (enqs @ deqs))
  in
  QCheck.Test.make ~name:"fast_fifo sound wrt WGL" ~count:200
    (QCheck.make gen_history)
    (fun evs ->
      let arr = Array.of_list evs in
      match FF.check arr with
      | Ok () -> true (* necessary conditions pass: no claim either way *)
      | Error _ -> not (Wgl.is_linearizable arr))

let () =
  Alcotest.run "lincheck"
    [
      ("queue_spec", [ Alcotest.test_case "apply" `Quick test_spec_apply ]);
      ( "history",
        [
          Alcotest.test_case "sequential" `Quick test_recorder_sequential;
          Alcotest.test_case "concurrent" `Quick test_recorder_concurrent_threads;
        ] );
      ( "wgl",
        [
          Alcotest.test_case "empty history" `Quick test_wgl_empty_history;
          Alcotest.test_case "sequential good" `Quick test_wgl_sequential_good;
          Alcotest.test_case "lifo rejected" `Quick test_wgl_sequential_lifo_bad;
          Alcotest.test_case "phantom value" `Quick test_wgl_dequeue_never_enqueued;
          Alcotest.test_case "vacuous empty" `Quick test_wgl_empty_while_full;
          Alcotest.test_case "overlap swap ok" `Quick test_wgl_concurrent_reorder_ok;
          Alcotest.test_case "strict precedence" `Quick test_wgl_nonoverlapping_must_not_swap;
          Alcotest.test_case "empty vs overlap" `Quick test_wgl_empty_overlapping_enqueue_ok;
          Alcotest.test_case "witness order" `Quick test_wgl_witness_order;
          Alcotest.test_case "deq before enq" `Quick test_wgl_dequeue_before_enqueue_rejected;
          Alcotest.test_case "crossing" `Quick test_wgl_crossing_ok;
        ] );
      ( "fast_fifo",
        [
          Alcotest.test_case "clean" `Quick test_ff_good_history;
          Alcotest.test_case "never enqueued" `Quick test_ff_never_enqueued;
          Alcotest.test_case "dequeued twice" `Quick test_ff_dequeued_twice;
          Alcotest.test_case "deq before enq" `Quick test_ff_deq_before_enq;
          Alcotest.test_case "inversion" `Quick test_ff_inversion;
          Alcotest.test_case "overlap no inversion" `Quick test_ff_overlap_not_inversion;
          Alcotest.test_case "vacuous empty" `Quick test_ff_vacuous_empty;
          Alcotest.test_case "racy empty ok" `Quick test_ff_empty_racing_enqueue_ok;
          Alcotest.test_case "value lost" `Quick test_ff_value_lost;
          Alcotest.test_case "duplicates rejected" `Quick test_ff_duplicate_values_rejected;
          QCheck_alcotest.to_alcotest prop_ff_sound_wrt_wgl;
        ] );
    ]
