(* Deterministic whitebox tests of the wait-free machinery.  On this
   single-core host, preemption (the only source of interleaving)
   essentially never lands inside the two-instruction fast-path
   window, so the slow paths are driven explicitly through
   Wfqueue.Internal: we play the contending dequeuer/enqueuer roles
   by hand and check every protocol outcome the paper describes. *)

module W = Wfq.Wfqueue
module I = W.Internal

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Slow-path enqueue                                                  *)

let test_enq_slow_after_poisoned_cell () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  (* a contending dequeuer tops the cell the fast path acquired *)
  let i = I.faa_tail q in
  let c = I.cell_of q h i in
  check Alcotest.bool "poison" true (I.poison_cell c);
  I.enq_slow q h 42 i;
  check Alcotest.(option int) "value lands elsewhere" (Some 42) (W.dequeue q h);
  check Alcotest.(option int) "nothing extra" None (W.dequeue q h)

let test_enq_slow_claims_one_cell_only () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  let i = I.faa_tail q in
  let c = I.cell_of q h i in
  ignore (I.poison_cell c);
  I.enq_slow q h 7 i;
  (match I.enq_request_claimed_cell h with
  | Some cell -> check Alcotest.bool "claimed beyond request id" true (cell > i)
  | None -> Alcotest.fail "request still pending after enq_slow");
  (* exactly one copy of the value must be dequeued *)
  check Alcotest.(option int) "one copy" (Some 7) (W.dequeue q h);
  check Alcotest.(option int) "only one" None (W.dequeue q h)

let test_enq_slow_survives_many_poisoned_cells () =
  let q = W.create ~patience:0 ~segment_shift:3 () in
  let h = W.register q in
  (* poison a long run of cells, crossing segments *)
  let first = I.faa_tail q in
  ignore (I.poison_cell (I.cell_of q h first));
  for _ = 1 to 40 do
    let i = I.faa_tail q in
    ignore (I.poison_cell (I.cell_of q h i))
  done;
  I.enq_slow q h 99 first;
  check Alcotest.(option int) "value survives" (Some 99) (W.dequeue q h)

let test_tail_index_advances_past_claimed () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  let i = I.faa_tail q in
  ignore (I.poison_cell (I.cell_of q h i));
  I.enq_slow q h 5 i;
  (match I.enq_request_claimed_cell h with
  | Some cell ->
    check Alcotest.bool "T > claimed cell (Invariant 4)" true (I.tail_index q > cell)
  | None -> Alcotest.fail "not claimed")

(* ------------------------------------------------------------------ *)
(* Helping enqueues (help_enq)                                        *)

let test_helper_completes_peer_enqueue () =
  let q = W.create ~patience:0 () in
  let h1 = W.register q in
  let h2 = W.register q in
  (* h2 has a pending published request after a failed fast path *)
  let i = I.faa_tail q in
  ignore (I.poison_cell (I.cell_of q h2 i));
  I.publish_enq_request h2 31 i;
  check Alcotest.bool "pending" true (I.enq_request_pending h2);
  (* h1 dequeues; its help_enq must complete h2's request and the
     helper itself consumes the value (footnote 3 of the paper) *)
  check Alcotest.(option int) "helper gets helped value" (Some 31) (W.dequeue q h1);
  check Alcotest.bool "request completed by helper" false (I.enq_request_pending h2)

let test_help_enq_empty_semantics () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  (* cell 0 with T = 0: poisoning by help_enq itself, then T <= i
     means EMPTY *)
  let i = I.faa_head q in
  let c = I.cell_of q h i in
  check Alcotest.bool "EMPTY when T <= i" true (I.help_enq q h c i = `Empty)

let test_help_enq_top_when_enqueues_behind () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  (* bump T twice without filling cells: the cell is dead but the
     queue is not provably empty -> Top, not Empty *)
  let i0 = I.faa_tail q in
  ignore (I.faa_tail q);
  let c = I.cell_of q h i0 in
  ignore (I.poison_cell c);
  (* T = 2 > i0 = 0, no request published anywhere *)
  check Alcotest.bool "Top when T > i" true (I.help_enq q h c i0 = `Top)

let test_help_enq_returns_existing_value () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  W.enqueue q h 11;
  let c = I.cell_of q h 0 in
  check Alcotest.bool "value visible" true (I.help_enq q h c 0 = `Value 11);
  (* idempotent: helping again returns the same value *)
  check Alcotest.bool "stable" true (I.help_enq q h c 0 = `Value 11)

let test_help_enq_does_not_use_future_request () =
  (* Invariant 5: a cell i cannot be reserved for a request with
     id > i.  Publish a request with a large id and verify a helper
     refuses to complete it at a smaller cell. *)
  let q = W.create ~patience:0 () in
  let h1 = W.register q in
  let h2 = W.register q in
  (* h2's request pretends its failed fast path was at index 50 *)
  I.publish_enq_request h2 77 50;
  (* h1 visits cells 0 and 1: the first visit may only advance the
     helping peer; the second examines h2's request and must refuse
     to deposit at a cell below the request id *)
  let cells =
    List.init 2 (fun _ ->
        let i = I.faa_head q in
        let c = I.cell_of q h1 i in
        let r = I.help_enq q h1 c i in
        check Alcotest.bool "no deposit at cell < id" true (r = `Empty || r = `Top);
        c)
  in
  check Alcotest.bool "request untouched" true (I.enq_request_pending h2);
  List.iter
    (fun c -> check Alcotest.(option int) "cell has no value" None (I.cell_value c))
    cells

(* ------------------------------------------------------------------ *)
(* Slow-path dequeue                                                  *)

let test_deq_slow_skips_claimed_cell () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  W.enqueue q h 1;
  W.enqueue q h 2;
  W.enqueue q h 3;
  (* simulate a competitor stealing the fast-path claim at cell 0 *)
  let i = I.faa_head q in
  let c = I.cell_of q h i in
  check Alcotest.bool "steal claim" true (I.claim_cell_deq c);
  check Alcotest.(option int) "slow path finds next value" (Some 2) (I.deq_slow q h i);
  check Alcotest.(option int) "fifo resumes" (Some 3) (W.dequeue q h)

let test_deq_slow_empty () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  let i = I.faa_head q in
  let c = I.cell_of q h i in
  ignore (I.poison_cell c);
  ignore (I.claim_cell_deq c);
  check Alcotest.(option int) "EMPTY via slow path" None (I.deq_slow q h i);
  check Alcotest.bool "request closed" false (I.deq_request_pending h)

let test_deq_slow_head_index_advanced () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  W.enqueue q h 9;
  let i = I.faa_head q in
  ignore (I.claim_cell_deq (I.cell_of q h i));
  ignore (I.deq_slow q h i);
  check Alcotest.bool "H advanced past result (Invariant 8)" true (I.head_index q > i)

let test_help_deq_completes_peer () =
  let q = W.create ~patience:0 () in
  let h1 = W.register q in
  let h2 = W.register q in
  W.enqueue q h1 70;
  (* h2 fails its fast path (claim stolen) and publishes a request *)
  let i = I.faa_head q in
  ignore (I.claim_cell_deq (I.cell_of q h2 i));
  I.publish_deq_request h2 i;
  check Alcotest.bool "pending" true (I.deq_request_pending h2);
  (* h1 helps: the request must complete *)
  I.help_deq q ~helper:h1 ~helpee:h2;
  check Alcotest.bool "completed" false (I.deq_request_pending h2);
  (* h2 reads its own result: the value stolen at cell i is gone, so
     the result is the next available value, 70 at cell... cell i held
     70?  The claim steal happened at the cell with 70, so the result
     must be EMPTY or a later value; reconstruct: only one value was
     enqueued and its cell deq was stolen, so help_deq can only close
     the request with EMPTY(⊤) or... the stolen claim does not consume
     the value: c.deq = ⊤d means some dequeuer claimed it; the request
     must look at later cells and finds none -> result cell has ⊤. *)
  check Alcotest.(option int) "result is EMPTY" None (I.deq_request_result q h2)

let test_help_deq_no_request_is_noop () =
  let q = W.create ~patience:0 () in
  let h1 = W.register q in
  let h2 = W.register q in
  W.enqueue q h1 1;
  I.help_deq q ~helper:h1 ~helpee:h2;
  (* nothing consumed *)
  check Alcotest.(option int) "value intact" (Some 1) (W.dequeue q h1)

let test_stale_request_not_rehelped () =
  let q = W.create ~patience:0 () in
  let h1 = W.register q in
  let h2 = W.register q in
  (* h2 completes a slow dequeue, then enqueues values; helping the
     stale completed request must not consume anything *)
  W.enqueue q h1 1;
  let i = I.faa_head q in
  ignore (I.claim_cell_deq (I.cell_of q h2 i));
  I.publish_deq_request h2 i;
  I.help_deq q ~helper:h2 ~helpee:h2;
  check Alcotest.bool "request done" false (I.deq_request_pending h2);
  W.enqueue q h1 2;
  I.help_deq q ~helper:h1 ~helpee:h2;
  check Alcotest.(option int) "2 still there" (Some 2) (W.dequeue q h1);
  check Alcotest.(option int) "then empty" None (W.dequeue q h1)

(* ------------------------------------------------------------------ *)
(* End-to-end slow-path statistics                                    *)

let test_stats_count_slow_paths () =
  let q = W.create ~patience:0 () in
  let h = W.register q in
  let i = I.faa_tail q in
  ignore (I.poison_cell (I.cell_of q h i));
  I.enq_slow q h 3 i;
  (* enq_slow through Internal does not bump counters (the public
     wrapper does); verify the public dequeue counts the fast path *)
  ignore (W.dequeue q h);
  let s = W.stats q in
  check Alcotest.bool "dequeues counted" true (Wfq.Op_stats.total_dequeues s >= 1)

let () =
  Alcotest.run "wfqueue_slowpath"
    [
      ( "enq_slow",
        [
          Alcotest.test_case "poisoned cell" `Quick test_enq_slow_after_poisoned_cell;
          Alcotest.test_case "claims once" `Quick test_enq_slow_claims_one_cell_only;
          Alcotest.test_case "many poisoned cells" `Quick test_enq_slow_survives_many_poisoned_cells;
          Alcotest.test_case "Invariant 4 (T past claim)" `Quick test_tail_index_advances_past_claimed;
        ] );
      ( "help_enq",
        [
          Alcotest.test_case "helper completes peer" `Quick test_helper_completes_peer_enqueue;
          Alcotest.test_case "EMPTY semantics" `Quick test_help_enq_empty_semantics;
          Alcotest.test_case "Top when T ahead" `Quick test_help_enq_top_when_enqueues_behind;
          Alcotest.test_case "returns existing value" `Quick test_help_enq_returns_existing_value;
          Alcotest.test_case "Invariant 5 (no future req)" `Quick
            test_help_enq_does_not_use_future_request;
        ] );
      ( "deq_slow",
        [
          Alcotest.test_case "skips claimed cell" `Quick test_deq_slow_skips_claimed_cell;
          Alcotest.test_case "EMPTY" `Quick test_deq_slow_empty;
          Alcotest.test_case "Invariant 8 (H past result)" `Quick test_deq_slow_head_index_advanced;
          Alcotest.test_case "help_deq completes peer" `Quick test_help_deq_completes_peer;
          Alcotest.test_case "help_deq noop" `Quick test_help_deq_no_request_is_noop;
          Alcotest.test_case "stale request" `Quick test_stale_request_not_rehelped;
        ] );
      ("stats", [ Alcotest.test_case "slow path stats" `Quick test_stats_count_slow_paths ]);
    ]
