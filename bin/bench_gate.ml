(* The CI bench regression gate (logic in Harness.Gate; this is only
   argument parsing, file IO and exit codes):

     bench_gate --baseline BENCH_pr9.json --current BENCH_smoke.json

   (The baseline file advances with each PR that commits a new one —
   the workflow's gate step names the current file; both verdict lines
   below echo the resolved path so a stale baseline is visible in the
   log even when the gate passes.)

   Exit 0: every check passed.
   Exit 1: at least one throughput, slow-path-rate or alloc/op check failed.
   Exit 2: a document was missing/unreadable/structurally unusable —
           deliberately distinct from 1 so CI logs distinguish "the
           queue got slower" from "the harness broke". *)

open Cmdliner

let path_arg name doc =
  Arg.(required & opt (some string) None & info [ name ] ~docv:"PATH" ~doc)

let baseline_arg = path_arg "baseline" "Committed baseline JSON (bench/main.exe --json)."
let current_arg = path_arg "current" "Freshly measured JSON to check against the baseline."

let noise_mult_arg =
  let doc = "Failure threshold in baseline noise bands below the baseline mean." in
  Arg.(value & opt float Harness.Gate.default_noise_mult & info [ "noise-mult" ] ~docv:"X" ~doc)

let rel_floor_arg =
  let doc = "Minimum noise band as a fraction of the baseline mean." in
  Arg.(value & opt float Harness.Gate.default_rel_floor & info [ "rel-floor" ] ~docv:"X" ~doc)

let max_slow_rate_arg =
  let doc = "Maximum acceptable wf slow-path rate in the current telemetry block." in
  Arg.(
    value
    & opt float Harness.Gate.default_max_slow_rate
    & info [ "max-slow-rate" ] ~docv:"RATE" ~doc)

let patience_arg =
  let doc = "Patience value whose telemetry row carries the slow-path-rate check." in
  Arg.(
    value
    & opt int Harness.Gate.default_slow_rate_patience
    & info [ "patience" ] ~docv:"N" ~doc)

let alloc_ceiling_arg =
  let doc =
    "Absolute allocations-per-op allowance (minor words) for rows whose baseline is \
     (near) zero."
  in
  Arg.(
    value
    & opt float Harness.Gate.default_alloc_ceiling
    & info [ "alloc-ceiling" ] ~docv:"WORDS" ~doc)

let alloc_margin_arg =
  let doc = "Maximum allocations-per-op drift (minor words) over the baseline row." in
  Arg.(
    value
    & opt float Harness.Gate.default_alloc_margin
    & info [ "alloc-margin" ] ~docv:"WORDS" ~doc)

let run baseline_path current_path noise_mult rel_floor max_slow_rate slow_rate_patience
    alloc_ceiling alloc_margin =
  let load what path =
    match Harness.Json.load ~path with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "bench_gate: cannot load %s %s: %s\n" what path msg;
      exit 2
  in
  let baseline = load "baseline" baseline_path in
  let current = load "current" current_path in
  match
    Harness.Gate.compare_docs ~noise_mult ~rel_floor ~max_slow_rate ~slow_rate_patience
      ~alloc_ceiling ~alloc_margin ~baseline ~current ()
  with
  | Error msg ->
    Printf.eprintf "bench_gate: %s\n" msg;
    exit 2
  | Ok checks ->
    Printf.printf "bench_gate: %s (noise band x%.1f, floor %.0f%%) vs %s\n" current_path
      noise_mult (rel_floor *. 100.0) baseline_path;
    Format.printf "%a@?" Harness.Gate.pp_checks checks;
    if Harness.Gate.passed checks then begin
      Printf.printf "bench_gate: PASS (baseline %s)\n" baseline_path;
      exit 0
    end
    else begin
      Printf.printf "bench_gate: FAIL (baseline %s)\n" baseline_path;
      exit 1
    end

let () =
  let info =
    Cmd.info "bench_gate"
      ~doc:
        "Fail CI when smoke-bench throughput, wait-freedom or allocations-per-op \
         regresses"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ baseline_arg $ current_arg $ noise_mult_arg $ rel_floor_arg
            $ max_slow_rate_arg $ patience_arg $ alloc_ceiling_arg $ alloc_margin_arg)))
