(* Command-line driver regenerating every table and figure of the
   paper's evaluation (see DESIGN.md §4 for the experiment index),
   plus the live storm drivers for the subsystems built on the queue.

     repro table1                    platform inventory
     repro fig2 --benchmark pairs    Figure 2 throughput sweep
     repro table2                    WF-0 execution-path breakdown
     repro ablation-*                design-choice ablations
     repro latency                   per-operation latency tails
     repro stats                     fast/slow-path telemetry
     repro inject                    fault-injection storm on the queue
     repro shard                     sharded-router batch storm
     repro bounded                   bounded-memory spike storm
     repro topology                  specialized-variant role storms
     repro sched                     task-scheduler fan-out/fan-in storm
     repro list | repro all          enumerate queues / run everything

   All benchmarks print fixed-width tables; --csv PATH additionally
   saves the rows.  An unknown subcommand exits with status 2. *)

open Cmdliner

let csv_arg =
  let doc = "Also write the table as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH" ~doc)

let quick_arg =
  let doc =
    "Quick methodology: 3 invocations of up to 5 iterations instead of the paper's 10x20, and a \
     smaller default operation budget."
  in
  Arg.(value & flag & info [ "quick" ] ~doc)

let threads_arg ~default =
  let doc = "Comma-separated list of thread counts." in
  Arg.(value & opt (list int) default & info [ "threads" ] ~docv:"N,N,..." ~doc)

let total_ops_arg =
  let doc = "Total operations per iteration (default: paper's 10^7; quick mode: 4x10^5)." in
  Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N" ~doc)

let save csv t = Option.iter (fun path -> Harness.Report.save_csv t ~path) csv

let table1_cmd =
  let run csv = save csv (Harness.Experiments.table1 ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Table 1: experimental platforms") Term.(const run $ csv_arg)

let bench_arg =
  let doc = "Benchmark: 'pairs' (enqueue-dequeue pairs) or 'half' (50%-enqueues)." in
  Arg.(value & opt string "pairs" & info [ "benchmark"; "b" ] ~docv:"KIND" ~doc)

let queues_arg =
  let doc =
    "Comma-separated queue names to run (default: the Figure 2 set). Known names: see \
     'repro list'."
  in
  Arg.(value & opt (some (list string)) None & info [ "queues" ] ~docv:"Q,Q,..." ~doc)

let fig2_cmd =
  let run csv quick threads total_ops bench queues =
    match Harness.Workload.kind_of_string bench with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok kind ->
      let queues =
        Option.map
          (List.map (fun n ->
               match Harness.Queues.find n with
               | Some f -> f
               | None ->
                 Printf.eprintf "unknown queue %S; try 'repro list'\n" n;
                 exit 2))
          queues
      in
      save csv (Harness.Experiments.figure2 ~quick ~threads ?queues ?total_ops kind)
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Figure 2: throughput of all queues across thread counts")
    Term.(
      const run $ csv_arg $ quick_arg
      $ threads_arg ~default:[ 1; 2; 4; 8; 16 ]
      $ total_ops_arg $ bench_arg $ queues_arg)

let table2_cmd =
  let run csv quick threads total_ops =
    save csv (Harness.Experiments.table2 ~quick ~threads ?total_ops ())
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Table 2: WF-0 execution-path breakdown under 50%-enqueues")
    Term.(const run $ csv_arg $ quick_arg $ threads_arg ~default:[ 4; 8; 16; 32 ] $ total_ops_arg)

let one_thread_arg =
  let doc = "Thread count for the ablation." in
  Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N" ~doc)

let ablation cmd_name doc f =
  let run csv quick threads total_ops = save csv (f ~quick ~threads ?total_ops ()) in
  Cmd.v (Cmd.info cmd_name ~doc) Term.(const run $ csv_arg $ quick_arg $ one_thread_arg $ total_ops_arg)

let ablation_patience_cmd =
  ablation "ablation-patience" "PATIENCE sweep (fast/slow-path cutover)"
    (fun ~quick ~threads ?total_ops () ->
      Harness.Experiments.ablation_patience ~quick ~threads ?total_ops ())

let ablation_segment_cmd =
  ablation "ablation-segment" "Segment size sweep (the paper's N)"
    (fun ~quick ~threads ?total_ops () ->
      Harness.Experiments.ablation_segment_size ~quick ~threads ?total_ops ())

let ablation_garbage_cmd =
  ablation "ablation-garbage" "MAX_GARBAGE cleanup-threshold sweep"
    (fun ~quick ~threads ?total_ops () ->
      Harness.Experiments.ablation_max_garbage ~quick ~threads ?total_ops ())

let ablation_reclaim_cmd =
  ablation "ablation-reclaim" "Reclamation on/off on the hot path"
    (fun ~quick ~threads ?total_ops () ->
      Harness.Experiments.ablation_reclamation ~quick ~threads ?total_ops ())

let latency_cmd =
  let run csv threads queues =
    let queues =
      Option.map
        (List.map (fun n ->
             match Harness.Queues.find n with
             | Some f -> f
             | None ->
               Printf.eprintf "unknown queue %S; try 'repro list'\n" n;
               exit 2))
        queues
    in
    save csv (Harness.Latency.experiment ?queues ~threads ())
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Per-operation latency tails (the wait-freedom predictability claim)")
    Term.(const run $ csv_arg $ one_thread_arg $ queues_arg)

let patience_list_arg =
  let doc = "Comma-separated patience values to sweep." in
  Arg.(
    value
    & opt (list int) Harness.Telemetry.default_patiences
    & info [ "patience" ] ~docv:"P,P,..." ~doc)

let json_arg =
  let doc = "Also write the telemetry rows as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let stats_cmd =
  let run threads total_ops bench patiences json =
    match Harness.Workload.kind_of_string bench with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok kind ->
      let total_ops = Option.value total_ops ~default:400_000 in
      Printf.printf
        "Wait-freedom telemetry: instrumented wf queue, %d threads, %s workload, %d ops/row\n"
        threads
        (Harness.Workload.kind_to_string kind)
        total_ops;
      Printf.printf "(slow/Mop = slow-path operations per million; the paper's §6 claim is\n";
      Printf.printf " that patience ~10 makes slow paths negligible)\n\n";
      let rows = Harness.Telemetry.stats_table ~kind ~patiences ~total_ops ~threads () in
      Format.printf "%a@." Harness.Telemetry.pp_table rows;
      Format.printf "Latency tails (timing overhead included; relative shape is the signal):@.";
      List.iter
        (fun (r : Harness.Telemetry.row) ->
          List.iter
            (fun cls ->
              let s = Obs.Op_latency.summarize r.result.latency cls in
              if s.Obs.Op_latency.samples > 0 then
                Format.printf
                  "  patience %-3d %-13s p50 %7.0fns  p90 %7.0fns  p99 %7.0fns  max %9.0fns@."
                  r.patience
                  (Obs.Op_latency.class_name cls)
                  s.p50_ns s.p90_ns s.p99_ns s.max_ns)
            Obs.Op_latency.classes)
        rows;
      (match List.rev rows with
      | last :: _ -> (
        match last.result.snapshot with
        | Some snap ->
          Format.printf "@.Snapshot of the last run (patience %d):@.%a@." last.patience
            Obs.Snapshot.pp snap
        | None -> ())
      | [] -> ());
      Option.iter
        (fun path ->
          Harness.Json.save (Harness.Telemetry.table_to_json rows) ~path;
          Printf.printf "Wrote %s\n" path)
        json
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Fast/slow-path telemetry table: slow-path rate, CAS failures, helping events and \
          latency tails of the instrumented wait-free queue across patience values")
    Term.(
      const run
      $ Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker domains.")
      $ total_ops_arg $ bench_arg $ patience_list_arg $ json_arg)

(* Live fault-injection storm on the Enabled-injector build: K victim
   domains park or die mid-protocol at seed-chosen injection points
   while the rest keep operating.  Wait-freedom means the survivors
   finish their full budgets regardless; the exit code asserts it. *)
let inject_cmd =
  let module Q = Wfq.Wfqueue_inject in
  let run threads victims seed ops park kill =
    if threads < 1 then begin
      prerr_endline "repro inject: need at least one domain";
      exit 2
    end;
    let victims =
      match victims with
      | Some k -> max 0 (min k threads)
      | None -> max 1 (threads / 2)
    in
    let q = Q.create () in
    let plan = Inject.Plan.make ~park ~lethal:kill ~seed:(Int64.of_int seed) () in
    Inject.reset_stats ();
    (* a park unit is 1us of wall-clock here: long enough to span many
       thousands of survivor operations, short enough to sweep points *)
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-6));
    let is_victim = Domain.DLS.new_key (fun () -> false) in
    Inject.install (fun p ->
        if Domain.DLS.get is_victim then Inject.Plan.decide plan p else Inject.Continue);
    Printf.printf "Fault-injection storm: %d domains (%d victims), %d enq/deq pairs each\n  plan: %s\n%!"
      threads victims ops (Inject.Plan.describe plan);
    let lat = Array.init threads (fun _ -> Obs.Op_latency.create ()) in
    let pairs_done = Array.make threads 0 in
    let outcome = Array.make threads "spawn failed" in
    let killed = Array.make threads false in
    let worker d () =
      if d < victims then Domain.DLS.set is_victim true;
      let h = Q.register q in
      (* retire on every exit path: a crashed victim's handle must not
         pin reclamation, and its pending request stays helpable *)
      Fun.protect ~finally:(fun () -> Q.retire q h) @@ fun () ->
      try
        for i = 0 to ops - 1 do
          let t0 = Primitives.Clock.now_ns () in
          Q.enqueue q h ((d * ops) + i);
          let t1 = Primitives.Clock.now_ns () in
          Obs.Op_latency.record lat.(d) Obs.Op_latency.Enqueue
            (Int64.to_float (Int64.sub t1 t0));
          let t2 = Primitives.Clock.now_ns () in
          let v = Q.dequeue q h in
          let t3 = Primitives.Clock.now_ns () in
          Obs.Op_latency.record lat.(d)
            (match v with
            | Some _ -> Obs.Op_latency.Dequeue
            | None -> Obs.Op_latency.Dequeue_empty)
            (Int64.to_float (Int64.sub t3 t2));
          pairs_done.(d) <- i + 1
        done;
        outcome.(d) <- "completed"
      with Inject.Killed p ->
        killed.(d) <- true;
        outcome.(d) <- "killed @ " ^ Inject.point_name p
    in
    let domains = List.init threads (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join domains;
    Inject.remove ();
    let rec drain n = match Q.pop q with Some _ -> drain (n + 1) | None -> n in
    let leftovers = drain 0 in
    let failures = ref 0 in
    Printf.printf "\n";
    Array.iteri
      (fun d n ->
        let role = if d < victims then "victim" else "survivor" in
        Printf.printf "  domain %2d  %-8s %-32s %7d/%d pairs\n" d role outcome.(d) n ops;
        if (not killed.(d)) && n < ops then incr failures)
      pairs_done;
    Printf.printf "  %d value(s) left queued after the storm (killed victims may strand <=1 each)\n"
      leftovers;
    Format.printf "@.Injected faults:@.%a" Inject.pp_stats ();
    let merged = Obs.Op_latency.create () in
    Array.iter (fun l -> Obs.Op_latency.merge_into ~into:merged l) lat;
    Format.printf "@.Latency tails across all domains (parked victims' stalls included):@.";
    List.iter
      (fun cls ->
        let s = Obs.Op_latency.summarize merged cls in
        if s.Obs.Op_latency.samples > 0 then
          Format.printf "  %-13s %9d ops  p50 %7.0fns  p90 %7.0fns  p99 %7.0fns  max %9.0fns@."
            (Obs.Op_latency.class_name cls)
            s.samples s.p50_ns s.p90_ns s.p99_ns s.max_ns)
      Obs.Op_latency.classes;
    Format.printf "@.Queue snapshot (helping visible under help_enq/help_deq):@.%a@."
      Obs.Snapshot.pp (Q.snapshot q);
    if !failures > 0 then begin
      Printf.printf "\nFAIL: %d unkilled domain(s) did not complete their budget — replay with --seed %d\n"
        !failures seed;
      exit 1
    end
    else Printf.printf "\nOK: every surviving domain completed its full budget.\n"
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Live fault-injection storm: stall (or with --kill, crash) victim domains at \
          seed-chosen protocol points and verify the survivors' wait-free completion")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N" ~doc:"Storm domains.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "victims" ] ~docv:"K"
              ~doc:"Domains subject to the fault plan (default: half, at least one).")
      $ Arg.(
          value
          & opt int 42
          & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed; a failure replays from it.")
      $ Arg.(
          value & opt int 20_000 & info [ "ops" ] ~docv:"N" ~doc:"Enqueue/dequeue pairs per domain.")
      $ Arg.(
          value
          & opt int 200
          & info [ "park" ] ~docv:"UNITS"
              ~doc:"Stall length in park units (one unit is 1us in this driver).")
      $ Arg.(
          value
          & flag
          & info [ "kill" ]
              ~doc:
                "Arm Die instead of Park: victims crash mid-protocol; survivors must still \
                 complete."))

(* N-shard k-batch storm on the fault-injectable router build: every
   domain exchanges k-value batches through the router (optionally
   bounded, optionally with victim domains parking or dying at
   seed-chosen protocol points, batch windows included), then the
   driver audits conservation — no value duplicated or invented, and
   no more values missing than the kills can account for (a batch
   crash strands at most one batch of values). *)
let shard_cmd =
  let module R = Shard.Storm in
  let run shards batch threads victims seed ops park bounded kill =
    if threads < 1 || shards < 1 || batch < 1 then begin
      prerr_endline "repro shard: need threads >= 1, --shards >= 1, --batch >= 1";
      exit 2
    end;
    let victims =
      match victims with
      | Some k -> max 0 (min k threads)
      | None -> if kill then max 1 (threads / 2) else 0
    in
    let t = R.create ~shards ?capacity:bounded ~rebalance_every:64 () in
    let plan = Inject.Plan.make ~park ~lethal:kill ~seed:(Int64.of_int seed) () in
    Inject.reset_stats ();
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-6));
    let is_victim = Domain.DLS.new_key (fun () -> false) in
    if victims > 0 then
      Inject.install (fun p ->
          if Domain.DLS.get is_victim then Inject.Plan.decide plan p else Inject.Continue);
    Printf.printf
      "Shard storm: %d shards, batch %d, %d domains (%d victims), %d values each%s\n  plan: %s\n%!"
      shards batch threads victims ops
      (match bounded with
      | Some c -> Printf.sprintf ", bounded at %d/shard" c
      | None -> "")
      (Inject.Plan.describe plan);
    let got = Array.init threads (fun _ -> ref []) in
    let venq = Array.make threads 0 in
    let outcome = Array.make threads "spawn failed" in
    let killed = Array.make threads false in
    let worker d () =
      if d < victims then Domain.DLS.set is_victim true;
      let h = R.register t in
      (* one reusable dequeue buffer per domain: the caller-buffer
         batch API keeps the storm's hot loop allocation-free (the
         tail batch, if shorter, reuses a prefix via a throwaway) *)
      let buf = Array.make batch (-1) in
      Fun.protect ~finally:(fun () -> R.retire t h) @@ fun () ->
      try
        let i = ref 0 in
        while !i < ops do
          let k = min batch (ops - !i) in
          R.enq_batch t h (Array.init k (fun j -> (d * ops) + !i + j));
          i := !i + k;
          venq.(d) <- !i;
          let out = if k = batch then buf else Array.make k (-1) in
          let n = R.deq_batch_into t h out ~default:(-1) in
          for j = 0 to n - 1 do
            got.(d) := out.(j) :: !(got.(d))
          done
        done;
        outcome.(d) <- "completed"
      with Inject.Killed p ->
        killed.(d) <- true;
        outcome.(d) <- "killed @ " ^ Inject.point_name p
    in
    let domains = List.init threads (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join domains;
    if victims > 0 then Inject.remove ();
    let drained = ref [] in
    let hd = R.register t in
    let rec drain () =
      match R.dequeue t hd with
      | Some v ->
        drained := v :: !drained;
        drain ()
      | None -> ()
    in
    drain ();
    R.retire t hd;
    let kills = (Inject.total_stats ()).Inject.kills in
    let failures = ref 0 in
    Printf.printf "\n";
    Array.iteri
      (fun d oc ->
        let role = if d < victims then "victim" else "survivor" in
        Printf.printf "  domain %2d  %-8s %-32s %7d/%d enqueued\n" d role oc venq.(d) ops;
        if (not killed.(d)) && venq.(d) < ops then incr failures)
      outcome;
    (* conservation audit over the full run *)
    let all =
      List.sort compare (!drained @ List.concat_map (fun r -> !r) (Array.to_list got))
    in
    let violations = ref [] in
    let rec dups = function
      | a :: (b :: _ as tl) ->
        if a = b then violations := Printf.sprintf "value %d dequeued twice" a :: !violations;
        dups tl
      | _ -> ()
    in
    dups all;
    (* a value is legitimate iff its owner enqueued it for sure, or it
       belongs to a killed victim's in-flight batch (helpers may have
       completed it) *)
    List.iter
      (fun v ->
        let d = v / ops and i = v mod ops in
        if d < 0 || d >= threads || (i >= venq.(d) && not (killed.(d) && i < venq.(d) + batch))
        then violations := Printf.sprintf "alien value %d" v :: !violations)
      all;
    let missing = ref 0 in
    let present = Hashtbl.create (List.length all) in
    List.iter (fun v -> Hashtbl.replace present v ()) all;
    Array.iteri
      (fun d n ->
        for i = 0 to n - 1 do
          if not (Hashtbl.mem present ((d * ops) + i)) then incr missing
        done)
      venq;
    (* Missing-value allowance: only kills that can interrupt a
       dequeue-side window strand values this audit counts — a kill
       inside an enqueue (fast/slow/batch/topology enqueue points)
       fires before the victim's [venq] advanced past the in-flight
       batch, so its values fall under the killed-victim alien
       allowance above, never under [missing].  Counting those kills
       here double-counted them: with bounded shards a producer can
       be refused ([Would_block] footprint-free rotation) and then
       killed inside the eventually admitted batch's
       [Enq_batch_after_faa] window, and the old [kills * batch]
       bound would quietly absorb a genuine dequeue-side stranding
       bug under that enqueue kill's allowance. *)
    let kills_at ps = List.fold_left (fun acc p -> acc + (Inject.stats p).Inject.kills) 0 ps in
    let enq_side_kills =
      kills_at
        (Inject.points_of_class Inject.Enqueue
        @ [ Inject.Enq_batch_after_faa; Inject.Topo_enq_pending ])
    in
    let strand_kills = kills - enq_side_kills in
    if !missing > strand_kills * batch then
      violations :=
        Printf.sprintf "%d values missing but only %d dequeue-side kills x batch %d" !missing
          strand_kills batch
        :: !violations;
    Printf.printf
      "  %d value(s) drained post-storm, %d missing (%d dequeue-side kills of %d x batch %d \
       allowed)\n"
      (List.length !drained) !missing strand_kills kills batch;
    Format.printf "@.Per-shard breakdown:@.%a@." R.pp_snapshot_table t;
    if victims > 0 then Format.printf "@.Injected faults:@.%a" Inject.pp_stats ();
    if !failures > 0 || !violations <> [] then begin
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) !violations;
      if !failures > 0 then
        Printf.printf "FAIL: %d unkilled domain(s) did not complete — replay with --seed %d\n"
          !failures seed;
      exit 1
    end
    else Printf.printf "\nOK: values conserved across %d shards (d-bounded reordering only).\n" shards
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Sharded-router storm: N shards exchanging k-value FAA batches across domains, with \
          optional bounded capacity and fault injection; verifies value conservation")
    Term.(
      const run
      $ Arg.(value & opt int 4 & info [ "shards" ] ~docv:"S" ~doc:"Router shards.")
      $ Arg.(value & opt int 4 & info [ "batch" ] ~docv:"K" ~doc:"Values per batch operation.")
      $ Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N" ~doc:"Storm domains.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "victims" ] ~docv:"K"
              ~doc:"Domains subject to the fault plan (default: half when --kill, else none).")
      $ Arg.(
          value
          & opt int 42
          & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed; a failure replays from it.")
      $ Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"N" ~doc:"Values enqueued per domain.")
      $ Arg.(
          value
          & opt int 200
          & info [ "park" ] ~docv:"UNITS"
              ~doc:"Stall length in park units (one unit is 1us in this driver).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "bounded" ] ~docv:"CAP"
              ~doc:"Bound each shard at $(docv) values (backpressure mode).")
      $ Arg.(
          value
          & flag
          & info [ "kill" ]
              ~doc:"Arm Die: victim domains crash mid-protocol (batch windows included)."))

(* Spike storm on a bounded-memory queue: many producers push through
   a few consumers with a hard segment cap, optionally with victim
   producers parking or dying at seed-chosen points (the freelist
   windows included).  The driver audits the bounded-mode contract:
   the allocation counter never passes the cap at any sampled instant
   (the budget makes it monotone, so end-of-run [allocated <= cap]
   certifies the whole run), live + pooled segments end within the
   cap, and values are conserved — no duplicate, no alien, and no
   more missing than the kills can strand (one in-flight value per
   killed producer). *)
let bounded_cmd =
  let module Q = Wfq.Wfqueue_inject in
  let module S = Baselines.Scq in
  let run queue producers consumers cap ops victims seed park kill =
    if producers < 1 || consumers < 1 then begin
      prerr_endline "repro bounded: need at least one producer and one consumer";
      exit 2
    end;
    if queue = "wf-bounded" && cap < 6 then begin
      prerr_endline "repro bounded: --cap must be >= 6 (max_garbage + 4 at the driver's settings)";
      exit 2
    end;
    let victims =
      match victims with
      | Some k -> max 0 (min k producers)
      | None -> if kill then max 1 (producers / 2) else 0
    in
    (* One spike driver over three queues so the EXPERIMENTS.md table
       comes from a single command.  Each build exposes: per-domain
       (enqueue, dequeue-or-minus-one, retire), a post-storm drain, a
       monotone allocation sample for the mid-run cap audit (0 when
       the build has no segments), and a footprint summary. *)
    let make_wf bounded =
      let q =
        if bounded then Q.create ~segment_cap:cap ~max_garbage:(max 2 (min 10 (cap - 4))) ()
        else Q.create ()
      in
      let register () =
        let h = Q.register q in
        ((fun v -> Q.enqueue q h v), (fun () -> Q.dequeue_or q h (-1)), fun () -> Q.retire q h)
      in
      let rec drain acc = match Q.pop q with Some v -> drain (v :: acc) | None -> acc in
      let footprint () =
        Printf.sprintf "%d segments allocated, %d live + %d pooled%s, %d cap-pressure waits"
          (Q.allocated_segments q) (Q.live_segments q) (Q.pooled_segments q)
          (if bounded then Printf.sprintf " (cap %d)" cap else "")
          (Q.cap_hits q)
      in
      let cap_violation () =
        if
          bounded
          && (Q.allocated_segments q > cap || Q.live_segments q + Q.pooled_segments q > cap)
        then
          Some
            (Printf.sprintf "cap %d exceeded (%d allocated, %d live + %d pooled)" cap
               (Q.allocated_segments q) (Q.live_segments q) (Q.pooled_segments q))
        else None
      in
      ( register,
        (fun () -> drain []),
        (fun () -> if bounded then Q.allocated_segments q else 0),
        footprint,
        cap_violation )
    in
    let make_scq () =
      (* ring capacity fixed at 2^12 values: bounded by construction,
         in value slots rather than segments *)
      let q = S.create ~order:12 () in
      let register () =
        let h = S.register q in
        ((fun v -> S.enqueue q h v), (fun () -> S.dequeue_or q h (-1)), fun () -> ())
      in
      let drain () =
        let h = S.register q in
        let rec go acc = match S.dequeue q h with Some v -> go (v :: acc) | None -> acc in
        go []
      in
      let footprint () =
        Printf.sprintf "fixed ring of %d value slots (no segments)" (S.capacity q)
      in
      ( register,
        drain,
        (fun () -> 0),
        footprint,
        fun () -> None )
    in
    let register, drain, sample_alloc, footprint, cap_violation =
      match queue with
      | "wf-bounded" -> make_wf true
      | "wf" -> make_wf false
      | "scq" -> make_scq ()
      | other ->
        Printf.eprintf "repro bounded: unknown --queue %s (wf-bounded | wf | scq)\n" other;
        exit 2
    in
    let plan = Inject.Plan.make ~park ~lethal:kill ~seed:(Int64.of_int seed) () in
    Inject.reset_stats ();
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-6));
    let is_victim = Domain.DLS.new_key (fun () -> false) in
    if victims > 0 then
      Inject.install (fun p ->
          if Domain.DLS.get is_victim then Inject.Plan.decide plan p else Inject.Continue);
    Printf.printf
      "Bounded spike storm [%s]: %d producers -> %d consumers, %d values each (%d victims)\n\
      \  plan: %s\n\
       %!"
      queue producers consumers ops victims (Inject.Plan.describe plan);
    let venq = Array.make producers 0 in
    let killed = Array.make producers false in
    let outcome = Array.make producers "spawn failed" in
    let producers_done = Atomic.make 0 in
    let cap_breach = Atomic.make (-1) in
    let producer d () =
      if d < victims then Domain.DLS.set is_victim true;
      let enq, _deq, retire = register () in
      Fun.protect ~finally:retire @@ fun () ->
      (try
         for i = 0 to ops - 1 do
           enq ((d * ops) + i);
           venq.(d) <- i + 1;
           (* [allocated_segments] is monotone (budget reservations are
              never handed back on recycle), so any sample past the cap
              is a hard-cap violation, not a race *)
           let a = sample_alloc () in
           if a > cap then Atomic.set cap_breach a
         done;
         outcome.(d) <- "completed"
       with Inject.Killed p ->
         killed.(d) <- true;
         outcome.(d) <- "killed @ " ^ Inject.point_name p);
      ignore (Atomic.fetch_and_add producers_done 1)
    in
    let got = Array.init consumers (fun _ -> ref []) in
    let consumer c () =
      let _enq, deq, retire = register () in
      Fun.protect ~finally:retire @@ fun () ->
      let idle = ref 0 in
      while Atomic.get producers_done < producers || !idle < 100 do
        match deq () with
        | -1 ->
          incr idle;
          Domain.cpu_relax ()
        | v ->
          got.(c) := v :: !(got.(c));
          idle := 0
      done
    in
    let t0 = Primitives.Clock.now_ns () in
    let domains =
      List.init producers (fun d -> Domain.spawn (producer d))
      @ List.init consumers (fun c -> Domain.spawn (consumer c))
    in
    List.iter Domain.join domains;
    let elapsed_s = Int64.to_float (Int64.sub (Primitives.Clock.now_ns ()) t0) /. 1e9 in
    Inject.remove ();
    let leftovers = drain () in
    let seen = Array.make (producers * ops) 0 in
    let mark v =
      if v < 0 || v >= producers * ops then begin
        Printf.printf "\nFAIL: alien value %d surfaced -- replay with --seed %d\n" v seed;
        exit 1
      end;
      seen.(v) <- seen.(v) + 1
    in
    Array.iter (fun l -> List.iter mark !l) got;
    List.iter mark leftovers;
    let kills = (Inject.total_stats ()).Inject.kills in
    let missing = ref 0 in
    let dups = ref 0 in
    for d = 0 to producers - 1 do
      for i = 0 to venq.(d) - 1 do
        let n = seen.((d * ops) + i) in
        if n = 0 then incr missing;
        if n > 1 then incr dups
      done
    done;
    let consumed = Array.fold_left (fun a l -> a + List.length !l) 0 got in
    Printf.printf "\n";
    Array.iteri
      (fun d n ->
        let role = if d < victims then "victim" else "producer" in
        Printf.printf "  domain %2d  %-8s %-32s %7d/%d enqueued\n" d role outcome.(d) n ops)
      venq;
    let total_enq = Array.fold_left ( + ) 0 venq in
    Printf.printf "  %d consumed + %d drained in %.2fs (%.3f Mops enq+deq); %s\n" consumed
      (List.length leftovers) elapsed_s
      (float_of_int (total_enq + consumed) /. elapsed_s /. 1e6)
      (footprint ());
    Format.printf "@.Injected faults:@.%a" Inject.pp_stats ();
    let breach = Atomic.get cap_breach in
    if breach >= 0 then begin
      Printf.printf "\nFAIL: %d segments allocated past cap %d -- replay with --seed %d\n" breach
        cap seed;
      exit 1
    end;
    (match cap_violation () with
    | Some msg ->
      Printf.printf "\nFAIL: %s -- replay with --seed %d\n" msg seed;
      exit 1
    | None -> ());
    if !dups > 0 then begin
      Printf.printf "\nFAIL: %d value(s) dequeued twice -- replay with --seed %d\n" !dups seed;
      exit 1
    end;
    if !missing > kills then begin
      Printf.printf "\nFAIL: %d value(s) missing but only %d kill(s) -- replay with --seed %d\n"
        !missing kills seed;
      exit 1
    end;
    Printf.printf "\nOK [%s]: spike survived (%d kills, %d missing <= kills); values conserved.\n"
      queue kills !missing
  in
  Cmd.v
    (Cmd.info "bounded"
       ~doc:
         "Bounded-memory spike storm: producers >> consumers with a hard segment cap, with \
          optional fault injection (wf builds); audits the cap and value conservation.  --queue \
          wf-bounded (capped segments), wf (unbounded control), scq (fixed ring)")
    Term.(
      const run
      $ Arg.(
          value
          & opt string "wf-bounded"
          & info [ "queue" ] ~docv:"Q" ~doc:"Queue under storm: wf-bounded, wf, or scq.")
      $ Arg.(value & opt int 6 & info [ "producers" ] ~docv:"N" ~doc:"Producer domains.")
      $ Arg.(value & opt int 2 & info [ "consumers" ] ~docv:"N" ~doc:"Consumer domains.")
      $ Arg.(
          value
          & opt int 12
          & info [ "cap" ] ~docv:"C" ~doc:"Hard segment cap (wf-bounded only).")
      $ Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc:"Values per producer.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "victims" ] ~docv:"K"
              ~doc:"Producer domains subject to the fault plan (default: half when --kill).")
      $ Arg.(
          value
          & opt int 42
          & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed; a failure replays from it.")
      $ Arg.(
          value
          & opt int 200
          & info [ "park" ] ~docv:"UNITS"
              ~doc:"Stall length in park units (one unit is 1us in this driver).")
      $ Arg.(
          value
          & flag
          & info [ "kill" ] ~doc:"Arm Die: victim producers crash mid-protocol."))

(* Role-split storm on the injectable topology variants.  Producers
   and consumers are separate domains laid out to the variant's
   contract (spsc 1p/1c, mpsc (N-1)p/1c, spmc 1p/(N-1)c; adaptive runs
   all-pairs so every domain's first dequeue forces the degrade
   switches).  Victims park or die at the Topology-class injection
   points; afterwards the driver drains and audits conservation — no
   duplicate, no alien value, and no more missing than the kills can
   strand (one in-flight value per kill). *)
type topo_ops = { tenq : int -> unit; tdeq_or : int -> int; tfin : unit -> unit }

let topology_cmd =
  let run variant threads victims seed ops park kill =
    if threads < 2 then begin
      prerr_endline "repro topology: need at least two domains (one per role)";
      exit 2
    end;
    (* producer/consumer split per variant; adaptive = all-pairs *)
    let np, nc, pairs =
      match variant with
      | "spsc" -> (1, 1, false)
      | "mpsc" -> (threads - 1, 1, false)
      | "spmc" -> (1, threads - 1, false)
      | "adaptive" -> (threads, 0, true)
      | v ->
        Printf.eprintf "repro topology: unknown variant %S (spsc|mpsc|spmc|adaptive)\n" v;
        exit 2
    in
    let threads = np + nc in
    let reg, pp_state =
      match variant with
      | "spsc" ->
        let module Q = Topology.Spsc_inject in
        let q = Q.create () in
        ( (fun () ->
            let h = Q.register q in
            {
              tenq = (fun v -> Q.enqueue q h v);
              tdeq_or = (fun d -> Q.dequeue_or q h d);
              tfin = (fun () -> Q.retire q h);
            }),
          fun fmt -> Obs.Snapshot.pp fmt (Q.snapshot q) )
      | "mpsc" ->
        let module Q = Topology.Mpsc_inject in
        let q = Q.create () in
        ( (fun () ->
            let h = Q.register q in
            {
              tenq = (fun v -> Q.enqueue q h v);
              tdeq_or = (fun d -> Q.dequeue_or q h d);
              tfin = (fun () -> Q.retire q h);
            }),
          fun fmt -> Obs.Snapshot.pp fmt (Q.snapshot q) )
      | "spmc" ->
        let module Q = Topology.Spmc_inject in
        let q = Q.create () in
        ( (fun () ->
            let h = Q.register q in
            {
              tenq = (fun v -> Q.enqueue q h v);
              tdeq_or = (fun d -> Q.dequeue_or q h d);
              tfin = (fun () -> Q.retire q h);
            }),
          fun fmt -> Obs.Snapshot.pp fmt (Q.snapshot q) )
      | _ ->
        let module Q = Topology.Adaptive_inject in
        let q = Q.create () in
        ( (fun () ->
            let h = Q.register q in
            {
              tenq = (fun v -> Q.enqueue q h v);
              tdeq_or = (fun d -> Q.dequeue_or q h d);
              tfin = (fun () -> Q.retire q h);
            }),
          fun fmt ->
            Format.fprintf fmt "adaptive backend: %s after %d switch(es)@.%a" (Q.mode q)
              (Q.switches q) Obs.Snapshot.pp (Q.snapshot q) )
    in
    let victims =
      match victims with
      | Some k -> max 0 (min k threads)
      | None -> if kill then max 1 (threads / 2) else 0
    in
    let plan = Inject.Plan.make ~park ~lethal:kill ~seed:(Int64.of_int seed) () in
    Inject.reset_stats ();
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-6));
    let is_victim = Domain.DLS.new_key (fun () -> false) in
    if victims > 0 then
      Inject.install (fun p ->
          if Domain.DLS.get is_victim then Inject.Plan.decide plan p else Inject.Continue);
    Printf.printf
      "Topology storm: %s, %d producer(s) + %d consumer(s)%s (%d victims), %d values/producer\n\
      \  plan: %s\n\
       %!"
      variant np nc
      (if pairs then " (all-pairs)" else "")
      victims ops (Inject.Plan.describe plan);
    let got = Array.init threads (fun _ -> ref []) in
    let venq = Array.make threads 0 in
    let outcome = Array.make threads "spawn failed" in
    let killed = Array.make threads false in
    let producers_live = Atomic.make np in
    let worker d () =
      if d < victims then Domain.DLS.set is_victim true;
      let o = reg () in
      let is_producer = d < np in
      Fun.protect ~finally:(fun () ->
          if is_producer then Atomic.decr producers_live;
          o.tfin ())
      @@ fun () ->
      try
        if pairs then
          for i = 0 to ops - 1 do
            o.tenq ((d * ops) + i);
            venq.(d) <- i + 1;
            let v = o.tdeq_or min_int in
            if v <> min_int then got.(d) := v :: !(got.(d))
          done
        else if is_producer then
          for i = 0 to ops - 1 do
            o.tenq ((d * ops) + i);
            venq.(d) <- i + 1
          done
        else begin
          (* consume until the producers are gone and the queue reads
             empty; wait-freedom bounds each probe, so only a genuinely
             empty queue parks us on cpu_relax *)
          let live = ref true in
          while !live do
            let v = o.tdeq_or min_int in
            if v <> min_int then got.(d) := v :: !(got.(d))
            else if Atomic.get producers_live = 0 then live := false
            else Domain.cpu_relax ()
          done
        end;
        outcome.(d) <- "completed"
      with Inject.Killed p ->
        killed.(d) <- true;
        outcome.(d) <- "killed @ " ^ Inject.point_name p
    in
    let domains = List.init threads (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join domains;
    if victims > 0 then Inject.remove ();
    (* post-storm drain with a fresh handle: every retired consumer
       released its role seat, so the drain can claim it *)
    let o = reg () in
    let drained = ref [] in
    let continue_ = ref true in
    while !continue_ do
      let v = o.tdeq_or min_int in
      if v <> min_int then drained := v :: !drained else continue_ := false
    done;
    o.tfin ();
    let kills = (Inject.total_stats ()).Inject.kills in
    let failures = ref 0 in
    Printf.printf "\n";
    Array.iteri
      (fun d oc ->
        let role =
          if pairs then "pairs"
          else if d < np then "producer"
          else "consumer"
        in
        let victim = if d < victims then " victim " else " "
        in
        Printf.printf "  domain %2d %-9s%s%-32s %7d enq, %7d deq\n" d role victim oc venq.(d)
          (List.length !(got.(d)));
        if (not killed.(d)) && (d < np || pairs) && venq.(d) < ops then incr failures)
      outcome;
    (* conservation audit, batch = 1: a kill strands at most one value *)
    let all =
      List.sort compare (!drained @ List.concat_map (fun r -> !r) (Array.to_list got))
    in
    let violations = ref [] in
    let rec dups = function
      | a :: (b :: _ as tl) ->
        if a = b then violations := Printf.sprintf "value %d dequeued twice" a :: !violations;
        dups tl
      | _ -> ()
    in
    dups all;
    List.iter
      (fun v ->
        let d = v / ops and i = v mod ops in
        if d < 0 || d >= threads || (i >= venq.(d) && not (killed.(d) && i < venq.(d) + 1)) then
          violations := Printf.sprintf "alien value %d" v :: !violations)
      all;
    let missing = ref 0 in
    let present = Hashtbl.create (List.length all + 1) in
    List.iter (fun v -> Hashtbl.replace present v ()) all;
    Array.iteri
      (fun d n ->
        for i = 0 to n - 1 do
          if not (Hashtbl.mem present ((d * ops) + i)) then incr missing
        done)
      venq;
    if !missing > kills then
      violations :=
        Printf.sprintf "%d values missing but only %d kill(s)" !missing kills :: !violations;
    Printf.printf "  %d value(s) drained post-storm, %d missing (%d kill(s) allowed)\n"
      (List.length !drained) !missing kills;
    Format.printf "@.%t@." pp_state;
    if victims > 0 then Format.printf "@.Injected faults:@.%a" Inject.pp_stats ();
    if !failures > 0 || !violations <> [] then begin
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) !violations;
      if !failures > 0 then
        Printf.printf "FAIL: %d unkilled domain(s) did not complete — replay with --seed %d\n"
          !failures seed;
      exit 1
    end
    else
      Printf.printf "\nOK: values conserved under the %s topology (%d kill(s) absorbed).\n" variant
        kills
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:
         "Role-split storm on a specialized topology variant (or the adaptive queue): \
          producers and consumers laid out per the variant's contract, optional fault \
          injection at the Topology-class protocol points, conservation audited")
    Term.(
      const run
      $ Arg.(
          value
          & opt string "adaptive"
          & info [ "variant" ] ~docv:"V" ~doc:"Variant: spsc, mpsc, spmc or adaptive.")
      $ Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Storm domains (>= 2).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "victims" ] ~docv:"K"
              ~doc:"Domains subject to the fault plan (default: half when --kill, else none).")
      $ Arg.(
          value
          & opt int 42
          & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed; a failure replays from it.")
      $ Arg.(
          value & opt int 20_000 & info [ "ops" ] ~docv:"N" ~doc:"Values enqueued per producer.")
      $ Arg.(
          value
          & opt int 200
          & info [ "park" ] ~docv:"UNITS"
              ~doc:"Stall length in park units (one unit is 1us in this driver).")
      $ Arg.(
          value
          & flag
          & info [ "kill" ] ~doc:"Arm Die: victim domains crash mid-protocol."))

(* Fan-out/fan-in storm on the effects-based task scheduler
   (probe+inject build): R root tasks each spawn K subtasks and await
   them all, while — under --park / --kill — the worker domains stall
   or die at seed-chosen protocol points, the scheduler's own windows
   (steal claim, park, promise-resolve commit) included.  The driver
   then audits the scheduler's headline guarantee: after [shutdown],
   {e every} promise is resolved — a completed root carries the exact
   fan-in sum, an aborted or death-resolved root carries an error, and
   none is left pending.  Any stranded promise (or wrong sum) exits 1
   with the replay seed. *)
let sched_cmd =
  let module S = Sched.Scheduler_inject in
  let run workers tasks subtasks seed park kill cap =
    if workers < 1 || tasks < 1 || subtasks < 0 then begin
      prerr_endline "repro sched: need --workers >= 1, --tasks >= 1, --subtasks >= 0";
      exit 2
    end;
    let plan = Inject.Plan.make ~park ~lethal:kill ~seed:(Int64.of_int seed) () in
    Inject.reset_stats ();
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-6));
    let faults = kill || park > 0 in
    (* victims are the worker domains: the driver (and its blocking
       submits) stays shielded so the storm tests the scheduler's
       recovery, not the driver's *)
    let driver = Domain.self () in
    if faults then
      Inject.install (fun p ->
          if Domain.self () = driver then Inject.Continue else Inject.Plan.decide plan p);
    Printf.printf
      "Scheduler storm: %d workers, %d roots x %d subtasks%s\n  plan: %s\n%!"
      workers tasks subtasks
      (match cap with
      | Some c -> Printf.sprintf ", injector capped at %d segments" c
      | None -> "")
      (if faults then Inject.Plan.describe plan else "none (clean throughput run)");
    let sched = S.create ~workers ?injector_cap:cap () in
    let t0 = Primitives.Clock.now_ns () in
    let roots =
      Array.init tasks (fun i ->
          S.async sched (fun () ->
              let kids =
                List.init subtasks (fun j -> S.async sched (fun () -> i + j))
              in
              List.fold_left (fun acc k -> acc + S.Promise.await k) 0 kids))
    in
    if kill then begin
      (* lethal mode: workers may die mid-protocol, so settle briefly
         and let shutdown's sweep + promise backstop finish the job
         rather than blocking on results that may need the backstop *)
      let deadline = Int64.add t0 2_000_000_000L in
      let rec settle () =
        if
          Array.exists (fun p -> not (S.Promise.is_resolved p)) roots
          && Primitives.Clock.now_ns () < deadline
        then begin
          Unix.sleepf 0.001;
          settle ()
        end
      in
      settle ()
    end
    else Array.iter (fun p -> ignore (S.Promise.result p)) roots;
    S.shutdown sched;
    let elapsed_s = Int64.to_float (Int64.sub (Primitives.Clock.now_ns ()) t0) /. 1e9 in
    if faults then Inject.remove ();
    let expected i = (subtasks * i) + (subtasks * (subtasks - 1) / 2) in
    let stranded = ref 0 and completed = ref 0 and errored = ref 0 and wrong = ref 0 in
    Array.iteri
      (fun i p ->
        match S.Promise.poll p with
        | None ->
          incr stranded;
          if !stranded <= 5 then Printf.printf "  STRANDED: root %d still pending\n" i
        | Some (Ok s) ->
          if s = expected i then incr completed
          else begin
            incr wrong;
            if !wrong <= 5 then
              Printf.printf "  WRONG SUM: root %d got %d, expected %d\n" i s (expected i)
          end
        | Some (Error _) -> incr errored)
      roots;
    let total = tasks * (1 + subtasks) in
    Printf.printf "\n  %d roots: %d completed, %d errored, %d wrong, %d stranded\n" tasks
      !completed !errored !wrong !stranded;
    Printf.printf "  %d tasks through the scheduler in %.3fs (%.3f Mtasks/s)\n" total elapsed_s
      (float_of_int total /. elapsed_s /. 1e6);
    List.iter
      (fun (o : S.pool_obs) ->
        Printf.printf
          "  pool %-8s %d workers (%d live, %d died)  %d spawned, %d completed, %d aborted, %d \
           exceptions, %d steals\n"
          o.S.name o.workers o.live_workers o.worker_deaths o.tasks_spawned o.tasks_completed
          o.aborted_promises o.task_exceptions o.steals)
      (S.obs sched);
    if faults then Format.printf "@.Injected faults:@.%a" Inject.pp_stats ();
    if !stranded > 0 || !wrong > 0 then begin
      Printf.printf
        "\nFAIL: %d stranded promise(s), %d wrong sum(s) — replay with --seed %d\n"
        !stranded !wrong seed;
      exit 1
    end
    else if (not kill) && !errored > 0 then begin
      Printf.printf "\nFAIL: %d root(s) errored without --kill — replay with --seed %d\n"
        !errored seed;
      exit 1
    end
    else
      Printf.printf
        "\nOK: every promise resolved%s.\n"
        (if kill then " (worker deaths absorbed, nothing stranded)" else ", all sums exact")
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "Task-scheduler fan-out/fan-in storm: root tasks spawning and awaiting subtasks over \
          the wait-free injector and work-stealing deques, with optional fault injection at the \
          scheduler's own protocol points; verifies that no promise is stranded")
    Term.(
      const run
      $ Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
      $ Arg.(value & opt int 10_000 & info [ "tasks" ] ~docv:"R" ~doc:"Root tasks.")
      $ Arg.(
          value & opt int 4 & info [ "subtasks" ] ~docv:"K" ~doc:"Subtasks spawned per root.")
      $ Arg.(
          value
          & opt int 42
          & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed; a failure replays from it.")
      $ Arg.(
          value
          & opt int 0
          & info [ "park" ] ~docv:"UNITS"
              ~doc:"Stall length in park units (one unit is 1us; 0 disables parking).")
      $ Arg.(
          value
          & flag
          & info [ "kill" ]
              ~doc:
                "Arm Die: workers crash at seed-chosen points (the scheduler's steal, park and \
                 resolve windows included); the audit still requires zero stranded promises.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "cap" ] ~docv:"SEGMENTS"
              ~doc:"Bound the injector at $(docv) segments (backpressure mode)."))

let list_cmd =
  let run () =
    List.iter
      (fun (f : Harness.Queues.factory) ->
        Printf.printf "%-10s %s\n" f.Harness.Queues.name f.Harness.Queues.description)
      Harness.Queues.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available queue implementations") Term.(const run $ const ())

let all_cmd =
  let run quick =
    ignore (Harness.Experiments.table1 ());
    ignore (Harness.Experiments.figure2 ~quick Harness.Workload.Pairs);
    ignore (Harness.Experiments.figure2 ~quick Harness.Workload.Fifty_fifty);
    ignore (Harness.Experiments.table2 ~quick ());
    ignore (Harness.Latency.experiment ());
    ignore (Harness.Experiments.ablation_patience ~quick ());
    ignore (Harness.Experiments.ablation_segment_size ~quick ());
    ignore (Harness.Experiments.ablation_max_garbage ~quick ());
    ignore (Harness.Experiments.ablation_reclamation ~quick ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table, figure and ablation in sequence")
    Term.(const run $ quick_arg)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Reproduce the evaluation of 'A Wait-free Queue as Fast as Fetch-and-Add' (PPoPP'16): \
         tables, figures and ablations, plus live storm drivers (inject, shard, bounded, \
         topology, sched) for the subsystems built on the queue"
  in
  (* Cmdliner signals CLI parse errors — unknown subcommand included —
     with its own exit 124; scripts expect the conventional usage
     status, so fold it to 2. *)
  let code =
    Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            fig2_cmd;
            table2_cmd;
            ablation_patience_cmd;
            ablation_segment_cmd;
            ablation_garbage_cmd;
            ablation_reclaim_cmd;
            latency_cmd;
            stats_cmd;
            inject_cmd;
            shard_cmd;
            bounded_cmd;
            topology_cmd;
            sched_cmd;
            list_cmd;
            all_cmd;
          ])
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
