(** Deterministic fault injection for the queue's protocol paths.

    The paper's headline claim is wait-freedom: every operation
    completes in a bounded number of its own steps even when other
    threads stall or die at the worst possible moment (wCQ makes the
    same adversarial regime the bar, arXiv:2201.02179).  Cooperative
    tests never exercise that regime — a stall has to land *between*
    two specific atomic accesses to be adversarial, and hardware
    preemption lands there once in millions of operations.

    This module names those windows as {e injection points} and lets a
    harness deliberately stall ([Park]) or kill ([Die]) a victim
    thread exactly there.  The queue algorithm takes an injector as a
    compile-time functor argument (exactly like the {!Obs.Probe}): the
    {!Disabled} instantiation compiles to nothing on the production
    build (verified by the bench gate against the committed baseline),
    while {!Enabled} consults a globally installed controller.

    Faults are replayable: {!Plan} derives every decision from a
    {!Primitives.Splitmix64} seed, so a failing storm reprints as
    "seed 0x…" and reruns identically (exactly identically under the
    [simsched] scheduler, which controls the interleaving too).

    Thread-safety: {!install}/{!remove} publish via an atomic;
    {!Plan.decide} and the per-point counters are safe to call from
    any number of domains. *)

(** {1 Injection points}

    Each constructor names one adversarial window in
    [Wfqueue_algo.Make].  The map (DESIGN.md §7):

    - [Enq_fast_after_faa]: a fast-path enqueuer holds a tail ticket
      but has not yet deposited its value — the cell it abandoned must
      be poisoned by dequeuers, never waited on.
    - [Enq_slow_published]: a slow-path enqueue request is visible;
      helping must complete it even if the owner never runs again.
    - [Enq_slow_pre_commit]: the request is claimed for a cell but the
      value is not yet committed.
    - [Deq_fast_after_faa]: a dequeuer consumed a head ticket but has
      not yet helped/claimed its cell.
    - [Deq_slow_published]: a dequeue request is visible; peers must
      finish it.
    - [Enq_batch_after_faa]: a batch enqueuer reserved [k] consecutive
      tail tickets with one FAA but has deposited none of the values —
      the widest abandoned-window the algorithm can create; every
      reserved cell must be completable (poisoned or helped) without
      the owner.
    - [Deq_batch_after_faa]: a batch dequeuer consumed [k] consecutive
      head tickets but has claimed none of its cells.
    - [Help_enq_pre_claim]: a helper is about to claim a peer's
      enqueue request for a cell.
    - [Help_deq_pre_close]: a helper is about to close a peer's
      dequeue request.
    - [Cleanup_token_held]: the cleaner holds the cleanup token
      ([I = -1]); dying here must not wedge registration or future
      cleanups.
    - [Hazard_published]: a hazard pointer is set but not yet
      re-validated — the window the hazard-pointer acquire protocol
      defends.

    The [Topology] class covers the specialized-variant family
    ([Topology.Spsc]/[Mpsc]/[Spmc] and the adaptive dispatch):

    - [Topo_enq_pending]: a specialized-variant producer owns a cell
      (an FAA ticket for MPSC, its private position for SPSC/SPMC) but
      has not yet published the value — the Jiffy "hole" window a
      single consumer must walk past without waiting.
    - [Topo_deq_pending]: an SPMC consumer holds a head ticket but has
      neither taken the value nor poisoned the cell; the producer must
      be able to skip a cell poisoned by a consumer that overshoots.
    - [Topo_switch_draining]: the adaptive queue holds the switch
      token with the old backend quiesced but not yet drained — dying
      here must restore the old backend, losing and duplicating
      nothing.

    The [Pool] class covers the bounded-mode segment freelist
    (DESIGN.md §11):

    - [Seg_pool_acquire]: a bounded-mode operation is waiting on cap
      pressure and about to re-poll — either a blocking enqueue parked
      hazard-free at the admission line, or a segment request that
      found the pool empty and the budget spent (the admission
      overshoot path).  The backpressure window: dying here must leave
      the budget accounting exact (the victim holds no reservation),
      and parking here must not wedge concurrent acquires.
    - [Seg_pool_release]: the cleaner detached a retired segment and
      reset it but has not yet pushed it to the freelist — dying here
      leaks that segment's capacity (documented: a crashed cleaner
      costs cap slots, never safety), and must not let the segment
      become reachable from two chains.

    The [Sched] class covers the effects-based task scheduler
    (DESIGN.md §12):

    - [Sched_steal_pending]: a thief read a deque's top index and the
      task stored there but has not yet CASed top — the Chase–Lev
      claim window.  Dying here must leave the task claimable by the
      owner or another thief (the CAS never happened, so nothing is
      taken); parking here must not let a concurrent owner pop hand
      out the same task twice.
    - [Sched_park_pending]: a worker found its deque, the injector and
      every peer deque empty and is about to park — dying here is the
      canonical worker-death window: anything pushed to its deque
      before death must remain stealable, and the pool must keep
      resolving promises with one fewer worker.
    - [Sched_resolve_pending]: a fiber computed a promise's result but
      has not yet CASed the state to [Done] — dying here must leave
      the promise pending and resolvable by the recovery path (the
      worker-death handler resolves it with the death exception), and
      the exactly-once guarantee must survive the retry. *)
type point =
  | Enq_fast_after_faa
  | Enq_slow_published
  | Enq_slow_pre_commit
  | Deq_fast_after_faa
  | Deq_slow_published
  | Enq_batch_after_faa
  | Deq_batch_after_faa
  | Help_enq_pre_claim
  | Help_deq_pre_close
  | Cleanup_token_held
  | Hazard_published
  | Topo_enq_pending
  | Topo_deq_pending
  | Topo_switch_draining
  | Seg_pool_acquire
  | Seg_pool_release
  | Sched_steal_pending
  | Sched_park_pending
  | Sched_resolve_pending

type cls = Enqueue | Dequeue | Batch | Helping | Cleanup | Hazard | Topology | Pool | Sched

val all_points : point list
val class_of : point -> cls
val point_name : point -> string
val class_name : cls -> string
val points_of_class : cls -> point list

(** {1 Actions} *)

type action =
  | Continue  (** no fault *)
  | Park of int
      (** stall for [n] park units before resuming (a unit is one
          {!set_park} step: a [cpu_relax] by default, one scheduler
          yield under simsched, a sleep in the storm driver) *)
  | Die  (** raise {!Killed}, simulating thread death mid-protocol *)

exception Killed of point
(** Raised out of the faulted operation by [Die].  The victim's handle
    is left exactly as a crashed thread would leave it (hazard pointer
    possibly set, request possibly pending); recover with
    [Wfqueue.retire] once the victim is known dead. *)

(** {1 The functor argument} *)

module type S = sig
  val enabled : bool
  (** Compile-time constant of the instantiation; every injection site
      is [if I.enabled then I.hit P], so the disabled build keeps the
      bare hot path. *)

  val hit : point -> unit
end

module Disabled : S
(** [enabled = false]; [hit] is unreachable dead code. *)

module Enabled : S
(** Consults the installed controller on every hit; transparent (plain
    counter-free pass-through) while no controller is installed. *)

(** {1 Controller} *)

val install : (point -> action) -> unit
(** Install the global fault controller consulted by {!Enabled.hit}.
    The decision function must be thread-safe.  Replaces any previous
    controller. *)

val remove : unit -> unit
(** Remove the controller; subsequent hits are transparent. *)

val with_controller : (point -> action) -> (unit -> 'a) -> 'a
(** Scoped {!install}/{!remove} (also removes on exception). *)

val set_park : (int -> unit) -> unit
(** How [Park n] waits.  Default: [n] iterations of
    [Domain.cpu_relax].  The simsched suites set it to [n] scheduler
    yields so a parked fiber is descheduled, not busy; the storm
    driver sets it to a wall-clock sleep. *)

(** {1 Observed-fault counters}

    Incremented only while a controller is installed, so the enabled
    build without a controller pays one atomic load per hit. *)

type stats = { hits : int; parks : int; kills : int }

val stats : point -> stats
val total_stats : unit -> stats
val reset_stats : unit -> unit
val pp_stats : Format.formatter -> unit -> unit
(** One line per point that recorded anything. *)

(** {1 Seeded plans} *)

module Plan : sig
  type t
  (** A deterministic fault schedule: for each armed point, the plan
      fires once, at a seed-chosen hit ordinal (so the fault does not
      always land on the first visit), with a seed-chosen action. *)

  val make :
    ?park:int ->
    ?lethal:bool ->
    ?arm_window:int ->
    ?points:point list ->
    seed:int64 ->
    unit ->
    t
  (** [make ~seed ()] arms every injection point with [Park park]
      (default [park = 200]); [~lethal:true] arms [Die] instead.
      [arm_window] (default 4) bounds the hit ordinal at which each
      point fires.  [points] restricts arming (default
      {!all_points}). *)

  val decide : t -> point -> action
  (** The controller function: counts the hit against the point's
      ordinal and returns the armed action exactly once per point.
      Thread-safe. *)

  val describe : t -> string
  (** ["seed=0x2a park=200 arming point@ordinal ..."] — print this
      with any failure so the storm replays. *)
end
