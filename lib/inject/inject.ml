(* See inject.mli. *)

type point =
  | Enq_fast_after_faa
  | Enq_slow_published
  | Enq_slow_pre_commit
  | Deq_fast_after_faa
  | Deq_slow_published
  | Enq_batch_after_faa
  | Deq_batch_after_faa
  | Help_enq_pre_claim
  | Help_deq_pre_close
  | Cleanup_token_held
  | Hazard_published
  | Topo_enq_pending
  | Topo_deq_pending
  | Topo_switch_draining
  | Seg_pool_acquire
  | Seg_pool_release
  | Sched_steal_pending
  | Sched_park_pending
  | Sched_resolve_pending

type cls = Enqueue | Dequeue | Batch | Helping | Cleanup | Hazard | Topology | Pool | Sched

(* New points append at the end of [all_points]: [Plan.make] draws its
   per-point ordinals in this order, so appending keeps the arming of
   every pre-existing point identical for a given seed (storm replays
   recorded against older baselines stay valid). *)
let all_points =
  [
    Enq_fast_after_faa;
    Enq_slow_published;
    Enq_slow_pre_commit;
    Deq_fast_after_faa;
    Deq_slow_published;
    Enq_batch_after_faa;
    Deq_batch_after_faa;
    Help_enq_pre_claim;
    Help_deq_pre_close;
    Cleanup_token_held;
    Hazard_published;
    Topo_enq_pending;
    Topo_deq_pending;
    Topo_switch_draining;
    Seg_pool_acquire;
    Seg_pool_release;
    Sched_steal_pending;
    Sched_park_pending;
    Sched_resolve_pending;
  ]

let index = function
  | Enq_fast_after_faa -> 0
  | Enq_slow_published -> 1
  | Enq_slow_pre_commit -> 2
  | Deq_fast_after_faa -> 3
  | Deq_slow_published -> 4
  | Enq_batch_after_faa -> 5
  | Deq_batch_after_faa -> 6
  | Help_enq_pre_claim -> 7
  | Help_deq_pre_close -> 8
  | Cleanup_token_held -> 9
  | Hazard_published -> 10
  | Topo_enq_pending -> 11
  | Topo_deq_pending -> 12
  | Topo_switch_draining -> 13
  | Seg_pool_acquire -> 14
  | Seg_pool_release -> 15
  | Sched_steal_pending -> 16
  | Sched_park_pending -> 17
  | Sched_resolve_pending -> 18

let n_points = List.length all_points

let class_of = function
  | Enq_fast_after_faa | Enq_slow_published | Enq_slow_pre_commit -> Enqueue
  | Deq_fast_after_faa | Deq_slow_published -> Dequeue
  | Enq_batch_after_faa | Deq_batch_after_faa -> Batch
  | Help_enq_pre_claim | Help_deq_pre_close -> Helping
  | Cleanup_token_held -> Cleanup
  | Hazard_published -> Hazard
  | Topo_enq_pending | Topo_deq_pending | Topo_switch_draining -> Topology
  | Seg_pool_acquire | Seg_pool_release -> Pool
  | Sched_steal_pending | Sched_park_pending | Sched_resolve_pending -> Sched

let point_name = function
  | Enq_fast_after_faa -> "enq_fast_after_faa"
  | Enq_slow_published -> "enq_slow_published"
  | Enq_slow_pre_commit -> "enq_slow_pre_commit"
  | Deq_fast_after_faa -> "deq_fast_after_faa"
  | Deq_slow_published -> "deq_slow_published"
  | Enq_batch_after_faa -> "enq_batch_after_faa"
  | Deq_batch_after_faa -> "deq_batch_after_faa"
  | Help_enq_pre_claim -> "help_enq_pre_claim"
  | Help_deq_pre_close -> "help_deq_pre_close"
  | Cleanup_token_held -> "cleanup_token_held"
  | Hazard_published -> "hazard_published"
  | Topo_enq_pending -> "topo_enq_pending"
  | Topo_deq_pending -> "topo_deq_pending"
  | Topo_switch_draining -> "topo_switch_draining"
  | Seg_pool_acquire -> "seg_pool_acquire"
  | Seg_pool_release -> "seg_pool_release"
  | Sched_steal_pending -> "sched_steal_pending"
  | Sched_park_pending -> "sched_park_pending"
  | Sched_resolve_pending -> "sched_resolve_pending"

let class_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Batch -> "batch"
  | Helping -> "helping"
  | Cleanup -> "cleanup"
  | Hazard -> "hazard"
  | Topology -> "topology"
  | Pool -> "pool"
  | Sched -> "sched"

let points_of_class c = List.filter (fun p -> class_of p = c) all_points

type action = Continue | Park of int | Die

exception Killed of point

let () =
  Printexc.register_printer (function
    | Killed p -> Some (Printf.sprintf "Inject.Killed(%s)" (point_name p))
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Controller                                                         *)

(* The controller is read on every hit of an [Enabled] build, possibly
   from many domains at once, so it lives in a padded atomic; the park
   implementation is swapped only by test harnesses, before the storm
   starts. *)
let controller : (point -> action) option Atomic.t =
  Primitives.Padding.make_padded_atomic None

let default_park n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let park_impl : (int -> unit) Atomic.t = Primitives.Padding.make_padded_atomic default_park
let set_park f = Atomic.set park_impl f

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)

type stats = { hits : int; parks : int; kills : int }

(* Strided so that two points' counters never share a cache line
   (victims hammer exactly one point while survivors hit others). *)
module C = Primitives.Atomic_prims.Real.Counters

let hit_counts = C.make ~len:n_points ~init:0
let park_counts = C.make ~len:n_points ~init:0
let kill_counts = C.make ~len:n_points ~init:0

let stats p =
  let i = index p in
  { hits = C.get hit_counts i; parks = C.get park_counts i; kills = C.get kill_counts i }

let total_stats () =
  List.fold_left
    (fun acc p ->
      let s = stats p in
      { hits = acc.hits + s.hits; parks = acc.parks + s.parks; kills = acc.kills + s.kills })
    { hits = 0; parks = 0; kills = 0 }
    all_points

let reset_stats () =
  for i = 0 to n_points - 1 do
    C.set hit_counts i 0;
    C.set park_counts i 0;
    C.set kill_counts i 0
  done

let pp_stats ppf () =
  List.iter
    (fun p ->
      let s = stats p in
      if s.hits > 0 then
        Format.fprintf ppf "  %-22s hits %8d  parks %4d  kills %4d@." (point_name p) s.hits
          s.parks s.kills)
    all_points

(* ------------------------------------------------------------------ *)
(* The functor argument                                               *)

module type S = sig
  val enabled : bool
  val hit : point -> unit
end

module Disabled = struct
  let enabled = false
  let hit _ = ()
end

module Enabled = struct
  let enabled = true

  let hit p =
    match Atomic.get controller with
    | None -> ()
    | Some decide -> (
      let i = index p in
      ignore (C.fetch_and_add hit_counts i 1);
      match decide p with
      | Continue -> ()
      | Park n ->
        ignore (C.fetch_and_add park_counts i 1);
        (Atomic.get park_impl) n
      | Die ->
        ignore (C.fetch_and_add kill_counts i 1);
        raise (Killed p))
end

let install decide = Atomic.set controller (Some decide)
let remove () = Atomic.set controller None

let with_controller decide f =
  install decide;
  Fun.protect ~finally:remove f

(* ------------------------------------------------------------------ *)
(* Seeded plans                                                       *)

module Plan = struct
  type arming = { action : action; arm_at : int; fired : bool Atomic.t; seen : int Atomic.t }

  type t = {
    seed : int64;
    park : int;
    lethal : bool;
    armings : arming option array; (* indexed by [index point] *)
  }

  let make ?(park = 200) ?(lethal = false) ?(arm_window = 4) ?(points = all_points) ~seed () =
    if park < 0 then invalid_arg "Inject.Plan.make: negative park";
    if arm_window < 1 then invalid_arg "Inject.Plan.make: arm_window < 1";
    let rng = Primitives.Splitmix64.create seed in
    let armings = Array.make n_points None in
    (* Draw in the fixed [all_points] order so the plan depends only on
       the seed and the arming set, not on the order callers list
       points in. *)
    List.iter
      (fun p ->
        let arm_at = Primitives.Splitmix64.next_int rng arm_window in
        if List.mem p points then
          armings.(index p) <-
            Some
              {
                action = (if lethal then Die else Park park);
                arm_at;
                fired = Atomic.make false;
                seen = Atomic.make 0;
              })
      all_points;
    { seed; park; lethal; armings }

  let decide t p =
    match t.armings.(index p) with
    | None -> Continue
    | Some a ->
      let ordinal = Atomic.fetch_and_add a.seen 1 in
      if ordinal = a.arm_at && Atomic.compare_and_set a.fired false true then a.action
      else Continue

  let describe t =
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "seed=0x%Lx %s" t.seed
         (if t.lethal then "die" else Printf.sprintf "park=%d" t.park));
    Array.iteri
      (fun i a ->
        match a with
        | None -> ()
        | Some a ->
          Buffer.add_string b
            (Printf.sprintf " %s@%d" (point_name (List.nth all_points i)) a.arm_at))
      t.armings;
    Buffer.contents b
end
