(* A combining node.  [req] and [completed] are plain mutable fields:
   [req] is published to the combiner by the atomic store to the
   predecessor's [next], and [completed] is published back to the
   requester by the atomic store to [wait] — both Atomic operations are
   sequentially consistent in OCaml, giving the required
   happens-before edges. *)
type node = {
  mutable req : (unit -> unit) option;
  next : node option Atomic.t;
  wait : bool Atomic.t;
  mutable completed : bool;
}

type t = { tail : node Atomic.t; max_combine : int }
type handle = { mutable spare : node }

(* [wait] is the word a requester spins on while the combiner works;
   padding it keeps that spin read-only traffic off the line holding
   the node's other fields, which the combiner is writing.  The node
   record itself is also padded so distinct requesters' nodes never
   share a line. *)
let new_node () =
  Primitives.Padding.copy_as_padded
    {
      req = None;
      next = Atomic.make None;
      wait = Primitives.Padding.make_padded_atomic false;
      completed = false;
    }

let create ?(max_combine = 1024) () =
  assert (max_combine >= 1);
  (* [tail] takes an exchange from every arriving requester — the
     single hottest word of the lock. *)
  { tail = Primitives.Padding.make_padded_atomic (new_node ()); max_combine }

let handle _t = { spare = new_node () }

(* Spin briefly, then fall back to micro-sleeps: on an oversubscribed
   host a waiter that only spins can burn its whole scheduling quantum
   while the combiner is descheduled.  (This waiting is the blocking
   behaviour of combining that the paper contrasts with
   wait-freedom.) *)
let spin_while_waiting node =
  let budget = ref 4096 in
  while Atomic.get node.wait do
    if !budget > 0 then begin
      decr budget;
      Domain.cpu_relax ()
    end
    else Unix.sleepf 1e-6
  done

(* Execute pending requests starting at [cur] (inclusive); stop after
   [max_combine] requests or when reaching the queue's open end, then
   hand the combiner role to the node we stopped at. *)
let combine t cur =
  let rec go node count =
    match Atomic.get node.next with
    | Some next when count < t.max_combine ->
      (match node.req with
      | Some f -> f ()
      | None -> assert false);
      node.req <- None;
      node.completed <- true;
      Atomic.set node.wait false;
      go next (count + 1)
    | Some _ | None ->
      (* [node]'s owner becomes the next combiner (completed stays
         false so it will enter [combine] when released). *)
      Atomic.set node.wait false
  in
  go cur 0

let apply t h f =
  let result = ref None in
  let thunk () = result := Some (f ()) in
  let next_node = h.spare in
  Atomic.set next_node.next None;
  Atomic.set next_node.wait true;
  next_node.completed <- false;
  let cur = Atomic.exchange t.tail next_node in
  cur.req <- Some thunk;
  Atomic.set cur.next (Some next_node);
  h.spare <- cur;
  spin_while_waiting cur;
  if not cur.completed then combine t cur;
  match !result with
  | Some v -> v
  | None -> assert false
