(* The lock-free admission / shutdown / drain protocol shared by the
   task scheduler ([Sched.Runtime]) and the worker pool ([Pool], a
   thin shim over the scheduler since PR 10; [Pool.Protocol] re-exports
   this module so older call sites keep compiling).  A functor over the
   atomic primitives and the run queue: production instantiates it on
   hardware atomics and [Wfq.Wfqueue]; the test suite instantiates the
   same text on the simsched shim ([Simsched.Sim.Atomic_shim] +
   [Sim.Queue]) and explores submit-vs-shutdown-vs-worker interleavings
   exhaustively — the interleaving that stranded futures in the
   original pool (a worker observing EMPTY, then [stopping], and
   exiting while a racing submit's task sat queued) lives entirely in
   this protocol, so this is the text that must be model-checked.

   The protocol's unit is the [ticket]: a queued task plus a claim
   word.  The claim is the exactly-once point — whoever wins the CAS
   runs ([run]) or cancels ([abort]) the ticket; everyone else walks
   away.  Four racing parties can reach a ticket: a worker that
   dequeued it, a thief that stole it from a worker's deque, the
   shutdown drain, and the submitter itself (when its re-check shows
   the pool closed under its feet).  First claim wins; every ticket is
   claimed by someone (argument below), so no future is ever left
   pending.

   Why nothing is stranded:

   - [submit] pushes, then re-reads [accepting].  Shutdown clears
     [accepting] {e before} setting [stopping], so any push that
     happens after [stopping] is set has a re-check that reliably
     observes [accepting = false] (SC atomics) and self-claims if
     nobody beat it to the ticket.
   - A worker exits only when a dequeue returns EMPTY {e and}
     [stopping] was already set before that dequeue started.  The run
     queue is linearizable, so a ticket pushed before [stopping] was
     set is visible to that final dequeue — EMPTY means every earlier
     ticket was already dequeued by some worker (and hence claimed:
     dequeuers claim-or-skip, never drop).
   - Tickets pushed after [stopping] are covered by the submit
     re-check above; [drain] (run by [shutdown] after joining the
     workers) additionally claims-and-aborts anything still queued,
     which closes the window where the submitter's re-check and a
     worker both declined the same ticket (impossible, but drain makes
     the argument local: queued ∧ unclaimed ⇒ drain claims it). *)

module type QUEUE = sig
  type 'a t
  type 'a handle

  val enqueue : 'a t -> 'a handle -> 'a -> unit
  val dequeue : 'a t -> 'a handle -> 'a option
end

module Make (A : Wfq.Atomic_prims.S) (Q : QUEUE) = struct
  type ticket = {
    run : unit -> unit;  (** execute the task (resolves its future) *)
    abort : unit -> unit;  (** cancel it (resolves its future with [Shutdown]) *)
    claimed : bool A.t;
  }

  type t = {
    tickets : ticket Q.t;
    accepting : bool A.t;  (** cleared first by shutdown: admission gate *)
    stopping : bool A.t;  (** set second: worker exit gate *)
  }

  let create tickets =
    { tickets; accepting = A.make_contended true; stopping = A.make_contended false }

  let accepting t = A.get t.accepting
  let stopping t = A.get t.stopping
  let claim ticket = A.compare_and_set ticket.claimed false true

  let ticket ~run ~abort = { run; abort; claimed = A.make false }
  (* Pre-built tickets let the scheduler route the same claim-once unit
     through a work-stealing deque instead of the shared queue; a
     ticket outside any queue is the submitter's to claim. *)

  type admission =
    | Rejected  (** pool was closed before the push; nothing was queued *)
    | Accepted  (** queued; a worker (or the drain) owns resolution *)
    | Aborted  (** queued, but the pool closed mid-submit and the
                   submitter claimed its own ticket: [abort] already ran *)

  let submit_ticket t h tk =
    if not (A.get t.accepting) then Rejected
    else begin
      Q.enqueue t.tickets h tk;
      (* Check-then-act window closed: if the gate dropped while we
         were pushing, the drain may already have run past our ticket,
         so take responsibility unless someone else already has it. *)
      if A.get t.accepting then Accepted
      else if claim tk then begin
        tk.abort ();
        Aborted
      end
      else Accepted (* a worker or the drain claimed it: it resolves *)
    end

  let submit t h ~run ~abort = submit_ticket t h (ticket ~run ~abort)

  type step =
    | Ran  (** dequeued a ticket and ran it *)
    | Stale  (** dequeued a ticket someone else had claimed *)
    | Idle  (** queue empty, pool still running *)
    | Exit  (** queue empty after [stopping]: drained, worker may leave *)

  let worker_step t h =
    (* Read [stopping] before the dequeue: EMPTY then justifies
       exiting only if the stop was already in force when the dequeue
       linearized — a ticket pushed before the stop cannot be missed
       by a dequeue that starts after it. *)
    let stopping_before = A.get t.stopping in
    match Q.dequeue t.tickets h with
    | Some ticket ->
      if claim ticket then begin
        ticket.run ();
        Ran
      end
      else Stale
    | None -> if stopping_before then Exit else Idle

  let begin_shutdown t =
    A.set t.accepting false;
    A.set t.stopping true

  (* Post-join sweep: claim and abort every ticket still queued.
     Returns the number aborted here (0 in every race-free run —
     workers drain the backlog before exiting). *)
  let drain t h =
    let rec go n =
      match Q.dequeue t.tickets h with
      | Some ticket ->
        if claim ticket then begin
          ticket.abort ();
          go (n + 1)
        end
        else go n
      | None -> n
    in
    go 0
end
