(* The effects-based task runtime over the wait-free queue: the
   ROADMAP's "millions of user requests become tasks" story as a real
   subsystem.  The wait-free queue is the {e global injector} — every
   external submission and every overflow goes through it — and each
   worker domain owns a Chase–Lev deque ([Sched_algo.Deque]) for the
   tasks it spawns, so the common fork-join pattern runs LIFO and
   cache-warm with zero shared-queue traffic, and only load imbalance
   pays a steal CAS.  Fibers are [Effect.Deep] computations: [await]
   on an unresolved [Promise] captures the continuation as a protocol
   ticket and parks it on the promise; resolution re-schedules it.

   Admission and shutdown reuse [Sched_protocol] (the model-checked
   claim-once ticket discipline): a ticket is claimed exactly once
   whether it is popped by its owner, dequeued from the injector,
   stolen by a peer, self-aborted by a submitter that lost the
   shutdown race, or swept by the post-join drain.  A bounded injector
   ([?injector_cap], PR 9's [?segment_cap] under the hood) turns task
   floods into backpressure: external submitters block at the
   admission line, while workers — the consumers — never block
   ([try_enqueue] + run-inline overflow), so the cap cannot deadlock
   the pool that must drain it.

   Why no promise is stranded (DESIGN.md §12 for the long form):
   1. every accepted root ticket is claimed exactly once, and both
      claims resolve the promise ([run] to the task's result, [abort]
      to [Error Shutdown]);
   2. a suspended fiber is reachable only through the waiter it
      registered on a promise, and that promise's resolution — which
      is guaranteed by induction on the await DAG, grounded at root
      tickets — turns the waiter back into a queued ticket;
   3. a dead worker's deque stays stealable (death never unlinks it),
      so its tickets are taken by peers or by the shutdown sweep;
   4. the kill windows ([Sched_steal_pending], [Sched_park_pending],
      [Sched_resolve_pending]) all sit {e before} their commit point,
      so a victim killed there has published nothing half-done, and
      the death path resolves the current promise before the worker
      dies;
   5. the post-join sweep loops until a full pass moves nothing:
      aborting a suspended fiber unwinds it ([discontinue]) and the
      unwind may reschedule continuations, which the next pass
      claims. *)

(* The injector interface: the subset of [Wfq.Wfqueue] the runtime
   needs, declared so the same text instantiates on the production
   build ([Scheduler]) and the probe+inject build
   ([Scheduler_inject]). *)
module type INJECTOR = sig
  type 'a t
  type 'a handle

  val create :
    ?patience:int ->
    ?segment_shift:int ->
    ?max_garbage:int ->
    ?reclamation:bool ->
    ?segment_cap:int ->
    unit ->
    'a t

  val register : 'a t -> 'a handle
  val enqueue : 'a t -> 'a handle -> 'a -> unit
  val try_enqueue : 'a t -> 'a handle -> 'a -> bool
  val dequeue : 'a t -> 'a handle -> 'a option
  val domain_handle : 'a t -> 'a handle
  val retire : 'a t -> 'a handle -> unit
  val approx_length : 'a t -> int
  val snapshot : 'a t -> Obs.Snapshot.t
end

module Make (P : Obs.Probe.S) (I : Inject.S) (Q : INJECTOR) = struct
  module Core = Sched_algo.Make (Wfq.Atomic_prims.Real) (P) (I)

  module Proto =
    Sched_protocol.Make
      (Wfq.Atomic_prims.Real)
      (struct
        type 'a t = 'a Q.t
        type 'a handle = 'a Q.handle

        let enqueue = Q.enqueue
        let dequeue = Q.dequeue
      end)

  exception Shutdown
  exception Abort_worker

  type task = Proto.ticket

  (* The promise registry: the backstop behind "shutdown strands
     nothing".  The sweep finds every ticket still *in* a queue, but a
     worker killed mid-dequeue takes its ticket with it — the queue's
     documented crashed-consumer semantics lose the element the victim
     was consuming — and a killed [try_enqueue] can lose a ticket
     before it ever linearizes.  Those tickets are unreachable, so the
     guarantee has to live at the promise level: every [async]
     registers its promise here {e before} routing the ticket, and
     [shutdown] resolves whatever is still pending once the sweep runs
     dry.  Entries are scrubbed periodically so the registry tracks
     in-flight tasks, not history. *)
  type reg_entry = { pending : unit -> bool; backstop : unit -> bool }

  type pool = {
    pname : string;
    proto : Proto.t;
    injector : task Q.t;
    deques : task Core.Deque.t array;
    pool_workers : int;
    (* Monitoring counters, each on its own cache line so a dying
       worker and a hot completion path do not false-share. *)
    live : int Atomic.t;
    deaths : int Atomic.t;
    completed : int Atomic.t;
    exceptions : int Atomic.t;
    aborted : int Atomic.t;
    spawned : int Atomic.t;
    steal_count : int Atomic.t;
    registry : reg_entry list Atomic.t;  (** Treiber stack of live promises *)
    reg_count : int Atomic.t;  (** submissions since creation, drives scrubbing *)
    reg_lock : Mutex.t;  (** holds a scrub's batch and the shutdown scan apart *)
  }

  type t = {
    default : pool;
    pools : pool list Atomic.t;  (** newest first; always contains [default] *)
    mutable domains : unit Domain.t list;  (** guarded by [lock] *)
    lock : Mutex.t;
    shutdown_started : bool Atomic.t;
    shutdown_done : bool Atomic.t;
  }

  (* Worker identity: which scheduler/pool/deque the current domain
     belongs to.  One key per functor instantiation, so a
     [Scheduler_inject] worker is an external domain from
     [Scheduler]'s point of view and vice versa. *)
  type ctx = { cpool : pool; cdeque : task Core.Deque.t; owner : t }

  let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  type _ Effect.t +=
    | Await : ('a, exn) Core.Promise.t -> ('a, exn) result Effect.t
    | Yield : unit Effect.t

  (* ---------------------------------------------------------------- *)
  (* Promise resolution under fire                                    *)

  (* Resolve, retrying through injected kills: the recovery paths
     (worker-death handler, shutdown abort) must complete their
     resolve even if the [Sched_resolve_pending] window is armed —
     under a [Plan] each point fires once, so the retry is bounded. *)
  let rec resolve_hard prom r =
    match Core.Promise.try_resolve prom r with
    | won -> won
    | exception Inject.Killed _ -> resolve_hard prom r

  (* The normal resolve: an injected kill in the commit window kills
     this worker, but only after the death handler resolves the
     still-pending promise with the death exception — the
     no-stranding contract for [Sched_resolve_pending]. *)
  let resolve_counted prom r counter =
    match Core.Promise.try_resolve prom r with
    | won -> if won then ignore (Atomic.fetch_and_add counter 1)
    | exception (Inject.Killed _ as death) ->
      ignore (resolve_hard prom (Error death) : bool);
      raise death

  (* ---------------------------------------------------------------- *)
  (* Promise registry                                                 *)

  let registry_push pool entry =
    let rec go () =
      let cur = Atomic.get pool.registry in
      if not (Atomic.compare_and_set pool.registry cur (entry :: cur)) then go ()
    in
    go ()

  (* Scrub resolved entries so the registry tracks in-flight promises,
     not history.  [try_lock] keeps scrubs from stacking up; the lock is
     held while the batch is detached so the shutdown scan (which takes
     the same lock) can never run while live entries sit outside the
     stack.  Survivors are merged back atomically on top of whatever
     was pushed concurrently. *)
  let registry_scrub pool =
    if Mutex.try_lock pool.reg_lock then
      Fun.protect ~finally:(fun () -> Mutex.unlock pool.reg_lock) @@ fun () ->
      let batch = Atomic.exchange pool.registry [] in
      let live = List.filter (fun e -> e.pending ()) batch in
      let rec put () =
        let cur = Atomic.get pool.registry in
        if not (Atomic.compare_and_set pool.registry cur (List.rev_append live cur)) then put ()
      in
      if live <> [] then put ()

  let register_promise pool prom =
    registry_push pool
      {
        pending = (fun () -> not (Core.Promise.is_resolved prom));
        backstop =
          (fun () ->
            if resolve_hard prom (Error Shutdown) then begin
              ignore (Atomic.fetch_and_add pool.aborted 1);
              true
            end
            else false);
      };
    if Atomic.fetch_and_add pool.reg_count 1 land 63 = 63 then registry_scrub pool

  (* ---------------------------------------------------------------- *)
  (* Ticket routing                                                   *)

  let run_ticket tk = if Proto.claim tk then tk.Proto.run ()

  (* Non-blocking admission for workers: [try_enqueue] plus the
     protocol's closed-under-our-feet re-check. *)
  let submit_nonblocking pool tk =
    if not (Proto.accepting pool.proto) then `Rejected
    else if Q.try_enqueue pool.injector (Q.domain_handle pool.injector) tk then
      if Proto.accepting pool.proto then `Queued
      else if Proto.claim tk then begin
        tk.Proto.abort ();
        `Queued (* aborted: resolution already happened *)
      end
      else `Queued
    else `Full

  (* Route a continuation ticket to its home pool.  Continuations
     resume already-admitted work, so they bypass the admission gate:
     during a graceful shutdown the workers (or the post-join sweep)
     still claim them, which is what lets in-flight fan-ins finish
     draining instead of erroring mid-chain. *)
  let schedule pool tk =
    let pushed_local =
      match Domain.DLS.get ctx_key with
      | Some c when c.cpool == pool -> Core.Deque.push c.cdeque tk
      | _ -> false
    in
    if not pushed_local then
      if Q.try_enqueue pool.injector (Q.domain_handle pool.injector) tk then begin
        (* Same push-then-recheck shape as [Sched_protocol.submit],
           against [stopping]: if the stop raced our push, the
           post-join sweep may already have passed our ticket, so run
           it here — the claim CAS makes this a no-op if a worker or
           the sweep got it first.  (A worker pushing to its own deque
           above needs no re-check: the owner drains its deque before
           exiting.) *)
        if Proto.stopping pool.proto then run_ticket tk
      end
      else
        (* bounded injector at capacity: run inline rather than block —
           this path is a consumer, and consumers must never wait on
           the admission line they are responsible for draining *)
        run_ticket tk

  (* ---------------------------------------------------------------- *)
  (* Fibers                                                           *)

  let handler pool : (unit, unit) Effect.Deep.handler =
    {
      Effect.Deep.retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Await p ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                match Core.Promise.poll p with
                | Some r -> Effect.Deep.continue k r
                | None ->
                  (* Park the continuation on the promise as a claim-once
                     ticket: resolution re-schedules it, the shutdown
                     sweep may instead abort it (unwinding the fiber
                     with [Shutdown]); the claim CAS makes the two
                     outcomes exclusive. *)
                  ignore
                    (Core.Promise.add_waiter p (fun r ->
                         schedule pool
                           (Proto.ticket
                              ~run:(fun () -> Effect.Deep.continue k r)
                              ~abort:(fun () ->
                                try Effect.Deep.discontinue k Shutdown with _ -> ())))
                      : bool))
          | Yield ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                schedule pool
                  (Proto.ticket
                     ~run:(fun () -> Effect.Deep.continue k ())
                     ~abort:(fun () -> try Effect.Deep.discontinue k Shutdown with _ -> ())))
          | _ -> None);
    }

  let root_ticket pool prom f =
    Proto.ticket
      ~run:(fun () ->
        Effect.Deep.match_with
          (fun () ->
            match f () with
            | v -> resolve_counted prom (Ok v) pool.completed
            | exception ((Abort_worker | Inject.Killed _) as death) ->
              (* fault-drill / injected kill: resolve the promise so
                 nothing downstream is stranded, then still kill the
                 worker that ran us *)
              ignore (resolve_hard prom (Error death) : bool);
              raise death
            | exception e -> resolve_counted prom (Error e) pool.completed)
          () (handler pool))
      ~abort:(fun () ->
        if resolve_hard prom (Error Shutdown) then
          ignore (Atomic.fetch_and_add pool.aborted 1))

  (* ---------------------------------------------------------------- *)
  (* Workers                                                          *)

  let worker_loop t pool slot () =
    let my = pool.deques.(slot) in
    Domain.DLS.set ctx_key (Some { cpool = pool; cdeque = my; owner = t });
    let h = Q.register pool.injector in
    (* Release the handle on every exit path — normal drain-out or
       death — so a dead worker never pins segment reclamation; its
       deque needs no such release: it stays stealable forever. *)
    Fun.protect ~finally:(fun () ->
        Domain.DLS.set ctx_key None;
        Q.retire pool.injector h;
        ignore (Atomic.fetch_and_add pool.live (-1)))
    @@ fun () ->
    let n = Array.length pool.deques in
    let steal_sweep () =
      let rec go i =
        if i >= n - 1 then None
        else
          match Core.Deque.steal pool.deques.((slot + 1 + i) mod n) with
          | Some _ as r ->
            ignore (Atomic.fetch_and_add pool.steal_count 1);
            r
          | None -> go (i + 1)
      in
      go 0
    in
    (* Own deque (LIFO, uncontended) → injector (the fairness source:
       external work and overflow) → steal (load balancing).  Exit
       needs [stopping] read before the injector dequeue, exactly the
       [Sched_protocol.worker_step] argument; the own-deque pop above
       it is safe because only this worker pushes there, and the steal
       sweep below is safe because a peer deque can only be refilled
       by its (live) owner, which then drains it itself or stays to be
       swept again. *)
    let step () =
      match Core.Deque.pop my with
      | Some tk ->
        run_ticket tk;
        `Ran
      | None -> (
        let stopping_before = Proto.stopping pool.proto in
        match Q.dequeue pool.injector h with
        | Some tk ->
          if Proto.claim tk then tk.Proto.run ();
          `Ran
        | None -> (
          match steal_sweep () with
          | Some tk ->
            run_ticket tk;
            `Ran
          | None -> if stopping_before then `Exit else `Idle))
    in
    let rec loop idle_spins =
      let outcome =
        (* Fault isolation, as in the old [Pool]: an exception escaping
           a ticket must not silently shrink the pool; [Abort_worker]
           and an injected [Killed] are the deliberate death channels,
           visible in [worker_deaths]. *)
        try
          match step () with
          | `Ran -> `Ran
          | `Exit -> `Exit
          | `Idle ->
            if I.enabled then I.hit Inject.Sched_park_pending;
            (* between spinning and napping: submissions are bursty
               and the host may be oversubscribed *)
            if idle_spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_2;
            `Parked
        with
        | Abort_worker | Inject.Killed _ -> `Died
        | _exn ->
          ignore (Atomic.fetch_and_add pool.exceptions 1);
          `Ran
      in
      match outcome with
      | `Ran -> loop 0
      | `Parked -> loop (idle_spins + 1)
      | `Exit -> ()
      | `Died -> ignore (Atomic.fetch_and_add pool.deaths 1)
    in
    loop 0

  (* ---------------------------------------------------------------- *)
  (* Construction                                                     *)

  let make_pool ~name ~workers ~injector_cap ~deque_capacity =
    if workers < 1 then invalid_arg "Sched: a pool needs at least one worker";
    let injector =
      match injector_cap with
      | Some cap ->
        if cap < 6 then invalid_arg "Sched: injector_cap must be >= 6";
        (* keep the cleanup threshold under the cap so a small bounded
           injector can still recycle segments (cap >= max_garbage + 4
           is the queue's own floor) *)
        Q.create ~segment_cap:cap ~max_garbage:(max 2 (min 10 (cap - 4))) ()
      | None -> Q.create ()
    in
    {
      pname = name;
      proto = Proto.create injector;
      injector;
      deques = Array.init workers (fun _ -> Core.Deque.create ~capacity:deque_capacity ());
      pool_workers = workers;
      live = Primitives.Padding.make_padded_atomic workers;
      deaths = Primitives.Padding.make_padded_atomic 0;
      completed = Primitives.Padding.make_padded_atomic 0;
      exceptions = Primitives.Padding.make_padded_atomic 0;
      aborted = Primitives.Padding.make_padded_atomic 0;
      spawned = Primitives.Padding.make_padded_atomic 0;
      steal_count = Primitives.Padding.make_padded_atomic 0;
      registry = Atomic.make [];
      reg_count = Primitives.Padding.make_padded_atomic 0;
      reg_lock = Mutex.create ();
    }

  let default_pool_name = "default"

  let create ?workers ?injector_cap ?(deque_capacity = 256) () =
    let n =
      match workers with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count () - 1)
    in
    let default = make_pool ~name:default_pool_name ~workers:n ~injector_cap ~deque_capacity in
    let t =
      {
        default;
        pools = Primitives.Padding.make_padded_atomic [ default ];
        domains = [];
        lock = Mutex.create ();
        shutdown_started = Atomic.make false;
        shutdown_done = Atomic.make false;
      }
    in
    t.domains <- List.init n (fun slot -> Domain.spawn (worker_loop t default slot));
    t

  (* A micropool: its own injector, deques and worker domains, named
     for routing.  Stealing never crosses pools, so a tenant's burst
     cannot starve another's workers — the multi-tenant isolation the
     ISSUE asks for. *)
  let add_pool ?injector_cap ?(deque_capacity = 256) t ~name ~workers =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
    if Atomic.get t.shutdown_started then invalid_arg "Sched.add_pool: scheduler is shut down";
    if List.exists (fun p -> String.equal p.pname name) (Atomic.get t.pools) then
      invalid_arg ("Sched.add_pool: duplicate pool name " ^ name);
    let pool = make_pool ~name ~workers ~injector_cap ~deque_capacity in
    Atomic.set t.pools (pool :: Atomic.get t.pools);
    t.domains <- List.init workers (fun slot -> Domain.spawn (worker_loop t pool slot)) @ t.domains

  let find_pool t name =
    match List.find_opt (fun p -> String.equal p.pname name) (Atomic.get t.pools) with
    | Some p -> p
    | None -> invalid_arg ("Sched: unknown pool " ^ name)

  let pool_names t = List.rev_map (fun p -> p.pname) (Atomic.get t.pools)

  (* ---------------------------------------------------------------- *)
  (* Submission                                                       *)

  let submit_root pool prom f =
    let tk = root_ticket pool prom f in
    ignore (Atomic.fetch_and_add pool.spawned 1);
    (* Register before routing: if an injected kill loses the ticket
       mid-enqueue (or a killed consumer later loses it mid-dequeue),
       the promise is already covered by the shutdown backstop. *)
    register_promise pool prom;
    let reject () = invalid_arg "Sched.async: scheduler is shut down" in
    match Domain.DLS.get ctx_key with
    | Some c when c.cpool == pool ->
      (* spawn: LIFO on our own deque; overflow to the injector;
         injector at cap: run depth-first right now (never block a
         worker) *)
      if not (Core.Deque.push c.cdeque tk) then begin
        match submit_nonblocking pool tk with
        | `Queued -> ()
        | `Full -> run_ticket tk
        | `Rejected -> reject ()
      end
    | Some _ -> (
      (* a worker of another pool (or scheduler): non-blocking, for
         the same never-block-a-consumer reason *)
      match submit_nonblocking pool tk with
      | `Queued -> ()
      | `Full -> run_ticket tk
      | `Rejected -> reject ())
    | None -> (
      (* external domain: the blocking submit IS the backpressure — a
         bounded injector parks the submitter at the admission line *)
      match Proto.submit_ticket pool.proto (Q.domain_handle pool.injector) tk with
      | Proto.Rejected -> reject ()
      | Proto.Accepted | Proto.Aborted -> ())

  let async ?pool t f =
    let p =
      match pool with
      | Some name -> find_pool t name
      | None -> (
        match Domain.DLS.get ctx_key with
        | Some c when c.owner == t -> c.cpool (* spawn stays in the fiber's pool *)
        | _ -> t.default)
    in
    let prom = Core.Promise.create () in
    submit_root p prom f;
    prom

  let yield () = try Effect.perform Yield with Effect.Unhandled _ -> Domain.cpu_relax ()

  (* ---------------------------------------------------------------- *)
  (* Awaiting                                                         *)

  module Promise = struct
    type 'a t = ('a, exn) Core.Promise.t

    let poll = Core.Promise.poll
    let is_resolved = Core.Promise.is_resolved

    (* External promises: app-resolved rendezvous cells ([async] roots
       resolve themselves).  The scheduler guarantees resolution for
       every promise it creates; a fiber awaiting an external promise
       the app never resolves stays parked — external resolution is
       the app's contract, and shutdown does not invent results for
       it.  (Once the app does resolve — even post-shutdown — the
       parked continuation still runs: [schedule]'s stopping re-check
       runs it inline on the resolver's domain if the workers and the
       sweep are already gone.) *)
    let create () : 'a t = Core.Promise.create ()
    let resolve p v = Core.Promise.try_resolve p (Ok v)
    let reject p e = Core.Promise.try_resolve p (Error e)

    (* Off-fiber wait: external domains (and anything else outside a
       handler) block on a condition variable armed by a waiter. *)
    let block p =
      let m = Mutex.create () in
      let c = Condition.create () in
      let cell = ref None in
      ignore
        (Core.Promise.add_waiter p (fun r ->
             Mutex.lock m;
             cell := Some r;
             Condition.broadcast c;
             Mutex.unlock m)
          : bool);
      Mutex.lock m;
      while Option.is_none !cell do
        Condition.wait c m
      done;
      let r = match !cell with Some r -> r | None -> assert false in
      Mutex.unlock m;
      r

    (* On a fiber this suspends the fiber (the worker moves on to other
       tasks); elsewhere it blocks the calling domain. *)
    let result p =
      match Core.Promise.poll p with
      | Some r -> r
      | None -> ( try Effect.perform (Await p) with Effect.Unhandled _ -> block p)

    let await p = match result p with Ok v -> v | Error e -> raise e
  end

  (* ---------------------------------------------------------------- *)
  (* Monitoring                                                       *)

  type pool_obs = {
    name : string;
    workers : int;
    live_workers : int;
    worker_deaths : int;
    task_exceptions : int;
    tasks_completed : int;
    aborted_promises : int;
    tasks_spawned : int;
    steals : int;
    backlog : int;  (** injector + deques, racy *)
  }

  let pool_backlog p =
    Q.approx_length p.injector
    + Array.fold_left (fun acc d -> acc + Core.Deque.length d) 0 p.deques

  let observe_pool p =
    {
      name = p.pname;
      workers = p.pool_workers;
      live_workers = Atomic.get p.live;
      worker_deaths = Atomic.get p.deaths;
      task_exceptions = Atomic.get p.exceptions;
      tasks_completed = Atomic.get p.completed;
      aborted_promises = Atomic.get p.aborted;
      tasks_spawned = Atomic.get p.spawned;
      steals = Atomic.get p.steal_count;
      backlog = pool_backlog p;
    }

  let obs t = List.rev_map observe_pool (Atomic.get t.pools) (* default first *)
  let pending t = List.fold_left (fun acc p -> acc + pool_backlog p) 0 (Atomic.get t.pools)
  let injector_snapshot t name = Q.snapshot (find_pool t name).injector

  (* ---------------------------------------------------------------- *)
  (* Shutdown                                                         *)

  let shutdown t =
    if Atomic.compare_and_set t.shutdown_started false true then begin
      let pools = Atomic.get t.pools in
      (* Gate order matters per pool ([accepting] then [stopping], see
         Sched_protocol); across pools, close all admission first so a
         fan-out spanning pools cannot re-admit into a pool that
         already drained. *)
      List.iter (fun p -> Proto.begin_shutdown p.proto) pools;
      Mutex.lock t.lock;
      let ds = t.domains in
      t.domains <- [];
      Mutex.unlock t.lock;
      List.iter Domain.join ds;
      (* Post-join sweep: claim-and-abort everything still queued, in
         injectors and deques alike.  Loop until a full pass moves
         nothing — aborting a suspended fiber unwinds it here, and the
         unwind can reschedule continuations into the (now
         worker-less) injector, which the next pass claims.  Injected
         kills during the sweep claim nothing (all windows are
         pre-commit), so retrying is sound. *)
      let abort_one tk = if Proto.claim tk then (try tk.Proto.abort () with _ -> ()) in
      let sweep_pool p =
        let moved = ref 0 in
        let h = ref (Q.register p.injector) in
        let rec drain_injector () =
          match Q.dequeue p.injector !h with
          | Some tk ->
            incr moved;
            abort_one tk;
            drain_injector ()
          | None -> ()
          | exception Inject.Killed _ ->
            Q.retire p.injector !h;
            h := Q.register p.injector;
            drain_injector ()
        in
        drain_injector ();
        Q.retire p.injector !h;
        Array.iter
          (fun d ->
            let rec drain_deque () =
              match Core.Deque.steal d with
              | Some tk ->
                incr moved;
                abort_one tk;
                drain_deque ()
              | None -> ()
              | exception Inject.Killed _ -> drain_deque ()
            in
            drain_deque ())
          p.deques;
        !moved
      in
      let rec sweep () =
        if List.fold_left (fun acc p -> acc + sweep_pool p) 0 pools > 0 then sweep ()
      in
      sweep ();
      (* Promise backstop: the sweep reaches every ticket still in a
         queue, but a ticket can be unreachable — a worker killed
         mid-dequeue took it with it (the queue's crashed-consumer
         semantics), or a killed [try_enqueue] lost it before it
         linearized.  Resolve every registered promise still pending
         with [Error Shutdown].  Firing a waiter can resume a fiber
         inline here ([schedule] runs tickets on this domain once
         [stopping] is set), and that fiber can register new promises
         on a rejected spawn — so loop, re-sweeping, until a pass
         resolves nothing. *)
      let backstop_pool p =
        Mutex.lock p.reg_lock;
        let batch = Atomic.exchange p.registry [] in
        Mutex.unlock p.reg_lock;
        List.fold_left (fun acc e -> if e.backstop () then acc + 1 else acc) 0 batch
      in
      let rec backstop () =
        let n = List.fold_left (fun acc p -> acc + backstop_pool p) 0 pools in
        sweep ();
        if n > 0 then backstop ()
      in
      backstop ();
      Atomic.set t.shutdown_done true
    end
    else
      (* Idempotent; every caller returns only once the first shutdown
         finished its join + sweep. *)
      while not (Atomic.get t.shutdown_done) do
        Domain.cpu_relax ()
      done
end
