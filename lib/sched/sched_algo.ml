(* The scheduler's lock-free core — promises and per-worker Chase–Lev
   work-stealing deques — as a functor over the atomic primitives, the
   observability probe and the fault injector, exactly like
   [Wfq.Wfqueue_algo]: [Simsched.Sim.Sched_core] instantiates this
   text on the simsched shim and model-checks the steal-vs-pop and
   resolve-vs-await races, while the production build
   ([Sched.Scheduler]) compiles both tiers out (bench gate).

   The deque closes the ROADMAP note that the SPMC ticket queue in
   [lib/topology] is not a stealing deque: SPMC consumers all contend
   on one head FAA, whereas here the owner works uncontended at the
   bottom of its own ring and only thieves synchronize at the top, so
   locally spawned tasks run LIFO (cache-warm) and only load imbalance
   pays a CAS. *)

module Make (A : Wfq.Atomic_prims.S) (P : Obs.Probe.S) (I : Inject.S) = struct
  module Promise = struct
    (* A write-once result cell.  The whole promise is one atomic
       state word: [Pending waiters] until resolution, then [Done r]
       forever.  Registration and resolution both CAS the state, so
       the two races the test suite explores — resolve-vs-resolve
       (exactly-once) and resolve-vs-await (the waiter fires exactly
       once, on whichever side wins) — are decided by single CASes on
       one word.

       Waiters are one-shot closures.  They are registered LIFO (list
       cons) and fired FIFO (reversed at resolution) so fan-in chains
       resume in registration order. *)

    type ('a, 'e) waiter = ('a, 'e) result -> unit

    type ('a, 'e) state =
      | Pending of ('a, 'e) waiter list
      | Done of ('a, 'e) result

    type ('a, 'e) t = ('a, 'e) state A.t

    let create () : ('a, 'e) t = A.make (Pending [])

    let poll p = match A.get p with Done r -> Some r | Pending _ -> None
    let is_resolved p = match A.get p with Done _ -> true | Pending _ -> false

    (* Register [w] to fire on resolution.  If the promise is already
       resolved, [w] fires synchronously, now — the caller must not
       hold locks.  Returns [true] if the waiter was parked, [false]
       if it fired before returning (callers use this only as a
       hint). *)
    let rec add_waiter p w =
      match A.get p with
      | Done r ->
        w r;
        false
      | Pending ws as old ->
        if A.compare_and_set p old (Pending (w :: ws)) then true else add_waiter p w

    (* Resolve to [r] unless someone beat us to it.  Returns [true]
       for the unique winner, which fires every parked waiter before
       returning; losers see [false] and must not touch the waiters.
       The injection point sits between computing the new state and
       committing it: a victim killed there has published nothing, so
       the promise stays [Pending] and any other party (the
       worker-death recovery path, the shutdown drain) can still
       resolve it — the no-stranding argument leans on exactly this
       window being harmless. *)
    let rec try_resolve p r =
      match A.get p with
      | Done _ -> false
      | Pending ws as old ->
        if I.enabled then I.hit Inject.Sched_resolve_pending;
        if A.compare_and_set p old (Done r) then begin
          List.iter (fun w -> w r) (List.rev ws);
          true
        end
        else try_resolve p r
  end

  module Deque = struct
    (* Chase–Lev work-stealing deque on a bounded power-of-two ring.
       One owner pushes and pops at [bottom]; any number of thieves
       CAS [top] forward.  Indices grow monotonically; a cell is
       addressed by [index land mask].

       Why a stale thief can never take a wrong value: a thief reads
       [cells.(t)] and then CASes [top] from [t].  For the slot to
       have been recycled by a push, [bottom] must first reach
       [t + capacity], which the push-side bound ([b - t < capacity])
       permits only after [top] has advanced past [t] — and then the
       thief's CAS (expecting [t]) fails, discarding the stale read.
       The owner-vs-thief race on the last element is decided by the
       same CAS on [top] (pop takes the thief's side for that one
       cell), so every pushed value is taken exactly once.

       Cells hold ['a option] so the taker can null its slot and the
       ring does not pin dead tasks for a full lap. *)

    type 'a t = {
      top : int A.t;  (** next index thieves steal from *)
      bottom : int A.t;  (** next index the owner pushes to *)
      cells : 'a option A.t array;
      mask : int;
      steals : int A.t;  (** event tier: successful steals (probe builds) *)
      steal_races : int A.t;  (** event tier: lost top CASes *)
    }

    let create ?(capacity = 256) () =
      if capacity < 2 || capacity land (capacity - 1) <> 0 then
        invalid_arg "Sched_algo.Deque.create: capacity must be a power of two >= 2";
      {
        top = A.make_contended 0;
        bottom = A.make_contended 0;
        cells = Array.init capacity (fun _ -> A.make None);
        mask = capacity - 1;
        steals = A.make 0;
        steal_races = A.make 0;
      }

    let capacity d = d.mask + 1
    let length d = max 0 (A.get d.bottom - A.get d.top) (* racy, monitoring only *)
    let steals d = A.get d.steals
    let steal_races d = A.get d.steal_races

    (* Owner only.  Returns [false] when the ring is full ([capacity]
       unpopped items); the caller overflows to the shared injector. *)
    let push d v =
      let b = A.get d.bottom in
      let t = A.get d.top in
      if b - t > d.mask then false
      else begin
        A.set d.cells.(b land d.mask) (Some v);
        A.set d.bottom (b + 1);
        true
      end

    (* Owner only.  LIFO end.  On the last element the owner races
       thieves with the same CAS on [top] they use, so exactly one
       side takes it. *)
    let pop d =
      let b = A.get d.bottom - 1 in
      A.set d.bottom b;
      let t = A.get d.top in
      if b > t then begin
        let cell = d.cells.(b land d.mask) in
        let v = A.get cell in
        A.set cell None;
        v
      end
      else if b = t then begin
        (* one element left: win it from the thieves or concede it *)
        let won = A.compare_and_set d.top t (t + 1) in
        A.set d.bottom (t + 1);
        if won then begin
          let cell = d.cells.(b land d.mask) in
          let v = A.get cell in
          A.set cell None;
          v
        end
        else None
      end
      else begin
        (* empty; undo the speculative decrement *)
        A.set d.bottom t;
        None
      end

    (* Any domain.  FIFO end.  The injection point sits in the claim
       window — after reading the cell, before the CAS that takes it:
       a thief killed there has claimed nothing, so the task is still
       there for the owner or the next thief. *)
    let steal d =
      let t = A.get d.top in
      let b = A.get d.bottom in
      if t >= b then None
      else begin
        let v = A.get d.cells.(t land d.mask) in
        if I.enabled then I.hit Inject.Sched_steal_pending;
        match v with
        | None -> None (* owner took it between our reads *)
        | Some _ ->
          if A.compare_and_set d.top t (t + 1) then begin
            if P.enabled then ignore (A.fetch_and_add d.steals 1);
            v
          end
          else begin
            if P.enabled then ignore (A.fetch_and_add d.steal_races 1);
            None
          end
      end
  end
end
