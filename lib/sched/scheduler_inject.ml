(* The storm build of the scheduler: the same runtime text with the
   probe and the fault injector compiled in, over the instrumented
   queue ([Wfq.Wfqueue_inject]) so a seeded [Inject.Plan] can kill or
   park victims at every queue window {e and} the three scheduler
   windows ([Sched_steal_pending] / [Sched_park_pending] /
   [Sched_resolve_pending]).  Used by test/test_sched.ml's kill storms
   and the [repro sched] driver; transparent while no controller is
   installed. *)

include Runtime.Make (Obs.Probe.Enabled) (Inject.Enabled) (Wfq.Wfqueue_inject)
