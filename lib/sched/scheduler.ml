(* The production scheduler: the runtime of [Runtime.Make] with both
   the observability probe and the fault injector compiled out, on the
   production wait-free queue as the global injector.  The bench gate
   (BENCH_pr10.json vs the pr9 baseline) is the proof that the two
   disabled tiers really vanish from the queue hot path this build
   drives. *)

include Runtime.Make (Obs.Probe.Disabled) (Inject.Disabled) (Wfq.Wfqueue)
