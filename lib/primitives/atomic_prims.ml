(** The atomic primitives the queue algorithm is written against.

    The algorithm ({!Wfqueue_algo.Make}) is a functor over this
    signature so that the same algorithm text runs both on real
    hardware atomics ({!Real}, used by {!Wfqueue}) and on the
    simulated, schedule-controlled atomics of the model-checking
    harness ([Simsched.Sim_atomic]), where every primitive is a
    preemption point that a test scheduler chooses to interleave.

    Contended locations get two layout-aware constructions so the
    algorithm text can be explicit about which words are hot:

    - {!S.make_contended} allocates a standalone atomic padded to its
      own cache line(s) ({!Padding}); on the simulated atomics padding
      is a no-op, so the model-checked text is the shipped text.
    - {!S.Counters} is an array of independent integer counters laid
      out so that no two counters share a cache line — the layout the
      false-sharing microbenchmark quantifies. *)

module type COUNTERS = sig
  type t
  (** A fixed-length array of independent atomic integer counters,
      laid out so that no two counters share a cache line. *)

  val make : len:int -> init:int -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val fetch_and_add : t -> int -> int -> int
  val compare_and_set : t -> int -> int -> int -> bool
end

module type S = sig
  type 'a t

  val make : 'a -> 'a t

  val make_contended : 'a -> 'a t
  (** Like [make], but the cell is padded to its own cache line(s) so
      that writes to it cannot invalidate unrelated hot words (and
      vice versa).  Semantically identical to [make]; use for the
      queue-level indices and other contended words. *)

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Physical-equality compare-and-set, as [Stdlib.Atomic]. *)

  val fetch_and_add : int t -> int -> int
  val cpu_relax : unit -> unit

  module Counters : COUNTERS
end

(* Padded counters on hardware atomics, shared by {!Real} and
   {!Emulated_faa}: a cache-line-strided [int Atomic.t array].  Two
   layout mechanisms compose: the live slot for counter [i] is
   [i * stride], so the array's own pointer slots sit one padding unit
   apart; and each live box is [Padding.make_padded_atomic], so the
   boxes themselves span a full padding unit wherever the GC moves
   them.  The dummy boxes in between are allocated in the same minor-
   heap sweep and keep the live boxes physically separated even
   before promotion. *)
module Hardware_counters = struct
  type t = int Atomic.t array

  let stride = Padding.cache_line_words

  let make ~len ~init =
    if len < 0 then invalid_arg "Atomic_prims.Counters.make: negative length";
    Array.init (len * stride) (fun i ->
        if i mod stride = 0 then Padding.make_padded_atomic init else Atomic.make init)

  let length t = Array.length t / stride
  let get t i = Atomic.get t.(i * stride)
  let set t i v = Atomic.set t.(i * stride) v
  let fetch_and_add t i n = Atomic.fetch_and_add t.(i * stride) n
  let compare_and_set t i old nw = Atomic.compare_and_set t.(i * stride) old nw
end

(** Hardware atomics: [Stdlib.Atomic] (sequentially consistent). *)
module Real : S with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let make_contended v = Padding.make_padded_atomic v
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
  let cpu_relax = Domain.cpu_relax

  module Counters = Hardware_counters
end

(** The paper's IBM Power7 configuration: the architecture has no
    native fetch-and-add, so FAA is emulated with an LL/SC (here CAS)
    retry loop — which "sacrifices the wait freedom of our queue ...
    [but] still performs well in practice" (§3.1, §5.2).  Everything
    else is hardware-atomic.  Instantiating {!Wfqueue_algo.Make} over
    this gives the queue the paper benchmarked on Power7. *)
module Emulated_faa : S with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let make_contended v = Padding.make_padded_atomic v
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set

  (* The CAS retry loop backs off exponentially after the first
     failure: bare spinning makes every retry a fresh cache-line
     acquisition, so under contention the loop can livelock-crawl
     while the line ping-pongs (the Power7 analogue should degrade
     gracefully, as LL/SC with backoff does).  The backoff state is
     domain-local and reused across calls — allocating a fresh
     [Backoff.t] per contended FAA put an allocation on exactly the
     path that runs hottest under contention, and reset its
     exponential history every call.  [Backoff.reset] on entry keeps
     calls independent while the cell itself is recycled. *)
  let domain_backoff = Domain.DLS.new_key (fun () -> Backoff.create ())

  let fetch_and_add r n =
    let old = Atomic.get r in
    if Atomic.compare_and_set r old (old + n) then old
    else begin
      let b = Domain.DLS.get domain_backoff in
      Backoff.reset b;
      let rec retry () =
        Backoff.backoff b;
        let old = Atomic.get r in
        if Atomic.compare_and_set r old (old + n) then old else retry ()
      in
      retry ()
    end

  let cpu_relax = Domain.cpu_relax

  module Counters = struct
    include Hardware_counters

    (* Counter FAA goes through the same CAS-emulation as the scalar
       [fetch_and_add], so the Power7 analogue is consistent —
       including the reused domain-local backoff. *)
    let fetch_and_add t i n =
      let old = get t i in
      if compare_and_set t i old (old + n) then old
      else begin
        let b = Domain.DLS.get domain_backoff in
        Backoff.reset b;
        let rec retry () =
          Backoff.backoff b;
          let old = get t i in
          if compare_and_set t i old (old + n) then old else retry ()
        in
        retry ()
      end
  end
end
