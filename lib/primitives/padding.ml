(* Cache-line padding for contended heap blocks.

   OCaml 5.1 has no [Atomic.make_contended] (that arrives in 5.2) and
   no control over heap placement: every [Atomic.t] is a two-word box
   (header + one field) that the minor heap allocates back to back
   with whatever was allocated around it.  Two hot atomics allocated
   near each other — or one hot atomic next to anything another domain
   writes — therefore share a cache line, and every FAA/CAS on one
   invalidates the other's line on every other core: false sharing,
   the exact effect the paper's "as fast as fetch-and-add" thesis
   assumes away by placing each hot word on its own line.

   [copy_as_padded] is the standard OCaml remedy (the technique behind
   the multicore-magic library, used by Saturn and kcas): re-allocate
   the block with dummy trailing fields so the whole block spans at
   least one full padding unit.  The runtime primitives that implement
   [Atomic] operate on field 0 and ignore a block's size, so a padded
   atomic behaves exactly like an unpadded one; the GC scans the
   dummy fields (they hold [()]) at a negligible one-off cost.

   The padding unit is 128 bytes — two 64-byte lines — to also defeat
   the adjacent-line prefetcher on Intel parts, matching
   multicore-magic's choice.  Padding bounds the distance between two
   padded blocks' hot words from below (>= one unit); it cannot align
   a block to a line boundary, so a hot word can still share its line
   with the *tail* of the previous block — dead padding when that
   neighbour is also padded, which is why all hot words of one
   subsystem should be padded together. *)

let cache_line_bytes = 128
let word_bytes = Sys.word_size / 8
let cache_line_words = cache_line_bytes / word_bytes

(* Total block size (header + fields) of a padded block, in words. *)
let padded_block_words = cache_line_words

let copy_as_padded (v : 'a) : 'a =
  let r = Obj.repr v in
  if
    (not (Obj.is_block r))
    || Obj.tag r >= Obj.no_scan_tag (* strings, float records, customs *)
    || Obj.size r >= padded_block_words - 1
  then v
  else begin
    let n = Obj.size r in
    (* [Obj.new_block] initializes scannable blocks' fields to [()],
       so the dummy tail is always a valid value for the GC. *)
    let b = Obj.new_block (Obj.tag r) (padded_block_words - 1) in
    for i = 0 to n - 1 do
      Obj.set_field b i (Obj.field r i)
    done;
    Obj.obj b
  end

let make_padded_atomic v = copy_as_padded (Atomic.make v)
