(** Cache-line padding for contended heap blocks (multicore-magic's
    [copy_as_padded] technique, implemented locally: OCaml 5.1 has no
    [Atomic.make_contended]).

    Padded blocks span at least {!cache_line_bytes} bytes, so two
    padded blocks' first fields can never share a cache line (false
    sharing between them is impossible); see padding.ml for what this
    does and does not guarantee about unpadded neighbours. *)

val cache_line_bytes : int
(** The padding unit: 128 bytes (two 64-byte lines, to defeat
    adjacent-line prefetching). *)

val cache_line_words : int
(** {!cache_line_bytes} in words (16 on 64-bit). *)

val copy_as_padded : 'a -> 'a
(** A copy of the given heap block, re-allocated with dummy trailing
    fields so the block spans a full padding unit.  Identity on
    immediates, on blocks the GC does not scan (strings, float
    records, custom blocks such as [Mutex.t]), and on blocks already
    at least a padding unit large.

    {b Call at construction time only}, before the block is shared:
    the copy is a distinct block, so padding an object other code
    already references would split its state. *)

val make_padded_atomic : 'a -> 'a Atomic.t
(** [copy_as_padded (Atomic.make v)]: a standalone atomic on its own
    padding unit.  The [Atomic] primitives operate on field 0 and
    ignore block size, so it behaves exactly like an unpadded one. *)
