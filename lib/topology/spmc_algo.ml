(* The SPMC variant: consumers contend on one FAA'd head ticket
   (exactly the paper's dequeue discipline) while the single producer
   deposits in private position order with no FAA.  The producer
   publishes a resolved frontier ([tail_pub], single-writer) that
   lets a ticket below it take its value with a plain load — the CAS
   appears only on the racy boundary.

   Ticket-vs-deposit race: a consumer whose ticket [i] is at or past
   the published frontier cannot wait for the producer (wait-freedom),
   so it poisons the cell ([bottom -> top] CAS) and reports EMPTY —
   legal, because at that moment every completed enqueue sits below
   [tail_pub <= i].  The producer, finding its next cell poisoned,
   concedes it and retries at the successor.  That skip loop is the
   one unbounded-looking path: each iteration is charged to exactly
   one completed EMPTY dequeue by a concurrent consumer, so the
   producer's work is bounded by consumers' completed operations —
   the same "bounded by others' progress" currency as the paper's
   helping, honest amortized wait-freedom rather than a per-op
   constant.  Consumers are wait-free outright: FAA, bounded walk,
   one load or one CAS.

   Reclamation: each ticket resolves its cell exactly once (value
   taken, or poisoned-and-conceded); a per-segment resolved count plus
   the producer frontier tells when a segment is dead, and the
   consumer crossing the boundary unlinks it with a [first] CAS.  An
   unresolved ticket pins its segment — [Segs] pinning rule. *)

module Make (A : Primitives.Atomic_prims.S) (P : Obs.Probe.S) (I : Inject.S) = struct
  module Seg = Segs.Make (A)
  module Pl = Plumbing.Make (A)
  module C = Obs.Counters

  type pside = {
    mutable pos : int;
    mutable seg : Seg.seg;  (* deposit walk cache (hint) *)
    mutable seg_b : int;  (* base [seg] was trusted at; min_int = never *)
  }

  type 'a handle = {
    hid : int;
    stats : C.t;
    mutable cache : Seg.seg;  (* consumer walk cache (hint) *)
    mutable cache_b : int;  (* base [cache] was trusted at; min_int = never *)
    mutable is_p : bool;
    mutable retired : bool;
  }

  type 'a t = {
    segs : Seg.t;
    head : int A.t;  (* contended: every consumer FAAs it *)
    tail_pub : int A.t;  (* resolved frontier; single-writer (producer) *)
    p : pside;  (* producer-private; padded *)
    producer : Pl.Role.t;
    registry : 'a handle Pl.Registry.t;
    retired_ops : C.t;
  }

  let probe_enabled = P.enabled
  let injector_enabled = I.enabled

  let create ?patience:_ ?(segment_shift = 10) ?(max_garbage = 16) ?(reclamation = true) () =
    let segs =
      Seg.make ~size:(1 lsl segment_shift) ~pool_limit:(max 1 max_garbage)
        ~pool_enabled:reclamation
    in
    let s0 = A.get segs.Seg.first in
    {
      segs;
      head = A.make_contended 0;
      tail_pub = A.make_contended 0;
      p = Primitives.Padding.copy_as_padded { pos = 0; seg = s0; seg_b = min_int };
      producer = Pl.Role.make ();
      registry = Pl.Registry.make ();
      retired_ops = C.create ();
    }

  let register t =
    let h =
      {
        hid = Pl.Registry.fresh_hid t.registry;
        stats = C.create_padded ();
        cache = A.get t.segs.Seg.first;
        cache_b = min_int;
        is_p = false;
        retired = false;
      }
    in
    Pl.Registry.add t.registry h;
    h

  let retire t h =
    if not h.retired then begin
      h.retired <- true;
      Pl.Registry.remove t.registry h;
      C.add ~into:t.retired_ops h.stats;
      if h.is_p then Pl.Role.release t.producer ~hid:h.hid;
      h.is_p <- false
    end

  let become_producer t h =
    Pl.Role.claim t.producer ~hid:h.hid ~queue:"Topology.Spmc" ~role:"producer";
    h.is_p <- true

  (* Unlink wholly-dead leading segments.  Any thread may call; the
     [first] CAS arbitrates, and the loop re-examines from the new
     head so a straggler segment (resolved late, after the boundary
     crossing that would have collected it) is picked up by the next
     boundary's sweep. *)
  let rec maybe_recycle t =
    let f = A.get t.segs.Seg.first in
    if
      A.get f.Seg.resolved = t.segs.Seg.size
      && A.get t.tail_pub >= A.get f.Seg.base + t.segs.Seg.size
    then
      match A.get f.Seg.next with
      | Seg.Link n ->
          if A.compare_and_set t.segs.Seg.first f n then begin
            Seg.recycle t.segs f;
            maybe_recycle t
          end
      | Seg.End _ | Seg.Recycled -> ()

  let resolve t s =
    let r = A.fetch_and_add s.Seg.resolved 1 in
    if r + 1 = t.segs.Seg.size then maybe_recycle t

  (* The producer's deposit: a top-level recursion over poisoned
     cells (see the header for the amortized bound). *)
  let rec deposit t h v =
    let i = t.p.pos in
    let s = Seg.find t.segs t.p.seg ~hint_base:t.p.seg_b i in
    t.p.seg <- s;
    t.p.seg_b <- Seg.cover t.segs i;
    (* cell located, value not yet visible: the hole window *)
    if I.enabled then I.hit Inject.Topo_enq_pending;
    if A.compare_and_set (Seg.cell s t.segs i) Cellword.bottom_w (Obj.repr v) then begin
      t.p.pos <- i + 1;
      A.set t.tail_pub (i + 1);
      h.stats.C.fast_enqueues <- h.stats.C.fast_enqueues + 1
    end
    else begin
      (* a ticket-holder poisoned [i] and reported EMPTY: concede the
         cell (it is that ticket's to resolve) and move on *)
      if P.enabled then begin
        h.stats.C.cells_skipped <- h.stats.C.cells_skipped + 1;
        h.stats.C.enq_cas_failures <- h.stats.C.enq_cas_failures + 1
      end;
      h.stats.C.slow_enqueues <- h.stats.C.slow_enqueues + 1;
      t.p.pos <- i + 1;
      A.set t.tail_pub (i + 1);
      deposit t h v
    end

  let enqueue t h v =
    if not h.is_p then become_producer t h;
    deposit t h v

  let enq_batch t h vs =
    if not h.is_p then become_producer t h;
    if P.enabled then begin
      h.stats.C.enq_batches <- h.stats.C.enq_batches + 1;
      h.stats.C.enq_batch_cells <- h.stats.C.enq_batch_cells + Array.length vs
    end;
    Array.iter (fun v -> deposit t h v) vs

  (* One head ticket, resolved exactly once. *)
  let dequeue_word t h =
    let i = A.fetch_and_add t.head 1 in
    (* ticket held, cell neither taken nor poisoned *)
    if I.enabled then I.hit Inject.Topo_deq_pending;
    let s = Seg.find t.segs h.cache ~hint_base:h.cache_b i in
    h.cache <- s;
    h.cache_b <- Seg.cover t.segs i;
    let c = Seg.cell s t.segs i in
    let w =
      if i < A.get t.tail_pub then begin
        (* the resolved frontier passed [i]: the cell holds a value (a
           poison below the frontier could only have been ours) *)
        let w = A.get c in
        A.set c Cellword.top_w;
        h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
        w
      end
      else if A.compare_and_set c Cellword.bottom_w Cellword.top_w then begin
        (* EMPTY, linearized at the poison: every completed enqueue
           sits below [tail_pub <= i] *)
        h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
        h.stats.C.empty_dequeues <- h.stats.C.empty_dequeues + 1;
        Cellword.bottom_w
      end
      else begin
        (* the producer deposited between the frontier check and the
           poison attempt: the value is ours *)
        if P.enabled then h.stats.C.deq_cas_failures <- h.stats.C.deq_cas_failures + 1;
        let w = A.get c in
        A.set c Cellword.top_w;
        h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
        w
      end
    in
    resolve t s;
    w

  let dequeue t h =
    let w = dequeue_word t h in
    if w == Cellword.bottom_w then None else Some (Obj.obj w)

  let dequeue_or t h default =
    let w = dequeue_word t h in
    if w == Cellword.bottom_w then default else Obj.obj w

  let rec deq_batch_loop t h (out : 'a option array) k j =
    if j = k then j
    else
      let w = dequeue_word t h in
      if w == Cellword.bottom_w then j
      else begin
        out.(j) <- Some (Obj.obj w);
        deq_batch_loop t h out k (j + 1)
      end

  let deq_batch t h k =
    if k <= 0 then [||]
    else begin
      if P.enabled then begin
        h.stats.C.deq_batches <- h.stats.C.deq_batches + 1;
        h.stats.C.deq_batch_cells <- h.stats.C.deq_batch_cells + k
      end;
      let out = Array.make k None in
      ignore (deq_batch_loop t h out k 0);
      out
    end

  let rec deq_batch_into_loop t h (out : 'a array) k n =
    if n = k then n
    else
      let w = dequeue_word t h in
      if w == Cellword.bottom_w then n
      else begin
        out.(n) <- Obj.obj w;
        deq_batch_into_loop t h out k (n + 1)
      end

  let deq_batch_into t h (out : 'a array) ~default =
    let k = Array.length out in
    if P.enabled then begin
      h.stats.C.deq_batches <- h.stats.C.deq_batches + 1;
      h.stats.C.deq_batch_cells <- h.stats.C.deq_batch_cells + k
    end;
    let n = deq_batch_into_loop t h out k 0 in
    Array.fill out n (k - n) default;
    n

  (* Burned (EMPTY) tickets advance [head] past the frontier, so this
     undercounts under racing empty dequeues; it is a gauge, and the
     clamp keeps it sane. *)
  let approx_length t = max 0 (A.get t.tail_pub - A.get t.head)

  let snapshot t : Obs.Snapshot.t =
    let ops = C.create () in
    C.add ~into:ops t.retired_ops;
    let live = Pl.Registry.live_list t.registry in
    List.iter (fun h -> C.add ~into:ops h.stats) live;
    {
      Obs.Snapshot.ops;
      segments = Seg.gauges t.segs;
      handles = { ring = List.length live; live = List.length live; free_slots = 0 };
      patience = 0;
      probe_enabled = P.enabled;
    }

  let reset_stats t =
    C.reset t.retired_ops;
    List.iter (fun h -> C.reset h.stats) (Pl.Registry.live_list t.registry)
end
