(* The MPSC variant, Jiffy-style (Adas & Friedman, arXiv:2010.14189):
   producers contend on one FAA'd tail ticket and deposit with a plain
   store — no CAS anywhere on the enqueue path, because the single
   consumer never claims a cell by poisoning it; it just walks.  The
   consumer owns everything else as private plain state.

   The hole problem: a producer that FAAs and then stalls (the
   [Topo_enq_pending] window) leaves a bottom cell *behind* faster
   producers' deposits.  The consumer must neither wait on the hole
   (that would forfeit wait-freedom) nor lose FIFO when the hole fills
   late.  Scheme: the consumer scans forward once per cell, recording
   still-bottom cells on a private [holes] list (ascending), and
   serves each dequeue from the lowest filled hole, else the scan
   frontier.  A still-bottom hole belongs to an enqueue that has not
   linearized yet (its value is unpublished), so dequeues passing it
   are legal; once it fills, it is the oldest unconsumed index and
   must be served before anything younger.

   Picking "the lowest filled" is where the care is: reads are
   sequential, so a hole read as bottom can fill *behind* the read
   while a younger candidate is found filled — taking the candidate
   then reorders the queue.  The discipline ([verify_oldest]): find
   any filled candidate, then re-read every hole strictly below it;
   a filled one becomes the candidate and the sweep restarts below
   *it*.  The candidate index strictly decreases, so the loop is
   bounded by the holes list — and each demotion is caused by a
   concurrent enqueue's completed deposit, the usual "bounded by
   others' progress" currency.  Cells transition bottom -> value
   monotonically (only the consumer tops them), so on the final
   sweep every read of bottom also held at the sweep's *first* read:
   that instant is the linearization point — the candidate was
   filled (its read happened earlier) and everything older was still
   unpublished.  The same monotone argument linearizes EMPTY at the
   dequeue's earliest read, so the all-bottom paths need no second
   pass.  [holes] is empty in the uncontended steady state, so the
   hot path allocates nothing; a cons per observed in-flight
   producer is the price of tolerating stalls and it is charged only
   under contention.

   Wait-freedom: enqueue is FAA + bounded [Segs.find] walk + store.
   Dequeue's hole sweeps are bounded by the number of producers that
   were mid-enqueue at scan time; the forward scan is bounded by the
   tail snapshot taken at the start.  No retry loops.

   Reclamation: the consumer advances [first] past segments wholly
   below the consumed prefix (min hole index, else the scan frontier)
   and recycles them — it is the sole advancer, so no CAS.  A stalled
   producer's un-filled hole pins its segment and everything after,
   bounding reclamation by the oldest in-flight enqueue, which is the
   honest best possible.  Middle segments full of consumed cells
   behind a hole are not unlinked early (a deliberate simplification;
   the holes list already keeps scans off them). *)

module Make (A : Primitives.Atomic_prims.S) (P : Obs.Probe.S) (I : Inject.S) = struct
  module Seg = Segs.Make (A)
  module Pl = Plumbing.Make (A)
  module C = Obs.Counters

  type cside = {
    mutable resume : int;  (* first never-examined index *)
    mutable r_seg : Seg.seg;  (* segment the scan resumes in *)
    mutable holes : (int * Seg.seg) list;  (* examined, still-bottom; ascending *)
    mutable cand_i : int;  (* scratch: candidate passing, avoids option boxes *)
    mutable cand_s : Seg.seg;  (* scratch: candidate's segment *)
  }

  type 'a handle = {
    hid : int;
    stats : C.t;
    mutable cache : Seg.seg;  (* producer walk cache (hint) *)
    mutable cache_b : int;  (* base [cache] was trusted at; min_int = never *)
    mutable is_c : bool;
    mutable retired : bool;
  }

  type 'a t = {
    segs : Seg.t;
    tail : int A.t;  (* contended: every producer FAAs it *)
    head_pub : int A.t;  (* values taken; single-writer (consumer) *)
    c : cside;  (* consumer-private; padded *)
    consumer : Pl.Role.t;
    registry : 'a handle Pl.Registry.t;
    retired_ops : C.t;
  }

  let probe_enabled = P.enabled
  let injector_enabled = I.enabled

  let create ?patience:_ ?(segment_shift = 10) ?(max_garbage = 16) ?(reclamation = true) () =
    let segs =
      Seg.make ~size:(1 lsl segment_shift) ~pool_limit:(max 1 max_garbage)
        ~pool_enabled:reclamation
    in
    let s0 = A.get segs.Seg.first in
    {
      segs;
      tail = A.make_contended 0;
      head_pub = A.make_contended 0;
      c =
        Primitives.Padding.copy_as_padded
          { resume = 0; r_seg = s0; holes = []; cand_i = 0; cand_s = s0 };
      consumer = Pl.Role.make ();
      registry = Pl.Registry.make ();
      retired_ops = C.create ();
    }

  let register t =
    let h =
      {
        hid = Pl.Registry.fresh_hid t.registry;
        stats = C.create_padded ();
        cache = A.get t.segs.Seg.first;
        cache_b = min_int;
        is_c = false;
        retired = false;
      }
    in
    Pl.Registry.add t.registry h;
    h

  let retire t h =
    if not h.retired then begin
      h.retired <- true;
      Pl.Registry.remove t.registry h;
      C.add ~into:t.retired_ops h.stats;
      if h.is_c then Pl.Role.release t.consumer ~hid:h.hid;
      h.is_c <- false
    end

  let become_consumer t h =
    Pl.Role.claim t.consumer ~hid:h.hid ~queue:"Topology.Mpsc" ~role:"consumer";
    h.is_c <- true

  let enqueue t h v =
    let i = A.fetch_and_add t.tail 1 in
    (* ticket owned, value unpublished: the Jiffy hole window *)
    if I.enabled then I.hit Inject.Topo_enq_pending;
    let s = Seg.find t.segs h.cache ~hint_base:h.cache_b i in
    h.cache <- s;
    h.cache_b <- Seg.cover t.segs i;
    A.set (Seg.cell s t.segs i) (Obj.repr v);
    h.stats.C.fast_enqueues <- h.stats.C.fast_enqueues + 1

  let enq_batch t h vs =
    let k = Array.length vs in
    if k > 0 then begin
      (* one FAA reserves [k] consecutive tickets; until each deposit
         lands, each reserved cell is an ordinary hole *)
      let i0 = A.fetch_and_add t.tail k in
      if I.enabled then I.hit Inject.Topo_enq_pending;
      if P.enabled then begin
        h.stats.C.enq_batches <- h.stats.C.enq_batches + 1;
        h.stats.C.enq_batch_cells <- h.stats.C.enq_batch_cells + k
      end;
      for j = 0 to k - 1 do
        let i = i0 + j in
        let s = Seg.find t.segs h.cache ~hint_base:h.cache_b i in
        h.cache <- s;
        h.cache_b <- Seg.cover t.segs i;
        A.set (Seg.cell s t.segs i) (Obj.repr vs.(j))
      done;
      h.stats.C.fast_enqueues <- h.stats.C.fast_enqueues + k
    end

  (* The consumed prefix: every index below it was taken or is a
     recorded hole; the lowest hole (if any) caps it. *)
  let prefix_bound t = match t.c.holes with (i, _) :: _ -> i | [] -> t.c.resume

  (* Advance [first] past wholly-consumed segments and recycle them.
     Sole advancer: the consumer.  Stops at the chain end ([End]) so
     there is always a live segment to stand on. *)
  let rec advance_first t =
    let bound = prefix_bound t in
    let f = A.get t.segs.Seg.first in
    if bound >= A.get f.Seg.base + t.segs.Seg.size then
      match A.get f.Seg.next with
      | Seg.Link n ->
          A.set t.segs.Seg.first n;
          if t.c.r_seg == f then t.c.r_seg <- n;
          Seg.recycle t.segs f;
          advance_first t
      | Seg.End _ | Seg.Recycled -> ()

  let take t h s i w =
    A.set (Seg.cell s t.segs i) Cellword.top_w;
    A.set t.head_pub (A.get t.head_pub + 1);
    h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
    advance_first t;
    w

  (* Lowest hole currently filled, if any: candidate left in
     [cand_i]/[cand_s], its word returned ([bottom_w] = none found).
     Allocation-free; does not mutate the list. *)
  let rec hole_candidate t = function
    | [] -> Cellword.bottom_w
    | (i, s) :: rest ->
        let w = A.get (Seg.cell s t.segs i) in
        if w == Cellword.bottom_w then hole_candidate t rest
        else begin
          t.c.cand_i <- i;
          t.c.cand_s <- s;
          w
        end

  (* The FIFO verification of the header: re-read every hole strictly
     below the candidate in [cand_i]/[cand_s]; a filled one demotes
     the candidate and restarts the sweep below it.  On return the
     final sweep's first read is the linearization instant. *)
  let rec verify_oldest t w holes =
    match holes with
    | (j, sj) :: rest when j < t.c.cand_i ->
        let wj = A.get (Seg.cell sj t.segs j) in
        if wj == Cellword.bottom_w then verify_oldest t w rest
        else begin
          t.c.cand_i <- j;
          t.c.cand_s <- sj;
          (* demoted: restart the sweep below the new candidate *)
          verify_oldest t wj t.c.holes
        end
    | _ -> w

  let rec remove_hole i = function
    | [] -> []
    | (j, _) :: rest when j = i -> rest
    | hole :: rest -> hole :: remove_hole i rest

  (* Forward scan from the frontier toward the tail snapshot.  A
     still-bottom cell becomes a hole (skipped, recorded); a filled
     cell becomes the candidate (NOT taken here — it must survive
     [verify_oldest] first, so [resume] is not advanced past it yet).
     [End] mid-scan means indices up to [tail0] belong to producers
     that have not even linked their segment yet — all holes by
     definition, and [Segs.find]'s walk will materialize the chain
     when they do. *)
  let rec scan t h tail0 i s =
    if i >= tail0 then begin
      t.c.resume <- i;
      t.c.r_seg <- s;
      Cellword.bottom_w
    end
    else
      let b = A.get s.Seg.base in
      if i >= b + t.segs.Seg.size then
        match A.get s.Seg.next with
        | Seg.Link n -> scan t h tail0 i n
        | Seg.End _ ->
            t.c.resume <- i;
            t.c.r_seg <- s;
            Cellword.bottom_w
        | Seg.Recycled ->
            (* impossible: only the consumer recycles, never at or
               beyond its own frontier *)
            assert false
      else
        let w = A.get (Seg.cell s t.segs i) in
        if w == Cellword.bottom_w then begin
          t.c.holes <- t.c.holes @ [ (i, s) ];
          if P.enabled then h.stats.C.cells_skipped <- h.stats.C.cells_skipped + 1;
          scan t h tail0 (i + 1) s
        end
        else begin
          t.c.cand_i <- i;
          t.c.cand_s <- s;
          w
        end

  let dequeue_word t h =
    if not h.is_c then become_consumer t h;
    let w = hole_candidate t t.c.holes in
    if w != Cellword.bottom_w then begin
      (* fast path: serve from the holes list, no scan *)
      let w = verify_oldest t w t.c.holes in
      t.c.holes <- remove_hole t.c.cand_i t.c.holes;
      take t h t.c.cand_s t.c.cand_i w
    end
    else begin
      let tail0 = A.get t.tail in
      let w = scan t h tail0 t.c.resume t.c.r_seg in
      if w == Cellword.bottom_w then begin
        (* legal EMPTY: at this dequeue's earliest read, every index
           below the tail snapshot was consumed or still bottom (an
           un-linearized in-flight enqueue) *)
        h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
        h.stats.C.empty_dequeues <- h.stats.C.empty_dequeues + 1;
        w
      end
      else begin
        let fi = t.c.cand_i and fs = t.c.cand_s in
        let w = verify_oldest t w t.c.holes in
        if t.c.cand_i = fi then begin
          (* the frontier cell survived: consume it and move past *)
          t.c.resume <- fi + 1;
          t.c.r_seg <- fs
        end
        else begin
          (* an older hole filled behind the scan: serve it and leave
             the frontier cell for the next scan to rediscover *)
          t.c.holes <- remove_hole t.c.cand_i t.c.holes;
          t.c.resume <- fi;
          t.c.r_seg <- fs
        end;
        take t h t.c.cand_s t.c.cand_i w
      end
    end

  let dequeue t h =
    let w = dequeue_word t h in
    if w == Cellword.bottom_w then None else Some (Obj.obj w)

  let dequeue_or t h default =
    let w = dequeue_word t h in
    if w == Cellword.bottom_w then default else Obj.obj w

  let rec deq_batch_loop t h (out : 'a option array) k j =
    if j = k then j
    else
      let w = dequeue_word t h in
      if w == Cellword.bottom_w then j
      else begin
        out.(j) <- Some (Obj.obj w);
        deq_batch_loop t h out k (j + 1)
      end

  let deq_batch t h k =
    if k <= 0 then [||]
    else begin
      if P.enabled then begin
        h.stats.C.deq_batches <- h.stats.C.deq_batches + 1;
        h.stats.C.deq_batch_cells <- h.stats.C.deq_batch_cells + k
      end;
      let out = Array.make k None in
      ignore (deq_batch_loop t h out k 0);
      out
    end

  let rec deq_batch_into_loop t h (out : 'a array) k n =
    if n = k then n
    else
      let w = dequeue_word t h in
      if w == Cellword.bottom_w then n
      else begin
        out.(n) <- Obj.obj w;
        deq_batch_into_loop t h out k (n + 1)
      end

  let deq_batch_into t h (out : 'a array) ~default =
    let k = Array.length out in
    if P.enabled then begin
      h.stats.C.deq_batches <- h.stats.C.deq_batches + 1;
      h.stats.C.deq_batch_cells <- h.stats.C.deq_batch_cells + k
    end;
    let n = deq_batch_into_loop t h out k 0 in
    Array.fill out n (k - n) default;
    n

  let approx_length t = max 0 (A.get t.tail - A.get t.head_pub)

  let snapshot t : Obs.Snapshot.t =
    let ops = C.create () in
    C.add ~into:ops t.retired_ops;
    let live = Pl.Registry.live_list t.registry in
    List.iter (fun h -> C.add ~into:ops h.stats) live;
    {
      Obs.Snapshot.ops;
      segments = Seg.gauges t.segs;
      handles = { ring = List.length live; live = List.length live; free_slots = 0 };
      patience = 0;
      probe_enabled = P.enabled;
    }

  let reset_stats t =
    C.reset t.retired_ops;
    List.iter (fun h -> C.reset h.stats) (Pl.Registry.live_list t.registry)
end
