(* Linked fixed-size segments with in-place recycling — the "infinite
   array" of the paper (§2) rebuilt for the specialized variants,
   where the full hazard-pointer machinery of [Wfqueue_algo] would be
   overkill.  The variants' topology constraints give a cheaper safety
   argument (the pinning rule, below), so reclamation here is a
   bounded free pool plus cell re-bottoming, with no protect/validate
   handshake on the hot path.

   Per-cell [Obj.t A.t] boxes make a fresh segment cost a few words
   per covered operation, so recycling is not an optimization — it is
   what makes the variants meet the repo's allocation gate.  At steady
   state a segment crossing costs one [Link] block, one fresh [End]
   stamp and one pool cons per [size] operations: ~0.01 words/op at
   the default size.

   Pinning rule (why walkers need no hazard pointers): a walker enters
   [find] holding a ticket [i] that is not yet resolved.  Every
   variant recycles a segment only after all indices it covers are
   resolved (SPSC: the consumer passed them; MPSC: the consumer prefix
   passed them; SPMC: the resolved count hit [size] and the producer
   frontier passed the end).  So the segment that covers an unresolved
   [i] *in the chain* cannot be recycled out from under its walker.

   A covering base alone does NOT identify that segment.  A recycled
   segment can be popped from the pool and re-based — including by the
   walker's own [acquire] — to a range that covers [i] while it sits
   in another thread's private acquire→link window or back in the
   pool, re-bottomed.  Trusting a bare cached reference whose base
   happens to cover [i] hands the walker a segment that is not in the
   chain at all.  [find] therefore only trusts:

   - the anchor: [f = first] with [first == f] re-checked *after*
     reading [f]'s base.  Recycling advances [first] before the
     segment can reach the pool, so an unchanged [first] proves the
     base read saw an in-chain segment.  (The ABA where [f] is later
     re-linked and re-installed as first is benign: the base read then
     is its new, genuine in-chain base.)

   - successors: following [Link n] from a segment trusted at base
     [b] requires [n]'s base to equal [b + size].  Bases strictly
     advance across re-acquisitions, so a segment unlinked from a
     position can never carry that position's base again — a matching
     base proves [n] still holds its chain slot.

   - hints: callers cache the segment of their last operation together
     with the base at which it was then trusted.  The hint is believed
     only if that base arithmetically covers the new [i] *and* the
     segment's current base still equals it: unchanged means either
     never recycled since (still in chain), or recycled — which the
     pinning rule excludes while [i] in that range is unresolved.

   Any mismatch restarts from [first]; every restart is caused by
   another thread's completed append or recycle, so the walk is
   bounded by opponents' progress.

   The [End of int] link stamp closes the append race the same way:
   "last segment" is not a bare [Null] but a freshly allocated block
   naming the base it was installed for.  An appender CASes the exact
   [End] block it read — and only when the stamp equals the base it
   trusts — so a stale append onto a recycled-and-restamped tail fails
   instead of splicing a dead segment into the new chain. *)

module Make (A : Primitives.Atomic_prims.S) = struct
  type seg = {
    base : int A.t;  (* global index of cells.(0); reassigned on reuse *)
    cells : Obj.t A.t array;
    next : link A.t;
    resolved : int A.t;  (* SPMC: count of terminally handled cells *)
  }

  and link =
    | End of int  (* no successor; stamp = base this End was installed for *)
    | Link of seg
    | Recycled  (* detached; walkers restart from [first] *)

  type t = {
    size : int;
    mask : int;  (* size - 1; size is a power of two *)
    pool_enabled : bool;
    pool_limit : int;
    first : seg A.t;  (* oldest live segment; each variant's sole advancer differs *)
    pool : seg list A.t;
    pooled : int A.t;
    allocated : int A.t;  (* fresh segment allocations *)
    recycled : int A.t;  (* pool hits *)
    reclaimed : int A.t;  (* segments unlinked (recycle events) *)
    wasted : int A.t;  (* segments acquired but beaten to the append *)
    live : int A.t;  (* segments currently in the chain *)
  }

  let alloc_seg ~size ~base =
    {
      base = A.make base;
      cells = Array.init size (fun _ -> A.make Cellword.bottom_w);
      next = A.make (End base);
      resolved = A.make 0;
    }

  let make ~size ~pool_limit ~pool_enabled =
    let s0 = alloc_seg ~size ~base:0 in
    {
      size;
      mask = size - 1;
      pool_enabled;
      pool_limit;
      first = A.make s0;
      pool = A.make [];
      pooled = A.make 0;
      allocated = A.make 1;
      recycled = A.make 0;
      reclaimed = A.make 0;
      wasted = A.make 0;
      live = A.make 1;
    }

  let rec pool_pop t =
    match A.get t.pool with
    | [] -> None
    | s :: rest as old ->
        if A.compare_and_set t.pool old rest then begin
          ignore (A.fetch_and_add t.pooled (-1));
          Some s
        end
        else pool_pop t

  (* The segment must already be detached ([next] is moved to
     [Recycled] here, before the push, so a stale walker can never
     follow a pooled segment's old link) and its cells all-bottom.
     [pooled] can transiently overshoot [pool_limit] by the number of
     concurrent pushers; the bound is advisory.

     The [Recycled] transition is a CAS claim, not a blind store: only
     the releaser that performs the transition pushes.  A double
     release — e.g. a drainer killed after handing its segment to the
     pool, whose segment the switch epilogue then releases again —
     finds [Recycled] already in place and backs off, where a blind
     store would insert the segment twice and hand it to two acquirers
     (one segment spliced into two chains). *)
  let pool_push t s =
    let rec claim () =
      match A.get s.next with
      | Recycled -> false
      | old -> A.compare_and_set s.next old Recycled || claim ()
    in
    if claim () && t.pool_enabled && A.get t.pooled < t.pool_limit then begin
      ignore (A.fetch_and_add t.pooled 1);
      let rec push () =
        let old = A.get t.pool in
        if not (A.compare_and_set t.pool old (s :: old)) then push ()
      in
      push ()
    end

  (* A segment set up for linking at [base], owned exclusively by the
     caller until its link CAS.  The fresh [End base] block is what
     defeats stale appends (see the header). *)
  let acquire t ~base =
    match pool_pop t with
    | Some s ->
        ignore (A.fetch_and_add t.recycled 1);
        A.set s.base base;
        A.set s.resolved 0;
        A.set s.next (End base);
        s
    | None ->
        ignore (A.fetch_and_add t.allocated 1);
        alloc_seg ~size:t.size ~base

  (* Unlink-and-reset.  Caller guarantees the pinning rule: no index
     this segment covers can be walked again.  Cells are re-bottomed
     so recycled segments arrive virgin and stale value references do
     not outlive the segment's FIFO window. *)
  let recycle t s =
    ignore (A.fetch_and_add t.live (-1));
    ignore (A.fetch_and_add t.reclaimed 1);
    if t.pool_enabled then begin
      for i = 0 to t.size - 1 do
        A.set s.cells.(i) Cellword.bottom_w
      done;
      pool_push t s
    end
    else A.set s.next Recycled

  (* The base of the segment covering [i]: bases are size-aligned. *)
  let cover t i = i land lnot t.mask

  (* Locate (materializing as needed) the segment covering index [i],
     under the trust discipline of the header: anchor at [first] with
     a double read, hand trust down Links by base equality, append
     only when the [End] stamp matches the trusted base.  [walk]
     carries [b], the base its [s] was trusted at — it never re-reads
     a base it already trusts. *)
  let rec anchor t i =
    let f = A.get t.first in
    let b = A.get f.base in
    if A.get t.first != f then anchor t i else walk t f b i

  and walk t s b i =
    if b <= i && i < b + t.size then s
    else if b > i then
      (* overshot: [i] was resolved and its segment recycled before we
         anchored; the caller's ticket logic owns that case — but an
         in-[find] walker with unresolved [i] never sees it *)
      anchor t i
    else
      match A.get s.next with
      | Link n -> if A.get n.base = b + t.size then walk t n (b + t.size) i else anchor t i
      | Recycled -> anchor t i
      | End b_end as e ->
          if b_end <> b then anchor t i
          else begin
            let s' = acquire t ~base:(b + t.size) in
            if A.compare_and_set s.next e (Link s') then begin
              ignore (A.fetch_and_add t.live 1);
              walk t s' (b + t.size) i
            end
            else begin
              (* beaten to the append: someone linked the successor;
                 re-examine [s]'s link (still trusted at [b]) *)
              ignore (A.fetch_and_add t.wasted 1);
              pool_push t s';
              walk t s b i
            end
          end

  (* [hint] is the caller's cached segment, [hint_base] the base it
     was trusted at when cached (see the header's hint rule).  Callers
     refresh the cache with the returned segment and [cover t i]. *)
  let find t hint ~hint_base i =
    if hint_base = cover t i && A.get hint.base = hint_base then hint else anchor t i

  let cell s t i = s.cells.(i land t.mask)
  (* NOTE: valid only when [s] covers [i]; bases are size-aligned so
     [i land mask] is [i - base]. *)

  let gauges t : Obs.Snapshot.segments =
    {
      Obs.Snapshot.allocated = A.get t.allocated;
      reclaimed = A.get t.reclaimed;
      recycled = A.get t.recycled;
      wasted = A.get t.wasted;
      pooled = max 0 (A.get t.pooled);
      live = A.get t.live;
      cleanups = 0;
      cap = 0;
      cap_hits = 0;
    }
end
