(* Storm adaptive build: probe and injector compiled in, degrading to
   the storm build of the general queue so kills land in the backend
   windows too ([Topo_switch_draining] plus everything the general
   queue arms). *)

include
  Adaptive_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Enabled) (Inject.Enabled)
    (Wfq.Wfqueue_inject)
