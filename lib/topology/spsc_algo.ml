(* The SPSC variant: one producer, one consumer, no FAA, no CAS on
   the hot path.  FastForward-style cell synchronization (Giacomoni et
   al., PPoPP'08) on the paper's segment chain: the cell *is* the
   synchronization — it holds [bottom_w] until the producer's deposit,
   so the consumer decides EMPTY from one atomic load and neither side
   ever reads the other's index.

   Each side's position and current segment are private plain fields
   in a padded record; the only cross-core traffic is the value cell
   plus one single-writer published index per side, which feeds
   [approx_length] only — no hot-path read touches it.  Steady-state
   cost: enqueue = one cell store + one index store; dequeue = one
   cell load + one index store.

   Wait-freedom is immediate: no operation has a retry loop.  The
   producer's segment append has no competitor (the [End]-stamp CAS in
   [Segs.find] cannot lose when only one thread appends), and the
   consumer advances only over links the producer already installed.

   Role safety: the single-producer/single-consumer contract is
   checked, not assumed — first use claims the seat via [Plumbing.Role]
   and a second claimant raises [Invalid_argument].  Retire releases
   the seat, so sequential handoff is legal; the claim/release CAS
   edges also publish the private plain fields to the successor. *)

module Make (A : Primitives.Atomic_prims.S) (P : Obs.Probe.S) (I : Inject.S) = struct
  module Seg = Segs.Make (A)
  module Pl = Plumbing.Make (A)
  module C = Obs.Counters

  type side = { mutable pos : int; mutable seg : Seg.seg }

  type 'a handle = {
    hid : int;
    stats : C.t;
    mutable is_p : bool;
    mutable is_c : bool;
    mutable retired : bool;
  }

  type 'a t = {
    segs : Seg.t;
    p : side;  (* producer-private; padded *)
    c : side;  (* consumer-private; padded *)
    tail_pub : int A.t;  (* single-writer (producer); approx_length only *)
    head_pub : int A.t;  (* single-writer (consumer); approx_length only *)
    producer : Pl.Role.t;
    consumer : Pl.Role.t;
    registry : 'a handle Pl.Registry.t;
    retired_ops : C.t;
  }

  let probe_enabled = P.enabled
  let injector_enabled = I.enabled

  let create ?patience:_ ?(segment_shift = 10) ?(max_garbage = 16) ?(reclamation = true) () =
    let segs =
      Seg.make ~size:(1 lsl segment_shift) ~pool_limit:(max 1 max_garbage)
        ~pool_enabled:reclamation
    in
    let s0 = A.get segs.Seg.first in
    {
      segs;
      p = Primitives.Padding.copy_as_padded { pos = 0; seg = s0 };
      c = Primitives.Padding.copy_as_padded { pos = 0; seg = s0 };
      tail_pub = A.make_contended 0;
      head_pub = A.make_contended 0;
      producer = Pl.Role.make ();
      consumer = Pl.Role.make ();
      registry = Pl.Registry.make ();
      retired_ops = C.create ();
    }

  let register t =
    let h =
      {
        hid = Pl.Registry.fresh_hid t.registry;
        stats = C.create_padded ();
        is_p = false;
        is_c = false;
        retired = false;
      }
    in
    Pl.Registry.add t.registry h;
    h

  let retire t h =
    if not h.retired then begin
      h.retired <- true;
      Pl.Registry.remove t.registry h;
      C.add ~into:t.retired_ops h.stats;
      if h.is_p then Pl.Role.release t.producer ~hid:h.hid;
      if h.is_c then Pl.Role.release t.consumer ~hid:h.hid;
      h.is_p <- false;
      h.is_c <- false
    end

  let become_producer t h =
    Pl.Role.claim t.producer ~hid:h.hid ~queue:"Topology.Spsc" ~role:"producer";
    h.is_p <- true

  let become_consumer t h =
    Pl.Role.claim t.consumer ~hid:h.hid ~queue:"Topology.Spsc" ~role:"consumer";
    h.is_c <- true

  (* The producer crossed its segment: materialize the successor.  As
     the sole appender the link CAS cannot lose; [acquire] still races
     consumer-side [pool_push]es, which the pool's CAS absorbs. *)
  let grow t s b =
    let ns = Seg.acquire t.segs ~base:(b + t.segs.Seg.size) in
    (match A.get s.Seg.next with
    | Seg.End _ as e -> ignore (A.compare_and_set s.Seg.next e (Seg.Link ns))
    | _ -> assert false);
    ignore (A.fetch_and_add t.segs.Seg.live 1);
    t.p.seg <- ns;
    ns

  let enqueue t h v =
    if not h.is_p then become_producer t h;
    let pos = t.p.pos in
    let s = t.p.seg in
    let b = A.get s.Seg.base in
    let s = if pos < b + t.segs.Seg.size then s else grow t s b in
    (* cell located, value not yet visible: the hole window *)
    if I.enabled then I.hit Inject.Topo_enq_pending;
    A.set (Seg.cell s t.segs pos) (Obj.repr v);
    t.p.pos <- pos + 1;
    A.set t.tail_pub (pos + 1);
    h.stats.C.fast_enqueues <- h.stats.C.fast_enqueues + 1

  (* Returns the value word, or [bottom_w] for EMPTY.  A top-level
     recursion (segment hop), not a loop: the consumer advances only
     over producer-installed links, at most one hop per [size]
     dequeues. *)
  let rec dequeue_word t h =
    let pos = t.c.pos in
    let s = t.c.seg in
    let b = A.get s.Seg.base in
    if pos < b + t.segs.Seg.size then begin
      let w = A.get (Seg.cell s t.segs pos) in
      if w == Cellword.bottom_w then begin
        h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
        h.stats.C.empty_dequeues <- h.stats.C.empty_dequeues + 1;
        w
      end
      else begin
        t.c.pos <- pos + 1;
        A.set t.head_pub (pos + 1);
        h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
        w
      end
    end
    else
      (* consumed the whole segment; the producer links its successor
         *before* depositing into it, so [End] here means truly empty *)
      match A.get s.Seg.next with
      | Seg.End _ ->
          h.stats.C.fast_dequeues <- h.stats.C.fast_dequeues + 1;
          h.stats.C.empty_dequeues <- h.stats.C.empty_dequeues + 1;
          Cellword.bottom_w
      | Seg.Link n ->
          t.c.seg <- n;
          A.set t.segs.Seg.first n;
          Seg.recycle t.segs s;
          dequeue_word t h
      | Seg.Recycled ->
          (* impossible: only this consumer recycles, and never the
             segment it stands on *)
          assert false

  let dequeue t h =
    if not h.is_c then become_consumer t h;
    let w = dequeue_word t h in
    if w == Cellword.bottom_w then None else Some (Obj.obj w)

  let dequeue_or t h default =
    if not h.is_c then become_consumer t h;
    let w = dequeue_word t h in
    if w == Cellword.bottom_w then default else Obj.obj w

  let enq_batch t h vs =
    if P.enabled then begin
      h.stats.C.enq_batches <- h.stats.C.enq_batches + 1;
      h.stats.C.enq_batch_cells <- h.stats.C.enq_batch_cells + Array.length vs
    end;
    Array.iter (fun v -> enqueue t h v) vs

  let rec deq_batch_loop t h (out : 'a option array) k j =
    if j = k then j
    else
      let w = dequeue_word t h in
      if w == Cellword.bottom_w then j
      else begin
        out.(j) <- Some (Obj.obj w);
        deq_batch_loop t h out k (j + 1)
      end

  let deq_batch t h k =
    if not h.is_c then become_consumer t h;
    if k <= 0 then [||]
    else begin
      if P.enabled then begin
        h.stats.C.deq_batches <- h.stats.C.deq_batches + 1;
        h.stats.C.deq_batch_cells <- h.stats.C.deq_batch_cells + k
      end;
      let out = Array.make k None in
      ignore (deq_batch_loop t h out k 0);
      out
    end

  let rec deq_batch_into_loop t h (out : 'a array) k n =
    if n = k then n
    else
      let w = dequeue_word t h in
      if w == Cellword.bottom_w then n
      else begin
        out.(n) <- Obj.obj w;
        deq_batch_into_loop t h out k (n + 1)
      end

  let deq_batch_into t h (out : 'a array) ~default =
    if not h.is_c then become_consumer t h;
    let k = Array.length out in
    if P.enabled then begin
      h.stats.C.deq_batches <- h.stats.C.deq_batches + 1;
      h.stats.C.deq_batch_cells <- h.stats.C.deq_batch_cells + k
    end;
    let n = deq_batch_into_loop t h out k 0 in
    Array.fill out n (k - n) default;
    n

  let approx_length t = max 0 (A.get t.tail_pub - A.get t.head_pub)

  let snapshot t : Obs.Snapshot.t =
    let ops = C.create () in
    C.add ~into:ops t.retired_ops;
    let live = Pl.Registry.live_list t.registry in
    List.iter (fun h -> C.add ~into:ops h.stats) live;
    {
      Obs.Snapshot.ops;
      segments = Seg.gauges t.segs;
      handles = { ring = List.length live; live = List.length live; free_slots = 0 };
      patience = 0;
      probe_enabled = P.enabled;
    }

  let reset_stats t =
    C.reset t.retired_ops;
    List.iter (fun h -> C.reset h.stats) (Pl.Registry.live_list t.registry)
end
