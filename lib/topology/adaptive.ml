(* Production adaptive build: specialized variants and the general
   [Wfq.Wfqueue] as the degrade target, all with probe and injector
   compiled out.  Satisfies [Shard.QUEUE], so the Router shards over
   it unchanged ([Shard.Adaptive]). *)

include
  Adaptive_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled) (Inject.Disabled)
    (Wfq.Wfqueue)
