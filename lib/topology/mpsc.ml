(* Production MPSC build: hardware atomics, probe and injector
   compiled out. *)

include Mpsc_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled) (Inject.Disabled)
