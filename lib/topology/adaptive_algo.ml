(* The topology-adaptive queue: starts on the cheapest variant (SPSC)
   and degrades — SPSC -> MPSC/SPMC -> general — as handles reveal
   roles.  Roles are inferred at first use (first enqueue claims
   "producer", first dequeue "consumer") and the seen-role counters
   are monotone: a queue never upgrades back, so the steady state pays
   one branch-predictable dispatch on a backend that never changes.

   The switch is drain-then-switch behind a grace period, and that is
   forced, not chosen: a chained-backend scheme (new ops go to the new
   backend while stragglers finish on the old) is not linearizable —
   a straggler's late deposit into the old backend can be dequeued
   after a younger value from the new one, inverting FIFO against
   real-time order.  So the switcher (the operation that made the
   current backend illegal, e.g. a second producer's first enqueue)
   (1) takes the switch token, (2) publishes [Switching] so no
   operation re-enters, (3) waits until every registered handle is
   observed outside a backend operation once (each op raises its
   [active] flag before reading the state, so after [Switching] is
   published one observation per handle suffices), (4) drains the old
   backend into a fresh one of the target shape — it is the sole
   accessor, so EMPTY is exact and FIFO is preserved — and (5)
   publishes the new backend under a bumped epoch.  Handles re-register
   on the new backend lazily, on their next operation.

   The grace period makes the *switch* blocking (it waits for in-
   flight operations to leave); every per-operation path stays
   wait-free, and switches happen at most twice per queue lifetime
   (the lattice has height 2).

   Fault windows: [Topo_switch_draining] fires with the token held and
   the old backend quiesced.  A kill *there* restores the old backend
   untouched.  A kill raised by a backend inject point *during* the
   drain is absorbed until the drain completes and the new backend is
   committed, then re-raised ("die late"): dying mid-drain must not
   publish a half-drained backend.  Absorbed-kill replays are safe
   because every backend enqueue kill window is pre-deposit (the value
   is provably absent, so re-enqueueing cannot duplicate) — the drain
   runs single-threaded on a fresh backend, so no other windows are
   reachable. *)

module Make
    (A : Primitives.Atomic_prims.S)
    (P : Obs.Probe.S)
    (I : Inject.S)
    (G : Variant_intf.S) =
struct
  module Sp = Spsc_algo.Make (A) (P) (I)
  module Mp = Mpsc_algo.Make (A) (P) (I)
  module Sm = Spmc_algo.Make (A) (P) (I)
  module Pl = Plumbing.Make (A)

  type 'a backend =
    | Bspsc of 'a Sp.t
    | Bmpsc of 'a Mp.t
    | Bspmc of 'a Sm.t
    | Bgen of 'a G.t

  type 'a sub =
    | Sub_none
    | Sub_spsc of 'a Sp.handle
    | Sub_mpsc of 'a Mp.handle
    | Sub_spmc of 'a Sm.handle
    | Sub_gen of 'a G.handle

  type 'a active = { b : 'a backend; epoch : int }
  type 'a state = Active of 'a active | Switching

  type 'a handle = {
    hid : int;
    active : int A.t;  (* 1 while inside a backend operation; padded *)
    mutable epoch : int;
    mutable sub : 'a sub;
    mutable is_p : bool;  (* this handle is counted in producers_seen *)
    mutable is_c : bool;
    mutable retired : bool;
  }

  type opts = {
    o_patience : int option;
    o_segment_shift : int option;
    o_max_garbage : int option;
    o_reclamation : bool option;
    o_segment_cap : int option;
  }

  type 'a t = {
    state : 'a state A.t;
    switch_lock : int A.t;
    producers_seen : int A.t;  (* monotone: handles that ever enqueued *)
    consumers_seen : int A.t;
    switches : int A.t;
    registry : 'a handle Pl.Registry.t;
    opts : opts;
  }

  let probe_enabled = P.enabled
  let injector_enabled = I.enabled

  (* [o_segment_cap] reaches only the general backend: the specialized
     variants recycle through [Segs]' bounded pool already and have no
     bounded-memory admission of their own, so the cap takes effect
     when (and only when) the queue degrades to general.  Documented
     in DESIGN.md §11. *)
  let make_backend opts mode : 'a backend =
    let { o_patience; o_segment_shift; o_max_garbage; o_reclamation; o_segment_cap } =
      opts
    in
    match mode with
    | `Spsc ->
        Bspsc
          (Sp.create ?patience:o_patience ?segment_shift:o_segment_shift
             ?max_garbage:o_max_garbage ?reclamation:o_reclamation ())
    | `Mpsc ->
        Bmpsc
          (Mp.create ?patience:o_patience ?segment_shift:o_segment_shift
             ?max_garbage:o_max_garbage ?reclamation:o_reclamation ())
    | `Spmc ->
        Bspmc
          (Sm.create ?patience:o_patience ?segment_shift:o_segment_shift
             ?max_garbage:o_max_garbage ?reclamation:o_reclamation ())
    | `General ->
        Bgen
          (G.create ?patience:o_patience ?segment_shift:o_segment_shift
             ?max_garbage:o_max_garbage ?reclamation:o_reclamation
             ?segment_cap:o_segment_cap ())

  let create ?patience ?segment_shift ?max_garbage ?reclamation ?segment_cap () =
    let opts =
      {
        o_patience = patience;
        o_segment_shift = segment_shift;
        o_max_garbage = max_garbage;
        o_reclamation = reclamation;
        o_segment_cap = segment_cap;
      }
    in
    {
      state = A.make_contended (Active { b = make_backend opts `Spsc; epoch = 0 });
      switch_lock = A.make_contended 0;
      producers_seen = A.make_contended 0;
      consumers_seen = A.make_contended 0;
      switches = A.make 0;
      registry = Pl.Registry.make ();
      opts;
    }

  let register t =
    let h =
      {
        hid = Pl.Registry.fresh_hid t.registry;
        active = A.make_contended 0;
        epoch = -1;
        sub = Sub_none;
        is_p = false;
        is_c = false;
        retired = false;
      }
    in
    Pl.Registry.add t.registry h;
    h

  (* Which topologies the seen-role counts still allow. *)
  let legal t b =
    let p = A.get t.producers_seen and c = A.get t.consumers_seen in
    match b with
    | Bgen _ -> true
    | Bmpsc _ -> c <= 1
    | Bspmc _ -> p <= 1
    | Bspsc _ -> p <= 1 && c <= 1

  let target_mode t =
    let p = A.get t.producers_seen and c = A.get t.consumers_seen in
    if p <= 1 && c <= 1 then `Spsc
    else if c <= 1 then `Mpsc
    else if p <= 1 then `Spmc
    else `General

  let mode t =
    match A.get t.state with
    | Switching -> "switching"
    | Active { b = Bspsc _; _ } -> "spsc"
    | Active { b = Bmpsc _; _ } -> "mpsc"
    | Active { b = Bspmc _; _ } -> "spmc"
    | Active { b = Bgen _; _ } -> "general"

  let switches t = A.get t.switches

  let b_register : 'a backend -> 'a sub = function
    | Bspsc q -> Sub_spsc (Sp.register q)
    | Bmpsc q -> Sub_mpsc (Mp.register q)
    | Bspmc q -> Sub_spmc (Sm.register q)
    | Bgen q -> Sub_gen (G.register q)

  let b_retire (b : 'a backend) (sub : 'a sub) =
    match b, sub with
    | Bspsc q, Sub_spsc sh -> Sp.retire q sh
    | Bmpsc q, Sub_mpsc sh -> Mp.retire q sh
    | Bspmc q, Sub_spmc sh -> Sm.retire q sh
    | Bgen q, Sub_gen sh -> G.retire q sh
    | _ -> ()

  (* Every registered handle observed outside a backend op once.  Ops
     raise [active] before reading the state and no op re-enters after
     [Switching] is published, so one pass suffices.  The switcher's
     own flag is down (role noting runs before [enter]), and a storm
     victim killed mid-op lowers its flag in the exception path. *)
  let quiesce t =
    List.iter
      (fun h ->
        while A.get h.active = 1 do
          A.cpu_relax ()
        done)
      (Pl.Registry.live_list t.registry)

  (* Drain [ob] into [nb], absorbing backend kill windows until the
     new backend is committed (see header).  Every absorbed enqueue
     kill is pre-deposit, so the replay cannot duplicate; a dequeue
     kill burns a ticket, which the storm accounting already budgets
     per kill. *)
  let drain killed ob oh nb nh =
    let deq () =
      match ob, oh with
      | Bspsc q, Sub_spsc h -> (
          match Sp.dequeue q h with Some v -> Some v | None -> None)
      | Bmpsc q, Sub_mpsc h -> Mp.dequeue q h
      | Bspmc q, Sub_spmc h -> Sm.dequeue q h
      | Bgen q, Sub_gen h -> G.dequeue q h
      | _ -> assert false
    in
    let enq v =
      match nb, nh with
      | Bspsc q, Sub_spsc h -> Sp.enqueue q h v
      | Bmpsc q, Sub_mpsc h -> Mp.enqueue q h v
      | Bspmc q, Sub_spmc h -> Sm.enqueue q h v
      | Bgen q, Sub_gen h -> G.enqueue q h v
      | _ -> assert false
    in
    let rec move () =
      match (try `V (deq ()) with Inject.Killed _ as e -> killed := Some e; `Again) with
      | `Again -> move ()
      | `V None -> ()
      | `V (Some v) ->
          let rec put () =
            try enq v with Inject.Killed _ as e ->
              killed := Some e;
              put ()
          in
          put ();
          move ()
    in
    move ()

  let do_switch t (a : 'a active) =
    if A.compare_and_set t.switch_lock 0 1 then begin
      let committed = ref false in
      let killed = ref None in
      let finish () =
        if not !committed then A.set t.state (Active a);
        A.set t.switch_lock 0
      in
      (match A.get t.state with
      | Active cur when cur.epoch = a.epoch && not (legal t cur.b) -> (
          A.set t.state Switching;
          try
            quiesce t;
            if I.enabled then I.hit Inject.Topo_switch_draining;
            (* release the old backend's role claims (its sub-handles
               die with it — handles re-register on the new epoch), so
               the drain's fresh handle can claim the consumer seat *)
            List.iter
              (fun h -> if h.epoch = a.epoch then b_retire a.b h.sub)
              (Pl.Registry.live_list t.registry);
            let nb = make_backend t.opts (target_mode t) in
            let oh = b_register a.b in
            let nh = b_register nb in
            drain killed a.b oh nb nh;
            (* the drain handle's role claims must not outlive the
               drain, or the first real producer/consumer would find
               its seat taken *)
            b_retire nb nh;
            b_retire a.b oh;
            A.set t.state (Active { b = nb; epoch = a.epoch + 1 });
            committed := true;
            ignore (A.fetch_and_add t.switches 1);
            A.set t.switch_lock 0
          with e ->
            finish ();
            raise e)
      | _ ->
          (* someone else already moved the epoch on; nothing to do *)
          A.set t.switch_lock 0);
      match !killed with Some e -> raise e | None -> ()
    end

  (* Called on role growth: if the current backend no longer fits the
     seen roles, switch (or wait out a switch already in flight). *)
  let rec ensure_legal t =
    match A.get t.state with
    | Switching ->
        A.cpu_relax ();
        ensure_legal t
    | Active a ->
        if not (legal t a.b) then begin
          do_switch t a;
          ensure_legal t
        end

  let note_producer t h =
    if not h.is_p then begin
      h.is_p <- true;
      let n = A.fetch_and_add t.producers_seen 1 in
      if n > 0 then ensure_legal t
    end

  let note_consumer t h =
    if not h.is_c then begin
      h.is_c <- true;
      let n = A.fetch_and_add t.consumers_seen 1 in
      if n > 0 then ensure_legal t
    end

  (* Raise the active flag, then re-read the state: a backend read
     under a raised flag stays valid until the flag drops (the
     switcher cannot pass [quiesce]).  Re-registers the sub-handle on
     an epoch change. *)
  let rec enter t h =
    A.set h.active 1;
    match A.get t.state with
    | Switching ->
        A.set h.active 0;
        A.cpu_relax ();
        enter t h
    | Active a ->
        if h.epoch <> a.epoch then begin
          h.sub <- b_register a.b;
          h.epoch <- a.epoch
        end;
        a.b

  let[@inline] exit_op h = A.set h.active 0

  let enqueue t h v =
    note_producer t h;
    let b = enter t h in
    (try
       match b, h.sub with
       | Bspsc q, Sub_spsc sh -> Sp.enqueue q sh v
       | Bmpsc q, Sub_mpsc sh -> Mp.enqueue q sh v
       | Bspmc q, Sub_spmc sh -> Sm.enqueue q sh v
       | Bgen q, Sub_gen sh -> G.enqueue q sh v
       | _ -> assert false
     with e ->
       exit_op h;
       raise e);
    exit_op h

  (* Bounded admission lives in the general backend only (see
     [make_backend]); a specialized backend admits unconditionally, so
     [try_enqueue] there is [enqueue] returning [true]. *)
  let try_enqueue t h v =
    note_producer t h;
    let b = enter t h in
    let r =
      try
        match b, h.sub with
        | Bspsc q, Sub_spsc sh ->
            Sp.enqueue q sh v;
            true
        | Bmpsc q, Sub_mpsc sh ->
            Mp.enqueue q sh v;
            true
        | Bspmc q, Sub_spmc sh ->
            Sm.enqueue q sh v;
            true
        | Bgen q, Sub_gen sh -> G.try_enqueue q sh v
        | _ -> assert false
      with e ->
        exit_op h;
        raise e
    in
    exit_op h;
    r

  let dequeue t h =
    note_consumer t h;
    let b = enter t h in
    let r =
      try
        match b, h.sub with
        | Bspsc q, Sub_spsc sh -> Sp.dequeue q sh
        | Bmpsc q, Sub_mpsc sh -> Mp.dequeue q sh
        | Bspmc q, Sub_spmc sh -> Sm.dequeue q sh
        | Bgen q, Sub_gen sh -> G.dequeue q sh
        | _ -> assert false
      with e ->
        exit_op h;
        raise e
    in
    exit_op h;
    r

  let dequeue_or t h default =
    note_consumer t h;
    let b = enter t h in
    let r =
      try
        match b, h.sub with
        | Bspsc q, Sub_spsc sh -> Sp.dequeue_or q sh default
        | Bmpsc q, Sub_mpsc sh -> Mp.dequeue_or q sh default
        | Bspmc q, Sub_spmc sh -> Sm.dequeue_or q sh default
        | Bgen q, Sub_gen sh -> G.dequeue_or q sh default
        | _ -> assert false
      with e ->
        exit_op h;
        raise e
    in
    exit_op h;
    r

  let enq_batch t h vs =
    note_producer t h;
    let b = enter t h in
    (try
       match b, h.sub with
       | Bspsc q, Sub_spsc sh -> Sp.enq_batch q sh vs
       | Bmpsc q, Sub_mpsc sh -> Mp.enq_batch q sh vs
       | Bspmc q, Sub_spmc sh -> Sm.enq_batch q sh vs
       | Bgen q, Sub_gen sh -> G.enq_batch q sh vs
       | _ -> assert false
     with e ->
       exit_op h;
       raise e);
    exit_op h

  let try_enq_batch t h vs =
    note_producer t h;
    let b = enter t h in
    let r =
      try
        match b, h.sub with
        | Bspsc q, Sub_spsc sh ->
            Sp.enq_batch q sh vs;
            true
        | Bmpsc q, Sub_mpsc sh ->
            Mp.enq_batch q sh vs;
            true
        | Bspmc q, Sub_spmc sh ->
            Sm.enq_batch q sh vs;
            true
        | Bgen q, Sub_gen sh -> G.try_enq_batch q sh vs
        | _ -> assert false
      with e ->
        exit_op h;
        raise e
    in
    exit_op h;
    r

  let deq_batch t h k =
    note_consumer t h;
    let b = enter t h in
    let r =
      try
        match b, h.sub with
        | Bspsc q, Sub_spsc sh -> Sp.deq_batch q sh k
        | Bmpsc q, Sub_mpsc sh -> Mp.deq_batch q sh k
        | Bspmc q, Sub_spmc sh -> Sm.deq_batch q sh k
        | Bgen q, Sub_gen sh -> G.deq_batch q sh k
        | _ -> assert false
      with e ->
        exit_op h;
        raise e
    in
    exit_op h;
    r

  let deq_batch_into t h out ~default =
    note_consumer t h;
    let b = enter t h in
    let r =
      try
        match b, h.sub with
        | Bspsc q, Sub_spsc sh -> Sp.deq_batch_into q sh out ~default
        | Bmpsc q, Sub_mpsc sh -> Mp.deq_batch_into q sh out ~default
        | Bspmc q, Sub_spmc sh -> Sm.deq_batch_into q sh out ~default
        | Bgen q, Sub_gen sh -> G.deq_batch_into q sh out ~default
        | _ -> assert false
      with e ->
        exit_op h;
        raise e
    in
    exit_op h;
    r

  let retire t h =
    if not h.retired then begin
      h.retired <- true;
      Pl.Registry.remove t.registry h;
      (* the sub-handle dies with its backend on a stale epoch *)
      (match A.get t.state with
      | Active a when a.epoch = h.epoch -> (
          match a.b, h.sub with
          | Bspsc q, Sub_spsc sh -> Sp.retire q sh
          | Bmpsc q, Sub_mpsc sh -> Mp.retire q sh
          | Bspmc q, Sub_spmc sh -> Sm.retire q sh
          | Bgen q, Sub_gen sh -> G.retire q sh
          | _ -> ())
      | _ -> ());
      h.sub <- Sub_none
      (* producers_seen/consumers_seen stay: the lattice is monotone,
         so a retire-then-register cycle lands on a wider variant
         rather than racing an upgrade *)
    end

  let rec approx_length t =
    match A.get t.state with
    | Switching ->
        A.cpu_relax ();
        approx_length t
    | Active a -> (
        match a.b with
        | Bspsc q -> Sp.approx_length q
        | Bmpsc q -> Mp.approx_length q
        | Bspmc q -> Sm.approx_length q
        | Bgen q -> G.approx_length q)

  (* Current backend's view (drained history is folded into it by the
     drain's own operations). *)
  let rec snapshot t =
    match A.get t.state with
    | Switching ->
        A.cpu_relax ();
        snapshot t
    | Active a -> (
        match a.b with
        | Bspsc q -> Sp.snapshot q
        | Bmpsc q -> Mp.snapshot q
        | Bspmc q -> Sm.snapshot q
        | Bgen q -> G.snapshot q)

  let rec reset_stats t =
    match A.get t.state with
    | Switching ->
        A.cpu_relax ();
        reset_stats t
    | Active a -> (
        match a.b with
        | Bspsc q -> Sp.reset_stats q
        | Bmpsc q -> Mp.reset_stats q
        | Bspmc q -> Sm.reset_stats q
        | Bgen q -> G.reset_stats q)
end
