(* Storm MPSC build: probe and injector compiled in. *)

include Mpsc_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Enabled) (Inject.Enabled)
