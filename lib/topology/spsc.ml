(* Production SPSC build: hardware atomics, probe and injector
   compiled out — the bare hot path the bench gate prices. *)

include Spsc_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled) (Inject.Disabled)
