(* The interface every specialized variant exports: the [Shard.QUEUE]
   shape (so a variant — or the adaptive wrapper — can sit behind the
   Router unchanged), plus the allocation-free dequeue entry points
   and the build flags.  [Wfq.Wfqueue] satisfies [S] too, which is how
   the adaptive queue takes "the general queue to degrade to" as a
   functor argument. *)

module type S = sig
  type 'a t
  type 'a handle

  val create :
    ?patience:int ->
    ?segment_shift:int ->
    ?max_garbage:int ->
    ?reclamation:bool ->
    ?segment_cap:int ->
    unit ->
    'a t

  val register : 'a t -> 'a handle
  val retire : 'a t -> 'a handle -> unit
  val enqueue : 'a t -> 'a handle -> 'a -> unit

  val try_enqueue : 'a t -> 'a handle -> 'a -> bool
  (* Bounded-memory admission (false = refused right now); variants
     without a bounded mode always admit. *)

  val dequeue : 'a t -> 'a handle -> 'a option
  val dequeue_or : 'a t -> 'a handle -> 'a -> 'a
  val enq_batch : 'a t -> 'a handle -> 'a array -> unit
  val try_enq_batch : 'a t -> 'a handle -> 'a array -> bool
  val deq_batch : 'a t -> 'a handle -> int -> 'a option array
  val deq_batch_into : 'a t -> 'a handle -> 'a array -> default:'a -> int
  val approx_length : 'a t -> int
  val snapshot : 'a t -> Obs.Snapshot.t
  val reset_stats : 'a t -> unit
  val probe_enabled : bool
  val injector_enabled : bool
end
