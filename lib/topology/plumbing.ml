(* Queue-body plumbing shared by the specialized variants: exclusive
   role claims (the thing that makes "single producer" a checked
   contract instead of a comment) and the live-handle registry that
   snapshot aggregation and the adaptive grace period walk.

   Functorized over the atomic primitives like the algorithms
   themselves, so the exact shipped text runs under the simsched
   shim. *)

module Make (A : Primitives.Atomic_prims.S) = struct
  module Role = struct
    type t = int A.t
    (* hid of the owning handle, or -1 when unclaimed. *)

    let make () = A.make_contended (-1)

    (* First use claims; a second claimant is a topology violation and
       raises rather than corrupting single-writer state.  Release on
       retire re-opens the seat, so sequential handoff (register, use,
       retire, register) is legal — what the bench harness does across
       allocate/free cycles. *)
    let claim (r : t) ~hid ~queue ~role =
      if not (A.compare_and_set r (-1) hid) then
        invalid_arg
          (Printf.sprintf
             "%s: handle %d cannot become the %s: the queue already has one (handle %d). This \
              topology admits a single %s; retire it first, or use a wider variant."
             queue hid role (A.get r) role)

    let release (r : t) ~hid = ignore (A.compare_and_set r hid (-1))
  end

  module Registry = struct
    type 'h t = { live : 'h list A.t; next_hid : int A.t }

    let make () = { live = A.make []; next_hid = A.make 0 }
    let fresh_hid t = A.fetch_and_add t.next_hid 1

    (* Lock-free CAS push/filter: a retry implies another registration
       made progress, so these loops are not blocking (no holder to
       wait out) — explorable under the simsched DFS. *)
    let rec add t h =
      let old = A.get t.live in
      if not (A.compare_and_set t.live old (h :: old)) then add t h

    let rec remove t h =
      let old = A.get t.live in
      if not (A.compare_and_set t.live old (List.filter (fun x -> x != h) old)) then remove t h

    let live_list t = A.get t.live
    let live_count t = List.length (A.get t.live)
  end
end
