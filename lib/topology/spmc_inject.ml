(* Storm SPMC build: probe and injector compiled in. *)

include Spmc_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Enabled) (Inject.Enabled)
