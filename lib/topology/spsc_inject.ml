(* Storm SPSC build: same algorithm text with the probe and the fault
   injector compiled in — the adversarial-schedule suites park/kill
   inside the [Topo_enq_pending] hole window. *)

include Spsc_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Enabled) (Inject.Enabled)
