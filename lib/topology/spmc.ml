(* Production SPMC build: hardware atomics, probe and injector
   compiled out. *)

include Spmc_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled) (Inject.Disabled)
