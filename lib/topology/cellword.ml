(* The cell-state plane of the specialized variants, PR-6 style: a
   cell is a bare [Obj.t] word, and the two protocol states that are
   not "holds a value" are private one-field blocks compared with
   physical equality.  No [option] per cell, no per-value box — an
   immediate payload (ints, constant constructors) costs zero words on
   the enqueue/dequeue path, which is what the allocation gate pins.

   [bottom_w] — the cell has never held a value (or was re-bottomed at
   segment recycle).  [top_w] — the value was consumed.  User values
   can never alias either: both are fresh mutable blocks whose only
   reference lives here, and [==] on them is exact.  The [ref] payload
   is arbitrary; distinct allocation identity is the whole point. *)

let bottom_w : Obj.t = Obj.repr (ref "topology-bottom")
let top_w : Obj.t = Obj.repr (ref "topology-top")
let is_value (w : Obj.t) = w != bottom_w && w != top_w
