(* A fixed-size worker pool, since PR 10 a thin shim over the
   effects-based scheduler ([Sched.Scheduler]): [create] builds a
   single-pool scheduler, futures {e are} scheduler promises, and
   submit/await/shutdown delegate.  The Mutex/Condition future, the
   worker loop and the duplicated wait/abort logic that used to live
   here are gone — the scheduler's claim-once tickets and post-join
   sweep provide the same all-futures-resolve guarantee (DESIGN.md
   §12), and the admission/shutdown protocol both subsystems share
   still lives in [Pool.Protocol] (= [Sched.Sched_protocol]) for the
   simsched exploration in test/test_pool.ml.

   One behavioral upgrade rides along: [await] inside a pool task no
   longer risks deadlocking the worker — on a fiber it suspends the
   fiber and the worker moves on (the old pool documented that hazard
   instead of fixing it). *)

module Protocol = Pool_protocol

exception Shutdown = Sched.Scheduler.Shutdown
exception Worker_abort = Sched.Scheduler.Abort_worker

type 'a future = 'a Sched.Scheduler.Promise.t
type t = Sched.Scheduler.t

type obs = {
  workers : int;
  live_workers : int;
  worker_deaths : int;
  task_exceptions : int;
  tasks_completed : int;
  aborted_futures : int;
}

let create ?workers () =
  (match workers with
  | Some n when n < 1 -> invalid_arg "Pool.create: need at least one worker"
  | _ -> ());
  Sched.Scheduler.create ?workers ()

let submit pool f =
  try Sched.Scheduler.async pool f
  with Invalid_argument _ -> invalid_arg "Pool.submit: pool is shut down"

let await = Sched.Scheduler.Promise.result
let poll = Sched.Scheduler.Promise.poll
let parallel_map pool f xs = List.map (fun x -> submit pool (fun () -> f x)) xs |> List.map await
let pending = Sched.Scheduler.pending

let obs pool =
  match Sched.Scheduler.obs pool with
  | [] -> assert false (* the default pool always exists *)
  | d :: _ ->
    {
      workers = d.Sched.Scheduler.workers;
      live_workers = d.live_workers;
      worker_deaths = d.worker_deaths;
      task_exceptions = d.task_exceptions;
      tasks_completed = d.tasks_completed;
      aborted_futures = d.aborted_promises;
    }

let shutdown = Sched.Scheduler.shutdown
