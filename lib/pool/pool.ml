(* A fixed-size worker pool over the wait-free run queue.  The
   admission/shutdown/drain decisions live in [Pool_protocol] (also
   instantiated on the simsched shim by the test suite); this module
   adds the OS pieces: futures (Mutex/Condition), worker domains,
   handle lifecycle, and the fault-isolation guards. *)

module Protocol = Pool_protocol

exception Shutdown
exception Worker_abort

type 'a state = Pending | Resolved of ('a, exn) result

type 'a future = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : 'a state;
}

module P =
  Pool_protocol.Make
    (Wfq.Atomic_prims.Real)
    (struct
      type 'a t = 'a Wfq.Wfqueue.t
      type 'a handle = 'a Wfq.Wfqueue.handle

      let enqueue = Wfq.Wfqueue.enqueue
      let dequeue = Wfq.Wfqueue.dequeue
    end)

type obs = {
  workers : int;
  live_workers : int;
  worker_deaths : int;
  task_exceptions : int;
  tasks_completed : int;
  aborted_futures : int;
}

type t = {
  proto : P.t;
  run_queue : P.ticket Wfq.Wfqueue.t;
  mutable workers : unit Domain.t list; (* set once, right after create *)
  worker_count : int;
  shutdown_started : bool Atomic.t;
  shutdown_done : bool Atomic.t;
  (* Monitoring counters, each on its own cache line so a dying worker
     and a hot completion path do not false-share. *)
  live : int Atomic.t;
  deaths : int Atomic.t;
  exceptions : int Atomic.t;
  completed : int Atomic.t;
  aborted : int Atomic.t;
}

let resolve future result =
  Mutex.lock future.mutex;
  future.state <- Resolved result;
  Condition.broadcast future.cond;
  Mutex.unlock future.mutex

let worker_loop pool () =
  let handle = Wfq.Wfqueue.register pool.run_queue in
  (* Release the queue handle on every exit path — normal drain-out,
     deliberate abort, or an escaped exception — so a dead worker
     never pins segment reclamation.  ([Domain.at_exit] would cover
     the implicit push/pop handles, but this worker registered
     explicitly; explicit release also retires at the exit point
     rather than at domain teardown.) *)
  Fun.protect ~finally:(fun () ->
      Wfq.Wfqueue.retire pool.run_queue handle;
      ignore (Atomic.fetch_and_add pool.live (-1)))
  @@ fun () ->
  let step () =
    (* Fault isolation: a ticket whose [run] lets an exception escape
       (raw closures; [submit]'s wrapper catches everything else) must
       not silently shrink the pool.  [Worker_abort] is the one
       deliberate exception: it kills this worker, visibly
       ([worker_deaths] in the obs snapshot). *)
    try
      match P.worker_step pool.proto handle with
      | P.Ran | P.Stale -> `Ran
      | P.Exit -> `Exit
      | P.Idle -> `Idle
    with
    | Worker_abort -> `Died
    | _exn ->
      ignore (Atomic.fetch_and_add pool.exceptions 1);
      `Ran
  in
  let rec loop idle_spins =
    match step () with
    | `Ran -> loop 0
    | `Exit -> ()
    | `Died -> ignore (Atomic.fetch_and_add pool.deaths 1)
    | `Idle ->
      (* between spinning and napping: submissions are bursty and
         the host may be oversubscribed *)
      if idle_spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_2;
      loop (idle_spins + 1)
  in
  loop 0

let create ?workers () =
  let default = max 1 (Domain.recommended_domain_count () - 1) in
  let n = match workers with Some n -> n | None -> default in
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let run_queue = Wfq.Wfqueue.create () in
  let pool =
    {
      proto = P.create run_queue;
      run_queue;
      workers = [];
      worker_count = n;
      shutdown_started = Atomic.make false;
      shutdown_done = Atomic.make false;
      live = Primitives.Padding.make_padded_atomic n;
      deaths = Primitives.Padding.make_padded_atomic 0;
      exceptions = Primitives.Padding.make_padded_atomic 0;
      completed = Primitives.Padding.make_padded_atomic 0;
      aborted = Primitives.Padding.make_padded_atomic 0;
    }
  in
  pool.workers <- List.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

let submit pool f =
  let future = { mutex = Mutex.create (); cond = Condition.create (); state = Pending } in
  let run () =
    (* [Worker_abort] resolves the future, then still kills the worker
       that ran it — the documented fault-drill channel. *)
    let result =
      try Ok (f ())
      with
      | Worker_abort ->
        resolve future (Error Worker_abort);
        raise Worker_abort
      | exn -> Error exn
    in
    resolve future result;
    ignore (Atomic.fetch_and_add pool.completed 1)
  in
  let abort () =
    resolve future (Error Shutdown);
    ignore (Atomic.fetch_and_add pool.aborted 1)
  in
  let h = Wfq.Wfqueue.domain_handle pool.run_queue in
  match P.submit pool.proto h ~run ~abort with
  | P.Rejected -> invalid_arg "Pool.submit: pool is shut down"
  | P.Accepted | P.Aborted -> future

let await future =
  Mutex.lock future.mutex;
  let rec wait () =
    match future.state with
    | Resolved r ->
      Mutex.unlock future.mutex;
      r
    | Pending ->
      Condition.wait future.cond future.mutex;
      wait ()
  in
  wait ()

let poll future =
  Mutex.lock future.mutex;
  let r = match future.state with Pending -> None | Resolved r -> Some r in
  Mutex.unlock future.mutex;
  r

let parallel_map pool f xs = List.map (fun x -> submit pool (fun () -> f x)) xs |> List.map await

let pending pool = Wfq.Wfqueue.approx_length pool.run_queue

let obs pool =
  {
    workers = pool.worker_count;
    live_workers = Atomic.get pool.live;
    worker_deaths = Atomic.get pool.deaths;
    task_exceptions = Atomic.get pool.exceptions;
    tasks_completed = Atomic.get pool.completed;
    aborted_futures = Atomic.get pool.aborted;
  }

let shutdown pool =
  if Atomic.compare_and_set pool.shutdown_started false true then begin
    P.begin_shutdown pool.proto;
    List.iter Domain.join pool.workers;
    (* Residual sweep: claims-and-aborts any ticket that raced the
       stop (pushed after the last worker's final EMPTY).  Each such
       ticket's submitter also self-aborts on its re-check; the claim
       CAS makes the two resolutions exactly-once. *)
    ignore (P.drain pool.proto (Wfq.Wfqueue.domain_handle pool.run_queue));
    Atomic.set pool.shutdown_done true
  end
  else
    (* Idempotent, and every caller returns only once the first
       shutdown finished its join + drain. *)
    while not (Atomic.get pool.shutdown_done) do
      Domain.cpu_relax ()
    done
