(** A fixed-size worker pool over the wait-free run queue.

    The motivating deployment for the paper's queue: a shared run
    queue where task submission must never stall behind a descheduled
    worker.  [submit] is wait-free apart from promise allocation —
    it performs one wait-free enqueue — regardless of what the
    workers are doing; dequeueing workers can never block submitters
    or each other.

    Liveness contract: {e every future returned by [submit] resolves}.
    Tasks accepted before {!shutdown} are executed; a task whose
    submission raced the shutdown either executes or resolves with
    [Error Shutdown] — no interleaving leaves a future pending
    forever.  The admission/drain protocol enforcing this lives in
    {!Protocol} and is model-checked under the simsched scheduler by
    the test suite.

    {[
      let pool = Pool.create ~workers:4 () in
      let f = Pool.submit pool (fun () -> heavy 42) in
      ...
      match Pool.await f with
      | Ok v -> use v
      | Error exn -> handle exn
    ]} *)

type t

type 'a future

exception Shutdown
(** Resolution of a future whose task was cancelled because the pool
    stopped before a worker could run it (only possible for
    submissions racing {!shutdown}). *)

exception Worker_abort
(** The deliberate worker-death channel for fault drills: a task
    raising this resolves its future with [Error Worker_abort] and
    then kills the worker that ran it (counted in {!obs}'s
    [worker_deaths]; the worker's queue handle is released).  Every
    other exception a task raises is contained: it resolves the
    future and the worker lives on. *)

val create : ?workers:int -> unit -> t
(** Spawn [workers] (default [Domain.recommended_domain_count () - 1],
    at least 1) worker domains consuming the shared run queue. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Schedule a task; its result (or exception) resolves the future.
    Raises [Invalid_argument] after {!shutdown}.  A submission racing
    {!shutdown} returns a future that is guaranteed to resolve — with
    the task's result if a worker got to it, with [Error Shutdown]
    otherwise. *)

val await : 'a future -> ('a, exn) result
(** Block until the future resolves.  If called from a worker of the
    same pool, beware: awaiting a task that sits behind the caller in
    the queue deadlocks a 1-worker pool (futures do not steal). *)

val poll : 'a future -> ('a, exn) result option
(** Non-blocking check. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Submit one task per element, await all (in order). *)

val pending : t -> int
(** Tasks submitted but not yet started (approximate). *)

type obs = {
  workers : int;  (** workers spawned at {!create} *)
  live_workers : int;  (** workers still running their loop *)
  worker_deaths : int;  (** workers killed by {!Worker_abort} *)
  task_exceptions : int;
      (** exceptions that escaped a ticket into the worker loop (raw
          closures; {!submit}-wrapped tasks resolve their future
          instead) *)
  tasks_completed : int;  (** tickets run to completion by a worker *)
  aborted_futures : int;  (** futures resolved with [Error Shutdown] *)
}

val obs : t -> obs
(** Monitoring counters; racy-but-safe, exact at quiescence. *)

val shutdown : t -> unit
(** Stop accepting work, let the workers drain every queued task, join
    them, then cancel (with [Error Shutdown]) anything that slipped in
    behind the final drain.  After [shutdown] returns, every future
    ever returned by {!submit} is resolved.  Idempotent and
    thread-safe: concurrent callers all block until the first
    caller's shutdown completes. *)

(** The pool's lock-free admission/shutdown/drain protocol as a
    functor over the atomic primitives and the run queue, so the test
    suite can run the exact shipped decision logic on the simsched
    shim and explore submit-vs-shutdown-vs-worker interleavings
    deterministically. *)
module Protocol : module type of Pool_protocol
