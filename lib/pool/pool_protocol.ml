(* The pool's admission / shutdown / drain protocol moved to
   [Sched.Sched_protocol] in PR 10, when [Pool] became a shim over the
   effects-based scheduler and the two subsystems started sharing the
   claim-once ticket discipline.  Re-exported here so [Pool.Protocol]
   keeps its name and every existing instantiation (the simsched
   exploration in test/test_pool.ml included) compiles unchanged. *)

include Sched.Sched_protocol
