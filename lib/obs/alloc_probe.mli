(** The allocation probe tier: per-operation minor-heap words, by
    [Gc.minor_words] deltas, with the same compile-time gating
    discipline as {!Probe}.

    Memory-frugal queue work (Jiffy, wCQ) treats allocations-per-op as
    a first-class property next to throughput: an extra box on the hot
    path is invisible to a throughput smoke run but turns into GC
    pressure — and eventually collection pauses — under production
    load.  This tier makes the number measurable and therefore
    gateable ({!Harness.Gate}'s alloc checks, [bin/bench_gate.exe
    --alloc-ceiling]).

    Two pieces:

    - {!t}, the accumulator: operation and word totals per operation
      class.  It is an {e all-float} record, so field updates are
      stores into a flat float block — the meter itself never touches
      the minor heap while metering (a mixed int/float record would
      re-box the float fields on every update, polluting the very
      quantity being measured).
    - {!Meter}, the gated reader: [Meter (Probe.Disabled)] compiles
      [start]/[record] down to constants ([enabled] is a compile-time
      constant of the instantiation, exactly like the event-tier
      probe), so a disabled build pays neither the [Gc.minor_words]
      calls nor the accumulator stores.

    Measurement discipline: deltas are taken immediately around the
    operation under test, so the caller's own bookkeeping (latency
    clocks, loop counters) lands {e between} windows and is excluded.
    [Gc.minor_words] counts the calling domain only; keep one
    accumulator per worker domain and {!merge_into} after joining. *)

type t = {
  mutable enq_ops : float;
  mutable enq_words : float;
  mutable deq_ops : float;
  mutable deq_words : float;
}
(** All fields [float] (deliberately, including the op counts) so the
    record is a flat float block and updates never allocate. *)

type cls = Enqueue | Dequeue

val create : unit -> t
val reset : t -> unit

val record : t -> cls -> float -> unit
(** [record t cls words] accounts one operation of class [cls] that
    allocated [words] minor words.  Ungated — callers that want the
    compile-time gate go through {!Meter}. *)

val merge_into : into:t -> t -> unit

val ops : t -> cls -> float
val words : t -> cls -> float

val words_per_enqueue : t -> float
(** Mean minor words per enqueue; 0 when none ran. *)

val words_per_dequeue : t -> float

val words_per_op : t -> float
(** Mean minor words across both classes. *)

val pp : Format.formatter -> t -> unit

(** The compile-time-gated meter.  [P.enabled] is a structure constant
    of the instantiation ({!Probe.Disabled} / {!Probe.Enabled}), so
    the disabled meter's [start] and [record] are empty after constant
    folding — the same zero-cost argument as the event-tier probe,
    verified the same way (the bench gate's throughput checks on the
    disabled build). *)
module Meter (P : Probe.S) : sig
  val enabled : bool

  val start : unit -> int
  (** The domain's current [Gc.minor_words] (as an int — exact up to
      2^53 words), or [0] when disabled.  The handle is an [int]
      rather than a [float] so it crosses the [record] call boundary
      as an immediate: a float handle would be boxed at the call
      site, {e inside} the very window it delimits, in a non-flambda
      build. *)

  val record : t -> cls -> int -> unit
  (** [record acc cls w0] accounts one [cls] operation whose window
      opened at [start]-value [w0]; reads [Gc.minor_words] again and
      adds the delta.  No-op when disabled. *)
end
