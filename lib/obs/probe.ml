(* See probe.mli. *)

module type S = sig
  val enabled : bool
end

module Disabled = struct
  let enabled = false
end

module Enabled = struct
  let enabled = true
end
