(** Per-operation-class latency recording.

    One log-linear histogram ({!Stats.Histogram}: O(1) record, no
    per-sample allocation) per operation class, so a telemetry run can
    time every single operation and still report faithful tails — the
    wait-freedom "predictability" claim is about p99/max, which
    sampling would miss.  Each worker domain owns a private [t]
    (recording is unsynchronized); the harness merges them after the
    domains join. *)

type cls =
  | Enqueue
  | Dequeue  (** dequeue that returned a value *)
  | Dequeue_empty  (** dequeue that observed EMPTY *)

val classes : cls list
val class_name : cls -> string

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] as in {!Stats.Histogram.create} (default 8). *)

val record : t -> cls -> float -> unit
(** Record one sample in nanoseconds. *)

val histogram : t -> cls -> Stats.Histogram.t

val merge_into : into:t -> t -> unit
(** Merge all classes; both sides must share [sub_bits]. *)

type summary = {
  samples : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : float;
}

val summarize : t -> cls -> summary
(** All-zero summary when the class recorded no samples. *)
