(* See snapshot.mli. *)

type segments = {
  allocated : int;
  reclaimed : int;
  recycled : int;
  wasted : int;
  pooled : int;
  live : int;
  cleanups : int;
  cap : int;
  cap_hits : int;
}

type handles = { ring : int; live : int; free_slots : int }

type t = {
  ops : Counters.t;
  segments : segments;
  handles : handles;
  patience : int;
  probe_enabled : bool;
}

let merge a b =
  let ops = Counters.create () in
  Counters.add ~into:ops a.ops;
  Counters.add ~into:ops b.ops;
  {
    ops;
    segments =
      {
        allocated = a.segments.allocated + b.segments.allocated;
        reclaimed = a.segments.reclaimed + b.segments.reclaimed;
        recycled = a.segments.recycled + b.segments.recycled;
        wasted = a.segments.wasted + b.segments.wasted;
        pooled = a.segments.pooled + b.segments.pooled;
        live = a.segments.live + b.segments.live;
        cleanups = a.segments.cleanups + b.segments.cleanups;
        cap = a.segments.cap + b.segments.cap;
        cap_hits = a.segments.cap_hits + b.segments.cap_hits;
      };
    handles =
      {
        ring = a.handles.ring + b.handles.ring;
        live = a.handles.live + b.handles.live;
        free_slots = a.handles.free_slots + b.handles.free_slots;
      };
    patience = max a.patience b.patience;
    probe_enabled = a.probe_enabled && b.probe_enabled;
  }

let fold = function
  | [] -> invalid_arg "Obs.Snapshot.fold: empty list"
  | s :: rest -> List.fold_left merge s rest

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "paths:    %a@," Counters.pp t.ops;
  Format.fprintf ppf "events:   %a%s@," Counters.pp_events t.ops
    (if t.probe_enabled then "" else " (probe disabled: event tier not recorded)");
  Format.fprintf ppf
    "segments: %d allocated, %d reclaimed (%d cleanups), %d recycled, %d wasted, %d pooled, %d live@,"
    t.segments.allocated t.segments.reclaimed t.segments.cleanups t.segments.recycled
    t.segments.wasted t.segments.pooled t.segments.live;
  if t.segments.cap > 0 then
    Format.fprintf ppf "bounded:  cap %d segments (%d pressure hits)@," t.segments.cap
      t.segments.cap_hits;
  Format.fprintf ppf "handles:  %d ring slots (%d live, %d free); patience %d"
    t.handles.ring t.handles.live t.handles.free_slots t.patience;
  Format.fprintf ppf "@]"
