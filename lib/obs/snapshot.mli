(** A queue-level telemetry snapshot: per-handle counters merged into
    totals, plus the reclamation-pressure gauges.

    Built by the queue's [snapshot] introspection entry point, which
    folds every ring handle's {!Counters} into one total — including
    the departed-handle accumulator, so operations by domains whose
    ring slots were since recycled are counted exactly once.  Exact
    when the queue is quiescent; a concurrent snapshot is a racy but
    tear-free view (every field is one word), which is what a
    monitoring scrape wants. *)

type segments = {
  allocated : int;  (** segments allocated fresh *)
  reclaimed : int;  (** segments unlinked by cleanup *)
  recycled : int;  (** segments served from the recycling pool *)
  wasted : int;  (** segments that lost the append race *)
  pooled : int;  (** segments currently in the pool *)
  live : int;  (** current length of the segment list *)
  cleanups : int;  (** cleanup runs that actually reclaimed (the
                       [max_garbage] amortization events) *)
  cap : int;  (** bounded-mode segment cap; [0] = unbounded (merging
                  sums caps, matching the summed [live]/[pooled]) *)
  cap_hits : int;  (** acquire attempts that found the pool empty at
                       the cap and had to wait for a release *)
}

type handles = {
  ring : int;  (** helping-ring slots (live + awaiting recycling) *)
  live : int;  (** slots whose handle is not retired *)
  free_slots : int;  (** retired slots waiting for a register *)
}

type t = {
  ops : Counters.t;  (** merged per-handle + departed-handle counters *)
  segments : segments;
  handles : handles;
  patience : int;
  probe_enabled : bool;
      (** whether the build records the event tier — [false] means the
          event-tier zeros are "not measured", not "measured zero" *)
}

val merge : t -> t -> t
(** Pointwise sum of counters and gauges; [patience] is the max and
    [probe_enabled] the conjunction (a merged event tier is only
    trustworthy if every constituent recorded it). *)

val fold : t list -> t
(** {!merge} across a non-empty list — how a sharded router presents N
    per-shard snapshots as one queue-level view.
    @raise Invalid_argument on the empty list. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary (the [repro stats] footer). *)
