(** The zero-cost-when-disabled instrumentation hook.

    The queue algorithm ([Wfqueue_algo.Make]) — and the instrumentable
    baselines — take a [Probe.S] as a functor argument next to their
    atomic primitives.  Every event-tier record site in the algorithm
    text is written as

    {[ if P.enabled then c.field <- c.field + 1 ]}

    [enabled] is an immutable compile-time constant of the functor
    instantiation, not runtime state: there is no ref to read, no
    closure to call, and no per-queue or per-handle flag on the
    operation paths.  A [Disabled] instantiation ([Wfqueue]) keeps the
    exact PR-2 hot path — the only residue is the never-taken branch
    on the constant, which the benchmark harness verifies is within
    noise (see BENCH_pr3.json, [wf-10] vs [wf-10-obs] pair cost).  An
    [Enabled] instantiation ([Wfqueue_obs]) records the full event
    tier of {!Counters}.

    The functor-over-flag design was chosen over a runtime flag (a
    load plus a data-dependent branch per record site on the hot path)
    and over function-valued hooks (an indirect call per site, plus an
    allocation per installed hook).  It also means the model checker
    exercises the instrumented text: [Simsched.Sim] instantiates the
    algorithms with [Enabled]. *)

module type S = sig
  val enabled : bool
  (** Compile-time constant: [true] compiles the event-tier record
      sites in; [false] leaves the bare hot path. *)
end

module Disabled : S
(** [enabled = false] — production instantiations. *)

module Enabled : S
(** [enabled = true] — telemetry and model-checking instantiations. *)
