(* See op_latency.mli. *)

type cls = Enqueue | Dequeue | Dequeue_empty

let classes = [ Enqueue; Dequeue; Dequeue_empty ]

let class_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Dequeue_empty -> "dequeue_empty"

type t = {
  enq : Stats.Histogram.t;
  deq : Stats.Histogram.t;
  deq_empty : Stats.Histogram.t;
}

let create ?sub_bits () =
  {
    enq = Stats.Histogram.create ?sub_bits ();
    deq = Stats.Histogram.create ?sub_bits ();
    deq_empty = Stats.Histogram.create ?sub_bits ();
  }

let histogram t = function
  | Enqueue -> t.enq
  | Dequeue -> t.deq
  | Dequeue_empty -> t.deq_empty

let record t cls ns = Stats.Histogram.add (histogram t cls) ns

let merge_into ~into t =
  List.iter
    (fun c -> Stats.Histogram.merge_into ~into:(histogram into c) (histogram t c))
    classes

type summary = {
  samples : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : float;
}

let summarize t cls =
  let h = histogram t cls in
  let samples = Stats.Histogram.count h in
  if samples = 0 then { samples = 0; p50_ns = 0.0; p90_ns = 0.0; p99_ns = 0.0; max_ns = 0.0 }
  else
    {
      samples;
      p50_ns = Stats.Histogram.percentile h 50.0;
      p90_ns = Stats.Histogram.percentile h 90.0;
      p99_ns = Stats.Histogram.percentile h 99.0;
      max_ns = Stats.Histogram.max_recorded h;
    }
