(** Per-handle operation-path and protocol-event counters.

    Table 2 of the paper breaks operations down by execution path
    (fast-path vs slow-path enqueues/dequeues, and dequeues returning
    EMPTY); wCQ (Nikolaev & Ravindran, PPoPP 2022) argues that
    slow-path frequency and helping cost are exactly where wait-free
    queues silently regress.  This record carries both tiers:

    - the {b path} tier ([fast_*], [slow_*], [empty_dequeues]) is
      recorded unconditionally by every queue build — one plain-int
      increment per completed operation, the PR-2 hot path;
    - the {b event} tier ([*_cas_failures], [cells_skipped],
      [help_*]) is recorded only by builds instantiated with
      {!Probe.Enabled}; a {!Probe.Disabled} build never touches these
      fields.

    Each handle owns one [t]; only the owning thread writes it, so the
    fields are plain mutable ints with no synchronization cost on the
    operation paths.  Allocate with {!create_padded} wherever handles
    are laid out next to each other, so two handles' counters never
    share a cache line.  Aggregation across handles happens after the
    threads quiesce (or racily, for monitoring — the fields are
    word-sized, so a torn read is impossible; a slightly stale one is
    fine). *)

type t = {
  mutable fast_enqueues : int;
  mutable slow_enqueues : int;
  mutable fast_dequeues : int;
  mutable slow_dequeues : int;
  mutable empty_dequeues : int;
  mutable enq_cas_failures : int;
      (** Fast-path enqueue attempts whose deposit CAS lost the cell
          (each failed attempt, not each operation). *)
  mutable deq_cas_failures : int;
      (** Fast-path dequeue attempts that consumed a cell without
          claiming a value (the cell was ⊤ or the claim CAS lost). *)
  mutable cells_skipped : int;
      (** Cells consumed by a slow-path enqueue's acquire loop and
          abandoned without completing the transfer there. *)
  mutable help_enqueues : int;
      (** Peer enqueue requests this handle claimed for a cell
          (help-enqueue completions, Listing 3's helping arm). *)
  mutable help_dequeues : int;
      (** Peer dequeue requests this handle did pending helping work
          for (help_deq entered with work to do, Listing 4). *)
  mutable enq_batches : int;
      (** [enq_batch] calls that reserved at least one cell (one FAA
          each, regardless of batch size). *)
  mutable deq_batches : int;  (** Likewise for [deq_batch]. *)
  mutable enq_batch_cells : int;
      (** Cells reserved across all [enq_batch] calls;
          [enq_batch_cells / enq_batches] is the realized amortization
          factor (cells per tail FAA). *)
  mutable deq_batch_cells : int;
  mutable enq_batch_fallbacks : int;
      (** Batch cells whose fast-path deposit failed and fell back to
          the per-cell slow path (partial-batch fallbacks). *)
  mutable deq_batch_fallbacks : int;
}

val create : unit -> t
val create_padded : unit -> t
(** [create] re-allocated onto its own cache line(s)
    ({!Primitives.Padding.copy_as_padded}); use wherever the counter
    block lives next to other hot state. *)

val reset : t -> unit
val add : into:t -> t -> unit

val absorb : into:t -> t -> unit
(** [add] followed by [reset] of the source: moves the counts.  Used
    when a departed domain's handle slot is recycled, so its
    operations stay visible in queue-level aggregates exactly once. *)

val total_enqueues : t -> int
val total_dequeues : t -> int
val total_ops : t -> int

val slow_enqueue_pct : t -> float
(** Percentage of enqueues completed on the slow path, as in Table 2.
    0 when no enqueues ran. *)

val slow_dequeue_pct : t -> float
val empty_dequeue_pct : t -> float

val slow_enqueue_rate : t -> float
(** Fraction in [0,1] (0 when no enqueues ran) — the §6 claim is that
    this stays below 1e-6 at patience 10. *)

val slow_dequeue_rate : t -> float

val slow_rate : t -> float
(** Slow-path operations over all operations, both directions. *)

val per_million : float -> float
(** Scale a rate to operations-per-million for display. *)

val pp : Format.formatter -> t -> unit
(** Path tier one-liner (the historic [Op_stats.pp] format). *)

val avg_enq_batch : t -> float
(** Mean cells reserved per enqueue-side tail FAA (0 when no batches
    ran) — the amortization factor the batch path exists to buy. *)

val avg_deq_batch : t -> float

val pp_events : Format.formatter -> t -> unit
(** Event tier one-liner (all zeros on a [Probe.Disabled] build). *)
