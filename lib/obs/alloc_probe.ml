(* See alloc_probe.mli. *)

type t = {
  mutable enq_ops : float;
  mutable enq_words : float;
  mutable deq_ops : float;
  mutable deq_words : float;
}

type cls = Enqueue | Dequeue

let create () = { enq_ops = 0.0; enq_words = 0.0; deq_ops = 0.0; deq_words = 0.0 }

let reset t =
  t.enq_ops <- 0.0;
  t.enq_words <- 0.0;
  t.deq_ops <- 0.0;
  t.deq_words <- 0.0

let record t cls words =
  match cls with
  | Enqueue ->
    t.enq_ops <- t.enq_ops +. 1.0;
    t.enq_words <- t.enq_words +. words
  | Dequeue ->
    t.deq_ops <- t.deq_ops +. 1.0;
    t.deq_words <- t.deq_words +. words

let merge_into ~into t =
  into.enq_ops <- into.enq_ops +. t.enq_ops;
  into.enq_words <- into.enq_words +. t.enq_words;
  into.deq_ops <- into.deq_ops +. t.deq_ops;
  into.deq_words <- into.deq_words +. t.deq_words

let ops t = function Enqueue -> t.enq_ops | Dequeue -> t.deq_ops
let words t = function Enqueue -> t.enq_words | Dequeue -> t.deq_words

let per num den = if den = 0.0 then 0.0 else num /. den
let words_per_enqueue t = per t.enq_words t.enq_ops
let words_per_dequeue t = per t.deq_words t.deq_ops
let words_per_op t = per (t.enq_words +. t.deq_words) (t.enq_ops +. t.deq_ops)

let pp ppf t =
  Format.fprintf ppf
    "alloc: %.2f words/enq (%.0f ops), %.2f words/deq (%.0f ops), %.2f words/op"
    (words_per_enqueue t) t.enq_ops (words_per_dequeue t) t.deq_ops (words_per_op t)

(* The window handle is an [int], deliberately: an immediate crosses
   the [start]/[record] call boundary without allocating, whereas a
   [float] handle would be boxed at the [record] call site — inside
   the very window it delimits — in a non-flambda build (2 words of
   self-pollution per op).  [Gc.minor_words] is exact as an int up to
   2^53 words, far beyond any run length. *)
module Meter (P : Probe.S) = struct
  let enabled = P.enabled
  let start () = if P.enabled then int_of_float (Gc.minor_words ()) else 0

  let record acc cls w0 =
    if P.enabled then record acc cls (Gc.minor_words () -. float_of_int w0)
end
