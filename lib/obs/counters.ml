(* Per-handle operation-path event counters; see counters.mli.

   Two tiers share one record so a handle carries exactly one stats
   block:

   - the *path* tier (fast/slow/empty outcomes) is what Table 2 of the
     paper reports and what the queue has always recorded
     unconditionally — one plain-int increment per completed
     operation;
   - the *event* tier (CAS failures, cells skipped, helping) is only
     written when the instrumented build ([Obs.Probe.Enabled]) is
     compiled in, so the production queue never touches those fields.

   All fields are owner-written plain mutable ints: no atomics, no
   contention, and the whole record is cache-padded at allocation so
   neighbouring handles' counters never share a line. *)

type t = {
  (* path tier *)
  mutable fast_enqueues : int;
  mutable slow_enqueues : int;
  mutable fast_dequeues : int;
  mutable slow_dequeues : int;
  mutable empty_dequeues : int;
  (* event tier *)
  mutable enq_cas_failures : int;
  mutable deq_cas_failures : int;
  mutable cells_skipped : int;
  mutable help_enqueues : int;
  mutable help_dequeues : int;
  mutable enq_batches : int;
  mutable deq_batches : int;
  mutable enq_batch_cells : int;
  mutable deq_batch_cells : int;
  mutable enq_batch_fallbacks : int;
  mutable deq_batch_fallbacks : int;
}

let create () =
  {
    fast_enqueues = 0;
    slow_enqueues = 0;
    fast_dequeues = 0;
    slow_dequeues = 0;
    empty_dequeues = 0;
    enq_cas_failures = 0;
    deq_cas_failures = 0;
    cells_skipped = 0;
    help_enqueues = 0;
    help_dequeues = 0;
    enq_batches = 0;
    deq_batches = 0;
    enq_batch_cells = 0;
    deq_batch_cells = 0;
    enq_batch_fallbacks = 0;
    deq_batch_fallbacks = 0;
  }

let create_padded () = Primitives.Padding.copy_as_padded (create ())

let reset t =
  t.fast_enqueues <- 0;
  t.slow_enqueues <- 0;
  t.fast_dequeues <- 0;
  t.slow_dequeues <- 0;
  t.empty_dequeues <- 0;
  t.enq_cas_failures <- 0;
  t.deq_cas_failures <- 0;
  t.cells_skipped <- 0;
  t.help_enqueues <- 0;
  t.help_dequeues <- 0;
  t.enq_batches <- 0;
  t.deq_batches <- 0;
  t.enq_batch_cells <- 0;
  t.deq_batch_cells <- 0;
  t.enq_batch_fallbacks <- 0;
  t.deq_batch_fallbacks <- 0

let add ~into t =
  into.fast_enqueues <- into.fast_enqueues + t.fast_enqueues;
  into.slow_enqueues <- into.slow_enqueues + t.slow_enqueues;
  into.fast_dequeues <- into.fast_dequeues + t.fast_dequeues;
  into.slow_dequeues <- into.slow_dequeues + t.slow_dequeues;
  into.empty_dequeues <- into.empty_dequeues + t.empty_dequeues;
  into.enq_cas_failures <- into.enq_cas_failures + t.enq_cas_failures;
  into.deq_cas_failures <- into.deq_cas_failures + t.deq_cas_failures;
  into.cells_skipped <- into.cells_skipped + t.cells_skipped;
  into.help_enqueues <- into.help_enqueues + t.help_enqueues;
  into.help_dequeues <- into.help_dequeues + t.help_dequeues;
  into.enq_batches <- into.enq_batches + t.enq_batches;
  into.deq_batches <- into.deq_batches + t.deq_batches;
  into.enq_batch_cells <- into.enq_batch_cells + t.enq_batch_cells;
  into.deq_batch_cells <- into.deq_batch_cells + t.deq_batch_cells;
  into.enq_batch_fallbacks <- into.enq_batch_fallbacks + t.enq_batch_fallbacks;
  into.deq_batch_fallbacks <- into.deq_batch_fallbacks + t.deq_batch_fallbacks

let absorb ~into t =
  add ~into t;
  reset t

let total_enqueues t = t.fast_enqueues + t.slow_enqueues
let total_dequeues t = t.fast_dequeues + t.slow_dequeues
let total_ops t = total_enqueues t + total_dequeues t

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let pct num den = 100.0 *. ratio num den
let slow_enqueue_pct t = pct t.slow_enqueues (total_enqueues t)
let slow_dequeue_pct t = pct t.slow_dequeues (total_dequeues t)
let empty_dequeue_pct t = pct t.empty_dequeues (total_dequeues t)
let slow_enqueue_rate t = ratio t.slow_enqueues (total_enqueues t)
let slow_dequeue_rate t = ratio t.slow_dequeues (total_dequeues t)
let slow_rate t = ratio (t.slow_enqueues + t.slow_dequeues) (total_ops t)
let per_million rate = 1e6 *. rate

let pp ppf t =
  Format.fprintf ppf
    "enq: %d fast / %d slow (%.3f%% slow); deq: %d fast / %d slow (%.3f%% slow); empty: %d (%.3f%%)"
    t.fast_enqueues t.slow_enqueues (slow_enqueue_pct t) t.fast_dequeues t.slow_dequeues
    (slow_dequeue_pct t) t.empty_dequeues (empty_dequeue_pct t)

let avg_enq_batch t = ratio t.enq_batch_cells t.enq_batches
let avg_deq_batch t = ratio t.deq_batch_cells t.deq_batches

let pp_events ppf t =
  Format.fprintf ppf
    "cas failures: %d enq / %d deq; cells skipped: %d; helped: %d enq / %d deq; batches: %d enq (avg %.1f, %d fb) / %d deq (avg %.1f, %d fb)"
    t.enq_cas_failures t.deq_cas_failures t.cells_skipped t.help_enqueues t.help_dequeues
    t.enq_batches (avg_enq_batch t) t.enq_batch_fallbacks t.deq_batches (avg_deq_batch t)
    t.deq_batch_fallbacks
