(** A sharded MPMC router over N internal wait-free queues.

    One [Wfqueue] saturates a single tail/head cache line: every
    operation in the machine meets at the same two FAA words, which is
    the paper's own scalability ceiling (§6 shows throughput flat
    beyond the first socket).  The standard deployment answer — Jiffy
    (Adas & Friedman, arXiv:2010.14189) builds its motivation on it,
    and "No Cords Attached" (Motiwala 2025) measures the win — is to
    spread the traffic over S independent shards and accept a {e
    relaxed} FIFO contract.  This module is that router: S internal
    queues behind the one-queue API, FAA-based producer affinity with
    periodic rebalancing, round-robin consumer dispatch, and an
    optional bounded mode with backpressure.

    {1 Ordering contract (d-bounded relaxed FIFO)}

    Two guarantees, one unconditional and one quantitative:

    - {b Per-shard FIFO always holds.}  Each shard is a linearizable
      wait-free FIFO queue; two values routed to the same shard are
      dequeued in their enqueue order.  A single producer that is not
      rebalanced between two enqueues therefore keeps its program
      order.
    - {b Global order is d-bounded.}  For a dequeued value [a], the
      number of values enqueued strictly after [a] (in real time) yet
      dequeued strictly before it is at most [d], where
      [d = (S-1) * (L + C*B)]: [S] shards, [L] the maximum depth any
      shard reaches while [a] is queued, [C] the maximum number of
      concurrent dequeuers and [B] the maximum batch size.  With
      [S = 1] this degenerates to [d = 0]: strict FIFO, the single
      queue's contract.  DESIGN.md §8 has the proof sketch; the
      [Lincheck.Relaxed_fifo] checker verifies both clauses on
      simulated traces.

    Values never cross shards after routing, so the conservation
    property (every value dequeued exactly once, none invented) is
    inherited from the shards verbatim.

    {1 Bounded mode}

    [create ~capacity] bounds each shard at [capacity] values
    ({e approximately} — the check reads the shard's tail-head length
    racily, so brief overshoot by in-flight producers is possible;
    the bound is backpressure, not an admission-control invariant).
    A full home shard first triggers an affinity rebalance over all
    S shards; only when every shard is full does the producer block
    ({!Router.enqueue}), fail softly ({!Router.try_enqueue}) or raise
    ({!Router.enqueue_exn} raising {!Router.Would_block}). *)

(** The queue interface the router composes: what every
    [Wfqueue_algo.Make] instantiation ([Wfqueue], [Wfqueue_obs],
    [Wfqueue_inject], the simulated queue) and every specialized
    [Topology] variant provides.  [dequeue_or] and [deq_batch_into]
    are the allocation-free entry points (physically-distinct
    [default] contract; see [Wfqueue.dequeue_or]). *)
module type QUEUE = sig
  type 'a t
  type 'a handle

  val create :
    ?patience:int ->
    ?segment_shift:int ->
    ?max_garbage:int ->
    ?reclamation:bool ->
    ?segment_cap:int ->
    unit ->
    'a t
  (** [segment_cap] selects the queue's own bounded-memory mode where
      supported (see [Wfqueue.create]); implementations without one
      may ignore it or refuse it, but must accept the argument. *)

  val register : 'a t -> 'a handle
  val retire : 'a t -> 'a handle -> unit
  val enqueue : 'a t -> 'a handle -> 'a -> unit

  val try_enqueue : 'a t -> 'a handle -> 'a -> bool
  (** Admission-checked enqueue: [false] means the queue refused the
      value right now (bounded-memory admission); an unbounded queue
      always admits.  A [false] must have no protocol footprint. *)

  val dequeue : 'a t -> 'a handle -> 'a option
  val dequeue_or : 'a t -> 'a handle -> 'a -> 'a
  val enq_batch : 'a t -> 'a handle -> 'a array -> unit

  val try_enq_batch : 'a t -> 'a handle -> 'a array -> bool
  (** All-or-nothing admission for a whole batch. *)

  val deq_batch : 'a t -> 'a handle -> int -> 'a option array
  val deq_batch_into : 'a t -> 'a handle -> 'a array -> default:'a -> int
  val approx_length : 'a t -> int
  val snapshot : 'a t -> Obs.Snapshot.t
  val reset_stats : 'a t -> unit
end

module Router (A : Primitives.Atomic_prims.S) (Q : QUEUE) : sig
  type 'a t
  type 'a handle

  exception Would_block
  (** Raised by {!enqueue_exn} when every shard refused the value —
      the {e same exception value} as [Wfqueue.Would_block], so one
      handler covers both the router's [~capacity] bound and a bounded
      shard's segment cap, in any composition. *)

  val create :
    ?shards:int ->
    ?capacity:int ->
    ?rebalance_every:int ->
    ?patience:int ->
    ?segment_shift:int ->
    ?max_garbage:int ->
    ?reclamation:bool ->
    ?segment_cap:int ->
    unit ->
    'a t
  (** [create ()] builds a router over [shards] (default 2) internal
      queues, each created with the given queue parameters.

      [capacity] bounds each shard (approximately, see the module
      header); omitted means unbounded.

      [segment_cap] is forwarded to every shard's [Q.create],
      switching each shard into its own bounded-memory mode (a {e
      hard} per-shard segment bound, [Wfqueue.create]); the router's
      rotation then treats a shard's admission refusal exactly like a
      full [capacity] shard, so the two bounds compose into one
      backpressure policy ({!enqueue} blocks, {!try_enqueue} reports
      [false], {!enqueue_exn} raises {!Would_block}).

      [rebalance_every] (default 64) is the producer-affinity
      rebalance period: after that many values a handle draws a fresh
      FAA ticket from the global assignment counter, so a long-lived
      producer migrates and static skew from the initial assignment
      washes out.

      @raise Invalid_argument on [shards < 1] or [capacity < 1]. *)

  val register : 'a t -> 'a handle
  (** A router handle for the calling domain: registers one handle on
      {e every} shard (dequeues scan all shards) and draws the home
      shard for enqueues from the FAA assignment counter.  Same
      ownership rule as the underlying queue: one domain per handle,
      never concurrent. *)

  val retire : 'a t -> 'a handle -> unit
  (** Retire the handle on every shard (see [Wfqueue.retire] for the
      soundness conditions). *)

  val enqueue : 'a t -> 'a handle -> 'a -> unit
  (** Enqueue to the home shard.  Unbounded: wait-free (the shard's
      own guarantee).  Bounded: blocks — parking via [A.cpu_relax],
      one scheduler yield per probe under simsched — until some shard
      has room, rebalancing the home shard onto it. *)

  val enqueue' : 'a t -> 'a handle -> 'a -> int
  (** {!enqueue} returning the shard the value went to — how the
      relaxed-FIFO checker attributes values to shards. *)

  val try_enqueue : 'a t -> 'a handle -> 'a -> bool
  (** Bounded-mode soft enqueue: [false] instead of blocking when all
      [S] shards are at capacity (counted in {!blocked}).  Equivalent
      to {!enqueue} (always [true]) when unbounded. *)

  val enqueue_exn : 'a t -> 'a handle -> 'a -> unit
  (** {!try_enqueue} raising {!Would_block} instead of returning
      [false]. *)

  val dequeue : 'a t -> 'a handle -> 'a option
  (** Dequeue from the first non-empty shard in rotation order,
      starting at a shard chosen by a global round-robin FAA ticket
      (so concurrent consumers spread instead of convoying).  [None]
      only after a full scan in which {e every} shard answered EMPTY
      through a real dequeue — each shard was individually observed
      empty at some point inside this call's interval. *)

  val dequeue_or : 'a t -> 'a handle -> 'a -> 'a
  (** Allocation-free {!dequeue}: the same rotation scan through the
      shards' [dequeue_or], returning [default] only after every shard
      answered EMPTY through a real dequeue.  The caller must pick a
      [default] physically distinct from any stored value (for
      immediates like [int], any value outside the stored domain, e.g.
      [min_int]). *)

  val enq_batch : 'a t -> 'a handle -> 'a array -> unit
  (** The whole batch goes to the home shard with one tail FAA
      ([Wfqueue.enq_batch]), so a batch preserves its internal order
      under the per-shard FIFO clause.  Counts as
      [Array.length vs] values toward the rebalance period and the
      capacity check. *)

  val enq_batch' : 'a t -> 'a handle -> 'a array -> int
  (** {!enq_batch} returning the receiving shard. *)

  val try_enq_batch : 'a t -> 'a handle -> 'a array -> bool
  val enq_batch_exn : 'a t -> 'a handle -> 'a array -> unit

  val deq_batch : 'a t -> 'a handle -> int -> 'a option array
  (** Batch dequeue from the first productive shard in rotation: a
      shard that looks non-empty receives the full [k]-ticket batch
      ([Wfqueue.deq_batch]); a shard that looks empty is probed with a
      single ticket so an imprecise [approx_length] cannot fabricate
      an EMPTY.  Returns the first shard answer containing at least
      one value, or an all-[None] array once every shard really
      answered EMPTY. *)

  val deq_batch_into : 'a t -> 'a handle -> 'a array -> default:'a -> int
  (** Allocation-free {!deq_batch}: values land bare in the caller's
      buffer (compacted to the front, remainder filled with
      [default]), returning how many were written.  Same probing
      discipline as {!deq_batch} and same [default] contract as
      {!dequeue_or}.  With the shards' own [deq_batch_into] the whole
      router round trip allocates nothing. *)

  (** {1 Introspection} *)

  val shards : 'a t -> int
  val home_shard : 'a handle -> int
  (** The shard this handle currently enqueues to. *)

  val approx_length : 'a t -> int
  (** Sum of the shards' approximate lengths. *)

  val shard_length : 'a t -> int -> int

  val steals : 'a t -> int
  (** Dequeues served by a shard other than their rotation start —
      each one is a unit of cross-shard reordering pressure. *)

  val rebalances : 'a t -> int
  (** Producer-affinity migrations (periodic and capacity-forced). *)

  val blocked : 'a t -> int
  (** Bounded-mode enqueue attempts that found every shard full. *)

  val d_bound : 'a t -> dequeuers:int -> batch:int -> depth:int -> int
  (** The documented reordering bound [(S-1) * (depth + dequeuers *
      batch)] for this router's [S]; [0] when [S = 1].  [depth] is the
      maximum per-shard backlog the workload reaches (for a
      fill-then-drain phase test, the per-shard enqueue count). *)

  val snapshot : 'a t -> Obs.Snapshot.t
  (** The S per-shard snapshots folded into one queue-level view
      ({!Obs.Snapshot.fold}). *)

  val shard_snapshots : 'a t -> Obs.Snapshot.t array
  val reset_stats : 'a t -> unit

  val pp_snapshot_table : Format.formatter -> 'a t -> unit
  (** One row per shard (ops, slow paths, segments) plus the router
      counters — the [repro shard] report. *)
end

(** {1 Instantiations} *)

module Wf : module type of Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue)
(** Production router: hardware atomics over the production queue
    (probes and injection compiled out). *)

module Wf_obs : module type of Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue_obs)
(** Instrumented router for telemetry runs (event-tier counters on). *)

module Storm : module type of Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue_inject)
(** Fault-injection router for the storm driver: probes and injection
    points compiled in (transparent until a controller is
    installed). *)

module Adaptive : module type of Router (Primitives.Atomic_prims.Real) (Topology.Adaptive)
(** Topology-adaptive shards: each shard starts on the specialized
    SPSC variant and degrades (SPSC -> MPSC/SPMC -> general) as the
    router's traffic reveals producer/consumer roles on it.  The
    Router text is reused verbatim — [Topology.Adaptive] satisfies
    {!QUEUE} — so single-threaded deployments pay the cheap variant
    and multi-threaded ones converge to the general queue per shard. *)

module Adaptive_storm :
    module type of Router (Primitives.Atomic_prims.Real) (Topology.Adaptive_inject)
(** Fault-injection build of {!Adaptive}: kills and parks land in the
    specialized variants' windows, in the adaptive switch window
    ([Topo_switch_draining]) and in the general backend's windows. *)
