(* Sharded MPMC router; see shard.mli for the contract and DESIGN.md
   §8 for the d-bounded ordering argument. *)

module type QUEUE = sig
  type 'a t
  type 'a handle

  val create :
    ?patience:int ->
    ?segment_shift:int ->
    ?max_garbage:int ->
    ?reclamation:bool ->
    unit ->
    'a t

  val register : 'a t -> 'a handle
  val retire : 'a t -> 'a handle -> unit
  val enqueue : 'a t -> 'a handle -> 'a -> unit
  val dequeue : 'a t -> 'a handle -> 'a option
  val enq_batch : 'a t -> 'a handle -> 'a array -> unit
  val deq_batch : 'a t -> 'a handle -> int -> 'a option array
  val approx_length : 'a t -> int
  val snapshot : 'a t -> Obs.Snapshot.t
  val reset_stats : 'a t -> unit
end

module Router (A : Primitives.Atomic_prims.S) (Q : QUEUE) = struct
  exception Would_block

  type 'a t = {
    shards : 'a Q.t array;
    n : int;
    capacity : int; (* per shard; max_int means unbounded *)
    rebalance_every : int;
    (* The two routing counters are the router's only shared-write
       state; both are FAA tickets, so routing inherits the paper's
       no-CAS-retry discipline.  Contended so they never share a line
       with each other or the shard array. *)
    assign : int A.t; (* producer-affinity tickets *)
    deq_cursor : int A.t; (* consumer rotation-start tickets *)
    steals : int A.t;
    rebalances : int A.t;
    blocked : int A.t;
  }

  type 'a handle = {
    hs : 'a Q.handle array; (* one per shard: dequeues scan them all *)
    mutable enq_shard : int;
    mutable enq_since_rebalance : int;
  }

  let create ?(shards = 2) ?capacity ?(rebalance_every = 64) ?patience ?segment_shift
      ?max_garbage ?reclamation () =
    if shards < 1 then invalid_arg "Shard.Router.create: shards < 1";
    if rebalance_every < 1 then invalid_arg "Shard.Router.create: rebalance_every < 1";
    let capacity =
      match capacity with
      | None -> max_int
      | Some c when c < 1 -> invalid_arg "Shard.Router.create: capacity < 1"
      | Some c -> c
    in
    {
      shards =
        Array.init shards (fun _ ->
            Q.create ?patience ?segment_shift ?max_garbage ?reclamation ());
      n = shards;
      capacity;
      rebalance_every;
      assign = A.make_contended 0;
      deq_cursor = A.make_contended 0;
      steals = A.make_contended 0;
      rebalances = A.make_contended 0;
      blocked = A.make_contended 0;
    }

  let register t =
    {
      hs = Array.map Q.register t.shards;
      enq_shard = A.fetch_and_add t.assign 1 mod t.n;
      enq_since_rebalance = 0;
    }

  let retire t h = Array.iteri (fun i hh -> Q.retire t.shards.(i) hh) h.hs

  (* ---------------------------------------------------------------- *)
  (* Enqueue routing                                                  *)

  let move_home t h s =
    if s <> h.enq_shard then begin
      h.enq_shard <- s;
      ignore (A.fetch_and_add t.rebalances 1)
    end

  (* Periodic affinity refresh: after [rebalance_every] values the
     handle draws a fresh assignment ticket, so producers migrate and
     initial skew washes out without any coordination beyond one FAA. *)
  let after_enqueue t h k =
    h.enq_since_rebalance <- h.enq_since_rebalance + k;
    if h.enq_since_rebalance >= t.rebalance_every then begin
      h.enq_since_rebalance <- 0;
      move_home t h (A.fetch_and_add t.assign 1 mod t.n)
    end

  let has_room t s k = Q.approx_length t.shards.(s) + k <= t.capacity

  (* Find a shard with room for [k] more values, home first: [Some s]
     rebalances onto [s], [None] means all full right now. *)
  let find_room t h k =
    let rec scan j =
      if j = t.n then None
      else
        let s = (h.enq_shard + j) mod t.n in
        if has_room t s k then Some s else scan (j + 1)
    in
    scan 0

  let enq_one t h s v = Q.enqueue t.shards.(s) h.hs.(s) v

  (* [Some s] = enqueued to shard [s]; [None] = all shards full. *)
  let try_enqueue_shard t h v =
    if t.capacity = max_int then begin
      let s = h.enq_shard in
      enq_one t h s v;
      after_enqueue t h 1;
      Some s
    end
    else
      match find_room t h 1 with
      | Some s ->
        move_home t h s;
        enq_one t h s v;
        after_enqueue t h 1;
        Some s
      | None ->
        ignore (A.fetch_and_add t.blocked 1);
        None

  let try_enqueue t h v = Option.is_some (try_enqueue_shard t h v)

  let rec enqueue' t h v =
    match try_enqueue_shard t h v with
    | Some s -> s
    | None ->
      A.cpu_relax ();
      enqueue' t h v

  let enqueue t h v = ignore (enqueue' t h v)
  let enqueue_exn t h v = if not (try_enqueue t h v) then raise Would_block

  let try_enq_batch_shard t h vs =
    let k = Array.length vs in
    if k = 0 then Some h.enq_shard
    else if t.capacity = max_int then begin
      let s = h.enq_shard in
      Q.enq_batch t.shards.(s) h.hs.(s) vs;
      after_enqueue t h k;
      Some s
    end
    else
      match find_room t h k with
      | Some s ->
        move_home t h s;
        Q.enq_batch t.shards.(s) h.hs.(s) vs;
        after_enqueue t h k;
        Some s
      | None ->
        ignore (A.fetch_and_add t.blocked 1);
        None

  let try_enq_batch t h vs = Option.is_some (try_enq_batch_shard t h vs)

  let rec enq_batch' t h vs =
    match try_enq_batch_shard t h vs with
    | Some s -> s
    | None ->
      A.cpu_relax ();
      enq_batch' t h vs

  let enq_batch t h vs = ignore (enq_batch' t h vs)
  let enq_batch_exn t h vs = if not (try_enq_batch t h vs) then raise Would_block

  (* ---------------------------------------------------------------- *)
  (* Dequeue routing                                                  *)

  (* Consumers rotate through the shards starting at a global FAA
     ticket.  A router-level EMPTY is only reported after every shard
     answered EMPTY through a real dequeue inside this call — the
     relaxed contract's EMPTY clause (each shard individually observed
     empty during the interval), with no reliance on the racy
     [approx_length]. *)
  let dequeue t h =
    let start = A.fetch_and_add t.deq_cursor 1 mod t.n in
    let rec scan j =
      if j = t.n then None
      else
        let s = (start + j) mod t.n in
        match Q.dequeue t.shards.(s) h.hs.(s) with
        | Some _ as v ->
          if j > 0 then ignore (A.fetch_and_add t.steals 1);
          v
        | None -> scan (j + 1)
    in
    scan 0

  (* A shard that looks non-empty gets the full k-ticket batch; one
     that looks empty gets a single-ticket probe, so an imprecise
     length estimate cannot fabricate an EMPTY but also cannot burn
     k tickets on a drained shard. *)
  let deq_batch t h k =
    if k <= 0 then [||]
    else begin
      let start = A.fetch_and_add t.deq_cursor 1 mod t.n in
      let rec scan j =
        if j = t.n then Array.make k None
        else begin
          let s = (start + j) mod t.n in
          let want = if Q.approx_length t.shards.(s) > 0 then k else 1 in
          let out = Q.deq_batch t.shards.(s) h.hs.(s) want in
          if Array.exists Option.is_some out then begin
            if j > 0 then ignore (A.fetch_and_add t.steals 1);
            if want = k then out
            else begin
              let full = Array.make k None in
              Array.blit out 0 full 0 want;
              full
            end
          end
          else scan (j + 1)
        end
      in
      scan 0
    end

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                    *)

  let shards t = t.n
  let home_shard h = h.enq_shard
  let shard_length t s = Q.approx_length t.shards.(s)
  let approx_length t = Array.fold_left (fun acc q -> acc + Q.approx_length q) 0 t.shards
  let steals t = A.get t.steals
  let rebalances t = A.get t.rebalances
  let blocked t = A.get t.blocked

  let d_bound t ~dequeuers ~batch ~depth =
    if t.n = 1 then 0 else (t.n - 1) * (depth + (dequeuers * max 1 batch))

  let shard_snapshots t = Array.map Q.snapshot t.shards
  let snapshot t = Obs.Snapshot.fold (Array.to_list (shard_snapshots t))
  let reset_stats t = Array.iter Q.reset_stats t.shards

  let pp_snapshot_table ppf t =
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun i snap ->
        let ops = snap.Obs.Snapshot.ops in
        Format.fprintf ppf
          "shard %d: enq %d fast / %d slow; deq %d fast / %d slow (%d empty); segs live %d reclaimed %d@."
          i ops.Obs.Counters.fast_enqueues ops.slow_enqueues ops.fast_dequeues
          ops.slow_dequeues ops.empty_dequeues snap.segments.live snap.segments.reclaimed)
      (shard_snapshots t);
    Format.fprintf ppf "router:  %d steals, %d rebalances, %d blocked@]" (steals t)
      (rebalances t) (blocked t)
end

module Wf = Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue)
module Wf_obs = Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue_obs)
module Storm = Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue_inject)
