(* Sharded MPMC router; see shard.mli for the contract and DESIGN.md
   §8 for the d-bounded ordering argument. *)

module type QUEUE = sig
  type 'a t
  type 'a handle

  val create :
    ?patience:int ->
    ?segment_shift:int ->
    ?max_garbage:int ->
    ?reclamation:bool ->
    ?segment_cap:int ->
    unit ->
    'a t

  val register : 'a t -> 'a handle
  val retire : 'a t -> 'a handle -> unit
  val enqueue : 'a t -> 'a handle -> 'a -> unit
  val try_enqueue : 'a t -> 'a handle -> 'a -> bool
  val dequeue : 'a t -> 'a handle -> 'a option
  val dequeue_or : 'a t -> 'a handle -> 'a -> 'a
  val enq_batch : 'a t -> 'a handle -> 'a array -> unit
  val try_enq_batch : 'a t -> 'a handle -> 'a array -> bool
  val deq_batch : 'a t -> 'a handle -> int -> 'a option array
  val deq_batch_into : 'a t -> 'a handle -> 'a array -> default:'a -> int
  val approx_length : 'a t -> int
  val snapshot : 'a t -> Obs.Snapshot.t
  val reset_stats : 'a t -> unit
end

module Router (A : Primitives.Atomic_prims.S) (Q : QUEUE) = struct
  (* Rebinding, not a fresh exception: the router's backpressure
     signal is the same value as the bounded queue's, so one handler
     covers "router capacity full" and "shard segment cap full"
     uniformly across every (A, Q) instantiation. *)
  exception Would_block = Wfq.Wfqueue_algo.Would_block

  type 'a t = {
    shards : 'a Q.t array;
    n : int;
    capacity : int; (* per shard; max_int means unbounded *)
    rebalance_every : int;
    (* The two routing counters are the router's only shared-write
       state; both are FAA tickets, so routing inherits the paper's
       no-CAS-retry discipline.  Contended so they never share a line
       with each other or the shard array. *)
    assign : int A.t; (* producer-affinity tickets *)
    deq_cursor : int A.t; (* consumer rotation-start tickets *)
    steals : int A.t;
    rebalances : int A.t;
    blocked : int A.t;
  }

  type 'a handle = {
    hs : 'a Q.handle array; (* one per shard: dequeues scan them all *)
    mutable enq_shard : int;
    mutable enq_since_rebalance : int;
  }

  let create ?(shards = 2) ?capacity ?(rebalance_every = 64) ?patience ?segment_shift
      ?max_garbage ?reclamation ?segment_cap () =
    if shards < 1 then invalid_arg "Shard.Router.create: shards < 1";
    if rebalance_every < 1 then invalid_arg "Shard.Router.create: rebalance_every < 1";
    let capacity =
      match capacity with
      | None -> max_int
      | Some c when c < 1 -> invalid_arg "Shard.Router.create: capacity < 1"
      | Some c -> c
    in
    {
      shards =
        Array.init shards (fun _ ->
            Q.create ?patience ?segment_shift ?max_garbage ?reclamation ?segment_cap ());
      n = shards;
      capacity;
      rebalance_every;
      assign = A.make_contended 0;
      deq_cursor = A.make_contended 0;
      steals = A.make_contended 0;
      rebalances = A.make_contended 0;
      blocked = A.make_contended 0;
    }

  let register t =
    {
      hs = Array.map Q.register t.shards;
      enq_shard = A.fetch_and_add t.assign 1 mod t.n;
      enq_since_rebalance = 0;
    }

  let retire t h = Array.iteri (fun i hh -> Q.retire t.shards.(i) hh) h.hs

  (* ---------------------------------------------------------------- *)
  (* Enqueue routing                                                  *)

  let move_home t h s =
    if s <> h.enq_shard then begin
      h.enq_shard <- s;
      ignore (A.fetch_and_add t.rebalances 1)
    end

  (* Periodic affinity refresh: after [rebalance_every] values the
     handle draws a fresh assignment ticket, so producers migrate and
     initial skew washes out without any coordination beyond one FAA. *)
  let after_enqueue t h k =
    h.enq_since_rebalance <- h.enq_since_rebalance + k;
    if h.enq_since_rebalance >= t.rebalance_every then begin
      h.enq_since_rebalance <- 0;
      move_home t h (A.fetch_and_add t.assign 1 mod t.n)
    end

  let has_room t s k = Q.approx_length t.shards.(s) + k <= t.capacity

  (* Shard indices travel as bare ints ([-1] = all full right now):
     an option per routed value would be the router's only hot-path
     allocation, and the alloc gate holds it to the same zero as the
     shards underneath. *)

  (* One routed attempt: rotate from the home shard, placing the value
     on the first shard that passes both the router's value-count
     check ([has_room], the [~capacity] bound) and the shard's own
     admission ([Q.try_enqueue] — where a bounded underlying queue
     says no).  The two bounds compose into one backpressure policy:
     either rejection just moves the rotation on, and only a full
     rotation reports [-1].  The unbounded/unbounded composition takes
     this same path at the old direct-enqueue cost — [j = 0] is the
     home shard, [capacity = max_int] short-circuits [has_room], an
     unbounded [Q.try_enqueue] admits unconditionally, and [move_home]
     self-guards on [s = enq_shard]. *)
  let rec route_enq t h v j =
    if j = t.n then -1
    else
      let s = (h.enq_shard + j) mod t.n in
      if (t.capacity = max_int || has_room t s 1) && Q.try_enqueue t.shards.(s) h.hs.(s) v
      then s
      else route_enq t h v (j + 1)

  let try_enqueue_shard t h v =
    let s = route_enq t h v 0 in
    if s >= 0 then begin
      move_home t h s;
      after_enqueue t h 1
    end
    else ignore (A.fetch_and_add t.blocked 1);
    s

  let try_enqueue t h v = try_enqueue_shard t h v >= 0

  let rec enqueue' t h v =
    let s = try_enqueue_shard t h v in
    if s >= 0 then s
    else begin
      A.cpu_relax ();
      enqueue' t h v
    end

  let enqueue t h v = ignore (enqueue' t h v)
  let enqueue_exn t h v = if not (try_enqueue t h v) then raise Would_block

  (* Same rotation as [route_enq]; the batch is placed whole (one
     shard, one tail FAA) or not at all on each candidate. *)
  let rec route_batch t h vs k j =
    if j = t.n then -1
    else
      let s = (h.enq_shard + j) mod t.n in
      if (t.capacity = max_int || has_room t s k)
         && Q.try_enq_batch t.shards.(s) h.hs.(s) vs
      then s
      else route_batch t h vs k (j + 1)

  let try_enq_batch_shard t h vs =
    let k = Array.length vs in
    if k = 0 then h.enq_shard
    else begin
      let s = route_batch t h vs k 0 in
      if s >= 0 then begin
        move_home t h s;
        after_enqueue t h k
      end
      else ignore (A.fetch_and_add t.blocked 1);
      s
    end

  let try_enq_batch t h vs = try_enq_batch_shard t h vs >= 0

  let rec enq_batch' t h vs =
    let s = try_enq_batch_shard t h vs in
    if s >= 0 then s
    else begin
      A.cpu_relax ();
      enq_batch' t h vs
    end

  let enq_batch t h vs = ignore (enq_batch' t h vs)
  let enq_batch_exn t h vs = if not (try_enq_batch t h vs) then raise Would_block

  (* ---------------------------------------------------------------- *)
  (* Dequeue routing                                                  *)

  (* Consumers rotate through the shards starting at a global FAA
     ticket.  A router-level EMPTY is only reported after every shard
     answered EMPTY through a real dequeue inside this call — the
     relaxed contract's EMPTY clause (each shard individually observed
     empty during the interval), with no reliance on the racy
     [approx_length]. *)
  let rec deq_scan t h start j =
    if j = t.n then None
    else
      let s = (start + j) mod t.n in
      match Q.dequeue t.shards.(s) h.hs.(s) with
      | Some _ as v ->
        if j > 0 then ignore (A.fetch_and_add t.steals 1);
        v
      | None -> deq_scan t h start (j + 1)

  let dequeue t h =
    let start = A.fetch_and_add t.deq_cursor 1 mod t.n in
    deq_scan t h start 0

  (* The allocation-free dequeue: the same rotation scan through the
     per-shard [dequeue_or], with the hit test by physical inequality.
     Callers must pick a [default] physically distinct from any stored
     value (immediates — ints, constant constructors — compare by
     identity, so e.g. [min_int] is safe for int payloads); see
     [Wfqueue.dequeue_or] for the contract this inherits. *)
  let rec deq_or_scan t h default start j =
    if j = t.n then default
    else
      let s = (start + j) mod t.n in
      let v = Q.dequeue_or t.shards.(s) h.hs.(s) default in
      if v != default then begin
        if j > 0 then ignore (A.fetch_and_add t.steals 1);
        v
      end
      else deq_or_scan t h default start (j + 1)

  let dequeue_or t h default =
    let start = A.fetch_and_add t.deq_cursor 1 mod t.n in
    deq_or_scan t h default start 0

  (* A shard that looks non-empty gets the full k-ticket batch; one
     that looks empty gets a single-ticket probe, so an imprecise
     length estimate cannot fabricate an EMPTY but also cannot burn
     k tickets on a drained shard. *)
  let deq_batch t h k =
    if k <= 0 then [||]
    else begin
      let start = A.fetch_and_add t.deq_cursor 1 mod t.n in
      let rec scan j =
        if j = t.n then Array.make k None
        else begin
          let s = (start + j) mod t.n in
          let want = if Q.approx_length t.shards.(s) > 0 then k else 1 in
          let out = Q.deq_batch t.shards.(s) h.hs.(s) want in
          if Array.exists Option.is_some out then begin
            if j > 0 then ignore (A.fetch_and_add t.steals 1);
            if want = k then out
            else begin
              let full = Array.make k None in
              Array.blit out 0 full 0 want;
              full
            end
          end
          else scan (j + 1)
        end
      in
      scan 0
    end

  (* Allocation-free batch dequeue: same probing discipline as
     [deq_batch] — a full-width [deq_batch_into] on a shard that looks
     non-empty, a single [dequeue_or] probe on one that looks empty —
     but values land bare in the caller's buffer, so the router adds
     zero allocations to the per-shard zero.  Same physically-distinct
     [default] contract as [dequeue_or]. *)
  let rec deq_into_scan t h (out : 'a array) default k start j =
    if j = t.n then begin
      Array.fill out 0 k default;
      0
    end
    else
      let s = (start + j) mod t.n in
      if Q.approx_length t.shards.(s) > 0 then begin
        let n = Q.deq_batch_into t.shards.(s) h.hs.(s) out ~default in
        if n > 0 then begin
          if j > 0 then ignore (A.fetch_and_add t.steals 1);
          n
        end
        else deq_into_scan t h out default k start (j + 1)
      end
      else begin
        let v = Q.dequeue_or t.shards.(s) h.hs.(s) default in
        if v != default then begin
          if j > 0 then ignore (A.fetch_and_add t.steals 1);
          out.(0) <- v;
          Array.fill out 1 (k - 1) default;
          1
        end
        else deq_into_scan t h out default k start (j + 1)
      end

  let deq_batch_into t h (out : 'a array) ~default =
    let k = Array.length out in
    if k = 0 then 0
    else begin
      let start = A.fetch_and_add t.deq_cursor 1 mod t.n in
      deq_into_scan t h out default k start 0
    end

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                    *)

  let shards t = t.n
  let home_shard h = h.enq_shard
  let shard_length t s = Q.approx_length t.shards.(s)
  let approx_length t = Array.fold_left (fun acc q -> acc + Q.approx_length q) 0 t.shards
  let steals t = A.get t.steals
  let rebalances t = A.get t.rebalances
  let blocked t = A.get t.blocked

  let d_bound t ~dequeuers ~batch ~depth =
    if t.n = 1 then 0 else (t.n - 1) * (depth + (dequeuers * max 1 batch))

  let shard_snapshots t = Array.map Q.snapshot t.shards
  let snapshot t = Obs.Snapshot.fold (Array.to_list (shard_snapshots t))
  let reset_stats t = Array.iter Q.reset_stats t.shards

  let pp_snapshot_table ppf t =
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun i snap ->
        let ops = snap.Obs.Snapshot.ops in
        Format.fprintf ppf
          "shard %d: enq %d fast / %d slow; deq %d fast / %d slow (%d empty); segs live %d reclaimed %d@."
          i ops.Obs.Counters.fast_enqueues ops.slow_enqueues ops.fast_dequeues
          ops.slow_dequeues ops.empty_dequeues snap.segments.live snap.segments.reclaimed)
      (shard_snapshots t);
    Format.fprintf ppf "router:  %d steals, %d rebalances, %d blocked@]" (steals t)
      (rebalances t) (blocked t)
end

module Wf = Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue)
module Wf_obs = Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue_obs)
module Storm = Router (Primitives.Atomic_prims.Real) (Wfq.Wfqueue_inject)

(* Topology-adaptive shards: each shard starts on the cheapest
   specialized variant and degrades to the general queue as the
   router's handles reveal roles on it (Topology.Adaptive satisfies
   QUEUE, so the Router text is reused verbatim — which is also the
   compile-out proof: the production Router never links the storm
   variants). *)
module Adaptive = Router (Primitives.Atomic_prims.Real) (Topology.Adaptive)
module Adaptive_storm = Router (Primitives.Atomic_prims.Real) (Topology.Adaptive_inject)
