(* See relaxed_fifo.mli. *)

type violation =
  | Shard_violation of int * Fast_fifo.violation
  | Overtaken of { value : int; count : int; bound : int }

let pp_violation ppf = function
  | Shard_violation (s, v) -> Format.fprintf ppf "shard %d: %a" s Fast_fifo.pp_violation v
  | Overtaken { value; count; bound } ->
    Format.fprintf ppf "value %d overtaken by %d later-enqueued values (bound %d)" value count
      bound

(* Per-value intervals for the overtaking count; values never dequeued
   get d_inv = d_res = max_int and can neither overtake (their d_res
   never strictly precedes anything) nor be counted as overtaken. *)
type itv = {
  value : int;
  e_inv : int;
  e_res : int;
  mutable d_inv : int;
  mutable d_res : int;
}

let check ?(complete = false) ~shards ~shard_of ~d evs =
  if shards < 1 then invalid_arg "Relaxed_fifo.check: shards < 1";
  let shard_of v =
    let s = shard_of v in
    if s < 0 || s >= shards then
      invalid_arg (Printf.sprintf "Relaxed_fifo.check: shard_of %d = %d not in [0,%d)" v s shards);
    s
  in
  (* Clause 1: each shard's sub-history is strict FIFO.  EMPTY events
     go to every shard: a router EMPTY asserts each shard was observed
     empty within the call's interval, so a value provably resident in
     shard s across that whole interval refutes it.  Values the
     checker cannot attribute (never-enqueued Gots) keep their Got
     event in the shard [shard_of] names, so Fast_fifo still reports
     them. *)
  let buckets = Array.make shards [] in
  Array.iter
    (fun (e : (Queue_spec.input, Queue_spec.output) History.event) ->
      match (e.History.input, e.History.output) with
      | Queue_spec.Enq x, _ -> buckets.(shard_of x) <- e :: buckets.(shard_of x)
      | Queue_spec.Deq, Queue_spec.Got v -> buckets.(shard_of v) <- e :: buckets.(shard_of v)
      | Queue_spec.Deq, Queue_spec.Empty ->
        Array.iteri (fun s b -> buckets.(s) <- e :: b) buckets
      | Queue_spec.Deq, Queue_spec.Accepted -> ())
    evs;
  let result = ref (Ok ()) in
  Array.iteri
    (fun s bucket ->
      if !result = Ok () then
        let sub = Array.of_list (List.rev bucket) in
        match Fast_fifo.check ~complete sub with
        | Ok () -> ()
        | Error v -> result := Error (Shard_violation (s, v)))
    buckets;
  (* Clause 2: strict-real-time overtaking is bounded by d.  O(n^2)
     over dequeued values — simsched histories are small; the stress
     suites use Fast_fifo per shard only. *)
  if !result = Ok () then begin
    let tbl : (int, itv) Hashtbl.t = Hashtbl.create 256 in
    Array.iter
      (fun (e : (Queue_spec.input, Queue_spec.output) History.event) ->
        match (e.History.input, e.History.output) with
        | Queue_spec.Enq x, _ ->
          Hashtbl.replace tbl x
            {
              value = x;
              e_inv = e.History.inv;
              e_res = e.History.res;
              d_inv = max_int;
              d_res = max_int;
            }
        | Queue_spec.Deq, Queue_spec.Got v -> (
          match Hashtbl.find_opt tbl v with
          | Some it ->
            it.d_inv <- e.History.inv;
            it.d_res <- e.History.res
          | None -> () (* caught by clause 1 *))
        | Queue_spec.Deq, (Queue_spec.Empty | Queue_spec.Accepted) -> ())
      evs;
    let items = Array.of_list (Hashtbl.fold (fun _ it acc -> it :: acc) tbl []) in
    Array.iter
      (fun a ->
        if !result = Ok () && a.d_inv <> max_int then begin
          let count = ref 0 in
          Array.iter
            (fun b ->
              (* b enqueued strictly after a, dequeued strictly before *)
              if b != a && a.e_res < b.e_inv && b.d_res < a.d_inv then incr count)
            items;
          if !count > d then
            result := Error (Overtaken { value = a.value; count = !count; bound = d })
        end)
      items
  end;
  !result
