(** Checker for the sharded router's d-bounded relaxed-FIFO contract.

    A sharded queue (Shard.Router) is deliberately not linearizable
    against the FIFO spec; what it promises instead (DESIGN.md §8) is

    + {b per-shard FIFO}: the sub-history of each shard is a
      linearizable FIFO history, and
    + {b d-bounded global order}: no dequeued value is overtaken — in
      strict real time — by more than [d] values enqueued after it.

    This module checks both on a recorded history, given the routing
    function ([shard_of]: which shard each distinct value was sent
    to).  Clause 1 reuses {!Fast_fifo} per shard, so conservation
    (nothing invented, nothing dequeued twice, nothing lost under
    [complete]) is inherited; EMPTY results are replayed into {e
    every} shard's sub-history, because a router EMPTY claims each
    shard was individually observed empty inside that call's
    interval.  Clause 2 counts, for each dequeued value [a], the
    values [b] with [enq(a) <_rt enq(b)] and [deq(b) <_rt deq(a)].

    With [shards = 1] (constant [shard_of]) and [d = 0] both clauses
    together are exactly the strict-FIFO conditions of
    {!Fast_fifo.check} — the acceptance reduction the single-queue
    tests pin. *)

type violation =
  | Shard_violation of int * Fast_fifo.violation
      (** a shard's own sub-history broke strict FIFO (or, for
          conservation clauses, the global history did) *)
  | Overtaken of { value : int; count : int; bound : int }
      (** [count > bound] values enqueued strictly after [value] were
          dequeued strictly before it *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?complete:bool ->
  shards:int ->
  shard_of:(int -> int) ->
  d:int ->
  (Queue_spec.input, Queue_spec.output) History.event array ->
  (unit, violation) result
(** [check ~shards ~shard_of ~d evs].  Values must be distinct (the
    {!Fast_fifo} precondition).  [complete] additionally requires
    every enqueued value to be dequeued (drained runs).
    @raise Invalid_argument if [shard_of] maps outside
    [0 .. shards-1]. *)
