(* Compatibility alias: the per-handle counters moved to the
   observability subsystem ([Obs.Counters]) when the event tier and
   the snapshot/telemetry machinery were added; [Wfq.Op_stats] remains
   the name the queue API and its callers use for the path tier. *)

include Obs.Counters
