type t = {
  mutable fast_enqueues : int;
  mutable slow_enqueues : int;
  mutable fast_dequeues : int;
  mutable slow_dequeues : int;
  mutable empty_dequeues : int;
}

let create () =
  { fast_enqueues = 0; slow_enqueues = 0; fast_dequeues = 0; slow_dequeues = 0; empty_dequeues = 0 }

let reset t =
  t.fast_enqueues <- 0;
  t.slow_enqueues <- 0;
  t.fast_dequeues <- 0;
  t.slow_dequeues <- 0;
  t.empty_dequeues <- 0

let add ~into t =
  into.fast_enqueues <- into.fast_enqueues + t.fast_enqueues;
  into.slow_enqueues <- into.slow_enqueues + t.slow_enqueues;
  into.fast_dequeues <- into.fast_dequeues + t.fast_dequeues;
  into.slow_dequeues <- into.slow_dequeues + t.slow_dequeues;
  into.empty_dequeues <- into.empty_dequeues + t.empty_dequeues

let absorb ~into t =
  add ~into t;
  reset t

let total_enqueues t = t.fast_enqueues + t.slow_enqueues
let total_dequeues t = t.fast_dequeues + t.slow_dequeues

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
let slow_enqueue_pct t = pct t.slow_enqueues (total_enqueues t)
let slow_dequeue_pct t = pct t.slow_dequeues (total_dequeues t)
let empty_dequeue_pct t = pct t.empty_dequeues (total_dequeues t)

let pp ppf t =
  Format.fprintf ppf
    "enq: %d fast / %d slow (%.3f%% slow); deq: %d fast / %d slow (%.3f%% slow); empty: %d (%.3f%%)"
    t.fast_enqueues t.slow_enqueues (slow_enqueue_pct t) t.fast_dequeues t.slow_dequeues
    (slow_dequeue_pct t) t.empty_dequeues (empty_dequeue_pct t)
