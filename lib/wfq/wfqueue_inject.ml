(* The storm build: the algorithm of [Wfqueue_algo] on hardware
   atomics with both the observability probe and the fault injector
   compiled in.  Used by the adversarial-schedule suites
   (test/test_inject.ml) and the [repro inject] stall-storm driver to
   demonstrate the paper's actual guarantee: with K of N domains
   stalled or killed at any injection point, every other domain's
   operations still complete, and the telemetry counters show the
   helping that made it true.

   Same algorithm text as [Wfqueue] — only the [Obs.Probe] and
   [Inject] instantiations differ — and the injector is transparent
   until a controller is installed ([Inject.install]), so this build
   doubles as a sanity check that an idle injector perturbs nothing. *)

include Wfqueue_algo.Make (Atomic_prims.Real) (Obs.Probe.Enabled) (Inject.Enabled)

exception Would_block = Wfqueue_algo.Would_block
