(* The production queue: the algorithm of [Wfqueue_algo] running on
   hardware atomics.  See wfqueue.mli for the API and the paper
   mapping; see DESIGN.md for the port notes. *)

include Wfqueue_algo.Make (Atomic_prims.Real) (Obs.Probe.Disabled) (Inject.Disabled)

(* Rebinding, not a fresh declaration: every instantiation (and the
   shard router) shares one exception identity, so a single handler
   matches regardless of which build raised. *)
exception Would_block = Wfqueue_algo.Would_block
