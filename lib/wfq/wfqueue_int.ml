(* See wfqueue_int.mli.  A facade over the production instantiation:
   the generic queue already stores values as bare words (the sentinel
   plane of [Wfqueue_algo]), so an int rides the value plane as an
   immediate — the specialization work is all in the API, which routes
   around the ['a option] boxes. *)

type t = int Wfqueue.t
type handle = int Wfqueue.handle

exception Would_block = Wfqueue.Would_block

let create = Wfqueue.create
let try_enqueue = Wfqueue.try_enqueue
let enqueue_exn = Wfqueue.enqueue_exn
let register = Wfqueue.register
let retire = Wfqueue.retire
let domain_handle = Wfqueue.domain_handle
let enqueue = Wfqueue.enqueue
let dequeue_or = Wfqueue.dequeue_or
let dequeue = Wfqueue.dequeue
let enq_batch = Wfqueue.enq_batch
let deq_batch = Wfqueue.deq_batch
let deq_batch_into = Wfqueue.deq_batch_into
let push = Wfqueue.push
let pop = Wfqueue.pop
let pop_or q default = dequeue_or q (domain_handle q) default
let approx_length = Wfqueue.approx_length
let patience = Wfqueue.patience
let stats = Wfqueue.stats
let reset_stats = Wfqueue.reset_stats
let snapshot = Wfqueue.snapshot
