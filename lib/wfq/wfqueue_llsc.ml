(* The queue as evaluated on IBM Power7 (paper §3.1, Table 1): the
   architecture lacks native fetch-and-add, so the hot-path FAA is an
   LL/SC-style CAS retry loop.  The resulting queue is lock-free
   rather than wait-free (the retry loop is unbounded), and its
   throughput relative to [Wfqueue] quantifies what native FAA
   buys — the "faa-emulation" ablation in the benchmarks. *)

include Wfqueue_algo.Make (Atomic_prims.Emulated_faa) (Obs.Probe.Disabled) (Inject.Disabled)

exception Would_block = Wfqueue_algo.Would_block
