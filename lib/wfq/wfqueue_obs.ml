(* The instrumented queue: the algorithm of [Wfqueue_algo] on hardware
   atomics with the observability probe compiled in, so the event tier
   of [Obs.Counters] (CAS failures, cells skipped, helping) is
   recorded in addition to the path tier.  Same algorithm text as
   [Wfqueue] — only the [Obs.Probe] instantiation differs — so its
   path counters, linearizability, and wait-freedom are the ones the
   test suite checks on the production build.

   Used by the telemetry harness ([Harness.Telemetry], the
   [repro stats] subcommand, and the bench JSON telemetry block); the
   pair-cost delta against [Wfqueue] in BENCH_pr3.json is the measured
   price of the instrumentation (the disabled build pays none of
   it). *)

include Wfqueue_algo.Make (Atomic_prims.Real) (Obs.Probe.Enabled) (Inject.Disabled)

exception Would_block = Wfqueue_algo.Would_block
