type 'a cell_value = Bottom | Top | Value of 'a

type 'a segment = { id : int; next : 'a segment option Atomic.t; cells : 'a cell_value Atomic.t array }

type 'a t = {
  first : 'a segment; (* never reclaimed; see interface *)
  tail_hint : 'a segment Atomic.t;
  head_hint : 'a segment Atomic.t;
  tail_index : int Atomic.t;
  head_index : int Atomic.t;
  shift : int;
  mask : int;
}

let new_segment shift id =
  { id; next = Atomic.make None; cells = Array.init (1 lsl shift) (fun _ -> Atomic.make Bottom) }

let create ?(segment_shift = 10) () =
  assert (segment_shift >= 0 && segment_shift <= 20);
  let first = new_segment segment_shift 0 in
  (* The two indices take every operation's FAA and the two hints take
     frequent CAS publications; keep each on its own line. *)
  {
    first;
    tail_hint = Primitives.Padding.make_padded_atomic first;
    head_hint = Primitives.Padding.make_padded_atomic first;
    tail_index = Primitives.Padding.make_padded_atomic 0;
    head_index = Primitives.Padding.make_padded_atomic 0;
    shift = segment_shift;
    mask = (1 lsl segment_shift) - 1;
  }

(* Locate cell [i], extending the segment list as needed.  The hint is
   only an optimization: it may lag arbitrarily, and if it has raced
   ahead of [i] we restart from the permanently retained first
   segment. *)
let find_cell t hint i =
  let target = i lsr t.shift in
  let start =
    let s = Atomic.get hint in
    if s.id <= target then s else t.first
  in
  let rec walk s =
    if s.id = target then s
    else
      match Atomic.get s.next with
      | Some next -> walk next
      | None ->
        let fresh = new_segment t.shift (s.id + 1) in
        if Atomic.compare_and_set s.next None (Some fresh) then walk fresh
        else walk s
  in
  let s = walk start in
  (* Opportunistically publish a newer hint; never move it backwards. *)
  let h = Atomic.get hint in
  if h.id < s.id then ignore (Atomic.compare_and_set hint h s);
  s.cells.(i land t.mask)

let enqueue_once t v =
  let i = Atomic.fetch_and_add t.tail_index 1 in
  let c = find_cell t t.tail_hint i in
  Atomic.compare_and_set c Bottom (Value v)

(* One dequeue round: claim index [h] and try to take or invalidate its
   cell, as in Listing 1 lines 6-8. *)
type 'a deq_round = Took of 'a | Empty | Retry

let dequeue_once t =
  let h = Atomic.fetch_and_add t.head_index 1 in
  let c = find_cell t t.head_hint h in
  if Atomic.compare_and_set c Bottom Top then
    if Atomic.get t.tail_index > h then Retry else Empty
  else
    match Atomic.get c with
    | Value v -> Took v
    | Top | Bottom -> (* unreachable: the CAS only fails on a set cell *) assert false

let rec enqueue t v = if not (enqueue_once t v) then enqueue t v

let rec dequeue t =
  match dequeue_once t with
  | Took v -> Some v
  | Empty -> None
  | Retry -> dequeue t

let try_enqueue t ~attempts v =
  assert (attempts > 0);
  let rec go n = n > 0 && (enqueue_once t v || go (n - 1)) in
  go attempts

let try_dequeue t ~attempts =
  assert (attempts > 0);
  let rec go n =
    if n = 0 then Error `Exhausted
    else
      match dequeue_once t with
      | Took v -> Ok (Some v)
      | Empty -> Ok None
      | Retry -> go (n - 1)
  in
  go attempts

let approx_length t = max 0 (Atomic.get t.tail_index - Atomic.get t.head_index)
