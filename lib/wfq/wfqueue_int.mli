(** The int-specialized queue: [int Wfqueue.t] with an API whose whole
    round trip is allocation-free.

    Since the PR-6 sentinel plane, the generic queue already stores
    values unboxed (a bare word per cell, no [Value] constructor), so
    an [int] payload is an immediate end to end — the only remaining
    hot-path allocation in the generic API is the [Some] box that
    [Wfqueue.dequeue] must build.  This module fixes the element type
    and routes dequeues through {!dequeue_or}, making an
    enqueue/dequeue pair allocate zero minor words on the fast path
    (pinned by [test/test_alloc.ml]; benched as "wf-int" next to the
    generic "wf" rows, where the delta prices the option box).

    The handle lifecycle, wait-freedom, and reclamation story are
    exactly {!Wfqueue}'s — this is the same compiled code. *)

type t = int Wfqueue.t
type handle = int Wfqueue.handle

val create :
  ?patience:int ->
  ?segment_shift:int ->
  ?max_garbage:int ->
  ?reclamation:bool ->
  ?segment_cap:int ->
  unit ->
  t
(** See {!Wfqueue.create}; [segment_cap] selects bounded-memory
    mode. *)

exception Would_block
(** {!Wfqueue.Would_block} — the same exception value. *)

val try_enqueue : t -> handle -> int -> bool
(** Admission-checked enqueue for bounded queues (see
    {!Wfqueue.try_enqueue}); always admits when unbounded. *)

val enqueue_exn : t -> handle -> int -> unit
(** {!try_enqueue} raising {!Would_block} on rejection. *)

val register : t -> handle
val retire : t -> handle -> unit
val domain_handle : t -> handle

val enqueue : t -> handle -> int -> unit
(** Wait-free enqueue; an [int] payload never allocates (immediates
    ride the value plane unboxed). *)

val dequeue_or : t -> handle -> int -> int
(** [dequeue_or q h default] — the allocation-free dequeue: returns
    [default] on EMPTY instead of boxing an option.  The caller picks
    a [default] outside its value domain (e.g. [min_int]). *)

val dequeue : t -> handle -> int option
(** The option-returning dequeue of the generic API ([Some] box per
    hit) — for callers that prefer the standard shape over the last
    two words. *)

val enq_batch : t -> handle -> int array -> unit
val deq_batch : t -> handle -> int -> int option array

val deq_batch_into : t -> handle -> int array -> default:int -> int
(** Allocation-free batch dequeue into a caller buffer (see
    {!Wfqueue.deq_batch_into}); with an [int array] the whole batch
    round trip allocates nothing. *)

val push : t -> int -> unit
val pop : t -> int option

val pop_or : t -> int -> int
(** {!dequeue_or} with the per-domain implicit handle. *)

val approx_length : t -> int
val patience : t -> int
val stats : t -> Op_stats.t
val reset_stats : t -> unit
val snapshot : t -> Obs.Snapshot.t
