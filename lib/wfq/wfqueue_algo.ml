(* The queue algorithm as a functor over its atomic primitives, an
   observability probe, and a fault injector.

   [Wfqueue] instantiates it with hardware atomics, the disabled probe
   and the disabled injector; [Wfqueue_obs] is the same algorithm with
   the event-tier instrumentation compiled in; [Wfqueue_inject] adds
   the fault injector for adversarial-schedule storms; the
   model-checking harness ([simsched]) instantiates it with simulated
   atomics whose every access is a preemption point controlled by a
   test scheduler (and the enabled probe and injector, so the
   instrumented, injectable text is also the model-checked text).
   Keeping the algorithm text in one place means the code that is
   model-checked is the code that ships.

   Instrumentation discipline ([P] : Obs.Probe.S): every event-tier
   record site is [if P.enabled then <plain-int increment>].
   [P.enabled] is a compile-time constant of the instantiation, so the
   disabled build keeps the bare hot path (verified by benchmarking
   wf-10 against wf-10-obs; see DESIGN.md, observability section).
   The path-tier counters (fast/slow/empty outcomes) predate the probe
   and stay unconditional.  Protocol tracing rides a two-conjunct
   gate: every [tracef (fun () -> ...)] site sits under
   [if tracing ()] = [P.enabled && hook installed], so the disabled
   build never constructs the trace thunk — a closure per operation,
   the dominant fast-path allocation before the PR-6 audit — and the
   probe-enabled builds (simsched, _obs, _inject) only construct it
   while a hook is actually listening, keeping even the instrumented
   hot path allocation-free (pinned by test/test_alloc.ml).

   Injection discipline ([I] : Inject.S): every adversarial window is
   [if I.enabled then I.hit <point>] — same compile-time-constant
   gating, same bench-gate verification that the disabled build pays
   nothing.  A hit may return (no fault or a finished stall) or raise
   [Inject.Killed] (simulated thread death); the point map and the
   recovery story are in DESIGN.md §7.

   Allocation discipline (DESIGN.md, allocation section): the
   fast paths — enq_fast, the deq fast attempt including its
   help_enq call, and the empty-dequeue exit — allocate zero minor
   words.  Everything they need lives in preallocated planes, handle
   fields, or immediate ints; the helpers they call are top-level
   functions (a local [let rec] that captures its environment is a
   closure allocation per call).  The slow paths may allocate
   (segment extension, helping reservations, cleanup bookkeeping):
   they are bounded by patience/helping and amortized by segment
   size.  [test/test_alloc.ml] pins the fast-path zero with
   [Gc.minor_words]; the alloc rows in the bench JSON gate it in
   CI. *)

(* Bounded-mode backpressure, at the library's top level (not inside
   [Make]) so every instantiation — and the shard router over any of
   them — raises the one same exception, and a caller composing a
   bounded router over bounded shards needs a single handler. *)
exception Would_block

module Make (A : Atomic_prims.S) (P : Obs.Probe.S) (I : Inject.S) = struct
(* Port of Listings 2-5 of Yang & Mellor-Crummey, "A Wait-free Queue
   as Fast as Fetch-and-Add" (PPoPP 2016).  Comments of the form
   "L.nn" refer to line numbers in the paper's listings.

   Representation choices (rationale in DESIGN.md):
   - the value plane stores the user's values as bare words
     ([Obj.repr], no constructor box); the reserved values ⊥/⊤ are
     two private heap blocks, so CAS from them is exact physical
     equality and no user value can collide with them;
   - the two-word request states (pending, id) are packed into one
     OCaml int ([Primitives.Packed_state]) and claimed with CAS;
   - hzdp = null is a sentinel segment with id = max_int, which
     behaves like null in every comparison the protocol performs;
   - all cross-thread locations are [A.t] (sequentially
     consistent), subsuming every fence the paper discusses. *)

module Packed = Primitives.Packed_state

(* Optional protocol tracing, for the model-checking harness: when a
   hook is installed every key protocol transition reports itself.
   Call sites are gated by [tracing ()] (see the header), so on a
   disabled instantiation [set_trace] is accepted but never fires. *)
let trace_hook : (string -> unit) option ref = ref None
let set_trace f = trace_hook := f
let tracef f = match !trace_hook with None -> () | Some out -> out (f ())

(* The call-site gate for tracing: the compile-time probe constant AND
   a hook actually installed.  The second conjunct matters for the
   instrumented build — without it every site would still construct
   its closure (and its captures) per operation even when nobody is
   listening, and the enabled build would allocate on the hot path. *)
let[@inline] tracing () =
  P.enabled && (match !trace_hook with None -> false | Some _ -> true)

(* The value plane's reserved words.  The paper's ⊥ and ⊤ become two
   private heap blocks: [Obj.repr] of a ref cell nobody else can ever
   obtain, so physical equality against them is exact — an immediate
   sentinel like [Obj.magic 0] would collide with the user's own [0].
   User values are stored with [Obj.repr] (the identity) and recovered
   with [Obj.obj]; the [Value v] box of the earlier representation —
   two minor words per enqueue — is gone.  [empty_w] never enters a
   cell: it is the out-of-band "queue observed empty" result word of
   the dequeue paths, so they can return a bare word instead of an
   allocated [option]/variant. *)
let bottom_w : Obj.t = Obj.repr (ref "wfq.bottom")
let top_w : Obj.t = Obj.repr (ref "wfq.top")
let empty_w : Obj.t = Obj.repr (ref "wfq.empty")

let[@inline] is_value w = w != bottom_w && w != top_w

(* An enqueue request (L.10-12).  One record is ONE slow-path enqueue:
   the value and id are frozen at publication and only [enq_state]
   ever changes (pending -> claimed, exactly once).  The paper reuses
   a single per-thread record, which is sound only while every new
   request id exceeds every cell id a stale helper of an older request
   may still compare against; the batch entry points broke that
   side condition (a batch reserves its tickets up front, so a later
   ticket can be numerically smaller than an earlier request's
   announced candidate) and the resulting packed-word ABA let a stale
   helper close a *reused* record against the wrong request.  A fresh
   record per request makes every state CAS and every [Enq_req r]
   identity unambiguous, independent of id arithmetic. *)
type enq_request = { enq_value : Obj.t; enq_state : Packed.t A.t }
type enq_link = Enq_bottom | Enq_top | Enq_req of enq_request

(* A dequeue request (L.13-15): [deq_id] names the request (frozen at
   publication, like [enq_value] above), [state] packs (pending, idx)
   where idx is the latest announced candidate cell.  Single-use for
   the same reason as [enq_request]. *)
type deq_request = { deq_id : int; deq_state : Packed.t A.t }
type deq_link = Deq_bottom | Deq_top | Deq_req of deq_request

(* The settled records a handle starts with (and returns to when its
   slot is recycled): never pending, so no helper CAS can touch them. *)
let settled_enq_request () = { enq_value = bottom_w; enq_state = A.make Packed.initial }
let settled_deq_request () = { deq_id = 0; deq_state = A.make Packed.initial }

(* A cell is the triple (value, enq, deq) at one offset of a segment
   (L.5-9).  It is stored flattened: instead of an array of pointers
   to 3-field cell records (two dependent loads before the atomic
   box is even reached, and record boxes scattered by the allocator),
   a segment holds three contiguous parallel planes — [values],
   [enqs], [deqs] — indexed by the cell offset.  A cell visit is then
   one array index into the plane the operation actually touches:
   the fast paths never load the enq/deq planes' boxes at all, and
   plane entries for neighbouring cells are adjacent, which is the
   "contiguous cell array" layout of Listing 1.  The protocol never
   needs the triple atomically — each field is its own SC atomic and
   all mixed reads were already tolerated (help_enq) — so flattening
   changes addressing only, not the set of atomic locations.

   The type parameter is phantom for the planes (values are bare
   words); it survives on [segment]/[handle]/[t] so the public API
   stays ['a]-typed and [Obj] never escapes this module.

   [seg_id] is mutable only so that pooled segments can be relabeled
   while private (between pool pop and publication); every read
   happens after an atomic publication of the segment, exactly like
   reads of a freshly initialized one. *)
type 'a segment = {
  mutable seg_id : int;
  uid : int; (* physical identity, stable across pool relabeling *)
  next : 'a segment option A.t;
  values : Obj.t A.t array;
  enqs : enq_link A.t array;
  deqs : deq_link A.t array;
}

(* Immutable free-list node; see the [pool] field below. *)
type 'a pool_node = { pooled : 'a segment; rest : 'a pool_node option }

(* Immutable free-list node for retired handle slots; like [pool_node],
   nodes are freshly allocated per push so the Treiber CAS is ABA-safe
   under GC. *)
type 'a free_node = { freed : 'a handle; more : 'a free_node option }

and 'a handle = {
  hid : int; (* registration order, used only by tracing/debugging *)
  head : 'a segment A.t;
  tail : 'a segment A.t;
  (* Ring link; [None] means "points to itself" so a fresh handle is a
     singleton ring without a recursive-value knot. *)
  ring_next : 'a handle option A.t;
  hzdp : 'a segment A.t;
  enq_req : enq_request A.t; (* current (latest published) request *)
  mutable enq_peer : 'a handle;
  mutable enq_help_id : int; (* the paper's enq.id helping bookmark *)
  deq_req : deq_request A.t; (* current (latest published) request *)
  mutable deq_peer : 'a handle;
  retired : bool Atomic.t; (* see [retire]: failed/departed thread *)
  stats : Op_stats.t;
}

type 'a t = {
  q : 'a segment A.t; (* first live segment (the paper's Q) *)
  tail_index : int A.t; (* T *)
  head_index : int A.t; (* H *)
  oldest : int A.t; (* I: id of oldest segment, -1 while cleaning *)
  ring : 'a handle option A.t; (* registration anchor *)
  null_segment : 'a segment; (* hzdp sentinel, id = max_int *)
  patience : int;
  max_garbage : int;
  seg_shift : int;
  seg_mask : int;
  reclamation : bool;
  reclaimed : int A.t;
  cleanups : int A.t; (* cleanup runs that actually reclaimed *)
  allocated : int A.t; (* segments ever allocated fresh *)
  wasted : int A.t; (* segments that lost the append CAS *)
  recycled : int A.t; (* segments served from the pool *)
  (* Free list of retired segments (the paper's free()/free_list goes
     through the allocator; we recycle explicitly so that the GC is
     kept off the enqueue/dequeue hot path — DESIGN.md §2.4).  A
     Treiber stack whose nodes are freshly allocated per push and
     never reused: that freshness is what makes CAS ABA-safe under
     GC.  (Threading the stack through the recycled segments' own
     [next] fields would reuse nodes and reintroduce ABA.) *)
  pool : 'a pool_node option A.t;
  pool_size : int A.t;
  pool_limit : int;
  (* Bounded mode (DESIGN.md §11): [segment_cap] is the hard bound on
     segments ever created ([max_int] = unbounded, the default);
     [seg_budget] is the remaining fresh-allocation budget, consumed
     by FAA reservation in [obtain_segment] — the same
     reserve-before-touch discipline as [pool_push], so the count of
     segments in existence (live + pooled + private) can never exceed
     the cap.  [enq_capacity] is the advisory admission line (in
     values) that [try_enqueue] holds producers to so they stay away
     from the blocking allocation wait; [cap_hits] counts acquire
     attempts that found the pool empty at the cap. *)
  segment_cap : int;
  enq_capacity : int;
  seg_budget : int A.t;
  cap_hits : int A.t;
  (* Retired handle slots awaiting recycling ([register] pops one
     instead of growing the ring), so ring length is bounded by the
     peak number of concurrently registered domains.  Same fresh-node
     Treiber discipline as [pool]. *)
  free_handles : 'a free_node option A.t;
  (* Path counters of handles whose slots were recycled, folded in
     under the cleanup token so [stats] keeps counting departed
     domains' operations. *)
  departed_stats : Op_stats.t;
  (* Per-domain handle cache for push/pop: a domain-local slot, no
     lock and no shared table on the hot path.  The slot also installs
     a [Domain.at_exit] hook that retires the handle when its domain
     terminates, closing the paper's §3.6 leak for the implicit API. *)
  dls_handle : 'a handle option Domain.DLS.key;
}

(* ------------------------------------------------------------------ *)
(* Construction (L.27-32)                                             *)

let segment_uids = Primitives.Padding.make_padded_atomic 0
let handle_uids = Primitives.Padding.make_padded_atomic 0

(* Each plane is allocated in one sweep, so its boxes are laid out
   consecutively by the minor heap: walking cells in ticket order
   walks memory in address order.  The boxes themselves stay
   unpadded — cells are visited by exactly one FAA winner on the fast
   path, so padding 2^shift cells would cost memory without removing
   any real contention. *)
let new_segment shift seg_id =
  let n = 1 lsl shift in
  {
    seg_id;
    uid = Atomic.fetch_and_add segment_uids 1;
    next = A.make None;
    values = Array.init n (fun _ -> A.make bottom_w);
    enqs = Array.init n (fun _ -> A.make Enq_bottom);
    deqs = Array.init n (fun _ -> A.make Deq_bottom);
  }

let create ?(patience = 10) ?(segment_shift = 10) ?(max_garbage = 16) ?(reclamation = true)
    ?segment_cap () =
  assert (patience >= 0);
  assert (segment_shift >= 0 && segment_shift <= 20);
  assert (max_garbage >= 2);
  let segment_cap =
    match segment_cap with
    | None -> max_int
    | Some c ->
      (* The cap must leave room for the reclamation slack: cleanup
         only runs once [max_garbage] segments of garbage accumulated,
         and the active window plus in-flight private extensions need
         segments of their own on top of it.  Below [max_garbage + 4]
         the advisory admission line would be non-positive and every
         producer would sit in the allocation wait. *)
      if c < max_garbage + 4 then
        invalid_arg "Wfqueue.create: segment_cap must be >= max_garbage + 4";
      if not reclamation then
        invalid_arg "Wfqueue.create: segment_cap requires reclamation (cleanup refills the pool)";
      c
  in
  let first = new_segment segment_shift 0 in
  (* Every queue-level atomic another domain can write sits on its own
     cache line(s): T and H are the paper's two contended FAA words
     and must not invalidate each other (Listing 1's whole point);
     [oldest], the pool/free-list heads and the churn counters are
     CASed/FAAed by concurrent cleaners and would otherwise share
     lines with T/H or each other, turning cleanup traffic into
     hot-path misses. *)
  {
    q = A.make_contended first;
    tail_index = A.make_contended 0;
    head_index = A.make_contended 0;
    oldest = A.make_contended 0;
    ring = A.make_contended None;
    null_segment =
      { seg_id = max_int; uid = -1; next = A.make None; values = [||]; enqs = [||]; deqs = [||] };
    patience;
    max_garbage;
    seg_shift = segment_shift;
    seg_mask = (1 lsl segment_shift) - 1;
    reclamation;
    reclaimed = A.make_contended 0;
    cleanups = A.make_contended 0;
    allocated = A.make_contended 1;
    wasted = A.make_contended 0;
    recycled = A.make_contended 0;
    pool = A.make_contended None;
    pool_size = A.make_contended 0;
    (* In bounded mode the pool admits every segment the cap admits:
       with [pool_limit = segment_cap], [pool_push]'s reservation can
       never find the pool full (at most cap - 1 segments are ever
       pushable while one stays live), so a retired segment is never
       dropped to the GC — dropping one would leak a unit of the
       allocation budget and shrink the queue's capacity for good. *)
    pool_limit = (if segment_cap = max_int then max 32 (4 * max_garbage) else segment_cap);
    segment_cap;
    enq_capacity =
      (if segment_cap = max_int then max_int
       else (segment_cap - max_garbage - 2) lsl segment_shift);
    seg_budget = A.make_contended (if segment_cap = max_int then max_int else segment_cap - 1);
    cap_hits = A.make_contended 0;
    free_handles = A.make_contended None;
    departed_stats = Primitives.Padding.copy_as_padded (Op_stats.create ());
    dls_handle = Domain.DLS.new_key (fun () -> None);
  }

let patience t = t.patience

(* ------------------------------------------------------------------ *)
(* Segment pool                                                       *)

(* Pop a retired segment for reuse; its cells are already reset (done
   off the hot path when it was retired). *)
let rec pool_pop q =
  match A.get q.pool with
  | None -> None
  | Some node as top ->
    if A.compare_and_set q.pool top node.rest then begin
      ignore (A.fetch_and_add q.pool_size (-1));
      A.set node.pooled.next None;
      ignore (A.fetch_and_add q.recycled 1);
      Some node.pooled
    end
    else pool_pop q

(* Return a clean (reset) segment to the pool, unless it is full — in
   which case the GC simply collects the segment.  The FAA on
   [pool_size] is the admission decision itself (a reservation taken
   before touching the list), not a decoupled estimate: concurrent
   pushers each reserve a distinct slot, so the pool can never
   overshoot [pool_limit], and the counter never drops below the list
   length (pushes increment before linking; pops unlink before
   decrementing).  At quiescence the counter equals the list length. *)
let pool_push q s =
  if A.fetch_and_add q.pool_size 1 >= q.pool_limit then
    (* full: give the reservation back and let the GC take [s] *)
    ignore (A.fetch_and_add q.pool_size (-1))
  else
    let rec link () =
      let top = A.get q.pool in
      if not (A.compare_and_set q.pool top (Some { pooled = s; rest = top })) then link ()
    in
    link ()

let reset_segment s =
  if tracing () then tracef (fun () -> Printf.sprintf "reset: uid=%d seg=%d" s.uid s.seg_id);
  Array.iter (fun v -> A.set v bottom_w) s.values;
  Array.iter (fun e -> A.set e Enq_bottom) s.enqs;
  Array.iter (fun d -> A.set d Deq_bottom) s.deqs

(* ------------------------------------------------------------------ *)
(* Handle ring                                                        *)

let next_handle h = match A.get h.ring_next with Some n -> n | None -> h

(* Peer advancement skips retired handles (threads that failed or
   deregistered, §3.6 "thread failure"): helping them is harmless but
   wasted, and a ring dominated by dead peers would slow the helping
   rotation.  Falls back to [h] itself when everyone else is gone.
   Top-level recursion (not a local [let rec]) because successful
   dequeues advance their peer on the hot path — a capturing closure
   here would be an allocation per dequeue. *)
let rec next_live_from stop n =
  if n == stop then n
  else if Atomic.get n.retired then next_live_from stop (next_handle n)
  else n

let next_live_handle h = next_live_from h (next_handle h)

(* The paper's §3.6 "thread failure" gap: a thread that dies (or
   departs) mid-operation leaves its hazard pointer set and blocks
   reclamation forever (the paper defers to DEBRA as future work).
   [retire] is the recovery hook: it clears the handle's hazard
   pointer, marks it so the helping rotation and the cleanup scan skip
   it, and donates its ring slot to the free stack so a future
   [register] can recycle it instead of growing the ring.  Calling it
   on a handle whose owner is actually still running an operation is
   unsound (the cleared hazard pointer could let its segments be
   recycled under it) — callers must know the thread is gone, e.g.
   after Domain.join or a failure detector; the push/pop wrappers
   install it as a [Domain.at_exit] hook.  Idempotent: the CAS on
   [retired] makes sure one retirement pushes exactly one free-stack
   node, so a handle can be retired both explicitly and by the
   domain-termination hook. *)
let retire q h =
  if Atomic.compare_and_set h.retired false true then begin
    if tracing () then tracef (fun () -> Printf.sprintf "h%d retire" h.hid);
    A.set h.hzdp q.null_segment;
    let rec push () =
      let top = A.get q.free_handles in
      if not (A.compare_and_set q.free_handles top (Some { freed = h; more = top })) then push ()
    in
    push ()
  end

let rec pop_free_handle q =
  match A.get q.free_handles with
  | None -> None
  | Some node as top ->
    if A.compare_and_set q.free_handles top node.more then Some node.freed
    else pop_free_handle q

(* Registration adopts the queue's current first segment; to do so
   safely against concurrent segment recycling it takes the cleanup
   token (the paper's [I = -1] mutual exclusion), so no cleaner can
   retire that segment mid-registration — and, symmetrically, no
   cleaner can scan a recycled slot while its state is half-reset,
   since cleanup also requires the token.  Registration is a one-time
   per-thread cost, never on an operation path. *)
let rec acquire_cleanup_token q =
  let i = A.get q.oldest in
  if i >= 0 && A.compare_and_set q.oldest i (-1) then i
  else begin
    A.cpu_relax ();
    acquire_cleanup_token q
  end

(* Reset a retired slot for a new owner.  Token held, so nothing scans
   the intermediate states; liveness ([retired := false]) is published
   last.  The request pointers go back to settled records: a stale
   helper may still hold the old owner's last record, but that record
   is closed and immutable apart from its already-settled state, so
   nothing it does can reach the new owner's requests. *)
let recycle_handle q h seg =
  if tracing () then tracef (fun () -> Printf.sprintf "h%d recycle slot" h.hid);
  Op_stats.absorb ~into:q.departed_stats h.stats;
  A.set h.head seg;
  A.set h.tail seg;
  A.set h.hzdp q.null_segment;
  A.set h.enq_req (settled_enq_request ());
  A.set h.deq_req (settled_deq_request ());
  h.enq_help_id <- 0;
  Atomic.set h.retired false;
  h

let register q =
  let token = acquire_cleanup_token q in
  let seg = A.get q.q in
  let h =
    match pop_free_handle q with
    | Some h -> recycle_handle q h seg (* still linked: ring does not grow *)
    | None ->
      (* Per-handle hot words on their own lines: [head]/[tail]/[hzdp]
         are owner-written per operation but scanned by every cleaner
         (update/verify), the request fields are written by the owner
         and CASed by helpers, [retired] is read on the push/pop hot
         path and by the helping rotation, and [stats] is owner-
         written per operation.  Unpadded, consecutive registrations
         allocate these boxes back to back, so domain A's enqueue
         prologue would invalidate domain B's request word — false
         sharing between handles that never logically interact. *)
      let rec h =
        {
          hid = Atomic.fetch_and_add handle_uids 1;
          head = A.make_contended seg;
          tail = A.make_contended seg;
          ring_next = A.make None;
          hzdp = A.make_contended q.null_segment;
          enq_req = A.make_contended (settled_enq_request ());
          enq_peer = h;
          enq_help_id = 0;
          deq_req = A.make_contended (settled_deq_request ());
          deq_peer = h;
          retired = Primitives.Padding.make_padded_atomic false;
          stats = Primitives.Padding.copy_as_padded (Op_stats.create ());
        }
      in
      let rec link () =
        match A.get q.ring with
        | None -> if not (A.compare_and_set q.ring None (Some h)) then link ()
        | Some anchor ->
          let succ = A.get anchor.ring_next in
          let succ_or_anchor = match succ with Some _ -> succ | None -> Some anchor in
          A.set h.ring_next succ_or_anchor;
          if not (A.compare_and_set anchor.ring_next succ (Some h)) then link ()
      in
      link ();
      h
  in
  h.enq_peer <- next_live_handle h;
  h.deq_peer <- next_live_handle h;
  A.set q.oldest token;
  h

(* ------------------------------------------------------------------ *)
(* Reclamation (Listing 5) and the segment freelist acquire           *)

(* [cleanup] sits before [find_cell] (unlike the paper's listing
   order) because the bounded-mode segment acquire below helps run it
   from inside the wait loop. *)

let is_null_hzdp q seg = seg == q.null_segment

(* L.248-249 *)
let verify q (seg : 'a segment ref) hzdp =
  if (not (is_null_hzdp q hzdp)) && hzdp.seg_id < (!seg).seg_id then seg := hzdp

(* L.239-247: try to advance a handle's head or tail pointer so an
   idle thread does not block reclamation (Dijkstra's protocol with
   the pointer's owner). *)
let update q (from_ : 'a segment A.t) (to_ : 'a segment ref) owner =
  let n = A.get from_ in
  if n.seg_id < (!to_).seg_id then begin
    if not (A.compare_and_set from_ n !to_) then begin
      let n' = A.get from_ in
      if n'.seg_id < (!to_).seg_id then to_ := n'
    end;
    verify q to_ (A.get owner.hzdp)
  end

(* L.222-238.  One deliberate strengthening over the pseudocode: §3.6
   states that a segment is retired only once "both T and H have
   moved past i×N", but Listing 5 derives the reclaim candidate [e]
   from head pointers alone.  Under a drained queue (H far ahead of
   T) that lets [e] pass segments that future enqueues, whose FAA
   tickets trail H, must still reach.  We cap [e] at
   segment(min(T,H)/N) to enforce the stated condition.

   The threshold test runs on every dequeue; everything it needs is
   read into locals first, and the scan's [ref]s are only built once
   the CAS on the token has actually opened a cleanup.

   [e0] is the initial reclaim candidate.  The dequeue-path entry
   ([cleanup]) uses the paper's choice, the cleaner's own cached head
   segment — always recent for a thread that dequeues.  The bounded-
   mode waiter entry passes the chain-end segment it already holds
   instead: a pure producer's cached head never advances on its own
   (only peers' cleanups move it), so the paper's candidate would keep
   such a cleaner's gate shut forever even with a full window of
   index-distance garbage behind it (the PR 9 pool-storm wedge). *)
let cleanup_candidate q h e0 =
  let i = A.get q.oldest in
  let bound = min (A.get q.tail_index) (A.get q.head_index) lsr q.seg_shift in
  if i >= 0 && min e0.seg_id bound - i >= q.max_garbage && A.compare_and_set q.oldest i (-1)
  then begin
    let e = ref e0 in
    (* From here we hold the cleanup token (oldest = -1); restore it
       on any exception so a failed cleaner cannot wedge registration
       and future cleanups. *)
    let token_released = ref false in
    let release_token value =
      A.set q.oldest value;
      token_released := true
    in
    Fun.protect ~finally:(fun () -> if not !token_released then A.set q.oldest i)
    @@ fun () ->
    (* token held ([oldest = -1]): a stall blocks registration and
       other cleanups (they spin on the token) but no operation; a
       death must restore the token via the protector above *)
    if I.enabled then I.hit Inject.Cleanup_token_held;
    (* walk from the oldest segment to the bound if the cleaner's own
       head is beyond it (T and H only grow, so this is conservative) *)
    if (!e).seg_id > bound then begin
      let s = ref (A.get q.q) in
      while (!s).seg_id < bound do
        match A.get (!s).next with
        | Some n -> s := n
        | None -> assert false (* the chain spans [oldest, e] *)
      done;
      e := !s
    end;
    (* The paper's scan covers every handle except the cleaner's own
       (p starts at h->next): a cleaner that rarely enqueues would
       retire segments while its own stale tail still points inside
       them, and its next enqueue would traverse retired memory
       (found by the model checker, seed-393 interleaving; DESIGN.md
       §3.5).  Advance our own pointers first; on the dequeue-path
       entry our hzdp is null here, so this cannot cap [e].  A bounded-
       mode waiter cleaning from inside [obtain_segment] still has its
       op-start pin published — the fast paths advance it to the chain
       end before helping (see the wait loop), so it does not cap [e]
       either; a slow-path waiter's pin caps [e] conservatively, which
       is exactly what keeps its open request's cells safe. *)
    update q h.tail e h;
    update q h.head e h;
    let visited = ref [] in
    (* Forward traversal over the handle ring.  Retired slots are
       skipped outright: their hazard pointer is null (cleared by
       [retire], and a retired handle runs no operations that could
       set it again), and their stale head/tail pointers are never
       dereferenced before [recycle_handle] resets them under this
       same token, so they neither pin segments nor need advancing.
       With slot recycling the ring holds at most peak-concurrency
       slots, so the skip is O(1) per retired slot per cleanup. *)
    let p = ref (next_handle h) in
    while !p != h && (!e).seg_id > i do
      if not (Atomic.get (!p).retired) then begin
        verify q e (A.get (!p).hzdp);
        update q (!p).head e !p;
        update q (!p).tail e !p;
        visited := !p :: !visited
      end;
      p := next_handle !p
    done;
    (* L.234-235: reverse traversal catches hazard-pointer "backward
       jumps" (a helper adopting a peer's older head) that happened
       during the forward pass.  [visited] is already in reverse
       order. *)
    let rec backward = function
      | [] -> ()
      | ph :: rest ->
        if (!e).seg_id > i then begin
          verify q e (A.get ph.hzdp);
          backward rest
        end
    in
    backward !visited;
    if (!e).seg_id <= i then release_token i (* nothing reclaimable; reopen *)
    else begin
      (* Unlink segments [i, e.id) and recycle them (the paper's
         free_list): after the verify scans no thread can reach them,
         so resetting and reusing is safe for the same reason free()
         is safe in the original.  Collect first — pushing to the
         pool reuses the next fields the walk follows. *)
      let first = A.get q.q in
      if tracing () then
        tracef (fun () ->
            Printf.sprintf "h%d cleanup: retiring segs [%d,%d) (uids %d..)" h.hid first.seg_id
              (!e).seg_id first.uid);
      A.set q.q !e;
      release_token (!e).seg_id;
      ignore (A.fetch_and_add q.reclaimed ((!e).seg_id - i));
      ignore (A.fetch_and_add q.cleanups 1);
      let retired = ref [] in
      let cursor = ref first in
      while !cursor != !e do
        retired := !cursor :: !retired;
        cursor :=
          (match A.get (!cursor).next with
          | Some n -> n
          | None -> assert false (* the chain reaches e *))
      done;
      List.iter
        (fun seg ->
          reset_segment seg;
          (* Reset but not yet in the pool: a death here
             ([Seg_pool_release], and the rest of [retired] with it)
             leaks the segments — in bounded mode that is lost
             capacity (the budget units are spent and the segments
             unreachable), never a safety violation; the token is
             already released, so nothing wedges. *)
          if I.enabled then I.hit Inject.Seg_pool_release;
          pool_push q seg)
        !retired
    end
  end

(* The dequeue-path entry: the paper's Listing 5, candidate = the
   cleaner's own cached head segment. *)
let cleanup q h = cleanup_candidate q h (A.get h.head)

(* Fresh-or-recycled segment with the given id, private to the caller
   until it publishes it.  [chain_end] is the live segment the caller
   holds at the end of the list (the one whose [next] it will CAS);
   [advance] says the caller is on a fast path whose only protected
   obligation is the walk target itself — see below.

   The fresh branch must first win a unit of the allocation budget:
   the FAA on [seg_budget] is a reservation (the [pool_push]
   discipline), handed back on loss, so segments ever created never
   exceed [segment_cap].  Unbounded queues start with a [max_int]
   budget and always win — the only cost the default build pays is
   this one FAA per fresh allocation, off the hot path.

   When the budget is gone and the pool is empty the acquire waits.
   This wait is meant to be rare: blocking enqueues park hazard-free
   at the admission line ([wait_admission]) before taking a ticket,
   and bounded dequeues take a pre-FAA empty check, so only the
   advisory overshoot (racing producers past the admission read)
   lands here, with [max_garbage + 2] segments of headroom to absorb
   it.  The waiter cannot just poll for someone else's [cleanup] to
   refill the pool: under a spike every overshooting thread can end
   up in this wait at once, and with nobody left to run [cleanup] the
   poll would deadlock on reclaimable garbage.  So the waiter helps:
   each poll iteration attempts a cleanup itself with the caller's
   handle.  This is safe mid-[find_cell] because the waiter sits at
   the end of the chain: the reclaim bound [e] is a live in-chain
   segment at or before [chain_end], so the segment the walk holds
   survives, and every other thread's window is protected by its
   hazard pointer exactly as for any third-party cleanup.

   Two details make the helped cleanup actually able to make progress
   (both found by the PR 9 wall-clock spike storm, which wedged about
   once in forty runs without them):

   - The candidate is [chain_end], not the waiter's cached head.  A
     pure producer's cached head only moves when someone else's
     cleanup advances it, so the paper's candidate would keep the
     gate in [cleanup] shut forever for exactly the thread doing the
     waiting.

   - On fast paths ([advance]) the waiter first re-publishes its own
     hazard pointer at [chain_end].  The advance is monotone (the
     op-start pin is at or before the chain end, and everything the
     operation touches from here on — the walk segment, the target
     cell — is at or after it), so no re-validation is needed; and it
     stops the waiter's own stale pin from capping every cleanup at
     its op-start segment, the self-deadlock where all threads wait
     on garbage none of them is allowed to reclaim.  Slow paths and
     helpers must NOT advance: their pin also protects the open
     request cells (their own or a peer's) below the chain end, so
     they keep the conservative pin and rely on fast-path waiters or
     completing peers to clear the garbage.

   A thread parked in the wait holds no reservation, so dying there
   ([Seg_pool_acquire]) leaves the budget accounting exact. *)
let rec obtain_segment q h advance chain_end seg_id =
  match pool_pop q with
  | Some s ->
    if tracing () then
      tracef (fun () ->
          Printf.sprintf "obtain: recycle uid=%d as seg=%d (was %d)" s.uid seg_id s.seg_id);
    s.seg_id <- seg_id;
    s
  | None ->
    if A.fetch_and_add q.seg_budget (-1) > 0 then begin
      ignore (A.fetch_and_add q.allocated 1);
      let s = new_segment q.seg_shift seg_id in
      if tracing () then
        tracef (fun () -> Printf.sprintf "obtain: fresh uid=%d seg=%d" s.uid seg_id);
      s
    end
    else begin
      ignore (A.fetch_and_add q.seg_budget 1);
      ignore (A.fetch_and_add q.cap_hits 1);
      if I.enabled then I.hit Inject.Seg_pool_acquire;
      if advance then A.set h.hzdp chain_end;
      if q.reclamation then cleanup_candidate q h chain_end;
      A.cpu_relax ();
      obtain_segment q h advance chain_end seg_id
    end

(* ------------------------------------------------------------------ *)
(* find_cell (L.33-52) and index advancing (L.53-55)                  *)

(* The walk is a top-level recursion over explicit parameters: a local
   [let rec] capturing [q]/[target] would allocate a closure on every
   find_cell — i.e. on every operation.  [advance] flags the fast-path
   call sites where a bounded-mode acquire wait may re-publish the
   caller's hazard at the chain end (see [obtain_segment]); it is
   dead weight for unbounded queues, whose acquires never wait. *)
let rec find_cell_walk q h who advance cell_id target s =
  if s.seg_id = target then s
  else if s.seg_id > target then begin
    (* our segment was retired and relabeled under us: restart from
       the oldest live segment (always at or before any cell a
       thread may legitimately ask for) *)
    let fresh_start = A.get q.q in
    if fresh_start.seg_id > target then
      invalid_arg
        (Printf.sprintf "Wfqueue.find_cell[%s]: cell %d is in a reclaimed segment (%d > %d)" who
           cell_id fresh_start.seg_id target);
    find_cell_walk q h who advance cell_id target fresh_start
  end
  else begin
    match A.get s.next with
    | Some next -> find_cell_walk q h who advance cell_id target next
    | None ->
      if tracing () then
        tracef (fun () ->
            Printf.sprintf "find_cell[%s]: extend from seg %d toward %d (cell %d)" who s.seg_id
              target cell_id);
      let fresh = obtain_segment q h advance s (s.seg_id + 1) in
      if A.compare_and_set s.next None (Some fresh) then
        find_cell_walk q h who advance cell_id target fresh
      else begin
        (* L.42-44: another thread extended the list; ours goes
           back to the pool (the paper frees it here).  It was
           never published, so it is still clean. *)
        ignore (A.fetch_and_add q.wasted 1);
        pool_push q fresh;
        find_cell_walk q h who advance cell_id target s
      end
  end

(* [from] is a segment whose id is <= cell_id / N (normally the
   caller's cached head/tail segment); returns the segment containing
   the cell — the caller stores it back into its own pointer, which
   is the paper's side effect through the Segment pointer-to-pointer
   without a per-call [ref] cell.  The cell itself is the planes'
   entries at offset [cell_id land q.seg_mask] — pure arithmetic, no
   cell object to chase or allocate. *)
let find_cell ?(who = "?") ?(advance = false) q h (from : 'a segment) cell_id =
  let target = cell_id lsr q.seg_shift in
  (* A cleaner can advance another thread's head/tail pointer (L.239,
     "update") concurrently with that thread's operation: its hazard
     pointer keeps the segments alive, but the advanced pointer may
     now be past the cell the thread is looking for (slow-path
     commits and helping look at cells at or before the pointer's old
     position).  The paper's pseudocode would silently index into the
     wrong segment in that rare interleaving; we restart from the
     oldest live segment, which the hazard-pointer protocol
     guarantees is at or before any cell a thread can legitimately
     ask for. *)
  let start = if from.seg_id <= target then from else A.get q.q in
  if start.seg_id > target then
    invalid_arg
      (Printf.sprintf
         "Wfqueue.find_cell[%s]: cell %d is in a reclaimed segment (%d > %d) T=%d H=%d sp=%d" who
         cell_id start.seg_id target (A.get q.tail_index) (A.get q.head_index) from.seg_id);
  find_cell_walk q h who advance cell_id target start

(* Publish [src]'s current segment as [h]'s hazard pointer and
   re-validate that [src] still holds it (Michael's hazard-pointer
   acquire protocol).  Listing 5 publishes without re-validating; a
   thread descheduled between reading a segment pointer and
   publishing it can then expose a hazard pointer to an
   already-reclaimed segment, which a concurrent cleaner would adopt
   as its reclaim boundary (in the original C this is a read of freed
   memory).  Re-validation closes the window: a segment still
   installed in a live head/tail pointer cannot have been reclaimed,
   and once the hazard pointer to it is visible no cleaner will
   reclaim it.  The loop re-runs only when a cleanup advanced [src]
   concurrently, which is itself global progress. *)
let rec protect_pointer h (src : 'a segment A.t) =
  let s = A.get src in
  A.set h.hzdp s;
  (* the window the re-validation defends: the hazard pointer is
     published but not yet known valid *)
  if I.enabled then I.hit Inject.Hazard_published;
  if A.get src == s then s else protect_pointer h src

(* L.53-55: ensure the head or tail index is at or beyond [cid]. *)
let rec advance_end_for_linearizability index cid =
  let e = A.get index in
  if e < cid && not (A.compare_and_set index e cid) then
    advance_end_for_linearizability index cid

(* ------------------------------------------------------------------ *)
(* Enqueue (Listing 3)                                                *)

(* L.60-61 *)
let try_to_claim_req state ~id ~cell_id =
  A.compare_and_set state (Packed.make ~pending:true ~id)
    (Packed.make ~pending:false ~id:cell_id)

(* L.62-64: [cv] is the cell's entry in the value plane; [w] the bare
   value word. *)
let enq_commit q cv w cid =
  advance_end_for_linearizability q.tail_index (cid + 1);
  A.set cv w

(* L.65-69: returns -1 on success, or the failed cell index that
   becomes the slow-path request id (cell ids are FAA tickets, never
   negative).  An int instead of [int option] keeps the contended
   retry path allocation-free. *)
let enq_fast (q : 'a t) (h : 'a handle) (v : 'a) =
  let i = A.fetch_and_add q.tail_index 1 in
  (* ticket [i] is consumed but nothing is deposited yet: a stall here
     forces dequeuers to poison the cell; a death abandons it *)
  if I.enabled then I.hit Inject.Enq_fast_after_faa;
  if tracing () then
    tracef (fun () ->
        let t = A.get h.tail in
        Printf.sprintf "h%d enq_fast: ticket %d, tail seg=%d uid=%d hzdp seg=%d" h.hid i t.seg_id
          t.uid (A.get h.hzdp).seg_id);
  let s = find_cell ~who:"enq_fast" ~advance:true q h (A.get h.tail) i in
  A.set h.tail s;
  if A.compare_and_set s.values.(i land q.seg_mask) bottom_w (Obj.repr v) then begin
    if tracing () then tracef (fun () -> Printf.sprintf "h%d enq_fast: deposit at %d" h.hid i);
    -1
  end
  else begin
    if P.enabled then h.stats.enq_cas_failures <- h.stats.enq_cas_failures + 1;
    if tracing () then tracef (fun () -> Printf.sprintf "h%d enq_fast: cell %d unusable" h.hid i);
    i
  end

(* L.73-84: the slow path's cell-acquisition loop, traversing with a
   local tail segment because the claimed cell may be earlier than the
   last cell visited here.  Top-level recursion: the segment threads
   through as a parameter instead of the former per-call [ref]. *)
let rec enq_slow_acquire q h r cell_id tmp_tail =
  let i = A.fetch_and_add q.tail_index 1 in
  let s = find_cell ~who:"enq_slow_acq" q h tmp_tail i in
  let j = i land q.seg_mask in
  (* L.79-84, Dijkstra's protocol with the helpers *)
  if
    (let won = A.compare_and_set s.enqs.(j) Enq_bottom (Enq_req r) in
     if tracing () then
       tracef (fun () -> Printf.sprintf "h%d enq_slow: reserve cell %d -> %b" h.hid i won);
     won)
    && A.get s.values.(j) == bottom_w
  then begin
    let claimed = try_to_claim_req r.enq_state ~id:cell_id ~cell_id:i in
    if tracing () then
      tracef (fun () -> Printf.sprintf "h%d enq_slow: self-claim at %d -> %b" h.hid i claimed)
    (* invariant: request claimed (even if the claim CAS failed) *)
  end
  else if Packed.pending (A.get r.enq_state) then begin
    (* ticket [i] was consumed but the transfer did not complete
       there: the cell is abandoned to the dequeuers' help_enq *)
    if P.enabled then h.stats.cells_skipped <- h.stats.cells_skipped + 1;
    enq_slow_acquire q h r cell_id s
  end

(* L.70-89 *)
let enq_slow (q : 'a t) (h : 'a handle) (v : 'a) cell_id =
  (* publish a fresh single-use request: the record is fully built
     (value and pending state) before the one SC store that makes it
     reachable, so helpers never observe a half-published request.
     The allocation is confined to the slow path (patience already
     exhausted); the fast path stays allocation-free. *)
  if tracing () then tracef (fun () -> Printf.sprintf "h%d enq_slow: publish id=%d" h.hid cell_id);
  let r =
    { enq_value = Obj.repr v; enq_state = A.make (Packed.make ~pending:true ~id:cell_id) }
  in
  A.set h.enq_req r;
  (* the request is visible: from here the paper guarantees helpers
     complete it even if this thread never runs another step *)
  if I.enabled then I.hit Inject.Enq_slow_published;
  enq_slow_acquire q h r cell_id (A.get h.tail);
  (* L.86-88: the request is claimed for some cell; find it, commit. *)
  let id = Packed.id (A.get r.enq_state) in
  if tracing () then
    tracef (fun () -> Printf.sprintf "h%d enq_slow: committing claimed cell %d" h.hid id);
  if id < cell_id then
    failwith
      (Printf.sprintf "enq_slow: claimed cell %d below request id %d (stale claim)" id cell_id);
  if id lsr q.seg_shift < (A.get q.q).seg_id then
    failwith
      (Printf.sprintf
         "enq_slow: claimed cell %d (seg %d) reclaimed; req=%d hzdp=%d oldest=%d T=%d" id
         (id lsr q.seg_shift) cell_id (A.get h.hzdp).seg_id (A.get q.oldest)
         (A.get q.tail_index));
  (* claimed but not yet committed: a death here loses the value (the
     enqueue never returned), a stall forces the claimed cell's
     dequeuer onto its own slow path *)
  if I.enabled then I.hit Inject.Enq_slow_pre_commit;
  let s = find_cell ~who:"enq_slow_commit" q h (A.get h.tail) id in
  A.set h.tail s;
  enq_commit q s.values.(id land q.seg_mask) (Obj.repr v) id

(* L.56-59: the patience loop, as a top-level recursion over the
   remaining patience. *)
let rec enq_attempt (q : 'a t) (h : 'a handle) (v : 'a) p =
  let failed = enq_fast q h v in
  if failed < 0 then h.stats.fast_enqueues <- h.stats.fast_enqueues + 1
  else if p > 0 then enq_attempt q h v (p - 1)
  else begin
    enq_slow q h v failed;
    h.stats.slow_enqueues <- h.stats.slow_enqueues + 1
  end

let enqueue_with_hzdp q h v = enq_attempt q h v q.patience

(* ------------------------------------------------------------------ *)
(* help_enq (L.90-127), called by dequeuers on every visited cell     *)

(* The dequeue-side result convention: a bare word that is the cell's
   value, [top_w] (cell closed without a value), or [empty_w] (queue
   observed empty) — no [Henq_*] variant box on the per-cell path. *)
let value_or_top cv =
  let w = A.get cv in
  assert (w != bottom_w) (* the cell was already ⊤ or a value *);
  w

(* L.94-100: advance the helping bookmark to a peer whose request this
   thread may help; returns that peer's current request record (the
   settled peer itself is [h.enq_peer] after the call).  The caller
   re-reads the state from the returned record: on a single-use record
   the id never changes, so the re-read can only observe the pending
   bit settling — never a different request. *)
let rec settle_enq_peer h =
  let p = h.enq_peer in
  let r = A.get p.enq_req in
  let s = A.get r.enq_state in
  if h.enq_help_id = 0 || h.enq_help_id = Packed.id s then r
  else begin
    h.enq_help_id <- 0;
    h.enq_peer <- next_live_handle p;
    settle_enq_peer h
  end

(* [s] is the segment holding cell [i]; the cell's two fields this
   function touches are bound once from the planes up front. *)
let help_enq q h (s : 'a segment) i =
  let j = i land q.seg_mask in
  let cv = s.values.(j) in
  let ce = s.enqs.(j) in
  let poisoned = A.compare_and_set cv bottom_w top_w in
  if tracing () && poisoned then
    tracef (fun () -> Printf.sprintf "h%d help_enq: poison cell %d" h.hid i);
  let w0 = if poisoned then top_w else A.get cv in
  if is_value w0 then w0 (* L.91: the cell already holds a value *)
  else begin
    (* c.value is ⊤: try to complete a slow-path enqueue here. *)
    (match A.get ce with
    | Enq_req _ | Enq_top -> ()
    | Enq_bottom ->
      let r = settle_enq_peer h in
      let p = h.enq_peer in
      let st = A.get r.enq_state in
      (* L.101-108 *)
      if
        Packed.pending st
        && Packed.id st <= i
        && not
             (let won = A.compare_and_set ce Enq_bottom (Enq_req r) in
              if tracing () && won then
                tracef (fun () ->
                    Printf.sprintf "h%d help_enq: reserved cell %d for peer h%d (req id %d)"
                      h.hid i p.hid (Packed.id st));
              won)
      then h.enq_help_id <- Packed.id st
      else h.enq_peer <- next_live_handle p;
      (* L.109-111: close the cell to enqueue helpers if unused *)
      (match A.get ce with
      | Enq_bottom -> ignore (A.compare_and_set ce Enq_bottom Enq_top)
      | Enq_req _ | Enq_top -> ()));
    (* invariant: c.enq is a request or ⊤e (L.113) *)
    match A.get ce with
    | Enq_bottom -> assert false
    | Enq_top ->
      (* L.114-116: nobody will fill this cell *)
      if A.get q.tail_index <= i then empty_w else top_w
    | Enq_req r ->
      (* L.117-127.  [r] is single-use: its value is an immutable
         field, so whatever we commit below is THE value of the
         request installed in this cell — a stale read cannot hand us
         a different (earlier or later) request's value. *)
      let st = A.get r.enq_state in
      let v = r.enq_value in
      if Packed.id st > i then begin
        (* L.119-122: request unsuitable for this cell *)
        if A.get cv == top_w && A.get q.tail_index <= i then empty_w else value_or_top cv
      end
      else begin
        (* L.123-126.  The paper's second disjunct compares the STALE
           [st] against (0, i); if the owner's self-claim for this very
           cell lands between our read of [st] and our claim CAS, the
           stale comparison misses it, we abandon the cell as ⊤, and
           the owner then commits into a cell no dequeuer will visit
           again: the value is lost.  (Found by the model checker —
           seed-58 interleaving; see DESIGN.md §3.4.)  Re-reading the
           state closes the race: on this single-use record, (0, i)
           means exactly "this request was claimed for this cell". *)
        (* a helper poised on the claim CAS: dying here must leave the
           request completable by the owner or any other helper *)
        if I.enabled then I.hit Inject.Help_enq_pre_claim;
        let claimed_by_us = try_to_claim_req r.enq_state ~id:(Packed.id st) ~cell_id:i in
        if P.enabled && claimed_by_us && r != A.get h.enq_req then
          h.stats.help_enqueues <- h.stats.help_enqueues + 1;
        if tracing () && claimed_by_us then
          tracef (fun () ->
              Printf.sprintf "h%d help_enq: claimed req (id %d) for cell %d" h.hid (Packed.id st) i);
        let claimed_for_cell =
          claimed_by_us
          || Packed.equal (A.get r.enq_state) (Packed.make ~pending:false ~id:i)
             && A.get cv == top_w
        in
        if claimed_for_cell then begin
          assert (v != bottom_w) (* a claimed request had its value published *);
          if tracing () then
            tracef (fun () -> Printf.sprintf "h%d help_enq: commit value at cell %d" h.hid i);
          enq_commit q cv v i
        end;
        value_or_top cv (* L.127 *)
      end
  end

(* ------------------------------------------------------------------ *)
(* Dequeue (Listing 4)                                                *)

(* L.158-205 *)
let help_deq q h helpee =
  (* the record is bound once: if the helpee republishes while we
     work, every CAS below targets the old (already closed) record
     and fails — a republication can never be confused with an
     announcement, which is the ABA the reused-record representation
     allowed (a fresh request's ticket could numerically equal a
     stale helper's announced candidate under the batch entry
     points; see the type's comment). *)
  let r = A.get helpee.deq_req in
  let s0 = A.get r.deq_state in
  let id = r.deq_id in
  (* L.162: no help needed (not pending, or a stale mixed read).
     Checked before any local state is built: this function also runs
     on every successful dequeue (peer helping), and its common exit
     must not allocate.  The [ref]s below belong to the actual
     helping path only. *)
  if Packed.pending s0 && Packed.id s0 >= id then begin
    if P.enabled && helpee != h then h.stats.help_dequeues <- h.stats.help_dequeues + 1;
    (* L.163-165: local segment pointer for announced cells; publish
       it as our hazard pointer (validated, see protect_pointer),
       then re-read the request state. *)
    let ha = ref (protect_pointer h helpee.head) in
    let s = ref (A.get r.deq_state) in
    let prior = ref id and i = ref id and cand = ref 0 in
    let finished = ref false in
    while not !finished do
      (* L.168-180: search for a candidate cell, unless one is already
         announced.  [hc] is a second local segment pointer so that
         [ha] is not advanced past announced cells. *)
      let hc = ref !ha in
      while !cand = 0 && Packed.id !s = !prior do
        incr i;
        let seg = find_cell ~who:"help_deq_cand" q h !hc !i in
        hc := seg;
        let w = help_enq q h seg !i in
        if w == empty_w then cand := !i
        else if
          w != top_w
          && (match A.get seg.deqs.(!i land q.seg_mask) with
             | Deq_bottom -> true
             | Deq_top | Deq_req _ -> false)
        then cand := !i
        else s := A.get r.deq_state
      done;
      if !cand <> 0 then begin
        (* L.181-185: try to announce our candidate *)
        let announced =
          A.compare_and_set r.deq_state
            (Packed.make ~pending:true ~id:!prior)
            (Packed.make ~pending:true ~id:!cand)
        in
        if tracing () && announced then
          tracef (fun () ->
              Printf.sprintf "h%d help_deq(h%d): announce cell %d" h.hid helpee.hid !cand);
        s := A.get r.deq_state
      end;
      (* L.187-188: someone completed the request.  (The paper also
         re-checks the request id here; on a single-use record the id
         cannot change, so the pending bit alone decides.) *)
      if not (Packed.pending !s) then finished := true
      else begin
        (* L.189-199: inspect the announced candidate *)
        let seg = find_cell ~who:"help_deq_ann" q h !ha (Packed.id !s) in
        ha := seg;
        let j = Packed.id !s land q.seg_mask in
        let satisfied =
          A.get seg.values.(j) == top_w
          || A.compare_and_set seg.deqs.(j) Deq_bottom (Deq_req r)
          || (match A.get seg.deqs.(j) with
             | Deq_req r' -> r' == r
             | Deq_bottom | Deq_top -> false)
        in
        if satisfied then begin
          (* about to close the helpee's request: a stalled/dying
             helper must not block other helpers from closing it *)
          if I.enabled then I.hit Inject.Help_deq_pre_close;
          let closed =
            A.compare_and_set r.deq_state !s (Packed.make ~pending:false ~id:(Packed.id !s))
          in
          if tracing () && closed then
            tracef (fun () ->
                Printf.sprintf "h%d help_deq(h%d): closed at cell %d" h.hid helpee.hid
                  (Packed.id !s));
          finished := true
        end
        else begin
          (* L.200-204 *)
          prior := Packed.id !s;
          if Packed.id !s >= !i then begin
            cand := 0;
            i := Packed.id !s
          end
        end
      end
    done
  end

(* L.149-157: returns the value word or [empty_w]. *)
let deq_slow q h cell_id =
  if tracing () then tracef (fun () -> Printf.sprintf "h%d deq_slow: publish id=%d" h.hid cell_id);
  (* fresh single-use request; see [deq_request]'s comment *)
  let r = { deq_id = cell_id; deq_state = A.make (Packed.make ~pending:true ~id:cell_id) } in
  A.set h.deq_req r;
  (* the dequeue request is visible: peers' helping rotation must
     finish it if this thread stalls or dies before self-helping *)
  if I.enabled then I.hit Inject.Deq_slow_published;
  help_deq q h h;
  let i = Packed.id (A.get r.deq_state) in
  let s = find_cell ~who:"deq_slow_res" q h (A.get h.head) i in
  A.set h.head s;
  let w = A.get s.values.(i land q.seg_mask) in
  advance_end_for_linearizability q.head_index (i + 1);
  assert (w != bottom_w) (* the request completed at this cell *);
  if w == top_w then empty_w else w

(* L.128-148: the paper's dequeue/deq_fast pair fused into one
   patience recursion.  Each round is L.140-148 (FAA a head ticket,
   help the cell's enqueuer, claim); the word result is the value,
   or [empty_w] — no [Dq_*] variant box and no segment [ref] per
   round. *)
let rec deq_attempt q h p =
  (* Bounded mode takes a pre-FAA empty check (read H, then T; H >= T
     linearizes EMPTY at the T read, both indices being monotone).
     The paper's dequeue burns the head ticket unconditionally, which
     is harmless with unbounded memory but lethal under a segment cap:
     an idle consumer's tickets march H through segments that must be
     materialized from the same budget producers are blocked on, so a
     polling consumer could drain the freelist and then wait in
     [obtain_segment] with its hazard pinned — the deadlock the pool
     storms caught.  Unbounded mode keeps the paper's exact ticket
     semantics. *)
  if q.segment_cap <> max_int && A.get q.head_index >= A.get q.tail_index then begin
    h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
    h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
    empty_w
  end
  else begin
  let i = A.fetch_and_add q.head_index 1 in
  (* head ticket consumed, cell not yet helped/claimed: a death here
     can strand the value at cell [i] (linearized as dequeue-then-
     crash), which is exactly what a crashed consumer does *)
  if I.enabled then I.hit Inject.Deq_fast_after_faa;
  let s = find_cell ~who:"deq_fast" ~advance:true q h (A.get h.head) i in
  A.set h.head s;
  let w = help_enq q h s i in
  if w == empty_w then begin
    if tracing () then tracef (fun () -> Printf.sprintf "h%d deq_fast: cell %d EMPTY" h.hid i);
    h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
    h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
    empty_w
  end
  else if
    w != top_w && A.compare_and_set s.deqs.(i land q.seg_mask) Deq_bottom Deq_top
  then begin
    if tracing () then
      tracef (fun () -> Printf.sprintf "h%d deq_fast: took value at cell %d" h.hid i);
    h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
    w
  end
  else begin
    if tracing () then tracef (fun () -> Printf.sprintf "h%d deq_fast: failed at cell %d" h.hid i);
    if P.enabled then h.stats.deq_cas_failures <- h.stats.deq_cas_failures + 1;
    if p > 0 then deq_attempt q h (p - 1)
    else begin
      let w = deq_slow q h i in
      h.stats.slow_dequeues <- h.stats.slow_dequeues + 1;
      if w == empty_w then h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
      w
    end
  end
  end

let dequeue_with_hzdp q h =
  let w = deq_attempt q h q.patience in
  (* L.135-138: a successful dequeue helps its dequeue peer *)
  if w != empty_w then begin
    help_deq q h h.deq_peer;
    h.deq_peer <- next_live_handle h.deq_peer
  end;
  w

(* ------------------------------------------------------------------ *)
(* Bounded-mode admission (DESIGN.md §11)                             *)

(* Admission is decided *before* the tail FAA.  Once an enqueue holds
   a ticket — let alone published a slow-path request that helpers may
   complete concurrently — it cannot be abandoned: a mid-protocol
   rejection retried by the caller would deposit the value twice (the
   helpers' copy and the retry's).  So a bounded enqueue either
   rejects up front or runs the unmodified protocol to completion,
   and the protocol text below the admission line is byte-identical
   to the unbounded build's.

   The check is advisory — a racy tail/head read, the same contract
   as the shard router's capacity check: in-flight producers can
   overshoot the line by their count.  Its job is to keep producers
   away from the hard cap, which is enforced independently by the
   allocation budget in [obtain_segment]; the [max_garbage + 2]
   segments the line holds back absorb the reclamation slack (garbage
   below [oldest] waiting for a cleanup) and the overshoot. *)
let has_admission q k =
  q.segment_cap = max_int
  || A.get q.tail_index - A.get q.head_index + k <= q.enq_capacity

(* The blocking enqueue's backpressure point.  It matters that the
   wait happens *here*, before [protect_pointer] and the FAA, and not
   down in [obtain_segment]: a thread parked at the admission line
   holds no ticket and no hazard pointer, so it cannot pin the oldest
   segment against reclamation while it waits.  A waiter inside
   [obtain_segment] pins its op-start segment, capping every
   cleanup's reclaim bound ([verify] via [update]); fast-path waiters
   escape by advancing their pin to the chain end (see
   [obtain_segment]), but slow-path and helping waiters cannot, so
   keeping the bulk of the waiting hazard-free up front confines the
   in-protocol budget waits to the bounded admission overshoot, which
   the [max_garbage + 2] headroom absorbs.

   Progress here needs consumers: the wait clears when dequeues move
   [head_index] — that is the backpressure contract, not a fault. *)
let wait_admission q k =
  if not (has_admission q k) then begin
    ignore (A.fetch_and_add q.cap_hits 1);
    while not (has_admission q k) do
      (* same fault window as the in-protocol acquire wait: nothing
         held, so a death or park here strands nothing *)
      if I.enabled then I.hit Inject.Seg_pool_acquire;
      A.cpu_relax ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Public operations: Listing 5's hazard-pointer augmentation         *)

let enqueue_unchecked (q : 'a t) (h : 'a handle) (v : 'a) =
  ignore (protect_pointer h h.tail);
  enqueue_with_hzdp q h v;
  A.set h.hzdp q.null_segment

let enqueue (q : 'a t) (h : 'a handle) (v : 'a) =
  if q.segment_cap <> max_int then wait_admission q 1;
  enqueue_unchecked q h v

(* The word-returning dequeue shared by [dequeue] (option) and
   [dequeue_or] (default).  Only the [option] wrapper allocates — the
   unavoidable [Some] box of that API; [dequeue_or] returns the bare
   value and is the zero-allocation dequeue ([Wfqueue_int], and the
   alloc probe's subject). *)
let dequeue_raw (q : 'a t) (h : 'a handle) =
  ignore (protect_pointer h h.head);
  let w = dequeue_with_hzdp q h in
  A.set h.hzdp q.null_segment;
  if q.reclamation then cleanup q h;
  w

let dequeue (q : 'a t) (h : 'a handle) : 'a option =
  let w = dequeue_raw q h in
  if w == empty_w then None else Some (Obj.obj w)

let dequeue_or (q : 'a t) (h : 'a handle) (default : 'a) : 'a =
  let w = dequeue_raw q h in
  if w == empty_w then default else Obj.obj w

(* ------------------------------------------------------------------ *)
(* Batch operations: one FAA reserves k consecutive cells             *)

(* The batch paths live in their own functions so the single-operation
   hot path above is byte-identical with or without them (the bench
   gate's compile-out check).  Safety piggybacks on the single-op
   protocol: a reserved cell that cannot complete on its fast attempt
   falls back to the per-cell slow path, so helping and wait-freedom
   hold cell by cell exactly as for k = 1.  The hazard pointer
   published before the FAA covers every reserved cell: cell ids only
   grow past the protected segment, and cleanup never reclaims at or
   beyond a live hazard pointer. *)

let enq_batch_unchecked (q : 'a t) (h : 'a handle) (vs : 'a array) =
  let k = Array.length vs in
  if k > 0 then begin
    ignore (protect_pointer h h.tail);
    let first = A.fetch_and_add q.tail_index k in
    (* k tail tickets are consumed and none of the values deposited:
       the widest abandoned window the algorithm can create.  Dying
       here abandons all k cells to the dequeuers' help_enq, which
       poisons them one by one. *)
    if I.enabled then I.hit Inject.Enq_batch_after_faa;
    if P.enabled then begin
      h.stats.enq_batches <- h.stats.enq_batches + 1;
      h.stats.enq_batch_cells <- h.stats.enq_batch_cells + k
    end;
    for j = 0 to k - 1 do
      let i = first + j in
      let s = find_cell ~who:"enq_batch" ~advance:true q h (A.get h.tail) i in
      A.set h.tail s;
      if A.compare_and_set s.values.(i land q.seg_mask) bottom_w (Obj.repr vs.(j)) then
        h.stats.fast_enqueues <- h.stats.fast_enqueues + 1
      else begin
        (* the cell was poisoned while we worked through the batch:
           per-cell fallback, with no patience retry — the ticket is
           already ours and a retry would burn a fresh one *)
        if P.enabled then begin
          h.stats.enq_cas_failures <- h.stats.enq_cas_failures + 1;
          h.stats.enq_batch_fallbacks <- h.stats.enq_batch_fallbacks + 1
        end;
        enq_slow q h vs.(j) i;
        h.stats.slow_enqueues <- h.stats.slow_enqueues + 1
      end
    done;
    A.set h.hzdp q.null_segment
  end

let enq_batch (q : 'a t) (h : 'a handle) (vs : 'a array) =
  let k = Array.length vs in
  if q.segment_cap <> max_int && k > 0 then
    (* a batch wider than the admission line can never be admitted
       whole; wait for as much of the line as it can cover and let
       the allocation budget absorb the rest (callers that need the
       all-or-nothing contract use [try_enq_batch]) *)
    wait_admission q (min k q.enq_capacity);
  enq_batch_unchecked q h vs

let deq_batch (q : 'a t) (h : 'a handle) k : 'a option array =
  if k <= 0 then [||]
  else if q.segment_cap <> max_int && A.get q.head_index >= A.get q.tail_index then begin
    (* bounded-mode pre-FAA empty check, as in [deq_attempt]: don't
       burn k head tickets through segments the cap may not cover *)
    h.stats.empty_dequeues <- h.stats.empty_dequeues + k;
    Array.make k None
  end
  else begin
    ignore (protect_pointer h h.head);
    let first = A.fetch_and_add q.head_index k in
    (* k head tickets consumed, no cell helped or claimed yet: dying
       here can strand up to k values (dequeue-then-crash, k times) *)
    if I.enabled then I.hit Inject.Deq_batch_after_faa;
    if P.enabled then begin
      h.stats.deq_batches <- h.stats.deq_batches + 1;
      h.stats.deq_batch_cells <- h.stats.deq_batch_cells + k
    end;
    let out = Array.make k None in
    let got = ref false in
    for j = 0 to k - 1 do
      let i = first + j in
      let s = find_cell ~who:"deq_batch" ~advance:true q h (A.get h.head) i in
      A.set h.head s;
      let w = help_enq q h s i in
      if w == empty_w then begin
        h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
        h.stats.empty_dequeues <- h.stats.empty_dequeues + 1
      end
      else if
        w != top_w && A.compare_and_set s.deqs.(i land q.seg_mask) Deq_bottom Deq_top
      then begin
        h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
        out.(j) <- Some (Obj.obj w);
        got := true
      end
      else begin
        if P.enabled then begin
          h.stats.deq_cas_failures <- h.stats.deq_cas_failures + 1;
          h.stats.deq_batch_fallbacks <- h.stats.deq_batch_fallbacks + 1
        end;
        let w = deq_slow q h i in
        h.stats.slow_dequeues <- h.stats.slow_dequeues + 1;
        if w == empty_w then h.stats.empty_dequeues <- h.stats.empty_dequeues + 1
        else begin
          out.(j) <- Some (Obj.obj w);
          got := true
        end
      end
    done;
    if !got then begin
      help_deq q h h.deq_peer;
      h.deq_peer <- next_live_handle h.deq_peer
    end;
    A.set h.hzdp q.null_segment;
    if q.reclamation then cleanup q h;
    out
  end

(* Cell loop of [deq_batch_into]: a top-level recursion (a local
   [let rec] would box a closure per call, against the PR 6 zero-
   allocation discipline).  Values are compacted to the front of
   [out]; returns how many were written. *)
let rec deq_batch_into_loop q h (out : 'a array) k first j n =
  if j = k then n
  else begin
    let i = first + j in
    let s = find_cell ~who:"deq_batch_into" ~advance:true q h (A.get h.head) i in
    A.set h.head s;
    let w = help_enq q h s i in
    if w == empty_w then begin
      h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
      h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
      deq_batch_into_loop q h out k first (j + 1) n
    end
    else if w != top_w && A.compare_and_set s.deqs.(i land q.seg_mask) Deq_bottom Deq_top
    then begin
      h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
      out.(n) <- Obj.obj w;
      deq_batch_into_loop q h out k first (j + 1) (n + 1)
    end
    else begin
      if P.enabled then begin
        h.stats.deq_cas_failures <- h.stats.deq_cas_failures + 1;
        h.stats.deq_batch_fallbacks <- h.stats.deq_batch_fallbacks + 1
      end;
      let w = deq_slow q h i in
      h.stats.slow_dequeues <- h.stats.slow_dequeues + 1;
      if w == empty_w then begin
        h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
        deq_batch_into_loop q h out k first (j + 1) n
      end
      else begin
        out.(n) <- Obj.obj w;
        deq_batch_into_loop q h out k first (j + 1) (n + 1)
      end
    end
  end

(* The allocation-free batch dequeue: same reservation protocol as
   [deq_batch], but values land bare in the caller's array (no [Some]
   per cell, no result-array allocation) with the remainder filled
   with [default].  [Array.length out] is the ticket batch size. *)
let deq_batch_into (q : 'a t) (h : 'a handle) (out : 'a array) ~(default : 'a) : int =
  let k = Array.length out in
  if k = 0 then 0
  else if q.segment_cap <> max_int && A.get q.head_index >= A.get q.tail_index then begin
    h.stats.empty_dequeues <- h.stats.empty_dequeues + k;
    Array.fill out 0 k default;
    0
  end
  else begin
    ignore (protect_pointer h h.head);
    let first = A.fetch_and_add q.head_index k in
    if I.enabled then I.hit Inject.Deq_batch_after_faa;
    if P.enabled then begin
      h.stats.deq_batches <- h.stats.deq_batches + 1;
      h.stats.deq_batch_cells <- h.stats.deq_batch_cells + k
    end;
    let n = deq_batch_into_loop q h out k first 0 0 in
    if n > 0 then begin
      help_deq q h h.deq_peer;
      h.deq_peer <- next_live_handle h.deq_peer
    end;
    Array.fill out n (k - n) default;
    A.set h.hzdp q.null_segment;
    if q.reclamation then cleanup q h;
    n
  end

(* ------------------------------------------------------------------ *)
(* Bounded-mode admission wrappers (DESIGN.md §11)                    *)

(* [has_admission]/[wait_admission] live above the public operations;
   the try-wrappers go through the *unchecked* entry points so a
   failed re-check by a racing producer cannot turn an admitted
   [try_enqueue] into a blocking one. *)

let try_enqueue (q : 'a t) (h : 'a handle) (v : 'a) =
  has_admission q 1
  && begin
    enqueue_unchecked q h v;
    true
  end

let enqueue_exn q h v = if not (try_enqueue q h v) then raise Would_block

let try_enq_batch (q : 'a t) (h : 'a handle) (vs : 'a array) =
  has_admission q (Array.length vs)
  && begin
    enq_batch_unchecked q h vs;
    true
  end

let enq_batch_exn q h vs = if not (try_enq_batch q h vs) then raise Would_block

(* ------------------------------------------------------------------ *)
(* Implicit per-domain handles                                        *)

(* The push/pop hot path: one domain-local read plus one atomic load
   of the [retired] flag — no lock, no shared table.  The slow branch
   runs once per (domain, queue) lifetime: it registers a handle,
   caches it in the domain-local slot, and installs a [Domain.at_exit]
   hook so the handle is retired (and its ring slot donated for
   recycling) when the domain terminates.  The [retired] check guards
   against a caller explicitly retiring the cached handle: push/pop
   then transparently re-register. *)
let domain_handle q =
  match Domain.DLS.get q.dls_handle with
  | Some h when not (Atomic.get h.retired) -> h
  | Some _ | None ->
    let h = register q in
    Domain.DLS.set q.dls_handle (Some h);
    Domain.at_exit (fun () -> retire q h);
    h

let push q v = enqueue q (domain_handle q) v
let pop q = dequeue q (domain_handle q)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)

let approx_length q = max 0 (A.get q.tail_index - A.get q.head_index)

let fold_handles q f acc =
  match A.get q.ring with
  | None -> acc
  | Some first ->
    let rec go h acc =
      let acc = f acc h in
      let n = next_handle h in
      if n == first then acc else go n acc
    in
    go first acc

let stats q =
  let total = Op_stats.create () in
  Op_stats.add ~into:total q.departed_stats;
  fold_handles q
    (fun () h -> Op_stats.add ~into:total h.stats)
    ();
  total

let reset_stats q =
  Op_stats.reset q.departed_stats;
  fold_handles q (fun () h -> Op_stats.reset h.stats) ()

let ring_handles q = fold_handles q (fun acc _ -> acc + 1) 0

let live_handles q =
  fold_handles q (fun acc h -> if Atomic.get h.retired then acc else acc + 1) 0

let free_handle_slots q =
  let rec go n acc = match n with None -> acc | Some { more; _ } -> go more (acc + 1) in
  go (A.get q.free_handles) 0
let handle_stats h = h.stats
let reclaimed_segments q = A.get q.reclaimed
let cleanup_runs q = A.get q.cleanups
let allocated_segments q = A.get q.allocated
let wasted_segments q = A.get q.wasted
let recycled_segments q = A.get q.recycled
let pooled_segments q = A.get q.pool_size

let live_segments q =
  let rec count s acc =
    match A.get s.next with Some n -> count n (acc + 1) | None -> acc + 1
  in
  count (A.get q.q) 0

let oldest_segment_id q = A.get q.oldest
let segment_cap q = if q.segment_cap = max_int then None else Some q.segment_cap
let enq_capacity q = if q.segment_cap = max_int then None else Some q.enq_capacity
let cap_hits q = A.get q.cap_hits

let probe_enabled = P.enabled
let injector_enabled = I.enabled

(* One coherent telemetry view: the merged path/event counters
   (including departed handles, so recycled slots' history is counted
   exactly once) plus the segment-churn and ring gauges.  Exact at
   quiescence; tear-free but racy concurrently, which is what a
   monitoring scrape wants. *)
let snapshot q =
  {
    Obs.Snapshot.ops = stats q;
    segments =
      {
        Obs.Snapshot.allocated = A.get q.allocated;
        reclaimed = A.get q.reclaimed;
        recycled = A.get q.recycled;
        wasted = A.get q.wasted;
        pooled = A.get q.pool_size;
        live = live_segments q;
        cleanups = A.get q.cleanups;
        cap = (if q.segment_cap = max_int then 0 else q.segment_cap);
        cap_hits = A.get q.cap_hits;
      };
    handles =
      {
        Obs.Snapshot.ring = ring_handles q;
        live = live_handles q;
        free_slots = free_handle_slots q;
      };
    patience = q.patience;
    probe_enabled = P.enabled;
  }

(* ------------------------------------------------------------------ *)
(* Whitebox access for deterministic slow-path tests (see .mli)       *)

module Internal = struct
  (* A cell view for the whitebox tests: the owning segment plus the
     cell's offset into its planes.  The production paths never build
     one — they index the planes directly. *)
  type 'a cell = { cseg : 'a segment; coff : int; cid : int }

  let faa_tail q = A.fetch_and_add q.tail_index 1
  let faa_head q = A.fetch_and_add q.head_index 1
  let tail_index q = A.get q.tail_index
  let head_index q = A.get q.head_index

  let cell_of q h i =
    let s = find_cell ~who:"internal_cell" q h (A.get h.tail) i in
    A.set h.tail s;
    { cseg = s; coff = i land q.seg_mask; cid = i }

  let poison_cell c = A.compare_and_set c.cseg.values.(c.coff) bottom_w top_w
  let claim_cell_deq c = A.compare_and_set c.cseg.deqs.(c.coff) Deq_bottom Deq_top

  let cell_value (c : 'a cell) : 'a option =
    let w = A.get c.cseg.values.(c.coff) in
    if is_value w then Some (Obj.obj w) else None

  let enq_slow = enq_slow

  let deq_slow (q : 'a t) (h : 'a handle) cell_id : 'a option =
    let w = deq_slow q h cell_id in
    if w == empty_w then None else Some (Obj.obj w)

  let publish_enq_request (h : 'a handle) (v : 'a) cell_id =
    let r =
      { enq_value = Obj.repr v; enq_state = A.make (Packed.make ~pending:true ~id:cell_id) }
    in
    A.set h.enq_req r

  let enq_request_pending h = Packed.pending (A.get (A.get h.enq_req).enq_state)

  let enq_request_claimed_cell h =
    let s = A.get (A.get h.enq_req).enq_state in
    if Packed.pending s then None else Some (Packed.id s)

  let publish_deq_request h cell_id =
    let r = { deq_id = cell_id; deq_state = A.make (Packed.make ~pending:true ~id:cell_id) } in
    A.set h.deq_req r

  let deq_request_pending h = Packed.pending (A.get (A.get h.deq_req).deq_state)

  let help_enq q h (c : 'a cell) i : [ `Value of 'a | `Top | `Empty ] =
    assert (c.cid = i);
    let w = help_enq q h c.cseg i in
    if w == empty_w then `Empty else if w == top_w then `Top else `Value (Obj.obj w)

  let help_deq q ~helper ~helpee = help_deq q helper helpee

  let deq_request_result (q : 'a t) (h : 'a handle) : 'a option =
    let i = Packed.id (A.get (A.get h.deq_req).deq_state) in
    let s = find_cell ~who:"internal_res" q h (A.get h.head) i in
    A.set h.head s;
    let w = A.get s.values.(i land q.seg_mask) in
    advance_end_for_linearizability q.head_index (i + 1);
    if is_value w then Some (Obj.obj w) else None

  let cleanup = cleanup

  let cell_debug c h =
    let value =
      let w = A.get c.cseg.values.(c.coff) in
      if w == bottom_w then "bot" else if w == top_w then "TOP" else "VAL"
    in
    let enq =
      match A.get c.cseg.enqs.(c.coff) with
      | Enq_bottom -> "bot"
      | Enq_top -> "TOP"
      | Enq_req r -> if r == A.get h.enq_req then "REQ(this)" else "REQ(other)"
    in
    let deq =
      match A.get c.cseg.deqs.(c.coff) with
      | Deq_bottom -> "bot"
      | Deq_top -> "TOP"
      | Deq_req r -> if r == A.get h.deq_req then "DREQ(this)" else "DREQ(other)"
    in
    Printf.sprintf "val=%s enq=%s deq=%s" value enq deq

  let debug_dump q ppf =
    let seg_id_of s = if s == q.null_segment then -999 else s.seg_id in
    Format.fprintf ppf "T=%d H=%d oldest=%d q.q=%d pool=%d alloc=%d recycled=%d reclaimed=%d@."
      (A.get q.tail_index) (A.get q.head_index) (A.get q.oldest)
      (A.get q.q).seg_id (A.get q.pool_size) (A.get q.allocated)
      (A.get q.recycled) (A.get q.reclaimed);
    match A.get q.ring with
    | None -> Format.fprintf ppf "(no handles)@."
    | Some first ->
      let rec go h idx =
        let dr = A.get h.deq_req in
        let es = A.get (A.get h.enq_req).enq_state in
        let ds = A.get dr.deq_state in
        Format.fprintf ppf
          "h%d: head=%d tail=%d hzdp=%d enq_req=%a deq_req=(id=%d,%a) help_id=%d %s@." idx
          (A.get h.head).seg_id (A.get h.tail).seg_id
          (seg_id_of (A.get h.hzdp))
          Packed.pp es dr.deq_id
          Packed.pp ds h.enq_help_id
          (Format.asprintf "%a" Op_stats.pp h.stats);
        let n = next_handle h in
        if n != first then go n (idx + 1)
      in
      go first 0

  let set_trace = set_trace

  (* Whitebox access to the segment pool, for the size-accounting
     invariant tests: the counter must never exceed [pool_limit] and
     must equal the list length at quiescence. *)
  let pool_limit q = q.pool_limit

  let pool_length q =
    let rec go n acc = match n with None -> acc | Some { rest; _ } -> go rest (acc + 1) in
    go (A.get q.pool) 0

  let pool_push_fresh q = pool_push q (new_segment q.seg_shift 0)
  let pool_take q = match pool_pop q with Some _ -> true | None -> false

  (* Bounded-mode accounting, for the cap-invariant tests: remaining
     fresh-allocation budget, and the hard identity the tests assert —
     segments ever created ([allocated]) never exceeds the cap. *)
  let seg_budget q = A.get q.seg_budget

  let set_hazard q h which =
    match which with
    | `Head -> A.set h.hzdp (A.get h.head)
    | `Tail -> A.set h.hzdp (A.get h.tail)
    | `Null -> A.set h.hzdp q.null_segment
  end

end
