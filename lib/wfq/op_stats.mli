(** Per-handle operation-path counters.

    Table 2 of the paper breaks operations down by execution path
    (fast-path vs slow-path enqueues/dequeues, and dequeues returning
    EMPTY).  Each handle owns one [t]; only the owning thread writes
    it, so the fields are plain mutable ints with no synchronization
    cost on the operation paths.  Aggregation across handles happens
    after the threads quiesce. *)

type t = {
  mutable fast_enqueues : int;
  mutable slow_enqueues : int;
  mutable fast_dequeues : int;
  mutable slow_dequeues : int;
  mutable empty_dequeues : int;
}

val create : unit -> t
val reset : t -> unit
val add : into:t -> t -> unit

val absorb : into:t -> t -> unit
(** [add] followed by [reset] of the source: moves the counts.  Used
    when a departed domain's handle slot is recycled, so its
    operations stay visible in queue-level aggregates exactly once. *)

val total_enqueues : t -> int
val total_dequeues : t -> int

val slow_enqueue_pct : t -> float
(** Percentage of enqueues completed on the slow path, as in Table 2.
    0 when no enqueues ran. *)

val slow_dequeue_pct : t -> float
val empty_dequeue_pct : t -> float

val pp : Format.formatter -> t -> unit
