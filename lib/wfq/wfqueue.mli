(** The wait-free FIFO queue of Yang & Mellor-Crummey (PPoPP 2016),
    "A Wait-free Queue as Fast as Fetch-and-Add".

    The queue is an "infinite array" of cells, realized as a linked
    list of fixed-size segments, with unbounded head and tail indices
    advanced by fetch-and-add.  Operations first run a fast path (one
    FAA plus one CAS); after [patience] failed fast-path attempts they
    publish a request and fall back to a helping slow path that is
    guaranteed to complete, making every operation wait-free
    (a bounded number of steps regardless of scheduling).  Retired
    segments are unlinked by the paper's custom reclamation scheme so
    that the live segment list stays bounded; OCaml's GC then collects
    them (DESIGN.md §2.4 explains the mapping from free()).

    {1 Handles and their lifecycle}

    Every thread (domain) operating on a queue needs a {!handle}
    holding its segment pointers, helping state, and its slot in the
    helping ring (the paper's [Handle]).  Obtain one per domain with
    {!register}; a handle must never be used by two domains
    concurrently.  The {!push}/{!pop} convenience wrappers register
    and cache a handle per domain automatically.

    Handles have a full lifecycle, closing the paper's §3.6 "thread
    failure" problem (a departed thread's handle otherwise pins
    reclamation forever and bloats the helping ring):

    - {b register}: {!register} first recycles a retired ring slot if
      one is available, so the ring length is bounded by the peak
      number of concurrently registered domains — not by the total
      number of domains ever seen.
    - {b operate}: {!enqueue}/{!dequeue} with an explicit handle, or
      {!push}/{!pop} with the cached per-domain handle.  The implicit
      path takes no lock: the cache is a domain-local slot.
    - {b retire}: {!retire} declares the owner gone; the handle stops
      blocking reclamation, drops out of the helping rotation, and its
      ring slot becomes recyclable.  Handles cached by {!push}/{!pop}
      are retired automatically when their domain terminates (a
      [Domain.at_exit] hook); explicit handles should be retired by
      whoever joins the domain. *)

type 'a t
type 'a handle

exception Would_block
(** Raised by {!enqueue_exn}/{!enq_batch_exn} when a bounded queue's
    admission check rejects the operation.  The same exception value
    across every instantiation of the algorithm (this module,
    [Wfqueue_obs], [Wfqueue_inject], the simsched build) and the
    sharded router, so one handler covers any composition. *)

val create :
  ?patience:int ->
  ?segment_shift:int ->
  ?max_garbage:int ->
  ?reclamation:bool ->
  ?segment_cap:int ->
  unit ->
  'a t
(** Creates an empty queue.

    [patience] is the number of extra fast-path attempts before an
    operation switches to the wait-free slow path; the paper evaluates
    [10] (the default, "WF-10") and [0] ("WF-0").

    [segment_shift] sizes segments at [2^segment_shift] cells
    (default 10, the paper's [N = 2^10]).

    [max_garbage] is the number of retired segments allowed to
    accumulate before a dequeuer runs the cleanup protocol
    (default 16).

    [reclamation] (default true) can disable segment unlinking
    entirely, for the reclamation ablation benchmark.

    [segment_cap] switches the queue into {e bounded-memory mode}
    (DESIGN.md §11): the total number of segments ever materialized —
    live in the chain, pooled in the freelist, or privately held by an
    appender — never exceeds the cap.  Segment acquisition then draws
    on a budget-guarded freelist: when the budget is spent and the
    freelist is empty, the acquiring operation waits (backpressure)
    for a cleanup to recycle a segment.  The cap is a {b hard} memory
    bound; admission ({!try_enqueue}/{!enqueue_exn}) is an {e
    advisory} index-distance check layered above it so producers can
    observe fullness without blocking.  Requires
    [segment_cap >= max_garbage + 4] (cleanup must always be able to
    reach its threshold with segments to spare) and [reclamation =
    true] (recycling is what refills the freelist);
    @raise Invalid_argument otherwise.  Default: unbounded. *)

val register : 'a t -> 'a handle
(** A handle for the calling domain: a retired ring slot is recycled
    when one is available (its request and pointer state reset under
    the cleanup token), otherwise a fresh slot is linked into the
    helping ring.  Ring length is therefore bounded by the peak number
    of concurrently live handles.  Cheap enough to call once per
    domain; do not call per operation. *)

val enqueue : 'a t -> 'a handle -> 'a -> unit
(** Wait-free enqueue (Listing 3).  In bounded mode this always
    succeeds, blocking {e at the admission line} — before any ticket
    or hazard pointer is taken — until dequeues make room
    (backpressure, not failure).  Waiting up front keeps a blocked
    producer from pinning the oldest segment against reclamation,
    which is what wedges designs that park inside segment
    acquisition.  Progress requires consumers: with no dequeuer a
    full bounded queue blocks indefinitely (that is the contract —
    use {!try_enqueue} to poll instead). *)

val try_enqueue : 'a t -> 'a handle -> 'a -> bool
(** Admission-checked enqueue: [false] if a bounded queue looks full
    ([tail - head >= enq_capacity]), otherwise {!enqueue} and [true].
    The check is {e admission-first}: rejection happens before any
    ticket is taken, so a [false] has zero protocol footprint (no
    poisoned cell, no request).  Advisory under concurrency — racing
    producers can each pass the check and overshoot by their count —
    but the segment cap itself stays hard (overshooting producers
    block in acquisition).  Unbounded queues always admit. *)

val enqueue_exn : 'a t -> 'a handle -> 'a -> unit
(** {!try_enqueue} raising {!Would_block} instead of returning
    [false]. *)

val dequeue : 'a t -> 'a handle -> 'a option
(** Wait-free dequeue (Listing 4); [None] means the queue was
    observed empty (the paper's EMPTY).  Bounded queues take a
    pre-FAA empty check (EMPTY without burning a head ticket):
    the paper's unconditional ticket is harmless with unbounded
    memory, but under a segment cap an idle poller's tickets would
    drag the head through segments that must be materialized from
    the same budget producers need. *)

val dequeue_or : 'a t -> 'a handle -> 'a -> 'a
(** [dequeue_or q h default] is {!dequeue} returning [default] when
    the queue is observed empty, without building the [Some] box —
    the allocation-free dequeue for callers with an out-of-band
    default (see DESIGN.md, allocation discipline).  The caller must
    pick a [default] it can distinguish from a queued value (or not
    care, e.g. polling loops counting successes via a sentinel). *)

val enq_batch : 'a t -> 'a handle -> 'a array -> unit
(** Wait-free batch enqueue: reserves [Array.length vs] consecutive
    cells with a {e single} FAA on the tail index — the amortization
    the paper's one-FAA-per-op hot path suggests — then deposits each
    value with the fast-path CAS, falling back to the per-cell
    slow path ({!Internal.enq_slow}) for any cell poisoned in the
    meantime.  Wait-free cell by cell for the same reason single
    enqueues are.  The batch is {b not atomic}: each value is a
    separate enqueue whose linearization point falls somewhere in the
    call's interval, in cell (= FIFO) order on the uncontended path.
    A zero-length batch is a no-op (no FAA).  In bounded mode the
    batch waits at the admission line like {!enqueue}, for
    [min k enq_capacity] cells of room — a batch wider than the line
    could never be admitted whole, so the allocation budget absorbs
    the excess. *)

val try_enq_batch : 'a t -> 'a handle -> 'a array -> bool
(** Admission-checked {!enq_batch}: the whole batch is admitted or
    rejected as a unit ([tail - head + k <= enq_capacity]), with the
    same advisory-admission/hard-cap contract as {!try_enqueue}. *)

val enq_batch_exn : 'a t -> 'a handle -> 'a array -> unit
(** {!try_enq_batch} raising {!Would_block} on rejection. *)

val deq_batch : 'a t -> 'a handle -> int -> 'a option array
(** Wait-free batch dequeue: reserves [k] consecutive cells with one
    FAA on the head index and resolves each like a fast-path dequeue
    (help the enqueue, claim the value), falling back to the per-cell
    slow path on interference.  Returns exactly [k] slots in cell
    order; [None] slots are EMPTY observations (the queue had fewer
    than [k] values when the tickets were taken — batched consumers
    should size [k] from {!approx_length} to avoid burning empty
    tickets).  Not atomic, same contract as {!enq_batch}.  [k <= 0]
    returns [[||]] without consuming tickets. *)

val deq_batch_into : 'a t -> 'a handle -> 'a array -> default:'a -> int
(** Allocation-free {!deq_batch}: reserves [Array.length out]
    consecutive cells with one FAA and writes the dequeued values bare
    into [out.(0) .. out.(n-1)] in cell order (compacted — EMPTY
    observations are skipped, not represented), fills [out.(n) ..] with
    [default], and returns [n].  No [Some] box per cell and no result
    array: zero minor words per call in the production build
    (Alloc_bench row "wf-10-deq-batch-into").  Same non-atomicity and
    ticket-burning contract as {!deq_batch}; [default] needs no
    distinguishability property because the count [n] is the
    authority.  A zero-length [out] is a no-op returning [0]. *)

val push : 'a t -> 'a -> unit
(** {!enqueue} with a per-domain handle managed internally.  The hot
    path is lock-free: a domain-local cache lookup plus one atomic
    read (no [Mutex], no shared table).  The first call from a domain
    registers a handle (recycling a retired slot when possible) and
    installs a [Domain.at_exit] hook that retires it when the domain
    terminates, so short-lived domains leak neither ring slots nor
    reclamation progress. *)

val pop : 'a t -> 'a option
(** {!dequeue} with a per-domain handle managed internally; same
    lifecycle as {!push}. *)

val domain_handle : 'a t -> 'a handle
(** The calling domain's cached handle (the one {!push}/{!pop} use),
    registering one on first use — same lifecycle as {!push}.  For
    callers that mix the implicit API with operations needing an
    explicit handle (e.g. the pool's admission protocol). *)

val approx_length : 'a t -> int
(** Tail index minus head index, clamped to 0: counts enqueued values
    not yet claimed by dequeuers.  Exact when quiescent. *)

val patience : 'a t -> int

(** {1 Introspection}

    Used by the Table 2 breakdown, the reclamation tests, and the
    ablation benchmarks. *)

val stats : 'a t -> Op_stats.t
(** Sum of all handles' path counters.  Consistent when quiescent. *)

val reset_stats : 'a t -> unit

val handle_stats : 'a handle -> Op_stats.t
(** The live counters of one handle (owner-written; read when
    quiescent). *)

val reclaimed_segments : 'a t -> int
(** Segments unlinked by cleanup since creation. *)

val cleanup_runs : 'a t -> int
(** Cleanup attempts that won the [H'] token and actually unlinked
    garbage (the paper's Listing 5 body), as opposed to bailing on the
    [max_garbage] threshold or the token CAS. *)

val allocated_segments : 'a t -> int
(** Segments allocated fresh (not served from the recycling pool). *)

val wasted_segments : 'a t -> int
(** Segments that lost the append race in [find_cell] (the paper
    frees those immediately; here they return to the pool). *)

val recycled_segments : 'a t -> int
(** Segments served from the recycling pool instead of fresh
    allocation. *)

val pooled_segments : 'a t -> int
(** Segments currently sitting in the pool. *)

val live_segments : 'a t -> int
(** Length of the current segment list (walks it; O(live)). *)

val segment_cap : 'a t -> int option
(** The bounded-mode segment cap, or [None] when unbounded. *)

val enq_capacity : 'a t -> int option
(** The admission threshold in cells
    ([(cap - max_garbage - 2) * 2^segment_shift]), or [None] when
    unbounded.  {!try_enqueue} rejects once [tail - head] would
    exceed this. *)

val cap_hits : 'a t -> int
(** Bounded-mode pressure events: blocking enqueues that had to wait
    at the admission line, plus segment acquisitions that found the
    budget spent and the freelist empty and had to wait for a
    recycle.  Not incremented by [try_*] admission rejections (those
    return immediately); always [0] when unbounded. *)

val oldest_segment_id : 'a t -> int
(** The paper's [I]: id of the oldest live segment, or [-1] while a
    cleanup is in progress. *)

val ring_handles : 'a t -> int
(** Number of slots in the helping ring (live + retired-awaiting-
    recycling).  Bounded by the peak number of concurrently registered
    domains, not by the total number of registrations.  Walks the
    ring; consistent when quiescent. *)

val live_handles : 'a t -> int
(** Ring slots whose handle is not retired. *)

val free_handle_slots : 'a t -> int
(** Retired slots currently waiting to be recycled by {!register}. *)

val snapshot : 'a t -> Obs.Snapshot.t
(** One coherent-when-quiescent telemetry snapshot: aggregated op
    counters (including the retired-handle accumulator), segment and
    handle gauges, and the queue's patience.  Concurrent readers get a
    racy-but-safe view — every field is a monotonic counter or a
    walked-list gauge. *)

val probe_enabled : bool
(** Whether this instantiation records the event tier of
    {!Obs.Counters} (CAS failures, cells skipped, helping events).
    [false] here; [true] in [Wfqueue_obs]. *)

val injector_enabled : bool
(** Whether this instantiation compiles in the {!Inject} fault-
    injection points.  [false] here (the production build pays
    nothing); [true] in [Wfqueue_inject]. *)

val retire : 'a t -> 'a handle -> unit
(** Declare the handle's owning thread gone (dead or deregistered):
    clears its hazard pointer so reclamation can proceed (the paper's
    §3.6 "thread failure" leak), removes it from the helping rotation
    and the cleanup scan, and donates its ring slot for recycling by a
    future {!register}.  Idempotent — safe to call both explicitly and
    through the automatic domain-termination hook of {!push}/{!pop}.

    {b Unsound} if the owner is still inside an operation on [q] —
    the cleared hazard pointer would allow its working segments to be
    recycled under it.  Call only after the domain has terminated
    (e.g. after [Domain.join]), from the owning domain itself after
    its last operation, or when an external failure detector says the
    owner is gone.  Retiring every handle is allowed; a retired handle
    must not be used again by its old owner. *)

(** {1 Whitebox access}

    On a single-core host, preemption essentially never lands between
    a fast path's FAA and its CAS, so the slow paths are unreachable
    through the public API alone.  [Internal] exposes the protocol's
    intermediate steps so the test suite can drive the slow paths and
    the helping protocol deterministically: steal a cell the way a
    contending dequeuer would, publish a request without self-helping,
    then observe helpers complete it.  Not for production use. *)
module Internal : sig
  type 'a cell

  val faa_tail : 'a t -> int
  (** Fetch-and-add 1 on the tail index T, as a fast-path enqueue
      does; returns the acquired cell index. *)

  val faa_head : 'a t -> int
  (** Fetch-and-add 1 on the head index H. *)

  val tail_index : 'a t -> int
  val head_index : 'a t -> int

  val cell_of : 'a t -> 'a handle -> int -> 'a cell
  (** Locate cell [i], advancing the handle's tail pointer. *)

  val poison_cell : 'a cell -> bool
  (** CAS the cell's value from ⊥ to ⊤ — what a dequeuer does to mark
      a cell unusable.  True if this call performed the transition. *)

  val claim_cell_deq : 'a cell -> bool
  (** CAS the cell's deq field from ⊥d to ⊤d — how a fast-path
      dequeue claims a secured value. *)

  val cell_value : 'a cell -> 'a option
  (** The cell's value if one has been deposited. *)

  val enq_slow : 'a t -> 'a handle -> 'a -> int -> unit
  (** The slow-path enqueue, with [cell_id] playing the failed
      fast-path index (the request id). *)

  val deq_slow : 'a t -> 'a handle -> int -> 'a option
  (** The slow-path dequeue with request id [cell_id]. *)

  val publish_enq_request : 'a handle -> 'a -> int -> unit
  (** Publish a pending enqueue request without performing the
      slow-path loop, so that helpers must complete it. *)

  val enq_request_pending : 'a handle -> bool
  val enq_request_claimed_cell : 'a handle -> int option
  (** The cell index the request was claimed for, once completed. *)

  val publish_deq_request : 'a handle -> int -> unit
  val deq_request_pending : 'a handle -> bool

  val help_enq : 'a t -> 'a handle -> 'a cell -> int -> [ `Value of 'a | `Top | `Empty ]
  (** What a dequeuer runs on every cell it visits (Listing 3). *)

  val help_deq : 'a t -> helper:'a handle -> helpee:'a handle -> unit
  (** Complete the helpee's published dequeue request (Listing 4). *)

  val deq_request_result : 'a t -> 'a handle -> 'a option
  (** Read the result cell of a completed dequeue request, advancing
      H as [deq_slow] would. *)

  val cleanup : 'a t -> 'a handle -> unit
  (** Run the reclamation protocol (Listing 5) unconditionally of the
      [max_garbage] threshold check failing due to staleness. *)

  val pool_limit : 'a t -> int
  (** Capacity of the segment recycling pool.  In bounded mode this
      equals the segment cap, so a recycled segment is never dropped
      to the GC (dropping would leak budget: the cap counts segments
      ever created, and a dropped segment's budget is never
      returned). *)

  val seg_budget : 'a t -> int
  (** Remaining fresh-allocation budget (bounded mode: starts at
      [cap - 1], the initial segment having consumed one).  May read
      transiently negative under concurrent acquires (losers give
      their reservation back).  [max_int]-ish when unbounded. *)

  val pool_length : 'a t -> int
  (** Actual length of the pool's free list (walks it).  The
      size-accounting invariant: [pooled_segments] never exceeds
      [pool_limit] and equals [pool_length] at quiescence. *)

  val pool_push_fresh : 'a t -> unit
  (** Push a fresh dummy segment into the pool, as a losing
      [find_cell] extender or a cleanup would — for hammering the
      pool's admission protocol from many domains. *)

  val pool_take : 'a t -> bool
  (** Pop and discard one pooled segment; [false] when empty. *)

  val set_hazard : 'a t -> 'a handle -> [ `Head | `Tail | `Null ] -> unit
  (** Manipulate the handle's hazard pointer as the operation
      prologues/epilogues do. *)

  val set_trace : (string -> unit) option -> unit
  (** Install (or clear) a protocol trace hook: every key transition
      (FAA ticket, reservation, claim, commit, poison, announce,
      retire, recycle) reports a line.  Debugging/model-checking
      only. *)

  val cell_debug : 'a cell -> 'a handle -> string
  (** One-line description of a cell's three fields; request fields
      are identified relative to the given handle.  Debugging only. *)

  val debug_dump : 'a t -> Format.formatter -> unit
  (** Racy snapshot of indices, segment ids and per-handle request
      states, for diagnosing stuck executions.  Values read without
      synchronization; only for debugging output. *)
end
