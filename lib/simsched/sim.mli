(** Deterministic-schedule model checking for the queue algorithm.

    The algorithm ([Wfq.Wfqueue_algo]) is a functor over its atomic
    primitives.  {!Atomic_shim} implements those primitives with plain
    single-domain cells whose every access performs a [Yield] effect;
    {!run} executes a set of fibers under a handler that captures each
    fiber at every yield and picks the next fiber to run with a seeded
    PRNG.  One [run] therefore explores one precise interleaving of
    the algorithm's atomic operations, reproducibly; sweeping seeds
    explores the schedule space far more densely than hardware
    preemption ever could, at the granularity where linearizability
    bugs live.

    {!Queue} is the queue algorithm instantiated on the shim: the
    exact algorithm text that ships in [Wfq.Wfqueue], model-checked.

    Yields performed outside {!run} are no-ops, so building queues and
    registering handles may also happen outside the scheduler. *)

module Atomic_shim : Wfq.Atomic_prims.S

module Queue : module type of Wfq.Wfqueue_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)

module Shard_router : module type of Shard.Router (Atomic_shim) (Queue)
(** The sharded router over the simulated queue: every routing FAA
    and every shard-internal access is a scheduler preemption point,
    so the d-relaxation checker sees real adversarial interleavings
    of the scan/steal/rebalance races. *)

module Ms_queue : module type of Baselines.Msqueue_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
(** The MS-Queue baseline on the same simulated atomics, for
    differential schedule testing. *)

module Lcrq : module type of Baselines.Lcrq_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
(** LCRQ (rings + list) on simulated atomics: the close/fixState
    logic is the subtlest part of any baseline, so it gets schedule
    exploration too. *)

module Spsc : module type of Topology.Spsc_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
                                                     (Inject.Enabled)
(** The specialized SPSC variant on simulated atomics (probe and
    injector compiled in), for schedule exploration of the cell
    handshake and segment growth under its topology contract. *)

module Mpsc : module type of Topology.Mpsc_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
                                                     (Inject.Enabled)
(** The Jiffy-style MPSC variant on simulated atomics: the hole
    lifecycle (FAA, stall, late deposit, late take) is where its
    FIFO argument lives, so it gets exploration and hole storms. *)

module Spmc : module type of Topology.Spmc_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
                                                     (Inject.Enabled)
(** The SPMC variant on simulated atomics: the ticket-vs-deposit
    poison race is its one CAS boundary. *)

module Adaptive_queue :
    module type of Topology.Adaptive_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
                                               (Inject.Enabled) (Queue)
(** The topology-adaptive queue over the simulated general queue:
    the quiesce/drain/commit switch protocol under controlled
    interleavings — the degrade-transition conservation suite runs
    here. *)

module Adaptive_router : module type of Shard.Router (Atomic_shim) (Adaptive_queue)
(** The sharded router over adaptive shards, all on simulated
    atomics. *)

module Sched_core :
    module type of Sched.Sched_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)
(** The scheduler's lock-free core — promises and the Chase–Lev
    work-stealing deque — on simulated atomics: the steal-vs-pop and
    resolve-vs-await races explored by test/test_sched.ml run here. *)

type stats = {
  scheduling_decisions : int;
  max_steps_hit : bool; (* true when the step limit stopped the run *)
}

exception Fiber_failure of int * exn
(** Fiber index and the exception it raised. *)

val run : ?seed:int64 -> ?max_steps:int -> (unit -> unit) array -> stats
(** [run ~seed fibers] drives every fiber to completion under one
    random schedule.  [max_steps] (default 10_000_000) bounds total
    scheduling decisions: hitting it means a fiber did not terminate —
    for a wait-free algorithm, a livelock bug — and is reported in the
    result rather than raised, so tests can assert on it.
    Deterministic: equal seeds and fibers yield equal schedules. *)

val now : unit -> int
(** The current scheduling step, usable as a logical timestamp from
    inside fibers (monotone within one run; reset to 0 by {!run}). *)

val yield : unit -> unit
(** One scheduler preemption point; no-op outside {!run}.  Lets code
    that is not built on {!Atomic_shim} (e.g. an [Inject.set_park]
    implementation, so a parked fiber is descheduled rather than
    busy) participate in the simulated schedule. *)

val current_fiber : unit -> int
(** Index (into {!run}'s fiber array) of the fiber currently
    scheduled; [-1] outside a run.  Exact when called from a fiber's
    own steps — which is where fault-injection controllers run — so a
    plan can say "fiber [k] is the victim". *)

type exploration = {
  schedules : int;
  exhausted : bool; (* the whole bounded space was covered *)
  truncated_runs : int; (* runs that hit max_steps *)
}

val explore :
  ?max_schedules:int ->
  ?max_steps:int ->
  ?preemptions:int ->
  make_fibers:(unit -> (unit -> unit) array) ->
  check:(unit -> unit) ->
  unit ->
  exploration
(** Systematic depth-first enumeration of schedules with at most
    [preemptions] (default 2) involuntary context switches — the
    standard bounding under which most concurrency bugs have small
    witnesses (both protocol bugs this harness found need ≤ 3).
    [make_fibers] must build fresh state for each schedule; [check]
    runs after each schedule and should raise (e.g. an Alcotest
    failure) on a violated invariant.  Stops after [max_schedules]
    (default 100_000) or when the bounded space is exhausted. *)
