type _ Effect.t += Yield : unit Effect.t

let clock = ref 0
let now () = !clock

(* Yield if a scheduler is installed; no-op otherwise so that setup
   code can run queue operations outside [run]. *)
let yield () = try Effect.perform Yield with Effect.Unhandled _ -> ()

(* Index of the fiber currently scheduled by [exec], -1 outside a run.
   Exposed so fault-injection controllers can target "fiber k is the
   victim" — the injector's decision function runs inside the victim's
   own steps, where this is exact. *)
let running = ref (-1)
let current_fiber () = !running

module Atomic_shim : Wfq.Atomic_prims.S = struct
  (* Single-domain cells: the scheduler interleaves fibers only at
     yields, so plain mutation between yields is atomic by
     construction. *)
  type 'a t = { mutable v : 'a }

  let make v = { v }

  let get r =
    yield ();
    r.v

  let set r x =
    yield ();
    r.v <- x

  let compare_and_set r expected desired =
    yield ();
    if r.v == expected then begin
      r.v <- desired;
      true
    end
    else false

  let fetch_and_add r n =
    yield ();
    let old = r.v in
    r.v <- old + n;
    old

  let cpu_relax () = yield ()

  (* Padding is a physical-layout concern with no semantic content, so
     the simulated atomics implement it as the identity: the text the
     model checker explores is exactly the text that ships padded. *)
  let make_contended = make

  module Counters = struct
    type nonrec t = int t array

    let make ~len ~init =
      if len < 0 then invalid_arg "Sim.Atomic_shim.Counters.make: negative length";
      Array.init len (fun _ -> { v = init })

    let length = Array.length

    (* Every access yields, exactly like the scalar primitives, so a
       counter access is a preemption point the scheduler controls. *)
    let get c i =
      yield ();
      c.(i).v

    let set c i x =
      yield ();
      c.(i).v <- x

    let fetch_and_add c i n =
      yield ();
      let old = c.(i).v in
      c.(i).v <- old + n;
      old

    let compare_and_set c i expected desired =
      yield ();
      if c.(i).v = expected then begin
        c.(i).v <- desired;
        true
      end
      else false
  end
end

module Queue = Wfq.Wfqueue_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)
module Shard_router = Shard.Router (Atomic_shim) (Queue)
module Ms_queue = Baselines.Msqueue_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
module Lcrq = Baselines.Lcrq_algo.Make (Atomic_shim) (Obs.Probe.Enabled)
module Spsc = Topology.Spsc_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)
module Mpsc = Topology.Mpsc_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)
module Spmc = Topology.Spmc_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)

module Adaptive_queue =
  Topology.Adaptive_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled) (Queue)

module Adaptive_router = Shard.Router (Atomic_shim) (Adaptive_queue)
module Sched_core = Sched.Sched_algo.Make (Atomic_shim) (Obs.Probe.Enabled) (Inject.Enabled)

type stats = { scheduling_decisions : int; max_steps_hit : bool }

exception Fiber_failure of int * exn

type fiber_state =
  | Ready of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

(* Core loop shared by the random driver and the systematic explorer:
   [pick ~last candidates] chooses the next fiber (an absolute index
   into [fibers]) given the previously scheduled fiber and the live
   set. *)
let exec ~max_steps ~(pick : last:int option -> candidates:int list -> int) fibers =
  clock := 0;
  let states = Array.map (fun f -> Ready f) fibers in
  let live = ref (Array.length fibers) in
  let steps = ref 0 in
  let current = ref (-1) in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          states.(!current) <- Finished;
          decr live);
      exnc = (fun e -> raise (Fiber_failure (!current, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                states.(!current) <- Paused k)
          | _ -> None);
    }
  in
  let candidates () =
    let cs = ref [] in
    for i = Array.length states - 1 downto 0 do
      match states.(i) with Finished -> () | Ready _ | Paused _ -> cs := i :: !cs
    done;
    !cs
  in
  let last = ref None in
  let truncated = ref false in
  (* reset [running] even when a fiber's exception aborts the run *)
  Fun.protect ~finally:(fun () -> running := -1)
  @@ fun () ->
  while !live > 0 && not !truncated do
    if !steps >= max_steps then truncated := true
    else begin
      incr steps;
      incr clock;
      let i = pick ~last:!last ~candidates:(candidates ()) in
      last := Some i;
      current := i;
      running := i;
      match states.(i) with
      | Ready f ->
        (* if it yields, the handler stores the continuation; if it
           returns, retc marks it finished *)
        Effect.Deep.match_with f () handler
      | Paused k ->
        states.(i) <- Ready (fun () -> assert false);
        (* placeholder overwritten by the handler on next capture *)
        Effect.Deep.continue k ()
      | Finished -> assert false
    end
  done;
  { scheduling_decisions = !steps; max_steps_hit = !truncated }

let run ?(seed = 1L) ?(max_steps = 10_000_000) fibers =
  let rng = Primitives.Splitmix64.create seed in
  let pick ~last:_ ~candidates =
    List.nth candidates (Primitives.Splitmix64.next_int rng (List.length candidates))
  in
  exec ~max_steps ~pick fibers

type exploration = {
  schedules : int;
  exhausted : bool; (* the whole bounded space was covered *)
  truncated_runs : int; (* runs that hit max_steps *)
}

let explore ?(max_schedules = 100_000) ?(max_steps = 100_000) ?(preemptions = 2) ~make_fibers
    ~check () =
  (* Depth-first enumeration of preemption-bounded schedules.  A
     scheduling step is a choice point only when preempting is both
     possible (budget left) and meaningful (another fiber is live);
     option 0 always means "stay on the current fiber" when it is
     live, so the zero-prefix path is the non-preemptive schedule.
     Each schedule is replayed from scratch (fresh fibers), which the
     deterministic scheduler makes exact. *)
  let prefix = ref [||] in
  let schedules = ref 0 in
  let truncated_runs = ref 0 in
  let exhausted = ref false in
  let continue_exploring = ref true in
  while !continue_exploring && !schedules < max_schedules do
    incr schedules;
    (* replay with forced choices from [prefix], recording arities *)
    let taken = ref [] (* (chosen_option, arity) in reverse step order *) in
    let step = ref 0 in
    let budget = ref preemptions in
    let pick ~last ~candidates =
      let options =
        match last with
        | Some l when List.mem l candidates ->
          if !budget > 0 then l :: List.filter (fun c -> c <> l) candidates else [ l ]
        | Some _ | None -> candidates
      in
      let arity = List.length options in
      let choice =
        if !step < Array.length !prefix then (!prefix).(!step)
        else 0
      in
      let choice = if choice >= arity then arity - 1 else choice in
      taken := (choice, arity) :: !taken;
      incr step;
      let fiber = List.nth options choice in
      (match last with
      | Some l when List.mem l candidates && fiber <> l -> decr budget
      | Some _ | None -> ());
      fiber
    in
    let stats = exec ~max_steps ~pick (make_fibers ()) in
    if stats.max_steps_hit then incr truncated_runs;
    check ();
    (* backtrack: bump the deepest choice with an untried option *)
    let arr = Array.of_list (List.rev !taken) in
    let rec backtrack k =
      if k < 0 then begin
        exhausted := true;
        continue_exploring := false
      end
      else begin
        let chosen, arity = arr.(k) in
        if chosen + 1 < arity then
          prefix :=
            Array.init (k + 1) (fun i -> if i = k then chosen + 1 else fst arr.(i))
        else backtrack (k - 1)
      end
    in
    backtrack (Array.length arr - 1)
  done;
  { schedules = !schedules; exhausted = !exhausted; truncated_runs = !truncated_runs }
