(* Instrumented MS-Queue: hardware atomics with the probe enabled, so
   CAS-retry counts are recorded.  Used by the telemetry harness for
   side-by-side contention tables; [Msqueue] (probe disabled) is the
   one benchmarked. *)
include Msqueue_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Enabled)
