(* Nikolaev's Scalable Circular Queue (SCQ, arXiv:1908.04511) as a
   functor over atomic primitives, in the indirect ("scqd")
   configuration: two index rings plus a data plane.

   Each ring holds 2n cycle-tagged entries for a capacity of n.  An
   entry packs (cycle, isSafe, index) into one OCaml int:

     bits [0 .. o]   index   (o+1 bits; ⊥ = all-ones = 2n-1)
     bit  [o+1]      isSafe
     bits [o+2 ..]   cycle   (signed; init -1 so cycle 0 can claim)

   Enqueue FAAs the tail ticket and claims the slot iff its entry is
   from an older cycle, empty (⊥) and safe (or provably not ahead of
   head); dequeue FAAs head and consumes on a cycle match, otherwise
   stamps the slot (advance the empty marker / mark unsafe) and
   consults the threshold: 3n-1 attempts after the last successful
   enqueue before EMPTY is declared.  This is the paper's livelock
   defence — the threshold is reset by every enqueue, so dequeuers
   chasing a moving tail give up in bounded steps.

   The indirect configuration keeps the rings int-only so entries stay
   single-word CAS-able: [fq] starts full with the free indices
   0..n-1, [aq] starts empty; enqueue takes a free index from [fq],
   writes the payload into [data], publishes the index through [aq];
   dequeue reverses.  At most n indices circulate, so neither ring
   ever fills — queue-full shows up as [fq] running EMPTY.

   The paper's cache_remap (spreading consecutive tickets across
   lines) is omitted: OCaml atomics are boxed, so entry cells are
   already separate heap blocks and the remap would only permute
   pointers.  The probe argument mirrors LCRQ's. *)

module Make (A : Primitives.Atomic_prims.S) (P : Obs.Probe.S) = struct
  module Ring = struct
    type t = {
      order : int; (* capacity n = 2^order; the ring has 2n entries *)
      entries : int A.t array;
      head : int A.t;
      tail : int A.t;
      threshold : int A.t;
    }

    let idx_bits t = t.order + 1
    let n_entries t = 2 lsl t.order
    let bot t = n_entries t - 1 (* ⊥: all-ones in the index field *)
    let eindex t e = e land bot t
    let esafe t e = e land (1 lsl idx_bits t) <> 0
    let ecycle t e = e asr (idx_bits t + 1)

    let pack t ~cycle ~safe ~index =
      (cycle lsl (idx_bits t + 1)) lor ((if safe then 1 else 0) lsl idx_bits t) lor index

    let slot t ticket = ticket land (n_entries t - 1)
    let cycle_of t ticket = ticket asr idx_bits t
    let max_threshold t = 3 * (1 lsl t.order) - 1

    (* All-ones = (cycle -1, safe, ⊥): claimable by cycle-0 tickets. *)
    let unused = -1

    let make_empty order =
      {
        order;
        entries = Array.init (2 lsl order) (fun _ -> A.make unused);
        head = A.make_contended 0;
        tail = A.make_contended 0;
        threshold = A.make_contended (-1);
      }

    let make_full order =
      let n = 1 lsl order in
      let t =
        {
          order;
          entries =
            Array.init (2 * n) (fun i ->
                if i < n then
                  A.make ((0 lsl (order + 2)) lor (1 lsl (order + 1)) lor i)
                else A.make unused);
          head = A.make_contended 0;
          tail = A.make_contended n;
          threshold = A.make_contended (3 * n - 1);
        }
      in
      t

    (* Never-full enqueue: with at most n indices circulating between
       the two rings, some entry among the 2n is always claimable, so
       the ticket loop terminates without a FULL case.  Top-level
       mutual recursion over explicit parameters — a local [let rec]
       pair would box closures on every operation, against the §9
       allocation discipline (and the scq alloc-gate row). *)
    let rec enq_next t index =
      let ticket = A.fetch_and_add t.tail 1 in
      enq_claim t index ticket (slot t ticket)

    and enq_claim t index ticket j =
      let cell = t.entries.(j) in
      let e = A.get cell in
      let cyc = cycle_of t ticket in
      if ecycle t e < cyc && eindex t e = bot t && (esafe t e || A.get t.head <= ticket) then begin
        if A.compare_and_set cell e (pack t ~cycle:cyc ~safe:true ~index) then begin
          if A.get t.threshold <> max_threshold t then A.set t.threshold (max_threshold t)
        end
        else enq_claim t index ticket j (* entry moved under us: re-evaluate *)
      end
      else enq_next t index

    let enqueue t index = enq_next t index

    let rec catchup t tail head =
      if not (A.compare_and_set t.tail tail head) then begin
        let head = A.get t.head in
        let tail = A.get t.tail in
        if tail < head then catchup t tail head
      end

    (* Dequeue body, same top-level-recursion shape as the enqueue
       side (no per-call closures).  Returns a free/filled index, or
       -1 for EMPTY. *)
    let rec deq_attempt t =
      let ticket = A.fetch_and_add t.head 1 in
      deq_load t ticket (slot t ticket) (cycle_of t ticket)

    and deq_load t ticket j cyc =
      let cell = t.entries.(j) in
      let e = A.get cell in
      if ecycle t e = cyc then deq_consume t cell e
      else if ecycle t e < cyc then begin
        (* Stamp the stale entry: an empty slot has its cycle
           advanced so a straggling old-cycle enqueue cannot orphan
           a value here; an occupied one is marked unsafe so old-
           cycle enqueues keep away until head provably passed. *)
        let nw =
          if eindex t e = bot t then pack t ~cycle:cyc ~safe:(esafe t e) ~index:(bot t)
          else e land lnot (1 lsl idx_bits t)
        in
        if A.compare_and_set cell e nw then deq_empty_check t ticket
        else deq_load t ticket j cyc
      end
      else deq_empty_check t ticket

    and deq_consume t cell e =
      (* Atomic-OR of ⊥ into the index field, as a CAS loop; only
         an index consume can touch a current-cycle entry, and our
         FAA ticket is unique, so this effectively never retries. *)
      if A.compare_and_set cell e (e lor bot t) then eindex t e
      else deq_consume t cell (A.get cell)

    and deq_empty_check t ticket =
      let tail = A.get t.tail in
      if tail <= ticket + 1 then begin
        (* Head overtook tail: drag tail forward so enqueuers do
           not burn tickets on slots head already invalidated. *)
        catchup t tail (ticket + 1);
        ignore (A.fetch_and_add t.threshold (-1));
        -1
      end
      else if A.fetch_and_add t.threshold (-1) <= 0 then -1
      else deq_attempt t

    let dequeue t =
      if A.get t.threshold < 0 then -1 (* empty fast path: no FAA *)
      else deq_attempt t
  end

  type 'a t = {
    fq : Ring.t; (* free data indices; starts full with 0..n-1 *)
    aq : Ring.t; (* allocated (filled) indices; starts empty *)
    data : Obj.t A.t array; (* the payload plane, n slots *)
    capacity : int;
  }

  type 'a handle = { stats : Obs.Counters.t }

  (* Private block: never physically equal to a stored payload. *)
  let empty_w : Obj.t = Obj.repr (ref 0)

  let create ?(order = 12) () =
    if order < 1 || order > 20 then invalid_arg "Scq.create: order out of range";
    let n = 1 lsl order in
    {
      fq = Ring.make_full order;
      aq = Ring.make_empty order;
      data = Array.init n (fun _ -> A.make empty_w);
      capacity = n;
    }

  let capacity t = t.capacity
  let register _t = { stats = Obs.Counters.create_padded () }
  let handle_stats h = h.stats

  let enq_index t v i =
    A.set t.data.(i) (Obj.repr v);
    Ring.enqueue t.aq i

  (* Bounded-queue surface: reject instead of spinning when no free
     index exists (the SCQ analogue of the WF queue's [try_enqueue]). *)
  let try_enqueue t h v =
    match Ring.dequeue t.fq with
    | -1 ->
      if P.enabled then h.stats.enq_cas_failures <- h.stats.enq_cas_failures + 1;
      false
    | i ->
      enq_index t v i;
      if P.enabled then h.stats.fast_enqueues <- h.stats.fast_enqueues + 1;
      true

  (* Infallible enqueue for the harness: spin until a consumer frees
     an index.  [fq] EMPTY is the queue-full condition.  Top-level
     spin (a local [let rec] would box a closure per enqueue). *)
  let rec free_index (fq : Ring.t) =
    match Ring.dequeue fq with
    | -1 ->
      A.cpu_relax ();
      free_index fq
    | i -> i

  let enqueue t h v =
    enq_index t v (free_index t.fq);
    if P.enabled then h.stats.fast_enqueues <- h.stats.fast_enqueues + 1

  let dequeue_or t h default =
    match Ring.dequeue t.aq with
    | -1 ->
      if P.enabled then h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
      default
    | i ->
      let w = A.get t.data.(i) in
      A.set t.data.(i) empty_w; (* GC hygiene before the index recirculates *)
      Ring.enqueue t.fq i;
      if P.enabled then h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
      (Obj.obj w : 'a)

  let dequeue t h =
    match Ring.dequeue t.aq with
    | -1 ->
      if P.enabled then h.stats.empty_dequeues <- h.stats.empty_dequeues + 1;
      None
    | i ->
      let w = A.get t.data.(i) in
      A.set t.data.(i) empty_w;
      Ring.enqueue t.fq i;
      if P.enabled then h.stats.fast_dequeues <- h.stats.fast_dequeues + 1;
      Some (Obj.obj w : 'a)

  (* Occupancy gauge from the aq tickets; approximate under races. *)
  let approx_length t =
    let len = A.get t.aq.Ring.tail - A.get t.aq.Ring.head in
    if len < 0 then 0 else if len > t.capacity then t.capacity else len
end
