type 'a t = {
  enq_count : int Atomic.t;
  deq_count : int Atomic.t;
  witness : 'a option Atomic.t;
}

type 'a handle = unit

(* This is the paper's "FAA only" upper-bound microbenchmark: each of
   its three words must sit on its own line or the bound itself is
   depressed by false sharing. *)
let create () =
  {
    enq_count = Primitives.Padding.make_padded_atomic 0;
    deq_count = Primitives.Padding.make_padded_atomic 0;
    witness = Primitives.Padding.make_padded_atomic None;
  }
let register _t = ()

let enqueue t () v =
  (match Atomic.get t.witness with
  | None -> ignore (Atomic.compare_and_set t.witness None (Some v))
  | Some _ -> ());
  ignore (Atomic.fetch_and_add t.enq_count 1)

let dequeue t () =
  ignore (Atomic.fetch_and_add t.deq_count 1);
  Atomic.get t.witness

let enqueue_count t = Atomic.get t.enq_count
let dequeue_count t = Atomic.get t.deq_count
