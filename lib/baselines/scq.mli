(** SCQ (Nikolaev, DISC 2019 / arXiv:1908.04511): a lock-free
    circular queue over cycle-tagged ring entries, in the indirect
    configuration — two index rings (free and allocated) around a
    payload plane, so ring entries stay single-word CAS-able for
    arbitrary payload types.

    The memory-bounded counterpoint to the paper's queue: where the
    wait-free queue allocates segments without bound under a traffic
    spike, SCQ's footprint is fixed at creation ([2^order] slots plus
    two rings of twice that), and a full queue pushes back on the
    producer instead of growing.  Threshold-based EMPTY detection
    (3n-1 attempts after the last enqueue) bounds dequeuers chasing a
    moving tail.  Lock-free, not wait-free — wCQ (arXiv:2201.02179)
    is the wait-free extension. *)

type 'a t
type 'a handle

val create : ?order:int -> unit -> 'a t
(** Capacity [2^order] values; [order] defaults to [12] (4096, the
    LCRQ ring size used in the paper's evaluation). *)

val capacity : 'a t -> int
val register : 'a t -> 'a handle
val enqueue : 'a t -> 'a handle -> 'a -> unit
(** Spins (with [cpu_relax]) while the queue is full. *)

val try_enqueue : 'a t -> 'a handle -> 'a -> bool
(** [false] instead of blocking when the queue is full — the SCQ
    analogue of the WF queue's bounded-mode surface. *)

val dequeue : 'a t -> 'a handle -> 'a option

val dequeue_or : 'a t -> 'a handle -> 'a -> 'a
(** Allocation-free dequeue: returns the default when empty. *)

val approx_length : 'a t -> int

val handle_stats : 'a handle -> Obs.Counters.t
(** The handle's probe counters (zero here: probe disabled). *)
