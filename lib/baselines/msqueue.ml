(* Hardware-atomics instantiation; see msqueue.mli. *)
include Msqueue_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled)
