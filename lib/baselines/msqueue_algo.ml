(* The Michael-Scott algorithm as a functor over atomic primitives,
   so the model checker (simsched) can drive it on simulated atomics;
   [Msqueue] instantiates it on hardware atomics.

   The second argument is the observability probe: when [P.enabled],
   each handle carries an [Obs.Counters.t] recording operation counts
   and CAS-retry events, so the telemetry harness can print the same
   table for the baseline as for the wait-free queue.  [P.enabled] is
   a compile-time constant — the disabled instantiation pays
   nothing. *)

module Make (A : Primitives.Atomic_prims.S) (P : Obs.Probe.S) = struct
type 'a node = { value : 'a option; next : 'a node option A.t }

(* head points at the current dummy; values live in its successors. *)
type 'a t = { head : 'a node A.t; tail : 'a node A.t }

type 'a handle = { backoff : Primitives.Backoff.t; stats : Obs.Counters.t }

let create () =
  let dummy = { value = None; next = A.make None } in
  (* head and tail are the two contended words of the whole structure;
     unpadded they are four heap words apart, i.e. one cache line. *)
  { head = A.make_contended dummy; tail = A.make_contended dummy }

let register _t =
  { backoff = Primitives.Backoff.create (); stats = Obs.Counters.create_padded () }

let handle_stats h = h.stats

let enqueue t h v =
  let n = { value = Some v; next = A.make None } in
  let rec loop () =
    let tail = A.get t.tail in
    let next = A.get tail.next in
    if tail == A.get t.tail then begin
      match next with
      | None ->
        if A.compare_and_set tail.next None (Some n) then
          (* linearized; swinging the tail is best-effort *)
          ignore (A.compare_and_set t.tail tail n)
        else begin
          if P.enabled then
            h.stats.enq_cas_failures <- h.stats.enq_cas_failures + 1;
          Primitives.Backoff.backoff h.backoff;
          loop ()
        end
      | Some n' ->
        (* help a lagging enqueuer swing the tail *)
        ignore (A.compare_and_set t.tail tail n');
        loop ()
    end
    else loop ()
  in
  loop ();
  if P.enabled then h.stats.fast_enqueues <- h.stats.fast_enqueues + 1;
  Primitives.Backoff.reset h.backoff

let dequeue t h =
  let rec loop () =
    let head = A.get t.head in
    let tail = A.get t.tail in
    let next = A.get head.next in
    if head == A.get t.head then begin
      match next with
      | None -> None (* empty *)
      | Some n ->
        if head == tail then begin
          (* tail is lagging behind a completed enqueue *)
          ignore (A.compare_and_set t.tail tail n);
          loop ()
        end
        else begin
          let v = n.value in
          if A.compare_and_set t.head head n then v
          else begin
            if P.enabled then
              h.stats.deq_cas_failures <- h.stats.deq_cas_failures + 1;
            Primitives.Backoff.backoff h.backoff;
            loop ()
          end
        end
    end
    else loop ()
  in
  let v = loop () in
  (if P.enabled then
     match v with
     | Some _ -> h.stats.fast_dequeues <- h.stats.fast_dequeues + 1
     | None -> h.stats.empty_dequeues <- h.stats.empty_dequeues + 1);
  Primitives.Backoff.reset h.backoff;
  v

let approx_length t =
  let rec count node acc =
    match A.get node.next with Some n -> count n (acc + 1) | None -> acc
  in
  count (A.get t.head) 0

end
