(* [next] is atomic because when the queue is empty the dequeuer reads
   the dummy's next while an enqueuer writes it; the two mutexes are
   distinct so that access is a race that needs a synchronized
   location (the original algorithm assumes atomic word access). *)
type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

(* Each end's state (list pointer + its lock) lives in its own padded
   record: the whole point of the two-lock design is that enqueuers
   and dequeuers proceed independently, which the memory layout defeats
   if both ends' words share a cache line. *)
type 'a side = { mutable node : 'a node; lock : Mutex.t }
type 'a t = { head : 'a side; tail : 'a side }
type 'a handle = unit

let new_side node = Primitives.Padding.copy_as_padded { node; lock = Mutex.create () }

let create () =
  let dummy = { value = None; next = Atomic.make None } in
  { head = new_side dummy; tail = new_side dummy }

let register _t = ()

let enqueue t () v =
  let n = { value = Some v; next = Atomic.make None } in
  Mutex.lock t.tail.lock;
  Atomic.set t.tail.node.next (Some n);
  t.tail.node <- n;
  Mutex.unlock t.tail.lock

let dequeue t () =
  Mutex.lock t.head.lock;
  let v =
    match Atomic.get t.head.node.next with
    | None -> None
    | Some n ->
      let v = n.value in
      n.value <- None; (* the node becomes the new dummy *)
      t.head.node <- n;
      v
  in
  Mutex.unlock t.head.lock;
  v
