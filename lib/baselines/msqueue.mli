(** Michael & Scott's lock-free queue (PODC 1996), the classic
    CAS-based non-blocking queue the paper uses as a baseline.

    Both hot spots (head and tail) are updated with CAS in a retry
    loop, so under contention most CASes fail — the "CAS retry
    problem" that motivates FAA-based designs.  Failed CASes back off
    exponentially (per-handle state), as in the implementations used
    in the paper's evaluation. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val register : 'a t -> 'a handle
val enqueue : 'a t -> 'a handle -> 'a -> unit
val dequeue : 'a t -> 'a handle -> 'a option
val approx_length : 'a t -> int
(** Counts nodes by walking the list; O(n), for tests. *)

val handle_stats : 'a handle -> Obs.Counters.t
(** The handle's probe counters.  All zero in this instantiation (the
    probe is disabled); the telemetry harness uses the instrumented
    [Msqueue_obs] instead. *)
