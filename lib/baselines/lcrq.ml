(* Hardware-atomics instantiation; see lcrq.mli. *)
include Lcrq_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled)
