(* Wait-free queue of Kogan & Petrank, "Wait-Free Queues With Multiple
   Enqueuers and Dequeuers" (PPoPP 2011), ported to OCaml atomics.

   Operation descriptors are immutable records swapped atomically in
   the announcement array, so the algorithm's CAS(state[tid], ...)
   steps are physical-equality CASes on freshly allocated descriptors
   (ABA-safe under GC). *)

type 'a node = {
  value : 'a option; (* None only in the dummy *)
  next : 'a node option Atomic.t;
  enq_tid : int;
  deq_tid : int Atomic.t; (* -1 when unclaimed *)
}

type 'a op_desc = {
  phase : int;
  pending : bool;
  is_enqueue : bool;
  node : 'a node option;
      (* for enqueues: the node being inserted; for dequeues: the head
         node observed (whose successor carries the value), None for
         empty *)
}

type 'a t = {
  head : 'a node Atomic.t;
  tail : 'a node Atomic.t;
  state : 'a op_desc Atomic.t array;
  registered : int Atomic.t;
}

type 'a handle = { tid : int }

let new_node ?(enq_tid = -1) value =
  { value; next = Atomic.make None; enq_tid; deq_tid = Atomic.make (-1) }

let idle_desc = { phase = -1; pending = false; is_enqueue = true; node = None }

let create ?(max_threads = 128) () =
  assert (max_threads >= 1);
  let dummy = new_node None in
  (* Each announcement slot is written by one thread and scanned by all
     helpers; padding keeps one thread's announcement stores from
     invalidating its array-neighbours' slots. *)
  {
    head = Primitives.Padding.make_padded_atomic dummy;
    tail = Primitives.Padding.make_padded_atomic dummy;
    state = Array.init max_threads (fun _ -> Primitives.Padding.make_padded_atomic idle_desc);
    registered = Primitives.Padding.make_padded_atomic 0;
  }

let register q =
  let tid = Atomic.fetch_and_add q.registered 1 in
  if tid >= Array.length q.state then failwith "Kp_queue.register: too many threads";
  { tid }

let max_phase q =
  Array.fold_left (fun acc st -> max acc (Atomic.get st).phase) (-1) q.state

let is_still_pending q tid phase =
  let d = Atomic.get q.state.(tid) in
  d.pending && d.phase <= phase

(* Complete the enqueue whose node is linked after the current tail:
   mark its descriptor done, then swing the tail. *)
let help_finish_enq q =
  let last = Atomic.get q.tail in
  match Atomic.get last.next with
  | None -> ()
  | Some next ->
    let tid = next.enq_tid in
    if tid >= 0 then begin
      let cur_desc = Atomic.get q.state.(tid) in
      if
        last == Atomic.get q.tail
        && (match cur_desc.node with Some n -> n == next | None -> false)
      then begin
        let new_desc =
          { phase = cur_desc.phase; pending = false; is_enqueue = true; node = Some next }
        in
        ignore (Atomic.compare_and_set q.state.(tid) cur_desc new_desc)
      end;
      ignore (Atomic.compare_and_set q.tail last next)
    end

let rec help_enq q tid phase =
  if is_still_pending q tid phase then begin
    let last = Atomic.get q.tail in
    let next = Atomic.get last.next in
    if last == Atomic.get q.tail then begin
      (match next with
      | None ->
        if is_still_pending q tid phase then begin
          match (Atomic.get q.state.(tid)).node with
          | Some node -> ignore (Atomic.compare_and_set last.next None (Some node))
          | None -> ()
        end
      | Some _ -> ());
      help_finish_enq q
    end;
    help_enq q tid phase
  end

(* Complete the dequeue that claimed the current head: transfer the
   observed head into its descriptor, then swing the head. *)
let help_finish_deq q =
  let first = Atomic.get q.head in
  let next = Atomic.get first.next in
  let tid = Atomic.get first.deq_tid in
  if tid >= 0 then begin
    let cur_desc = Atomic.get q.state.(tid) in
    (match next with
    | Some next_node ->
      if first == Atomic.get q.head then begin
        if cur_desc.pending && not cur_desc.is_enqueue then begin
          let new_desc =
            { phase = cur_desc.phase; pending = false; is_enqueue = false; node = cur_desc.node }
          in
          ignore (Atomic.compare_and_set q.state.(tid) cur_desc new_desc)
        end;
        ignore (Atomic.compare_and_set q.head first next_node)
      end
    | None -> ())
  end

let rec help_deq q tid phase =
  if is_still_pending q tid phase then begin
    let first = Atomic.get q.head in
    let last = Atomic.get q.tail in
    let next = Atomic.get first.next in
    if first == Atomic.get q.head then begin
      if first == last then begin
        match next with
        | None ->
          (* empty: close the request with node = None *)
          let cur_desc = Atomic.get q.state.(tid) in
          if last == Atomic.get q.tail && is_still_pending q tid phase then begin
            let new_desc =
              { phase = cur_desc.phase; pending = false; is_enqueue = false; node = None }
            in
            ignore (Atomic.compare_and_set q.state.(tid) cur_desc new_desc)
          end
        | Some _ -> help_finish_enq q (* tail is lagging *)
      end
      else begin
        let cur_desc = Atomic.get q.state.(tid) in
        let proceed =
          if not (cur_desc.pending && not cur_desc.is_enqueue) then false
          else if
            first == Atomic.get q.head
            && (match cur_desc.node with Some n -> n != first | None -> true)
          then begin
            (* record the head we intend to dequeue *)
            let new_desc =
              { phase = cur_desc.phase; pending = true; is_enqueue = false; node = Some first }
            in
            Atomic.compare_and_set q.state.(tid) cur_desc new_desc
          end
          else true
        in
        if proceed then begin
          ignore (Atomic.compare_and_set first.deq_tid (-1) tid);
          help_finish_deq q
        end
      end
    end;
    help_deq q tid phase
  end

let help q phase =
  Array.iteri
    (fun tid st ->
      let desc = Atomic.get st in
      if desc.pending && desc.phase <= phase then
        if desc.is_enqueue then help_enq q tid desc.phase else help_deq q tid desc.phase)
    q.state

let enqueue q h v =
  let phase = max_phase q + 1 in
  let node = new_node ~enq_tid:h.tid (Some v) in
  Atomic.set q.state.(h.tid) { phase; pending = true; is_enqueue = true; node = Some node };
  help q phase;
  help_finish_enq q

let dequeue q h =
  let phase = max_phase q + 1 in
  Atomic.set q.state.(h.tid) { phase; pending = true; is_enqueue = false; node = None };
  help q phase;
  help_finish_deq q;
  match (Atomic.get q.state.(h.tid)).node with
  | None -> None
  | Some node -> (
    match Atomic.get node.next with
    | Some next -> next.value
    | None -> (* the claimed head always has a successor *) assert false)
