(* Hardware-atomics instantiation; see scq.mli. *)
include Scq_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Disabled)
