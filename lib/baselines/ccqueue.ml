(* [next] is atomic because it is the only field crossing between the
   two combining instances (an enqueue combiner publishes a node that
   a dequeue combiner consumes); everything else is serialized within
   one instance, whose handoff already provides happens-before. *)
type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

(* head and tail live in separate padded boxes rather than two fields
   of one record: each is written only inside its own side's combining
   section, but with both in one record every enqueue-side write would
   invalidate the line the dequeue combiner reads, coupling the two
   otherwise independent combining instances. *)
type 'a t = {
  head : 'a node ref; (* touched only inside deq-side combining *)
  tail : 'a node ref; (* touched only inside enq-side combining *)
  enq_side : Sync.Ccsynch.t;
  deq_side : Sync.Ccsynch.t;
}

type 'a handle = { eh : Sync.Ccsynch.handle; dh : Sync.Ccsynch.handle }

let create ?max_combine () =
  let dummy = { value = None; next = Atomic.make None } in
  {
    head = Primitives.Padding.copy_as_padded (ref dummy);
    tail = Primitives.Padding.copy_as_padded (ref dummy);
    enq_side = Sync.Ccsynch.create ?max_combine ();
    deq_side = Sync.Ccsynch.create ?max_combine ();
  }

let register t = { eh = Sync.Ccsynch.handle t.enq_side; dh = Sync.Ccsynch.handle t.deq_side }

let enqueue t h v =
  let n = { value = Some v; next = Atomic.make None } in
  Sync.Ccsynch.apply t.enq_side h.eh (fun () ->
      Atomic.set !(t.tail).next (Some n);
      t.tail := n)

let dequeue t h =
  Sync.Ccsynch.apply t.deq_side h.dh (fun () ->
      match Atomic.get !(t.head).next with
      | None -> None
      | Some n ->
        let v = n.value in
        n.value <- None; (* n becomes the new dummy *)
        t.head := n;
        v)
