(** LCRQ (Morrison & Afek, PPoPP 2013): a lock-free linked list of
    {!Crq} rings, managed like the MS-Queue list.

    The paper's strongest prior baseline: it avoids the CAS retry
    problem on the hot indices by using FAA, but each slot update
    still needs CAS2 and the queue is only lock-free, not wait-free.
    The ring size used in the paper's evaluation is [2^12]. *)

type 'a t
type 'a handle

val create : ?ring_size:int -> unit -> 'a t
(** [ring_size] defaults to [4096] ([2^12], as in the paper). *)

val register : 'a t -> 'a handle
val enqueue : 'a t -> 'a handle -> 'a -> unit
val dequeue : 'a t -> 'a handle -> 'a option

val ring_count : 'a t -> int
(** Number of CRQs currently linked, for tests of ring turnover. *)

val handle_stats : 'a handle -> Obs.Counters.t
(** The handle's probe counters (zero here: probe disabled). *)
