(* The CRQ ring as a functor over atomic primitives, so the model
   checker can drive it on simulated atomics; [Crq] instantiates it on
   hardware atomics. *)

module Make (A : Primitives.Atomic_prims.S) = struct
(* One slot: the original's (safe : 1, idx : 63, val : 64) CAS2-updated
   pair of words, as an immutable record behind one A. *)
type 'a slot = { safe : bool; idx : int; value : 'a option }

type 'a t = {
  head : int A.t;
  tail : int A.t; (* bit [closed_shift] is the closed flag *)
  next : 'a t option A.t;
  ring : 'a slot A.t array;
  size : int;
}

let closed_shift = 60
let closed_bit = 1 lsl closed_shift
let index_mask = closed_bit - 1

(* How many failed acquisition attempts an enqueuer tolerates before
   closing the ring (starvation cutoff; the original uses a similar
   small constant). *)
let close_tries = 10

(* The original CRQ aligns each ring node to its own cache line and
   keeps head and tail on separate lines; mirror that so the baseline
   does not pay false-sharing costs the wait-free queue avoids. *)
let create ~size =
  assert (size >= 2 && size land (size - 1) = 0);
  {
    head = A.make_contended 0;
    tail = A.make_contended 0;
    next = A.make None;
    ring = Array.init size (fun i -> A.make_contended { safe = true; idx = i; value = None });
    size;
  }

let next t = t.next
let size t = t.size

let rec close t =
  let cur = A.get t.tail in
  if cur land closed_bit = 0 && not (A.compare_and_set t.tail cur (cur lor closed_bit))
  then close t

let is_closed t = A.get t.tail land closed_bit <> 0

let enqueue t v =
  let rec attempt tries =
    let raw = A.fetch_and_add t.tail 1 in
    if raw land closed_bit <> 0 then `Closed
    else begin
      let i = raw land index_mask in
      let slot = t.ring.(i land (t.size - 1)) in
      let s = A.get slot in
      let acquired =
        match s.value with
        | None when s.idx <= i && (s.safe || A.get t.head <= i) ->
          A.compare_and_set slot s { safe = true; idx = i; value = Some v }
        | None | Some _ -> false
      in
      if acquired then `Ok
      else if i - A.get t.head >= t.size || tries + 1 >= close_tries then begin
        close t;
        `Closed
      end
      else attempt (tries + 1)
    end
  in
  attempt 0

(* Repair head > tail inversions left by dequeuers overshooting an
   empty ring, so later enqueues do not starve. *)
let rec fix_state t =
  let h = A.get t.head in
  let raw_tail = A.get t.tail in
  let tl = raw_tail land index_mask in
  if A.get t.head = h && h > tl then begin
    let repaired = h lor (raw_tail land closed_bit) in
    if not (A.compare_and_set t.tail raw_tail repaired) then fix_state t
  end

let dequeue t =
  let rec attempt () =
    let h = A.fetch_and_add t.head 1 in
    let slot = t.ring.(h land (t.size - 1)) in
    let rec transition () =
      let s = A.get slot in
      if s.idx > h then `Miss
      else begin
        match s.value with
        | Some v ->
          if s.idx = h then begin
            (* dequeue transition: empty the slot for round h+size *)
            if A.compare_and_set slot s { safe = s.safe; idx = h + t.size; value = None }
            then `Got v
            else transition ()
          end
          else begin
            (* value from an older round: mark unsafe so its enqueuer
               cannot be dequeued at the wrong index *)
            if A.compare_and_set slot s { s with safe = false } then `Miss
            else transition ()
          end
        | None ->
          (* advance the empty slot past us to block a late enqueuer *)
          if A.compare_and_set slot s { safe = s.safe; idx = h + t.size; value = None }
          then `Miss
          else transition ()
      end
    in
    match transition () with
    | `Got v -> Some v
    | `Miss ->
      if A.get t.tail land index_mask <= h + 1 then begin
        fix_state t;
        None
      end
      else attempt ()
  in
  attempt ()

end
