(* Instrumented LCRQ: hardware atomics with the probe enabled, so
   ring-close/ring-advance events are recorded.  [Lcrq] (probe
   disabled) is the one benchmarked. *)
include Lcrq_algo.Make (Primitives.Atomic_prims.Real) (Obs.Probe.Enabled)
