(* LCRQ as a functor over atomic primitives (rings included). *)

module Make (A : Primitives.Atomic_prims.S) = struct
module C = Crq_algo.Make (A)
type 'a t = { head : 'a C.t A.t; tail : 'a C.t A.t; ring_size : int }
type 'a handle = unit

let create ?(ring_size = 4096) () =
  let first = C.create ~size:ring_size in
  { head = A.make_contended first; tail = A.make_contended first; ring_size }

let register _t = ()

let enqueue t () v =
  let rec loop () =
    let crq = A.get t.tail in
    match A.get (C.next crq) with
    | Some n ->
      (* the tail pointer lags; help swing it *)
      ignore (A.compare_and_set t.tail crq n);
      loop ()
    | None ->
      (match C.enqueue crq v with
      | `Ok -> ()
      | `Closed ->
        let fresh = C.create ~size:t.ring_size in
        (match C.enqueue fresh v with
        | `Ok -> ()
        | `Closed -> assert false (* a private fresh ring accepts *));
        if A.compare_and_set (C.next crq) None (Some fresh) then
          ignore (A.compare_and_set t.tail crq fresh)
        else loop ())
  in
  loop ()

let dequeue t () =
  let rec loop () =
    let crq = A.get t.head in
    match C.dequeue crq with
    | Some v -> Some v
    | None -> (
      match A.get (C.next crq) with
      | None -> None
      | Some n -> (
        (* a successor exists, so [crq] is closed; but an enqueue may
           have completed between our dequeue and the close — check
           once more before discarding the ring. *)
        match C.dequeue crq with
        | Some v -> Some v
        | None ->
          ignore (A.compare_and_set t.head crq n);
          loop ()))
  in
  loop ()

let ring_count t =
  let rec count crq acc =
    match A.get (C.next crq) with Some n -> count n (acc + 1) | None -> acc + 1
  in
  count (A.get t.head) 0

end
