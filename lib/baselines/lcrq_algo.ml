(* LCRQ as a functor over atomic primitives (rings included).

   The probe argument mirrors the wait-free queue's: with [P.enabled]
   each handle records operation counts and contention events
   (ring-close on enqueue, ring-advance on dequeue) into an
   [Obs.Counters.t], free when disabled. *)

module Make (A : Primitives.Atomic_prims.S) (P : Obs.Probe.S) = struct
module C = Crq_algo.Make (A)
type 'a t = { head : 'a C.t A.t; tail : 'a C.t A.t; ring_size : int }
type 'a handle = { stats : Obs.Counters.t }

let create ?(ring_size = 4096) () =
  let first = C.create ~size:ring_size in
  { head = A.make_contended first; tail = A.make_contended first; ring_size }

let register _t = { stats = Obs.Counters.create_padded () }

let handle_stats h = h.stats

let enqueue t h v =
  let rec loop () =
    let crq = A.get t.tail in
    match A.get (C.next crq) with
    | Some n ->
      (* the tail pointer lags; help swing it *)
      ignore (A.compare_and_set t.tail crq n);
      loop ()
    | None ->
      (match C.enqueue crq v with
      | `Ok -> ()
      | `Closed ->
        if P.enabled then
          h.stats.enq_cas_failures <- h.stats.enq_cas_failures + 1;
        let fresh = C.create ~size:t.ring_size in
        (match C.enqueue fresh v with
        | `Ok -> ()
        | `Closed -> assert false (* a private fresh ring accepts *));
        if A.compare_and_set (C.next crq) None (Some fresh) then
          ignore (A.compare_and_set t.tail crq fresh)
        else loop ())
  in
  loop ();
  if P.enabled then h.stats.fast_enqueues <- h.stats.fast_enqueues + 1

let dequeue t h =
  let rec loop () =
    let crq = A.get t.head in
    match C.dequeue crq with
    | Some v -> Some v
    | None -> (
      match A.get (C.next crq) with
      | None -> None
      | Some n -> (
        (* a successor exists, so [crq] is closed; but an enqueue may
           have completed between our dequeue and the close — check
           once more before discarding the ring. *)
        match C.dequeue crq with
        | Some v -> Some v
        | None ->
          if P.enabled then
            h.stats.deq_cas_failures <- h.stats.deq_cas_failures + 1;
          ignore (A.compare_and_set t.head crq n);
          loop ()))
  in
  let v = loop () in
  (if P.enabled then
     match v with
     | Some _ -> h.stats.fast_dequeues <- h.stats.fast_dequeues + 1
     | None -> h.stats.empty_dequeues <- h.stats.empty_dequeues + 1);
  v

let ring_count t =
  let rec count crq acc =
    match A.get (C.next crq) with Some n -> count n (acc + 1) | None -> acc + 1
  in
  count (A.get t.head) 0

end
