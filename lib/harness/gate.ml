(* See gate.mli. *)

type point = { queue : string; threads : int; mean : float; lower : float; upper : float }

type check = { label : string; ok : bool; detail : string }

let ( let* ) = Result.bind

let points_of_doc doc =
  match Json.member "figure2_pairs" doc with
  | None -> Error "no \"figure2_pairs\" array in document"
  | Some pts -> (
    match Json.to_list_opt pts with
    | None -> Error "\"figure2_pairs\" is not an array"
    | Some items ->
      let parse i item =
        let str k = Option.bind (Json.member k item) Json.to_string_opt in
        let num k = Option.bind (Json.member k item) Json.to_float_opt in
        let int k = Option.bind (Json.member k item) Json.to_int_opt in
        match (str "queue", int "threads", num "mops_mean", num "mops_lower", num "mops_upper") with
        | Some queue, Some threads, Some mean, Some lower, Some upper ->
          Ok { queue; threads; mean; lower; upper }
        | _ -> Error (Printf.sprintf "figure2_pairs[%d]: missing or ill-typed field" i)
      in
      List.fold_left
        (fun acc (i, item) ->
          let* acc = acc in
          let* p = parse i item in
          Ok (p :: acc))
        (Ok [])
        (List.mapi (fun i item -> (i, item)) items)
      |> Result.map List.rev)

let telemetry_slow_rate ~patience doc =
  (* The telemetry block is a list of {patience; run: {snapshot: {ops:
     {slow_rate}}}} rows (see Telemetry.table_to_json). *)
  let ( >>= ) = Option.bind in
  Json.member "telemetry" doc >>= Json.to_list_opt >>= fun rows ->
  List.find_opt
    (fun row -> Json.member "patience" row >>= Json.to_int_opt = Some patience)
    rows
  >>= fun row ->
  Json.member "run" row >>= Json.member "snapshot" >>= Json.member "ops"
  >>= Json.member "slow_rate" >>= Json.to_float_opt

type alloc_point = { aqueue : string; words_per_op : float }

let alloc_points_of_doc doc =
  match Json.member "alloc_per_op" doc with
  | None -> Ok None
  | Some rows -> (
    match Json.to_list_opt rows with
    | None -> Error "\"alloc_per_op\" is not an array"
    | Some items ->
      let parse i item =
        let str k = Option.bind (Json.member k item) Json.to_string_opt in
        let num k = Option.bind (Json.member k item) Json.to_float_opt in
        match (str "name", num "words_per_op") with
        | Some aqueue, Some words_per_op -> Ok { aqueue; words_per_op }
        | _ -> Error (Printf.sprintf "alloc_per_op[%d]: missing or ill-typed field" i)
      in
      List.fold_left
        (fun acc (i, item) ->
          let* acc = acc in
          let* p = parse i item in
          Ok (p :: acc))
        (Ok [])
        (List.mapi (fun i item -> (i, item)) items)
      |> Result.map (fun ps -> Some (List.rev ps)))

let default_noise_mult = 3.0
let default_rel_floor = 0.10
let default_max_slow_rate = 1e-3
let default_slow_rate_patience = 10
let default_alloc_ceiling = 0.5
let default_alloc_margin = 1.0

let throughput_checks ~noise_mult ~rel_floor ~baseline_points ~current_points =
  List.filter_map
    (fun (b : point) ->
      let key = Printf.sprintf "%s @%dT" b.queue b.threads in
      match
        List.find_opt (fun c -> c.queue = b.queue && c.threads = b.threads) current_points
      with
      | None ->
        (* A queue present in the baseline but absent from the current
           run is itself a regression (a silently dropped benchmark
           would otherwise disable its own gate). *)
        Some { label = key; ok = false; detail = "missing from current results" }
      | Some c ->
        let band = Float.max (b.upper -. b.lower) (rel_floor *. b.mean) in
        let floor_mops = b.mean -. (noise_mult *. band) in
        let ok = c.mean >= floor_mops in
        Some
          {
            label = key;
            ok;
            detail =
              Printf.sprintf "baseline %.3f Mops/s (band %.3f), current %.3f, floor %.3f"
                b.mean band c.mean floor_mops;
          })
    baseline_points

(* Allocation rule: current <= max(ceiling, baseline + margin).  The
   ceiling is an absolute allowance for rows whose baseline is (near)
   zero — a fraction-of-a-word measurement jitter must not trip the
   gate — and the margin bounds drift on rows that legitimately
   allocate (the option API's [Some] box).  Both defaults are well
   under 2.0 words/op, so a regression that adds one box per operation
   always fails. *)
let alloc_checks ~alloc_ceiling ~alloc_margin ~baseline_points ~current_points =
  List.map
    (fun (b : alloc_point) ->
      let key = Printf.sprintf "%s alloc/op" b.aqueue in
      match List.find_opt (fun c -> c.aqueue = b.aqueue) current_points with
      | None -> { label = key; ok = false; detail = "missing from current results" }
      | Some c ->
        let limit = Float.max alloc_ceiling (b.words_per_op +. alloc_margin) in
        {
          label = key;
          ok = c.words_per_op <= limit;
          detail =
            Printf.sprintf "baseline %.4f words/op, current %.4f, limit %.4f"
              b.words_per_op c.words_per_op limit;
        })
    baseline_points

let slow_rate_check ~max_slow_rate ~patience current =
  match telemetry_slow_rate ~patience current with
  | None ->
    {
      label = Printf.sprintf "wf slow-path rate @patience %d" patience;
      ok = false;
      detail = "no telemetry block with that patience in current results";
    }
  | Some rate ->
    {
      label = Printf.sprintf "wf slow-path rate @patience %d" patience;
      ok = rate <= max_slow_rate;
      detail = Printf.sprintf "rate %.2e, limit %.2e" rate max_slow_rate;
    }

let compare_docs ?(noise_mult = default_noise_mult) ?(rel_floor = default_rel_floor)
    ?(max_slow_rate = default_max_slow_rate)
    ?(slow_rate_patience = default_slow_rate_patience)
    ?(alloc_ceiling = default_alloc_ceiling) ?(alloc_margin = default_alloc_margin)
    ~baseline ~current () =
  let* baseline_points = points_of_doc baseline in
  let* current_points = points_of_doc current in
  let* baseline_alloc = alloc_points_of_doc baseline in
  let* current_alloc = alloc_points_of_doc current in
  let alloc_cs =
    match baseline_alloc with
    | None ->
      (* Pre-PR-6 baselines carry no alloc rows; the gate stays usable
         against them (throughput checks only) and says so. *)
      [
        {
          label = "alloc/op gate";
          ok = true;
          detail = "baseline has no \"alloc_per_op\" section; alloc checks skipped";
        };
      ]
    | Some baseline_points -> (
      match current_alloc with
      | None ->
        [
          {
            label = "alloc/op gate";
            ok = false;
            detail = "baseline has \"alloc_per_op\" but current results do not";
          };
        ]
      | Some current_points ->
        alloc_checks ~alloc_ceiling ~alloc_margin ~baseline_points ~current_points)
  in
  let checks =
    throughput_checks ~noise_mult ~rel_floor ~baseline_points ~current_points
    @ [ slow_rate_check ~max_slow_rate ~patience:slow_rate_patience current ]
    @ alloc_cs
  in
  Ok checks

let passed checks = List.for_all (fun c -> c.ok) checks

let pp_checks fmt checks =
  List.iter
    (fun c ->
      Format.fprintf fmt "%s %-28s %s@\n" (if c.ok then "PASS" else "FAIL") c.label c.detail)
    checks
