(* See gate.mli. *)

type point = { queue : string; threads : int; mean : float; lower : float; upper : float }

type check = { label : string; ok : bool; detail : string }

let ( let* ) = Result.bind

let points_of_doc doc =
  match Json.member "figure2_pairs" doc with
  | None -> Error "no \"figure2_pairs\" array in document"
  | Some pts -> (
    match Json.to_list_opt pts with
    | None -> Error "\"figure2_pairs\" is not an array"
    | Some items ->
      let parse i item =
        let str k = Option.bind (Json.member k item) Json.to_string_opt in
        let num k = Option.bind (Json.member k item) Json.to_float_opt in
        let int k = Option.bind (Json.member k item) Json.to_int_opt in
        match (str "queue", int "threads", num "mops_mean", num "mops_lower", num "mops_upper") with
        | Some queue, Some threads, Some mean, Some lower, Some upper ->
          Ok { queue; threads; mean; lower; upper }
        | _ -> Error (Printf.sprintf "figure2_pairs[%d]: missing or ill-typed field" i)
      in
      List.fold_left
        (fun acc (i, item) ->
          let* acc = acc in
          let* p = parse i item in
          Ok (p :: acc))
        (Ok [])
        (List.mapi (fun i item -> (i, item)) items)
      |> Result.map List.rev)

let telemetry_slow_rate ~patience doc =
  (* The telemetry block is a list of {patience; run: {snapshot: {ops:
     {slow_rate}}}} rows (see Telemetry.table_to_json). *)
  let ( >>= ) = Option.bind in
  Json.member "telemetry" doc >>= Json.to_list_opt >>= fun rows ->
  List.find_opt
    (fun row -> Json.member "patience" row >>= Json.to_int_opt = Some patience)
    rows
  >>= fun row ->
  Json.member "run" row >>= Json.member "snapshot" >>= Json.member "ops"
  >>= Json.member "slow_rate" >>= Json.to_float_opt

let default_noise_mult = 3.0
let default_rel_floor = 0.10
let default_max_slow_rate = 1e-3
let default_slow_rate_patience = 10

let throughput_checks ~noise_mult ~rel_floor ~baseline_points ~current_points =
  List.filter_map
    (fun (b : point) ->
      let key = Printf.sprintf "%s @%dT" b.queue b.threads in
      match
        List.find_opt (fun c -> c.queue = b.queue && c.threads = b.threads) current_points
      with
      | None ->
        (* A queue present in the baseline but absent from the current
           run is itself a regression (a silently dropped benchmark
           would otherwise disable its own gate). *)
        Some { label = key; ok = false; detail = "missing from current results" }
      | Some c ->
        let band = Float.max (b.upper -. b.lower) (rel_floor *. b.mean) in
        let floor_mops = b.mean -. (noise_mult *. band) in
        let ok = c.mean >= floor_mops in
        Some
          {
            label = key;
            ok;
            detail =
              Printf.sprintf "baseline %.3f Mops/s (band %.3f), current %.3f, floor %.3f"
                b.mean band c.mean floor_mops;
          })
    baseline_points

let slow_rate_check ~max_slow_rate ~patience current =
  match telemetry_slow_rate ~patience current with
  | None ->
    {
      label = Printf.sprintf "wf slow-path rate @patience %d" patience;
      ok = false;
      detail = "no telemetry block with that patience in current results";
    }
  | Some rate ->
    {
      label = Printf.sprintf "wf slow-path rate @patience %d" patience;
      ok = rate <= max_slow_rate;
      detail = Printf.sprintf "rate %.2e, limit %.2e" rate max_slow_rate;
    }

let compare_docs ?(noise_mult = default_noise_mult) ?(rel_floor = default_rel_floor)
    ?(max_slow_rate = default_max_slow_rate)
    ?(slow_rate_patience = default_slow_rate_patience) ~baseline ~current () =
  let* baseline_points = points_of_doc baseline in
  let* current_points = points_of_doc current in
  let checks =
    throughput_checks ~noise_mult ~rel_floor ~baseline_points ~current_points
    @ [ slow_rate_check ~max_slow_rate ~patience:slow_rate_patience current ]
  in
  Ok checks

let passed checks = List.for_all (fun c -> c.ok) checks

let pp_checks fmt checks =
  List.iter
    (fun c ->
      Format.fprintf fmt "%s %-28s %s@\n" (if c.ok then "PASS" else "FAIL") c.label c.detail)
    checks
