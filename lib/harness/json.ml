(* A minimal JSON codec — just enough for [bench/main.exe --json] to
   emit machine-readable results and for the bench regression gate to
   read them back, without adding a dependency the container doesn't
   have.  The emitter round-trips through the parser losslessly
   (floats included), which the harness tests check. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_token f =
  (* Shortest decimal form that parses back to the same float; a
     trailing [.0] keeps integral values in the Float constructor on
     reparse. *)
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec emit buf ~indent t =
  let pad n = String.make n ' ' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity literals; null is the least-lossy
       representation a consumer can still distinguish from 0. *)
    if Float.is_finite f then Buffer.add_string buf (float_token f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        emit buf ~indent:(indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\": ";
        emit buf ~indent:(indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  emit buf ~indent:0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* ---------------------------------------------------------------- *)
(* Parsing: plain recursive descent over the input string.  Supports
   everything the emitter produces plus the rest of RFC 8259 (\u
   escapes, any-sign exponents); numbers with '.', 'e' or 'E' become
   [Float], others [Int] (falling back to [Float] on int overflow). *)

exception Parse_error of int * string

let parse_error pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (pos, m))) fmt

type parser_state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let skip_ws st =
  let n = String.length st.input in
  while
    st.pos < n
    && match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> parse_error st.pos "expected '%c', found '%c'" c c'
  | None -> parse_error st.pos "expected '%c', found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_error st.pos "invalid literal"

let add_utf8 buf code =
  (* The \uXXXX escape decodes to a Unicode scalar; re-encode UTF-8.
     Surrogate halves are passed through as-is (WTF-8-ish) rather than
     rejected — the emitter never produces them. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error st.pos "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> parse_error st.pos "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.input then
            parse_error st.pos "truncated \\u escape";
          let hex = String.sub st.input st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> parse_error st.pos "invalid \\u escape %S" hex
          in
          st.pos <- st.pos + 4;
          add_utf8 buf code
        | c -> parse_error (st.pos - 1) "invalid escape '\\%c'" c));
      go ()
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.input in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  while st.pos < n && match st.input.[st.pos] with '0' .. '9' -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  let is_float = ref false in
  if peek st = Some '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    while st.pos < n && match st.input.[st.pos] with '0' .. '9' -> true | _ -> false do
      st.pos <- st.pos + 1
    done
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    st.pos <- st.pos + 1;
    (match peek st with Some ('+' | '-') -> st.pos <- st.pos + 1 | _ -> ());
    while st.pos < n && match st.input.[st.pos] with '0' .. '9' -> true | _ -> false do
      st.pos <- st.pos + 1
    done
  | _ -> ());
  let tok = String.sub st.input start (st.pos - start) in
  if !is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> parse_error start "invalid number %S" tok
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      (* magnitude beyond [max_int]: degrade to float like other
         63-bit-int JSON readers do *)
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_error start "invalid number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error st.pos "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        st.pos <- st.pos + 1;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some c -> parse_error st.pos "unexpected character '%c'" c

let of_string s =
  let st = { input = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then
      parse_error st.pos "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> (Float.is_nan a && Float.is_nan b) || a = b
  | String a, String b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false

(* Accessors used by the regression gate; total, returning options. *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
