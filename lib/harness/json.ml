(* A minimal JSON encoder — just enough for [bench/main.exe --json] to
   emit machine-readable results without adding a dependency the
   container doesn't have.  Encoding only; nothing here parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent t =
  let pad n = String.make n ' ' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity literals; null is the least-lossy
       representation a consumer can still distinguish from 0. *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        emit buf ~indent:(indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\": ";
        emit buf ~indent:(indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  emit buf ~indent:0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
