(** Role-split throughput for the specialized topology variants.

    {!Runner}'s pairs workload gives every thread both roles, which is
    exactly what the topology contracts forbid: a wf-spsc instance
    under a 4-thread pairs run would reject the second producer.  This
    harness splits roles across domains instead — [producers] domains
    that only enqueue, [consumers] domains that only dequeue — so each
    specialized variant runs the topology it was built for, and the
    general queue runs the {e same} split for an apples-to-apples
    comparison (same bodies, same rendezvous, same accounting).

    Producers enqueue a fixed share each and exit; consumers spin on
    [dequeue_or] until every produced value has been taken, so the
    measured region covers the full production and consumption of
    [values] items.  Failed (EMPTY) dequeue probes are not counted as
    operations but their time is in the denominator — idle-consumer
    spin is part of the split's honest cost.

    Single-core caveat (same as the Figure-2 tables): domains
    timeslice on one core, so these numbers compare instruction-path
    cost under forced interleaving, not parallel scaling. *)

type row = {
  tname : string;  (** queue under test, e.g. ["wf-mpsc"] *)
  topology : string;  (** e.g. ["3p1c"] *)
  producers : int;
  consumers : int;
  total_ops : int;  (** enqueues + successful dequeues = 2 × values *)
  elapsed_s : float;  (** best rep's wall time *)
  mops : float;  (** total_ops / elapsed, millions per second *)
}

val run_case :
  ?reps:int -> Queues.factory -> producers:int -> consumers:int -> values:int -> row
(** Run [reps] (default 3) fresh instances of the split and keep the
    fastest, the usual noise floor for wall-clock microbenchmarks.
    [values] is rounded down to a multiple of [producers]. *)

val default_rows : ?quick:bool -> unit -> row list
(** The specialized-vs-general ladder: wf-spsc vs wf-10 at 1p1c,
    wf-mpsc vs wf-10 at 3p1c, wf-spmc vs wf-10 at 1p3c, and
    wf-shard-adaptive vs wf-shard-2 at 1p1c (router vs router, where
    the adaptive shards stay on their SPSC backend).  [quick] shrinks
    [values] for the CI smoke run. *)

val rows_to_json : row list -> Json.t
val pp_rows : Format.formatter -> row list -> unit
