(** False-sharing microbenchmark: N domains each FAA their own
    counter; the cache-line-strided layout of
    [Primitives.Atomic_prims.Real.Counters] versus heap-adjacent
    unpadded atomics, with an identical hot loop in both arms so
    layout is the only variable.  Quantifies the layout work of
    DESIGN.md's memory-layout section.  On a single-core host both
    layouts measure the same — padding only shows up when lines
    actually migrate between cores. *)

type result = {
  domains : int;
  ops_per_domain : int;
  padded_mops : float;
  unpadded_mops : float;
  speedup : float; (* padded over unpadded; > 1 means padding wins *)
}

val run : ?ops_per_domain:int -> domains:int -> unit -> result
(** One padded-vs-unpadded comparison at a fixed domain count: three
    interleaved reps of each layout, medians compared.  Default
    [ops_per_domain] 2_000_000. *)

val experiment : ?ops_per_domain:int -> ?domains:int list -> unit -> Report.t * result list
(** The table for EXPERIMENTS.md: {!run} across domain counts
    (default [1; 2; 4; 8]), printed and returned. *)
