(** Drivers that regenerate each table and figure of the paper's
    evaluation (the per-experiment index lives in DESIGN.md §4).

    Every driver prints a {!Report} table to stdout and returns it so
    tests can assert on shape.  [quick] trades methodology strength
    for time (3 invocations, shorter iterations) — used by
    [bench/main.exe]; the full CLI defaults to the paper's
    10-invocation methodology. *)

val table1 : unit -> Report.t
(** Platform summary: the paper's four machines plus this host. *)

val figure2 :
  ?quick:bool ->
  ?threads:int list ->
  ?queues:Queues.factory list ->
  ?total_ops:int ->
  ?title_note:string ->
  Workload.kind ->
  Report.t
(** Throughput (work-excluded Mops/s, 95% CI) of each queue across
    thread counts, for one of the two benchmarks.  Defaults: quick
    false; threads [1;2;4;8;16]; the Figure 2 queue set; 10^7 ops
    (quick: 4×10^5). *)

type fig2_point = { queue : string; threads : int; interval : Stats.Student_t.interval }
(** One (queue, thread count) measurement of {!figure2}. *)

val figure2_data :
  ?quick:bool ->
  ?threads:int list ->
  ?queues:Queues.factory list ->
  ?total_ops:int ->
  ?title_note:string ->
  Workload.kind ->
  Report.t * fig2_point list
(** [figure2] plus the raw points, for [bench/main.exe --json]. *)

val table2 : ?quick:bool -> ?threads:int list -> ?total_ops:int -> unit -> Report.t
(** Execution-path breakdown of WF-0 under the 50%-enqueues benchmark
    (% slow-path enqueues / dequeues / empty dequeues), including
    oversubscribed thread counts, as in Table 2. *)

(** {1 Ablations} (DESIGN.md §4) *)

val ablation_patience :
  ?quick:bool -> ?threads:int -> ?values:int list -> ?total_ops:int -> unit -> Report.t

val ablation_segment_size :
  ?quick:bool -> ?threads:int -> ?shifts:int list -> ?total_ops:int -> unit -> Report.t

val ablation_max_garbage :
  ?quick:bool -> ?threads:int -> ?values:int list -> ?total_ops:int -> unit -> Report.t

val ablation_reclamation : ?quick:bool -> ?threads:int -> ?total_ops:int -> unit -> Report.t
