(* See sched_bench.mli. *)

type row = {
  bname : string;
  workers : int;
  total_tasks : int;
  elapsed_s : float;
  mtasks : float;
}

(* Fan-out/fan-in through the scheduler: [roots] root tasks each spawn
   [subtasks] children on the worker's own deque and await them all.
   This is the workload the work-stealing tier exists for — spawns run
   LIFO and cache-warm, only imbalance pays a steal — measured on the
   production build ([Sched.Scheduler]: probes and injection compiled
   out). *)
let run_fan_out ~workers ~roots ~subtasks =
  let s = Sched.Scheduler.create ~workers () in
  let t0 = Primitives.Clock.now () in
  let proms =
    List.init roots (fun i ->
        Sched.Scheduler.async s (fun () ->
            let kids =
              List.init subtasks (fun j -> Sched.Scheduler.async s (fun () -> i + j))
            in
            List.fold_left (fun acc k -> acc + Sched.Scheduler.Promise.await k) 0 kids))
  in
  List.iter (fun p -> ignore (Sched.Scheduler.Promise.result p)) proms;
  let elapsed_s = Primitives.Clock.now () -. t0 in
  Sched.Scheduler.shutdown s;
  (roots * (1 + subtasks), elapsed_s)

(* The flat control: the same task count submitted externally through
   [Pool.submit], so every task crosses the shared injector and no
   fan-out structure feeds the deques.  The gap between this row and
   the fan-out row is the price of routing everything through the
   global queue. *)
let run_pool_flat ~workers ~tasks =
  let p = Pool.create ~workers () in
  let t0 = Primitives.Clock.now () in
  let futs = List.init tasks (fun i -> Pool.submit p (fun () -> i)) in
  List.iter (fun f -> ignore (Pool.await f)) futs;
  let elapsed_s = Primitives.Clock.now () -. t0 in
  Pool.shutdown p;
  (tasks, elapsed_s)

let best ?(reps = 3) f =
  let best_total = ref 0 and best_elapsed = ref infinity in
  for _ = 1 to reps do
    let total, elapsed_s = f () in
    if elapsed_s < !best_elapsed then begin
      best_total := total;
      best_elapsed := elapsed_s
    end
  done;
  (!best_total, !best_elapsed)

let make_row ~bname ~workers ~reps f =
  let total_tasks, elapsed_s = best ~reps f in
  {
    bname;
    workers;
    total_tasks;
    elapsed_s;
    mtasks = float_of_int total_tasks /. elapsed_s /. 1e6;
  }

let default_rows ?(quick = false) () =
  let roots = if quick then 2_000 else 10_000 in
  let subtasks = 4 in
  let reps = if quick then 2 else 3 in
  let flat = roots * (1 + subtasks) in
  List.concat_map
    (fun workers ->
      [
        make_row ~bname:"sched fan-out/fan-in" ~workers ~reps (fun () ->
            run_fan_out ~workers ~roots ~subtasks);
        make_row ~bname:"pool flat submit" ~workers ~reps (fun () ->
            run_pool_flat ~workers ~tasks:flat);
      ])
    [ 2; 4 ]

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.bname);
      ("workers", Json.Int r.workers);
      ("total_tasks", Json.Int r.total_tasks);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("mtasks", Json.Float r.mtasks);
    ]

let rows_to_json rows = Json.List (List.map row_to_json rows)

let pp_rows fmt rows =
  let line = String.make 58 '-' in
  Format.fprintf fmt "%s@\n" line;
  Format.fprintf fmt "%-24s %7s %10s %12s@\n" "workload" "workers" "tasks" "Mtasks/s";
  Format.fprintf fmt "%s@\n" line;
  List.iter
    (fun r ->
      Format.fprintf fmt "%-24s %7d %10d %12.3f@\n" r.bname r.workers r.total_tasks r.mtasks)
    rows;
  Format.fprintf fmt "%s@\n" line
