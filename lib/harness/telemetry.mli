(** Telemetry runs: workload executions that record what the
    throughput benchmarks deliberately do not — per-operation latency
    histograms and the queue's full {!Obs.Snapshot} — on the
    instrumented queue build.

    A telemetry run wraps every [enqueue]/[dequeue] in a monotonic
    clock pair, so it is NOT a throughput benchmark (the timing calls
    dominate short operations); throughput numbers still come from
    {!Runner}.  What it is for: the paper's §6 wait-freedom evidence —
    how often operations leave the fast path as patience varies, and
    what the tail latencies look like. *)

type run_result = {
  threads : int;
  ops : int;
  elapsed_s : float;
  mops : float;  (** indicative only — includes per-op timing cost *)
  snapshot : Obs.Snapshot.t option;  (** [None] for uninstrumented baselines *)
  latency : Obs.Op_latency.t;  (** merged across all worker domains *)
  alloc : Obs.Alloc_probe.t;
      (** per-operation minor-words, merged across workers.  Measured
          under real concurrency, so it includes contention effects
          (helping, segment churn) — whole-system words/op, not the
          deterministic steady-state number the CI gate pins (that is
          {!Alloc_bench}). *)
}

val run : Queues.instance -> Workload.spec -> threads:int -> run_result
(** Run the workload with per-operation timing on any queue instance
    (latencies work for every queue; the snapshot only for the WF
    builds). *)

type row = { patience : int; result : run_result }

val default_patiences : int list
(** [0; 1; 10; 64] — the paper's §6 sweep. *)

val stats_table :
  ?kind:Workload.kind ->
  ?patiences:int list ->
  ?total_ops:int ->
  threads:int ->
  unit ->
  row list
(** One instrumented run of the wait-free queue per patience value
    (think time off, to actually contend).  [total_ops] defaults to
    400k — enough for a stable rate, quick enough for CI. *)

val pp_table : Format.formatter -> row list -> unit
(** The patience-vs-slow-path-rate table ([repro stats] output). *)

val counters_to_json : Obs.Counters.t -> Json.t
val alloc_to_json : Obs.Alloc_probe.t -> Json.t
val snapshot_to_json : Obs.Snapshot.t -> Json.t
val run_result_to_json : run_result -> Json.t
val table_to_json : row list -> Json.t
