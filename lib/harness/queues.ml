type ops = {
  enqueue : int -> unit;
  dequeue : unit -> int option;
  dequeue_or : int -> int;
  release : unit -> unit;
}

(* Build an [ops], deriving [dequeue_or] from the option-returning
   dequeue when the implementation has no native one.  The derived
   form still pays the implementation's [Some] box; queues with a real
   word-returning path (the WF family since PR 6) pass [~dequeue_or]
   so the alloc probe and the int-vs-boxed rows measure the genuine
   allocation-free dequeue. *)
let make_ops ?dequeue_or ~enqueue ~dequeue ~release () =
  let dequeue_or =
    match dequeue_or with
    | Some f -> f
    | None -> fun default -> ( match dequeue () with Some v -> v | None -> default)
  in
  { enqueue; dequeue; dequeue_or; release }

type instance = {
  iname : string;
  register : unit -> ops;
  op_stats : unit -> Wfq.Op_stats.t option;
  reset_op_stats : unit -> unit;
  snapshot : unit -> Obs.Snapshot.t option;
}

type factory = {
  name : string;
  description : string;
  is_real_queue : bool;
  make : unit -> instance;
}

let wf ?(patience = 10) ?segment_shift ?max_garbage ?reclamation ?name () =
  let name = match name with Some n -> n | None -> Printf.sprintf "wf-%d" patience in
  {
    name;
    description =
      Printf.sprintf "wait-free queue (patience %d%s)" patience
        (match reclamation with Some false -> ", reclamation off" | Some true | None -> "");
    is_real_queue = true;
    make =
      (fun () ->
        let q = Wfq.Wfqueue.create ~patience ?segment_shift ?max_garbage ?reclamation () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Wfq.Wfqueue.register q in
              (* retire on release so steady-state iterations on one
                 instance measure the queue, not an ever-growing ring
                 of dead handles; the next iteration's register
                 recycles the slot *)
              make_ops
                ~enqueue:(fun v -> Wfq.Wfqueue.enqueue q h v)
                ~dequeue:(fun () -> Wfq.Wfqueue.dequeue q h)
                ~dequeue_or:(fun d -> Wfq.Wfqueue.dequeue_or q h d)
                ~release:(fun () -> Wfq.Wfqueue.retire q h)
                ());
          op_stats = (fun () -> Some (Wfq.Wfqueue.stats q));
          reset_op_stats = (fun () -> Wfq.Wfqueue.reset_stats q);
          snapshot = (fun () -> Some (Wfq.Wfqueue.snapshot q));
        });
  }

(* Same queue, instrumented instantiation: the probe's event tier (CAS
   failures, cells skipped, helping) is compiled in.  Benchmarked
   side-by-side with [wf] to price the instrumentation; used by
   [repro stats] and the bench telemetry block. *)
let wf_obs ?(patience = 10) ?segment_shift ?max_garbage ?reclamation ?name () =
  let name =
    match name with Some n -> n | None -> Printf.sprintf "wf-%d-obs" patience
  in
  {
    name;
    description =
      Printf.sprintf "wait-free queue (patience %d), telemetry probe enabled" patience;
    is_real_queue = true;
    make =
      (fun () ->
        let q = Wfq.Wfqueue_obs.create ~patience ?segment_shift ?max_garbage ?reclamation () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Wfq.Wfqueue_obs.register q in
              make_ops
                ~enqueue:(fun v -> Wfq.Wfqueue_obs.enqueue q h v)
                ~dequeue:(fun () -> Wfq.Wfqueue_obs.dequeue q h)
                ~dequeue_or:(fun d -> Wfq.Wfqueue_obs.dequeue_or q h d)
                ~release:(fun () -> Wfq.Wfqueue_obs.retire q h)
                ());
          op_stats = (fun () -> Some (Wfq.Wfqueue_obs.stats q));
          reset_op_stats = (fun () -> Wfq.Wfqueue_obs.reset_stats q);
          snapshot = (fun () -> Some (Wfq.Wfqueue_obs.snapshot q));
        });
  }

(* The int-specialized facade ([Wfqueue_int]): same compiled queue as
   [wf], but the per-domain ops route dequeues through the
   allocation-free [dequeue_or] (EMPTY = min_int sentinel, outside the
   bench payload domain of small non-negative ints) and wrap the
   option only when a caller insists on [dequeue].  Benched against
   [wf] to price the generic API's option box — the last hot-path
   allocation the PR-6 audit left by design. *)
let wf_int ?(patience = 10) ?segment_shift ?max_garbage ?reclamation ?name () =
  let name = match name with Some n -> n | None -> Printf.sprintf "wf-int-%d" patience in
  {
    name;
    description =
      Printf.sprintf "wait-free queue, int-specialized API (patience %d, no option box)"
        patience;
    is_real_queue = true;
    make =
      (fun () ->
        let q = Wfq.Wfqueue_int.create ~patience ?segment_shift ?max_garbage ?reclamation () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Wfq.Wfqueue_int.register q in
              make_ops
                ~enqueue:(fun v -> Wfq.Wfqueue_int.enqueue q h v)
                ~dequeue:(fun () ->
                  let v = Wfq.Wfqueue_int.dequeue_or q h min_int in
                  if v = min_int then None else Some v)
                ~dequeue_or:(fun d -> Wfq.Wfqueue_int.dequeue_or q h d)
                ~release:(fun () -> Wfq.Wfqueue_int.retire q h)
                ());
          op_stats = (fun () -> Some (Wfq.Wfqueue_int.stats q));
          reset_op_stats = (fun () -> Wfq.Wfqueue_int.reset_stats q);
          snapshot = (fun () -> Some (Wfq.Wfqueue_int.snapshot q));
        });
  }

(* Sharded router over production queues: the d-bounded relaxed-FIFO
   deployment shape.  One factory per shard count so the bench tables
   show the scaling curve. *)
let wf_shard ?(shards = 2) ?(patience = 10) ?capacity ?rebalance_every ?name () =
  let name = match name with Some n -> n | None -> Printf.sprintf "wf-shard-%d" shards in
  {
    name;
    description =
      Printf.sprintf "sharded router over %d wait-free queues (relaxed FIFO%s)" shards
        (match capacity with None -> "" | Some c -> Printf.sprintf ", bounded %d/shard" c);
    is_real_queue = true;
    make =
      (fun () ->
        let t = Shard.Wf.create ~shards ?capacity ?rebalance_every ~patience () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Shard.Wf.register t in
              make_ops
                ~enqueue:(fun v -> Shard.Wf.enqueue t h v)
                ~dequeue:(fun () -> Shard.Wf.dequeue t h)
                ~release:(fun () -> Shard.Wf.retire t h)
                ());
          op_stats = (fun () -> Some (Shard.Wf.snapshot t).Obs.Snapshot.ops);
          reset_op_stats = (fun () -> Shard.Wf.reset_stats t);
          snapshot = (fun () -> Some (Shard.Wf.snapshot t));
        });
  }

(* One wait-free queue driven through the k-cell batch operations,
   with client-side buffering: enqueues coalesce into one tail FAA per
   [batch] values, dequeues prefetch up to [batch] values per head
   FAA.  Measures the amortization headroom of the batch path against
   the one-FAA-per-op baseline. *)
let wf_batch ?(batch = 8) ?(patience = 10) ?name () =
  let name = match name with Some n -> n | None -> Printf.sprintf "wf-batch-%d" batch in
  if batch < 1 then invalid_arg "Queues.wf_batch: batch < 1";
  {
    name;
    description =
      Printf.sprintf "wait-free queue, %d-cell FAA batching (buffering facade)" batch;
    is_real_queue = true;
    make =
      (fun () ->
        let q = Wfq.Wfqueue.create ~patience () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Wfq.Wfqueue.register q in
              let outbuf = Array.make batch 0 in
              let out_len = ref 0 in
              let prefetch = Queue.create () in
              let flush () =
                if !out_len > 0 then begin
                  Wfq.Wfqueue.enq_batch q h (Array.sub outbuf 0 !out_len);
                  out_len := 0
                end
              in
              make_ops
                ~enqueue:(fun v ->
                    outbuf.(!out_len) <- v;
                    incr out_len;
                    if !out_len = batch then flush ())
                ~dequeue:(fun () ->
                    if not (Queue.is_empty prefetch) then Some (Queue.pop prefetch)
                    else begin
                      (* publish our own pending values first so a
                         pairs-style worker can always drain what it
                         produced *)
                      flush ();
                      (* size the ticket batch by the visible backlog
                         so a near-empty queue is not hammered with
                         k-ticket EMPTY batches *)
                      let want = min batch (max 1 (Wfq.Wfqueue.approx_length q)) in
                      let out = Wfq.Wfqueue.deq_batch q h want in
                      Array.iter
                        (function Some v -> Queue.push v prefetch | None -> ())
                        out;
                      if Queue.is_empty prefetch then None else Some (Queue.pop prefetch)
                    end)
                ~release:(fun () ->
                    (* conservation across release: publish buffered
                       values and return prefetched-but-unconsumed
                       ones *)
                    flush ();
                    if not (Queue.is_empty prefetch) then begin
                      let leftovers =
                        Array.init (Queue.length prefetch) (fun _ -> Queue.pop prefetch)
                      in
                      Wfq.Wfqueue.enq_batch q h leftovers
                    end;
                    Wfq.Wfqueue.retire q h)
                ());
          op_stats = (fun () -> Some (Wfq.Wfqueue.stats q));
          reset_op_stats = (fun () -> Wfq.Wfqueue.reset_stats q);
          snapshot = (fun () -> Some (Wfq.Wfqueue.snapshot q));
        });
  }

(* The specialized topology variants.  A bench [ops] uses one handle
   for both roles, which every variant permits (the role claims are
   per-handle, and a retire releases them), so the single-threaded
   bechamel pair and the alloc probe are legal on all of them.  They
   are registered in [all] — and deliberately NOT in [figure2_set]:
   the multi-thread pairs workload would put several producers and
   consumers on one queue, which is exactly the contract these
   variants check and reject.  Their multi-threaded numbers come from
   [Topology_bench], which builds role-correct workloads. *)

let wf_spsc ?segment_shift ?max_garbage ?reclamation ?name () =
  let name = match name with Some n -> n | None -> "wf-spsc" in
  {
    name;
    description = "specialized SPSC variant (no FAA, no CAS; single producer+consumer)";
    is_real_queue = true;
    make =
      (fun () ->
        let q = Topology.Spsc.create ?segment_shift ?max_garbage ?reclamation () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Topology.Spsc.register q in
              make_ops
                ~enqueue:(fun v -> Topology.Spsc.enqueue q h v)
                ~dequeue:(fun () -> Topology.Spsc.dequeue q h)
                ~dequeue_or:(fun d -> Topology.Spsc.dequeue_or q h d)
                ~release:(fun () -> Topology.Spsc.retire q h)
                ());
          op_stats = (fun () -> Some (Topology.Spsc.snapshot q).Obs.Snapshot.ops);
          reset_op_stats = (fun () -> Topology.Spsc.reset_stats q);
          snapshot = (fun () -> Some (Topology.Spsc.snapshot q));
        });
  }

let wf_mpsc ?segment_shift ?max_garbage ?reclamation ?name () =
  let name = match name with Some n -> n | None -> "wf-mpsc" in
  {
    name;
    description = "specialized MPSC variant (Jiffy-style: FAA tail, CAS-free single consumer)";
    is_real_queue = true;
    make =
      (fun () ->
        let q = Topology.Mpsc.create ?segment_shift ?max_garbage ?reclamation () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Topology.Mpsc.register q in
              make_ops
                ~enqueue:(fun v -> Topology.Mpsc.enqueue q h v)
                ~dequeue:(fun () -> Topology.Mpsc.dequeue q h)
                ~dequeue_or:(fun d -> Topology.Mpsc.dequeue_or q h d)
                ~release:(fun () -> Topology.Mpsc.retire q h)
                ());
          op_stats = (fun () -> Some (Topology.Mpsc.snapshot q).Obs.Snapshot.ops);
          reset_op_stats = (fun () -> Topology.Mpsc.reset_stats q);
          snapshot = (fun () -> Some (Topology.Mpsc.snapshot q));
        });
  }

let wf_spmc ?segment_shift ?max_garbage ?reclamation ?name () =
  let name = match name with Some n -> n | None -> "wf-spmc" in
  {
    name;
    description = "specialized SPMC variant (FAA head tickets, CAS-free single producer)";
    is_real_queue = true;
    make =
      (fun () ->
        let q = Topology.Spmc.create ?segment_shift ?max_garbage ?reclamation () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Topology.Spmc.register q in
              make_ops
                ~enqueue:(fun v -> Topology.Spmc.enqueue q h v)
                ~dequeue:(fun () -> Topology.Spmc.dequeue q h)
                ~dequeue_or:(fun d -> Topology.Spmc.dequeue_or q h d)
                ~release:(fun () -> Topology.Spmc.retire q h)
                ());
          op_stats = (fun () -> Some (Topology.Spmc.snapshot q).Obs.Snapshot.ops);
          reset_op_stats = (fun () -> Topology.Spmc.reset_stats q);
          snapshot = (fun () -> Some (Topology.Spmc.snapshot q));
        });
  }

(* Sharded router over topology-adaptive shards.  Safe in any
   workload (it degrades to the general queue once roles multiply),
   so unlike the raw variants it joins [figure2_set] too.  Note the
   role counters are monotone: the bechamel allocate/free cycle
   registers a fresh handle per run, so after the first cycle the
   shards degrade and the measured steady state is the general
   backend plus the dispatch overhead — the honest deployment number
   for handle-churning callers. *)
let wf_shard_adaptive ?(shards = 2) ?capacity ?rebalance_every ?name () =
  let name = match name with Some n -> n | None -> "wf-shard-adaptive" in
  {
    name;
    description =
      Printf.sprintf "sharded router over %d topology-adaptive shards (relaxed FIFO)" shards;
    is_real_queue = true;
    make =
      (fun () ->
        let t = Shard.Adaptive.create ~shards ?capacity ?rebalance_every () in
        {
          iname = name;
          register =
            (fun () ->
              let h = Shard.Adaptive.register t in
              make_ops
                ~enqueue:(fun v -> Shard.Adaptive.enqueue t h v)
                ~dequeue:(fun () -> Shard.Adaptive.dequeue t h)
                ~dequeue_or:(fun d -> Shard.Adaptive.dequeue_or t h d)
                ~release:(fun () -> Shard.Adaptive.retire t h)
                ());
          op_stats = (fun () -> Some (Shard.Adaptive.snapshot t).Obs.Snapshot.ops);
          reset_op_stats = (fun () -> Shard.Adaptive.reset_stats t);
          snapshot = (fun () -> Some (Shard.Adaptive.snapshot t));
        });
  }

let simple name description is_real_queue make_ops =
  {
    name;
    description;
    is_real_queue;
    make =
      (fun () ->
        let register = make_ops () in
        {
          iname = name;
          register;
          op_stats = (fun () -> None);
          reset_op_stats = ignore;
          snapshot = (fun () -> None);
        });
  }

(* The bounded-memory build of the production queue (DESIGN.md §11):
   a hard segment cap with freelist-recycled segments.  The bench ops
   use the plain (blocking-backpressure) enqueue — the pairs workload
   never approaches the cap, so the row prices the bounded build's
   bookkeeping (budget FAA per fresh segment, admission fields), not
   contention on the cap. *)
let wf_bounded ?(patience = 10) ?(segment_cap = 64) ?segment_shift ?max_garbage ?name () =
  let name = match name with Some n -> n | None -> "wf-bounded" in
  {
    name;
    description =
      Printf.sprintf "wait-free queue, bounded-memory mode (cap %d segments)" segment_cap;
    is_real_queue = true;
    make =
      (fun () ->
        let q =
          Wfq.Wfqueue.create ~patience ~segment_cap ?segment_shift ?max_garbage ()
        in
        {
          iname = name;
          register =
            (fun () ->
              let h = Wfq.Wfqueue.register q in
              make_ops
                ~enqueue:(fun v -> Wfq.Wfqueue.enqueue q h v)
                ~dequeue:(fun () -> Wfq.Wfqueue.dequeue q h)
                ~dequeue_or:(fun d -> Wfq.Wfqueue.dequeue_or q h d)
                ~release:(fun () -> Wfq.Wfqueue.retire q h)
                ());
          op_stats = (fun () -> Some (Wfq.Wfqueue.stats q));
          reset_op_stats = (fun () -> Wfq.Wfqueue.reset_stats q);
          snapshot = (fun () -> Some (Wfq.Wfqueue.snapshot q));
        });
  }

(* Nikolaev's SCQ (arXiv:1908.04511): the bounded lock-free ring
   baseline the bounded WF mode is measured against.  Capacity
   2^order; [enqueue] spins on a full ring (the pairs workload keeps
   the backlog at worker count, far below capacity), [dequeue_or] is
   the native allocation-free path. *)
let scq ?(order = 12) ?name () =
  let name = match name with Some n -> n | None -> "scq" in
  simple name
    (Printf.sprintf "SCQ bounded ring, capacity %d (lock-free)" (1 lsl order))
    true
    (fun () ->
      let q = Baselines.Scq.create ~order () in
      fun () ->
        let h = Baselines.Scq.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Scq.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Scq.dequeue q h)
          ~dequeue_or:(fun d -> Baselines.Scq.dequeue_or q h d)
          ~release:ignore ())

let lcrq ?(ring_size = 4096) () =
  simple "lcrq"
    (Printf.sprintf "LCRQ, ring size %d (lock-free)" ring_size)
    true
    (fun () ->
      let q = Baselines.Lcrq.create ~ring_size () in
      fun () ->
        let h = Baselines.Lcrq.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Lcrq.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Lcrq.dequeue q h)
          ~release:ignore ())

let ccqueue =
  simple "ccqueue" "CC-Queue, combining (blocking)" true (fun () ->
      let q = Baselines.Ccqueue.create () in
      fun () ->
        let h = Baselines.Ccqueue.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Ccqueue.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Ccqueue.dequeue q h)
          ~release:ignore ())

let msqueue =
  simple "msqueue" "Michael-Scott queue (lock-free)" true (fun () ->
      let q = Baselines.Msqueue.create () in
      fun () ->
        let h = Baselines.Msqueue.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Msqueue.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Msqueue.dequeue q h)
          ~release:ignore ())

let two_lock =
  simple "two-lock" "Michael-Scott two-lock queue (blocking)" true (fun () ->
      let q = Baselines.Two_lock_queue.create () in
      fun () ->
        let h = Baselines.Two_lock_queue.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Two_lock_queue.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Two_lock_queue.dequeue q h)
          ~release:ignore ())

let mutex =
  simple "mutex" "global mutex around Stdlib.Queue (blocking)" true (fun () ->
      let q = Baselines.Mutex_queue.create () in
      fun () ->
        let h = Baselines.Mutex_queue.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Mutex_queue.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Mutex_queue.dequeue q h)
          ~release:ignore ())

let wf_llsc =
  simple "wf-llsc" "wait-free queue with CAS-emulated FAA (the paper's Power7 setup; lock-free)"
    true (fun () ->
      let q = Wfq.Wfqueue_llsc.create () in
      fun () ->
        let h = Wfq.Wfqueue_llsc.register q in
        make_ops
          ~enqueue:(fun v -> Wfq.Wfqueue_llsc.enqueue q h v)
          ~dequeue:(fun () -> Wfq.Wfqueue_llsc.dequeue q h)
          ~dequeue_or:(fun d -> Wfq.Wfqueue_llsc.dequeue_or q h d)
          ~release:(fun () -> Wfq.Wfqueue_llsc.retire q h) ())

let kp_queue =
  simple "kp" "Kogan-Petrank queue (wait-free, phase-based helping)" true (fun () ->
      let q = Baselines.Kp_queue.create ~max_threads:32 () in
      fun () ->
        let h = Baselines.Kp_queue.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Kp_queue.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Kp_queue.dequeue q h)
          ~release:ignore ())

let faa =
  simple "faa" "FAA microbenchmark (throughput upper bound, not a queue)" false (fun () ->
      let q = Baselines.Faa_bench.create () in
      fun () ->
        let h = Baselines.Faa_bench.register q in
        make_ops
          ~enqueue:(fun v -> Baselines.Faa_bench.enqueue q h v)
          ~dequeue:(fun () -> Baselines.Faa_bench.dequeue q h)
          ~release:ignore ())

let all =
  [
    wf ~patience:10 ();
    wf ~patience:0 ();
    wf_obs ~patience:10 ();
    wf_int ~patience:10 ();
    wf_shard ~shards:2 ();
    wf_shard ~shards:8 ();
    wf_batch ~batch:8 ();
    wf_spsc ();
    wf_mpsc ();
    wf_spmc ();
    wf_shard_adaptive ();
    wf_bounded ();
    wf_llsc;
    scq ();
    lcrq ();
    ccqueue;
    msqueue;
    kp_queue;
    two_lock;
    mutex;
    faa;
  ]

let figure2_set =
  [
    wf ~patience:10 ();
    wf ~patience:0 ();
    wf_int ~patience:10 ();
    wf_shard ~shards:2 ();
    wf_shard ~shards:8 ();
    wf_batch ~batch:8 ();
    wf_shard_adaptive ();
    wf_bounded ();
    scq ();
    lcrq ();
    ccqueue;
    msqueue;
    faa;
  ]
let find name = List.find_opt (fun f -> f.name = name) all
let names () = List.map (fun f -> f.name) all
