(* See topology_bench.mli. *)

type row = {
  tname : string;
  topology : string;
  producers : int;
  consumers : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;
}

(* One timed run of a fresh instance: [producers] enqueue-only domains
   and [consumers] dequeue-only domains rendezvous on a barrier (spawn
   and registration latency outside the timed region), then the clock
   runs until every produced value has been consumed.  EMPTY is
   [min_int]; produced payloads are non-negative, so no collision. *)
let run_split (factory : Queues.factory) ~producers ~consumers ~values =
  let instance = factory.Queues.make () in
  let per_prod = values / producers in
  let total = per_prod * producers in
  let remaining = Atomic.make total in
  let barrier = Sync.Barrier.create (producers + consumers + 1) in
  let prods =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let ops = instance.Queues.register () in
            Sync.Barrier.await barrier;
            let base = p * per_prod in
            for i = 0 to per_prod - 1 do
              ops.Queues.enqueue (base + i)
            done;
            ops.Queues.release ()))
  in
  let cons =
    List.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let ops = instance.Queues.register () in
            Sync.Barrier.await barrier;
            if consumers = 1 then begin
              (* sole consumer: no shared termination counter needed *)
              let n = ref 0 in
              while !n < total do
                if ops.Queues.dequeue_or min_int <> min_int then incr n
                else Domain.cpu_relax ()
              done;
              Atomic.set remaining 0
            end
            else begin
              let live = ref true in
              while !live do
                if ops.Queues.dequeue_or min_int <> min_int then begin
                  if Atomic.fetch_and_add remaining (-1) = 1 then live := false
                end
                else if Atomic.get remaining <= 0 then live := false
                else Domain.cpu_relax ()
              done
            end;
            ops.Queues.release ()))
  in
  Sync.Barrier.await barrier;
  let t0 = Primitives.Clock.now () in
  List.iter Domain.join prods;
  List.iter Domain.join cons;
  let elapsed_s = Primitives.Clock.now () -. t0 in
  (total, elapsed_s)

let run_case ?(reps = 3) (factory : Queues.factory) ~producers ~consumers ~values =
  if producers < 1 || consumers < 1 then
    invalid_arg "Topology_bench.run_case: producers and consumers must be >= 1";
  let best_total = ref 0 and best_elapsed = ref infinity in
  for _ = 1 to reps do
    let total, elapsed_s = run_split factory ~producers ~consumers ~values in
    if elapsed_s < !best_elapsed then begin
      best_total := total;
      best_elapsed := elapsed_s
    end
  done;
  let total_ops = 2 * !best_total in
  {
    tname = factory.Queues.name;
    topology = Printf.sprintf "%dp%dc" producers consumers;
    producers;
    consumers;
    total_ops;
    elapsed_s = !best_elapsed;
    mops = float_of_int total_ops /. !best_elapsed /. 1e6;
  }

let default_rows ?(quick = false) () =
  let values = if quick then 60_000 else 400_000 in
  let reps = if quick then 2 else 5 in
  let general = Queues.wf ~patience:10 () in
  let case f ~p ~c = run_case ~reps f ~producers:p ~consumers:c ~values in
  [
    (* the handshake variant and the general queue on its home ground *)
    case (Queues.wf_spsc ()) ~p:1 ~c:1;
    case general ~p:1 ~c:1;
    (* fan-in: FAA producers, CAS-free consumer *)
    case (Queues.wf_mpsc ()) ~p:3 ~c:1;
    case general ~p:3 ~c:1;
    (* fan-out: CAS-free producer, FAA consumers *)
    case (Queues.wf_spmc ()) ~p:1 ~c:3;
    case general ~p:1 ~c:3;
    (* router vs router: adaptive shards hold their SPSC backend under
       this split (one producer, one consumer, no churn) *)
    case (Queues.wf_shard_adaptive ()) ~p:1 ~c:1;
    case (Queues.wf_shard ~shards:2 ()) ~p:1 ~c:1;
  ]

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.tname);
      ("topology", Json.String r.topology);
      ("producers", Json.Int r.producers);
      ("consumers", Json.Int r.consumers);
      ("total_ops", Json.Int r.total_ops);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("mops", Json.Float r.mops);
    ]

let rows_to_json rows = Json.List (List.map row_to_json rows)

let pp_rows fmt rows =
  let line = String.make 58 '-' in
  Format.fprintf fmt "%s@\n" line;
  Format.fprintf fmt "%-20s %8s %10s %12s@\n" "queue" "split" "ops" "Mops/s";
  Format.fprintf fmt "%s@\n" line;
  List.iter
    (fun r ->
      Format.fprintf fmt "%-20s %8s %10d %12.3f@\n" r.tname r.topology r.total_ops r.mops)
    rows;
  Format.fprintf fmt "%s@\n" line
