(** Task-scheduler throughput rows: fan-out/fan-in through the
    effects-based scheduler (workers spawning onto their own
    work-stealing deques) against the flat control where the same task
    count is submitted externally through [Pool.submit] and every task
    crosses the shared wait-free injector.  Both run the production
    build — probes and fault injection compiled out — so the rows also
    serve as the bench-gate's evidence that the functorized tiers
    erase. *)

type row = {
  bname : string;  (** workload label *)
  workers : int;
  total_tasks : int;  (** roots + subtasks actually executed *)
  elapsed_s : float;
  mtasks : float;  (** million tasks per second *)
}

val run_fan_out : workers:int -> roots:int -> subtasks:int -> int * float
(** One timed run: [roots] tasks each spawn [subtasks] children and
    await them all; returns (total tasks, elapsed seconds). *)

val run_pool_flat : workers:int -> tasks:int -> int * float
(** One timed run of the flat control through [Pool.submit]. *)

val default_rows : ?quick:bool -> unit -> row list
(** The EXPERIMENTS.md table: fan-out vs flat at 2 and 4 workers
    (quick mode shrinks the task count for CI). *)

val rows_to_json : row list -> Json.t
val pp_rows : Format.formatter -> row list -> unit
