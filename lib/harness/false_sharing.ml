(* The microbenchmark behind the padding decisions of this PR: N
   domains each hammer fetch-and-add on their *own* counter — zero
   logical sharing — and the only variable is layout.  Unpadded, the
   counters are adjacent two-word atomics, so up to 8 of them share
   one 128-byte padding unit and every FAA invalidates its neighbours'
   lines; padded, each counter owns a full unit — exactly the layout
   [Primitives.Atomic_prims.Real.Counters] gives the queue (same
   stride, same padded boxes).  On a multicore host the padded layout
   wins by the cache-coherence cost of the invalidations; on a
   single-core host (this one — see DESIGN.md §2.1) the lines never
   leave one L1 and the two layouts measure the same, which the
   experiment records honestly rather than fakes.

   Both arms run the *identical* closure over an [int Atomic.t array]
   — only the stride and box construction differ — so the comparison
   cannot be polluted by differing call or bounds-check overhead. *)

type result = {
  domains : int;
  ops_per_domain : int;
  padded_mops : float;
  unpadded_mops : float;
  speedup : float; (* padded over unpadded; > 1 means padding wins *)
}

(* Hammer [faa i] from domain [i]; return total Mops/s.  The barrier
   keeps domain-spawn latency out of the timed region, like
   [Runner.run_once]. *)
let hammer ~domains ~ops_per_domain ~(faa : int -> unit) =
  let barrier = Sync.Barrier.create (domains + 1) in
  let workers =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            Sync.Barrier.await barrier;
            for _ = 1 to ops_per_domain do
              faa i
            done))
  in
  Sync.Barrier.await barrier;
  let t0 = Primitives.Clock.now () in
  List.iter Domain.join workers;
  let elapsed_s = Primitives.Clock.now () -. t0 in
  float_of_int (domains * ops_per_domain) /. elapsed_s /. 1e6

(* One arm: counter [i] lives at slot [i * stride], each live box
   built by [make_box].  [stride = 1, Atomic.make] is the dense layout;
   [stride = Padding.cache_line_words, Padding.make_padded_atomic] is
   the [Real.Counters] layout.  All boxes are allocated in one sweep
   so the dense arm's boxes really are heap-adjacent — the worst case
   the padded layout defends against. *)
let arm ~make_box ~stride ~domains ~ops_per_domain =
  let c =
    Array.init
      (((domains - 1) * stride) + 1)
      (fun i -> if i mod stride = 0 then make_box 0 else Atomic.make 0)
  in
  let m =
    hammer ~domains ~ops_per_domain ~faa:(fun i -> ignore (Atomic.fetch_and_add c.(i * stride) 1))
  in
  assert (Atomic.get c.(0) = ops_per_domain);
  m

let median3 a b c = max (min a b) (min (max a b) c)

let run ?(ops_per_domain = 2_000_000) ~domains () =
  if domains < 1 then invalid_arg "False_sharing.run: domains must be >= 1";
  let padded () =
    arm ~make_box:Primitives.Padding.make_padded_atomic ~stride:Primitives.Padding.cache_line_words
      ~domains ~ops_per_domain
  in
  let unpadded () = arm ~make_box:Atomic.make ~stride:1 ~domains ~ops_per_domain in
  (* Interleave the reps so drift (thermal, other tenants) hits both
     layouts alike; the median of 3 drops one bad rep. *)
  let p1 = padded () and u1 = unpadded () in
  let p2 = padded () and u2 = unpadded () in
  let p3 = padded () and u3 = unpadded () in
  let padded_mops = median3 p1 p2 p3 in
  let unpadded_mops = median3 u1 u2 u3 in
  { domains; ops_per_domain; padded_mops; unpadded_mops; speedup = padded_mops /. unpadded_mops }

let experiment ?ops_per_domain ?(domains = [ 1; 2; 4; 8 ]) () =
  let results = List.map (fun d -> run ?ops_per_domain ~domains:d ()) domains in
  let t = Report.create ~header:[ "domains"; "padded Mops/s"; "unpadded Mops/s"; "speedup" ] in
  List.iter
    (fun r ->
      Report.add_row t
        [
          string_of_int r.domains;
          Report.cell_float r.padded_mops;
          Report.cell_float r.unpadded_mops;
          Report.cell_float r.speedup;
        ])
    results;
  Report.print ~title:"False sharing: independent per-domain FAA counters" t;
  (t, results)
