(** The bench regression gate: compares a current smoke-bench JSON
    document ([bench/main.exe --smoke --json]) against a committed
    baseline and decides pass/fail.

    Two families of checks:

    - {b throughput}: for every [(queue, threads)] point in the
      baseline's [figure2_pairs], the current mean must not fall more
      than [noise_mult] noise bands below the baseline mean, where the
      band is [max(upper - lower, rel_floor * mean)] — the confidence
      interval widened to a floor so a suspiciously tight baseline
      interval cannot turn measurement noise into failures.  A point
      missing from the current document fails (a dropped benchmark
      must not disable its own gate).
    - {b wait-freedom}: the current document's telemetry block must
      show a wf slow-path rate at [slow_rate_patience] of at most
      [max_slow_rate] — the paper's §6 claim, downgraded from 1e-6 to
      a CI-safe 1e-3 because smoke runs on a loaded shared runner see
      real preemption.

    Logic only — [bin/bench_gate.exe] is the CLI around it. *)

type point = { queue : string; threads : int; mean : float; lower : float; upper : float }

type check = { label : string; ok : bool; detail : string }

val points_of_doc : Json.t -> (point list, string) result
(** Extract [figure2_pairs] throughput points. *)

val telemetry_slow_rate : patience:int -> Json.t -> float option
(** The telemetry block's slow-path rate at the given patience, if the
    document carries one. *)

val default_noise_mult : float (** 3.0 *)

val default_rel_floor : float (** 0.10 *)

val default_max_slow_rate : float (** 1e-3 *)

val default_slow_rate_patience : int (** 10 *)

val compare_docs :
  ?noise_mult:float ->
  ?rel_floor:float ->
  ?max_slow_rate:float ->
  ?slow_rate_patience:int ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (check list, string) result
(** All checks, in baseline order.  [Error] means a document was
    structurally unusable (not a failed check). *)

val passed : check list -> bool

val pp_checks : Format.formatter -> check list -> unit
(** One PASS/FAIL line per check. *)
