(** The bench regression gate: compares a current smoke-bench JSON
    document ([bench/main.exe --smoke --json]) against a committed
    baseline and decides pass/fail.

    Two families of checks:

    - {b throughput}: for every [(queue, threads)] point in the
      baseline's [figure2_pairs], the current mean must not fall more
      than [noise_mult] noise bands below the baseline mean, where the
      band is [max(upper - lower, rel_floor * mean)] — the confidence
      interval widened to a floor so a suspiciously tight baseline
      interval cannot turn measurement noise into failures.  A point
      missing from the current document fails (a dropped benchmark
      must not disable its own gate).
    - {b wait-freedom}: the current document's telemetry block must
      show a wf slow-path rate at [slow_rate_patience] of at most
      [max_slow_rate] — the paper's §6 claim, downgraded from 1e-6 to
      a CI-safe 1e-3 because smoke runs on a loaded shared runner see
      real preemption.
    - {b allocation}: for every row in the baseline's [alloc_per_op]
      list (the deterministic {!Alloc_bench} numbers), the current
      words/op must satisfy
      [current <= max(alloc_ceiling, baseline + alloc_margin)].  The
      ceiling absorbs fraction-of-a-word jitter on rows whose baseline
      is zero; the margin bounds drift on rows that legitimately
      allocate.  Both defaults are below 2.0 words/op, so a regression
      that adds even one two-word box per operation fails.  A baseline
      without [alloc_per_op] (pre-PR-6) skips these checks with an
      explicit passing note; a current document missing the section
      when the baseline has it fails.

    Logic only — [bin/bench_gate.exe] is the CLI around it. *)

type point = { queue : string; threads : int; mean : float; lower : float; upper : float }

type check = { label : string; ok : bool; detail : string }

type alloc_point = { aqueue : string; words_per_op : float }

val points_of_doc : Json.t -> (point list, string) result
(** Extract [figure2_pairs] throughput points. *)

val alloc_points_of_doc : Json.t -> (alloc_point list option, string) result
(** Extract [alloc_per_op] rows.  [Ok None] when the document has no
    such section (a pre-PR-6 baseline); [Error] only when the section
    exists but is malformed. *)

val telemetry_slow_rate : patience:int -> Json.t -> float option
(** The telemetry block's slow-path rate at the given patience, if the
    document carries one. *)

val default_noise_mult : float (** 3.0 *)

val default_rel_floor : float (** 0.10 *)

val default_max_slow_rate : float (** 1e-3 *)

val default_slow_rate_patience : int (** 10 *)

val default_alloc_ceiling : float (** 0.5 words/op — absolute allowance *)

val default_alloc_margin : float (** 1.0 words/op — drift over baseline *)

val compare_docs :
  ?noise_mult:float ->
  ?rel_floor:float ->
  ?max_slow_rate:float ->
  ?slow_rate_patience:int ->
  ?alloc_ceiling:float ->
  ?alloc_margin:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (check list, string) result
(** All checks, in baseline order.  [Error] means a document was
    structurally unusable (not a failed check). *)

val passed : check list -> bool

val pp_checks : Format.formatter -> check list -> unit
(** One PASS/FAIL line per check. *)
