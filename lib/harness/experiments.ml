let default_threads = [ 1; 2; 4; 8; 16 ]

let spec_for kind ~quick ~total_ops =
  match total_ops with
  | Some n -> Workload.scaled kind ~total_ops:n
  | None -> if quick then Workload.scaled kind ~total_ops:400_000 else Workload.default kind

let row_of_platform (r : Platform.row) =
  [
    r.Platform.processor;
    Printf.sprintf "%.2f" r.Platform.clock_ghz;
    string_of_int r.Platform.processors;
    string_of_int r.Platform.cores;
    string_of_int r.Platform.hw_threads;
    r.Platform.cc_protocol;
    (if r.Platform.native_faa then "yes" else "no");
  ]

let table1 () =
  let t =
    Report.create
      ~header:[ "processor model"; "GHz"; "procs"; "cores"; "threads"; "cc proto"; "native FAA" ]
  in
  List.iter (fun r -> Report.add_row t (row_of_platform r)) Platform.paper_rows;
  Report.add_row t (row_of_platform (Platform.host ()));
  Report.print ~title:"Table 1: the paper's platforms (rows 1-4) and this host (last row)" t;
  t

type fig2_point = { queue : string; threads : int; interval : Stats.Student_t.interval }

let figure2_data ?(quick = false) ?(threads = default_threads) ?queues ?total_ops
    ?(title_note = "") kind =
  let queues = match queues with Some qs -> qs | None -> Queues.figure2_set in
  let spec = spec_for kind ~quick ~total_ops in
  let t =
    Report.create ~header:("queue" :: List.map (fun k -> Printf.sprintf "%dT Mops/s" k) threads)
  in
  let points = ref [] in
  let plotted =
    List.map
      (fun (f : Queues.factory) ->
        let intervals =
          List.map (fun k -> (Runner.measure ~quick f spec ~threads:k).Stats.Steady_state.interval)
            threads
        in
        Report.add_row t (f.Queues.name :: List.map Report.cell_ci intervals);
        List.iter2
          (fun k iv -> points := { queue = f.Queues.name; threads = k; interval = iv } :: !points)
          threads intervals;
        {
          Plot.label = f.Queues.name;
          points = Array.of_list (List.map (fun iv -> iv.Stats.Student_t.mean) intervals);
        })
      queues
  in
  let what =
    Printf.sprintf "Figure 2 (%s benchmark%s)" (Workload.kind_to_string kind) title_note
  in
  Report.print ~title:(what ^ ": throughput, think time excluded") t;
  Plot.print
    ~title:(what ^ " as a chart")
    ~x_labels:(List.map (fun k -> string_of_int k ^ "T") threads)
    ~y_label:"Mops/s" plotted;
  (t, List.rev !points)

let figure2 ?quick ?threads ?queues ?total_ops ?title_note kind =
  fst (figure2_data ?quick ?threads ?queues ?total_ops ?title_note kind)

(* Table 2 measures path percentages rather than time, so a single
   invocation of a few iterations per thread count suffices; the
   queue's counters accumulate across iterations. *)
let table2 ?(quick = false) ?threads ?total_ops () =
  let threads =
    match threads with
    | Some ts -> ts
    (* The paper uses {36, 72, 144, 288} on 72 hardware threads: the
       two largest are 2x and 4x oversubscribed.  With one hardware
       thread everything is oversubscribed; we keep the 1x..4x ratios
       of the paper's sweep shape. *)
    | None -> [ 4; 8; 16; 32 ]
  in
  let spec = spec_for Workload.Fifty_fifty ~quick ~total_ops in
  let factory = Queues.wf ~patience:0 () in
  let t =
    Report.create
      ~header:[ "threads"; "% slow-path enq"; "% slow-path deq"; "% empty deq"; "ops" ]
  in
  List.iter
    (fun k ->
      let instance = factory.Queues.make () in
      let iterations = if quick then 1 else 3 in
      for _ = 1 to iterations do
        ignore (Runner.run_once instance spec ~threads:k)
      done;
      match instance.Queues.op_stats () with
      | None -> assert false (* the WF factory always reports stats *)
      | Some stats ->
        Report.add_row t
          [
            string_of_int k;
            Printf.sprintf "%.3f" (Wfq.Op_stats.slow_enqueue_pct stats);
            Printf.sprintf "%.3f" (Wfq.Op_stats.slow_dequeue_pct stats);
            Printf.sprintf "%.3f" (Wfq.Op_stats.empty_dequeue_pct stats);
            string_of_int (Wfq.Op_stats.total_enqueues stats + Wfq.Op_stats.total_dequeues stats);
          ])
    threads;
  Report.print ~title:"Table 2: execution-path breakdown of WF-0, 50%-enqueues benchmark" t;
  t

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)

let one_number ~quick factory spec ~threads =
  let report = Runner.measure ~quick factory spec ~threads in
  Report.cell_ci report.Stats.Steady_state.interval

let ablation_patience ?(quick = false) ?(threads = 8) ?(values = [ 0; 1; 2; 10; 64 ]) ?total_ops
    () =
  let spec = spec_for Workload.Pairs ~quick ~total_ops in
  let t = Report.create ~header:[ "patience"; "Mops/s (pairs)" ] in
  List.iter
    (fun p ->
      Report.add_row t [ string_of_int p; one_number ~quick (Queues.wf ~patience:p ()) spec ~threads ])
    values;
  Report.print ~title:(Printf.sprintf "Ablation: PATIENCE (fast/slow cutover), %d threads" threads) t;
  t

let ablation_segment_size ?(quick = false) ?(threads = 8) ?(shifts = [ 4; 6; 8; 10; 12; 14 ])
    ?total_ops () =
  let spec = spec_for Workload.Pairs ~quick ~total_ops in
  let t = Report.create ~header:[ "segment cells"; "Mops/s (pairs)" ] in
  List.iter
    (fun s ->
      Report.add_row t
        [
          Printf.sprintf "2^%d" s;
          one_number ~quick (Queues.wf ~segment_shift:s ~name:(Printf.sprintf "wf-seg%d" s) ()) spec
            ~threads;
        ])
    shifts;
  Report.print ~title:(Printf.sprintf "Ablation: segment size N, %d threads" threads) t;
  t

let ablation_max_garbage ?(quick = false) ?(threads = 8) ?(values = [ 2; 4; 16; 64; 256 ])
    ?total_ops () =
  let spec = spec_for Workload.Pairs ~quick ~total_ops in
  let t = Report.create ~header:[ "max garbage"; "Mops/s (pairs)" ] in
  List.iter
    (fun g ->
      Report.add_row t
        [
          string_of_int g;
          one_number ~quick
            (Queues.wf ~max_garbage:g ~segment_shift:6 ~name:(Printf.sprintf "wf-mg%d" g) ())
            spec ~threads;
        ])
    values;
  Report.print
    ~title:
      (Printf.sprintf "Ablation: cleanup amortization threshold MAX_GARBAGE, %d threads" threads)
    t;
  t

let ablation_reclamation ?(quick = false) ?(threads = 8) ?total_ops () =
  let spec = spec_for Workload.Pairs ~quick ~total_ops in
  let t = Report.create ~header:[ "reclamation"; "Mops/s (pairs)" ] in
  List.iter
    (fun on ->
      Report.add_row t
        [
          (if on then "on" else "off");
          one_number ~quick
            (Queues.wf ~reclamation:on ~name:(if on then "wf-reclaim" else "wf-noreclaim") ())
            spec ~threads;
        ])
    [ true; false ];
  Report.print ~title:(Printf.sprintf "Ablation: memory reclamation on the hot path, %d threads" threads) t;
  t
