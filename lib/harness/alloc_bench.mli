(** Deterministic allocations-per-operation measurement — the numbers
    behind the CI alloc gate.

    Single-threaded enqueue/dequeue pairs, measured in steady state
    (after a warm-up long enough that retired segments are served back
    from the recycling pool), with a per-operation [Gc.minor_words]
    window around each call ({!Obs.Alloc_probe} accounting).  Unlike
    the {!Telemetry} alloc block — which measures whole-system words
    under real concurrency and is therefore noisy — these rows are
    reproducible to a fraction of a word, which is what a regression
    gate needs.

    The default rows tell the PR-6 story: the generic option API pays
    exactly its [Some] box, [dequeue_or] pays nothing, the
    instrumented build pays no extra words, and the int facade is zero
    end to end. *)

type row = {
  aname : string;
  pairs : int;
  via_dequeue_or : bool;  (** dequeues via [dequeue_or] (no option box) *)
  words_per_enqueue : float;
  words_per_dequeue : float;
  words_per_op : float;
}

val measure :
  ?warmup_pairs:int -> ?pairs:int -> ?via_dequeue_or:bool -> Queues.factory -> row
(** One steady-state measurement of a fresh instance.  Defaults:
    60k warm-up pairs (several cleanup cycles at the default segment
    geometry), 20k measured pairs, option-returning dequeue. *)

val measure_batch_into : ?warmup_pairs:int -> ?pairs:int -> ?batch:int -> unit -> row
(** Steady-state words/op of the caller-buffer batch API
    ([Wfqueue.enq_batch] + [Wfqueue.deq_batch_into] on the int queue):
    per-batch [Gc.minor_words] windows divided by [batch] (default 64),
    so the row reads in the same unit as the per-op rows.  Zero is the
    claim: no [Some] per cell, no result array, no batching-facade
    state. *)

val default_rows : ?warmup_pairs:int -> ?pairs:int -> unit -> row list
(** The gated set: wf-10 (option API), wf-10-deq-or, wf-10-obs-deq-or,
    wf-int-10, wf-10-deq-batch-into-64, and the topology variants
    (wf-spsc, wf-mpsc, wf-spmc, wf-shard-adaptive) which must hold the
    same hot-path zero. *)

val row_to_json : row -> Json.t
val rows_to_json : row list -> Json.t
val pp_rows : Format.formatter -> row list -> unit
