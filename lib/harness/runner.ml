type measurement = {
  threads : int;
  ops : int;
  elapsed_s : float;
  injected_ns : float;
  mops : float;
  mops_excl_work : float;
}

let max_threads = 120 (* OCaml caps live domains at 128; leave headroom *)

let expected_injected_ns (spec : Workload.spec) ~ops =
  match spec.work_ns with
  | None -> 0.0
  | Some (lo, hi) -> float_of_int ops *. (float_of_int (lo + hi) /. 2.0)

let run_once (instance : Queues.instance) (spec : Workload.spec) ~threads =
  if threads < 1 || threads > max_threads then
    invalid_arg (Printf.sprintf "Runner.run_once: threads must be in [1, %d]" max_threads);
  (* Calibrate outside the timed region. *)
  ignore (Primitives.Spin_work.calibrate ());
  let start_barrier = Sync.Barrier.create (threads + 1) in
  let done_counts = Array.make threads 0 in
  let workers =
    List.init threads (fun thread ->
        Domain.spawn (fun () ->
            let ops = instance.register () in
            let body = Workload.thread_body spec ~thread ops ~threads in
            Sync.Barrier.await start_barrier;
            done_counts.(thread) <- body ();
            (* Retire the worker's handle (one O(1) call after the
               measured ops): the steady-state loop reuses one
               instance across iterations, and without this every
               iteration would add [threads] dead handles to the
               helping ring, so later iterations would measure
               ring-scan overhead instead of the queue. *)
            ops.release ()))
  in
  Sync.Barrier.await start_barrier;
  let t0 = Primitives.Clock.now () in
  List.iter Domain.join workers;
  let elapsed_s = Primitives.Clock.now () -. t0 in
  let ops = Array.fold_left ( + ) 0 done_counts in
  let injected_ns = expected_injected_ns spec ~ops in
  let mops = float_of_int ops /. elapsed_s /. 1e6 in
  (* On this single-core host all spins serialize, so their wall cost
     is their sum; clamp to keep at least 10% of elapsed time in case
     calibration drifted. *)
  let work_wall_s = injected_ns /. 1e9 in
  let op_time_s = Float.max (elapsed_s -. work_wall_s) (elapsed_s *. 0.1) in
  let mops_excl_work = float_of_int ops /. op_time_s /. 1e6 in
  { threads; ops; elapsed_s; injected_ns; mops; mops_excl_work }

let measure ?(quick = false) (factory : Queues.factory) (spec : Workload.spec) ~threads =
  let invocations = if quick then 3 else 10 in
  let max_iterations = if quick then 5 else 20 in
  let window = if quick then 3 else 5 in
  let one_invocation () =
    let instance = factory.make () in
    Stats.Steady_state.run_invocation ~window ~max_iterations (fun () ->
        (run_once instance spec ~threads).mops_excl_work)
  in
  Stats.Steady_state.across_invocations ~invocations one_invocation
