(** Uniform access to every queue implementation under benchmark.

    Each {!factory} creates fresh queue {!instance}s; each instance
    hands out per-domain {!ops} (registering a handle where the
    implementation needs one).  Payloads are [int], as in the paper's
    benchmarks. *)

type ops = {
  enqueue : int -> unit;
  dequeue : unit -> int option;
  dequeue_or : int -> int;
      (* dequeue with an EMPTY default instead of the [Some] box.
         Native (allocation-free) for the WF family; derived from
         [dequeue] — same boxing, different shape — for baselines
         without a word-returning path, so alloc comparisons across
         [dequeue_or] are only meaningful for queues advertising it *)
  release : unit -> unit;
      (* handle retirement hook: called by the runner when the owning
         domain is done, so implementations with registration (the WF
         queues) can retire the handle and recycle its ring slot; a
         no-op for the other baselines *)
}

val make_ops :
  ?dequeue_or:(int -> int) ->
  enqueue:(int -> unit) ->
  dequeue:(unit -> int option) ->
  release:(unit -> unit) ->
  unit ->
  ops
(** Assemble an {!ops}, deriving [dequeue_or] from [dequeue] (option
    round trip included) when no native one is given. *)

type instance = {
  iname : string;
  register : unit -> ops; (* called once per participating domain *)
  op_stats : unit -> Wfq.Op_stats.t option; (* path breakdown, WF only *)
  reset_op_stats : unit -> unit;
  snapshot : unit -> Obs.Snapshot.t option;
      (* full telemetry snapshot (counters + segment/handle gauges),
         WF only; the event tier is non-zero only for [wf_obs] *)
}

type factory = {
  name : string; (* key used on the command line, e.g. "wf-10" *)
  description : string;
  is_real_queue : bool; (* false for the FAA microbenchmark *)
  make : unit -> instance;
}

val wf : ?patience:int -> ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool ->
  ?name:string -> unit -> factory
(** The paper's queue with explicit parameters (used by ablations). *)

val wf_obs : ?patience:int -> ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool ->
  ?name:string -> unit -> factory
(** Same queue, instrumented instantiation ([Wfq.Wfqueue_obs]): the
    probe's event tier is compiled in.  Its throughput delta against
    {!wf} is the measured cost of instrumentation. *)

val wf_int : ?patience:int -> ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool ->
  ?name:string -> unit -> factory
(** The int-specialized facade ([Wfq.Wfqueue_int]): same compiled
    queue as {!wf}, with dequeues routed through the allocation-free
    [dequeue_or] (EMPTY = [min_int]).  Its delta against {!wf} prices
    the generic API's option box. *)

val wf_shard :
  ?shards:int ->
  ?patience:int ->
  ?capacity:int ->
  ?rebalance_every:int ->
  ?name:string ->
  unit ->
  factory
(** Sharded router ([Shard.Wf]) over [shards] production queues:
    d-bounded relaxed FIFO, optionally bounded at [capacity] values
    per shard.  [op_stats]/[snapshot] fold the per-shard telemetry. *)

val wf_batch : ?batch:int -> ?patience:int -> ?name:string -> unit -> factory
(** One production queue driven through [enq_batch]/[deq_batch] with a
    client-side buffering facade: one tail FAA per [batch] enqueues,
    one head FAA per up-to-[batch] dequeues.  Values may sit in the
    per-handle buffer until the next dequeue or [release] flushes
    them, so cross-thread visibility is batch-delayed — the documented
    trade of the batching deployment shape. *)

val all : factory list
(** The evaluation set: wf-10, wf-0, wf-10-obs (instrumented), wf-int-10
    (int-specialized API), wf-shard-2/8 (sharded router), wf-batch-8
    (FAA batching), wf-llsc
    (CAS-emulated FAA, the paper's Power7 configuration), lcrq,
    ccqueue, msqueue, kp (Kogan-Petrank), two-lock, mutex, faa. *)

val figure2_set : factory list
(** The queues plotted in Figure 2 (all of [all] except the extra
    blocking baselines), plus the sharded/batched variants so the
    scaling tables cover them. *)

val find : string -> factory option
val names : unit -> string list
