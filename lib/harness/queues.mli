(** Uniform access to every queue implementation under benchmark.

    Each {!factory} creates fresh queue {!instance}s; each instance
    hands out per-domain {!ops} (registering a handle where the
    implementation needs one).  Payloads are [int], as in the paper's
    benchmarks. *)

type ops = {
  enqueue : int -> unit;
  dequeue : unit -> int option;
  dequeue_or : int -> int;
      (* dequeue with an EMPTY default instead of the [Some] box.
         Native (allocation-free) for the WF family; derived from
         [dequeue] — same boxing, different shape — for baselines
         without a word-returning path, so alloc comparisons across
         [dequeue_or] are only meaningful for queues advertising it *)
  release : unit -> unit;
      (* handle retirement hook: called by the runner when the owning
         domain is done, so implementations with registration (the WF
         queues) can retire the handle and recycle its ring slot; a
         no-op for the other baselines *)
}

val make_ops :
  ?dequeue_or:(int -> int) ->
  enqueue:(int -> unit) ->
  dequeue:(unit -> int option) ->
  release:(unit -> unit) ->
  unit ->
  ops
(** Assemble an {!ops}, deriving [dequeue_or] from [dequeue] (option
    round trip included) when no native one is given. *)

type instance = {
  iname : string;
  register : unit -> ops; (* called once per participating domain *)
  op_stats : unit -> Wfq.Op_stats.t option; (* path breakdown, WF only *)
  reset_op_stats : unit -> unit;
  snapshot : unit -> Obs.Snapshot.t option;
      (* full telemetry snapshot (counters + segment/handle gauges),
         WF only; the event tier is non-zero only for [wf_obs] *)
}

type factory = {
  name : string; (* key used on the command line, e.g. "wf-10" *)
  description : string;
  is_real_queue : bool; (* false for the FAA microbenchmark *)
  make : unit -> instance;
}

val wf : ?patience:int -> ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool ->
  ?name:string -> unit -> factory
(** The paper's queue with explicit parameters (used by ablations). *)

val wf_obs : ?patience:int -> ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool ->
  ?name:string -> unit -> factory
(** Same queue, instrumented instantiation ([Wfq.Wfqueue_obs]): the
    probe's event tier is compiled in.  Its throughput delta against
    {!wf} is the measured cost of instrumentation. *)

val wf_int : ?patience:int -> ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool ->
  ?name:string -> unit -> factory
(** The int-specialized facade ([Wfq.Wfqueue_int]): same compiled
    queue as {!wf}, with dequeues routed through the allocation-free
    [dequeue_or] (EMPTY = [min_int]).  Its delta against {!wf} prices
    the generic API's option box. *)

val wf_shard :
  ?shards:int ->
  ?patience:int ->
  ?capacity:int ->
  ?rebalance_every:int ->
  ?name:string ->
  unit ->
  factory
(** Sharded router ([Shard.Wf]) over [shards] production queues:
    d-bounded relaxed FIFO, optionally bounded at [capacity] values
    per shard.  [op_stats]/[snapshot] fold the per-shard telemetry. *)

val wf_batch : ?batch:int -> ?patience:int -> ?name:string -> unit -> factory
(** One production queue driven through [enq_batch]/[deq_batch] with a
    client-side buffering facade: one tail FAA per [batch] enqueues,
    one head FAA per up-to-[batch] dequeues.  Values may sit in the
    per-handle buffer until the next dequeue or [release] flushes
    them, so cross-thread visibility is batch-delayed — the documented
    trade of the batching deployment shape. *)

val wf_spsc :
  ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool -> ?name:string -> unit -> factory
(** The specialized SPSC variant ([Topology.Spsc]): plain load/store
    cell handshake, no FAA or CAS on the hot path.  The single bench
    handle legally holds both roles; a concurrent second producer or
    consumer would be rejected by the role claim, so this factory is
    in {!all} (single-threaded pair) but not {!figure2_set} — its
    multi-threaded numbers come from [Topology_bench]. *)

val wf_mpsc :
  ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool -> ?name:string -> unit -> factory
(** The specialized MPSC variant ([Topology.Mpsc]): FAA-ticketed
    producers, CAS-free single consumer.  Same registration rules as
    {!wf_spsc}. *)

val wf_spmc :
  ?segment_shift:int -> ?max_garbage:int -> ?reclamation:bool -> ?name:string -> unit -> factory
(** The specialized SPMC variant ([Topology.Spmc]): FAA-ticketed
    consumers, CAS-free single producer.  Same registration rules as
    {!wf_spsc}. *)

val wf_shard_adaptive :
  ?shards:int -> ?capacity:int -> ?rebalance_every:int -> ?name:string -> unit -> factory
(** Sharded router over topology-adaptive shards ([Shard.Adaptive]):
    each shard starts SPSC and degrades toward the general queue as
    roles accumulate.  Safe in any workload, so it joins
    {!figure2_set} too.  The seen-role counters are monotone, so the
    bechamel allocate/free cycle (fresh handle per run) degrades the
    shards after the first cycle — the steady state measured is the
    general backend plus dispatch, the honest number for
    handle-churning callers. *)

val wf_bounded :
  ?patience:int ->
  ?segment_cap:int ->
  ?segment_shift:int ->
  ?max_garbage:int ->
  ?name:string ->
  unit ->
  factory
(** The bounded-memory build of the production queue
    ([Wfqueue.create ~segment_cap], default cap 64 segments): hard
    segment bound, freelist-recycled segments, blocking backpressure
    on exhaustion.  Benched against {!wf} to price the bounded
    bookkeeping on a workload that never hits the cap. *)

val scq : ?order:int -> ?name:string -> unit -> factory
(** Nikolaev's SCQ ([Baselines.Scq], arXiv:1908.04511): the bounded
    lock-free ring baseline, capacity [2^order] (default [2^12]).
    [enqueue] spins on a full ring; [dequeue_or] is native. *)

val all : factory list
(** The evaluation set: wf-10, wf-0, wf-10-obs (instrumented), wf-int-10
    (int-specialized API), wf-shard-2/8 (sharded router), wf-batch-8
    (FAA batching), wf-spsc/wf-mpsc/wf-spmc (specialized topology
    variants), wf-shard-adaptive, wf-bounded (capped segment
    freelist), wf-llsc
    (CAS-emulated FAA, the paper's Power7 configuration), scq
    (bounded ring), lcrq,
    ccqueue, msqueue, kp (Kogan-Petrank), two-lock, mutex, faa. *)

val figure2_set : factory list
(** The queues plotted in Figure 2 (all of [all] except the extra
    blocking baselines), plus the sharded/batched/adaptive variants so
    the scaling tables cover them.  The raw specialized variants are
    excluded: the multi-thread pairs workload violates their topology
    contract by construction. *)

val find : string -> factory option
val names : unit -> string list
