(** Minimal JSON codec for [bench/main.exe --json] and the bench
    regression gate (no external dependency).

    The emitter and parser round-trip: for any [t] free of non-finite
    floats, [of_string (to_string t) = Ok t] structurally — floats are
    emitted in shortest-round-trip decimal form with a trailing [.0]
    to keep integral values in {!Float}.  Non-finite floats encode as
    [null] (JSON has no NaN/Infinity literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline. *)

val save : t -> path:string -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.
    Numbers containing ['.'], ['e'] or ['E'] parse as {!Float}, others
    as {!Int} (falling back to {!Float} beyond [max_int]). *)

val load : path:string -> (t, string) result

val equal : t -> t -> bool
(** Structural equality.  Object fields compare in order — two objects
    with the same bindings in different order are unequal (the
    emitter's output order is deterministic, so round-trips are
    unaffected).  NaN equals NaN. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    non-objects. *)

val to_float_opt : t -> float option
(** Numeric payload: [Float f] gives [f], [Int i] gives
    [float_of_int i]. *)

val to_int_opt : t -> int option
val to_list_opt : t -> t list option
val to_string_opt : t -> string option
