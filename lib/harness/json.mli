(** Minimal JSON encoding for [bench/main.exe --json] (no external
    dependency; encoding only).  Non-finite floats encode as [null] —
    JSON has no NaN/Infinity literals. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline. *)

val save : t -> path:string -> unit
