(* See telemetry.mli. *)

type run_result = {
  threads : int;
  ops : int;
  elapsed_s : float;
  mops : float;
  snapshot : Obs.Snapshot.t option;
  latency : Obs.Op_latency.t;
  alloc : Obs.Alloc_probe.t;
}

(* Wrap each operation in a latency window and a minor-words window.
   Window nesting matters: the [Int64] clock reads box, so the alloc
   window ([Gc.minor_words] before/after the bare operation) sits
   strictly inside the latency window — the meter's own bookkeeping
   lands outside what it measures.  Concurrent runs include the real
   contention effects (segment churn, helping), so these are
   whole-system words/op; the deterministic steady-state number the CI
   gate pins comes from [Alloc_bench]. *)
let timed_ops (ops : Queues.ops) (lat : Obs.Op_latency.t) (alloc : Obs.Alloc_probe.t) =
  let time cls acls f =
    let t0 = Primitives.Clock.now_ns () in
    let w0 = Gc.minor_words () in
    let r = f () in
    let w1 = Gc.minor_words () in
    let t1 = Primitives.Clock.now_ns () in
    Obs.Alloc_probe.record alloc acls (w1 -. w0);
    Obs.Op_latency.record lat (cls r) (Int64.to_float (Int64.sub t1 t0));
    r
  in
  Queues.make_ops
    ~enqueue:(fun v ->
      time (fun () -> Obs.Op_latency.Enqueue) Obs.Alloc_probe.Enqueue (fun () ->
          ops.Queues.enqueue v))
    ~dequeue:(fun () ->
      time
        (function Some _ -> Obs.Op_latency.Dequeue | None -> Obs.Op_latency.Dequeue_empty)
        Obs.Alloc_probe.Dequeue
        (fun () -> ops.Queues.dequeue ()))
    ~dequeue_or:(fun d ->
      time
        (fun r -> if r = d then Obs.Op_latency.Dequeue_empty else Obs.Op_latency.Dequeue)
        Obs.Alloc_probe.Dequeue
        (fun () -> ops.Queues.dequeue_or d))
    ~release:ops.Queues.release ()

let run (instance : Queues.instance) (spec : Workload.spec) ~threads =
  if threads < 1 || threads > Runner.max_threads then
    invalid_arg
      (Printf.sprintf "Telemetry.run: threads must be in [1, %d]" Runner.max_threads);
  ignore (Primitives.Spin_work.calibrate ());
  let start_barrier = Sync.Barrier.create (threads + 1) in
  let done_counts = Array.make threads 0 in
  let latencies = Array.init threads (fun _ -> Obs.Op_latency.create ()) in
  (* one accumulator per worker: [Gc.minor_words] counts the calling
     domain only, so cross-domain sharing would both race and
     misattribute *)
  let allocs = Array.init threads (fun _ -> Obs.Alloc_probe.create ()) in
  let workers =
    List.init threads (fun thread ->
        Domain.spawn (fun () ->
            let ops =
              timed_ops (instance.Queues.register ()) latencies.(thread) allocs.(thread)
            in
            let body = Workload.thread_body spec ~thread ops ~threads in
            Sync.Barrier.await start_barrier;
            done_counts.(thread) <- body ();
            ops.release ()))
  in
  Sync.Barrier.await start_barrier;
  let t0 = Primitives.Clock.now () in
  List.iter Domain.join workers;
  let elapsed_s = Primitives.Clock.now () -. t0 in
  let ops = Array.fold_left ( + ) 0 done_counts in
  let latency = Obs.Op_latency.create () in
  Array.iter (fun l -> Obs.Op_latency.merge_into ~into:latency l) latencies;
  let alloc = Obs.Alloc_probe.create () in
  Array.iter (fun a -> Obs.Alloc_probe.merge_into ~into:alloc a) allocs;
  {
    threads;
    ops;
    elapsed_s;
    mops = (float_of_int ops /. elapsed_s /. 1e6);
    snapshot = instance.Queues.snapshot ();
    latency;
    alloc;
  }

(* ----------------------------- the patience table ----------------- *)

type row = { patience : int; result : run_result }

let default_patiences = [ 0; 1; 10; 64 ]

let stats_table ?(kind = Workload.Fifty_fifty) ?(patiences = default_patiences)
    ?(total_ops = 400_000) ~threads () =
  List.map
    (fun patience ->
      let factory = Queues.wf_obs ~patience () in
      let instance = factory.Queues.make () in
      let spec = { (Workload.scaled kind ~total_ops) with work_ns = None } in
      { patience; result = run instance spec ~threads })
    patiences

let pp_table fmt rows =
  let line = String.make 78 '-' in
  Format.fprintf fmt "%s@\n" line;
  Format.fprintf fmt "%8s %9s %9s %10s %10s %9s %9s %9s@\n" "patience" "ops" "Mops/s"
    "slow/Mop" "enq-slow%" "deq-slow%" "cas-fail" "helps";
  Format.fprintf fmt "%s@\n" line;
  List.iter
    (fun { patience; result } ->
      match result.snapshot with
      | None -> Format.fprintf fmt "%8d (no snapshot)@\n" patience
      | Some snap ->
        let c = snap.Obs.Snapshot.ops in
        Format.fprintf fmt "%8d %9d %9.3f %10.1f %10.4f %9.4f %9d %9d@\n" patience
          result.ops result.mops
          (Obs.Counters.per_million (Obs.Counters.slow_rate c))
          (Obs.Counters.slow_enqueue_pct c)
          (Obs.Counters.slow_dequeue_pct c)
          (c.Obs.Counters.enq_cas_failures + c.Obs.Counters.deq_cas_failures)
          (c.Obs.Counters.help_enqueues + c.Obs.Counters.help_dequeues))
    rows;
  Format.fprintf fmt "%s@\n" line

(* ----------------------------- JSON ------------------------------- *)

let counters_to_json (c : Obs.Counters.t) =
  Json.Obj
    [
      ("fast_enqueues", Json.Int c.fast_enqueues);
      ("slow_enqueues", Json.Int c.slow_enqueues);
      ("fast_dequeues", Json.Int c.fast_dequeues);
      ("slow_dequeues", Json.Int c.slow_dequeues);
      ("empty_dequeues", Json.Int c.empty_dequeues);
      ("enq_cas_failures", Json.Int c.enq_cas_failures);
      ("deq_cas_failures", Json.Int c.deq_cas_failures);
      ("cells_skipped", Json.Int c.cells_skipped);
      ("help_enqueues", Json.Int c.help_enqueues);
      ("help_dequeues", Json.Int c.help_dequeues);
      ("slow_enqueue_rate", Json.Float (Obs.Counters.slow_enqueue_rate c));
      ("slow_dequeue_rate", Json.Float (Obs.Counters.slow_dequeue_rate c));
      ("slow_rate", Json.Float (Obs.Counters.slow_rate c));
    ]

let snapshot_to_json (s : Obs.Snapshot.t) =
  Json.Obj
    [
      ("ops", counters_to_json s.ops);
      ( "segments",
        Json.Obj
          [
            ("allocated", Json.Int s.segments.allocated);
            ("reclaimed", Json.Int s.segments.reclaimed);
            ("recycled", Json.Int s.segments.recycled);
            ("wasted", Json.Int s.segments.wasted);
            ("pooled", Json.Int s.segments.pooled);
            ("live", Json.Int s.segments.live);
            ("cleanups", Json.Int s.segments.cleanups);
          ] );
      ( "handles",
        Json.Obj
          [
            ("ring", Json.Int s.handles.ring);
            ("live", Json.Int s.handles.live);
            ("free_slots", Json.Int s.handles.free_slots);
          ] );
      ("patience", Json.Int s.patience);
      ("probe_enabled", Json.Bool s.probe_enabled);
    ]

let latency_to_json lat =
  Json.Obj
    (List.map
       (fun cls ->
         let s = Obs.Op_latency.summarize lat cls in
         ( Obs.Op_latency.class_name cls,
           Json.Obj
             [
               ("samples", Json.Int s.samples);
               ("p50_ns", Json.Float s.p50_ns);
               ("p90_ns", Json.Float s.p90_ns);
               ("p99_ns", Json.Float s.p99_ns);
               ("max_ns", Json.Float s.max_ns);
             ] ))
       Obs.Op_latency.classes)

let alloc_to_json (a : Obs.Alloc_probe.t) =
  Json.Obj
    [
      ("enq_ops", Json.Float a.enq_ops);
      ("deq_ops", Json.Float a.deq_ops);
      ("words_per_enqueue", Json.Float (Obs.Alloc_probe.words_per_enqueue a));
      ("words_per_dequeue", Json.Float (Obs.Alloc_probe.words_per_dequeue a));
      ("words_per_op", Json.Float (Obs.Alloc_probe.words_per_op a));
    ]

let run_result_to_json r =
  Json.Obj
    ([
       ("threads", Json.Int r.threads);
       ("ops", Json.Int r.ops);
       ("elapsed_s", Json.Float r.elapsed_s);
       ("mops", Json.Float r.mops);
       ("latency_ns", latency_to_json r.latency);
       ("alloc", alloc_to_json r.alloc);
     ]
    @ match r.snapshot with None -> [] | Some s -> [ ("snapshot", snapshot_to_json s) ])

let table_to_json rows =
  Json.List
    (List.map
       (fun { patience; result } ->
         Json.Obj [ ("patience", Json.Int patience); ("run", run_result_to_json result) ])
       rows)
