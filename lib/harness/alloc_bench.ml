(* See alloc_bench.mli. *)

type row = {
  aname : string;
  pairs : int;
  via_dequeue_or : bool;
  words_per_enqueue : float;
  words_per_dequeue : float;
  words_per_op : float;
}

let measure ?(warmup_pairs = 60_000) ?(pairs = 20_000) ?(via_dequeue_or = false)
    (factory : Queues.factory) =
  let instance = factory.Queues.make () in
  let ops = instance.Queues.register () in
  (* drive the queue into its recycling steady state: enough pairs to
     cross several cleanup thresholds (max_garbage segments each) and
     fill the segment pool, so the measured window is served from the
     pool, not from fresh segment allocation *)
  if via_dequeue_or then
    for i = 0 to warmup_pairs - 1 do
      ops.Queues.enqueue i;
      ignore (ops.Queues.dequeue_or min_int)
    done
  else
    for i = 0 to warmup_pairs - 1 do
      ops.Queues.enqueue i;
      ignore (ops.Queues.dequeue ())
    done;
  let acc = Obs.Alloc_probe.create () in
  (* per-op minor-words windows: the accumulator update (and the float
     boxing of the delta argument) happens between windows, so the
     meter never counts itself *)
  if via_dequeue_or then
    for i = 0 to pairs - 1 do
      let w0 = Gc.minor_words () in
      ops.Queues.enqueue i;
      Obs.Alloc_probe.record acc Obs.Alloc_probe.Enqueue (Gc.minor_words () -. w0);
      let w0 = Gc.minor_words () in
      ignore (ops.Queues.dequeue_or min_int);
      Obs.Alloc_probe.record acc Obs.Alloc_probe.Dequeue (Gc.minor_words () -. w0)
    done
  else
    for i = 0 to pairs - 1 do
      let w0 = Gc.minor_words () in
      ops.Queues.enqueue i;
      Obs.Alloc_probe.record acc Obs.Alloc_probe.Enqueue (Gc.minor_words () -. w0);
      let w0 = Gc.minor_words () in
      ignore (ops.Queues.dequeue ());
      Obs.Alloc_probe.record acc Obs.Alloc_probe.Dequeue (Gc.minor_words () -. w0)
    done;
  ops.Queues.release ();
  {
    aname = factory.Queues.name;
    pairs;
    via_dequeue_or;
    words_per_enqueue = Obs.Alloc_probe.words_per_enqueue acc;
    words_per_dequeue = Obs.Alloc_probe.words_per_dequeue acc;
    words_per_op = Obs.Alloc_probe.words_per_op acc;
  }

(* The batch round trip through the caller-buffer API: one
   [enq_batch] of [batch] ints, one [deq_batch_into] refilling the
   same buffer.  Deltas are divided by [batch] before recording, so
   the row reads in the same words-per-operation unit as the others.
   Runs on the int production queue directly — the point of the API
   is that the whole round trip, batching included, allocates
   nothing. *)
let measure_batch_into ?(warmup_pairs = 60_000) ?(pairs = 20_000) ?(batch = 64) () =
  let q = Wfq.Wfqueue_int.create ~patience:10 () in
  let h = Wfq.Wfqueue_int.register q in
  let buf = Array.init batch (fun i -> i) in
  let rounds = max 1 (warmup_pairs / batch) in
  for _ = 1 to rounds do
    Wfq.Wfqueue_int.enq_batch q h buf;
    ignore (Wfq.Wfqueue_int.deq_batch_into q h buf ~default:min_int)
  done;
  let acc = Obs.Alloc_probe.create () in
  let fbatch = float_of_int batch in
  let rounds = max 1 (pairs / batch) in
  for _ = 1 to rounds do
    let w0 = Gc.minor_words () in
    Wfq.Wfqueue_int.enq_batch q h buf;
    let w1 = Gc.minor_words () in
    for _ = 1 to batch do
      Obs.Alloc_probe.record acc Obs.Alloc_probe.Enqueue ((w1 -. w0) /. fbatch)
    done;
    let w0 = Gc.minor_words () in
    let n = Wfq.Wfqueue_int.deq_batch_into q h buf ~default:min_int in
    let w1 = Gc.minor_words () in
    for _ = 1 to batch do
      Obs.Alloc_probe.record acc Obs.Alloc_probe.Dequeue ((w1 -. w0) /. fbatch)
    done;
    (* the batch dequeue returns everything the batch enqueue put in,
       so the buffer stays full for the next round *)
    if n < batch then Array.fill buf n (batch - n) 0
  done;
  Wfq.Wfqueue_int.retire q h;
  {
    aname = Printf.sprintf "wf-10-deq-batch-into-%d" batch;
    pairs = rounds * batch;
    via_dequeue_or = true;
    words_per_enqueue = Obs.Alloc_probe.words_per_enqueue acc;
    words_per_dequeue = Obs.Alloc_probe.words_per_dequeue acc;
    words_per_op = Obs.Alloc_probe.words_per_op acc;
  }

let default_rows ?warmup_pairs ?pairs () =
  [
    (* the generic option API: its words/op is the Some box, by design *)
    measure ?warmup_pairs ?pairs (Queues.wf ~patience:10 ());
    (* the same build through dequeue_or: the zero the CI gate pins *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true
      (Queues.wf ~patience:10 ~name:"wf-10-deq-or" ());
    (* instrumented build: the event tier must add no words *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true
      (Queues.wf_obs ~patience:10 ~name:"wf-10-obs-deq-or" ());
    (* the int facade end to end *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true (Queues.wf_int ~patience:10 ());
    (* the caller-buffer batch API: zero words for the whole round trip *)
    measure_batch_into ?warmup_pairs ?pairs ();
    (* the specialized topology variants: each must hold the same zero *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true (Queues.wf_spsc ());
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true (Queues.wf_mpsc ());
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true (Queues.wf_spmc ());
    (* adaptive shards: single-handle steady state stays on SPSC *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true (Queues.wf_shard_adaptive ());
    (* bounded-memory mode: the cap bookkeeping (admission reads, the
       budget FAA, pool recycling) must add no words per operation *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true
      (Queues.wf_bounded ~name:"wf-bounded-deq-or" ());
    (* the SCQ ring baseline: a fixed array, so the steady state has
       nothing to allocate at all *)
    measure ?warmup_pairs ?pairs ~via_dequeue_or:true (Queues.scq ~name:"scq-deq-or" ());
  ]

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.aname);
      ("pairs", Json.Int r.pairs);
      ("via_dequeue_or", Json.Bool r.via_dequeue_or);
      ("words_per_enqueue", Json.Float r.words_per_enqueue);
      ("words_per_dequeue", Json.Float r.words_per_dequeue);
      ("words_per_op", Json.Float r.words_per_op);
    ]

let rows_to_json rows = Json.List (List.map row_to_json rows)

let pp_rows fmt rows =
  let line = String.make 66 '-' in
  Format.fprintf fmt "%s@\n" line;
  Format.fprintf fmt "%-18s %9s %5s %10s %10s %10s@\n" "queue" "pairs" "api" "w/enq" "w/deq"
    "w/op";
  Format.fprintf fmt "%s@\n" line;
  List.iter
    (fun r ->
      Format.fprintf fmt "%-18s %9d %5s %10.4f %10.4f %10.4f@\n" r.aname r.pairs
        (if r.via_dequeue_or then "or" else "opt")
        r.words_per_enqueue r.words_per_dequeue r.words_per_op)
    rows;
  Format.fprintf fmt "%s@\n" line
