(* The allocation discipline, pinned: the disabled-probe fast path
   allocates zero minor words per enqueue/dequeue pair, the option API
   pays exactly its [Some] box, the Alloc_probe accumulator and gated
   meter account correctly, the int facade is behaviorally identical
   to the generic queue, dequeue_or linearizes under simsched
   schedules, and the Gate's alloc checks fail on the regressions they
   exist to catch.

   Methodology for the zero assertions: [Gc.minor_words] is an exact
   per-domain allocation counter (not a sampled statistic), so after
   driving the queue into its recycling steady state the fast path
   should show literally 0.0 words for almost every operation.  The
   tolerance exists for the operations that legitimately are not
   fast-path-only: a cleanup pass fires every [max_garbage] segments
   and allocates a few scan refs, and the occasional pool miss builds
   a segment.  Those are rare and bounded, so the aggregate mean stays
   far below one word/op — and an accidental box on the hot path (2
   words on every op) clears the tolerance by 20x. *)

module Q = Wfq.Wfqueue
module Qi = Wfq.Wfqueue_int
module AP = Obs.Alloc_probe

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Alloc_probe accounting                                              *)

let test_probe_accounting () =
  let a = AP.create () in
  check (Alcotest.float 0.0) "fresh words/op" 0.0 (AP.words_per_op a);
  AP.record a AP.Enqueue 0.0;
  AP.record a AP.Enqueue 4.0;
  AP.record a AP.Dequeue 2.0;
  check (Alcotest.float 1e-9) "enq ops" 2.0 (AP.ops a AP.Enqueue);
  check (Alcotest.float 1e-9) "enq words" 4.0 (AP.words a AP.Enqueue);
  check (Alcotest.float 1e-9) "deq ops" 1.0 (AP.ops a AP.Dequeue);
  check (Alcotest.float 1e-9) "words/enq" 2.0 (AP.words_per_enqueue a);
  check (Alcotest.float 1e-9) "words/deq" 2.0 (AP.words_per_dequeue a);
  check (Alcotest.float 1e-9) "words/op" 2.0 (AP.words_per_op a);
  let b = AP.create () in
  AP.record b AP.Dequeue 6.0;
  AP.merge_into ~into:a b;
  check (Alcotest.float 1e-9) "merged deq ops" 2.0 (AP.ops a AP.Dequeue);
  check (Alcotest.float 1e-9) "merged deq words" 8.0 (AP.words a AP.Dequeue);
  check (Alcotest.float 1e-9) "source untouched" 1.0 (AP.ops b AP.Dequeue);
  AP.reset a;
  check (Alcotest.float 0.0) "reset" 0.0 (AP.ops a AP.Enqueue +. AP.ops a AP.Dequeue)

let test_meter_disabled () =
  let module M = AP.Meter (Obs.Probe.Disabled) in
  Alcotest.(check bool) "disabled" false M.enabled;
  check Alcotest.int "start is 0" 0 (M.start ());
  let a = AP.create () in
  let w0 = M.start () in
  ignore (Sys.opaque_identity (ref 42));
  M.record a AP.Enqueue w0;
  check (Alcotest.float 0.0) "record is a no-op" 0.0 (AP.ops a AP.Enqueue)

let test_meter_enabled () =
  let module M = AP.Meter (Obs.Probe.Enabled) in
  Alcotest.(check bool) "enabled" true M.enabled;
  let a = AP.create () in
  (* a window around a known allocation: one ref = header + field *)
  let w0 = M.start () in
  ignore (Sys.opaque_identity (ref 42));
  M.record a AP.Dequeue w0;
  check (Alcotest.float 1e-9) "one op" 1.0 (AP.ops a AP.Dequeue);
  check (Alcotest.float 1e-9)
    (Printf.sprintf "window saw exactly the ref (%.1f words)" (AP.words a AP.Dequeue))
    2.0 (AP.words a AP.Dequeue);
  (* a window around nothing: the int handle crosses the record call
     unboxed, so the meter measures literally zero for itself *)
  let before = AP.words a AP.Dequeue in
  let w0 = M.start () in
  M.record a AP.Dequeue w0;
  check (Alcotest.float 1e-9) "empty window adds 0" before (AP.words a AP.Dequeue)

(* ------------------------------------------------------------------ *)
(* The zero-allocation fast path                                       *)

(* Measure [pairs] enqueue/dequeue pairs in steady state with a per-op
   window each, returning (mean words/op, fraction of ops with a
   literally-zero window). *)
let measure_pairs ~warmup ~pairs ~enq ~deq =
  for i = 0 to warmup - 1 do
    enq i;
    deq ()
  done;
  let total = ref 0.0 and zero = ref 0 in
  let window f =
    let w0 = Gc.minor_words () in
    f ();
    let d = Gc.minor_words () -. w0 in
    total := !total +. d;
    if d = 0.0 then incr zero
  in
  for i = 0 to pairs - 1 do
    window (fun () -> enq i);
    window (fun () -> deq ())
  done;
  let ops = float_of_int (2 * pairs) in
  (!total /. ops, float_of_int !zero /. ops)

let test_generic_dequeue_or_zero () =
  let q = Q.create ~patience:10 () in
  let h = Q.register q in
  let wpo, zero_frac =
    measure_pairs ~warmup:60_000 ~pairs:20_000
      ~enq:(fun i -> Q.enqueue q h i)
      ~deq:(fun () -> ignore (Q.dequeue_or q h min_int))
  in
  Alcotest.(check bool)
    (Printf.sprintf "words/op %.4f <= 0.1" wpo)
    true (wpo <= 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "%.4f of ops exactly zero" zero_frac)
    true (zero_frac >= 0.99)

let test_int_facade_zero () =
  let q = Qi.create ~patience:10 () in
  let h = Qi.register q in
  let wpo, zero_frac =
    measure_pairs ~warmup:60_000 ~pairs:20_000
      ~enq:(fun i -> Qi.enqueue q h i)
      ~deq:(fun () -> ignore (Qi.dequeue_or q h min_int))
  in
  Alcotest.(check bool)
    (Printf.sprintf "words/op %.4f <= 0.1" wpo)
    true (wpo <= 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "%.4f of ops exactly zero" zero_frac)
    true (zero_frac >= 0.99)

let test_option_api_pays_the_box () =
  (* the option dequeue allocates its [Some] box — and nothing else:
     words/op lands at ~1.0 (2 words on the dequeue, 0 on the
     enqueue) *)
  let q = Q.create ~patience:10 () in
  let h = Q.register q in
  let wpo, _ =
    measure_pairs ~warmup:60_000 ~pairs:20_000
      ~enq:(fun i -> Q.enqueue q h i)
      ~deq:(fun () -> ignore (Q.dequeue q h))
  in
  Alcotest.(check bool)
    (Printf.sprintf "words/op %.4f in [0.9, 1.2]" wpo)
    true
    (wpo >= 0.9 && wpo <= 1.2)

let test_instrumented_build_zero () =
  (* the event-counter tier (Probe.Enabled) mutates unboxed int fields
     — enabling it must not add words *)
  let module Qo = Wfq.Wfqueue_obs in
  let q = Qo.create ~patience:10 () in
  let h = Qo.register q in
  let wpo, zero_frac =
    measure_pairs ~warmup:60_000 ~pairs:20_000
      ~enq:(fun i -> Qo.enqueue q h i)
      ~deq:(fun () -> ignore (Qo.dequeue_or q h min_int))
  in
  Alcotest.(check bool)
    (Printf.sprintf "words/op %.4f <= 0.1" wpo)
    true (wpo <= 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "%.4f of ops exactly zero" zero_frac)
    true (zero_frac >= 0.99)

let test_alloc_bench_row () =
  (* the harness measurement agrees with the direct one and carries
     the factory's name through *)
  let row =
    Harness.Alloc_bench.measure ~warmup_pairs:20_000 ~pairs:5_000 ~via_dequeue_or:true
      (Harness.Queues.wf ~patience:10 ())
  in
  check Alcotest.string "name" "wf-10" row.Harness.Alloc_bench.aname;
  Alcotest.(check bool)
    (Printf.sprintf "row words/op %.4f <= 0.1" row.Harness.Alloc_bench.words_per_op)
    true
    (row.Harness.Alloc_bench.words_per_op <= 0.1)

let test_alloc_bounded_and_scq_zero () =
  (* the PR 9 additions to the gate: bounded mode's cap bookkeeping
     and the SCQ ring baseline both hold the hot-path zero *)
  List.iter
    (fun f ->
      let row =
        Harness.Alloc_bench.measure ~warmup_pairs:20_000 ~pairs:5_000 ~via_dequeue_or:true f
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s words/op %.4f <= 0.1" row.Harness.Alloc_bench.aname
           row.Harness.Alloc_bench.words_per_op)
        true
        (row.Harness.Alloc_bench.words_per_op <= 0.1))
    [ Harness.Queues.wf_bounded (); Harness.Queues.scq () ]

(* ------------------------------------------------------------------ *)
(* dequeue_or semantics and int-vs-generic equivalence                 *)

let test_dequeue_or_semantics () =
  let q = Q.create () in
  let h = Q.register q in
  check Alcotest.int "empty -> default" (-7) (Q.dequeue_or q h (-7));
  Q.enqueue q h 42;
  check Alcotest.int "hit" 42 (Q.dequeue_or q h (-7));
  check Alcotest.int "drained -> default" (-7) (Q.dequeue_or q h (-7));
  (* the documented caveat: a queued value equal to the default is
     indistinguishable from EMPTY — it is still dequeued *)
  Q.enqueue q h (-7);
  check Alcotest.int "default-valued element" (-7) (Q.dequeue_or q h (-7));
  check (Alcotest.option Alcotest.int) "and it is gone" None (Q.dequeue q h)

let test_int_vs_generic_equivalence () =
  (* the same seeded op sequence against the generic option API and
     the int facade's dequeue_or must agree op for op *)
  let rng = Primitives.Splitmix64.create 0xA110CL in
  let qg = Q.create ~patience:10 ~segment_shift:4 ~max_garbage:4 () in
  let hg = Q.register qg in
  let qi = Qi.create ~patience:10 ~segment_shift:4 ~max_garbage:4 () in
  let hi = Qi.register qi in
  for i = 0 to 9_999 do
    if Primitives.Splitmix64.bool rng then begin
      Q.enqueue qg hg i;
      Qi.enqueue qi hi i
    end
    else
      let g = match Q.dequeue qg hg with Some v -> v | None -> min_int in
      let v = Qi.dequeue_or qi hi min_int in
      check Alcotest.int (Printf.sprintf "op %d" i) g v
  done;
  check Alcotest.int "same length" (Q.approx_length qg) (Qi.approx_length qi)

(* ------------------------------------------------------------------ *)
(* dequeue_or under simsched schedules                                 *)

let test_dequeue_or_linearizable () =
  let module Sq = Simsched.Sim.Queue in
  let module Sim = Simsched.Sim in
  let module H = Lincheck.History in
  let module Spec = Lincheck.Queue_spec in
  let module Wgl = Lincheck.Wgl.Make (Lincheck.Queue_spec) in
  for seed = 1 to 1_500 do
    let q = Sq.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let handles = Array.init 3 (fun _ -> Sq.register q) in
    let events = ref [] in
    let record thread input f =
      let inv = Sim.now () in
      let output = f () in
      let res = Sim.now () in
      events := { H.thread; input; output; inv; res } :: !events
    in
    let fiber t () =
      let h = handles.(t) in
      let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 977) + t)) in
      for i = 0 to 2 do
        if Primitives.Splitmix64.bool rng then
          record t (Spec.Enq ((t * 100) + i)) (fun () ->
              Sq.enqueue q h ((t * 100) + i);
              Spec.Accepted)
        else
          record t Spec.Deq (fun () ->
              (* values are nonnegative, so min_int is out of band *)
              match Sq.dequeue_or q h min_int with
              | v when v = min_int -> Spec.Empty
              | v -> Spec.Got v)
      done
    in
    let stats = Sim.run ~seed:(Int64.of_int seed) [| fiber 0; fiber 1; fiber 2 |] in
    if stats.Sim.max_steps_hit then
      Alcotest.failf "seed %d: scheduler step limit hit" seed;
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable -> Alcotest.failf "seed %d: non-linearizable schedule" seed
    | Wgl.Too_large -> Alcotest.fail "history too large"
  done

(* ------------------------------------------------------------------ *)
(* The Gate's alloc checks                                             *)

module J = Harness.Json
module G = Harness.Gate

let alloc_rows rows =
  J.List
    (List.map
       (fun (name, w) ->
         J.Obj [ ("name", J.String name); ("words_per_op", J.Float w) ])
       rows)

(* a structurally complete document: empty figure2_pairs (no
   throughput checks), a healthy patience-10 telemetry row (the
   slow-rate check passes), plus the alloc rows under test *)
let doc ?alloc () =
  J.Obj
    ([
       ("figure2_pairs", J.List []);
       ( "telemetry",
         J.List
           [
             J.Obj
               [
                 ("patience", J.Int 10);
                 ( "run",
                   J.Obj
                     [
                       ( "snapshot",
                         J.Obj [ ("ops", J.Obj [ ("slow_rate", J.Float 0.0) ]) ] );
                     ] );
               ];
           ] );
     ]
    @ match alloc with None -> [] | Some rows -> [ ("alloc_per_op", alloc_rows rows) ])

let compare ?alloc_ceiling ?alloc_margin ~baseline ~current () =
  match G.compare_docs ?alloc_ceiling ?alloc_margin ~baseline ~current () with
  | Ok checks -> checks
  | Error msg -> Alcotest.failf "compare_docs: %s" msg

(* alloc checks are labelled "<name> alloc/op" or "alloc/op gate" *)
let alloc_checks_of checks =
  List.filter
    (fun c ->
      let l = c.G.label in
      let n = String.length l in
      (n >= 8 && String.sub l (n - 8) 8 = "alloc/op") || l = "alloc/op gate")
    checks

let test_gate_points_parsing () =
  (match G.alloc_points_of_doc (doc ()) with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "absent section parsed as present"
  | Error e -> Alcotest.failf "absent section is not an error: %s" e);
  (match G.alloc_points_of_doc (doc ~alloc:[ ("wf-10", 0.0); ("x", 2.5) ] ()) with
  | Ok (Some [ a; b ]) ->
    check Alcotest.string "first name" "wf-10" a.G.aqueue;
    check (Alcotest.float 1e-9) "second words" 2.5 b.G.words_per_op
  | _ -> Alcotest.fail "two rows expected");
  match G.alloc_points_of_doc (J.Obj [ ("alloc_per_op", J.String "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed section must be an error"

let test_gate_skips_pre_alloc_baseline () =
  (* a pre-PR-6 baseline (no alloc_per_op) must not fail the gate —
     this is what keeps bench_gate green against BENCH_pr5.json *)
  let checks =
    compare ~baseline:(doc ()) ~current:(doc ~alloc:[ ("wf-10", 0.0) ] ()) ()
  in
  Alcotest.(check bool) "passes" true (G.passed checks);
  match alloc_checks_of checks with
  | [ c ] ->
    Alcotest.(check bool) "skip note passes" true c.G.ok;
    Alcotest.(check bool)
      "says skipped" true
      (String.length c.G.detail > 0
      && String.sub c.G.detail (String.length c.G.detail - 7) 7 = "skipped")
  | l -> Alcotest.failf "expected one skip note, got %d checks" (List.length l)

let test_gate_current_missing_section_fails () =
  let checks = compare ~baseline:(doc ~alloc:[ ("wf-10", 0.0) ] ()) ~current:(doc ()) () in
  Alcotest.(check bool) "fails" false (G.passed checks)

let test_gate_zero_baseline_tolerates_jitter () =
  let checks =
    compare
      ~baseline:(doc ~alloc:[ ("wf-10", 0.0) ] ())
      ~current:(doc ~alloc:[ ("wf-10", 0.3) ] ())
      ()
  in
  Alcotest.(check bool) "0.3 words/op within ceiling" true (G.passed checks)

let test_gate_fails_on_injected_box () =
  (* the acceptance criterion: a regression that adds one 2-word box
     per operation (words/op +2.0) must fail, from a zero baseline and
     from an already-allocating one *)
  let fails b c =
    not
      (G.passed
         (compare
            ~baseline:(doc ~alloc:[ ("wf-10", b) ] ())
            ~current:(doc ~alloc:[ ("wf-10", c) ] ())
            ()))
  in
  Alcotest.(check bool) "0.0 -> 2.0 fails" true (fails 0.0 2.0);
  Alcotest.(check bool) "1.0 -> 3.0 fails" true (fails 1.0 3.0);
  Alcotest.(check bool) "1.0 -> 1.5 passes" false (fails 1.0 1.5)

let test_gate_missing_row_fails () =
  let checks =
    compare
      ~baseline:(doc ~alloc:[ ("wf-10", 0.0); ("wf-int-10", 0.0) ] ())
      ~current:(doc ~alloc:[ ("wf-10", 0.0) ] ())
      ()
  in
  Alcotest.(check bool) "dropped row fails" false (G.passed checks)

let test_gate_custom_margin () =
  let checks =
    compare ~alloc_ceiling:0.1 ~alloc_margin:0.2
      ~baseline:(doc ~alloc:[ ("wf-10", 1.0) ] ())
      ~current:(doc ~alloc:[ ("wf-10", 1.5) ] ())
      ()
  in
  Alcotest.(check bool) "tight margin fails at +0.5" false (G.passed checks)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "alloc"
    [
      ( "probe",
        [
          Alcotest.test_case "accounting" `Quick test_probe_accounting;
          Alcotest.test_case "meter disabled" `Quick test_meter_disabled;
          Alcotest.test_case "meter enabled" `Quick test_meter_enabled;
        ] );
      ( "zero-alloc",
        [
          Alcotest.test_case "generic dequeue_or" `Quick test_generic_dequeue_or_zero;
          Alcotest.test_case "int facade" `Quick test_int_facade_zero;
          Alcotest.test_case "option API pays the box" `Quick test_option_api_pays_the_box;
          Alcotest.test_case "instrumented build" `Quick test_instrumented_build_zero;
          Alcotest.test_case "alloc_bench row" `Quick test_alloc_bench_row;
          Alcotest.test_case "bounded mode & scq" `Quick test_alloc_bounded_and_scq_zero;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "dequeue_or" `Quick test_dequeue_or_semantics;
          Alcotest.test_case "int vs generic" `Quick test_int_vs_generic_equivalence;
          Alcotest.test_case "dequeue_or linearizable (simsched)" `Quick
            test_dequeue_or_linearizable;
        ] );
      ( "gate",
        [
          Alcotest.test_case "alloc_points_of_doc" `Quick test_gate_points_parsing;
          Alcotest.test_case "pre-alloc baseline skipped" `Quick
            test_gate_skips_pre_alloc_baseline;
          Alcotest.test_case "current missing section" `Quick
            test_gate_current_missing_section_fails;
          Alcotest.test_case "zero baseline jitter" `Quick
            test_gate_zero_baseline_tolerates_jitter;
          Alcotest.test_case "injected box fails" `Quick test_gate_fails_on_injected_box;
          Alcotest.test_case "missing row fails" `Quick test_gate_missing_row_fails;
          Alcotest.test_case "custom margin" `Quick test_gate_custom_margin;
        ] );
    ]
