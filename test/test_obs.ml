(* Tests for the observability subsystem: counter arithmetic, the
   probe gating discipline (disabled builds never touch the event
   tier; enabled builds record it), the queue-level snapshot, and the
   per-operation-class latency histograms.

   The event-tier tests drive the protocol deterministically through
   the Internal whitebox API — the same traces the slow-path tests
   use — so each counter is checked against a hand-computed value
   rather than "some nonnegative number". *)

module C = Obs.Counters
module Q = Wfq.Wfqueue (* probe disabled *)
module Qo = Wfq.Wfqueue_obs (* probe enabled *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)

let filled () =
  let c = C.create () in
  c.C.fast_enqueues <- 90;
  c.C.slow_enqueues <- 10;
  c.C.fast_dequeues <- 45;
  c.C.slow_dequeues <- 5;
  c.C.empty_dequeues <- 2;
  c.C.enq_cas_failures <- 7;
  c.C.deq_cas_failures <- 8;
  c.C.cells_skipped <- 3;
  c.C.help_enqueues <- 4;
  c.C.help_dequeues <- 6;
  c

let test_counter_totals () =
  let c = filled () in
  check Alcotest.int "total enq" 100 (C.total_enqueues c);
  check Alcotest.int "total deq" 50 (C.total_dequeues c);
  check Alcotest.int "total ops" 150 (C.total_ops c)

let test_counter_rates () =
  let c = filled () in
  check (Alcotest.float 1e-9) "slow enq rate" 0.1 (C.slow_enqueue_rate c);
  check (Alcotest.float 1e-9) "slow deq rate" 0.1 (C.slow_dequeue_rate c);
  check (Alcotest.float 1e-9) "slow rate" 0.1 (C.slow_rate c);
  check (Alcotest.float 1e-9) "pct = 100*rate" 10.0 (C.slow_enqueue_pct c);
  check (Alcotest.float 1e-9) "empty pct" 4.0 (C.empty_dequeue_pct c);
  check (Alcotest.float 1e-6) "per million" 100_000.0 (C.per_million 0.1)

let test_counter_rates_empty () =
  let c = C.create () in
  check (Alcotest.float 0.0) "no enq -> 0" 0.0 (C.slow_enqueue_rate c);
  check (Alcotest.float 0.0) "no deq -> 0" 0.0 (C.slow_dequeue_rate c);
  check (Alcotest.float 0.0) "no ops -> 0" 0.0 (C.slow_rate c)

let test_counter_add_absorb_reset () =
  let a = filled () and b = filled () in
  C.add ~into:a b;
  check Alcotest.int "add sums" 200 (C.total_enqueues a);
  check Alcotest.int "add sums events" 14 a.C.enq_cas_failures;
  check Alcotest.int "source untouched" 7 b.C.enq_cas_failures;
  C.absorb ~into:a b;
  check Alcotest.int "absorb sums" 300 (C.total_enqueues a);
  check Alcotest.int "absorb zeroes source" 0 (C.total_ops b);
  check Alcotest.int "absorb zeroes source events" 0 b.C.help_dequeues;
  C.reset a;
  check Alcotest.int "reset" 0 (C.total_ops a);
  check Alcotest.int "reset events" 0 a.C.cells_skipped

let test_counter_padded_copy_independent () =
  let c = C.create_padded () in
  c.C.fast_enqueues <- 5;
  let d = C.create_padded () in
  check Alcotest.int "fresh padded copy is zero" 0 d.C.fast_enqueues;
  check Alcotest.int "original keeps its count" 5 c.C.fast_enqueues

let test_counter_pp_smoke () =
  let s = Format.asprintf "%a" C.pp (filled ()) in
  let e = Format.asprintf "%a" C.pp_events (filled ()) in
  check Alcotest.bool "pp mentions slow" true (String.length s > 0);
  check Alcotest.bool "pp_events mentions helps" true (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* Probe constants                                                    *)

let test_probe_flags () =
  check Alcotest.bool "Disabled" false Obs.Probe.Disabled.enabled;
  check Alcotest.bool "Enabled" true Obs.Probe.Enabled.enabled;
  check Alcotest.bool "Wfqueue is disabled" false Q.probe_enabled;
  check Alcotest.bool "Wfqueue_obs is enabled" true Qo.probe_enabled

(* ------------------------------------------------------------------ *)
(* Event tier: deterministic traces                                   *)

(* Poisoned first cell, patience 10: the enqueue burns one fast-path
   attempt on the poisoned cell (one CAS failure) and deposits on the
   second; the dequeue consumes the poisoned cell (one claim failure)
   and takes the value from the next. *)
let test_enabled_records_cas_failures () =
  let q = Qo.create ~patience:10 () in
  let h = Qo.register q in
  check Alcotest.bool "cell 0 poisoned" true Qo.Internal.(poison_cell (cell_of q h 0));
  Qo.enqueue q h 7;
  let s = Qo.handle_stats h in
  check Alcotest.int "fast enqueue" 1 s.C.fast_enqueues;
  check Alcotest.int "no slow enqueue" 0 s.C.slow_enqueues;
  check Alcotest.int "one enq CAS failure" 1 s.C.enq_cas_failures;
  check Alcotest.(option int) "value lands after the poison" (Some 7) (Qo.dequeue q h);
  check Alcotest.int "fast dequeue" 1 s.C.fast_dequeues;
  check Alcotest.int "one deq CAS failure" 1 s.C.deq_cas_failures

(* Same poisoned-cell trace at patience 0 on both builds: identical
   path-tier outcome (slow-path enqueue), but only the instrumented
   build records the event. *)
let test_disabled_build_keeps_event_tier_zero () =
  let q = Q.create ~patience:0 () in
  let h = Q.register q in
  check Alcotest.bool "cell 0 poisoned" true Q.Internal.(poison_cell (cell_of q h 0));
  Q.enqueue q h 7;
  let s = Q.handle_stats h in
  check Alcotest.int "slow enqueue recorded" 1 s.C.slow_enqueues;
  check Alcotest.int "event tier untouched (enq)" 0 s.C.enq_cas_failures;
  check Alcotest.(option int) "dequeue" (Some 7) (Q.dequeue q h);
  check Alcotest.int "event tier untouched (deq)" 0 s.C.deq_cas_failures;
  check Alcotest.int "event tier untouched (helping)" 0
    (s.C.help_enqueues + s.C.help_dequeues + s.C.cells_skipped)

let test_enabled_build_same_trace_records () =
  let q = Qo.create ~patience:0 () in
  let h = Qo.register q in
  check Alcotest.bool "cell 0 poisoned" true Qo.Internal.(poison_cell (cell_of q h 0));
  Qo.enqueue q h 7;
  let s = Qo.handle_stats h in
  check Alcotest.int "slow enqueue recorded" 1 s.C.slow_enqueues;
  check Alcotest.int "enq CAS failure recorded" 1 s.C.enq_cas_failures

(* A dequeuer that completes a peer's published enqueue request is a
   help-enqueue event — on the helper, not the requester. *)
let test_help_enqueue_counted () =
  let q = Qo.create ~patience:0 () in
  let h1 = Qo.register q in
  let h2 = Qo.register q in
  let i = Qo.Internal.faa_tail q in
  check Alcotest.int "stole ticket 0" 0 i;
  Qo.Internal.publish_enq_request h1 42 i;
  check Alcotest.(option int) "helper's dequeue returns the value" (Some 42) (Qo.dequeue q h2);
  check Alcotest.int "helper counted the help-enqueue" 1 (Qo.handle_stats h2).C.help_enqueues;
  check Alcotest.int "requester did not" 0 (Qo.handle_stats h1).C.help_enqueues

(* help_deq with pending work counts on the helper; self-help and
   no-work calls do not. *)
let test_help_dequeue_counted () =
  let q = Qo.create ~patience:0 () in
  let h1 = Qo.register q in
  let h2 = Qo.register q in
  Qo.enqueue q h1 42;
  Qo.Internal.publish_deq_request h1 0;
  (* no pending request on h2: nothing to help with *)
  Qo.Internal.help_deq q ~helper:h1 ~helpee:h2;
  check Alcotest.int "no-work help not counted" 0 (Qo.handle_stats h1).C.help_dequeues;
  (* self-help (deq_slow's own call) is not a helping event *)
  Qo.Internal.help_deq q ~helper:h1 ~helpee:h1;
  check Alcotest.int "self-help not counted" 0 (Qo.handle_stats h1).C.help_dequeues;
  (* re-publish: the self-help above completed the request *)
  Qo.Internal.publish_deq_request h2 1;
  Qo.enqueue q h1 43;
  Qo.Internal.help_deq q ~helper:h1 ~helpee:h2;
  check Alcotest.int "peer help counted once" 1 (Qo.handle_stats h1).C.help_dequeues;
  check Alcotest.bool "request completed" false (Qo.Internal.deq_request_pending h2)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                           *)

let test_snapshot_counts_ops_and_config () =
  let q = Qo.create ~patience:3 () in
  let h = Qo.register q in
  for i = 1 to 10 do
    Qo.enqueue q h i
  done;
  for _ = 1 to 4 do
    ignore (Qo.dequeue q h)
  done;
  let s = Qo.snapshot q in
  check Alcotest.int "enqueues" 10 (C.total_enqueues s.Obs.Snapshot.ops);
  check Alcotest.int "dequeues" 4 (C.total_dequeues s.Obs.Snapshot.ops);
  check Alcotest.int "patience" 3 s.Obs.Snapshot.patience;
  check Alcotest.bool "probe flag" true s.Obs.Snapshot.probe_enabled;
  check Alcotest.int "one live handle" 1 s.Obs.Snapshot.handles.Obs.Snapshot.live;
  check Alcotest.int "ring size" 1 s.Obs.Snapshot.handles.Obs.Snapshot.ring;
  check Alcotest.bool "live segments > 0" true (s.Obs.Snapshot.segments.Obs.Snapshot.live > 0)

let test_snapshot_absorbs_retired_handles () =
  let q = Qo.create () in
  let h1 = Qo.register q in
  for i = 1 to 6 do
    Qo.enqueue q h1 i
  done;
  Qo.retire q h1;
  (* the recycled slot's counters must survive into the aggregate *)
  let h2 = Qo.register q in
  for i = 1 to 3 do
    Qo.enqueue q h2 i
  done;
  let s = Qo.snapshot q in
  check Alcotest.int "retired handle's ops counted once" 9
    (C.total_enqueues s.Obs.Snapshot.ops)

let test_snapshot_disabled_probe_flag () =
  let q = Q.create () in
  let s = Q.snapshot q in
  check Alcotest.bool "probe flag false" false s.Obs.Snapshot.probe_enabled

let test_cleanup_runs_counted () =
  (* 4-cell segments, cleanup threshold 2: churning 64 pairs through
     one handle crosses many segment boundaries, so cleanup must have
     actually reclaimed at least once. *)
  let q = Qo.create ~segment_shift:2 ~max_garbage:2 () in
  let h = Qo.register q in
  for i = 1 to 64 do
    Qo.enqueue q h i;
    ignore (Qo.dequeue q h)
  done;
  let s = Qo.snapshot q in
  check Alcotest.bool "cleanups > 0" true (Qo.cleanup_runs q > 0);
  check Alcotest.int "snapshot mirrors cleanup_runs" (Qo.cleanup_runs q)
    s.Obs.Snapshot.segments.Obs.Snapshot.cleanups;
  check Alcotest.bool "reclaimed segments > 0" true
    (s.Obs.Snapshot.segments.Obs.Snapshot.reclaimed > 0)

let test_snapshot_pp_smoke () =
  let q = Qo.create () in
  let h = Qo.register q in
  Qo.enqueue q h 1;
  let out = Format.asprintf "%a" Obs.Snapshot.pp (Qo.snapshot q) in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions patience" true (contains ~sub:"patience" out)

(* ------------------------------------------------------------------ *)
(* Latency histograms                                                 *)

let test_op_latency_record_summarize () =
  let l = Obs.Op_latency.create () in
  for i = 1 to 1000 do
    Obs.Op_latency.record l Obs.Op_latency.Enqueue (float_of_int i)
  done;
  let s = Obs.Op_latency.summarize l Obs.Op_latency.Enqueue in
  check Alcotest.int "samples" 1000 s.Obs.Op_latency.samples;
  check Alcotest.bool "p50 <= p90 <= p99 <= max" true
    (s.Obs.Op_latency.p50_ns <= s.Obs.Op_latency.p90_ns
    && s.Obs.Op_latency.p90_ns <= s.Obs.Op_latency.p99_ns
    && s.Obs.Op_latency.p99_ns <= s.Obs.Op_latency.max_ns);
  check (Alcotest.float 0.0) "exact max" 1000.0 s.Obs.Op_latency.max_ns;
  (* p50 of 1..1000 is ~500 within log-linear quantization (<0.4%) *)
  check Alcotest.bool "p50 near 500" true
    (s.Obs.Op_latency.p50_ns >= 490.0 && s.Obs.Op_latency.p50_ns <= 510.0)

let test_op_latency_classes_independent () =
  let l = Obs.Op_latency.create () in
  Obs.Op_latency.record l Obs.Op_latency.Enqueue 10.0;
  Obs.Op_latency.record l Obs.Op_latency.Dequeue 20.0;
  check Alcotest.int "enqueue class" 1
    (Obs.Op_latency.summarize l Obs.Op_latency.Enqueue).Obs.Op_latency.samples;
  check Alcotest.int "dequeue class" 1
    (Obs.Op_latency.summarize l Obs.Op_latency.Dequeue).Obs.Op_latency.samples;
  check Alcotest.int "empty class untouched" 0
    (Obs.Op_latency.summarize l Obs.Op_latency.Dequeue_empty).Obs.Op_latency.samples

let test_op_latency_merge () =
  let a = Obs.Op_latency.create () and b = Obs.Op_latency.create () in
  Obs.Op_latency.record a Obs.Op_latency.Enqueue 10.0;
  Obs.Op_latency.record b Obs.Op_latency.Enqueue 1000.0;
  Obs.Op_latency.record b Obs.Op_latency.Dequeue_empty 5.0;
  Obs.Op_latency.merge_into ~into:a b;
  let s = Obs.Op_latency.summarize a Obs.Op_latency.Enqueue in
  check Alcotest.int "merged samples" 2 s.Obs.Op_latency.samples;
  check (Alcotest.float 0.0) "merged max" 1000.0 s.Obs.Op_latency.max_ns;
  check Alcotest.int "merged empty class" 1
    (Obs.Op_latency.summarize a Obs.Op_latency.Dequeue_empty).Obs.Op_latency.samples

let test_op_latency_empty_summary () =
  let l = Obs.Op_latency.create () in
  let s = Obs.Op_latency.summarize l Obs.Op_latency.Dequeue in
  check Alcotest.int "no samples" 0 s.Obs.Op_latency.samples;
  check (Alcotest.float 0.0) "zero p99" 0.0 s.Obs.Op_latency.p99_ns

(* ------------------------------------------------------------------ *)
(* Instrumented baselines                                             *)

let test_msqueue_obs_counts () =
  let q = Baselines.Msqueue_obs.create () in
  let h = Baselines.Msqueue_obs.register q in
  Baselines.Msqueue_obs.enqueue q h 1;
  check Alcotest.(option int) "fifo" (Some 1) (Baselines.Msqueue_obs.dequeue q h);
  check Alcotest.(option int) "empty" None (Baselines.Msqueue_obs.dequeue q h);
  let s = Baselines.Msqueue_obs.handle_stats h in
  check Alcotest.int "enqueues" 1 s.C.fast_enqueues;
  check Alcotest.int "dequeues" 1 s.C.fast_dequeues;
  check Alcotest.int "empties" 1 s.C.empty_dequeues

let test_lcrq_obs_counts () =
  let q = Baselines.Lcrq_obs.create ~ring_size:4 () in
  let h = Baselines.Lcrq_obs.register q in
  (* overflow the 4-slot ring so a close/new-ring event fires *)
  for i = 1 to 10 do
    Baselines.Lcrq_obs.enqueue q h i
  done;
  for i = 1 to 10 do
    check Alcotest.(option int) "fifo across rings" (Some i) (Baselines.Lcrq_obs.dequeue q h)
  done;
  let s = Baselines.Lcrq_obs.handle_stats h in
  check Alcotest.int "enqueues" 10 s.C.fast_enqueues;
  check Alcotest.int "dequeues" 10 s.C.fast_dequeues;
  check Alcotest.bool "ring close counted" true (s.C.enq_cas_failures > 0)

let test_disabled_baselines_stay_zero () =
  let q = Baselines.Msqueue.create () in
  let h = Baselines.Msqueue.register q in
  Baselines.Msqueue.enqueue q h 1;
  ignore (Baselines.Msqueue.dequeue q h);
  check Alcotest.int "probe off: nothing recorded" 0
    (C.total_ops (Baselines.Msqueue.handle_stats h))

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "totals" `Quick test_counter_totals;
          Alcotest.test_case "rates" `Quick test_counter_rates;
          Alcotest.test_case "rates on empty" `Quick test_counter_rates_empty;
          Alcotest.test_case "add/absorb/reset" `Quick test_counter_add_absorb_reset;
          Alcotest.test_case "padded copies" `Quick test_counter_padded_copy_independent;
          Alcotest.test_case "pp smoke" `Quick test_counter_pp_smoke;
        ] );
      ("probe", [ Alcotest.test_case "flags" `Quick test_probe_flags ]);
      ( "event tier",
        [
          Alcotest.test_case "cas failures recorded" `Quick test_enabled_records_cas_failures;
          Alcotest.test_case "disabled stays zero" `Quick
            test_disabled_build_keeps_event_tier_zero;
          Alcotest.test_case "enabled same trace records" `Quick
            test_enabled_build_same_trace_records;
          Alcotest.test_case "help-enqueue counted" `Quick test_help_enqueue_counted;
          Alcotest.test_case "help-dequeue counted" `Quick test_help_dequeue_counted;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "ops and config" `Quick test_snapshot_counts_ops_and_config;
          Alcotest.test_case "absorbs retired handles" `Quick
            test_snapshot_absorbs_retired_handles;
          Alcotest.test_case "disabled probe flag" `Quick test_snapshot_disabled_probe_flag;
          Alcotest.test_case "cleanup runs counted" `Quick test_cleanup_runs_counted;
          Alcotest.test_case "pp smoke" `Quick test_snapshot_pp_smoke;
        ] );
      ( "op latency",
        [
          Alcotest.test_case "record/summarize" `Quick test_op_latency_record_summarize;
          Alcotest.test_case "classes independent" `Quick test_op_latency_classes_independent;
          Alcotest.test_case "merge" `Quick test_op_latency_merge;
          Alcotest.test_case "empty summary" `Quick test_op_latency_empty_summary;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "msqueue instrumented" `Quick test_msqueue_obs_counts;
          Alcotest.test_case "lcrq instrumented" `Quick test_lcrq_obs_counts;
          Alcotest.test_case "disabled baselines zero" `Quick test_disabled_baselines_stay_zero;
        ] );
    ]
