(* Handle lifecycle regression tests: auto-retirement of per-domain
   handles when their domain terminates, recycling of retired ring
   slots (ring length bounded by peak concurrency, not total domains
   ever), reclamation progress under domain churn, and the segment
   pool's size-accounting invariant. *)

module W = Wfq.Wfqueue
module I = W.Internal

let check = Alcotest.check

let churn q h ~ops =
  for i = 1 to ops do
    W.enqueue q h i;
    ignore (W.dequeue q h)
  done

(* ------------------------------------------------------------------ *)
(* Domain churn through push/pop (the acceptance scenario)            *)

let test_sequential_domain_churn () =
  (* 200 short-lived domains, strictly sequential: peak concurrency is
     one worker, so the ring must stay O(1) — each dying domain's
     handle is auto-retired at domain exit and the next domain's
     implicit registration recycles the slot. *)
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  for d = 1 to 200 do
    let worker =
      Domain.spawn (fun () ->
          for k = 1 to 50 do
            W.push q ((d * 1000) + k);
            ignore (W.pop q)
          done)
    in
    Domain.join worker
  done;
  check Alcotest.bool
    (Printf.sprintf "ring bounded by peak concurrency (%d slots for 200 domains)"
       (W.ring_handles q))
    true
    (W.ring_handles q <= 4);
  check Alcotest.bool "segment reclamation proceeded" true (W.reclaimed_segments q > 500);
  check Alcotest.bool
    (Printf.sprintf "live segments bounded (%d)" (W.live_segments q))
    true
    (W.live_segments q <= 8);
  (* every domain's operations are still accounted for *)
  let s = W.stats q in
  check Alcotest.int "stats survive slot recycling" (200 * 50) (Wfq.Op_stats.total_enqueues s)

let test_concurrent_wave_churn () =
  (* waves of concurrent domains: the ring may grow to the wave width,
     never to the total number of domains across waves *)
  let width = 4 and waves = 25 in
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  for w = 1 to waves do
    let workers =
      List.init width (fun t ->
          Domain.spawn (fun () ->
              for k = 1 to 200 do
                W.push q ((w * 10_000) + (t * 1000) + k);
                ignore (W.pop q)
              done))
    in
    List.iter Domain.join workers
  done;
  check Alcotest.bool
    (Printf.sprintf "ring bounded by wave width (%d slots for %d domains)" (W.ring_handles q)
       (width * waves))
    true
    (W.ring_handles q <= width + 2);
  check Alcotest.bool "reclamation proceeded" true (W.reclaimed_segments q > 500);
  check Alcotest.bool
    (Printf.sprintf "live segments bounded (%d)" (W.live_segments q))
    true
    (W.live_segments q <= 16)

let test_auto_retire_on_domain_exit () =
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let worker = Domain.spawn (fun () -> W.push q 1) in
  Domain.join worker;
  (* the worker's implicit handle was retired by its Domain.at_exit
     hook: its slot sits in the free stack awaiting recycling *)
  check Alcotest.int "one ring slot" 1 (W.ring_handles q);
  check Alcotest.int "no live handle left behind" 0 (W.live_handles q);
  check Alcotest.int "slot awaits recycling" 1 (W.free_handle_slots q);
  (* the next registration recycles the slot instead of growing *)
  let h = W.register q in
  check Alcotest.int "slot recycled, ring unchanged" 1 (W.ring_handles q);
  check Alcotest.int "free stack drained" 0 (W.free_handle_slots q);
  check Alcotest.(option int) "value survived the lifecycle" (Some 1) (W.dequeue q h)

let test_dead_domain_mid_workload () =
  (* A domain registers (via push), enqueues a backlog, and dies while
     the queue is under load.  Auto-retirement must let reclamation
     proceed: live segments return to the max_garbage neighbourhood
     instead of being pinned by the dead handle forever. *)
  let q = W.create ~segment_shift:4 ~max_garbage:4 () in
  let worker =
    Domain.spawn (fun () ->
        for k = 1 to 2_000 do
          W.push q k
        done)
  in
  Domain.join worker;
  let before = W.reclaimed_segments q in
  let h = W.register q in
  let rec drain () = match W.dequeue q h with Some _ -> drain () | None -> () in
  drain ();
  churn q h ~ops:5_000;
  check Alcotest.bool "reclamation proceeded after death"
    true
    (W.reclaimed_segments q > before);
  check Alcotest.bool
    (Printf.sprintf "live segments bounded after dead registrant (%d)" (W.live_segments q))
    true
    (W.live_segments q <= 8)

let test_push_pop_concurrent_domains () =
  (* The lock-free implicit-handle path under real parallelism:
     conservation of values with every domain using push/pop only. *)
  let q = W.create ~segment_shift:6 ~max_garbage:4 () in
  let threads = 4 and per_thread = 20_000 in
  let produced = Atomic.make 0 and consumed = Atomic.make 0 in
  let workers =
    List.init threads (fun t ->
        Domain.spawn (fun () ->
            let rng = Primitives.Splitmix64.create (Int64.of_int (t + 1)) in
            for i = 0 to per_thread - 1 do
              if Primitives.Splitmix64.bool rng then begin
                W.push q ((t * per_thread) + i);
                ignore (Atomic.fetch_and_add produced 1)
              end
              else
                match W.pop q with
                | Some _ -> ignore (Atomic.fetch_and_add consumed 1)
                | None -> ()
            done))
  in
  List.iter Domain.join workers;
  let h = W.register q in
  let rec drain n = match W.dequeue q h with Some _ -> drain (n + 1) | None -> n in
  let drained = drain 0 in
  check Alcotest.int "conservation via push/pop" (Atomic.get produced)
    (Atomic.get consumed + drained);
  check Alcotest.bool "ring bounded" true (W.ring_handles q <= threads + 2)

(* ------------------------------------------------------------------ *)
(* Slot recycling semantics                                           *)

let test_recycled_slot_fifo_correct () =
  let q = W.create ~segment_shift:4 () in
  let h1 = W.register q in
  W.enqueue q h1 1;
  W.enqueue q h1 2;
  W.retire q h1;
  let h2 = W.register q in
  check Alcotest.int "slot recycled in place" 1 (W.ring_handles q);
  W.enqueue q h2 3;
  check Alcotest.(option int) "fifo 1" (Some 1) (W.dequeue q h2);
  check Alcotest.(option int) "fifo 2" (Some 2) (W.dequeue q h2);
  check Alcotest.(option int) "fifo 3" (Some 3) (W.dequeue q h2);
  check Alcotest.(option int) "empty" None (W.dequeue q h2)

let test_retire_idempotent () =
  let q = W.create () in
  let h = W.register q in
  W.retire q h;
  W.retire q h;
  W.retire q h;
  (* a double retire must donate the slot exactly once, or two future
     registrations would share one handle *)
  check Alcotest.int "one free slot" 1 (W.free_handle_slots q);
  let h1 = W.register q in
  let h2 = W.register q in
  check Alcotest.bool "distinct handles" true (h1 != h2);
  check Alcotest.int "ring grew to two" 2 (W.ring_handles q)

let test_stats_absorbed_on_recycle () =
  let q = W.create () in
  let h1 = W.register q in
  for i = 1 to 10 do
    W.enqueue q h1 i
  done;
  W.retire q h1;
  let h2 = W.register q in
  (* the departed handle's counters survive its slot being reset *)
  check Alcotest.int "departed enqueues counted" 10
    (Wfq.Op_stats.total_enqueues (W.stats q));
  for i = 1 to 5 do
    W.enqueue q h2 i
  done;
  check Alcotest.int "aggregation spans incarnations" 15
    (Wfq.Op_stats.total_enqueues (W.stats q))

let test_recycling_under_contention () =
  (* registration storms against churners: recycled slots must never
     be handed to two domains (each worker writes through its handle
     and FIFO per producer must hold) *)
  let q = W.create ~patience:0 ~segment_shift:5 ~max_garbage:2 () in
  let stop = Atomic.make false in
  let churners =
    List.init 2 (fun t ->
        Domain.spawn (fun () ->
            let h = W.register q in
            let ops = ref 0 in
            while not (Atomic.get stop) do
              W.enqueue q h ((t * 1_000_000) + !ops);
              ignore (W.dequeue q h);
              incr ops
            done;
            W.retire q h;
            !ops))
  in
  let recyclers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 100 do
              let h = W.register q in
              W.enqueue q h 0;
              ignore (W.dequeue q h);
              W.retire q h
            done))
  in
  List.iter Domain.join recyclers;
  Atomic.set stop true;
  let churned = List.fold_left (fun acc d -> acc + Domain.join d) 0 churners in
  check Alcotest.bool "churners progressed" true (churned > 0);
  check Alcotest.bool
    (Printf.sprintf "ring bounded under recycling storm (%d)" (W.ring_handles q))
    true
    (W.ring_handles q <= 8)

(* ------------------------------------------------------------------ *)
(* Segment pool size accounting                                       *)

let assert_pool_invariant q msg =
  let counter = W.pooled_segments q in
  let length = I.pool_length q in
  check Alcotest.int (msg ^ ": counter = list length") length counter;
  check Alcotest.bool
    (Printf.sprintf "%s: counter %d within [0, %d]" msg counter (I.pool_limit q))
    true
    (counter >= 0 && counter <= I.pool_limit q)

let test_pool_invariant_after_churn () =
  let q = W.create ~segment_shift:3 ~max_garbage:2 () in
  let h = W.register q in
  churn q h ~ops:10_000;
  assert_pool_invariant q "after churn"

let test_pool_admission_never_overshoots () =
  (* many concurrent pushers racing the admission check: the counter
     is the reservation itself, so no interleaving can exceed the
     limit; a sampling reader asserts the bound while the race runs *)
  let q = W.create () in
  let limit = I.pool_limit q in
  let violation = Atomic.make (-1) in
  let pushers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 5_000 do
              I.pool_push_fresh q
            done))
  in
  let poppers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 5_000 do
              ignore (I.pool_take q)
            done))
  in
  let sampler =
    Domain.spawn (fun () ->
        for _ = 1 to 50_000 do
          let n = Wfq.Wfqueue.pooled_segments q in
          if n < 0 || n > limit then Atomic.set violation n
        done)
  in
  List.iter Domain.join pushers;
  List.iter Domain.join poppers;
  Domain.join sampler;
  check Alcotest.int "no sampled bound violation" (-1) (Atomic.get violation);
  assert_pool_invariant q "after concurrent push/pop storm"

let test_pool_counter_quiescent_equality () =
  let q = W.create () in
  for _ = 1 to 100 do
    I.pool_push_fresh q
  done;
  assert_pool_invariant q "after overfill attempt";
  check Alcotest.int "filled to the limit" (I.pool_limit q) (W.pooled_segments q);
  let rec drain n = if I.pool_take q then drain (n + 1) else n in
  let taken = drain 0 in
  check Alcotest.int "drained exactly the limit" (I.pool_limit q) taken;
  assert_pool_invariant q "after drain";
  check Alcotest.int "empty" 0 (W.pooled_segments q)

let () =
  Alcotest.run "handle_lifecycle"
    [
      ( "domain churn",
        [
          Alcotest.test_case "200 sequential domains" `Quick test_sequential_domain_churn;
          Alcotest.test_case "concurrent waves" `Quick test_concurrent_wave_churn;
          Alcotest.test_case "auto-retire at exit" `Quick test_auto_retire_on_domain_exit;
          Alcotest.test_case "death mid-workload" `Quick test_dead_domain_mid_workload;
          Alcotest.test_case "parallel push/pop" `Quick test_push_pop_concurrent_domains;
        ] );
      ( "slot recycling",
        [
          Alcotest.test_case "fifo across recycling" `Quick test_recycled_slot_fifo_correct;
          Alcotest.test_case "retire idempotent" `Quick test_retire_idempotent;
          Alcotest.test_case "stats absorbed" `Quick test_stats_absorbed_on_recycle;
          Alcotest.test_case "recycling under contention" `Quick test_recycling_under_contention;
        ] );
      ( "segment pool",
        [
          Alcotest.test_case "invariant after churn" `Quick test_pool_invariant_after_churn;
          Alcotest.test_case "admission never overshoots" `Quick
            test_pool_admission_never_overshoots;
          Alcotest.test_case "quiescent equality" `Quick test_pool_counter_quiescent_equality;
        ] );
    ]
