(* Tests for the benchmark harness: workload math and determinism,
   the runner, the queue registry, report rendering, platform
   detection, and quick-mode smoke runs of the experiment drivers. *)

module WL = Harness.Workload

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Workload                                                           *)

let test_kind_parsing () =
  check Alcotest.bool "pairs" true (WL.kind_of_string "pairs" = Ok WL.Pairs);
  check Alcotest.bool "half" true (WL.kind_of_string "half" = Ok WL.Fifty_fifty);
  check Alcotest.bool "fifty" true (WL.kind_of_string "fifty" = Ok WL.Fifty_fifty);
  check Alcotest.bool "garbage rejected" true (Result.is_error (WL.kind_of_string "nope"));
  check Alcotest.string "roundtrip pairs" "pairs" (WL.kind_to_string WL.Pairs);
  check Alcotest.string "roundtrip half" "half" (WL.kind_to_string WL.Fifty_fifty)

let test_defaults_match_paper () =
  let d = WL.default WL.Pairs in
  check Alcotest.int "10^7 operations" 10_000_000 d.WL.total_ops;
  check Alcotest.bool "50-100ns think time" true (d.WL.work_ns = Some (50, 100))

let test_ops_per_thread () =
  let spec = WL.scaled WL.Pairs ~total_ops:1_000 in
  check Alcotest.int "even split" 250 (WL.ops_per_thread spec ~threads:4);
  (* pairs are whole: 1000/3 = 333 -> 332 (166 pairs) *)
  check Alcotest.int "whole pairs" 332 (WL.ops_per_thread spec ~threads:3);
  let spec = WL.scaled WL.Fifty_fifty ~total_ops:1_000 in
  check Alcotest.int "half split" 333 (WL.ops_per_thread spec ~threads:3)

let counting_ops () =
  let enq = ref 0 and deq = ref 0 in
  ( Harness.Queues.make_ops
      ~enqueue:(fun _ -> incr enq)
      ~dequeue:(fun () ->
        incr deq;
        None)
      ~release:ignore (),
    enq,
    deq )

let test_thread_body_pairs () =
  let spec = { (WL.scaled WL.Pairs ~total_ops:400) with WL.work_ns = None } in
  let ops, enq, deq = counting_ops () in
  let performed = WL.thread_body spec ~thread:0 ops ~threads:2 () in
  check Alcotest.int "performed = share" 200 performed;
  check Alcotest.int "half enqueues" 100 !enq;
  check Alcotest.int "half dequeues" 100 !deq

let test_thread_body_half_deterministic () =
  let spec = { (WL.scaled WL.Fifty_fifty ~total_ops:1_000) with WL.work_ns = None } in
  let run () =
    let ops, enq, _ = counting_ops () in
    let performed = WL.thread_body spec ~thread:3 ops ~threads:2 () in
    (performed, !enq)
  in
  let p1, e1 = run () in
  let p2, e2 = run () in
  check Alcotest.int "same op count" p1 p2;
  check Alcotest.int "same coin flips" e1 e2;
  check Alcotest.int "share" 500 p1;
  (* roughly balanced enqueues *)
  check Alcotest.bool "roughly half enqueues" true (e1 > 200 && e1 < 300)

let test_thread_body_distinct_per_thread () =
  let spec = { (WL.scaled WL.Fifty_fifty ~total_ops:1_000) with WL.work_ns = None } in
  let enqs t =
    let ops, enq, _ = counting_ops () in
    ignore (WL.thread_body spec ~thread:t ops ~threads:2 ());
    !enq
  in
  check Alcotest.bool "different threads different streams" true (enqs 0 <> enqs 1)

(* ------------------------------------------------------------------ *)
(* Queues registry                                                    *)

let test_registry_names_unique () =
  let names = Harness.Queues.names () in
  let sorted = List.sort_uniq compare names in
  check Alcotest.int "no duplicate names" (List.length names) (List.length sorted);
  check Alcotest.bool "has wf-10" true (List.mem "wf-10" names);
  check Alcotest.bool "has wf-0" true (List.mem "wf-0" names);
  check Alcotest.bool "has lcrq" true (List.mem "lcrq" names);
  check Alcotest.bool "has faa" true (List.mem "faa" names)

let test_registry_find () =
  check Alcotest.bool "find wf-10" true (Harness.Queues.find "wf-10" <> None);
  check Alcotest.bool "find nothing" true (Harness.Queues.find "bogus" = None)

let test_each_factory_is_fifo () =
  List.iter
    (fun (f : Harness.Queues.factory) ->
      if f.Harness.Queues.is_real_queue then begin
        let inst = f.Harness.Queues.make () in
        let ops = inst.Harness.Queues.register () in
        ops.Harness.Queues.enqueue 1;
        ops.Harness.Queues.enqueue 2;
        check Alcotest.(option int) (f.Harness.Queues.name ^ " fifo 1") (Some 1)
          (ops.Harness.Queues.dequeue ());
        check Alcotest.(option int) (f.Harness.Queues.name ^ " fifo 2") (Some 2)
          (ops.Harness.Queues.dequeue ());
        check Alcotest.(option int) (f.Harness.Queues.name ^ " empty") None
          (ops.Harness.Queues.dequeue ())
      end)
    Harness.Queues.all

let test_wf_factory_stats () =
  let f = Harness.Queues.wf ~patience:0 () in
  let inst = f.Harness.Queues.make () in
  let ops = inst.Harness.Queues.register () in
  ops.Harness.Queues.enqueue 1;
  ignore (ops.Harness.Queues.dequeue ());
  (match inst.Harness.Queues.op_stats () with
  | Some s ->
    check Alcotest.int "enqueues tracked" 1 (Wfq.Op_stats.total_enqueues s);
    check Alcotest.int "dequeues tracked" 1 (Wfq.Op_stats.total_dequeues s)
  | None -> Alcotest.fail "wf factory must expose stats");
  inst.Harness.Queues.reset_op_stats ();
  match inst.Harness.Queues.op_stats () with
  | Some s -> check Alcotest.int "reset" 0 (Wfq.Op_stats.total_enqueues s)
  | None -> Alcotest.fail "stats gone after reset"

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)

let test_run_once_counts_ops () =
  let f = Harness.Queues.wf ~patience:10 ~segment_shift:6 () in
  let inst = f.Harness.Queues.make () in
  let spec = { (WL.scaled WL.Pairs ~total_ops:8_000) with WL.work_ns = None } in
  let m = Harness.Runner.run_once inst spec ~threads:2 in
  check Alcotest.int "ops performed" 8_000 m.Harness.Runner.ops;
  check Alcotest.bool "positive time" true (m.Harness.Runner.elapsed_s > 0.0);
  check Alcotest.bool "positive throughput" true (m.Harness.Runner.mops > 0.0);
  check Alcotest.int "threads recorded" 2 m.Harness.Runner.threads

let test_run_once_rejects_bad_threads () =
  let f = Harness.Queues.wf () in
  let inst = f.Harness.Queues.make () in
  let spec = WL.scaled WL.Pairs ~total_ops:100 in
  (try
     ignore (Harness.Runner.run_once inst spec ~threads:0);
     Alcotest.fail "accepted 0 threads"
   with Invalid_argument _ -> ());
  try
    ignore (Harness.Runner.run_once inst spec ~threads:10_000);
    Alcotest.fail "accepted 10000 threads"
  with Invalid_argument _ -> ()

let test_injected_work_accounted () =
  let f = Harness.Queues.wf ~segment_shift:6 () in
  let inst = f.Harness.Queues.make () in
  let spec = WL.scaled WL.Pairs ~total_ops:2_000 in
  let m = Harness.Runner.run_once inst spec ~threads:1 in
  (* 2000 ops at mean 75ns = 150us expected think time *)
  check (Alcotest.float 1.0) "expected injected ns" 150_000.0 m.Harness.Runner.injected_ns;
  check Alcotest.bool "excl-work >= raw" true
    (m.Harness.Runner.mops_excl_work >= m.Harness.Runner.mops)

(* ------------------------------------------------------------------ *)
(* Report                                                             *)

let test_report_csv () =
  let t = Harness.Report.create ~header:[ "a"; "b" ] in
  Harness.Report.add_row t [ "1"; "x,y" ];
  Harness.Report.add_row t [ "2"; "has \"quote\"" ];
  let csv = Harness.Report.to_csv t in
  check Alcotest.string "csv escaping" "a,b\n1,\"x,y\"\n2,\"has \"\"quote\"\"\"\n" csv

let test_report_cells () =
  check Alcotest.string "float" "1.500" (Harness.Report.cell_float 1.5);
  let iv = Stats.Student_t.confidence_interval [| 10.0; 10.2; 9.8; 10.0 |] in
  let s = Harness.Report.cell_ci iv in
  check Alcotest.bool "ci cell has plusminus" true (String.length s > 5)

(* ------------------------------------------------------------------ *)
(* Platform                                                           *)

let test_platform_rows () =
  check Alcotest.int "four paper platforms" 4 (List.length Harness.Platform.paper_rows);
  let host = Harness.Platform.host () in
  check Alcotest.bool "host threads >= 1" true (host.Harness.Platform.hw_threads >= 1);
  check Alcotest.bool "host has a name" true (String.length host.Harness.Platform.processor > 0)

(* ------------------------------------------------------------------ *)
(* Plot                                                               *)

let test_plot_render_shape () =
  let out =
    Harness.Plot.render ~width:20 ~height:5 ~x_labels:[ "1"; "2"; "4" ] ~y_label:"y"
      [ { Harness.Plot.label = "a"; points = [| 1.0; 2.0; 3.0 |] } ]
  in
  let lines = String.split_on_char '\n' out in
  (* header + 5 canvas rows + axis + ticks + trailing *)
  check Alcotest.bool "enough lines" true (List.length lines >= 8);
  check Alcotest.bool "has glyph" true (String.contains out '*');
  check Alcotest.bool "max in header" true
    (String.length (List.hd lines) > 0 && String.contains (List.hd lines) '3')

let test_plot_rejects_mismatch () =
  (try
     ignore
       (Harness.Plot.render ~x_labels:[ "1"; "2" ] ~y_label:"y"
          [ { Harness.Plot.label = "a"; points = [| 1.0 |] } ]);
     Alcotest.fail "accepted mismatched series"
   with Invalid_argument _ -> ());
  try
    ignore (Harness.Plot.render ~x_labels:[] ~y_label:"y" []);
    Alcotest.fail "accepted empty x axis"
  with Invalid_argument _ -> ()

let test_plot_single_point () =
  let out =
    Harness.Plot.render ~width:10 ~height:4 ~x_labels:[ "1" ] ~y_label:"y"
      [ { Harness.Plot.label = "a"; points = [| 5.0 |] } ]
  in
  check Alcotest.bool "renders" true (String.contains out '*')

let test_plot_flat_zero_series () =
  (* all-zero data must not divide by zero *)
  let out =
    Harness.Plot.render ~width:10 ~height:4 ~x_labels:[ "1"; "2" ] ~y_label:"y"
      [ { Harness.Plot.label = "a"; points = [| 0.0; 0.0 |] } ]
  in
  check Alcotest.bool "renders" true (String.length out > 0)

(* ------------------------------------------------------------------ *)
(* Latency harness                                                    *)

let test_latency_measure () =
  let f = Harness.Queues.wf ~segment_shift:6 () in
  let p = Harness.Latency.measure f ~threads:2 ~ops_per_thread:2_000 ~kind:WL.Fifty_fifty in
  check Alcotest.int "all samples" 4_000 p.Harness.Latency.samples;
  check Alcotest.bool "percentiles ordered" true
    (p.Harness.Latency.p50_ns <= p.Harness.Latency.p90_ns
    && p.Harness.Latency.p90_ns <= p.Harness.Latency.p99_ns
    && p.Harness.Latency.p99_ns <= p.Harness.Latency.p999_ns
    && p.Harness.Latency.p999_ns <= p.Harness.Latency.max_ns);
  check Alcotest.bool "positive" true (p.Harness.Latency.p50_ns >= 0.0)

let test_latency_experiment_shape () =
  let queues = [ Harness.Queues.wf ~segment_shift:6 () ] in
  let t = Harness.Latency.experiment ~queues ~threads:2 ~ops_per_thread:1_000 () in
  let lines = String.split_on_char '\n' (String.trim (Harness.Report.to_csv t)) in
  check Alcotest.int "1 header + 1 row" 2 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Experiments (quick smoke)                                          *)

let test_table1_shape () =
  let t = Harness.Experiments.table1 () in
  (* header + separator are not rows; 4 paper rows + 1 host row *)
  let csv = Harness.Report.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "1 header + 5 rows" 6 (List.length lines)

let test_table2_shape () =
  let t = Harness.Experiments.table2 ~quick:true ~threads:[ 2; 3 ] ~total_ops:20_000 () in
  let lines = String.split_on_char '\n' (String.trim (Harness.Report.to_csv t)) in
  check Alcotest.int "1 header + 2 rows" 3 (List.length lines)

let test_figure2_tiny () =
  let queues = [ Harness.Queues.wf ~patience:10 ~segment_shift:6 () ] in
  let t =
    Harness.Experiments.figure2 ~quick:true ~threads:[ 1; 2 ] ~queues ~total_ops:10_000
      Harness.Workload.Pairs
  in
  let lines = String.split_on_char '\n' (String.trim (Harness.Report.to_csv t)) in
  check Alcotest.int "1 header + 1 queue row" 2 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Json codec                                                         *)

module J = Harness.Json

let roundtrip doc =
  match J.of_string (J.to_string doc) with
  | Ok doc' -> doc'
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)

let test_json_roundtrip_basics () =
  let doc =
    J.Obj
      [
        ("int", J.Int 42);
        ("neg", J.Int (-17));
        ("float", J.Float 1.125);
        ("whole_float", J.Float 3.0);
        ("tiny", J.Float 1.5e-9);
        ("string", J.String "with \"quotes\", back\\slash,\n\ttabs and \x01 control");
        ("null", J.Null);
        ("bools", J.List [ J.Bool true; J.Bool false ]);
        ("empty_list", J.List []);
        ("empty_obj", J.Obj []);
        ("nested", J.Obj [ ("xs", J.List [ J.Int 1; J.Obj [ ("y", J.Float 0.5) ] ]) ]);
      ]
  in
  check Alcotest.bool "structural round-trip" true (J.equal doc (roundtrip doc))

let test_json_whole_floats_stay_floats () =
  (* the regression that motivated the lossless emitter: 3.0 must not
     come back as Int 3 *)
  match roundtrip (J.Float 3.0) with
  | J.Float f -> check (Alcotest.float 0.0) "value" 3.0 f
  | _ -> Alcotest.fail "Float 3.0 reparsed as a non-float"

let test_json_int_stays_int () =
  match roundtrip (J.Int 3) with
  | J.Int 3 -> ()
  | _ -> Alcotest.fail "Int 3 did not survive"

let test_json_float_precision () =
  List.iter
    (fun f ->
      match roundtrip (J.Float f) with
      | J.Float f' -> check Alcotest.bool (string_of_float f) true (f = f')
      | _ -> Alcotest.fail "float became non-float")
    [ 0.1; 1.0 /. 3.0; Float.pi; 1e300; 5e-324; -0.0; 123456.789012345 ]

let test_json_nonfinite_becomes_null () =
  check Alcotest.bool "nan -> null" true (J.equal J.Null (roundtrip (J.Float Float.nan)));
  check Alcotest.bool "inf -> null" true
    (J.equal J.Null (roundtrip (J.Float Float.infinity)))

let test_json_parses_foreign_syntax () =
  (* things our emitter never writes but a hand-edited baseline may *)
  check Alcotest.bool "u-escape" true
    (J.of_string "\"\\u0041\\u00e9\"" = Ok (J.String "A\xc3\xa9"));
  check Alcotest.bool "exponent" true
    (match J.of_string "[1e3, -2.5E-1]" with
    | Ok (J.List [ J.Float a; J.Float b ]) -> a = 1000.0 && b = -0.25
    | _ -> false);
  check Alcotest.bool "compact" true
    (match J.of_string "{\"a\":1,\"b\":[true,null]}" with
    | Ok (J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Bool true; J.Null ]) ]) -> true
    | _ -> false)

let test_json_rejects_garbage () =
  List.iter
    (fun s -> check Alcotest.bool s true (Result.is_error (J.of_string s)))
    [
      ""; "{"; "[1,"; "\"unterminated"; "nul"; "1 2"; "{\"a\" 1}"; "{\"a\":}"; "\"bad \\q\"";
      "[1] trailing";
    ]

let test_json_member_accessors () =
  let doc = J.Obj [ ("a", J.Int 1); ("b", J.Float 2.5) ] in
  check Alcotest.bool "member hit" true (J.member "a" doc = Some (J.Int 1));
  check Alcotest.bool "member miss" true (J.member "z" doc = None);
  check Alcotest.bool "to_float of int" true
    (Option.bind (J.member "a" doc) J.to_float_opt = Some 1.0);
  check Alcotest.bool "to_float of float" true
    (Option.bind (J.member "b" doc) J.to_float_opt = Some 2.5);
  check Alcotest.bool "to_int rejects float" true (J.to_int_opt (J.Float 2.5) = None)

(* Property: emit → parse is the identity on finite documents. *)
let json_arbitrary =
  let open QCheck.Gen in
  let finite_float =
    map
      (fun f -> if Float.is_finite f then f else 0.0)
      (frequency [ (3, float); (1, map float_of_int int) ])
  in
  let scalar =
    frequency
      [
        (1, return J.Null);
        (2, map (fun b -> J.Bool b) bool);
        (4, map (fun i -> J.Int i) int);
        (4, map (fun f -> J.Float f) finite_float);
        (4, map (fun s -> J.String s) (string_size (int_bound 20)));
      ]
  in
  let tree =
    sized
    @@ fix (fun self n ->
           if n <= 0 then scalar
           else
             frequency
               [
                 (2, scalar);
                 (1, map (fun xs -> J.List xs) (list_size (int_bound 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun kvs -> J.Obj kvs)
                     (list_size (int_bound 4)
                        (pair (string_size (int_bound 8)) (self (n / 2)))) );
               ])
  in
  QCheck.make ~print:(fun t -> J.to_string t) tree

let json_roundtrip_prop =
  QCheck.Test.make ~name:"json roundtrip" ~count:500 json_arbitrary (fun doc ->
      match J.of_string (J.to_string doc) with Ok doc' -> J.equal doc doc' | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Gate                                                               *)

let fig2_point ~queue ~threads ~mean ~lower ~upper =
  J.Obj
    [
      ("queue", J.String queue);
      ("threads", J.Int threads);
      ("mops_mean", J.Float mean);
      ("mops_lower", J.Float lower);
      ("mops_upper", J.Float upper);
    ]

let telemetry_block ~patience ~slow_rate =
  J.List
    [
      J.Obj
        [
          ("patience", J.Int patience);
          ( "run",
            J.Obj
              [ ("snapshot", J.Obj [ ("ops", J.Obj [ ("slow_rate", J.Float slow_rate) ]) ]) ]
          );
        ];
    ]

let bench_doc ?telemetry points =
  J.Obj
    (("figure2_pairs", J.List points)
     ::
     (match telemetry with None -> [] | Some t -> [ ("telemetry", t) ]))

let baseline_doc () =
  bench_doc
    [
      fig2_point ~queue:"wf-10" ~threads:4 ~mean:2.0 ~lower:1.9 ~upper:2.1;
      fig2_point ~queue:"lcrq" ~threads:4 ~mean:1.5 ~lower:1.4 ~upper:1.6;
    ]

let run_gate ~baseline ~current =
  match Harness.Gate.compare_docs ~baseline ~current () with
  | Ok checks -> checks
  | Error e -> Alcotest.fail ("gate errored: " ^ e)

let test_gate_passes_on_identical () =
  let current =
    bench_doc
      ~telemetry:(telemetry_block ~patience:10 ~slow_rate:1e-6)
      [
        fig2_point ~queue:"wf-10" ~threads:4 ~mean:2.0 ~lower:1.9 ~upper:2.1;
        fig2_point ~queue:"lcrq" ~threads:4 ~mean:1.5 ~lower:1.4 ~upper:1.6;
      ]
  in
  let checks = run_gate ~baseline:(baseline_doc ()) ~current in
  check Alcotest.bool "passes" true (Harness.Gate.passed checks);
  (* 2 throughput + 1 slow-rate + 1 alloc skip note (the doc has no
     alloc_per_op section; test_alloc.ml covers the alloc checks) *)
  check Alcotest.int "check count" 4 (List.length checks)

let test_gate_tolerates_noise () =
  (* 3 noise bands with a 10% floor on a 2.0 mean allows ~1.4 *)
  let current =
    bench_doc
      ~telemetry:(telemetry_block ~patience:10 ~slow_rate:0.0)
      [
        fig2_point ~queue:"wf-10" ~threads:4 ~mean:1.5 ~lower:1.45 ~upper:1.55;
        fig2_point ~queue:"lcrq" ~threads:4 ~mean:1.2 ~lower:1.1 ~upper:1.3;
      ]
  in
  check Alcotest.bool "within band passes" true
    (Harness.Gate.passed (run_gate ~baseline:(baseline_doc ()) ~current))

let test_gate_fails_on_injected_regression () =
  (* wf-10 collapses from 2.0 to 0.5 Mops/s: far outside 3 bands *)
  let current =
    bench_doc
      ~telemetry:(telemetry_block ~patience:10 ~slow_rate:1e-6)
      [
        fig2_point ~queue:"wf-10" ~threads:4 ~mean:0.5 ~lower:0.45 ~upper:0.55;
        fig2_point ~queue:"lcrq" ~threads:4 ~mean:1.5 ~lower:1.4 ~upper:1.6;
      ]
  in
  let checks = run_gate ~baseline:(baseline_doc ()) ~current in
  check Alcotest.bool "fails" false (Harness.Gate.passed checks);
  let failed = List.filter (fun c -> not c.Harness.Gate.ok) checks in
  check Alcotest.int "exactly the wf-10 check fails" 1 (List.length failed);
  check Alcotest.bool "names the point" true
    (match failed with [ c ] -> c.Harness.Gate.label = "wf-10 @4T" | _ -> false)

let test_gate_fails_on_missing_queue () =
  let current =
    bench_doc
      ~telemetry:(telemetry_block ~patience:10 ~slow_rate:0.0)
      [ fig2_point ~queue:"wf-10" ~threads:4 ~mean:2.0 ~lower:1.9 ~upper:2.1 ]
  in
  check Alcotest.bool "dropped benchmark fails its gate" false
    (Harness.Gate.passed (run_gate ~baseline:(baseline_doc ()) ~current))

let test_gate_fails_on_slow_path_rate () =
  let current =
    bench_doc
      ~telemetry:(telemetry_block ~patience:10 ~slow_rate:0.05)
      [
        fig2_point ~queue:"wf-10" ~threads:4 ~mean:2.0 ~lower:1.9 ~upper:2.1;
        fig2_point ~queue:"lcrq" ~threads:4 ~mean:1.5 ~lower:1.4 ~upper:1.6;
      ]
  in
  let checks = run_gate ~baseline:(baseline_doc ()) ~current in
  check Alcotest.bool "wait-freedom check fails" false (Harness.Gate.passed checks)

let test_gate_fails_without_telemetry () =
  let current = baseline_doc () in
  check Alcotest.bool "missing telemetry is a failure, not a pass" false
    (Harness.Gate.passed (run_gate ~baseline:(baseline_doc ()) ~current))

let test_gate_structural_error () =
  match Harness.Gate.compare_docs ~baseline:(J.Obj []) ~current:(baseline_doc ()) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a baseline with no figure2_pairs"

let test_gate_real_bench_doc_roundtrip () =
  (* the gate must accept its own documents after a disk round-trip *)
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let doc =
        bench_doc
          ~telemetry:(telemetry_block ~patience:10 ~slow_rate:1e-6)
          [ fig2_point ~queue:"wf-10" ~threads:4 ~mean:2.0 ~lower:1.9 ~upper:2.1 ]
      in
      J.save doc ~path;
      match J.load ~path with
      | Error e -> Alcotest.fail e
      | Ok doc' ->
        check Alcotest.bool "disk round-trip" true (J.equal doc doc');
        check Alcotest.bool "gate passes" true
          (Harness.Gate.passed (run_gate ~baseline:doc ~current:doc')))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                          *)

let test_telemetry_run_counts_and_latency () =
  let f = Harness.Queues.wf_obs ~patience:10 ~segment_shift:6 () in
  let inst = f.Harness.Queues.make () in
  let spec = { (WL.scaled WL.Pairs ~total_ops:4_000) with WL.work_ns = None } in
  let r = Harness.Telemetry.run inst spec ~threads:2 in
  check Alcotest.int "ops" 4_000 r.Harness.Telemetry.ops;
  (match r.Harness.Telemetry.snapshot with
  | None -> Alcotest.fail "wf_obs must produce a snapshot"
  | Some snap ->
    check Alcotest.int "snapshot covers every op" 4_000
      (Obs.Counters.total_ops snap.Obs.Snapshot.ops);
    check Alcotest.bool "probe on" true snap.Obs.Snapshot.probe_enabled);
  let total_samples =
    List.fold_left
      (fun acc cls ->
        acc
        + (Obs.Op_latency.summarize r.Harness.Telemetry.latency cls).Obs.Op_latency.samples)
      0 Obs.Op_latency.classes
  in
  check Alcotest.int "every op timed" 4_000 total_samples

let test_telemetry_stats_table_shape () =
  let rows =
    Harness.Telemetry.stats_table ~patiences:[ 0; 10 ] ~total_ops:2_000 ~threads:2 ()
  in
  check Alcotest.int "one row per patience" 2 (List.length rows);
  List.iter
    (fun (r : Harness.Telemetry.row) ->
      check Alcotest.int "ops performed" 2_000 r.Harness.Telemetry.result.Harness.Telemetry.ops;
      match r.Harness.Telemetry.result.Harness.Telemetry.snapshot with
      | None -> Alcotest.fail "instrumented rows carry snapshots"
      | Some snap ->
        check Alcotest.int "row patience matches queue" r.Harness.Telemetry.patience
          snap.Obs.Snapshot.patience)
    rows;
  (* the table and JSON renderings must not raise *)
  ignore (Format.asprintf "%a" Harness.Telemetry.pp_table rows);
  let json = Harness.Telemetry.table_to_json rows in
  match J.of_string (J.to_string json) with
  | Ok reparsed -> check Alcotest.bool "telemetry json round-trips" true (J.equal json reparsed)
  | Error e -> Alcotest.fail e

let test_telemetry_json_feeds_gate () =
  let rows =
    Harness.Telemetry.stats_table ~patiences:[ 10 ] ~total_ops:2_000 ~threads:2 ()
  in
  let doc = J.Obj [ ("telemetry", Harness.Telemetry.table_to_json rows) ] in
  match Harness.Gate.telemetry_slow_rate ~patience:10 doc with
  | None -> Alcotest.fail "gate cannot read the telemetry block"
  | Some rate -> check Alcotest.bool "rate in [0,1]" true (rate >= 0.0 && rate <= 1.0)

let test_wf_obs_in_registry () =
  check Alcotest.bool "wf-10-obs registered" true
    (Harness.Queues.find "wf-10-obs" <> None)

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "kind parsing" `Quick test_kind_parsing;
          Alcotest.test_case "paper defaults" `Quick test_defaults_match_paper;
          Alcotest.test_case "ops per thread" `Quick test_ops_per_thread;
          Alcotest.test_case "pairs body" `Quick test_thread_body_pairs;
          Alcotest.test_case "half deterministic" `Quick test_thread_body_half_deterministic;
          Alcotest.test_case "distinct per thread" `Quick test_thread_body_distinct_per_thread;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "every factory fifo" `Quick test_each_factory_is_fifo;
          Alcotest.test_case "wf stats" `Quick test_wf_factory_stats;
        ] );
      ( "runner",
        [
          Alcotest.test_case "counts ops" `Quick test_run_once_counts_ops;
          Alcotest.test_case "rejects bad threads" `Quick test_run_once_rejects_bad_threads;
          Alcotest.test_case "injected work" `Quick test_injected_work_accounted;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "cells" `Quick test_report_cells;
        ] );
      ("platform", [ Alcotest.test_case "rows" `Quick test_platform_rows ]);
      ( "plot",
        [
          Alcotest.test_case "render shape" `Quick test_plot_render_shape;
          Alcotest.test_case "rejects mismatch" `Quick test_plot_rejects_mismatch;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
          Alcotest.test_case "flat zero" `Quick test_plot_flat_zero_series;
        ] );
      ( "latency",
        [
          Alcotest.test_case "measure" `Quick test_latency_measure;
          Alcotest.test_case "experiment shape" `Quick test_latency_experiment_shape;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1" `Quick test_table1_shape;
          Alcotest.test_case "table2" `Quick test_table2_shape;
          Alcotest.test_case "figure2 tiny" `Quick test_figure2_tiny;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_json_roundtrip_basics;
          Alcotest.test_case "whole floats stay floats" `Quick
            test_json_whole_floats_stay_floats;
          Alcotest.test_case "ints stay ints" `Quick test_json_int_stays_int;
          Alcotest.test_case "float precision" `Quick test_json_float_precision;
          Alcotest.test_case "nonfinite to null" `Quick test_json_nonfinite_becomes_null;
          Alcotest.test_case "foreign syntax" `Quick test_json_parses_foreign_syntax;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_member_accessors;
          QCheck_alcotest.to_alcotest json_roundtrip_prop;
        ] );
      ( "gate",
        [
          Alcotest.test_case "passes on identical" `Quick test_gate_passes_on_identical;
          Alcotest.test_case "tolerates noise" `Quick test_gate_tolerates_noise;
          Alcotest.test_case "fails on injected regression" `Quick
            test_gate_fails_on_injected_regression;
          Alcotest.test_case "fails on missing queue" `Quick test_gate_fails_on_missing_queue;
          Alcotest.test_case "fails on slow-path rate" `Quick test_gate_fails_on_slow_path_rate;
          Alcotest.test_case "fails without telemetry" `Quick test_gate_fails_without_telemetry;
          Alcotest.test_case "structural error" `Quick test_gate_structural_error;
          Alcotest.test_case "disk roundtrip" `Quick test_gate_real_bench_doc_roundtrip;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "run counts and latency" `Quick
            test_telemetry_run_counts_and_latency;
          Alcotest.test_case "stats table shape" `Quick test_telemetry_stats_table_shape;
          Alcotest.test_case "json feeds gate" `Quick test_telemetry_json_feeds_gate;
          Alcotest.test_case "wf-obs registered" `Quick test_wf_obs_in_registry;
        ] );
    ]
