(* Tests for the benchmark harness: workload math and determinism,
   the runner, the queue registry, report rendering, platform
   detection, and quick-mode smoke runs of the experiment drivers. *)

module WL = Harness.Workload

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Workload                                                           *)

let test_kind_parsing () =
  check Alcotest.bool "pairs" true (WL.kind_of_string "pairs" = Ok WL.Pairs);
  check Alcotest.bool "half" true (WL.kind_of_string "half" = Ok WL.Fifty_fifty);
  check Alcotest.bool "fifty" true (WL.kind_of_string "fifty" = Ok WL.Fifty_fifty);
  check Alcotest.bool "garbage rejected" true (Result.is_error (WL.kind_of_string "nope"));
  check Alcotest.string "roundtrip pairs" "pairs" (WL.kind_to_string WL.Pairs);
  check Alcotest.string "roundtrip half" "half" (WL.kind_to_string WL.Fifty_fifty)

let test_defaults_match_paper () =
  let d = WL.default WL.Pairs in
  check Alcotest.int "10^7 operations" 10_000_000 d.WL.total_ops;
  check Alcotest.bool "50-100ns think time" true (d.WL.work_ns = Some (50, 100))

let test_ops_per_thread () =
  let spec = WL.scaled WL.Pairs ~total_ops:1_000 in
  check Alcotest.int "even split" 250 (WL.ops_per_thread spec ~threads:4);
  (* pairs are whole: 1000/3 = 333 -> 332 (166 pairs) *)
  check Alcotest.int "whole pairs" 332 (WL.ops_per_thread spec ~threads:3);
  let spec = WL.scaled WL.Fifty_fifty ~total_ops:1_000 in
  check Alcotest.int "half split" 333 (WL.ops_per_thread spec ~threads:3)

let counting_ops () =
  let enq = ref 0 and deq = ref 0 in
  ( {
      Harness.Queues.enqueue = (fun _ -> incr enq);
      dequeue =
        (fun () ->
          incr deq;
          None);
      release = ignore;
    },
    enq,
    deq )

let test_thread_body_pairs () =
  let spec = { (WL.scaled WL.Pairs ~total_ops:400) with WL.work_ns = None } in
  let ops, enq, deq = counting_ops () in
  let performed = WL.thread_body spec ~thread:0 ops ~threads:2 () in
  check Alcotest.int "performed = share" 200 performed;
  check Alcotest.int "half enqueues" 100 !enq;
  check Alcotest.int "half dequeues" 100 !deq

let test_thread_body_half_deterministic () =
  let spec = { (WL.scaled WL.Fifty_fifty ~total_ops:1_000) with WL.work_ns = None } in
  let run () =
    let ops, enq, _ = counting_ops () in
    let performed = WL.thread_body spec ~thread:3 ops ~threads:2 () in
    (performed, !enq)
  in
  let p1, e1 = run () in
  let p2, e2 = run () in
  check Alcotest.int "same op count" p1 p2;
  check Alcotest.int "same coin flips" e1 e2;
  check Alcotest.int "share" 500 p1;
  (* roughly balanced enqueues *)
  check Alcotest.bool "roughly half enqueues" true (e1 > 200 && e1 < 300)

let test_thread_body_distinct_per_thread () =
  let spec = { (WL.scaled WL.Fifty_fifty ~total_ops:1_000) with WL.work_ns = None } in
  let enqs t =
    let ops, enq, _ = counting_ops () in
    ignore (WL.thread_body spec ~thread:t ops ~threads:2 ());
    !enq
  in
  check Alcotest.bool "different threads different streams" true (enqs 0 <> enqs 1)

(* ------------------------------------------------------------------ *)
(* Queues registry                                                    *)

let test_registry_names_unique () =
  let names = Harness.Queues.names () in
  let sorted = List.sort_uniq compare names in
  check Alcotest.int "no duplicate names" (List.length names) (List.length sorted);
  check Alcotest.bool "has wf-10" true (List.mem "wf-10" names);
  check Alcotest.bool "has wf-0" true (List.mem "wf-0" names);
  check Alcotest.bool "has lcrq" true (List.mem "lcrq" names);
  check Alcotest.bool "has faa" true (List.mem "faa" names)

let test_registry_find () =
  check Alcotest.bool "find wf-10" true (Harness.Queues.find "wf-10" <> None);
  check Alcotest.bool "find nothing" true (Harness.Queues.find "bogus" = None)

let test_each_factory_is_fifo () =
  List.iter
    (fun (f : Harness.Queues.factory) ->
      if f.Harness.Queues.is_real_queue then begin
        let inst = f.Harness.Queues.make () in
        let ops = inst.Harness.Queues.register () in
        ops.Harness.Queues.enqueue 1;
        ops.Harness.Queues.enqueue 2;
        check Alcotest.(option int) (f.Harness.Queues.name ^ " fifo 1") (Some 1)
          (ops.Harness.Queues.dequeue ());
        check Alcotest.(option int) (f.Harness.Queues.name ^ " fifo 2") (Some 2)
          (ops.Harness.Queues.dequeue ());
        check Alcotest.(option int) (f.Harness.Queues.name ^ " empty") None
          (ops.Harness.Queues.dequeue ())
      end)
    Harness.Queues.all

let test_wf_factory_stats () =
  let f = Harness.Queues.wf ~patience:0 () in
  let inst = f.Harness.Queues.make () in
  let ops = inst.Harness.Queues.register () in
  ops.Harness.Queues.enqueue 1;
  ignore (ops.Harness.Queues.dequeue ());
  (match inst.Harness.Queues.op_stats () with
  | Some s ->
    check Alcotest.int "enqueues tracked" 1 (Wfq.Op_stats.total_enqueues s);
    check Alcotest.int "dequeues tracked" 1 (Wfq.Op_stats.total_dequeues s)
  | None -> Alcotest.fail "wf factory must expose stats");
  inst.Harness.Queues.reset_op_stats ();
  match inst.Harness.Queues.op_stats () with
  | Some s -> check Alcotest.int "reset" 0 (Wfq.Op_stats.total_enqueues s)
  | None -> Alcotest.fail "stats gone after reset"

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)

let test_run_once_counts_ops () =
  let f = Harness.Queues.wf ~patience:10 ~segment_shift:6 () in
  let inst = f.Harness.Queues.make () in
  let spec = { (WL.scaled WL.Pairs ~total_ops:8_000) with WL.work_ns = None } in
  let m = Harness.Runner.run_once inst spec ~threads:2 in
  check Alcotest.int "ops performed" 8_000 m.Harness.Runner.ops;
  check Alcotest.bool "positive time" true (m.Harness.Runner.elapsed_s > 0.0);
  check Alcotest.bool "positive throughput" true (m.Harness.Runner.mops > 0.0);
  check Alcotest.int "threads recorded" 2 m.Harness.Runner.threads

let test_run_once_rejects_bad_threads () =
  let f = Harness.Queues.wf () in
  let inst = f.Harness.Queues.make () in
  let spec = WL.scaled WL.Pairs ~total_ops:100 in
  (try
     ignore (Harness.Runner.run_once inst spec ~threads:0);
     Alcotest.fail "accepted 0 threads"
   with Invalid_argument _ -> ());
  try
    ignore (Harness.Runner.run_once inst spec ~threads:10_000);
    Alcotest.fail "accepted 10000 threads"
  with Invalid_argument _ -> ()

let test_injected_work_accounted () =
  let f = Harness.Queues.wf ~segment_shift:6 () in
  let inst = f.Harness.Queues.make () in
  let spec = WL.scaled WL.Pairs ~total_ops:2_000 in
  let m = Harness.Runner.run_once inst spec ~threads:1 in
  (* 2000 ops at mean 75ns = 150us expected think time *)
  check (Alcotest.float 1.0) "expected injected ns" 150_000.0 m.Harness.Runner.injected_ns;
  check Alcotest.bool "excl-work >= raw" true
    (m.Harness.Runner.mops_excl_work >= m.Harness.Runner.mops)

(* ------------------------------------------------------------------ *)
(* Report                                                             *)

let test_report_csv () =
  let t = Harness.Report.create ~header:[ "a"; "b" ] in
  Harness.Report.add_row t [ "1"; "x,y" ];
  Harness.Report.add_row t [ "2"; "has \"quote\"" ];
  let csv = Harness.Report.to_csv t in
  check Alcotest.string "csv escaping" "a,b\n1,\"x,y\"\n2,\"has \"\"quote\"\"\"\n" csv

let test_report_cells () =
  check Alcotest.string "float" "1.500" (Harness.Report.cell_float 1.5);
  let iv = Stats.Student_t.confidence_interval [| 10.0; 10.2; 9.8; 10.0 |] in
  let s = Harness.Report.cell_ci iv in
  check Alcotest.bool "ci cell has plusminus" true (String.length s > 5)

(* ------------------------------------------------------------------ *)
(* Platform                                                           *)

let test_platform_rows () =
  check Alcotest.int "four paper platforms" 4 (List.length Harness.Platform.paper_rows);
  let host = Harness.Platform.host () in
  check Alcotest.bool "host threads >= 1" true (host.Harness.Platform.hw_threads >= 1);
  check Alcotest.bool "host has a name" true (String.length host.Harness.Platform.processor > 0)

(* ------------------------------------------------------------------ *)
(* Plot                                                               *)

let test_plot_render_shape () =
  let out =
    Harness.Plot.render ~width:20 ~height:5 ~x_labels:[ "1"; "2"; "4" ] ~y_label:"y"
      [ { Harness.Plot.label = "a"; points = [| 1.0; 2.0; 3.0 |] } ]
  in
  let lines = String.split_on_char '\n' out in
  (* header + 5 canvas rows + axis + ticks + trailing *)
  check Alcotest.bool "enough lines" true (List.length lines >= 8);
  check Alcotest.bool "has glyph" true (String.contains out '*');
  check Alcotest.bool "max in header" true
    (String.length (List.hd lines) > 0 && String.contains (List.hd lines) '3')

let test_plot_rejects_mismatch () =
  (try
     ignore
       (Harness.Plot.render ~x_labels:[ "1"; "2" ] ~y_label:"y"
          [ { Harness.Plot.label = "a"; points = [| 1.0 |] } ]);
     Alcotest.fail "accepted mismatched series"
   with Invalid_argument _ -> ());
  try
    ignore (Harness.Plot.render ~x_labels:[] ~y_label:"y" []);
    Alcotest.fail "accepted empty x axis"
  with Invalid_argument _ -> ()

let test_plot_single_point () =
  let out =
    Harness.Plot.render ~width:10 ~height:4 ~x_labels:[ "1" ] ~y_label:"y"
      [ { Harness.Plot.label = "a"; points = [| 5.0 |] } ]
  in
  check Alcotest.bool "renders" true (String.contains out '*')

let test_plot_flat_zero_series () =
  (* all-zero data must not divide by zero *)
  let out =
    Harness.Plot.render ~width:10 ~height:4 ~x_labels:[ "1"; "2" ] ~y_label:"y"
      [ { Harness.Plot.label = "a"; points = [| 0.0; 0.0 |] } ]
  in
  check Alcotest.bool "renders" true (String.length out > 0)

(* ------------------------------------------------------------------ *)
(* Latency harness                                                    *)

let test_latency_measure () =
  let f = Harness.Queues.wf ~segment_shift:6 () in
  let p = Harness.Latency.measure f ~threads:2 ~ops_per_thread:2_000 ~kind:WL.Fifty_fifty in
  check Alcotest.int "all samples" 4_000 p.Harness.Latency.samples;
  check Alcotest.bool "percentiles ordered" true
    (p.Harness.Latency.p50_ns <= p.Harness.Latency.p90_ns
    && p.Harness.Latency.p90_ns <= p.Harness.Latency.p99_ns
    && p.Harness.Latency.p99_ns <= p.Harness.Latency.p999_ns
    && p.Harness.Latency.p999_ns <= p.Harness.Latency.max_ns);
  check Alcotest.bool "positive" true (p.Harness.Latency.p50_ns >= 0.0)

let test_latency_experiment_shape () =
  let queues = [ Harness.Queues.wf ~segment_shift:6 () ] in
  let t = Harness.Latency.experiment ~queues ~threads:2 ~ops_per_thread:1_000 () in
  let lines = String.split_on_char '\n' (String.trim (Harness.Report.to_csv t)) in
  check Alcotest.int "1 header + 1 row" 2 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Experiments (quick smoke)                                          *)

let test_table1_shape () =
  let t = Harness.Experiments.table1 () in
  (* header + separator are not rows; 4 paper rows + 1 host row *)
  let csv = Harness.Report.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "1 header + 5 rows" 6 (List.length lines)

let test_table2_shape () =
  let t = Harness.Experiments.table2 ~quick:true ~threads:[ 2; 3 ] ~total_ops:20_000 () in
  let lines = String.split_on_char '\n' (String.trim (Harness.Report.to_csv t)) in
  check Alcotest.int "1 header + 2 rows" 3 (List.length lines)

let test_figure2_tiny () =
  let queues = [ Harness.Queues.wf ~patience:10 ~segment_shift:6 () ] in
  let t =
    Harness.Experiments.figure2 ~quick:true ~threads:[ 1; 2 ] ~queues ~total_ops:10_000
      Harness.Workload.Pairs
  in
  let lines = String.split_on_char '\n' (String.trim (Harness.Report.to_csv t)) in
  check Alcotest.int "1 header + 1 queue row" 2 (List.length lines)

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "kind parsing" `Quick test_kind_parsing;
          Alcotest.test_case "paper defaults" `Quick test_defaults_match_paper;
          Alcotest.test_case "ops per thread" `Quick test_ops_per_thread;
          Alcotest.test_case "pairs body" `Quick test_thread_body_pairs;
          Alcotest.test_case "half deterministic" `Quick test_thread_body_half_deterministic;
          Alcotest.test_case "distinct per thread" `Quick test_thread_body_distinct_per_thread;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "every factory fifo" `Quick test_each_factory_is_fifo;
          Alcotest.test_case "wf stats" `Quick test_wf_factory_stats;
        ] );
      ( "runner",
        [
          Alcotest.test_case "counts ops" `Quick test_run_once_counts_ops;
          Alcotest.test_case "rejects bad threads" `Quick test_run_once_rejects_bad_threads;
          Alcotest.test_case "injected work" `Quick test_injected_work_accounted;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "cells" `Quick test_report_cells;
        ] );
      ("platform", [ Alcotest.test_case "rows" `Quick test_platform_rows ]);
      ( "plot",
        [
          Alcotest.test_case "render shape" `Quick test_plot_render_shape;
          Alcotest.test_case "rejects mismatch" `Quick test_plot_rejects_mismatch;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
          Alcotest.test_case "flat zero" `Quick test_plot_flat_zero_series;
        ] );
      ( "latency",
        [
          Alcotest.test_case "measure" `Quick test_latency_measure;
          Alcotest.test_case "experiment shape" `Quick test_latency_experiment_shape;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1" `Quick test_table1_shape;
          Alcotest.test_case "table2" `Quick test_table2_shape;
          Alcotest.test_case "figure2 tiny" `Quick test_figure2_tiny;
        ] );
    ]
