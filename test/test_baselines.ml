(* Tests for the baseline queues the paper compares against:
   MS-Queue, the two-lock queue, the mutex queue, CRQ/LCRQ, CC-Queue,
   and the FAA microbenchmark facade. *)

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* Shared black-box batteries, instantiated per implementation. *)
module type QUEUE = sig
  type 'a t
  type 'a handle

  val name : string
  val create : unit -> 'a t
  val register : 'a t -> 'a handle
  val enqueue : 'a t -> 'a handle -> 'a -> unit
  val dequeue : 'a t -> 'a handle -> 'a option
end

module Battery (Q : QUEUE) = struct
  let test_fifo () =
    let q = Q.create () in
    let h = Q.register q in
    check Alcotest.(option int) "empty" None (Q.dequeue q h);
    for i = 1 to 1_000 do
      Q.enqueue q h i
    done;
    for i = 1 to 1_000 do
      check Alcotest.(option int) "fifo" (Some i) (Q.dequeue q h)
    done;
    check Alcotest.(option int) "drained" None (Q.dequeue q h)

  let test_alternating () =
    let q = Q.create () in
    let h = Q.register q in
    for i = 1 to 500 do
      Q.enqueue q h i;
      check Alcotest.(option int) "alternating" (Some i) (Q.dequeue q h);
      check Alcotest.(option int) "empty between" None (Q.dequeue q h)
    done

  let prop_model =
    QCheck.Test.make
      ~name:(Q.name ^ " sequential model")
      ~count:200
      QCheck.(list (oneof [ map (fun x -> `Enq x) small_nat; always `Deq ]))
      (fun program ->
        let q = Q.create () in
        let h = Q.register q in
        let model = Queue.create () in
        List.for_all
          (function
            | `Enq x ->
              Q.enqueue q h x;
              Queue.push x model;
              true
            | `Deq -> Q.dequeue q h = Queue.take_opt model)
          program)

  let test_mpmc () =
    let q = Q.create () in
    let nprod = 3 and ncons = 3 and n = 10_000 in
    let total = nprod * n in
    let consumed = Atomic.make 0 and sum = Atomic.make 0 in
    let producers =
      List.init nprod (fun p ->
          Domain.spawn (fun () ->
              let h = Q.register q in
              for i = 0 to n - 1 do
                Q.enqueue q h ((p * n) + i)
              done))
    in
    let consumers =
      List.init ncons (fun _ ->
          Domain.spawn (fun () ->
              let h = Q.register q in
              let continue = ref true in
              while !continue do
                match Q.dequeue q h with
                | Some v ->
                  ignore (Atomic.fetch_and_add sum v);
                  if Atomic.fetch_and_add consumed 1 = total - 1 then continue := false
                | None -> if Atomic.get consumed >= total then continue := false
              done))
    in
    List.iter Domain.join producers;
    List.iter Domain.join consumers;
    check Alcotest.int "all consumed" total (Atomic.get consumed);
    check Alcotest.int "checksum" (total * (total - 1) / 2) (Atomic.get sum)

  let suite =
    ( Q.name,
      [
        Alcotest.test_case "fifo" `Quick test_fifo;
        Alcotest.test_case "alternating" `Quick test_alternating;
        Alcotest.test_case "mpmc" `Quick test_mpmc;
        qtest prop_model;
      ] )
end

module Ms = Battery (struct
  include Baselines.Msqueue

  let name = "msqueue"
end)

module Tl = Battery (struct
  include Baselines.Two_lock_queue

  let name = "two_lock"
end)

module Mx = Battery (struct
  include Baselines.Mutex_queue

  let name = "mutex"
end)

module Lc = Battery (struct
  include Baselines.Lcrq

  let name = "lcrq"
  let create () = Baselines.Lcrq.create ~ring_size:16 ()
end)

module Cc = Battery (struct
  include Baselines.Ccqueue

  let name = "ccqueue"
  let create () = Baselines.Ccqueue.create ()
end)

module Kp = Battery (struct
  include Baselines.Kp_queue

  let name = "kp_queue"
  let create () = Baselines.Kp_queue.create ()
end)

module Sc = Battery (struct
  include Baselines.Scq

  let name = "scq"

  (* The battery's single-threaded cases stage up to tens of thousands
     of values before draining; a bounded ring must be big enough that
     the spinning [enqueue] never waits on an absent consumer. *)
  let create () = Baselines.Scq.create ~order:14 ()
end)

(* ------------------------------------------------------------------ *)
(* CRQ specifics                                                      *)

let test_crq_basic () =
  let c = Baselines.Crq.create ~size:8 in
  check Alcotest.bool "enq ok" true (Baselines.Crq.enqueue c 1 = `Ok);
  check Alcotest.bool "enq ok" true (Baselines.Crq.enqueue c 2 = `Ok);
  check Alcotest.(option int) "deq 1" (Some 1) (Baselines.Crq.dequeue c);
  check Alcotest.(option int) "deq 2" (Some 2) (Baselines.Crq.dequeue c);
  check Alcotest.(option int) "empty" None (Baselines.Crq.dequeue c)

let test_crq_wraparound () =
  let c = Baselines.Crq.create ~size:4 in
  (* cycle values through the ring repeatedly: slots are reused *)
  for round = 0 to 20 do
    for k = 0 to 2 do
      check Alcotest.bool "enq" true (Baselines.Crq.enqueue c ((round * 3) + k) = `Ok)
    done;
    for k = 0 to 2 do
      check Alcotest.(option int) "deq" (Some ((round * 3) + k)) (Baselines.Crq.dequeue c)
    done
  done

let test_crq_close () =
  let c = Baselines.Crq.create ~size:8 in
  check Alcotest.bool "open" false (Baselines.Crq.is_closed c);
  check Alcotest.bool "enq before close" true (Baselines.Crq.enqueue c 1 = `Ok);
  Baselines.Crq.close c;
  check Alcotest.bool "closed" true (Baselines.Crq.is_closed c);
  check Alcotest.bool "enq after close" true (Baselines.Crq.enqueue c 2 = `Closed);
  (* draining still works *)
  check Alcotest.(option int) "drain" (Some 1) (Baselines.Crq.dequeue c);
  check Alcotest.(option int) "empty" None (Baselines.Crq.dequeue c)

let test_crq_fills_up () =
  let c = Baselines.Crq.create ~size:4 in
  let rec fill n =
    if Baselines.Crq.enqueue c n = `Ok then fill (n + 1) else n
  in
  let accepted = fill 0 in
  check Alcotest.bool "closes when full" true (accepted >= 4);
  check Alcotest.bool "closed after overflow" true (Baselines.Crq.is_closed c);
  (* everything accepted is dequeued in order *)
  for i = 0 to accepted - 1 do
    check Alcotest.(option int) "ordered drain" (Some i) (Baselines.Crq.dequeue c)
  done;
  check Alcotest.(option int) "then empty" None (Baselines.Crq.dequeue c)

let test_crq_empty_overshoot_fixstate () =
  let c = Baselines.Crq.create ~size:8 in
  (* many empty dequeues push head beyond tail; fixState must let
     subsequent enqueues succeed *)
  for _ = 1 to 30 do
    check Alcotest.(option int) "empty" None (Baselines.Crq.dequeue c)
  done;
  check Alcotest.bool "enqueue recovers" true (Baselines.Crq.enqueue c 5 = `Ok);
  check Alcotest.(option int) "value lands" (Some 5) (Baselines.Crq.dequeue c)

let test_lcrq_ring_turnover () =
  let q = Baselines.Lcrq.create ~ring_size:4 () in
  let h = Baselines.Lcrq.register q in
  check Alcotest.int "one ring" 1 (Baselines.Lcrq.ring_count q);
  (* standing backlog > ring size forces closes and fresh rings *)
  for i = 1 to 64 do
    Baselines.Lcrq.enqueue q h i
  done;
  check Alcotest.bool "rings appended" true (Baselines.Lcrq.ring_count q > 1);
  for i = 1 to 64 do
    check Alcotest.(option int) "fifo across rings" (Some i) (Baselines.Lcrq.dequeue q h)
  done;
  check Alcotest.(option int) "drained" None (Baselines.Lcrq.dequeue q h)

(* ------------------------------------------------------------------ *)
(* SCQ specifics                                                      *)

let test_scq_bounded () =
  let q = Baselines.Scq.create ~order:2 () in
  let h = Baselines.Scq.register q in
  check Alcotest.int "capacity" 4 (Baselines.Scq.capacity q);
  for i = 1 to 4 do
    check Alcotest.bool "accepts to capacity" true (Baselines.Scq.try_enqueue q h i)
  done;
  check Alcotest.bool "rejects when full" false (Baselines.Scq.try_enqueue q h 5);
  check Alcotest.(option int) "fifo after reject" (Some 1) (Baselines.Scq.dequeue q h);
  check Alcotest.bool "slot freed" true (Baselines.Scq.try_enqueue q h 5);
  for i = 2 to 5 do
    check Alcotest.(option int) "drains in order" (Some i) (Baselines.Scq.dequeue q h)
  done;
  check Alcotest.(option int) "empty" None (Baselines.Scq.dequeue q h)

let test_scq_cycle_turnover () =
  (* Many full wraps of both rings: cycle tags must keep stale entries
     from masquerading as fresh ones. *)
  let q = Baselines.Scq.create ~order:3 () in
  let h = Baselines.Scq.register q in
  for round = 0 to 200 do
    for k = 0 to 5 do
      Baselines.Scq.enqueue q h ((round * 6) + k)
    done;
    for k = 0 to 5 do
      check Alcotest.(option int) "wrap fifo" (Some ((round * 6) + k))
        (Baselines.Scq.dequeue q h)
    done;
    check Alcotest.(option int) "wrap empty" None (Baselines.Scq.dequeue q h)
  done

let test_scq_dequeue_or () =
  let q = Baselines.Scq.create ~order:4 () in
  let h = Baselines.Scq.register q in
  check Alcotest.int "empty default" (-7) (Baselines.Scq.dequeue_or q h (-7));
  Baselines.Scq.enqueue q h 42;
  check Alcotest.int "value" 42 (Baselines.Scq.dequeue_or q h (-7));
  check Alcotest.int "empty again" (-7) (Baselines.Scq.dequeue_or q h (-7))

let test_scq_full_backpressure () =
  (* Producers outnumber capacity: [enqueue] must block (spin) rather
     than drop, and every value must come out exactly once. *)
  let q = Baselines.Scq.create ~order:2 () in
  let n = 2_000 in
  let producer =
    Domain.spawn (fun () ->
        let h = Baselines.Scq.register q in
        for i = 1 to n do
          Baselines.Scq.enqueue q h i
        done)
  in
  let h = Baselines.Scq.register q in
  let sum = ref 0 and got = ref 0 in
  while !got < n do
    match Baselines.Scq.dequeue q h with
    | Some v ->
      sum := !sum + v;
      incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check Alcotest.int "checksum through a full ring" (n * (n + 1) / 2) !sum

(* ------------------------------------------------------------------ *)
(* FAA microbenchmark facade                                          *)

let test_faa_counts () =
  let q = Baselines.Faa_bench.create () in
  let h = Baselines.Faa_bench.register q in
  check Alcotest.(option int) "before any enqueue" None (Baselines.Faa_bench.dequeue q h);
  Baselines.Faa_bench.enqueue q h 42;
  Baselines.Faa_bench.enqueue q h 43;
  check Alcotest.(option int) "witness value" (Some 42) (Baselines.Faa_bench.dequeue q h);
  check Alcotest.int "enqueue count" 2 (Baselines.Faa_bench.enqueue_count q);
  check Alcotest.int "dequeue count" 2 (Baselines.Faa_bench.dequeue_count q)

let test_faa_concurrent_counts () =
  let q = Baselines.Faa_bench.create () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let h = Baselines.Faa_bench.register q in
            for i = 1 to 10_000 do
              Baselines.Faa_bench.enqueue q h i;
              ignore (Baselines.Faa_bench.dequeue q h)
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "enqueues" 40_000 (Baselines.Faa_bench.enqueue_count q);
  check Alcotest.int "dequeues" 40_000 (Baselines.Faa_bench.dequeue_count q)

let () =
  Alcotest.run "baselines"
    [
      Ms.suite;
      Tl.suite;
      Mx.suite;
      Lc.suite;
      Cc.suite;
      Kp.suite;
      Sc.suite;
      ( "scq-ring",
        [
          Alcotest.test_case "bounded try_enqueue" `Quick test_scq_bounded;
          Alcotest.test_case "cycle turnover" `Quick test_scq_cycle_turnover;
          Alcotest.test_case "dequeue_or" `Quick test_scq_dequeue_or;
          Alcotest.test_case "full-ring backpressure" `Quick test_scq_full_backpressure;
        ] );
      ( "crq",
        [
          Alcotest.test_case "basic" `Quick test_crq_basic;
          Alcotest.test_case "wraparound" `Quick test_crq_wraparound;
          Alcotest.test_case "close" `Quick test_crq_close;
          Alcotest.test_case "fills up" `Quick test_crq_fills_up;
          Alcotest.test_case "fixState after overshoot" `Quick test_crq_empty_overshoot_fixstate;
          Alcotest.test_case "lcrq ring turnover" `Quick test_lcrq_ring_turnover;
        ] );
      ( "faa",
        [
          Alcotest.test_case "counts" `Quick test_faa_counts;
          Alcotest.test_case "concurrent counts" `Quick test_faa_concurrent_counts;
        ] );
    ]
