(* Tests for the worker pool built on the wait-free run queue. *)

let check = Alcotest.check

let with_pool ?(workers = 2) f =
  let pool = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_submit_await () =
  with_pool (fun pool ->
      let f = Pool.submit pool (fun () -> 21 * 2) in
      check Alcotest.bool "resolves ok" true (Pool.await f = Ok 42))

let test_many_tasks () =
  with_pool (fun pool ->
      let futures = List.init 500 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri
        (fun i f ->
          match Pool.await f with
          | Ok v -> check Alcotest.int (Printf.sprintf "task %d" i) (i * i) v
          | Error _ -> Alcotest.fail "unexpected failure")
        futures)

let test_exception_propagates () =
  with_pool (fun pool ->
      let f = Pool.submit pool (fun () -> failwith "boom") in
      match Pool.await f with
      | Error (Failure msg) -> check Alcotest.string "exn payload" "boom" msg
      | Ok _ | Error _ -> Alcotest.fail "expected Failure")

let test_exception_does_not_kill_worker () =
  with_pool ~workers:1 (fun pool ->
      ignore (Pool.await (Pool.submit pool (fun () -> failwith "first")));
      (* the single worker must have survived to run this: *)
      check Alcotest.bool "worker alive" true (Pool.await (Pool.submit pool (fun () -> 7)) = Ok 7))

let test_poll () =
  with_pool (fun pool ->
      let f = Pool.submit pool (fun () -> 5) in
      ignore (Pool.await f);
      check Alcotest.bool "poll after resolve" true (Pool.poll f = Some (Ok 5));
      let stalled =
        Pool.submit pool (fun () ->
            Unix.sleepf 0.05;
            1)
      in
      (* may or may not be done yet; both are legal, it must not hang *)
      ignore (Pool.poll stalled);
      ignore (Pool.await stalled))

let test_parallel_map () =
  with_pool ~workers:3 (fun pool ->
      let results = Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3; 4; 5 ] in
      let oks = List.map (function Ok v -> v | Error _ -> -1) results in
      check Alcotest.(list int) "mapped in order" [ 2; 3; 4; 5; 6 ] oks)

let test_submitters_from_many_domains () =
  with_pool ~workers:2 (fun pool ->
      let submitters =
        List.init 3 (fun s ->
            Domain.spawn (fun () ->
                List.init 100 (fun i -> Pool.submit pool (fun () -> (s * 100) + i))))
      in
      let futures = List.concat_map Domain.join submitters in
      let total =
        List.fold_left
          (fun acc f -> match Pool.await f with Ok v -> acc + v | Error _ -> acc)
          0 futures
      in
      (* sum over s in 0..2, i in 0..99 of (100 s + i) *)
      check Alcotest.int "all results" ((300 * 100) + (3 * 4950)) total)

let test_shutdown_rejects_submit () =
  let pool = Pool.create ~workers:1 () in
  ignore (Pool.await (Pool.submit pool (fun () -> 1)));
  Pool.shutdown pool;
  try
    ignore (Pool.submit pool (fun () -> 2));
    Alcotest.fail "submit after shutdown accepted"
  with Invalid_argument _ -> ()

let test_shutdown_completes_backlog () =
  let pool = Pool.create ~workers:1 () in
  let counter = Atomic.make 0 in
  let futures =
    List.init 200 (fun _ -> Pool.submit pool (fun () -> Atomic.fetch_and_add counter 1))
  in
  Pool.shutdown pool;
  check Alcotest.int "backlog completed" 200 (Atomic.get counter);
  List.iter
    (fun f -> check Alcotest.bool "resolved" true (Pool.poll f <> None))
    futures

(* ------------------------------------------------------------------ *)
(* Protocol model-checking: the admission/shutdown/drain logic on the
   simulated scheduler.  The bug this guards against: a worker
   dequeues EMPTY, then observes [stopping], and exits while a racing
   submit's ticket sits queued — the submitter's future would then
   never resolve.  Running the exact shipped protocol text
   ([Pool.Protocol.Make]) on [Sim.Atomic_shim] makes every atomic
   access a preemption point, so the race windows are explored
   deterministically instead of once-in-a-blue-moon. *)

module SimQ = Simsched.Sim.Queue
module Sim = Simsched.Sim

module SP =
  Pool.Protocol.Make
    (Simsched.Sim.Atomic_shim)
    (struct
      type 'a t = 'a SimQ.t
      type 'a handle = 'a SimQ.handle

      let enqueue = SimQ.enqueue
      let dequeue = SimQ.dequeue
    end)

(* One scenario: [n_sub] submitters race one shutdowner and one
   bounded worker shift.  Returns per-submitter resolution counts
   after the post-run worker finish + residual drain (both outside the
   scheduler, where sim yields are no-ops — modelling [Pool.shutdown]
   running after the interleaving settled). *)
type sim_pool_state = {
  proto : SP.t;
  handles : SP.ticket SimQ.handle array;
  resolutions : int array; (* run+abort calls per submitter's ticket *)
  admissions : SP.admission option array;
}

let make_sim_pool_state ~n_sub () =
  let q = SimQ.create ~patience:1 () in
  {
    proto = SP.create q;
    handles = Array.init (n_sub + 2) (fun _ -> SimQ.register q);
    resolutions = Array.make n_sub 0;
    admissions = Array.make n_sub None;
  }

let sim_pool_fibers st ~n_sub =
  let submitter s () =
    let a =
      SP.submit st.proto st.handles.(s)
        ~run:(fun () -> st.resolutions.(s) <- st.resolutions.(s) + 1)
        ~abort:(fun () -> st.resolutions.(s) <- st.resolutions.(s) + 1)
    in
    st.admissions.(s) <- Some a
  in
  let shutdowner () = SP.begin_shutdown st.proto in
  let worker () =
    (* bounded shift: the systematic explorer cannot drive an
       unbounded idle loop to completion *)
    let budget = ref 60 in
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      match SP.worker_step st.proto st.handles.(n_sub) with
      | SP.Exit -> continue := false
      | SP.Ran | SP.Stale | SP.Idle -> ()
    done
  in
  Array.append (Array.init n_sub submitter) [| shutdowner; worker |]

let sim_pool_check st ~n_sub ~ident =
  (* after the interleaving: the shutdown path finishes the worker's
     shift and sweeps residuals, exactly like [Pool.shutdown] *)
  let continue = ref true in
  let budget = ref 10_000 in
  while !continue do
    decr budget;
    if !budget = 0 then Alcotest.failf "%s: worker never drained out" ident;
    match SP.worker_step st.proto st.handles.(n_sub) with
    | SP.Exit -> continue := false
    | SP.Ran | SP.Stale | SP.Idle -> ()
  done;
  ignore (SP.drain st.proto st.handles.(n_sub + 1));
  for s = 0 to n_sub - 1 do
    match st.admissions.(s) with
    | None -> Alcotest.failf "%s: submitter %d never returned" ident s
    | Some SP.Rejected ->
      if st.resolutions.(s) <> 0 then
        Alcotest.failf "%s: rejected ticket %d resolved %d times" ident s st.resolutions.(s)
    | Some (SP.Accepted | SP.Aborted) ->
      if st.resolutions.(s) <> 1 then
        Alcotest.failf "%s: ticket %d resolved %d times (want exactly 1)" ident s
          st.resolutions.(s)
  done

let test_protocol_explore () =
  (* systematic: every schedule with <= 2 forced preemptions of
     2 submitters vs shutdown vs worker *)
  let n_sub = 2 in
  let state = ref None in
  let r =
    Sim.explore ~max_schedules:60_000 ~preemptions:2
      ~make_fibers:(fun () ->
        let st = make_sim_pool_state ~n_sub () in
        state := Some st;
        sim_pool_fibers st ~n_sub)
      ~check:(fun () -> sim_pool_check (Option.get !state) ~n_sub ~ident:"explore")
      ()
  in
  if r.Sim.truncated_runs > 0 then Alcotest.fail "truncated schedules in protocol exploration";
  check Alcotest.bool "explored a non-trivial space" true (r.Sim.schedules > 100)

let test_protocol_seed_sweep () =
  (* randomized: deeper interleavings than the preemption bound *)
  let n_sub = 3 in
  for seed = 1 to 1_000 do
    let st = make_sim_pool_state ~n_sub () in
    let stats = Sim.run ~seed:(Int64.of_int seed) (sim_pool_fibers st ~n_sub) in
    if stats.Sim.max_steps_hit then Alcotest.failf "seed %d: step limit" seed;
    sim_pool_check st ~n_sub ~ident:(Printf.sprintf "seed %d" seed)
  done

(* ------------------------------------------------------------------ *)
(* Real domains: shutdown under load strands nothing                  *)

let await_or_timeout ~what f =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Pool.poll f with
    | Some r -> r
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "%s: future never resolved (stranded)" what
      else begin
        Domain.cpu_relax ();
        go ()
      end
  in
  go ()

let test_shutdown_under_load () =
  (* many rounds of: submitter domains racing a shutdown.  Every
     future returned by a successful submit must resolve — with the
     task's value or with Error Shutdown, never nothing. *)
  for round = 1 to 300 do
    let pool = Pool.create ~workers:1 () in
    let submitter s =
      Domain.spawn (fun () ->
          let rec grab i acc =
            if i >= 8 then acc
            else
              match Pool.submit pool (fun () -> (s * 100) + i) with
              | f -> grab (i + 1) (f :: acc)
              | exception Invalid_argument _ -> acc (* pool closed: legal *)
          in
          grab 0 [])
    in
    let d1 = submitter 1 and d2 = submitter 2 in
    (* race the shutdown against the submissions *)
    Pool.shutdown pool;
    let futures = Domain.join d1 @ Domain.join d2 in
    List.iteri
      (fun i f ->
        match await_or_timeout ~what:(Printf.sprintf "round %d future %d" round i) f with
        | Ok _ | Error Pool.Shutdown -> ()
        | Error e -> Alcotest.failf "round %d: unexpected error %s" round (Printexc.to_string e))
      futures;
    let o = Pool.obs pool in
    check Alcotest.int
      (Printf.sprintf "round %d: no live workers after shutdown" round)
      0 o.Pool.live_workers
  done

let test_worker_death_recovery () =
  let pool = Pool.create ~workers:2 () in
  let f = Pool.submit pool (fun () -> raise Pool.Worker_abort) in
  (match await_or_timeout ~what:"aborting task" f with
  | Error Pool.Worker_abort -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Error Worker_abort");
  (* the death is visible in the snapshot once the worker unwinds *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_death () =
    let o = Pool.obs pool in
    if o.Pool.worker_deaths = 1 && o.Pool.live_workers = 1 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "death not observed: %d deaths, %d live" o.Pool.worker_deaths
        o.Pool.live_workers
    else begin
      Domain.cpu_relax ();
      wait_death ()
    end
  in
  wait_death ();
  (* the surviving worker still serves *)
  let results = List.init 50 (fun i -> Pool.submit pool (fun () -> i * 3)) in
  List.iteri
    (fun i f ->
      match await_or_timeout ~what:(Printf.sprintf "post-death task %d" i) f with
      | Ok v -> check Alcotest.int (Printf.sprintf "post-death task %d" i) (i * 3) v
      | Error _ -> Alcotest.fail "task failed after peer death")
    results;
  Pool.shutdown pool

let test_all_workers_dead_then_shutdown () =
  (* kill the only worker, then submit: nobody will ever run the task,
     but shutdown must still resolve its future (with Error Shutdown)
     rather than strand it — the exact bug of the original pool. *)
  let pool = Pool.create ~workers:1 () in
  let killer = Pool.submit pool (fun () -> raise Pool.Worker_abort) in
  (match await_or_timeout ~what:"killer" killer with
  | Error Pool.Worker_abort -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Error Worker_abort");
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (Pool.obs pool).Pool.live_workers > 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  let orphan = Pool.submit pool (fun () -> 99) in
  Pool.shutdown pool;
  (match await_or_timeout ~what:"orphan" orphan with
  | Error Pool.Shutdown -> ()
  | Ok _ -> Alcotest.fail "orphan ran with no live workers?"
  | Error e -> Alcotest.failf "unexpected error %s" (Printexc.to_string e));
  let o = Pool.obs pool in
  check Alcotest.int "death counted" 1 o.Pool.worker_deaths;
  check Alcotest.bool "orphan aborted" true (o.Pool.aborted_futures >= 1)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "many tasks" `Quick test_many_tasks;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "worker survives exception" `Quick test_exception_does_not_kill_worker;
          Alcotest.test_case "poll" `Quick test_poll;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "many submitters" `Quick test_submitters_from_many_domains;
          Alcotest.test_case "shutdown rejects" `Quick test_shutdown_rejects_submit;
          Alcotest.test_case "shutdown completes backlog" `Quick test_shutdown_completes_backlog;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "submit vs shutdown vs worker, explored" `Quick test_protocol_explore;
          Alcotest.test_case "seeded interleaving sweep" `Quick test_protocol_seed_sweep;
        ] );
      ( "adversity",
        [
          Alcotest.test_case "shutdown under load strands nothing" `Quick test_shutdown_under_load;
          Alcotest.test_case "worker death recovery" `Quick test_worker_death_recovery;
          Alcotest.test_case "all workers dead, shutdown still resolves" `Quick
            test_all_workers_dead_then_shutdown;
        ] );
    ]
