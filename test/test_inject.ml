(* Wait-freedom under injected faults.

   The paper's claim is not "fast when everyone cooperates" but
   "bounded completion even when other threads stall or die at the
   worst moment" (§3.6 discusses thread failures explicitly).  These
   tests drive the queue through exactly those moments: the simsched
   scheduler interleaves fibers deterministically while an
   [Inject.Plan] parks or kills victim fibers at named protocol
   points, so every failure is a (sim seed, plan seed) pair that
   replays identically.

   Fault semantics verified here:
   - Park: a stalled thread delays nobody's completion; values are
     conserved exactly.
   - Die: a killed thread is a crashed thread.  Its in-flight value
     appears AT MOST ONCE (helpers may complete a published request
     of a dead peer; the claim CASes make double-completion
     impossible), and each kill strands at most one value (a dequeuer
     that linearized its ticket and then crashed).  Survivors always
     complete, and the queue stays fully operational afterwards —
     including cleanup, even when the victim died holding the cleanup
     token. *)

module Q = Simsched.Sim.Queue
module Sim = Simsched.Sim

let check = Alcotest.check

let run_ok ?max_steps ~seed fibers =
  let stats = Sim.run ?max_steps ~seed:(Int64.of_int seed) fibers in
  if stats.Sim.max_steps_hit then
    Alcotest.failf "seed %d: scheduler step limit hit (livelock under faults?)" seed;
  stats

(* Park as scheduler yields: a parked fiber is descheduled, letting
   the scheduler run everyone else through the victim's stall
   window. *)
let sim_park () = Inject.set_park (fun n -> for _ = 1 to n do Sim.yield () done)

let drain q h =
  let rec go acc = match Q.dequeue q h with Some v -> go (v :: acc) | None -> acc in
  List.rev (go [])

(* ------------------------------------------------------------------ *)
(* Build matrix: which instantiations carry the injector              *)

let test_build_matrix () =
  check Alcotest.bool "production build has no injector" false Wfq.Wfqueue.injector_enabled;
  check Alcotest.bool "obs build has no injector" false Wfq.Wfqueue_obs.injector_enabled;
  check Alcotest.bool "llsc build has no injector" false Wfq.Wfqueue_llsc.injector_enabled;
  check Alcotest.bool "storm build has the injector" true Wfq.Wfqueue_inject.injector_enabled;
  check Alcotest.bool "sim build has the injector" true Q.injector_enabled;
  (* A Disabled build never consults the controller: run it under an
     installed always-park controller and observe zero hits. *)
  Inject.reset_stats ();
  Inject.with_controller (fun _ -> Inject.Park 1) (fun () ->
      let q = Wfq.Wfqueue.create () in
      for i = 1 to 50 do
        Wfq.Wfqueue.push q i
      done;
      for _ = 1 to 50 do
        ignore (Wfq.Wfqueue.pop q)
      done);
  let t = Inject.total_stats () in
  check Alcotest.int "disabled build recorded no hits" 0 t.Inject.hits

let test_enabled_transparent () =
  (* No controller installed: the Enabled build passes through. *)
  Inject.reset_stats ();
  let q = Wfq.Wfqueue_inject.create () in
  for i = 1 to 100 do
    Wfq.Wfqueue_inject.push q i
  done;
  let got = ref [] in
  let rec go () =
    match Wfq.Wfqueue_inject.pop q with
    | Some v ->
      got := v :: !got;
      go ()
    | None -> ()
  in
  go ();
  check Alcotest.int "fifo intact" 100 (List.length !got);
  let t = Inject.total_stats () in
  check Alcotest.int "no controller, no counting" 0 t.Inject.hits

(* ------------------------------------------------------------------ *)
(* K-of-N park storms, one sweep per injection-point class            *)

let aggressive_queue () =
  (* patience 0: first contention enters the slow path; tiny segments
     + max_garbage 2: cleanup runs constantly.  Every point class is
     reachable. *)
  Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 ()

let test_park_storm cls () =
  sim_park ();
  Inject.reset_stats ();
  let points = Inject.points_of_class cls in
  for seed = 1 to 150 do
    let plan =
      Inject.Plan.make ~park:6 ~arm_window:1 ~points ~seed:(Int64.of_int (seed * 7919)) ()
    in
    (* 2 victims of 4: only fibers 0 and 1 take faults *)
    Inject.with_controller
      (fun p -> if Sim.current_fiber () <= 1 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = aggressive_queue () in
        let h = Array.init 4 (fun _ -> Q.register q) in
        let got = ref [] in
        (* interleaved enqueue/dequeue churn: phase-structured
           workloads never contend (each fiber finishes its enqueues
           before any dequeuer can overtake a ticket), so slow paths,
           helping and cleanup would go unexercised *)
        let actor i () =
          for k = 1 to 4 do
            Q.enqueue q h.(i) ((i * 10) + k);
            match Q.dequeue q h.(i) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| actor 0; actor 1; actor 2; actor 3 |]);
        let rest = drain q h.(0) in
        let expect =
          List.concat_map (fun i -> List.init 4 (fun k -> (i * 10) + k + 1)) [ 0; 1; 2; 3 ]
        in
        check
          Alcotest.(list int)
          (Printf.sprintf "%s seed %d: parked storm conserves values" (Inject.class_name cls) seed)
          (List.sort compare expect)
          (List.sort compare (!got @ rest)))
  done;
  (* The sweep must actually have exercised the class — a class whose
     points never fire would make this suite vacuous (e.g. after a
     refactor moves an injection site). *)
  let fired =
    List.fold_left (fun acc p -> acc + (Inject.stats p).Inject.parks) 0 points
  in
  if fired = 0 then
    Alcotest.failf "no %s park ever fired across the sweep: dead injection points?"
      (Inject.class_name cls)

(* The generic storm churns single ops, so the batch windows need
   their own sweep: 4 fibers exchanging 3-value batches while two of
   them park right after their batch FAA — the window where k cells
   are reserved but none written (enqueue) or claimed (dequeue).
   Parking there stalls nobody and conserves values exactly: the
   per-cell fallback gives every survivor touching a reserved cell a
   wait-free way past it. *)
let test_batch_park_storm () =
  sim_park ();
  Inject.reset_stats ();
  let points = Inject.points_of_class Inject.Batch in
  for seed = 1 to 150 do
    let plan =
      Inject.Plan.make ~park:6 ~arm_window:1 ~points ~seed:(Int64.of_int (seed * 7919)) ()
    in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () <= 1 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = aggressive_queue () in
        let h = Array.init 4 (fun _ -> Q.register q) in
        let got = ref [] in
        let actor i () =
          for r = 0 to 1 do
            Q.enq_batch q h.(i) (Array.init 3 (fun j -> (i * 100) + (r * 10) + j));
            Array.iter
              (function Some v -> got := v :: !got | None -> ())
              (Q.deq_batch q h.(i) 3)
          done
        in
        ignore (run_ok ~seed [| actor 0; actor 1; actor 2; actor 3 |]);
        let rest = drain q h.(0) in
        let expect =
          List.concat_map
            (fun i ->
              List.concat_map (fun r -> List.init 3 (fun j -> (i * 100) + (r * 10) + j)) [ 0; 1 ])
            [ 0; 1; 2; 3 ]
        in
        check
          Alcotest.(list int)
          (Printf.sprintf "batch seed %d: parked batch storm conserves values" seed)
          (List.sort compare expect)
          (List.sort compare (!got @ rest)))
  done;
  let fired =
    List.fold_left (fun acc p -> acc + (Inject.stats p).Inject.parks) 0 points
  in
  if fired = 0 then
    Alcotest.fail "no batch park ever fired across the sweep: dead injection points?"

(* ------------------------------------------------------------------ *)
(* Die storms: crashed threads strand at most one value, never
   duplicate one, and survivors always finish                        *)

let test_kill_storm () =
  sim_park ();
  let total_kills = ref 0 in
  for seed = 1 to 400 do
    Inject.reset_stats ();
    let plan = Inject.Plan.make ~lethal:true ~arm_window:2 ~seed:(Int64.of_int (seed * 31)) () in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = aggressive_queue () in
        let h = Array.init 4 (fun _ -> Q.register q) in
        let got = ref [] in
        (* [venq] counts the victim's COMPLETED enqueues: a crash ends
           its participation, so values it never attempted are not
           "lost" — only its single in-flight value is in doubt *)
        let venq = ref 0 in
        let victim () =
          try
            for k = 1 to 4 do
              Q.enqueue q h.(0) k;
              venq := k;
              match Q.dequeue q h.(0) with Some v -> got := v :: !got | None -> ()
            done
          with Inject.Killed _ -> Q.retire q h.(0)
        in
        let survivor i () =
          for k = 1 to 4 do
            Q.enqueue q h.(i) ((i * 10) + k);
            match Q.dequeue q h.(i) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| victim; survivor 1; survivor 2; survivor 3 |]);
        let all = !got @ drain q h.(1) in
        let kills = (Inject.total_stats ()).Inject.kills in
        total_kills := !total_kills + kills;
        (* definitely enqueued: survivors' values + the victim's
           completed enqueues.  The victim's next value (its in-flight
           enqueue, if the kill landed there) may legitimately appear
           — helpers can complete a dead peer's published request —
           but at most once. *)
        let definite =
          List.init !venq (fun k -> k + 1)
          @ List.concat_map (fun i -> List.init 4 (fun k -> (i * 10) + k + 1)) [ 1; 2; 3 ]
        in
        let optional = if !venq < 4 then [ !venq + 1 ] else [] in
        let sorted = List.sort compare all in
        let rec no_dup = function
          | a :: (b :: _ as tl) ->
            if a = b then Alcotest.failf "seed %d: value %d dequeued twice" seed a;
            no_dup tl
          | _ -> ()
        in
        no_dup sorted;
        List.iter
          (fun v ->
            if not (List.mem v definite || List.mem v optional) then
              Alcotest.failf "seed %d: alien value %d" seed v)
          sorted;
        let missing =
          List.length (List.filter (fun v -> not (List.mem v sorted)) definite)
        in
        if missing > kills then
          Alcotest.failf "seed %d: %d values missing but only %d kills (each kill strands <= 1)"
            seed missing kills)
  done;
  if !total_kills = 0 then
    Alcotest.fail "no kill ever fired across 400 seeds: lethal plans are dead code?"

(* Dying right after a batch FAA is the widest crash window the queue
   has: k tickets are reserved in one blow and none of the k cells is
   written/claimed yet.  A dead batch enqueuer abandons k cells that
   dequeuers must be able to skip; a dead batch dequeuer burns k head
   tickets whose cells' values are stranded forever.  So the stranding
   bound scales with the batch: missing <= kills * batch — and
   duplication stays impossible (the per-cell claim CASes are
   unchanged). *)
let test_batch_kill_storm () =
  sim_park ();
  let total_kills = ref 0 in
  let batch = 3 in
  let rounds = 3 in
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1
        ~points:[ Inject.Enq_batch_after_faa; Inject.Deq_batch_after_faa ]
        ~seed:(Int64.of_int (seed * 17)) ()
    in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = aggressive_queue () in
        let h = Array.init 3 (fun _ -> Q.register q) in
        let got = ref [] in
        let committed = ref [] in
        (* values of the batch in flight when the kill lands: reserved
           cells are never written past the injection point, but a
           future refactor moving the point after partial writes would
           make them legitimately appear (at most once) *)
        let in_flight = ref [] in
        let victim () =
          try
            for r = 0 to rounds - 1 do
              let vs = Array.init batch (fun j -> 100 + (r * 10) + j) in
              in_flight := Array.to_list vs;
              Q.enq_batch q h.(0) vs;
              Array.iter (fun v -> committed := v :: !committed) vs;
              in_flight := [];
              Array.iter
                (function Some v -> got := v :: !got | None -> ())
                (Q.deq_batch q h.(0) batch)
            done
          with Inject.Killed _ -> Q.retire q h.(0)
        in
        let survivor i () =
          for r = 0 to rounds - 1 do
            Q.enq_batch q h.(i) (Array.init batch (fun j -> (i * 1000) + (r * 10) + j));
            Array.iter
              (function Some v -> got := v :: !got | None -> ())
              (Q.deq_batch q h.(i) batch)
          done
        in
        ignore (run_ok ~seed [| victim; survivor 1; survivor 2 |]);
        let all = List.sort compare (!got @ drain q h.(1)) in
        let kills = (Inject.total_stats ()).Inject.kills in
        total_kills := !total_kills + kills;
        let rec no_dup = function
          | a :: (b :: _ as tl) ->
            if a = b then Alcotest.failf "seed %d: value %d dequeued twice" seed a;
            no_dup tl
          | _ -> ()
        in
        no_dup all;
        let definite =
          !committed
          @ List.concat_map
              (fun i ->
                List.concat_map
                  (fun r -> List.init batch (fun j -> (i * 1000) + (r * 10) + j))
                  (List.init rounds Fun.id))
              [ 1; 2 ]
        in
        List.iter
          (fun v ->
            if not (List.mem v definite || List.mem v !in_flight) then
              Alcotest.failf "seed %d: alien value %d" seed v)
          all;
        let missing =
          List.length (List.filter (fun v -> not (List.mem v all)) definite)
        in
        if missing > kills * batch then
          Alcotest.failf
            "seed %d: %d values missing but %d kills x batch %d (each kill strands <= batch)"
            seed missing kills batch)
  done;
  if !total_kills = 0 then
    Alcotest.fail "no batch kill ever fired across 300 seeds: lethal batch plans are dead code?"

(* ------------------------------------------------------------------ *)
(* Bounded-mode freelist storms (PR 9): the two [Pool]-class windows.

   [Seg_pool_acquire] only fires under genuine cap pressure (budget
   spent, pool empty, the acquire polling for a recycle), so these
   storms run a {e bounded} queue with producers outrunning consumers
   instead of joining the generic unbounded park-storm sweep.  Two
   invariants, from the injection points' contracts:

   - the segment cap is never exceeded: fresh allocations are
     budget-gated and the budget is never replenished by recycling,
     so [allocated_segments <= cap] at {e every} instant — which
     implies live + pooled <= cap always (each existing segment was
     allocated exactly once);
   - no segment is reachable from two chains: a double release would
     surface as a duplicated value once both "copies" recycle, and as
     a pool whose walked length disagrees with its counter.  A death
     at [Seg_pool_release] may leak capacity (segments reset but
     never pushed) — documented as lost budget, never unsafety. *)

(* 2-of-4 parked in the freelist windows: pure delay, so conservation
   must be exact and the cap invariant untouched. *)
let test_pool_park_storm () =
  sim_park ();
  Inject.reset_stats ();
  let cap = 6 in
  let points = [ Inject.Seg_pool_acquire; Inject.Seg_pool_release ] in
  for seed = 1 to 300 do
    let plan =
      Inject.Plan.make ~park:6 ~arm_window:1 ~points ~seed:(Int64.of_int (seed * 433)) ()
    in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () <= 1 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 ~segment_cap:cap () in
        let h = Array.init 4 (fun _ -> Q.register q) in
        let got = ref [] in
        let producers_done = ref 0 in
        (* 12 values through 6 segments' worth of cells keeps the
           budget exhausted: the park-prone producers really reach the
           acquire poll *)
        let producer i () =
          for k = 1 to 6 do
            Q.enqueue q h.(i) ((i * 10) + k);
            if Q.allocated_segments q > cap then
              Alcotest.failf "seed %d: %d segments allocated past cap %d" seed
                (Q.allocated_segments q) cap
          done;
          (* a dequeue tail walks the park-prone fibers through
             cleanup's release loop too *)
          for _ = 1 to 3 do
            match Q.dequeue q h.(i) with Some v -> got := v :: !got | None -> ()
          done;
          incr producers_done
        in
        let consumer i () =
          let idle = ref 0 in
          while !producers_done < 2 || !idle < 3 do
            match Q.dequeue q h.(i) with
            | Some v ->
              got := v :: !got;
              idle := 0
            | None -> incr idle
          done
        in
        ignore (run_ok ~seed [| producer 0; producer 1; consumer 2; consumer 3 |]);
        let all = List.sort compare (!got @ drain q h.(2)) in
        let expect =
          List.sort compare (List.concat_map (fun i -> List.init 6 (fun k -> (i * 10) + k + 1)) [ 0; 1 ])
        in
        if all <> expect then
          Alcotest.failf "seed %d: conservation broken under pool parks" seed;
        if Q.live_segments q + Q.pooled_segments q > cap then
          Alcotest.failf "seed %d: live+pooled %d+%d exceeds cap %d" seed (Q.live_segments q)
            (Q.pooled_segments q) cap;
        if Q.Internal.pool_length q <> Q.pooled_segments q then
          Alcotest.failf "seed %d: pool length %d disagrees with counter %d" seed
            (Q.Internal.pool_length q) (Q.pooled_segments q))
  done;
  let parks p = (Inject.stats p).Inject.parks in
  if parks Inject.Seg_pool_acquire = 0 then
    Alcotest.fail "no park at Seg_pool_acquire across 300 seeds: no cap pressure reached?";
  if parks Inject.Seg_pool_release = 0 then
    Alcotest.fail "no park at Seg_pool_release across 300 seeds: cleanup never released?"

(* Deaths in the freelist windows: a kill strands at most the
   victim's one in-flight value, never duplicates, and the cap holds
   even when a crashed cleaner leaks its reset-but-unpushed
   segments. *)
let test_pool_kill_storm () =
  sim_park ();
  let cap = 8 in
  let acquire_kills = ref 0 in
  let release_kills = ref 0 in
  for seed = 1 to 400 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1
        ~points:[ Inject.Seg_pool_acquire; Inject.Seg_pool_release ]
        ~seed:(Int64.of_int ((seed * 131) + 7))
        ()
    in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 ~segment_cap:cap () in
        let h = Array.init 4 (fun _ -> Q.register q) in
        let got = ref [] in
        let producers_done = ref 0 in
        let venq = ref 0 in
        let enq_count = ref 0 in
        (* the victim enqueues first (arming the admission wait where
           the acquire point now fires) and then dequeues a tail
           (walking it through cleanup's release loop) *)
        let victim () =
          (try
             for k = 1 to 6 do
               Q.enqueue q h.(0) k;
               venq := k;
               incr enq_count
             done;
             for _ = 1 to 3 do
               match Q.dequeue q h.(0) with Some v -> got := v :: !got | None -> ()
             done
           with Inject.Killed _ -> Q.retire q h.(0));
          incr producers_done
        in
        let producer () =
          for k = 1 to 6 do
            Q.enqueue q h.(1) (10 + k);
            incr enq_count;
            if Q.allocated_segments q > cap then
              Alcotest.failf "seed %d: %d segments allocated past cap %d" seed
                (Q.allocated_segments q) cap
          done;
          incr producers_done
        in
        let consumer i () =
          (* sleep through the fill so the admission line actually
             backs up: a producer can only block once 8 net enqueues
             are in ([enq_capacity] for this cap), at which point the
             wake condition below has already released the drain *)
          while !enq_count < 8 && !producers_done < 2 do
            Sim.yield ()
          done;
          let idle = ref 0 in
          while !producers_done < 2 || !idle < 3 do
            match Q.dequeue q h.(i) with
            | Some v ->
              got := v :: !got;
              idle := 0
            | None -> incr idle
          done
        in
        ignore (run_ok ~seed [| victim; producer; consumer 2; consumer 3 |]);
        acquire_kills := !acquire_kills + (Inject.stats Inject.Seg_pool_acquire).Inject.kills;
        release_kills := !release_kills + (Inject.stats Inject.Seg_pool_release).Inject.kills;
        let kills = (Inject.total_stats ()).Inject.kills in
        let all = !got @ drain q h.(2) in
        let sorted = List.sort compare all in
        let rec no_dup = function
          | a :: (b :: _ as tl) ->
            if a = b then Alcotest.failf "seed %d: value %d dequeued twice" seed a;
            no_dup tl
          | _ -> ()
        in
        no_dup sorted;
        let definite = List.init !venq (fun k -> k + 1) @ List.init 6 (fun k -> 10 + k + 1) in
        let optional = if !venq < 6 then [ !venq + 1 ] else [] in
        List.iter
          (fun v ->
            if not (List.mem v definite || List.mem v optional) then
              Alcotest.failf "seed %d: alien value %d" seed v)
          sorted;
        let missing =
          List.length (List.filter (fun v -> not (List.mem v sorted)) definite)
        in
        if missing > kills then
          Alcotest.failf "seed %d: %d values missing but only %d kills" seed missing kills;
        if Q.live_segments q + Q.pooled_segments q > cap then
          Alcotest.failf "seed %d: live+pooled %d+%d exceeds cap %d" seed (Q.live_segments q)
            (Q.pooled_segments q) cap;
        if Q.pooled_segments q > Q.Internal.pool_limit q then
          Alcotest.failf "seed %d: pool counter %d past its limit %d" seed
            (Q.pooled_segments q) (Q.Internal.pool_limit q))
  done;
  if !acquire_kills = 0 then
    Alcotest.fail "no kill at Seg_pool_acquire across 400 seeds: storm is dead code?";
  if !release_kills = 0 then
    Alcotest.fail "no kill at Seg_pool_release across 400 seeds: storm is dead code?"

(* A dead slow-path enqueuer's published request is completed by
   helpers: the value it announced still flows to a dequeuer. *)
let test_helping_completes_dead_enqueuer () =
  sim_park ();
  let recovered = ref 0 in
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1 ~points:[ Inject.Enq_slow_published ]
        ~seed:(Int64.of_int seed) ()
    in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
        let h = Array.init 3 (fun _ -> Q.register q) in
        let got = ref [] in
        (* churn on all fibers so the victim's fast-path CAS actually
           loses cells and enters the slow path; the kill lands right
           after its request is published *)
        let churn i base () =
          try
            for k = 1 to 6 do
              Q.enqueue q h.(i) (base + k);
              match Q.dequeue q h.(i) with Some v -> got := v :: !got | None -> ()
            done
          with Inject.Killed _ -> ()
        in
        ignore (run_ok ~seed [| churn 0 100; churn 1 10; churn 2 20 |]);
        (* victim is dead; its handle must not pin anything *)
        Q.retire q h.(0);
        let all = List.sort compare (!got @ drain q h.(1)) in
        (* survivors die with nobody: all their values flow through *)
        List.iter
          (fun v ->
            if not (List.mem v all) then
              Alcotest.failf "seed %d: survivor value %d lost to a dead enqueuer" seed v)
          (List.init 6 (fun k -> 10 + k + 1) @ List.init 6 (fun k -> 20 + k + 1));
        (* the dead enqueuer's values appear at most once each *)
        let rec dups = function
          | a :: (b :: _ as tl) ->
            if a = b then Alcotest.failf "seed %d: duplicated %d" seed a;
            dups tl
          | _ -> ()
        in
        dups all;
        let kills = (Inject.total_stats ()).Inject.kills in
        if kills > 0 && List.exists (fun v -> v > 100) all then incr recovered)
  done;
  (* helping is the mechanism under test: across the sweep, some dead
     enqueuer's published value must have been completed by a peer *)
  if !recovered = 0 then
    Alcotest.fail "no published request of a dead enqueuer was ever helped to completion"

let test_dead_dequeuer_strands_at_most_one () =
  sim_park ();
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1
        ~points:[ Inject.Deq_fast_after_faa; Inject.Deq_slow_published ]
        ~seed:(Int64.of_int seed) ()
    in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
        let h = Array.init 3 (fun _ -> Q.register q) in
        let got = ref [] in
        let victim () =
          try
            for _ = 1 to 4 do
              match Q.dequeue q h.(0) with Some v -> got := v :: !got | None -> ()
            done
          with Inject.Killed _ -> Q.retire q h.(0)
        in
        let producer () =
          for k = 1 to 8 do
            Q.enqueue q h.(1) k
          done
        in
        let consumer () =
          for _ = 1 to 4 do
            match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| victim; producer; consumer |]);
        let all = List.sort compare (!got @ drain q h.(1)) in
        let kills = (Inject.total_stats ()).Inject.kills in
        let missing = 8 - List.length all in
        if missing > kills then
          Alcotest.failf "seed %d: %d values missing, %d kills" seed missing kills;
        let rec dups = function
          | a :: (b :: _ as tl) ->
            if a = b then Alcotest.failf "seed %d: duplicated %d" seed a;
            dups tl
          | _ -> ()
        in
        dups all)
  done

(* Dying while holding the cleanup token must not wedge reclamation:
   the token is restored on the way out (Fun.protect in [cleanup]),
   so later cleanups still run. *)
let test_cleanup_token_death_recovers () =
  sim_park ();
  let exercised = ref 0 in
  for seed = 1 to 200 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1 ~points:[ Inject.Cleanup_token_held ]
        ~seed:(Int64.of_int seed) ()
    in
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let h = Array.init 3 (fun _ -> Q.register q) in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let churn i () =
          try
            for k = 1 to 8 do
              Q.enqueue q h.(i) ((i * 100) + k);
              ignore (Q.dequeue q h.(i))
            done
          with Inject.Killed _ -> Q.retire q h.(0)
        in
        ignore (run_ok ~seed [| churn 0; churn 1; churn 2 |]));
    if (Inject.total_stats ()).Inject.kills > 0 then begin
      incr exercised;
      (* the token was restored: post-mortem churn still reclaims *)
      let before = Q.reclaimed_segments q in
      for k = 1 to 64 do
        Q.enqueue q h.(1) k;
        ignore (Q.dequeue q h.(1))
      done;
      if Q.reclaimed_segments q <= before then
        Alcotest.failf "seed %d: cleanup wedged after token-holder death" seed
    end
  done;
  if !exercised = 0 then Alcotest.fail "no cleanup-token death was ever injected"

(* ------------------------------------------------------------------ *)
(* Topology storms: the specialized variant family under faults.  The
   variants have no helping — their fault story is structural (holes
   skipped, tickets poisoned, switches drained), so the claims are
   the same currency as above: parks stall nobody, each kill strands
   at most one value, nothing duplicates, survivors complete.        *)

(* Park storm at the [Topology] points, one sweep per variant under
   its legal topology.  A producer parked in the hole window or a
   consumer parked on a held ticket delays nobody; values are
   conserved exactly. *)
let test_topology_park_storm () =
  sim_park ();
  Inject.reset_stats ();
  let points = Inject.points_of_class Inject.Topology in
  let plan seed = Inject.Plan.make ~park:6 ~arm_window:1 ~points ~seed:(Int64.of_int seed) () in
  for seed = 1 to 100 do
    (* SPSC: producer fiber 0 (victim), consumer fiber 1 *)
    (let module Q = Simsched.Sim.Spsc in
     let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
     let hp = Q.register q and hc = Q.register q in
     let got = ref [] in
     Inject.with_controller
       (fun p ->
         if Sim.current_fiber () = 0 then Inject.Plan.decide (plan (seed * 7919)) p
         else Inject.Continue)
       (fun () ->
         ignore
           (run_ok ~seed
              [|
                (fun () ->
                  for i = 1 to 8 do
                    Q.enqueue q hp i
                  done);
                (fun () ->
                  for _ = 1 to 8 do
                    match Q.dequeue q hc with Some v -> got := v :: !got | None -> ()
                  done);
              |]));
     let rec drain acc = match Q.dequeue q hc with Some v -> drain (v :: acc) | None -> acc in
     check
       Alcotest.(list int)
       (Printf.sprintf "spsc seed %d: parked storm conserves values" seed)
       (List.init 8 (fun i -> i + 1))
       (List.sort compare (!got @ drain [])));
    (* MPSC: producers 0 (victim) and 1, consumer 2 *)
    (let module Q = Simsched.Sim.Mpsc in
     let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
     let h = Array.init 3 (fun _ -> Q.register q) in
     let got = ref [] in
     Inject.with_controller
       (fun p ->
         if Sim.current_fiber () = 0 then Inject.Plan.decide (plan (seed * 31)) p
         else Inject.Continue)
       (fun () ->
         let producer t () =
           for i = 1 to 4 do
             Q.enqueue q h.(t) ((t * 100) + i)
           done
         in
         let consumer () =
           for _ = 1 to 8 do
             match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
           done
         in
         ignore (run_ok ~seed [| producer 0; producer 1; consumer |]));
     let rec drain acc =
       match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc
     in
     check
       Alcotest.(list int)
       (Printf.sprintf "mpsc seed %d: parked storm conserves values" seed)
       (List.sort compare (List.init 4 (fun i -> i + 1) @ List.init 4 (fun i -> 100 + i + 1)))
       (List.sort compare (!got @ drain [])));
    (* SPMC: producer 0, consumers 1 (victim) and 2 *)
    (let module Q = Simsched.Sim.Spmc in
     let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
     let h = Array.init 3 (fun _ -> Q.register q) in
     let got = ref [] in
     Inject.with_controller
       (fun p ->
         if Sim.current_fiber () = 1 then Inject.Plan.decide (plan (seed * 17)) p
         else Inject.Continue)
       (fun () ->
         let consumer t () =
           for _ = 1 to 4 do
             match Q.dequeue q h.(t) with Some v -> got := v :: !got | None -> ()
           done
         in
         ignore
           (run_ok ~seed
              [|
                (fun () ->
                  for i = 1 to 8 do
                    Q.enqueue q h.(0) i
                  done);
                consumer 1;
                consumer 2;
              |]));
     let rec drain acc =
       match Q.dequeue q h.(1) with Some v -> drain (v :: acc) | None -> acc
     in
     check
       Alcotest.(list int)
       (Printf.sprintf "spmc seed %d: parked storm conserves values" seed)
       (List.init 8 (fun i -> i + 1))
       (List.sort compare (!got @ drain [])));
    (* Adaptive: two producers force a switch mid-stream; a park in
       the drain window must not wedge the commit *)
    (let module Q = Simsched.Sim.Adaptive_queue in
     let q = Q.create ~patience:2 ~segment_shift:1 ~max_garbage:2 () in
     let h = Array.init 3 (fun _ -> Q.register q) in
     let got = ref [] in
     Inject.with_controller
       (fun p ->
         if Sim.current_fiber () <= 1 then Inject.Plan.decide (plan (seed * 13)) p
         else Inject.Continue)
       (fun () ->
         let producer t () =
           for i = 1 to 4 do
             Q.enqueue q h.(t) ((t * 100) + i)
           done
         in
         let consumer () =
           for _ = 1 to 8 do
             match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
           done
         in
         ignore (run_ok ~seed [| producer 0; producer 1; consumer |]));
     let rec drain acc =
       match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc
     in
     check
       Alcotest.(list int)
       (Printf.sprintf "adaptive seed %d: parked storm conserves values" seed)
       (List.sort compare (List.init 4 (fun i -> i + 1) @ List.init 4 (fun i -> 100 + i + 1)))
       (List.sort compare (!got @ drain [])))
  done;
  let fired =
    List.fold_left (fun acc p -> acc + (Inject.stats p).Inject.parks) 0 points
  in
  if fired = 0 then
    Alcotest.fail "no topology park ever fired across the sweep: dead injection points?"

(* A producer killed in the MPSC hole window (ticket FAA'd, cell
   never written) leaves a PERMANENT hole.  The consumer must skip it
   forever without stalling: every other value still flows, nothing
   duplicates, and at most the one in-flight value per kill is lost. *)
let test_topo_dead_producer_leaves_hole () =
  sim_park ();
  let total_kills = ref 0 in
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1 ~points:[ Inject.Topo_enq_pending ]
        ~seed:(Int64.of_int (seed * 23)) ()
    in
    let module Q = Simsched.Sim.Mpsc in
    let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
    let h = Array.init 3 (fun _ -> Q.register q) in
    let got = ref [] in
    let venq = ref 0 in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let victim () =
          try
            for k = 1 to 4 do
              Q.enqueue q h.(0) (100 + k);
              venq := k
            done
          with Inject.Killed _ -> Q.retire q h.(0)
        in
        let producer () =
          for k = 1 to 4 do
            Q.enqueue q h.(1) (10 + k)
          done
        in
        let consumer () =
          for _ = 1 to 8 do
            match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| victim; producer; consumer |]));
    let rec drain acc = match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc in
    let all = List.sort compare (!got @ drain []) in
    let kills = (Inject.total_stats ()).Inject.kills in
    total_kills := !total_kills + kills;
    let rec no_dup = function
      | a :: (b :: _ as tl) ->
        if a = b then Alcotest.failf "seed %d: value %d dequeued twice" seed a;
        no_dup tl
      | _ -> ()
    in
    no_dup all;
    let definite = List.init !venq (fun k -> 100 + k + 1) @ List.init 4 (fun k -> 10 + k + 1) in
    let optional = if !venq < 4 then [ 100 + !venq + 1 ] else [] in
    List.iter
      (fun v ->
        if not (List.mem v definite || List.mem v optional) then
          Alcotest.failf "seed %d: alien value %d" seed v)
      all;
    let missing = List.length (List.filter (fun v -> not (List.mem v all)) definite) in
    if missing > kills then
      Alcotest.failf "seed %d: %d values missing but only %d kills" seed missing kills;
    (* the permanent hole must not wedge later traffic *)
    Q.enqueue q h.(1) 999;
    (match Q.dequeue q h.(2) with
    | Some 999 -> ()
    | _ -> Alcotest.failf "seed %d: queue wedged behind a dead producer's hole" seed)
  done;
  if !total_kills = 0 then
    Alcotest.fail "no hole-window kill ever fired: lethal topology plans are dead code?"

(* A consumer killed holding an SPMC head ticket never resolves its
   cell: the value the producer deposits there is stranded — but at
   most that one, and the ticket's segment pin only costs memory,
   never progress. *)
let test_topo_dead_ticket_strands_at_most_one () =
  sim_park ();
  let total_kills = ref 0 in
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1 ~points:[ Inject.Topo_deq_pending ]
        ~seed:(Int64.of_int (seed * 29)) ()
    in
    let module Q = Simsched.Sim.Spmc in
    let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
    let h = Array.init 3 (fun _ -> Q.register q) in
    let got = ref [] in
    Inject.with_controller
      (fun p -> if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let victim () =
          try
            for _ = 1 to 4 do
              match Q.dequeue q h.(0) with Some v -> got := v :: !got | None -> ()
            done
          with Inject.Killed _ -> Q.retire q h.(0)
        in
        let producer () =
          for k = 1 to 8 do
            Q.enqueue q h.(1) k
          done
        in
        let consumer () =
          for _ = 1 to 4 do
            match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| victim; producer; consumer |]));
    let rec drain acc = match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc in
    let all = List.sort compare (!got @ drain []) in
    let kills = (Inject.total_stats ()).Inject.kills in
    total_kills := !total_kills + kills;
    let rec no_dup = function
      | a :: (b :: _ as tl) ->
        if a = b then Alcotest.failf "seed %d: value %d dequeued twice" seed a;
        no_dup tl
      | _ -> ()
    in
    no_dup all;
    let missing = 8 - List.length all in
    if missing > kills then
      Alcotest.failf "seed %d: %d values missing but only %d kills (each strands <= 1)" seed
        missing kills
  done;
  if !total_kills = 0 then
    Alcotest.fail "no ticket-window kill ever fired: lethal topology plans are dead code?"

(* Death in the adaptive switch drain: the kill is absorbed until the
   switch commits ("die late"), so a crashed switcher can never leave
   the queue wedged mid-mode.  Survivors finish, conservation holds
   up to one in-flight value per kill, and the queue stays fully
   operational on the new backend. *)
let test_topo_switch_death_recovers () =
  sim_park ();
  let total_kills = ref 0 in
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1 ~points:[ Inject.Topo_switch_draining ]
        ~seed:(Int64.of_int (seed * 37)) ()
    in
    let module Q = Simsched.Sim.Adaptive_queue in
    let q = Q.create ~patience:2 ~segment_shift:1 ~max_garbage:2 () in
    let h = Array.init 3 (fun _ -> Q.register q) in
    let got = ref [] in
    let venq = [| 0; 0 |] in
    Inject.with_controller
      (fun p ->
        if Sim.current_fiber () <= 1 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        (* both producers are victims: whichever one performs the
           spsc->mpsc switch can die in the drain window *)
        let producer t () =
          try
            for i = 1 to 4 do
              Q.enqueue q h.(t) ((t * 100) + i);
              venq.(t) <- i
            done
          with Inject.Killed _ -> Q.retire q h.(t)
        in
        let consumer () =
          for _ = 1 to 8 do
            match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| producer 0; producer 1; consumer |]));
    let rec drain acc = match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc in
    let all = List.sort compare (!got @ drain []) in
    let kills = (Inject.total_stats ()).Inject.kills in
    total_kills := !total_kills + kills;
    let rec no_dup = function
      | a :: (b :: _ as tl) ->
        if a = b then Alcotest.failf "seed %d: value %d dequeued twice" seed a;
        no_dup tl
      | _ -> ()
    in
    no_dup all;
    (* completed enqueues are definite; the in-flight value of a kill
       in the drain window is "die late": absorbed until the switch
       commits, so the enqueue itself lands and the value may appear
       once even though the producer never saw it succeed *)
    let definite =
      List.init venq.(0) (fun i -> i + 1) @ List.init venq.(1) (fun i -> 100 + i + 1)
    in
    let optional =
      (if venq.(0) < 4 then [ venq.(0) + 1 ] else [])
      @ if venq.(1) < 4 then [ 100 + venq.(1) + 1 ] else []
    in
    List.iter
      (fun v ->
        if not (List.mem v definite || List.mem v optional) then
          Alcotest.failf "seed %d: alien value %d" seed v)
      all;
    let missing = List.length (List.filter (fun v -> not (List.mem v all)) definite) in
    if missing > kills then
      Alcotest.failf "seed %d: %d completed values missing but only %d kills" seed missing kills;
    (* the switch committed (or was never needed): the queue works *)
    Q.enqueue q h.(2) 999;
    (match Q.dequeue q h.(2) with
    | Some 999 -> ()
    | _ -> Alcotest.failf "seed %d: queue wedged after switch-window death" seed)
  done;
  if !total_kills = 0 then
    Alcotest.fail "no switch-drain kill ever fired: lethal topology plans are dead code?"

(* The storm build of the adaptive family on real domains: hardware
   scheduling instead of the sim, park and kill plans armed. *)
let test_topo_real_storm_smoke () =
  let module W = Topology.Adaptive_inject in
  let run_storm ~lethal ~seed =
    Inject.reset_stats ();
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-7));
    let plan =
      Inject.Plan.make ~park:50 ~lethal
        ~points:(Inject.points_of_class Inject.Topology)
        ~seed ()
    in
    let is_victim = Domain.DLS.new_key (fun () -> false) in
    let q = W.create ~segment_shift:2 ~max_garbage:2 () in
    let ops = 2_000 in
    let completed = Array.make 4 false in
    Inject.with_controller
      (fun p -> if Domain.DLS.get is_victim then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let worker d () =
          if d < 2 then Domain.DLS.set is_victim true;
          let h = W.register q in
          Fun.protect ~finally:(fun () -> W.retire q h) @@ fun () ->
          try
            for i = 1 to ops do
              W.enqueue q h ((d * ops) + i);
              ignore (W.dequeue q h)
            done;
            completed.(d) <- true
          with Inject.Killed _ -> ()
        in
        let ds = List.init 4 (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join ds);
    Array.iteri
      (fun d ok ->
        if (not ok) && (d >= 2 || not lethal) then
          Alcotest.failf "domain %d failed to complete (lethal=%b)" d lethal)
      completed;
    (* the all-pairs storm degraded it to the general backend; the
       queue must still be consistent there *)
    let h = W.register q in
    let rec drain n = match W.dequeue q h with Some _ -> drain (n + 1) | None -> n in
    ignore (drain 0);
    W.retire q h
  in
  run_storm ~lethal:false ~seed:21L;
  run_storm ~lethal:true ~seed:22L

(* ------------------------------------------------------------------ *)
(* Determinism: one (sim seed, plan seed) pair is one storm           *)

let storm_trace ~sim_seed ~plan_seed =
  sim_park ();
  Inject.reset_stats ();
  let plan = Inject.Plan.make ~park:6 ~arm_window:2 ~seed:(Int64.of_int plan_seed) () in
  let trace = ref [] in
  Inject.with_controller
    (fun p -> if Sim.current_fiber () <= 1 then Inject.Plan.decide plan p else Inject.Continue)
    (fun () ->
      let q = aggressive_queue () in
      let h = Array.init 4 (fun _ -> Q.register q) in
      let actor i () =
        for k = 1 to 4 do
          Q.enqueue q h.(i) ((i * 10) + k)
        done;
        for _ = 1 to 4 do
          match Q.dequeue q h.(i) with
          | Some v -> trace := v :: !trace
          | None -> trace := -1 :: !trace
        done
      in
      ignore (run_ok ~seed:sim_seed [| actor 0; actor 1; actor 2; actor 3 |]);
      trace := !trace @ drain q h.(0));
  let per_point =
    List.map
      (fun p ->
        let s = Inject.stats p in
        (Inject.point_name p, s.Inject.hits, s.Inject.parks, s.Inject.kills))
      Inject.all_points
  in
  (List.rev !trace, per_point)

let test_same_seed_same_storm () =
  for sim_seed = 1 to 40 do
    let t1 = storm_trace ~sim_seed ~plan_seed:(sim_seed * 13) in
    let t2 = storm_trace ~sim_seed ~plan_seed:(sim_seed * 13) in
    if t1 <> t2 then Alcotest.failf "sim seed %d: same seeds, different storm" sim_seed
  done

(* ------------------------------------------------------------------ *)
(* Real domains: the storm build under hardware scheduling            *)

let test_real_storm_smoke () =
  let module W = Wfq.Wfqueue_inject in
  let run_storm ~lethal ~seed =
    Inject.reset_stats ();
    Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-7));
    let plan = Inject.Plan.make ~park:50 ~lethal ~seed () in
    let is_victim = Domain.DLS.new_key (fun () -> false) in
    let q = W.create ~patience:1 ~segment_shift:2 ~max_garbage:2 () in
    let ops = 2_000 in
    let completed = Array.make 4 false in
    Inject.with_controller
      (fun p -> if Domain.DLS.get is_victim then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let worker d () =
          if d < 2 then Domain.DLS.set is_victim true;
          let h = W.register q in
          Fun.protect ~finally:(fun () -> W.retire q h) @@ fun () ->
          try
            for i = 1 to ops do
              W.enqueue q h ((d * ops) + i);
              ignore (W.dequeue q h)
            done;
            completed.(d) <- true
          with Inject.Killed _ -> ()
        in
        let ds = List.init 4 (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join ds);
    Array.iteri
      (fun d ok ->
        if (not ok) && (d >= 2 || not lethal) then
          Alcotest.failf "domain %d failed to complete (lethal=%b)" d lethal)
      completed;
    (* queue still consistent after the storm *)
    let rec drain n = match W.pop q with Some _ -> drain (n + 1) | None -> n in
    ignore (drain 0)
  in
  run_storm ~lethal:false ~seed:11L;
  run_storm ~lethal:true ~seed:12L

let () =
  Alcotest.run "inject"
    [
      ( "build-matrix",
        [
          Alcotest.test_case "injector wiring per build" `Quick test_build_matrix;
          Alcotest.test_case "enabled build transparent without controller" `Quick
            test_enabled_transparent;
        ] );
      ( "park-storms",
        List.map
          (fun cls ->
            Alcotest.test_case
              (Printf.sprintf "2-of-4 parked at %s points" (Inject.class_name cls))
              `Quick (test_park_storm cls))
          [ Inject.Enqueue; Inject.Dequeue; Inject.Helping; Inject.Cleanup; Inject.Hazard ]
        @ [
            Alcotest.test_case "2-of-4 parked at batch points" `Quick test_batch_park_storm;
            Alcotest.test_case "2-of-4 parked in bounded freelist windows" `Quick
              test_pool_park_storm;
          ] );
      ( "kill-storms",
        [
          Alcotest.test_case "crashes strand <=1 value, never duplicate" `Quick test_kill_storm;
          Alcotest.test_case "batch crashes strand <= batch values" `Quick test_batch_kill_storm;
          Alcotest.test_case "freelist crashes keep the segment cap" `Quick test_pool_kill_storm;
          Alcotest.test_case "helpers complete a dead enqueuer's request" `Quick
            test_helping_completes_dead_enqueuer;
          Alcotest.test_case "dead dequeuer strands at most one value" `Quick
            test_dead_dequeuer_strands_at_most_one;
          Alcotest.test_case "cleanup survives token-holder death" `Quick
            test_cleanup_token_death_recovers;
        ] );
      ( "topology-storms",
        [
          Alcotest.test_case "parks at topology points conserve values" `Quick
            test_topology_park_storm;
          Alcotest.test_case "dead MPSC producer leaves a skippable hole" `Quick
            test_topo_dead_producer_leaves_hole;
          Alcotest.test_case "dead SPMC ticket strands at most one value" `Quick
            test_topo_dead_ticket_strands_at_most_one;
          Alcotest.test_case "death during adaptive switch drain recovers" `Quick
            test_topo_switch_death_recovers;
          Alcotest.test_case "4-domain adaptive storm smoke" `Quick test_topo_real_storm_smoke;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seeds, same storm" `Quick test_same_seed_same_storm ] );
      ("real-domains", [ Alcotest.test_case "4-domain storm smoke" `Quick test_real_storm_smoke ]);
    ]
