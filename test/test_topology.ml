(* The specialized topology variants and the adaptive queue.

   Four layers of coverage:

   - sequential semantics of each variant on hardware atomics (FIFO
     across segment boundaries, batch APIs, role enforcement, the
     compile-out build matrix, the zero-allocation hot path);
   - linearizability of each variant on the deterministic scheduler:
     systematic exploration of small topology-legal histories with the
     WGL checker, plus wider random-schedule sweeps;
   - the adaptive degrade protocol: mode-lattice transitions, value
     conservation and per-producer FIFO across the drain-then-switch,
     under both sequential driving and random-schedule sweeps (the
     quiesce spin resolves under the random scheduler; systematic
     exploration covers the post-switch dispatch, where no fiber can
     block);
   - the routers' view: [Shard.Adaptive] exposing the same QUEUE
     surface through topology-adaptive shards. *)

module Sim = Simsched.Sim
module H = Lincheck.History
module Spec = Lincheck.Queue_spec
module Wgl = Lincheck.Wgl.Make (Lincheck.Queue_spec)

let check = Alcotest.check

let run_ok ?max_steps ~seed fibers =
  let stats = Sim.run ?max_steps ~seed:(Int64.of_int seed) fibers in
  if stats.Sim.max_steps_hit then
    Alcotest.failf "seed %d: scheduler step limit hit (livelock?)" seed;
  stats

(* ------------------------------------------------------------------ *)
(* Sequential semantics, production builds                            *)

(* Every variant reduced to closures over one registered handle (a
   single handle may legally hold both roles in any topology). *)
type seq_api = {
  enq : int -> unit;
  deq : unit -> int option;
  deq_or : int -> int;
  enq_batch : int array -> unit;
  deq_batch_into : int array -> default:int -> int;
  length : unit -> int;
}

let spsc_api ?(segment_shift = 2) ?(max_garbage = 2) () =
  let module Q = Topology.Spsc in
  let q = Q.create ~segment_shift ~max_garbage () in
  let h = Q.register q in
  {
    enq = (fun v -> Q.enqueue q h v);
    deq = (fun () -> Q.dequeue q h);
    deq_or = (fun d -> Q.dequeue_or q h d);
    enq_batch = (fun a -> Q.enq_batch q h a);
    deq_batch_into = (fun a ~default -> Q.deq_batch_into q h a ~default);
    length = (fun () -> Q.approx_length q);
  }

let mpsc_api ?(segment_shift = 2) ?(max_garbage = 2) () =
  let module Q = Topology.Mpsc in
  let q = Q.create ~segment_shift ~max_garbage () in
  let h = Q.register q in
  {
    enq = (fun v -> Q.enqueue q h v);
    deq = (fun () -> Q.dequeue q h);
    deq_or = (fun d -> Q.dequeue_or q h d);
    enq_batch = (fun a -> Q.enq_batch q h a);
    deq_batch_into = (fun a ~default -> Q.deq_batch_into q h a ~default);
    length = (fun () -> Q.approx_length q);
  }

let spmc_api ?(segment_shift = 2) ?(max_garbage = 2) () =
  let module Q = Topology.Spmc in
  let q = Q.create ~segment_shift ~max_garbage () in
  let h = Q.register q in
  {
    enq = (fun v -> Q.enqueue q h v);
    deq = (fun () -> Q.dequeue q h);
    deq_or = (fun d -> Q.dequeue_or q h d);
    enq_batch = (fun a -> Q.enq_batch q h a);
    deq_batch_into = (fun a ~default -> Q.deq_batch_into q h a ~default);
    length = (fun () -> Q.approx_length q);
  }

let adaptive_api ?(segment_shift = 2) ?(max_garbage = 2) () =
  let module Q = Topology.Adaptive in
  let q = Q.create ~segment_shift ~max_garbage () in
  let h = Q.register q in
  {
    enq = (fun v -> Q.enqueue q h v);
    deq = (fun () -> Q.dequeue q h);
    deq_or = (fun d -> Q.dequeue_or q h d);
    enq_batch = (fun a -> Q.enq_batch q h a);
    deq_batch_into = (fun a ~default -> Q.deq_batch_into q h a ~default);
    length = (fun () -> Q.approx_length q);
  }

let variants =
  [
    ("spsc", fun () -> spsc_api ());
    ("mpsc", fun () -> mpsc_api ());
    ("spmc", fun () -> spmc_api ());
    ("adaptive", fun () -> adaptive_api ());
  ]

(* the same constructors at their default (CI alloc gate) geometry *)
let default_geometry_variants =
  let g = 10 and mg = 16 in
  [
    ("spsc", fun () -> spsc_api ~segment_shift:g ~max_garbage:mg ());
    ("mpsc", fun () -> mpsc_api ~segment_shift:g ~max_garbage:mg ());
    ("spmc", fun () -> spmc_api ~segment_shift:g ~max_garbage:mg ());
    ("adaptive", fun () -> adaptive_api ~segment_shift:g ~max_garbage:mg ());
  ]

let test_sequential_fifo () =
  (* 100 values through 4-cell segments: ~25 segment transitions per
     variant, so growth, linking and recycling all run *)
  List.iter
    (fun (name, api) ->
      let a = api () in
      for i = 1 to 100 do
        a.enq i
      done;
      check Alcotest.int (name ^ ": length") 100 (a.length ());
      for i = 1 to 100 do
        check Alcotest.(option int) (Printf.sprintf "%s: value %d" name i) (Some i) (a.deq ())
      done;
      check Alcotest.(option int) (name ^ ": drained") None (a.deq ());
      check Alcotest.int (name ^ ": empty dequeue_or") min_int (a.deq_or min_int);
      check Alcotest.int (name ^ ": length drained") 0 (a.length ()))
    variants

let test_interleaved_enq_deq () =
  (* alternating single ops: the head chases the tail across segment
     boundaries, the recycle-behind-the-walker path *)
  List.iter
    (fun (name, api) ->
      let a = api () in
      for i = 1 to 200 do
        a.enq i;
        a.enq (1000 + i);
        check Alcotest.int (Printf.sprintf "%s: chase %d" name i) i (a.deq_or min_int);
        check Alcotest.int (Printf.sprintf "%s: chase %d'" name i) (1000 + i) (a.deq_or min_int)
      done)
    variants

let test_batch_into_semantics () =
  List.iter
    (fun (name, api) ->
      let a = api () in
      a.enq_batch [| 1; 2; 3; 4; 5 |];
      let out = Array.make 3 0 in
      check Alcotest.int (name ^ ": full buffer") 3 (a.deq_batch_into out ~default:(-1));
      check Alcotest.(array int) (name ^ ": first three") [| 1; 2; 3 |] out;
      let out = Array.make 4 0 in
      (* only two left: count is 2 and the tail is default-filled *)
      check Alcotest.int (name ^ ": partial") 2 (a.deq_batch_into out ~default:(-1));
      check Alcotest.(array int) (name ^ ": tail default-filled") [| 4; 5; -1; -1 |] out;
      check Alcotest.int (name ^ ": empty") 0 (a.deq_batch_into out ~default:(-7));
      check Alcotest.(array int) (name ^ ": all default") [| -7; -7; -7; -7 |] out)
    variants

let test_role_enforcement () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: second role claim should raise Invalid_argument" name
  in
  (* spsc: second producer and second consumer both rejected *)
  let module S = Topology.Spsc in
  let q = S.create () in
  let h1 = S.register q and h2 = S.register q in
  S.enqueue q h1 1;
  expect_invalid "spsc producer" (fun () -> S.enqueue q h2 2);
  ignore (S.dequeue q h1);
  expect_invalid "spsc consumer" (fun () -> S.dequeue q h2);
  (* mpsc: many producers fine, second consumer rejected *)
  let module M = Topology.Mpsc in
  let q = M.create () in
  let h1 = M.register q and h2 = M.register q in
  M.enqueue q h1 1;
  M.enqueue q h2 2;
  ignore (M.dequeue q h1);
  expect_invalid "mpsc consumer" (fun () -> M.dequeue q h2);
  (* spmc: many consumers fine, second producer rejected *)
  let module P = Topology.Spmc in
  let q = P.create () in
  let h1 = P.register q and h2 = P.register q in
  P.enqueue q h1 1;
  expect_invalid "spmc producer" (fun () -> P.enqueue q h2 2);
  ignore (P.dequeue q h1);
  ignore (P.dequeue q h2)

let test_role_release_on_retire () =
  (* retiring a handle frees its role seat for a successor — the
     property the post-storm drain and the adaptive switch rely on *)
  let module S = Topology.Spsc in
  let q = S.create () in
  let h1 = S.register q in
  S.enqueue q h1 1;
  S.retire q h1;
  let h2 = S.register q in
  S.enqueue q h2 2;
  check Alcotest.(option int) "successor produces" (Some 1) (S.dequeue q h2);
  check Alcotest.(option int) "fifo intact" (Some 2) (S.dequeue q h2)

let test_build_matrix () =
  check Alcotest.bool "spsc production inert" false Topology.Spsc.injector_enabled;
  check Alcotest.bool "mpsc production inert" false Topology.Mpsc.injector_enabled;
  check Alcotest.bool "spmc production inert" false Topology.Spmc.injector_enabled;
  check Alcotest.bool "adaptive production inert" false Topology.Adaptive.injector_enabled;
  check Alcotest.bool "spsc production unprobed" false Topology.Spsc.probe_enabled;
  check Alcotest.bool "adaptive production unprobed" false Topology.Adaptive.probe_enabled;
  check Alcotest.bool "spsc storm build armed" true Topology.Spsc_inject.injector_enabled;
  check Alcotest.bool "mpsc storm build armed" true Topology.Mpsc_inject.injector_enabled;
  check Alcotest.bool "spmc storm build armed" true Topology.Spmc_inject.injector_enabled;
  check Alcotest.bool "adaptive storm build armed" true Topology.Adaptive_inject.injector_enabled

let test_hot_path_allocation_free () =
  (* steady state after warm-up (pool populated): a pair of ops must
     allocate nothing.  Measured at the DEFAULT geometry (the CI alloc
     gate's configuration): the tiny 4-cell segments the other tests
     use cross a segment every 4 ops, so their per-crossing costs
     (fresh [End] stamp, pool cons) cannot amortize under the bound *)
  List.iter
    (fun (name, api) ->
      let a = api () in
      for i = 1 to 20_000 do
        a.enq i;
        ignore (a.deq_or min_int)
      done;
      let pairs = 5_000 in
      let w0 = Gc.minor_words () in
      for i = 1 to pairs do
        a.enq i;
        ignore (a.deq_or min_int)
      done;
      let per_op = (Gc.minor_words () -. w0) /. float_of_int (2 * pairs) in
      if per_op > 0.5 then
        Alcotest.failf "%s: %.3f words/op allocated on the steady-state hot path" name per_op)
    default_geometry_variants

(* ------------------------------------------------------------------ *)
(* Linearizability on the deterministic scheduler                     *)

(* Record one schedule's history with the sim's logical clock and
   check it with WGL.  [make] builds fresh fibers per schedule. *)
let explore_linearizable name ?(max_schedules = 100_000) ?(preemptions = 2) make =
  let events = ref [] in
  let record thread input f =
    let inv = Sim.now () in
    let output = f () in
    let res = Sim.now () in
    events := { H.thread; input; output; inv; res } :: !events
  in
  let schedules = ref 0 in
  let result =
    Sim.explore ~max_schedules ~preemptions
      ~make_fibers:(fun () ->
        events := [];
        make record)
      ~check:(fun () ->
        incr schedules;
        let evs = Array.of_list (List.rev !events) in
        Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
        match Wgl.check evs with
        | Wgl.Linearizable _ -> ()
        | Wgl.Not_linearizable ->
          Alcotest.failf "%s: non-linearizable schedule #%d" name !schedules
        | Wgl.Too_large -> Alcotest.failf "%s: history too large for WGL" name)
      ()
  in
  if result.Sim.truncated_runs > 0 then
    Alcotest.failf "%s: %d truncated schedules (unexpected spin)" name result.Sim.truncated_runs;
  if result.Sim.schedules = 0 then Alcotest.failf "%s: no schedules explored" name

let test_spsc_explore () =
  explore_linearizable "spsc" (fun record ->
      let module Q = Sim.Spsc in
      let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
      let hp = Q.register q and hc = Q.register q in
      let producer () =
        for i = 1 to 3 do
          record 0 (Spec.Enq i) (fun () ->
              Q.enqueue q hp i;
              Spec.Accepted)
        done
      in
      let consumer () =
        for _ = 1 to 3 do
          record 1 Spec.Deq (fun () ->
              match Q.dequeue q hc with Some v -> Spec.Got v | None -> Spec.Empty)
        done
      in
      [| producer; consumer |])

let test_mpsc_explore () =
  explore_linearizable "mpsc" (fun record ->
      let module Q = Sim.Mpsc in
      let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
      let h = Array.init 3 (fun _ -> Q.register q) in
      let producer t () =
        for i = 1 to 2 do
          record t (Spec.Enq ((t * 100) + i)) (fun () ->
              Q.enqueue q h.(t) ((t * 100) + i);
              Spec.Accepted)
        done
      in
      let consumer () =
        for _ = 1 to 4 do
          record 2 Spec.Deq (fun () ->
              match Q.dequeue q h.(2) with Some v -> Spec.Got v | None -> Spec.Empty)
        done
      in
      [| producer 0; producer 1; consumer |])

let test_spmc_explore () =
  explore_linearizable "spmc" (fun record ->
      let module Q = Sim.Spmc in
      let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
      let h = Array.init 3 (fun _ -> Q.register q) in
      let producer () =
        for i = 1 to 4 do
          record 0 (Spec.Enq i) (fun () ->
              Q.enqueue q h.(0) i;
              Spec.Accepted)
        done
      in
      let consumer t () =
        for _ = 1 to 2 do
          record t Spec.Deq (fun () ->
              match Q.dequeue q h.(t) with Some v -> Spec.Got v | None -> Spec.Empty)
        done
      in
      [| producer; consumer 1; consumer 2 |])

(* Wider histories under random schedules: less systematic, far more
   operations per run, covering segment churn the short exploration
   histories cannot reach. *)
let sweep_linearizable name ~seeds make =
  for seed = 1 to seeds do
    let events = ref [] in
    let record thread input f =
      let inv = Sim.now () in
      let output = f () in
      let res = Sim.now () in
      events := { H.thread; input; output; inv; res } :: !events
    in
    ignore (run_ok ~seed (make record));
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable -> Alcotest.failf "%s: non-linearizable history (seed %d)" name seed
    | Wgl.Too_large -> Alcotest.failf "%s: history too large (seed %d)" name seed
  done

let test_spsc_sweep () =
  sweep_linearizable "spsc" ~seeds:500 (fun record ->
      let module Q = Sim.Spsc in
      let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
      let hp = Q.register q and hc = Q.register q in
      [|
        (fun () ->
          for i = 1 to 4 do
            record 0 (Spec.Enq i) (fun () ->
                Q.enqueue q hp i;
                Spec.Accepted)
          done);
        (fun () ->
          for _ = 1 to 4 do
            record 1 Spec.Deq (fun () ->
                match Q.dequeue q hc with Some v -> Spec.Got v | None -> Spec.Empty)
          done);
      |])

let test_mpsc_sweep () =
  sweep_linearizable "mpsc" ~seeds:500 (fun record ->
      let module Q = Sim.Mpsc in
      let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
      let h = Array.init 4 (fun _ -> Q.register q) in
      let producer t () =
        for i = 1 to 3 do
          record t (Spec.Enq ((t * 100) + i)) (fun () ->
              Q.enqueue q h.(t) ((t * 100) + i);
              Spec.Accepted)
        done
      in
      [|
        producer 0;
        producer 1;
        producer 2;
        (fun () ->
          for _ = 1 to 9 do
            record 3 Spec.Deq (fun () ->
                match Q.dequeue q h.(3) with Some v -> Spec.Got v | None -> Spec.Empty)
          done);
      |])

let test_spmc_sweep () =
  sweep_linearizable "spmc" ~seeds:500 (fun record ->
      let module Q = Sim.Spmc in
      let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
      let h = Array.init 4 (fun _ -> Q.register q) in
      let consumer t () =
        for _ = 1 to 3 do
          record t Spec.Deq (fun () ->
              match Q.dequeue q h.(t) with Some v -> Spec.Got v | None -> Spec.Empty)
        done
      in
      [|
        (fun () ->
          for i = 1 to 9 do
            record 0 (Spec.Enq i) (fun () ->
                Q.enqueue q h.(0) i;
                Spec.Accepted)
          done);
        consumer 1;
        consumer 2;
        consumer 3;
      |])

(* ------------------------------------------------------------------ *)
(* The adaptive degrade protocol                                      *)

let test_adaptive_mode_lattice () =
  (* producers path: spsc -> mpsc -> general, values conserved in FIFO
     order across both drain-then-switch transitions *)
  let module Q = Topology.Adaptive in
  let q = Q.create ~segment_shift:2 () in
  let h1 = Q.register q in
  check Alcotest.string "starts spsc" "spsc" (Q.mode q);
  for i = 1 to 5 do
    Q.enqueue q h1 i
  done;
  check Alcotest.string "single producer stays spsc" "spsc" (Q.mode q);
  let h2 = Q.register q in
  Q.enqueue q h2 6;
  check Alcotest.string "second producer degrades to mpsc" "mpsc" (Q.mode q);
  check Alcotest.int "one switch" 1 (Q.switches q);
  check Alcotest.(option int) "fifo across switch" (Some 1) (Q.dequeue q h1);
  (match Q.dequeue q h2 with
  | Some 2 -> ()
  | other ->
    Alcotest.failf "second consumer should get 2, got %s"
      (match other with Some v -> string_of_int v | None -> "EMPTY"));
  check Alcotest.string "second consumer degrades to general" "general" (Q.mode q);
  check Alcotest.int "two switches" 2 (Q.switches q);
  let rest = List.init 4 (fun _ -> Q.dequeue q h1) in
  check
    Alcotest.(list (option int))
    "remaining fifo intact"
    [ Some 3; Some 4; Some 5; Some 6 ]
    rest;
  check Alcotest.(option int) "drained" None (Q.dequeue q h1);
  (* the lattice is monotone: no further switches ever *)
  Q.enqueue q h1 7;
  check Alcotest.int "no switch back" 2 (Q.switches q)

let test_adaptive_spmc_path () =
  (* consumers path: spsc -> spmc -> general *)
  let module Q = Topology.Adaptive in
  let q = Q.create () in
  let h1 = Q.register q in
  Q.enqueue q h1 1;
  Q.enqueue q h1 2;
  ignore (Q.dequeue q h1);
  check Alcotest.string "still spsc" "spsc" (Q.mode q);
  let h2 = Q.register q in
  check Alcotest.(option int) "second consumer gets next" (Some 2) (Q.dequeue q h2);
  check Alcotest.string "degrades to spmc" "spmc" (Q.mode q);
  Q.enqueue q h2 3;
  check Alcotest.string "second producer degrades to general" "general" (Q.mode q);
  check Alcotest.(option int) "value survives" (Some 3) (Q.dequeue q h1)

let test_adaptive_degrade_sweep () =
  (* the switch raced by concurrent fibers, 300 random schedules: two
     producers force spsc->mpsc mid-stream while a consumer dequeues;
     conservation and per-producer order must hold across the drain *)
  for seed = 1 to 300 do
    let module Q = Sim.Adaptive_queue in
    let q = Q.create ~patience:2 ~segment_shift:1 ~max_garbage:2 () in
    let h = Array.init 3 (fun _ -> Q.register q) in
    let got = ref [] in
    let producer t () =
      for i = 1 to 5 do
        Q.enqueue q h.(t) ((t * 100) + i)
      done
    in
    let consumer () =
      for _ = 1 to 10 do
        match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
      done
    in
    ignore (run_ok ~seed [| producer 0; producer 1; consumer |]);
    let rec drain acc =
      match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc
    in
    let all = !got @ drain [] in
    check
      Alcotest.(list int)
      (Printf.sprintf "seed %d: conservation" seed)
      (List.sort compare (List.init 5 (fun i -> i + 1) @ List.init 5 (fun i -> 100 + i + 1)))
      (List.sort compare all);
    (* per-producer FIFO: each producer's values must come out in
       enqueue order even when the switch drains mid-stream *)
    let order t =
      let mine = List.filter (fun v -> v / 100 = t) (List.rev !got @ List.rev (drain [])) in
      let rec ascending = function
        | a :: (b :: _ as tl) -> a < b && ascending tl
        | _ -> true
      in
      ascending mine
    in
    check Alcotest.bool (Printf.sprintf "seed %d: producer 0 order" seed) true (order 0);
    check Alcotest.bool (Printf.sprintf "seed %d: producer 1 order" seed) true (order 1);
    check Alcotest.bool
      (Printf.sprintf "seed %d: degraded at least once" seed)
      true
      (Q.switches q >= 1)
  done

let test_adaptive_full_degrade_sweep () =
  (* both role axes exceeded concurrently: must land on the general
     backend with everything conserved *)
  for seed = 1 to 200 do
    let module Q = Sim.Adaptive_queue in
    let q = Q.create ~patience:2 ~segment_shift:1 ~max_garbage:2 () in
    let h = Array.init 3 (fun _ -> Q.register q) in
    let got = ref [] in
    let take hi = match Q.dequeue q h.(hi) with Some v -> got := v :: !got | None -> () in
    let f0 () =
      for i = 1 to 4 do
        Q.enqueue q h.(0) i
      done;
      take 0
    in
    let f1 () =
      for i = 1 to 4 do
        Q.enqueue q h.(1) (100 + i)
      done;
      take 1
    in
    let f2 () =
      for _ = 1 to 6 do
        take 2
      done
    in
    ignore (run_ok ~seed [| f0; f1; f2 |]);
    let rec drain acc =
      match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc
    in
    let all = !got @ drain [] in
    check
      Alcotest.(list int)
      (Printf.sprintf "seed %d: conservation" seed)
      (List.sort compare (List.init 4 (fun i -> i + 1) @ List.init 4 (fun i -> 100 + i + 1)))
      (List.sort compare all);
    check Alcotest.string (Printf.sprintf "seed %d: fully degraded" seed) "general" (Q.mode q)
  done

let test_adaptive_post_switch_explore () =
  (* the switch itself needs fibers to wait out the drain, which the
     systematic explorer cannot schedule past its preemption bound —
     so degrade to the general backend sequentially (outside the
     scheduler), then exhaustively explore concurrent dispatch on the
     degraded queue: registration epochs, re-registration of stale
     sub-handles and the general-queue hot path through the adaptive
     indirection *)
  explore_linearizable "adaptive post-switch" (fun record ->
      let module Q = Sim.Adaptive_queue in
      let q = Q.create ~patience:2 ~segment_shift:1 ~max_garbage:2 () in
      let h = Array.init 2 (fun _ -> Q.register q) in
      Q.enqueue q h.(0) 900;
      Q.enqueue q h.(1) 901;
      ignore (Q.dequeue q h.(0));
      ignore (Q.dequeue q h.(1));
      if Q.mode q <> "general" then Alcotest.fail "setup should degrade to general";
      let actor t () =
        for i = 1 to 2 do
          record t (Spec.Enq ((t * 100) + i)) (fun () ->
              Q.enqueue q h.(t) ((t * 100) + i);
              Spec.Accepted)
        done;
        record t Spec.Deq (fun () ->
            match Q.dequeue q h.(t) with Some v -> Spec.Got v | None -> Spec.Empty)
      in
      [| actor 0; actor 1 |])

(* ------------------------------------------------------------------ *)
(* The adaptive router                                                *)

let test_adaptive_router_roundtrip () =
  let module R = Shard.Adaptive in
  let t = R.create ~shards:2 () in
  let h = R.register t in
  for i = 1 to 50 do
    R.enqueue t h i
  done;
  let got = ref [] in
  let rec go () =
    match R.dequeue t h with
    | Some v ->
      got := v :: !got;
      go ()
    | None -> ()
  in
  go ();
  check
    Alcotest.(list int)
    "router conserves across adaptive shards"
    (List.init 50 (fun i -> i + 1))
    (List.sort compare !got);
  (* the batch-into path through the router *)
  R.enq_batch t h (Array.init 10 (fun i -> 200 + i));
  let out = Array.make 16 0 in
  let n = R.deq_batch_into t h out ~default:(-1) in
  let taken = Array.to_list (Array.sub out 0 n) in
  let rest = ref [] in
  let rec go2 () =
    match R.dequeue t h with
    | Some v ->
      rest := v :: !rest;
      go2 ()
    | None -> ()
  in
  go2 ();
  check
    Alcotest.(list int)
    "batch-into + drain conserve"
    (List.init 10 (fun i -> 200 + i))
    (List.sort compare (taken @ !rest))

let test_adaptive_router_concurrent () =
  (* hardware-domain smoke: 4 domains churning pairs through adaptive
     shards (forcing degrades under real parallelism), conservation
     audited *)
  let module R = Shard.Adaptive in
  let t = R.create ~shards:2 () in
  let threads = 4 and ops = 5_000 in
  let got = Array.init threads (fun _ -> ref []) in
  let barrier = Sync.Barrier.create threads in
  let domains =
    List.init threads (fun d ->
        Domain.spawn (fun () ->
            let h = R.register t in
            Sync.Barrier.await barrier;
            for i = 0 to ops - 1 do
              R.enqueue t h ((d * ops) + i);
              match R.dequeue t h with Some v -> got.(d) := v :: !(got.(d)) | None -> ()
            done;
            R.retire t h))
  in
  List.iter Domain.join domains;
  let h = R.register t in
  let rec drain acc = match R.dequeue t h with Some v -> drain (v :: acc) | None -> acc in
  let all = List.concat_map (fun r -> !r) (Array.to_list got) @ drain [] in
  check Alcotest.int "nothing lost or duplicated" (threads * ops) (List.length all);
  let sorted = List.sort compare all in
  check
    Alcotest.(list int)
    "exact multiset"
    (List.init (threads * ops) Fun.id)
    sorted

(* ------------------------------------------------------------------ *)
(* Regression (PR 9): the Segs release path under double release      *)

(* The scenario behind the [pool_push] CAS-claim: a drainer killed in
   the [Topo_switch_draining] window after handing its detached
   segment to the pool, whose segment the switch epilogue then
   releases again.  With a blind [Recycled] store the second push
   inserts the segment into the pool twice and two acquirers each get
   it — one physical segment spliced into two chains.  The claim makes
   the second releaser find [Recycled] already in place and back off.
   Pin it directly on [Segs] over the deterministic scheduler: two
   releaser fibers race full double releases of the same detached
   segments; afterwards every pool entry must be physically distinct
   and no segment may be pooled twice. *)

let test_segs_double_release_explore () =
  let module Segs = Topology.Segs.Make (Sim.Atomic_shim) in
  for seed = 1 to 300 do
    let t = Segs.make ~size:2 ~pool_limit:16 ~pool_enabled:true in
    (* detached segments, exactly as a drainer holds them between the
       unlink and the push *)
    let segs = Array.init 3 (fun i -> Segs.alloc_seg ~size:2 ~base:(16 * (i + 1))) in
    let releaser () = Array.iter (fun s -> Segs.pool_push t s) segs in
    ignore (run_ok ~seed [| releaser; releaser |]);
    let rec drain acc =
      match Segs.pool_pop t with Some s -> drain (s :: acc) | None -> acc
    in
    let pooled = drain [] in
    let rec dup_phys = function
      | [] -> false
      | s :: tl -> List.exists (fun s' -> s' == s) tl || dup_phys tl
    in
    if dup_phys pooled then
      Alcotest.failf "seed %d: a double-released segment entered the pool twice" seed;
    if List.length pooled > Array.length segs then
      Alcotest.failf "seed %d: pool grew past the released set (%d > %d)" seed
        (List.length pooled) (Array.length segs);
    (* a released-then-acquired segment is re-based for its new chain
       slot; a second acquire must never return the same block *)
    let a1 = Segs.acquire t ~base:1000 in
    let a2 = Segs.acquire t ~base:1002 in
    if a1 == a2 then Alcotest.failf "seed %d: one segment handed to two chains" seed
  done

(* The same invariant end-to-end: kill the switcher inside the
   [Topo_switch_draining] window (token held, old backend about to be
   drained into the new one) and check that the retry path conserves
   every committed value exactly once — a double-released segment
   would surface here as a duplicated or vanished value when its block
   lands in two chains. *)
let test_adaptive_switch_kill_storm () =
  let total_kills = ref 0 in
  for seed = 1 to 300 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1
        ~points:[ Inject.Topo_switch_draining ]
        ~seed:(Int64.of_int ((seed * 6151) + 3))
        ()
    in
    Inject.with_controller
      (fun p ->
        if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        let module Q = Sim.Adaptive_queue in
        let q = Q.create ~patience:2 ~segment_shift:1 ~max_garbage:2 () in
        let h = Array.init 3 (fun _ -> Q.register q) in
        let committed = ref [] in
        let got = ref [] in
        (* fiber 0 is the second producer: its first enqueue forces
           the spsc->mpsc switch, so it is usually the switcher the
           plan kills mid-drain *)
        let victim () =
          try
            for i = 1 to 5 do
              Q.enqueue q h.(0) (100 + i);
              committed := (100 + i) :: !committed
            done
          with Inject.Killed _ -> ()
        in
        let producer () =
          for i = 1 to 5 do
            Q.enqueue q h.(1) i;
            committed := i :: !committed
          done
        in
        let consumer () =
          for _ = 1 to 10 do
            match Q.dequeue q h.(2) with Some v -> got := v :: !got | None -> ()
          done
        in
        ignore (run_ok ~seed [| victim; producer; consumer |]);
        total_kills := !total_kills + (Inject.stats Inject.Topo_switch_draining).Inject.kills;
        let rec drain acc =
          match Q.dequeue q h.(2) with Some v -> drain (v :: acc) | None -> acc
        in
        let all = List.sort compare (!got @ drain []) in
        let rec dups = function
          | a :: (b :: _ as tl) -> if a = b then Some a else dups tl
          | _ -> None
        in
        (match dups all with
        | Some v ->
          Alcotest.failf "seed %d: value %d dequeued twice after a mid-drain kill" seed v
        | None -> ());
        (* every committed value exactly once; the kill may strand at
           most the victim's single in-flight value *)
        List.iter
          (fun v ->
            if not (List.mem v all) then
              Alcotest.failf "seed %d: committed value %d lost across the killed switch"
                seed v)
          !committed;
        List.iter
          (fun v ->
            if not (List.mem v !committed) && not (v > 100 && v <= 105) then
              Alcotest.failf "seed %d: alien value %d surfaced" seed v)
          all)
  done;
  if !total_kills = 0 then
    Alcotest.fail "no Topo_switch_draining kill fired across 300 seeds — storm is dead code"

let () =
  Alcotest.run "topology"
    [
      ( "sequential",
        [
          Alcotest.test_case "fifo across segments, all variants" `Quick test_sequential_fifo;
          Alcotest.test_case "head chasing tail" `Quick test_interleaved_enq_deq;
          Alcotest.test_case "deq_batch_into semantics" `Quick test_batch_into_semantics;
          Alcotest.test_case "role enforcement" `Quick test_role_enforcement;
          Alcotest.test_case "retire releases role seats" `Quick test_role_release_on_retire;
          Alcotest.test_case "injector/probe build matrix" `Quick test_build_matrix;
          Alcotest.test_case "steady-state hot path allocation-free" `Quick
            test_hot_path_allocation_free;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "spsc: systematic exploration" `Quick test_spsc_explore;
          Alcotest.test_case "mpsc: systematic exploration" `Quick test_mpsc_explore;
          Alcotest.test_case "spmc: systematic exploration" `Quick test_spmc_explore;
          Alcotest.test_case "spsc: random-schedule sweep" `Quick test_spsc_sweep;
          Alcotest.test_case "mpsc: random-schedule sweep" `Quick test_mpsc_sweep;
          Alcotest.test_case "spmc: random-schedule sweep" `Quick test_spmc_sweep;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "mode lattice, producer path" `Quick test_adaptive_mode_lattice;
          Alcotest.test_case "mode lattice, consumer path" `Quick test_adaptive_spmc_path;
          Alcotest.test_case "mid-stream degrade sweep (conservation+order)" `Quick
            test_adaptive_degrade_sweep;
          Alcotest.test_case "dual-axis degrade sweep" `Quick test_adaptive_full_degrade_sweep;
          Alcotest.test_case "segs double-release exploration" `Quick
            test_segs_double_release_explore;
          Alcotest.test_case "mid-drain kill storm (conservation)" `Quick
            test_adaptive_switch_kill_storm;
          Alcotest.test_case "post-switch systematic exploration" `Quick
            test_adaptive_post_switch_explore;
        ] );
      ( "router",
        [
          Alcotest.test_case "adaptive shards roundtrip + batch-into" `Quick
            test_adaptive_router_roundtrip;
          Alcotest.test_case "4-domain adaptive router storm" `Quick test_adaptive_router_concurrent;
        ] );
    ]
