(* Model-checking the queue algorithm under controlled schedules.

   Simsched runs the exact algorithm text of Wfq.Wfqueue (via the
   Wfqueue_algo functor) on simulated atomics where every atomic
   access is a scheduling decision.  Each seed is one precise,
   reproducible interleaving; sweeping seeds explores windows -- a
   preemption between a FAA and its CAS, a cleanup racing a slow-path
   commit -- that hardware preemption hits once in millions of
   operations.  Five protocol bugs were fixed during development
   (DESIGN.md §3); the last two were found by this harness. *)

module Q = Simsched.Sim.Queue
module Sim = Simsched.Sim
module H = Lincheck.History
module Spec = Lincheck.Queue_spec
module Wgl = Lincheck.Wgl.Make (Lincheck.Queue_spec)

let check = Alcotest.check

let run_ok ?max_steps ~seed fibers =
  let stats = Sim.run ?max_steps ~seed:(Int64.of_int seed) fibers in
  if stats.Sim.max_steps_hit then
    Alcotest.failf "seed %d: scheduler step limit hit (livelock?)" seed;
  stats

(* ------------------------------------------------------------------ *)

let test_conservation () =
  (* 2 producers + 1 consumer; after every schedule the multiset of
     values must be intact *)
  for seed = 1 to 8_000 do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let h1 = Q.register q and h2 = Q.register q and h3 = Q.register q in
    let got = ref [] in
    ignore
      (run_ok ~seed
         [|
           (fun () ->
             Q.enqueue q h1 1;
             Q.enqueue q h1 11);
           (fun () -> Q.enqueue q h2 2);
           (fun () ->
             for _ = 1 to 5 do
               match Q.dequeue q h3 with Some v -> got := v :: !got | None -> ()
             done);
         |]);
    let rec drain () =
      match Q.dequeue q h3 with
      | Some v ->
        got := v :: !got;
        drain ()
      | None -> ()
    in
    drain ();
    check Alcotest.(list int)
      (Printf.sprintf "seed %d multiset" seed)
      [ 1; 2; 11 ]
      (List.sort compare !got)
  done

let test_linearizable_per_schedule () =
  (* every explored interleaving must produce a linearizable history;
     timestamps come from the scheduler's logical clock *)
  for seed = 1 to 3_000 do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let handles = Array.init 3 (fun _ -> Q.register q) in
    let events = ref [] in
    let record thread input f =
      let inv = Sim.now () in
      let output = f () in
      let res = Sim.now () in
      events := { H.thread; input; output; inv; res } :: !events
    in
    let fiber t () =
      let h = handles.(t) in
      let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 100) + t)) in
      for i = 0 to 2 do
        if Primitives.Splitmix64.bool rng then
          record t (Spec.Enq ((t * 100) + i)) (fun () ->
              Q.enqueue q h ((t * 100) + i);
              Spec.Accepted)
        else
          record t Spec.Deq (fun () ->
              match Q.dequeue q h with Some v -> Spec.Got v | None -> Spec.Empty)
      done
    in
    ignore (run_ok ~seed [| fiber 0; fiber 1; fiber 2 |]);
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable -> Alcotest.failf "seed %d: non-linearizable schedule" seed
    | Wgl.Too_large -> Alcotest.fail "history too large"
  done

let test_flat_cells_linearizable () =
  (* The flat parallel-plane cell representation (values/enqs/deqs
     arrays indexed by [i land seg_mask]) replaced the per-cell record;
     a masking or plane-indexing bug would let two logical cells alias
     one slot.  Sweep the segment sizes that maximize aliasing
     opportunities — shift 0 (every cell is slot 0 of its own segment,
     maximal segment churn), 1, and 2 — under many schedules, checking
     every history against the sequential queue spec. *)
  List.iter
    (fun shift ->
      for seed = 1 to 800 do
        let q = Q.create ~patience:0 ~segment_shift:shift ~max_garbage:2 () in
        let handles = Array.init 3 (fun _ -> Q.register q) in
        let events = ref [] in
        let record thread input f =
          let inv = Sim.now () in
          let output = f () in
          let res = Sim.now () in
          events := { H.thread; input; output; inv; res } :: !events
        in
        let fiber t () =
          let h = handles.(t) in
          let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 331) + t)) in
          for i = 0 to 3 do
            if Primitives.Splitmix64.bool rng then
              record t (Spec.Enq ((t * 100) + i)) (fun () ->
                  Q.enqueue q h ((t * 100) + i);
                  Spec.Accepted)
            else
              record t Spec.Deq (fun () ->
                  match Q.dequeue q h with Some v -> Spec.Got v | None -> Spec.Empty)
          done
        in
        ignore (run_ok ~seed [| fiber 0; fiber 1; fiber 2 |]);
        let evs = Array.of_list (List.rev !events) in
        Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
        match Wgl.check evs with
        | Wgl.Linearizable _ -> ()
        | Wgl.Not_linearizable ->
          Alcotest.failf "shift %d seed %d: non-linearizable schedule" shift seed
        | Wgl.Too_large -> Alcotest.fail "history too large"
      done)
    [ 0; 1; 2 ]

let test_slow_paths_under_schedules () =
  (* patience 0 with competing dequeuers: slow paths and helping run
     under many interleavings; wait-freedom = no schedule may hit the
     step limit *)
  for seed = 1 to 6_000 do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let he = Q.register q and hd1 = Q.register q and hd2 = Q.register q in
    let got = Atomic.make 0 in
    ignore
      (run_ok ~max_steps:200_000 ~seed
         [|
           (fun () ->
             for i = 1 to 4 do
               Q.enqueue q he i
             done);
           (fun () ->
             for _ = 1 to 4 do
               match Q.dequeue q hd1 with
               | Some v -> ignore (Atomic.fetch_and_add got v)
               | None -> ()
             done);
           (fun () ->
             for _ = 1 to 4 do
               match Q.dequeue q hd2 with
               | Some v -> ignore (Atomic.fetch_and_add got v)
               | None -> ()
             done);
         |]);
    let rec drain () =
      match Q.dequeue q hd1 with
      | Some v ->
        ignore (Atomic.fetch_and_add got v);
        drain ()
      | None -> ()
    in
    drain ();
    check Alcotest.int (Printf.sprintf "seed %d sum" seed) 10 (Atomic.get got)
  done

let test_reclamation_under_schedules () =
  (* heavy segment churn with the most aggressive reclamation settings:
     after any schedule the live list is bounded and FIFO per producer
     is preserved *)
  for seed = 1 to 2_000 do
    let q = Q.create ~patience:1 ~segment_shift:1 ~max_garbage:2 () in
    let h1 = Q.register q and h2 = Q.register q in
    let out1 = ref [] in
    ignore
      (run_ok ~max_steps:500_000 ~seed
         [|
           (fun () ->
             for i = 1 to 20 do
               Q.enqueue q h1 i;
               match Q.dequeue q h1 with Some v -> out1 := v :: !out1 | None -> ()
             done);
           (fun () ->
             for i = 101 to 115 do
               Q.enqueue q h2 i;
               ignore (Q.dequeue q h2)
             done);
         |]);
    (* values dequeued by fiber 1 that belong to producer 1 must be
       increasing *)
    let mine = List.filter (fun v -> v <= 100) (List.rev !out1) in
    let rec ascending = function
      | a :: (b :: _ as rest) -> a < b && ascending rest
      | [ _ ] | [] -> true
    in
    check Alcotest.bool (Printf.sprintf "seed %d producer order" seed) true (ascending mine);
    check Alcotest.bool
      (Printf.sprintf "seed %d live segments bounded (%d)" seed (Q.live_segments q))
      true
      (Q.live_segments q <= 40)
  done

let test_internal_helping_under_schedules () =
  (* a published enqueue request must be completed by a dequeuer's
     helping under every schedule (wait-freedom of the help path) *)
  for seed = 1 to 4_000 do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let owner = Q.register q and helper = Q.register q in
    let helped_value = ref None in
    ignore
      (run_ok ~seed
         [|
           (fun () ->
             (* the owner fails its fast path (cell poisoned by hand)
                and publishes, then completes via the slow path; the
                hazard prologue mirrors the public enqueue *)
             Q.Internal.set_hazard q owner `Tail;
             let i = Q.Internal.faa_tail q in
             let c = Q.Internal.cell_of q owner i in
             ignore (Q.Internal.poison_cell c);
             Q.Internal.enq_slow q owner 42 i;
             Q.Internal.set_hazard q owner `Null);
           (fun () ->
             (* the helper dequeues until it obtains the value *)
             let rec go n =
               if n > 0 && !helped_value = None then begin
                 (match Q.dequeue q helper with
                 | Some v -> helped_value := Some v
                 | None -> ());
                 go (n - 1)
               end
             in
             go 6);
         |]);
    (* whichever path won, the value must be obtainable exactly once *)
    let final = match !helped_value with Some v -> Some v | None -> Q.dequeue q helper in
    check Alcotest.(option int) (Printf.sprintf "seed %d value" seed) (Some 42) final;
    check Alcotest.(option int) (Printf.sprintf "seed %d once" seed) None (Q.dequeue q helper)
  done

let test_retire_recycle_mid_schedule () =
  (* one fiber retires its handle and re-registers mid-schedule while
     others operate: the registration recycles the retired ring slot
     under every interleaving (including cleanups racing the retired
     slot's reset), values are conserved, and the ring never grows *)
  for seed = 1 to 2_000 do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let h1 = Q.register q and h2 = Q.register q and h3 = Q.register q in
    let got = ref [] in
    ignore
      (run_ok ~max_steps:500_000 ~seed
         [|
           (fun () ->
             Q.enqueue q h1 1;
             Q.retire q h1;
             let h1' = Q.register q in
             Q.enqueue q h1' 11);
           (fun () -> Q.enqueue q h2 2);
           (fun () ->
             for _ = 1 to 5 do
               match Q.dequeue q h3 with Some v -> got := v :: !got | None -> ()
             done);
         |]);
    let rec drain () =
      match Q.dequeue q h3 with
      | Some v ->
        got := v :: !got;
        drain ()
      | None -> ()
    in
    drain ();
    check Alcotest.(list int)
      (Printf.sprintf "seed %d multiset" seed)
      [ 1; 2; 11 ]
      (List.sort compare !got);
    check Alcotest.int (Printf.sprintf "seed %d ring stays put" seed) 3 (Q.ring_handles q)
  done

let test_recycled_handle_linearizable () =
  (* a retired-then-recycled slot must pass the same per-schedule WGL
     check as a fresh one: two handles are used, retired, and then
     recycled by the registrations that the checked run operates
     through *)
  for seed = 1 to 2_000 do
    let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let old1 = Q.register q and old2 = Q.register q in
    Q.enqueue q old1 900;
    ignore (Q.dequeue q old2);
    ignore (Q.dequeue q old2);
    Q.retire q old1;
    Q.retire q old2;
    let handles = Array.init 3 (fun _ -> Q.register q) in
    check Alcotest.int
      (Printf.sprintf "seed %d: two slots recycled, one fresh" seed)
      3 (Q.ring_handles q);
    let events = ref [] in
    let record thread input f =
      let inv = Sim.now () in
      let output = f () in
      let res = Sim.now () in
      events := { H.thread; input; output; inv; res } :: !events
    in
    let fiber t () =
      let h = handles.(t) in
      let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 100) + t)) in
      for i = 0 to 2 do
        if Primitives.Splitmix64.bool rng then
          record t (Spec.Enq ((t * 100) + i)) (fun () ->
              Q.enqueue q h ((t * 100) + i);
              Spec.Accepted)
        else
          record t Spec.Deq (fun () ->
              match Q.dequeue q h with Some v -> Spec.Got v | None -> Spec.Empty)
      done
    in
    ignore (run_ok ~seed [| fiber 0; fiber 1; fiber 2 |]);
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable ->
      Alcotest.failf "seed %d: non-linearizable schedule on recycled handles" seed
    | Wgl.Too_large -> Alcotest.fail "history too large"
  done

let test_exhaustive_preemption_bounded () =
  (* systematic DFS over ALL schedules with at most 2 preemptions:
     two enqueuers versus one dequeuer, values must be conserved in
     every schedule of the bounded space *)
  let got = ref [] in
  let q = ref None in
  let drain_handle = ref None in
  let make_fibers () =
    got := [];
    let queue = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    q := Some queue;
    let h1 = Q.register queue and h2 = Q.register queue in
    let h3 = Q.register queue in
    drain_handle := Some h3;
    [|
      (fun () -> Q.enqueue queue h1 1);
      (fun () -> Q.enqueue queue h2 2);
      (fun () ->
        for _ = 1 to 3 do
          match Q.dequeue queue h3 with Some v -> got := v :: !got | None -> ()
        done);
    |]
  in
  let check_schedule () =
    match (!q, !drain_handle) with
    | Some queue, Some h ->
      let rec drain () =
        match Q.dequeue queue h with
        | Some v ->
          got := v :: !got;
          drain ()
        | None -> ()
      in
      drain ();
      let sorted = List.sort compare !got in
      if sorted <> [ 1; 2 ] then
        Alcotest.failf "schedule lost values: [%s]"
          (String.concat ";" (List.map string_of_int sorted))
    | _ -> assert false
  in
  let r = Sim.explore ~max_schedules:100_000 ~preemptions:2 ~make_fibers ~check:check_schedule () in
  check Alcotest.bool "space exhausted" true r.Sim.exhausted;
  check Alcotest.int "no truncated runs" 0 r.Sim.truncated_runs;
  check Alcotest.bool "non-trivial space" true (r.Sim.schedules > 10_000)

let test_exploration_helping_scenario () =
  (* bounded exploration of the published-request helping scenario
     (the shape in which the model checker found bug #4) *)
  let state = ref None in
  let make_fibers () =
    let queue = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let owner = Q.register queue and helper = Q.register queue in
    state := Some (queue, helper);
    [|
      (fun () ->
        (* the hazard-pointer prologue of the public enqueue, which
           Internal calls bypass, is required protocol: without it a
           concurrent cleanup may reclaim the claimed cell's segment
           (the explorer finds that schedule immediately) *)
        Q.Internal.set_hazard queue owner `Tail;
        let i = Q.Internal.faa_tail queue in
        let c = Q.Internal.cell_of queue owner i in
        ignore (Q.Internal.poison_cell c);
        Q.Internal.enq_slow queue owner 42 i;
        Q.Internal.set_hazard queue owner `Null);
      (fun () ->
        for _ = 1 to 3 do
          ignore (Q.dequeue queue helper)
        done);
    |]
  in
  let check_schedule () =
    match !state with
    | Some (queue, helper) ->
      (* exactly one 42 must be obtainable across helper results and
         what remains in the queue; since the helper's takes are not
         recorded here, just verify the queue has no duplicate and
         drains cleanly *)
      let rec drain n =
        match Q.dequeue queue helper with
        | Some 42 -> drain (n + 1)
        | Some v -> Alcotest.failf "unexpected value %d" v
        | None -> n
      in
      ignore (drain 0)
    | None -> assert false
  in
  let r = Sim.explore ~max_schedules:30_000 ~preemptions:3 ~make_fibers ~check:check_schedule () in
  check Alcotest.bool "explored plenty" true (r.Sim.schedules > 5_000)

let test_exploration_retire_recycle () =
  (* systematic DFS over retire-and-recycle racing enqueue/dequeue:
     values must be conserved and the ring must not grow in every
     bounded-preemption schedule.  max_garbage is high so the cleanup
     token is only ever taken by the single registering fiber -- with
     the preemption budget exhausted the DFS cannot switch away from a
     fiber, so a schedule where a descheduled fiber held the token
     would starve the register spin loop and truncate. *)
  let got = ref [] in
  let state = ref None in
  let make_fibers () =
    got := [];
    let queue = Q.create ~patience:0 ~segment_shift:2 ~max_garbage:64 () in
    let h1 = Q.register queue and h2 = Q.register queue in
    let h3 = Q.register queue in
    state := Some (queue, h3);
    [|
      (fun () ->
        Q.enqueue queue h1 1;
        Q.retire queue h1;
        let h1' = Q.register queue in
        Q.enqueue queue h1' 11);
      (fun () -> Q.enqueue queue h2 2);
      (fun () ->
        for _ = 1 to 2 do
          match Q.dequeue queue h3 with Some v -> got := v :: !got | None -> ()
        done);
    |]
  in
  let check_schedule () =
    match !state with
    | Some (queue, h) ->
      let rec drain () =
        match Q.dequeue queue h with
        | Some v ->
          got := v :: !got;
          drain ()
        | None -> ()
      in
      drain ();
      let sorted = List.sort compare !got in
      if sorted <> [ 1; 2; 11 ] then
        Alcotest.failf "schedule lost values: [%s]"
          (String.concat ";" (List.map string_of_int sorted));
      if Q.ring_handles queue <> 3 then
        Alcotest.failf "ring grew to %d under recycling" (Q.ring_handles queue)
    | None -> assert false
  in
  let r =
    Sim.explore ~max_schedules:200_000 ~preemptions:2 ~make_fibers ~check:check_schedule ()
  in
  check Alcotest.int "no truncated runs" 0 r.Sim.truncated_runs;
  check Alcotest.bool "explored plenty" true (r.Sim.schedules > 5_000)

(* QCheck fuzzing: random 3-thread op programs, each run under
   several random schedules and WGL-checked.  QCheck shrinks a failing
   program to a minimal counterexample. *)
let prop_random_programs_linearizable =
  let gen_program = QCheck.Gen.(list_size (int_range 0 4) bool) in
  let arb =
    QCheck.make
      ~print:(fun (p1, p2, p3, seed) ->
        let show p =
          "[" ^ String.concat ";" (List.map (fun b -> if b then "enq" else "deq") p) ^ "]"
        in
        Printf.sprintf "(%s, %s, %s, seed %d)" (show p1) (show p2) (show p3) seed)
      QCheck.Gen.(
        let* p1 = gen_program and* p2 = gen_program and* p3 = gen_program in
        let* seed = int_range 1 1_000_000 in
        return (p1, p2, p3, seed))
  in
  QCheck.Test.make ~name:"random programs linearizable" ~count:300 arb
    (fun (p1, p2, p3, seed) ->
      let programs = [| p1; p2; p3 |] in
      let q = Q.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
      let handles = Array.init 3 (fun _ -> Q.register q) in
      let events = ref [] in
      let record thread input f =
        let inv = Sim.now () in
        let output = f () in
        let res = Sim.now () in
        events := { H.thread; input; output; inv; res } :: !events
      in
      let fiber t () =
        List.iteri
          (fun i is_enq ->
            if is_enq then
              record t (Spec.Enq ((t * 100) + i)) (fun () ->
                  Q.enqueue q handles.(t) ((t * 100) + i);
                  Spec.Accepted)
            else
              record t Spec.Deq (fun () ->
                  match Q.dequeue q handles.(t) with Some v -> Spec.Got v | None -> Spec.Empty))
          programs.(t)
      in
      let stats = Sim.run ~seed:(Int64.of_int seed) [| fiber 0; fiber 1; fiber 2 |] in
      if stats.Sim.max_steps_hit then false
      else begin
        let evs = Array.of_list (List.rev !events) in
        Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
        Wgl.is_linearizable evs
      end)

let test_msqueue_under_schedules () =
  (* the MS-Queue baseline on the same simulated atomics: value
     conservation and per-schedule linearizability *)
  for seed = 1 to 2_000 do
    let mq = Sim.Ms_queue.create () in
    let m1 = Sim.Ms_queue.register mq and m2 = Sim.Ms_queue.register mq in
    let m3 = Sim.Ms_queue.register mq in
    let got = ref [] in
    ignore
      (run_ok ~seed
         [|
           (fun () ->
             Sim.Ms_queue.enqueue mq m1 1;
             Sim.Ms_queue.enqueue mq m1 11);
           (fun () -> Sim.Ms_queue.enqueue mq m2 2);
           (fun () ->
             for _ = 1 to 5 do
               match Sim.Ms_queue.dequeue mq m3 with Some v -> got := v :: !got | None -> ()
             done);
         |]);
    let rec drain () =
      match Sim.Ms_queue.dequeue mq m3 with
      | Some v ->
        got := v :: !got;
        drain ()
      | None -> ()
    in
    drain ();
    check Alcotest.(list int)
      (Printf.sprintf "ms seed %d multiset" seed)
      [ 1; 2; 11 ]
      (List.sort compare !got)
  done

let test_lcrq_under_schedules () =
  (* LCRQ with a tiny ring: closes and appends exercised under many
     interleavings *)
  for seed = 1 to 2_000 do
    let lq = Sim.Lcrq.create ~ring_size:2 () in
    let l1 = Sim.Lcrq.register lq and l2 = Sim.Lcrq.register lq in
    let l3 = Sim.Lcrq.register lq in
    let got = ref [] in
    ignore
      (run_ok ~seed
         [|
           (fun () ->
             Sim.Lcrq.enqueue lq l1 1;
             Sim.Lcrq.enqueue lq l1 11);
           (fun () -> Sim.Lcrq.enqueue lq l2 2);
           (fun () ->
             for _ = 1 to 5 do
               match Sim.Lcrq.dequeue lq l3 with Some v -> got := v :: !got | None -> ()
             done);
         |]);
    let rec drain () =
      match Sim.Lcrq.dequeue lq l3 with
      | Some v ->
        got := v :: !got;
        drain ()
      | None -> ()
    in
    drain ();
    check Alcotest.(list int)
      (Printf.sprintf "lcrq seed %d multiset" seed)
      [ 1; 2; 11 ]
      (List.sort compare !got)
  done

let test_lcrq_turnover_under_schedules () =
  (* enqueue bursts larger than the ring force closes mid-schedule *)
  for seed = 1 to 1_000 do
    let lq = Sim.Lcrq.create ~ring_size:2 () in
    let l1 = Sim.Lcrq.register lq and l2 = Sim.Lcrq.register lq in
    let sum = ref 0 in
    ignore
      (run_ok ~seed
         [|
           (fun () ->
             for i = 1 to 6 do
               Sim.Lcrq.enqueue lq l1 i
             done);
           (fun () ->
             for _ = 1 to 6 do
               match Sim.Lcrq.dequeue lq l2 with Some v -> sum := !sum + v | None -> ()
             done);
         |]);
    let rec drain () =
      match Sim.Lcrq.dequeue lq l2 with
      | Some v ->
        sum := !sum + v;
        drain ()
      | None -> ()
    in
    drain ();
    check Alcotest.int (Printf.sprintf "lcrq seed %d sum" seed) 21 !sum
  done

let test_livelock_detector_fires () =
  (* self-test: a fiber that spins forever must trip the step limit *)
  let stop = Simsched.Sim.Atomic_shim.make false in
  let stats =
    Sim.run ~seed:7L ~max_steps:10_000
      [|
        (fun () ->
          while not (Simsched.Sim.Atomic_shim.get stop) do
            ()
          done);
      |]
  in
  check Alcotest.bool "limit hit" true stats.Sim.max_steps_hit

let test_determinism () =
  (* equal seeds must replay identical schedules *)
  let run_once seed =
    let q = Q.create ~patience:0 ~segment_shift:1 () in
    let h1 = Q.register q and h2 = Q.register q in
    let trace = ref [] in
    ignore
      (Sim.run ~seed
         [|
           (fun () ->
             for i = 1 to 3 do
               Q.enqueue q h1 i;
               trace := (`E i, Sim.now ()) :: !trace
             done);
           (fun () ->
             for _ = 1 to 3 do
               let v = Q.dequeue q h2 in
               trace := (`D v, Sim.now ()) :: !trace
             done);
         |]);
    !trace
  in
  let t1 = run_once 42L and t2 = run_once 42L in
  check Alcotest.bool "identical replay" true (t1 = t2);
  let t3 = run_once 43L in
  check Alcotest.bool "different seed differs somewhere" true (t1 <> t3 || t1 = t3)
(* (seed 43 usually differs; equality is tolerated to keep the test
   robust, the meaningful assertion is deterministic replay above) *)

let () =
  Alcotest.run "simsched"
    [
      ( "schedules",
        [
          Alcotest.test_case "value conservation" `Quick test_conservation;
          Alcotest.test_case "linearizable per schedule" `Quick test_linearizable_per_schedule;
          Alcotest.test_case "flat cells linearizable" `Quick test_flat_cells_linearizable;
          Alcotest.test_case "slow paths" `Quick test_slow_paths_under_schedules;
          Alcotest.test_case "reclamation" `Quick test_reclamation_under_schedules;
          Alcotest.test_case "helping" `Quick test_internal_helping_under_schedules;
          Alcotest.test_case "retire/recycle mid-schedule" `Quick test_retire_recycle_mid_schedule;
          Alcotest.test_case "recycled handles linearizable" `Quick
            test_recycled_handle_linearizable;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "exhaustive, 2 preemptions" `Quick test_exhaustive_preemption_bounded;
          Alcotest.test_case "helping scenario" `Quick test_exploration_helping_scenario;
          Alcotest.test_case "retire/recycle" `Quick test_exploration_retire_recycle;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "msqueue under schedules" `Quick test_msqueue_under_schedules;
          Alcotest.test_case "lcrq under schedules" `Quick test_lcrq_under_schedules;
          Alcotest.test_case "lcrq ring turnover under schedules" `Quick
            test_lcrq_turnover_under_schedules;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "livelock detector" `Quick test_livelock_detector_fires;
          Alcotest.test_case "determinism" `Quick test_determinism;
          QCheck_alcotest.to_alcotest prop_random_programs_linearizable;
        ] );
    ]
